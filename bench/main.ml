(* The benchmark harness: regenerates every figure of the paper's
   evaluation (section 4) plus the ablations from DESIGN.md, then runs a
   Bechamel micro-benchmark group over the compiler phases.

   Usage: dune exec bench/main.exe [-- --quick] *)

open Srp_driver

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let json = Array.exists (fun a -> a = "--json") Sys.argv

let flag_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 0

(* -o FILE: where --json writes the document (default stdout) *)
let out_file = flag_value "-o"

(* --trace-spans FILE: wall-clock spans of the whole sweep (stage builds,
   pool tasks, timed passes) as an srp-spans-v1 trace-event file *)
let spans_file = flag_value "--trace-spans"

let section title = Fmt.pr "@.==== %s ====@.@." title

let () =
  let workloads = Srp_workloads.Registry.all () in
  let t0 = Unix.gettimeofday () in
  let span_state =
    match spans_file with
    | None -> None
    | Some path ->
      let oc = open_out path in
      let tracer = Srp_obs.Span.create ~out:oc () in
      Srp_obs.Span.install tracer;
      Some (path, oc, tracer)
  in
  at_exit (fun () ->
      match span_state with
      | None -> ()
      | Some (path, oc, tracer) ->
        Srp_obs.Span.uninstall ();
        Srp_obs.Span.close tracer;
        close_out oc;
        Fmt.pr "spans written to %s (%d events)@." path
          (Srp_obs.Span.emitted tracer));
  section "Reproduction: Speculative Register Promotion using ALAT (CGO 2003)";
  Fmt.pr
    "Pipeline per benchmark: alias profile on the train input, baseline\n\
     (ORC -O3 stand-in: conservative PRE + software run-time disambiguation)\n\
     and speculative (ALAT, profile-driven) builds, both executed on the ref\n\
     input in the Itanium-like simulator.  Outputs are checked equal.@.";
  (* one artifact store for the whole sweep: both levels of a workload
     share its lower/apply stages, the alat build reuses the train
     profile, and the ablation subset below rides the same store *)
  let cache = Stage.create ~capacity:1024 () in
  let sweep_t0 = Unix.gettimeofday () in
  let results = Experiments.run_all ~cache workloads in
  let sweep_secs = Unix.gettimeofday () -. sweep_t0 in
  section "Figure 8: speculative register promotion vs baseline (% reduction)";
  Fmt.pr "%s@." (Experiments.figure8 results);
  Fmt.pr
    "Paper shape: total CPU cycles reduced by 1%%-7%%; load reductions much\n\
     larger than cycle reductions (eliminated loads are mostly cache hits);\n\
     FP benchmarks (ammp, art, equake) gain more than integer ones.@.";
  section "Figure 9: direct vs indirect references among reduced loads";
  Fmt.pr "%s@." (Experiments.figure9 results);
  Fmt.pr
    "Paper shape: indirect loads account for the majority of the reduction\n\
     in ammp, gzip, mcf and parser.@.";
  section "Figure 10: checks retired and mis-speculation ratio";
  Fmt.pr "%s@." (Experiments.figure10 results);
  Fmt.pr
    "Paper shape: mis-speculation is generally well under 1%%; gzip is the\n\
     outlier at ~5%% (its tuning pointer really does hit the promoted state\n\
     on the ref input), yet stays profitable because checks are cheap.@.";
  section "Figure 11: register stack engine (RSE) cycles";
  Fmt.pr "%s@." (Experiments.figure11 results);
  Fmt.pr
    "Paper shape: promotion grows register frames, so RSE traffic can rise\n\
     by tens of percent, but it remains a vanishing fraction of total\n\
     cycles.@.";
  (* machine-readable figure rows (the BENCH_*.json trajectory feed);
     emitted before the ablations so the pass stats cover just the sweep *)
  let cache_stats = Stage.stats cache in
  Fmt.pr
    "artifact cache: %d hits / %d misses (%.0f%% hit rate), %d evictions; \
     %d compiles in %.1fs (%.2f compiles/sec)@."
    cache_stats.Stage.hits cache_stats.Stage.misses
    (100.0 *. Stage.hit_rate cache_stats)
    cache_stats.Stage.evictions
    (2 * List.length results)
    sweep_secs
    (float_of_int (2 * List.length results) /. sweep_secs);
  if json then begin
    let doc =
      Srp_driver.Emit.bench_json ~quick
        ~cache:
          (Srp_driver.Emit.cache_json ~stats:cache_stats
             ~compiles:(2 * List.length results) ~wall_secs:sweep_secs)
        results
    in
    match out_file with
    | Some path ->
      Srp_driver.Emit.write_file path doc;
      Fmt.pr "JSON results written to %s@." path
    | None -> Fmt.pr "%s@." (Srp_obs.Json.to_string ~indent:2 doc)
  end;
  if not quick then begin
    (* ablations on a representative subset to keep the run short *)
    let subset =
      List.filter
        (fun w ->
          List.mem w.Workload.name [ "gzip"; "mcf"; "ammp"; "twolf" ])
        workloads
    in
    section "Ablation A: invala.e strategy (Figure 2) on/off";
    Fmt.pr "%s@." (Experiments.ablation_invala subset);
    section "Ablation B: software run-time disambiguation vs ALAT";
    Fmt.pr "%s@." (Experiments.ablation_software subset);
    section "Ablation C: conservative PRE vs software checks";
    Fmt.pr "%s@." (Experiments.ablation_conservative subset);
    section "Ablation D: heuristic speculation vs alias profile";
    Fmt.pr "%s@." (Experiments.ablation_heuristic subset);
    section "Ablation E: control speculation (ld.sa) on/off";
    Fmt.pr "%s@." (Experiments.ablation_control_spec subset);
    section "Ablation F: cascade promotion (section 2.4) on/off";
    Fmt.pr "%s@." (Experiments.ablation_cascade subset);
    Fmt.pr
      "The kernels contain no cascade patterns (promoted data behind a
       speculatively promoted pointer), mirroring the paper's section 4 note
       that its implementation kept cascades disabled.  The mechanism itself
       (chk.a + recovery routines, Figure 4) is exercised by the dedicated
       tests in test/test_core.ml.@.";
    section "Ablation G: pre-bundle list scheduling on/off";
    Fmt.pr "%s@." (Experiments.ablation_sched subset);
    section "Ablation H: probabilistic expected-value speculation gate on/off";
    Fmt.pr "%s@." (Experiments.ablation_prob subset);
    section "Threshold sweep: cycles at ALAT as spec_threshold varies";
    Fmt.pr "%s@."
      (Experiments.threshold_sweep
         ~thresholds:[ 0.0; 0.01; 0.05; 0.25; 1.0 ] subset);
    Fmt.pr
      "t=0.0 admits only never-conflicting sites (the binary verdict plus\n\
       the check-traffic tax); t=1.0 — the default — delegates admission\n\
       wholly to the expected-value ledger.  Conflict rates in these\n\
       kernels are bimodal, either ~0 or ~1, so every threshold strictly\n\
       between behaves like t=0.0; at t=1.0 the always-conflict kills\n\
       enter the ledger, where the dual-scope rule prices each crossing\n\
       against the binary shape and only ever drops promotions whose\n\
       check traffic beats their saved latency.@."
  end;
  (* --- Bechamel micro-benchmarks of the compiler phases --- *)
  section "Compiler-phase micro-benchmarks (Bechamel)";
  let mcf = Srp_workloads.Registry.find "mcf" in
  let source = mcf.Workload.source in
  let parsed_prog () = Srp_frontend.Lower.compile_source source in
  let prog = parsed_prog () in
  let profile =
    let p = Srp_frontend.Lower.compile_source source in
    Workload.apply_input p mcf.Workload.train;
    let i = Srp_profile.Interp.create p in
    ignore (Srp_profile.Interp.run i);
    Srp_profile.Interp.profile i
  in
  let open Bechamel in
  let test_parse =
    Test.make ~name:"frontend: parse+typecheck+lower (mcf)"
      (Staged.stage (fun () -> ignore (parsed_prog ())))
  in
  let test_steens =
    Test.make ~name:"alias: steensgaard (mcf)"
      (Staged.stage (fun () -> ignore (Srp_alias.Steensgaard.run prog)))
  in
  let test_andersen =
    Test.make ~name:"alias: andersen (mcf)"
      (Staged.stage (fun () -> ignore (Srp_alias.Andersen.run prog)))
  in
  let test_promote =
    Test.make ~name:"core: speculative promotion (mcf)"
      (Staged.stage (fun () ->
           let p = parsed_prog () in
           ignore
             (Srp_core.Promote.run
                ~config:(Srp_core.Config.alat ~profile) p)))
  in
  let test_codegen =
    Test.make ~name:"target: codegen (mcf)"
      (Staged.stage
         (let p = parsed_prog () in
          ignore (Srp_core.Promote.run ~config:Srp_core.Config.baseline p);
          fun () -> ignore (Srp_target.Codegen.gen_program p)))
  in
  let test_alat =
    Test.make ~name:"machine: 10k ALAT arm/check/probe ops"
      (Staged.stage (fun () ->
           let alat = Srp_machine.Alat.create () in
           for i = 0 to 9_999 do
             let tag = Srp_machine.Alat.int_tag ~frame:(i land 7) (i land 31) in
             ignore (Srp_machine.Alat.insert alat tag (Int64.of_int (i * 8)));
             ignore (Srp_machine.Alat.check alat tag ~clear:false);
             ignore (Srp_machine.Alat.store_probe alat (Int64.of_int ((i * 24) land 0xffff)))
           done))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Fmt.pr "%-45s %12.0f ns/run@." name est
        | Some _ | None -> Fmt.pr "%-45s (no estimate)@." name)
      results
  in
  List.iter
    (fun t -> benchmark t)
    [ test_parse; test_steens; test_andersen; test_promote; test_codegen; test_alat ];
  Fmt.pr "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
