(* srp — the command-line driver.

   Subcommands:
     compile   parse + promote a MiniC file and dump IR or assembly
     run       compile and execute on the machine simulator
     profile   interpret a MiniC file and dump its alias profile
     ssa       print the speculative memory-SSA form (chi/mu, figure 5/6 style)
     bench     run a workload (or the full sweep) at two levels and compare
               counters; --compare diffs two bench documents as a
               regression gate
     report    render wall-time tables and a text flamegraph from a
               --trace-spans file
     serve     batch compile-and-simulate daemon (JSON-lines on stdin)
     list      list the built-in SPEC-like workloads *)

open Cmdliner
module Pipeline = Srp_driver.Pipeline
module Workload = Srp_driver.Workload
module Emit = Srp_driver.Emit
module J = Srp_obs.Json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let level_conv =
  let parse s =
    match s with
    | "O0" -> Ok Pipeline.O0
    | "conservative" -> Ok Pipeline.Conservative
    | "baseline" -> Ok Pipeline.Baseline
    | "alat" -> Ok Pipeline.Alat
    | "alat-heuristic" -> Ok Pipeline.Alat_heuristic
    | _ -> Error (`Msg (Fmt.str "unknown level %s" s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Pipeline.level_name l))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file")

let level_arg =
  Arg.(value & opt level_conv Pipeline.Alat
       & info [ "l"; "level" ] ~docv:"LEVEL"
           ~doc:"optimization level: O0, conservative, baseline, alat, alat-heuristic")

let asm_arg =
  Arg.(value & flag & info [ "S"; "asm" ] ~doc:"dump target assembly instead of IR")

let ablation_conv =
  let parse s =
    match Pipeline.ablation_of_string s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown ablation %s (expected one of: %s)" s
             (String.concat ", "
                (List.map Pipeline.ablation_name Pipeline.all_ablations))))
  in
  Arg.conv (parse, fun ppf a -> Fmt.string ppf (Pipeline.ablation_name a))

let ablation_arg =
  Arg.(value & opt_all ablation_conv []
       & info [ "ablation" ] ~docv:"NAME"
           ~doc:"promotion-config override on top of the level (repeatable): \
                 no-invala, no-control-spec, cascade, single-round")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"emit a machine-readable JSON document")

let no_layout_arg =
  Arg.(value & flag
       & info [ "no-layout" ]
           ~doc:"skip the post-regalloc block layout pass (loop rotation + \
                 fall-through chaining), for A/B-ing its branch behaviour")

let no_sched_arg =
  Arg.(value & flag
       & info [ "no-sched" ]
           ~doc:"skip the pre-bundle latency-aware list scheduler and \
                 bundle the stream in source order, for A/B-ing the \
                 scheduling contribution (bit-identical on every \
                 non-cycle counter)")

let no_bundle_arg =
  Arg.(value & flag
       & info [ "no-bundle" ]
           ~doc:"skip the IA-64 bundling pass and issue from a flat \
                 instruction stream, for A/B-ing template-induced splits")

let no_split_arg =
  Arg.(value & flag
       & info [ "no-split" ]
           ~doc:"allocate registers with one closed interval per vreg \
                 instead of hole-aware live ranges with splitting, for \
                 A/B-ing the allocator upgrade")

let no_pressure_arg =
  Arg.(value & flag
       & info [ "no-pressure" ]
           ~doc:"disable the pressure-aware promotion gate and promote \
                 every profitable candidate (the pre-cost-model behavior), \
                 for A/B-ing the spill-cost model")

let no_prob_arg =
  Arg.(value & flag
       & info [ "no-prob" ]
           ~doc:"disable the probabilistic expected-value speculation gate \
                 and fall back to the binary may-touch verdict (the \
                 pre-frequency behavior), for A/B-ing the conflict-rate \
                 model")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"stream a bounded per-cycle event trace (JSON lines) to FILE")

(* Run [f] with an optional trace sink streaming to [path]. *)
let with_trace path f =
  match path with
  | None -> f None
  | Some path ->
    let oc = open_out path in
    let sink = Srp_obs.Trace.create oc in
    Fun.protect
      ~finally:(fun () ->
        Srp_obs.Trace.close sink;
        close_out oc;
        Fmt.epr "trace written to %s (%d events%s)@." path
          (Srp_obs.Trace.emitted sink)
          (if Srp_obs.Trace.truncated sink then ", truncated" else ""))
      (fun () -> f (Some sink))

let trace_spans_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-spans" ] ~docv:"FILE"
           ~doc:"write wall-clock spans (schema srp-spans-v1, Chrome \
                 trace-event JSON — load in Perfetto or chrome://tracing) \
                 to FILE")

(* Run [f] with the process span tracer installed and streaming to
   [path]; every instrumented scope (stage builds, pool tasks, serve
   jobs, timed passes) in [f] lands in the file. *)
let with_spans path f =
  match path with
  | None -> f ()
  | Some path ->
    let oc = open_out path in
    let tracer = Srp_obs.Span.create ~out:oc () in
    Srp_obs.Span.install tracer;
    Fun.protect
      ~finally:(fun () ->
        Srp_obs.Span.uninstall ();
        Srp_obs.Span.close tracer;
        close_out oc;
        Fmt.epr "spans written to %s (%d events%s)@." path
          (Srp_obs.Span.emitted tracer)
          (if Srp_obs.Span.truncated tracer then ", truncated" else ""))
      f

let timeline_arg =
  Arg.(value & opt (some string) None
       & info [ "timeline" ] ~docv:"FILE"
           ~doc:"sample machine occupancy (ALAT live entries, RSE \
                 dirty/clean registers, issue utilization, cache misses) \
                 every N cycles to FILE as JSON lines (schema \
                 srp-timeline-v1)")

let timeline_interval_arg =
  Arg.(value & opt int 1000
       & info [ "timeline-interval" ] ~docv:"N"
           ~doc:"cycles between timeline samples (with --timeline)")

(* Run [f] with an optional timeline sampler writing to [path]. *)
let with_timeline path ~interval f =
  match path with
  | None -> f None
  | Some path ->
    let oc = open_out path in
    let sink = Srp_obs.Trace.create oc in
    let tl = Srp_machine.Timeline.create ~interval sink in
    Fun.protect
      ~finally:(fun () ->
        Srp_obs.Trace.close sink;
        close_out oc;
        Fmt.epr "timeline written to %s (%d rows%s)@." path
          (Srp_obs.Trace.emitted sink)
          (if Srp_obs.Trace.truncated sink then ", truncated" else ""))
      (fun () -> f (Some tl))

(* Build a trivial single-input workload out of a source file so the
   pipeline's profile-then-compile flow applies unchanged. *)
let workload_of_file path =
  { Workload.name = Filename.basename path; description = "user program";
    source = read_file path; train = []; ref_ = [] }

let compile_cmd =
  let run file level asm no_layout no_sched no_bundle no_split no_pressure
      no_prob =
    let w = workload_of_file file in
    let profile =
      match level with Pipeline.Alat -> Some (Pipeline.train_profile w) | _ -> None
    in
    let c =
      Pipeline.compile ?profile ~layout:(not no_layout)
        ~sched:(not no_sched) ~bundle:(not no_bundle) ~split:(not no_split)
        ~pressure:(not no_pressure) ~prob:(not no_prob) ~input:[] w level
    in
    if asm then
      List.iter
        (fun name ->
          let f = Hashtbl.find c.Pipeline.target.Srp_target.Insn.funcs name in
          Fmt.pr "%a@." Srp_target.Insn.pp_func f)
        c.Pipeline.target.Srp_target.Insn.func_order
    else Fmt.pr "%a@." Srp_ir.Program.pp c.Pipeline.ir;
    (match c.Pipeline.promote with
    | Some r ->
      let s = r.Srp_core.Promote.stats in
      Fmt.epr
        "promotion: %d exprs, %d direct + %d indirect loads eliminated, %d checks, %d invala.e@."
        s.Srp_core.Ssapre.exprs_promoted s.loads_eliminated_direct
        s.loads_eliminated_indirect s.checks_inserted s.invala_inserted
    | None -> ())
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile a MiniC file and dump IR/assembly")
    Term.(const run $ file_arg $ level_arg $ asm_arg $ no_layout_arg
          $ no_sched_arg $ no_bundle_arg $ no_split_arg $ no_pressure_arg
          $ no_prob_arg)

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"compile through the seed monolithic pipeline instead of \
                 the staged artifact path — the reference the staged \
                 path is held bit-identical to")

let run_cmd =
  let run file level ablations json trace trace_spans timeline
      timeline_interval no_layout no_sched no_bundle no_split no_pressure
      no_prob no_cache =
    let w = workload_of_file file in
    let pcr =
      if no_cache then Pipeline.profile_compile_run_monolithic
      else Pipeline.profile_compile_run ?cache:None
    in
    let r =
      with_spans trace_spans (fun () ->
          with_timeline timeline ~interval:timeline_interval (fun timeline ->
              with_trace trace (fun trace ->
                  pcr ?trace ?timeline ~ablations
                    ~layout:(not no_layout) ~sched:(not no_sched)
                    ~bundle:(not no_bundle) ~split:(not no_split)
                    ~pressure:(not no_pressure) ~prob:(not no_prob) w level)))
    in
    if json then
      Fmt.pr "%s@." (J.to_string ~indent:2 (Emit.run_json ~name:w.Workload.name r))
    else begin
      print_string r.Pipeline.output;
      Fmt.epr "%a@." Srp_machine.Counters.pp r.Pipeline.counters;
      Fmt.epr "%a@." Srp_obs.Site_hist.pp_top_missers r.Pipeline.site_stats;
      Fmt.epr "%a@." Srp_obs.Site_hist.pp_top_mispredicts r.Pipeline.site_stats;
      Fmt.epr "--- pass statistics ---@.%s@?" (Srp_obs.Stats.report ())
    end;
    exit (Int64.to_int r.Pipeline.exit_code)
  in
  Cmd.v (Cmd.info "run" ~doc:"compile and execute on the machine simulator")
    Term.(const run $ file_arg $ level_arg $ ablation_arg $ json_arg $ trace_arg
          $ trace_spans_arg $ timeline_arg $ timeline_interval_arg
          $ no_layout_arg $ no_sched_arg $ no_bundle_arg $ no_split_arg
          $ no_pressure_arg $ no_prob_arg $ no_cache_arg)

let serve_cmd =
  let capacity_arg =
    Arg.(value & opt int 512
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"artifact store capacity (entries); least-recently-used \
                   artifacts are evicted beyond it")
  in
  let run capacity trace_spans =
    let lookup name =
      List.find_opt
        (fun w -> w.Workload.name = name)
        (Srp_workloads.Registry.all ())
    in
    let failed =
      with_spans trace_spans (fun () ->
          Srp_driver.Serve.serve ~lookup ~now:Unix.gettimeofday ~capacity
            stdin stdout)
    in
    if failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"batch compile-and-simulate daemon: JSON-lines jobs on stdin \
             (schema srp-serve-v1), one response line per job plus a \
             summary with compiles/sec, per-stage wall time, job latency \
             percentiles and the cache hit rate")
    Term.(const run $ capacity_arg $ trace_spans_arg)

let profile_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"save the profile to FILE")
  in
  let run file out_file =
    let prog = Srp_frontend.Lower.compile_source (read_file file) in
    let code, out, profile = Srp_profile.Interp.run_program prog in
    print_string out;
    match out_file with
    | Some path ->
      let oc = open_out path in
      output_string oc (Srp_profile.Alias_profile.save profile);
      close_out oc;
      Fmt.epr "profile written to %s@." path
    | None ->
      Fmt.pr "exit code: %Ld@.--- alias profile ---@.%a" code
        Srp_profile.Alias_profile.pp profile
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"interpret, print or save the alias profile (-o FILE)")
    Term.(const run $ file_arg $ out_arg)

let ssa_cmd =
  let run file =
    let src = read_file file in
    let prog = Srp_frontend.Lower.compile_source src in
    (* profile for the speculative flags *)
    let prog_p = Srp_frontend.Lower.compile_source src in
    let _, _, profile = Srp_profile.Interp.run_program prog_p in
    let mgr = Srp_alias.Manager.build prog in
    let modref = Srp_alias.Modref.compute mgr prog in
    let policy =
      Srp_ssa.Spec_policy.create prog (Srp_ssa.Spec_policy.Profile profile)
    in
    List.iter
      (fun f ->
        let annot = Srp_ssa.Annot.compute ~mgr ~modref ~policy f in
        let ssa = Srp_ssa.Ssa_form.build ~annot f in
        Fmt.pr "%a@." Srp_ssa.Ssa_form.pp ssa)
      (Srp_ir.Program.funcs prog)
  in
  Cmd.v
    (Cmd.info "ssa" ~doc:"print the speculative memory-SSA form (chi_s/mu_s)")
    Term.(const run $ file_arg)

let bench_cmd =
  let name_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"WORKLOAD"
             ~doc:"workload name, \"all\" for the full sweep (default), or \
                   OLD.json with --compare")
  in
  let second_arg =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"NEW.json" ~doc:"new document (with --compare)")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"write the JSON document to FILE")
  in
  let compare_arg =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"diff two srp-bench-v1 documents (OLD.json NEW.json) per \
                   kernel and level; exit 1 on any counter regression \
                   beyond the thresholds")
  in
  let cycle_threshold_arg =
    Arg.(value & opt float 2.0
         & info [ "cycle-threshold" ] ~docv:"PCT"
             ~doc:"allowed % growth of cycle counters (cycles, \
                   data_access_cycles, rse_cycles) under --compare")
  in
  let counter_threshold_arg =
    Arg.(value & opt float 0.0
         & info [ "counter-threshold" ] ~docv:"PCT"
             ~doc:"allowed % growth of every other counter under --compare")
  in
  let parse_doc path =
    match J.of_string (read_file path) with
    | Ok doc -> doc
    | Error e ->
      Fmt.epr "error: %s: %s@." path e;
      exit 2
  in
  let run_compare ~old_path ~new_path ~cycle_pct ~counter_pct =
    let thresholds =
      { Srp_driver.Report.Compare.cycle_pct; counter_pct }
    in
    match
      Srp_driver.Report.Compare.compare_docs ~thresholds
        ~old_doc:(parse_doc old_path) ~new_doc:(parse_doc new_path) ()
    with
    | Error e ->
      Fmt.epr "error: %s@." e;
      exit 2
    | Ok [] -> Fmt.pr "no regressions (%s -> %s)@." old_path new_path
    | Ok regs ->
      Fmt.pr "%d counter regression(s):@.%s@?" (List.length regs)
        (Srp_driver.Report.Compare.render regs);
      exit 1
  in
  (* The sweep: every registry workload at baseline and alat over one
     shared store — the same matrix as bench/main.exe. *)
  let run_sweep ~json ~out =
    let cache = Srp_driver.Stage.create ~capacity:1024 () in
    let t0 = Unix.gettimeofday () in
    let rs =
      Srp_driver.Experiments.run_all ~cache (Srp_workloads.Registry.all ())
    in
    let wall_secs = Unix.gettimeofday () -. t0 in
    let cache_doc =
      Emit.cache_json ~stats:(Srp_driver.Stage.stats cache)
        ~compiles:(2 * List.length rs) ~wall_secs
    in
    if json || out <> None then begin
      let doc = Emit.bench_json ~cache:cache_doc rs in
      match out with
      | Some path ->
        Emit.write_file path doc;
        Fmt.epr "bench results written to %s@." path
      | None -> Fmt.pr "%s@." (J.to_string ~indent:2 doc)
    end
    else begin
      Fmt.pr "--- figure 8 ---@.%s@." (Srp_driver.Experiments.figure8 rs);
      Fmt.pr "--- figure 9 ---@.%s@." (Srp_driver.Experiments.figure9 rs);
      Fmt.pr "--- figure 10 ---@.%s@." (Srp_driver.Experiments.figure10 rs);
      Fmt.pr "--- figure 11 ---@.%s@?" (Srp_driver.Experiments.figure11 rs)
    end
  in
  let run_one ~name ~ablations ~json ~out =
    let w = Srp_workloads.Registry.find name in
    let cache = Srp_driver.Stage.create () in
    let t0 = Unix.gettimeofday () in
    let r = Srp_driver.Experiments.run_pair ~cache ~ablations w in
    let wall_secs = Unix.gettimeofday () -. t0 in
    if json || out <> None then begin
      let doc =
        Emit.bench_json
          ~cache:
            (Emit.cache_json ~stats:(Srp_driver.Stage.stats cache) ~compiles:2
               ~wall_secs)
          [ r ]
      in
      match out with
      | Some path ->
        Emit.write_file path doc;
        Fmt.epr "bench results written to %s@." path
      | None -> Fmt.pr "%s@." (J.to_string ~indent:2 doc)
    end
    else begin
      let f8 =
        Srp_driver.Report.figure8_row ~name ~base:r.Srp_driver.Experiments.base.Pipeline.counters
          ~spec:r.Srp_driver.Experiments.spec.Pipeline.counters
      in
      Fmt.pr "%s: cycles -%.2f%%, data access -%.2f%%, loads -%.2f%%@." name
        f8.Srp_driver.Report.cpu_cycles_red f8.data_access_red f8.loads_red;
      Fmt.pr "--- baseline counters ---@.%a@." Srp_machine.Counters.pp
        r.Srp_driver.Experiments.base.Pipeline.counters;
      Fmt.pr "--- speculative counters ---@.%a@." Srp_machine.Counters.pp
        r.Srp_driver.Experiments.spec.Pipeline.counters;
      Fmt.pr "%a@." Srp_obs.Site_hist.pp_top_missers
        r.Srp_driver.Experiments.spec.Pipeline.site_stats
    end
  in
  let run name second ablations json out compare trace_spans cycle_pct
      counter_pct =
    if compare then
      match second with
      | Some new_path ->
        run_compare ~old_path:name ~new_path ~cycle_pct ~counter_pct
      | None ->
        Fmt.epr "error: --compare needs OLD.json and NEW.json@.";
        exit 2
    else
      with_spans trace_spans (fun () ->
          if name = "all" then run_sweep ~json ~out
          else run_one ~name ~ablations ~json ~out)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"run a built-in workload (or the full sweep) at baseline and \
             alat (--json/-o for machine-readable figure rows), or diff \
             two bench documents with --compare")
    Term.(const run $ name_arg $ second_arg $ ablation_arg $ json_arg
          $ out_arg $ compare_arg $ trace_spans_arg $ cycle_threshold_arg
          $ counter_threshold_arg)

let report_cmd =
  let spanfile_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SPANFILE" ~doc:"an srp-spans-v1 trace-event file")
  in
  let top_arg =
    Arg.(value & opt int 15
         & info [ "top" ] ~docv:"K"
             ~doc:"number of hot span paths in the flamegraph table")
  in
  let run file top_k =
    match J.of_string (read_file file) with
    | Error e ->
      Fmt.epr "error: %s: %s@." file e;
      exit 2
    | Ok doc -> (
      match Srp_driver.Report.Span_report.render ~top_k doc with
      | Error e ->
        Fmt.epr "error: %s: %s@." file e;
        exit 2
      | Ok s -> print_string s)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"render per-stage/per-domain wall-time tables and a text \
             flamegraph from a --trace-spans file")
    Term.(const run $ spanfile_arg $ top_arg)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Fmt.pr "%-8s %s@." w.Workload.name w.Workload.description)
      (Srp_workloads.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"list built-in workloads") Term.(const run $ const ())

let () =
  let doc = "speculative register promotion using ALAT (CGO 2003 reproduction)" in
  let info = Cmd.info "srp" ~doc in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; run_cmd; profile_cmd; ssa_cmd; bench_cmd; report_cmd; serve_cmd; list_cmd ]))
