(* Promotion candidate expressions and their occurrences.

   An expression is a memory cell identified by its address form:
   - direct: (symbol, constant offset) — scalar variables, fixed array
     slots, fields of global structs;
   - indirect: (address temp, constant offset) — *p, p->f, a[i], with the
     restriction that the address temp has exactly one static definition
     (a true SSA value), so "same temp" implies "same address" on every
     path from its definition.  That restriction is the paper's own: its
     implementation "is limited to expressions that will not cause
     cascaded failure" (section 4).

   Occurrences are collected by a fresh scan of the function for each
   expression (positions go stale as soon as the rewriter runs, so nothing
   is cached across expressions). *)

open Srp_ir
module Location = Srp_alias.Location
module Manager = Srp_alias.Manager
module Modref = Srp_alias.Modref
module Alias_profile = Srp_profile.Alias_profile

type key = {
  base : Ops.base;
  offset : int;
  mty : Mem_ty.t;
}

let key_of_addr (addr : Ops.addr) mty = { base = addr.Ops.base; offset = addr.Ops.offset; mty }

let addr_of_key k : Ops.addr = { Ops.base = k.base; offset = k.offset }

let is_direct k = match k.base with Ops.Sym _ -> true | Ops.Reg _ -> false

let equal_key a b =
  a.offset = b.offset && Mem_ty.equal a.mty b.mty
  && (match a.base, b.base with
     | Ops.Sym s1, Ops.Sym s2 -> Symbol.equal s1 s2
     | Ops.Reg t1, Ops.Reg t2 -> Temp.equal t1 t2
     | Ops.Sym _, Ops.Reg _ | Ops.Reg _, Ops.Sym _ -> false)

let pp_key ppf k = Fmt.pf ppf "%a.%a" Ops.pp_addr (addr_of_key k) Mem_ty.pp k.mty

(* Occurrence events for one expression, in program order within a block.
   [idx] is the instruction index within the block.

   A [Kill] with [spec = true] is a chi_s: the rename step ignores it and a
   check statement is planted after it (paper sections 3.3-3.4).  A kill
   with [spec = false] terminates availability.  [check_info] carries what
   the software-check lowering needs (the suspect store's address and
   value); [None] for kills that cannot be software-checked (calls). *)
type event =
  | Use of { idx : int; dst : Temp.t }
  | Def of { idx : int; src : Ops.operand } (* exact store: value available *)
  | Kill of {
      idx : int;
      spec : bool;
      (* profiled conflict probability of this kill against the
         expression's footprint (max over the intersecting locations):
         the chance one execution of the kill invalidates the promoted
         value.  0 for hard kills and under the binary-verdict policy;
         under probability gating, spec kills carry 0 < prob <=
         spec_threshold and the assessor debits their expected
         check-recovery cost from the candidate's benefit. *)
      prob : float;
      store : (Ops.addr * Ops.operand) option; (* for software checks *)
      (* cascade crossing (paper section 2.4): the kill is a check of our
         *address* temp; [cascade = Some cell] records the memory cell the
         address is (re)loaded from, so CodeMotion can emit a chk.a whose
         recovery reloads the pointer and then the data *)
      cascade : Ops.addr option;
    }

(* Locations an expression's cell may occupy. *)
let footprint ~(mgr : Manager.t) ~func (k : key) : Location.Set.t =
  match k.base with
  | Ops.Sym s -> Location.Set.singleton (Location.Sym s)
  | Ops.Reg r -> Manager.points_to mgr ~func ~mty:k.mty r

(* --- candidate discovery --- *)

(* Count static defs of every temp (promotion temps have several). *)
let temp_def_counts (f : Func.t) : int Temp.Tbl.t =
  let tbl = Temp.Tbl.create 64 in
  Func.iter_instrs
    (fun _ ins ->
      List.iter
        (fun d ->
          let c = match Temp.Tbl.find_opt tbl d with Some c -> c | None -> 0 in
          Temp.Tbl.replace tbl d (c + 1))
        (Instr.defs ins))
    f;
  tbl

(* All candidate expressions of [f]: every cell loaded at least once.
   [indirect] selects direct refs or indirect refs through address temps.
   Multi-definition address temps (promotion temps refreshed by checks or
   per-iteration saves) are allowed: every redefinition of the base is a
   hard-kill occurrence, so redundancy is only recognized between
   consecutive defs, where "same temp" does imply "same address"; what
   they lose is insertion (no loop hoisting through a moving pointer). *)
let candidates ~indirect (f : Func.t) : key list =
  let seen = ref [] in
  let consider k =
    if not (List.exists (equal_key k) !seen) then seen := k :: !seen
  in
  Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Instr.Load { addr; mty; promo = Instr.P_none; _ } -> (
        match addr.Ops.base with
        | Ops.Sym _ when not indirect -> consider (key_of_addr addr mty)
        | Ops.Reg _ when indirect -> consider (key_of_addr addr mty)
        | Ops.Sym _ | Ops.Reg _ -> ())
      | _ -> ())
    f;
  List.rev !seen

(* --- occurrence collection for one expression --- *)

(* Does a store to [store_addr] possibly write the cell of [k]?
   [`Exact] when provably the same cell, [`No] when provably distinct,
   [`Maybe] otherwise. *)
let store_relation ~(mgr : Manager.t) ~func ~(fp : Location.Set.t) (k : key)
    (store_addr : Ops.addr) (store_mty : Mem_ty.t) :
    [ `Exact | `No | `Maybe ] =
  let same_base =
    match k.base, store_addr.Ops.base with
    | Ops.Sym s1, Ops.Sym s2 -> Symbol.equal s1 s2
    | Ops.Reg t1, Ops.Reg t2 -> Temp.equal t1 t2
    | Ops.Sym _, Ops.Reg _ | Ops.Reg _, Ops.Sym _ -> false
  in
  if same_base then
    if store_addr.Ops.offset = k.offset then `Exact
    else `No (* same base value, distinct constant offsets: distinct cells *)
  else begin
    let store_fp =
      match store_addr.Ops.base with
      | Ops.Sym s -> Location.Set.singleton (Location.Sym s)
      | Ops.Reg r -> Manager.points_to mgr ~func ~mty:store_mty r
    in
    if Location.Set.is_empty (Location.Set.inter fp store_fp) then `No
    else `Maybe
  end

type collect_ctx = {
  mgr : Manager.t;
  modref : Modref.t;
  policy : Srp_ssa.Spec_policy.t;
  style : Config.check_style;
  cascade : bool; (* allow promotion across address-temp checks (sec. 2.4) *)
  (* expected-value speculation gating: [Some thr] marks a kill
     speculative while its profiled conflict probability stays <= thr
     (the binary verdict is the thr-is-exactly-zero special case);
     [None] is the legacy binary-verdict path, bit-identical to the
     pre-probability pipeline. *)
  prob_gate : float option;
  cfg : Cfg.t;
}

(* Is a may-aliasing *store* checkable (speculative) under the configured
   style, and with what conflict probability?  ALAT: speculative when the
   profiled chance of the store touching the expression's footprint (max
   over the intersecting locations) is zero — or, under probability
   gating, at most the threshold.  Software run-time disambiguation:
   every aliased store to a *direct* expression is checkable with an
   address compare (Nicolau's scheme needs no profile), but indirect
   expressions are beyond it (paper section 5: the software scheme and
   SLAT promote scalars only). *)
let store_kill_spec ctx ~direct ~site ~n_targets inter =
  match ctx.style with
  | Config.No_speculation -> (false, 0.0)
  | Config.Software -> (direct, 0.0)
  | Config.Alat ->
    let p =
      Location.Set.fold
        (fun loc acc ->
          Float.max acc
            (Srp_ssa.Spec_policy.store_conflict_prob ctx.policy ~site ~n_targets
               loc))
        inter 0.0
    in
    let spec =
      match ctx.prob_gate with None -> p = 0.0 | Some thr -> p <= thr
    in
    (spec, p)

let call_kill_spec ctx ~callee ~site inter =
  match ctx.style with
  | Config.No_speculation | Config.Software -> (false, 0.0)
  | Config.Alat ->
    let p =
      Location.Set.fold
        (fun loc acc ->
          Float.max acc
            (Srp_ssa.Spec_policy.call_conflict_prob ctx.policy ~callee ~site loc))
        inter 0.0
    in
    let spec =
      match ctx.prob_gate with None -> p = 0.0 | Some thr -> p <= thr
    in
    (spec, p)

(* Events of expression [k] in block [node], in order. *)
let events_in_block (ctx : collect_ctx) (k : key) (node : int) : event list =
  let func = Func.name (Cfg.func ctx.cfg) in
  let fp = footprint ~mgr:ctx.mgr ~func k in
  let blk = Cfg.block ctx.cfg node in
  let acc = ref [] in
  List.iteri
    (fun idx ins ->
      match ins with
      | Instr.Load { dst; addr; mty; promo; _ } ->
        if equal_key k (key_of_addr addr mty) then
          (match promo with
          | Instr.P_none -> acc := Use { idx; dst } :: !acc
          | Instr.P_ld_a | Instr.P_ld_sa ->
            (* an arming load from an earlier promotion: eliminating it
               would disarm the ALAT entry its checks rely on — a barrier *)
            acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc)
        else begin
          (* the single definition of our address temp: a hard kill so no
             insertion can float above the address's birth *)
          match k.base with
          | Ops.Reg r when Temp.equal r dst ->
            acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc
          | _ -> ()
        end
      | Instr.Check { dst; addr; mty; kind; _ } ->
        (* A check from an earlier promotion redefines its temp.  If it
           matches our own cell, it is a use-def of the expression: hard
           kill.  If the temp is our address base, the default is also a
           hard kill (the paper's implementation "is limited to expressions
           that will not cause cascaded failure", section 4) — but in
           cascade mode (section 2.4) the crossing becomes a speculative
           kill that CodeMotion turns into chk.a + recovery. *)
        let is_base_redef =
          match k.base with Ops.Reg r -> Temp.equal r dst | Ops.Sym _ -> false
        in
        if equal_key k (key_of_addr addr mty) then
          acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc
        else if is_base_redef then begin
          ignore kind;
          if ctx.cascade && ctx.style = Config.Alat then
            acc :=
              Kill { idx; spec = true; prob = 0.0; store = None; cascade = Some addr }
              :: !acc
          else acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc
        end
      | Instr.Store { src; addr; mty; site } -> (
        match store_relation ~mgr:ctx.mgr ~func ~fp k addr mty with
        | `Exact -> acc := Def { idx; src } :: !acc
        | `No -> ()
        | `Maybe ->
          (* speculative iff the policy says this store touches none of the
             expression's possible cells *)
          let store_fp =
            match addr.Ops.base with
            | Ops.Sym s -> Location.Set.singleton (Location.Sym s)
            | Ops.Reg r -> Manager.points_to ctx.mgr ~func ~mty r
          in
          let inter = Location.Set.inter fp store_fp in
          let n_targets = Location.Set.cardinal store_fp in
          let spec, prob =
            store_kill_spec ctx ~direct:(is_direct k) ~site ~n_targets inter
          in
          acc := Kill { idx; spec; prob; store = Some (addr, src); cascade = None } :: !acc)
      | Instr.Call { callee; site; _ } ->
        if not (Program.is_builtin callee) then begin
          let mod_set = Modref.mod_of ctx.modref callee in
          let inter = Location.Set.inter fp mod_set in
          if not (Location.Set.is_empty inter) then begin
            let spec, prob = call_kill_spec ctx ~callee ~site inter in
            acc := Kill { idx; spec; prob; store = None; cascade = None } :: !acc
          end
        end
      | Instr.Sw_check { dst; _ } | Instr.Alloc { dst; _ } ->
        (* redefinition of our address temp would be a kill; Alloc/Sw_check
           never define an address temp that an indirect candidate uses
           (candidates require the temp's single def to dominate its uses),
           but be conservative anyway *)
        (match k.base with
        | Ops.Reg r when Temp.equal r dst ->
          acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc
        | _ -> ())
      | Instr.Bin { dst; _ } | Instr.Un { dst; _ } | Instr.Mov { dst; _ } -> (
        match k.base with
        | Ops.Reg r when Temp.equal r dst ->
          acc := Kill { idx; spec = false; prob = 0.0; store = None; cascade = None } :: !acc
        | _ -> ())
      | Instr.Invala _ -> ())
    blk.Block.instrs;
  List.rev !acc
