(* Register promotion driver.

   Bottom-up rounds over the expression syntax tree (paper section 3.2:
   p before *p before **p): round 1 promotes direct references; rounds 2..n
   promote indirect references through address temps that became
   single-definition SSA values in earlier rounds.  The alias analyses and
   mod/ref summaries are recomputed between rounds because each round
   manufactures new temps the previous solution has never seen. *)

open Srp_ir
module Manager = Srp_alias.Manager
module Modref = Srp_alias.Modref

type result = {
  stats : Ssapre.stats;
  per_func : (string * Ssapre.stats) list;
}

let policy_of_config (prog : Program.t) (config : Config.t) : Srp_ssa.Spec_policy.t =
  let mode =
    match config.Config.policy with
    | Config.Spec_never -> Srp_ssa.Spec_policy.Never
    | Config.Spec_heuristic -> Srp_ssa.Spec_policy.Heuristic
    | Config.Spec_profile p -> Srp_ssa.Spec_policy.Profile p
  in
  Srp_ssa.Spec_policy.create prog mode

let block_count_fn (config : Config.t) =
  match config.Config.policy with
  | Config.Spec_profile p ->
    fun ~func ~label_id -> Srp_profile.Alias_profile.block_count p ~func ~label_id
  | Config.Spec_never | Config.Spec_heuristic -> fun ~func:_ ~label_id:_ -> 0

(* Promote every function of [prog] in place. *)
let run ?(config = Config.baseline) (prog : Program.t) : result =
  let total = Ssapre.empty_stats () in
  let per_func = Hashtbl.create 8 in
  let func_stats f =
    match Hashtbl.find_opt per_func (Func.name f) with
    | Some s -> s
    | None ->
      let s = Ssapre.empty_stats () in
      Hashtbl.replace per_func (Func.name f) s;
      s
  in
  let cm_ctx =
    { Ssapre.config; profile_hot = block_count_fn config;
      site_gen = prog.Program.site_gen }
  in
  let module Stats = Srp_obs.Stats in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !round < max 1 config.Config.max_rounds do
    incr round;
    Stats.incr (Stats.counter ~pass:"promote" "rounds");
    (* fresh whole-program analyses: each round makes new temps *)
    let mgr = Stats.time ~pass:"promote" "alias" (fun () -> Manager.build prog) in
    let modref =
      Stats.time ~pass:"promote" "modref" (fun () -> Modref.compute mgr prog)
    in
    let policy = policy_of_config prog config in
    let round_work = ref false in
    Stats.time ~pass:"promote" "ssapre" (fun () ->
        List.iter
          (fun f ->
            let keys =
              Expr.candidates ~indirect:false f @ Expr.candidates ~indirect:true f
            in
            if keys <> [] then begin
              let cfg = Cfg.build f in
              let collect =
                { Expr.mgr; modref; policy; style = config.Config.check_style;
                  cascade = config.Config.cascade; cfg }
              in
              let before = (func_stats f).Ssapre.exprs_promoted in
              List.iter
                (fun key -> Ssapre.run_expr cm_ctx collect f key (func_stats f))
                keys;
              if (func_stats f).Ssapre.exprs_promoted > before then
                round_work := true
            end)
          (Program.funcs prog));
    (* expose this round's promotion temps as address bases for the next *)
    Stats.time ~pass:"promote" "copy_prop" (fun () ->
        List.iter Copy_prop.run (Program.funcs prog);
        List.iter Copy_prop.run_local (Program.funcs prog));
    continue_ := !round_work
  done;
  List.iter
    (fun f ->
      Check_cleanup.run f;
      f.Func.ssa_temps <- false)
    (Program.funcs prog);
  Hashtbl.iter (fun _ s -> Ssapre.add_stats total s) per_func;
  Stats.add
    (Stats.counter ~pass:"promote" "exprs_promoted")
    total.Ssapre.exprs_promoted;
  Stats.add
    (Stats.counter ~pass:"promote" "loads_eliminated")
    (total.Ssapre.loads_eliminated_direct + total.Ssapre.loads_eliminated_indirect);
  { stats = total;
    per_func = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_func [] }
