(* Register promotion driver.

   Bottom-up rounds over the expression syntax tree (paper section 3.2:
   p before *p before **p): round 1 promotes direct references; rounds 2..n
   promote indirect references through address temps that became
   single-definition SSA values in earlier rounds.  The alias analyses and
   mod/ref summaries are recomputed between rounds because each round
   manufactures new temps the previous solution has never seen. *)

open Srp_ir
module Manager = Srp_alias.Manager
module Modref = Srp_alias.Modref

type result = {
  stats : Ssapre.stats;
  per_func : (string * Ssapre.stats) list;
}

(* Per-function register-pressure summary, produced by the backend's
   allocator machinery (srp_core cannot see srp_target, so the driver
   injects the estimator as a callback). *)
type pressure = {
  webs : int; (* allocation entities across both classes *)
  peak_int : int;
      (* projected co-resident stacked integer registers: the function's
         own allocated frame plus the deepest partner frame — what the
         RSE pool is actually charged while this function is live *)
  peak_fp : int; (* the function's fp register count (not RSE-stacked) *)
  spill_traffic : int; (* projected stacked registers beyond the RSE pool *)
}

let policy_of_config (prog : Program.t) (config : Config.t) : Srp_ssa.Spec_policy.t =
  let mode =
    match config.Config.policy with
    | Config.Spec_never -> Srp_ssa.Spec_policy.Never
    | Config.Spec_heuristic -> Srp_ssa.Spec_policy.Heuristic
    | Config.Spec_profile p -> Srp_ssa.Spec_policy.Profile p
  in
  Srp_ssa.Spec_policy.create prog mode

let block_count_fn (config : Config.t) =
  match config.Config.policy with
  | Config.Spec_profile p ->
    fun ~func ~label_id -> Srp_profile.Alias_profile.block_count p ~func ~label_id
  | Config.Spec_never | Config.Spec_heuristic -> fun ~func:_ ~label_id:_ -> 0

(* Pressure-gated candidate selection (the vpr/twolf fix): assess every
   candidate without editing, rank by weighted saved latency, and accept
   greedily — free while the projected co-resident stack (estimator
   projection + registers already claimed by accepted promotions, across
   rounds) stays within the RSE pool.  Above the pool, an integer
   candidate pays the RSE's marginal price: one more frame register costs
   a spill plus a fill around every overflowing call while the function
   is resident, so the saved load latency must beat
   [spill_cost x overflow_calls] — the dynamic call traffic the driver's
   caller measured from the training profile — not a per-occurrence
   charge (a load eliminated a thousand times per call amortizes its
   register; a once-per-call load does not).  Float candidates are not
   RSE-stacked; past the threshold they keep the occurrence-weighted
   memory-spill comparison (lat_fp beats a spill round-trip, so fp
   promotion stays profitable, matching the paper's fp-heavy kernels).
   Accepted candidates commit through the unchanged [run_expr] in
   original candidate order, so temp and site generation stay
   deterministic. *)
(* Per-candidate scope choice under probability gating.  Each candidate is
   assessed twice: once with the configured threshold (kills up to
   P <= thr crossed speculatively) and once at thr = 0, the binary-verdict
   scope priced under the same check-traffic model.  Every downstream gate
   — the expected-value rejection, the ranking, the pressure comparison —
   reads the threshold-scope assessment: that scope is what the policy
   asked for, and its debit is the candidate's honest price.  The
   *committed* shape, though, is whichever scope nets more, ties to
   binary — a probabilistic extension must pay for itself or the
   candidate keeps its legacy shape.  When even the gate says the
   speculation loses (as_conflict > 0 and as_benefit <= 0, which the
   returned assessment preserves), the fallback is scope-aware: a
   check-free binary scope keeps the plain redundancy elimination (the
   crossed kills just stay hard), but a binary scope that still carries
   checks rests on the very traffic estimates the debit just flagged as
   conflict-heavy, so the candidate stays declined.  The legacy path
   (prob_gate = None) takes none of this machinery. *)
let choose_scope cm_ctx (collect : Expr.collect_ctx) f key :
    Expr.collect_ctx * Ssapre.assessment =
  let a_p = Ssapre.assess cm_ctx collect f key in
  match collect.Expr.prob_gate with
  | None -> (collect, a_p)
  | Some thr ->
    let collect_bin = { collect with Expr.prob_gate = Some 0.0 } in
    let a_b =
      if thr = 0.0 then a_p else Ssapre.assess cm_ctx collect_bin f key
    in
    if a_p.Ssapre.as_conflict > 0 && a_p.Ssapre.as_benefit <= 0 then
      if a_b.Ssapre.as_conflict > 0 then
        (* a_p keeps the EV-rejection condition in force *)
        (collect_bin, a_p)
      else (collect_bin, a_b)
    else if a_p.Ssapre.as_benefit > a_b.Ssapre.as_benefit then (collect, a_p)
    else (collect_bin, a_p)

(* Does the expected-value gate decline this assessment outright?  Only a
   probability-gated candidate can carry a nonzero debit, so the legacy
   paths never reject. *)
let ev_rejected (a : Ssapre.assessment) =
  a.Ssapre.as_conflict > 0 && a.Ssapre.as_benefit <= 0

let select_gated (config : Config.t) cm_ctx collect f keys ~(est : pressure)
    ~(overflow_calls : int) ~(claimed : int ref * int ref) stats : unit =
  let assessed =
    List.mapi
      (fun i key ->
        let chosen, asmt = choose_scope cm_ctx collect f key in
        (i, key, chosen, asmt))
      keys
  in
  let ranked =
    List.stable_sort
      (fun (_, _, _, a) (_, _, _, b) ->
        Int.compare b.Ssapre.as_benefit a.Ssapre.as_benefit)
      assessed
  in
  let ci, cf = claimed in
  let accepted = Hashtbl.create 8 in
  List.iter
    (fun (i, key, _, asmt) ->
      if asmt.Ssapre.as_work then begin
        let counter, base, spill_occ =
          match Srp_ssa.Spec_policy.latency_class key.Expr.mty with
          | Srp_ssa.Spec_policy.Lat_l1 -> (ci, est.peak_int, overflow_calls)
          | Srp_ssa.Spec_policy.Lat_fp -> (cf, est.peak_fp, asmt.Ssapre.as_occ)
        in
        let projected = base + !counter + 1 in
        (* Expected-value gate: [as_benefit] is already net of the
           candidate's expected check-traffic bill, so the pressure
           comparison below reads the shared ledger.  A candidate whose
           debit is nonzero and eats the whole saving fails the paper's
           inequality P x recovery < saved latency outright — promoting
           it would trade load latency for ALAT-thrashing check traffic
           no matter how empty the register pool is.  Under the binary
           verdict the debit is always 0 and this branch never fires. *)
        if ev_rejected asmt then ()
        else if
          projected <= config.Config.pressure_threshold
          || asmt.Ssapre.as_benefit > config.Config.spill_cost * spill_occ
        then begin
          incr counter;
          Hashtbl.replace accepted i ()
        end
      end)
    ranked;
  List.iter
    (fun (i, key, chosen_collect, _) ->
      if Hashtbl.mem accepted i then
        Ssapre.run_expr cm_ctx chosen_collect f key stats)
    assessed

(* Promote every function of [prog] in place.  [pressure] is the
   per-function estimator callback; the gate is active only when both the
   config enables it and a callback is supplied — otherwise the behavior
   is bit-identical to promote-everything. *)
let run ?(config = Config.baseline) ?pressure (prog : Program.t) : result =
  let total = Ssapre.empty_stats () in
  let per_func = Hashtbl.create 8 in
  let estimator = if config.Config.pressure then pressure else None in
  let claimed : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let claimed_for f =
    match Hashtbl.find_opt claimed (Func.name f) with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace claimed (Func.name f) c;
      c
  in
  let func_stats f =
    match Hashtbl.find_opt per_func (Func.name f) with
    | Some s -> s
    | None ->
      let s = Ssapre.empty_stats () in
      Hashtbl.replace per_func (Func.name f) s;
      s
  in
  let cm_ctx =
    { Ssapre.config; profile_hot = block_count_fn config;
      site_gen = prog.Program.site_gen }
  in
  (* Dynamic RSE-overflow proxy per function: the RSE spills and fills a
     resident frame around every overflowing call beneath it, so a leaf
     pays at its own entry count while a caller's frame is churned by its
     descendants' calls.  Without a call graph, charge call-making
     functions the busiest entry count in the program (their descendants
     can only be among those functions).  Training counts, the same unit
     the benefit side is weighted in; [max 1] keeps the comparison
     static-per-occurrence under the profile-free policies. *)
  let entry_count f =
    cm_ctx.Ssapre.profile_hot ~func:(Func.name f)
      ~label_id:(Label.id (Func.entry f))
  in
  let max_entry =
    List.fold_left (fun acc f -> max acc (entry_count f)) 0 (Program.funcs prog)
  in
  let overflow_calls f =
    let makes_calls =
      List.exists
        (fun b ->
          List.exists
            (function Instr.Call _ -> true | _ -> false)
            b.Block.instrs)
        (Func.blocks f)
    in
    let own = entry_count f in
    max 1 (if makes_calls then max own max_entry else own)
  in
  let module Stats = Srp_obs.Stats in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ && !round < max 1 config.Config.max_rounds do
    incr round;
    Stats.incr (Stats.counter ~pass:"promote" "rounds");
    (* fresh whole-program analyses: each round makes new temps *)
    let mgr = Stats.time ~pass:"promote" "alias" (fun () -> Manager.build prog) in
    let modref =
      Stats.time ~pass:"promote" "modref" (fun () -> Modref.compute mgr prog)
    in
    let policy = policy_of_config prog config in
    let round_work = ref false in
    Stats.time ~pass:"promote" "ssapre" (fun () ->
        List.iter
          (fun f ->
            let keys =
              Expr.candidates ~indirect:false f @ Expr.candidates ~indirect:true f
            in
            if keys <> [] then begin
              let cfg = Cfg.build f in
              (* Probability gating needs measured frequencies: it is
                 live only for the profiled ALAT level.  The heuristic
                 policy's synthetic 0/1 verdicts carry no expectation to
                 price, so alat-heuristic keeps the binary pipeline. *)
              let prob_gate =
                match (config.Config.policy, config.Config.check_style) with
                | Config.Spec_profile _, Config.Alat
                  when config.Config.prob ->
                  Some config.Config.spec_threshold
                | _ -> None
              in
              let collect =
                { Expr.mgr; modref; policy; style = config.Config.check_style;
                  cascade = config.Config.cascade; prob_gate; cfg }
              in
              let before = (func_stats f).Ssapre.exprs_promoted in
              (match Option.bind estimator (fun e -> e (Func.name f)) with
              | Some est ->
                select_gated config cm_ctx collect f keys ~est
                  ~overflow_calls:(overflow_calls f) ~claimed:(claimed_for f)
                  (func_stats f)
              | None ->
                (* No pressure gate (or no estimate for this function):
                   the legacy promote-everything path — but the
                   expected-value scope choice still applies under
                   probability gating; it belongs to the prob feature,
                   not the pressure feature, and composes with
                   --no-pressure.  With prob_gate = None [choose_scope]
                   returns the input collect and a zero-debit
                   assessment, so this is the exact legacy path. *)
                List.iter
                  (fun key ->
                    let chosen, asmt = choose_scope cm_ctx collect f key in
                    if not (ev_rejected asmt) then
                      Ssapre.run_expr cm_ctx chosen f key (func_stats f))
                  keys);
              if (func_stats f).Ssapre.exprs_promoted > before then
                round_work := true
            end)
          (Program.funcs prog));
    (* expose this round's promotion temps as address bases for the next *)
    Stats.time ~pass:"promote" "copy_prop" (fun () ->
        List.iter Copy_prop.run (Program.funcs prog);
        List.iter Copy_prop.run_local (Program.funcs prog));
    continue_ := !round_work
  done;
  List.iter
    (fun f ->
      Check_cleanup.run f;
      f.Func.ssa_temps <- false)
    (Program.funcs prog);
  Hashtbl.iter (fun _ s -> Ssapre.add_stats total s) per_func;
  Stats.add
    (Stats.counter ~pass:"promote" "exprs_promoted")
    total.Ssapre.exprs_promoted;
  Stats.add
    (Stats.counter ~pass:"promote" "loads_eliminated")
    (total.Ssapre.loads_eliminated_direct + total.Ssapre.loads_eliminated_indirect);
  { stats = total;
    per_func = Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_func [] }
