(* Configuration of the register-promotion pass.  The experiment matrix of
   the paper maps onto these knobs:

   - baseline ORC -O3: [conservative] + [software_check] (the run-time
     disambiguation of [Nicolau 89] is enabled at O3; paper section 5);
   - the paper's contribution: [alat ~policy:(Profile p)];
   - ablations: heuristic speculation, no control speculation, invala.e
     strategy on/off. *)

type check_style =
  | No_speculation (* conservative PRE only *)
  | Software (* address-compare + conditional update after aliased stores *)
  | Alat (* advanced loads + ALAT checks *)

type speculation_policy =
  | Spec_never
  | Spec_heuristic (* singleton points-to sets only *)
  | Spec_profile of Srp_profile.Alias_profile.t

type t = {
  check_style : check_style;
  policy : speculation_policy;
  control_spec : bool; (* allow ld.sa hoisting into loop preheaders *)
  use_invala : bool; (* invala.e on cold paths instead of load insertion *)
  max_rounds : int; (* 1 = direct refs only; 3 covers *p and **q chains *)
  cold_ratio : float; (* edge colder than this fraction => invala strategy *)
  (* promote across checks of the address temp itself (paper section 2.4):
     the data check becomes chk.a with a recovery routine reloading both
     the pointer and the data.  Off by default, matching the paper's
     implementation note in section 4. *)
  cascade : bool;
  (* pressure-aware candidate selection: promote only while the projected
     register demand stays under the RSE pool, or when a candidate's saved
     load latency still beats its marginal spill cost above it. *)
  pressure : bool;
  pressure_threshold : int; (* RSE physical pool: stacks beyond this spill *)
  (* expected-value speculation gating over the probabilistic profile: a
     kill is speculated past while its observed conflict rate stays at or
     under [spec_threshold], and each check the candidate would plant is
     debited from its benefit before the pressure gate sees it — an
     issue-slot tax per expected execution plus P(conflict) x the real
     recovery price (one reload for ld.c, recovery_penalty + reload for a
     cascade chk.a).  The default threshold of 1.0 leaves admission
     entirely to that ledger: the candidate is also priced at the binary
     scope (threshold 0) and the cheaper shape is committed, so a
     crossing that does not pay for itself falls back to a hard kill.
     [prob = false] reproduces the binary-verdict pipeline bit for bit
     (the --no-prob ablation): only P = 0 kills speculate and no check
     cost is charged. *)
  prob : bool;
  spec_threshold : float; (* max tolerated P(conflict) per crossed kill *)
  recovery_penalty : int;
      (* cycles one failed check costs beyond the reload itself: the
         machine's branch-to-recovery flush (Machine.check_recovery_penalty,
         mispredict flush + redirect = 16 on the modeled pipeline) *)
  lat_l1 : int; (* saved cycles per eliminated integer (L1) load *)
  lat_fp : int; (* saved cycles per eliminated floating-point load *)
  spill_cost : int;
      (* integer class: RSE spill+fill cycles one claimed register costs
         per overflowing call (the machine's rate: one cycle out, one
         back).  Float class: memory spill round-trip per occurrence. *)
  estimator : int; (* pressure-estimator version, fingerprinted *)
}

let conservative =
  { check_style = No_speculation; policy = Spec_never; control_spec = false;
    use_invala = false; max_rounds = 3; cold_ratio = 0.05; cascade = false;
    pressure = true; pressure_threshold = 24; lat_l1 = 2; lat_fp = 9;
    spill_cost = 2; estimator = 2;
    prob = true; spec_threshold = 1.0; recovery_penalty = 16 }

(* The ORC -O3 baseline: conservative PRE plus software run-time
   disambiguation on scalars. *)
let baseline = { conservative with check_style = Software }

let alat ~profile =
  { conservative with
    check_style = Alat; policy = Spec_profile profile; control_spec = true;
    use_invala = true }

(* the section 2.4 extension enabled: *p promoted even when p itself is
   speculative, repaired by chk.a recovery routines *)
let alat_cascade ~profile = { (alat ~profile) with cascade = true }

let alat_heuristic =
  { conservative with check_style = Alat; policy = Spec_heuristic }

let pp_style ppf = function
  | No_speculation -> Fmt.string ppf "none"
  | Software -> Fmt.string ppf "software"
  | Alat -> Fmt.string ppf "alat"

(* Knobs of the post-regalloc, pre-bundle list scheduler
   (lib/target/sched.ml).  [lat_l1]/[lat_fp] are the machine's L1-hit
   load latencies — the same figures the promotion cost model above
   prices eliminated loads with — used as dependence-edge weights.
   [hoist_bonus] is added to the critical-path priority of ld.a/ld.sa
   so advanced loads issue as early as their block allows: the
   speculative hoist-distance tuning.  The scheduler on/off bit is
   fingerprinted into the bundle stage key and serve job key; these
   weights are compile-time constants shared by every level, so they
   ride the key version instead of being fingerprinted per job. *)
module Sched = struct
  type t = { lat_l1 : int; lat_fp : int; hoist_bonus : int }

  let default = { lat_l1 = 2; lat_fp = 9; hoist_bonus = 4 }
end
