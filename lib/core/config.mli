(** Configuration of the register-promotion pass — the experiment matrix of
    the paper maps onto these knobs. *)

(** How possibly-aliased promotions are protected at run time. *)
type check_style =
  | No_speculation
      (** conservative PRE only: a may-aliased store kills availability *)
  | Software
      (** address-compare + conditional update after aliased stores — the
          run-time disambiguation of Nicolau (1989), part of the ORC -O3
          baseline per section 5 of the paper; scalars only *)
  | Alat
      (** advanced loads + ALAT check statements — the paper's scheme *)

(** What evidence licenses ignoring a chi (paper section 3.1). *)
type speculation_policy =
  | Spec_never  (** nothing is speculative *)
  | Spec_heuristic  (** only singleton points-to sets *)
  | Spec_profile of Srp_profile.Alias_profile.t
      (** alias-profiling feedback: a chi is speculative when the profiled
          run never observed the store touching the location *)

type t = {
  check_style : check_style;
  policy : speculation_policy;
  control_spec : bool;
      (** allow ld.sa hoisting of loads into loop preheaders when the
          profile shows the loop body executing (section 2.3, Figure 3) *)
  use_invala : bool;
      (** plant invala.e on training-dead paths instead of inserting loads,
          turning downstream reads into lazy ld.c checks (Figure 2) *)
  max_rounds : int;
      (** bottom-up promotion rounds: 1 covers direct references only,
          3 covers [*p] and [**q] chains (section 3.2) *)
  cold_ratio : float;  (** reserved tuning knob for edge coldness *)
  cascade : bool;
      (** promote across checks of the address temp itself: the pointer's
          check becomes chk.a with a recovery routine reloading pointer and
          data (section 2.4, Figure 4).  Off by default, matching the
          paper's implementation note in section 4. *)
  pressure : bool;
      (** rank candidates by saved latency and stop promoting once the
          projected register demand exceeds [pressure_threshold], unless
          the candidate still pays for its marginal spill.  [false]
          reproduces promote-everything exactly (the --no-pressure
          ablation). *)
  pressure_threshold : int;
      (** the RSE physical pool (24 stacked registers): co-resident
          frames growing past it turn promotions into spill/fill cycles *)
  prob : bool;
      (** expected-value speculation gating over the probabilistic
          profile: kills speculate while their observed conflict rate
          stays at or under [spec_threshold], every check a candidate
          would plant is debited from its benefit (issue-slot tax plus
          P(conflict) x recovery price), and each candidate commits the
          cheaper of the threshold scope and the binary scope.  [false]
          reproduces the binary-verdict pipeline bit for bit (the
          --no-prob ablation). *)
  spec_threshold : float;
      (** maximum tolerated per-execution conflict probability for a
          speculated kill; 1.0 (the default) delegates admission wholly
          to the expected-value ledger (swept in EXPERIMENTS.md) *)
  recovery_penalty : int;
      (** cycles one failed check costs beyond the reload itself — the
          machine's branch-to-recovery flush, 16 on the modeled
          pipeline *)
  lat_l1 : int;  (** saved cycles per eliminated integer (L1-hit) load *)
  lat_fp : int;  (** saved cycles per eliminated floating-point load *)
  spill_cost : int;
      (** over the threshold, the cycles one claimed register costs: per
          overflowing call for the RSE-stacked integer class, per
          occurrence (memory spill round-trip) for floats *)
  estimator : int;
      (** version tag of the pressure estimator, part of the content key *)
}

(** PRE register promotion with no speculation of any kind. *)
val conservative : t

(** The ORC -O3 stand-in: conservative PRE plus software run-time
    disambiguation on scalars. *)
val baseline : t

(** The paper's system: ALAT speculation driven by an alias profile. *)
val alat : profile:Srp_profile.Alias_profile.t -> t

(** [alat] with the section 2.4 cascade extension enabled. *)
val alat_cascade : profile:Srp_profile.Alias_profile.t -> t

(** ALAT speculation from static heuristics only (no profile). *)
val alat_heuristic : t

val pp_style : Format.formatter -> check_style -> unit

(** Knobs of the post-regalloc, pre-bundle list scheduler
    (lib/target/sched.ml): dependence-edge latencies — the same L1-hit
    figures the promotion cost model prices eliminated loads with — and
    the critical-path priority bonus that hoists ld.a/ld.sa.  Constant
    across levels; the scheduler's on/off bit is what the stage and
    serve keys fingerprint. *)
module Sched : sig
  type t = {
    lat_l1 : int;  (** integer L1-hit load latency, cycles *)
    lat_fp : int;  (** floating-point L1-hit load latency, cycles *)
    hoist_bonus : int;
        (** added to the critical-path height of ld.a/ld.sa so advanced
            loads issue as early as their block allows *)
  }

  val default : t
end
