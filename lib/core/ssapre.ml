(* SSAPRE (Kennedy et al., TOPLAS'99) specialized to load expressions, with
   the paper's speculative extensions:

   - Phi-insertion: capital-Phi for the hypothetical temporary h at the
     iterated dominance frontier of every occurrence/kill block.
   - Rename (speculative, paper section 3.3): a preorder dominator-tree
     walk with a stack of availability states.  Speculative kills (chi_s)
     are *ignored* — the version survives and the crossing is recorded so
     CodeMotion can plant a check statement after the store.
   - DownSafety: a backward anticipation dataflow (speculative kills are
     transparent).  Optionally, loop-header Phis that the profile shows hot
     are force-marked down-safe: the resulting insertions are control
     speculative and lower to ld.sa (paper section 2.3, Figure 3).
   - WillBeAvail: canonical canBeAvail/later propagation.
   - Finalize/CodeMotion (speculative, paper section 3.4): one promotion
     temp per expression; first computations load into it (flagged ld.a
     when any consumer is speculative), redundant loads become register
     moves, Phi-operand insertions become loads (ld.sa when forced), check
     statements (ld.c / software compare) follow speculative kills, and the
     invala.e strategy replaces insertion on cold paths (Figure 2). *)

open Srp_ir
module Alias_profile = Srp_profile.Alias_profile

(* --- per-expression analysis structures --- *)

type phi = {
  phi_node : int;
  mutable downsafe : bool;
  mutable spec_forced : bool; (* downsafe by control speculation *)
  mutable cba : bool;
  mutable later : bool;
  mutable operands : (int * opnd) list; (* pred node -> operand state *)
  mutable phi_ver : int;
  mutable lazy_ : bool; (* some path reaches this phi through invala.e *)
}

and opnd =
  | O_bot
  | O_uninsertable (* bottom, and a load cannot legally be inserted there *)
  | O_ver of { ver : int; last_real : bool; from_phi : phi option }

type vdef =
  | VD_load of { node : int; idx : int; dst : Temp.t }
  | VD_store of { node : int; idx : int; src : Ops.operand }
  | VD_phi of phi

type vinfo = {
  v_id : int;
  v_def : vdef;
  mutable v_uses : (int * int * Temp.t) list; (* redundant loads *)
  (* speculative kills crossed while this version was current:
     (node, idx, software-check info, cascade address-cell, conflict
     probability — the profiled chance one execution of the kill
     invalidates the promoted value, 0 under the binary verdict) *)
  mutable v_spec_kills :
    (int * int * (Ops.addr * Ops.operand) option * Ops.addr option * float)
      list;
  mutable v_feeds : (phi * bool) list; (* (phi fed, last_real at the edge) *)
  mutable v_lazy : bool; (* reads of this version must be checks *)
  mutable v_need : bool; (* value must materialize in the promotion temp *)
  mutable v_arm : bool; (* the materialization must allocate an ALAT entry *)
}

type analysis = {
  cfg : Cfg.t;
  dom : Dominance.t;
  key : Expr.key;
  events : Expr.event list array; (* per node *)
  phis : phi option array; (* per node *)
  mutable versions : vinfo list;
}

(* --- statistics --- *)

type stats = {
  mutable loads_eliminated_direct : int;
  mutable loads_eliminated_indirect : int;
  mutable eliminated_sites : Site.t list;
  mutable checks_inserted : int;
  mutable sw_checks_inserted : int;
  mutable invala_inserted : int;
  mutable loads_inserted : int;
  mutable ld_sa_inserted : int;
  mutable arms : int;
  mutable chk_a_inserted : int;
  mutable exprs_promoted : int;
}

let empty_stats () =
  { loads_eliminated_direct = 0; loads_eliminated_indirect = 0;
    eliminated_sites = []; checks_inserted = 0; sw_checks_inserted = 0;
    invala_inserted = 0; loads_inserted = 0; ld_sa_inserted = 0; arms = 0;
    chk_a_inserted = 0; exprs_promoted = 0 }

let add_stats a b =
  a.loads_eliminated_direct <- a.loads_eliminated_direct + b.loads_eliminated_direct;
  a.loads_eliminated_indirect <- a.loads_eliminated_indirect + b.loads_eliminated_indirect;
  a.eliminated_sites <- b.eliminated_sites @ a.eliminated_sites;
  a.checks_inserted <- a.checks_inserted + b.checks_inserted;
  a.sw_checks_inserted <- a.sw_checks_inserted + b.sw_checks_inserted;
  a.invala_inserted <- a.invala_inserted + b.invala_inserted;
  a.loads_inserted <- a.loads_inserted + b.loads_inserted;
  a.ld_sa_inserted <- a.ld_sa_inserted + b.ld_sa_inserted;
  a.arms <- a.arms + b.arms;
  a.chk_a_inserted <- a.chk_a_inserted + b.chk_a_inserted;
  a.exprs_promoted <- a.exprs_promoted + b.exprs_promoted

(* --- step 1: Phi insertion --- *)

let insert_phis (cfg : Cfg.t) (dom : Dominance.t) (events : Expr.event list array) :
    phi option array =
  let n = Cfg.num_nodes cfg in
  let event_blocks = ref [] in
  for i = 0 to n - 1 do
    if events.(i) <> [] then event_blocks := i :: !event_blocks
  done;
  let idf = Dominance.iterated_frontier dom !event_blocks in
  let phis = Array.make n None in
  List.iter
    (fun node ->
      phis.(node) <-
        Some
          { phi_node = node; downsafe = true; spec_forced = false; cba = true;
            later = true; operands = []; phi_ver = -1; lazy_ = false })
    idf;
  phis

(* --- step 2: speculative rename --- *)

type sentry = S_bot | S_ver of { v : vinfo; last_real : bool }

let rename (a : analysis) : unit =
  let counter = ref 0 in
  let versions = ref [] in
  let new_version def =
    incr counter;
    let v =
      { v_id = !counter; v_def = def; v_uses = []; v_spec_kills = [];
        v_feeds = []; v_lazy = false; v_need = false; v_arm = false }
    in
    versions := v :: !versions;
    v
  in
  let stack = ref [] in
  let push e = stack := e :: !stack in
  let top () = match !stack with e :: _ -> e | [] -> S_bot in
  let rec walk node =
    let depth0 = List.length !stack in
    (* Phi at block entry *)
    (match a.phis.(node) with
    | Some phi ->
      let v = new_version (VD_phi phi) in
      phi.phi_ver <- v.v_id;
      push (S_ver { v; last_real = false })
    | None -> ());
    (* events *)
    List.iter
      (fun (ev : Expr.event) ->
        match ev with
        | Expr.Use { idx; dst } -> (
          match top () with
          | S_ver { v; _ } ->
            v.v_uses <- (node, idx, dst) :: v.v_uses;
            push (S_ver { v; last_real = true })
          | S_bot ->
            let v = new_version (VD_load { node; idx; dst }) in
            push (S_ver { v; last_real = true }))
        | Expr.Def { idx; src } ->
          let v = new_version (VD_store { node; idx; src }) in
          push (S_ver { v; last_real = true })
        | Expr.Kill { idx; spec; prob; store; cascade } -> (
          if spec then (
            match top () with
            | S_ver { v; _ } ->
              v.v_spec_kills <- (node, idx, store, cascade, prob) :: v.v_spec_kills
            | S_bot -> ())
          else push S_bot))
      a.events.(node);
    (* feed Phi operands of CFG successors *)
    List.iter
      (fun succ ->
        match a.phis.(succ) with
        | Some phi ->
          let o =
            match top () with
            | S_bot -> O_bot
            | S_ver { v; last_real } ->
              let from_phi = match v.v_def with VD_phi p -> Some p | _ -> None in
              O_ver { ver = v.v_id; last_real; from_phi }
          in
          phi.operands <- (node, o) :: phi.operands;
          (match top () with
          | S_ver { v; last_real } -> v.v_feeds <- (phi, last_real) :: v.v_feeds
          | S_bot -> ())
        | None -> ())
      (Cfg.succs a.cfg node);
    (* recurse over dominator children *)
    List.iter walk (Dominance.children a.dom node);
    (* pop to entry depth *)
    while List.length !stack > depth0 do
      stack := List.tl !stack
    done
  in
  walk 0;
  a.versions <- !versions

(* --- step 3: DownSafety --- *)

(* First significant event of a block for anticipation purposes:
   a real use anticipates; an exact store or non-speculative kill blocks;
   speculative kills are transparent. *)
let first_signal (events : Expr.event list) : [ `Use | `Block | `None ] =
  let rec go = function
    | [] -> `None
    | Expr.Use _ :: _ -> `Use
    | Expr.Def _ :: _ -> `Block
    | Expr.Kill { spec = true; _ } :: rest -> go rest
    | Expr.Kill { spec = false; _ } :: _ -> `Block
  in
  go events

let downsafety (a : analysis) : unit =
  let n = Cfg.num_nodes a.cfg in
  let ant = Array.make n true in
  let sig_ = Array.init n (fun i -> first_signal a.events.(i)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let v =
        match sig_.(i) with
        | `Use -> true
        | `Block -> false
        | `None -> (
          match Cfg.succs a.cfg i with
          | [] -> false
          | succs -> List.for_all (fun s -> ant.(s)) succs)
      in
      if v <> ant.(i) then begin
        ant.(i) <- v;
        changed := true
      end
    done
  done;
  Array.iter
    (function
      | Some phi -> phi.downsafe <- ant.(phi.phi_node)
      | None -> ())
    a.phis

(* Control speculation: force down-safety of loop-header Phis whose body
   the profile shows executing (the branch-profiling guidance of section
   2.3, Figure 3).  Loop-carried load/store expressions qualify too: the
   preheader load plus the in-loop store materializations carry the value
   through the Phi, eliminating the in-loop load entirely. *)
let force_loop_speculation (a : analysis) ~(hot : int -> bool) : unit =
  let loops = Loops.find a.cfg a.dom in
  List.iter
    (fun (l : Loops.loop) ->
      match a.phis.(l.Loops.header) with
      | Some phi when not phi.downsafe ->
        if hot l.Loops.header then begin
          phi.downsafe <- true;
          phi.spec_forced <- true
        end
      | Some _ | None -> ())
    loops

(* --- step 4: WillBeAvail --- *)

(* [rescuable]: the invala.e strategy of paper Figure 2.  A Phi that would
   lose availability because of a bottom (or uninsertable) operand is kept
   "lazily available" instead: no load is inserted on the offending paths —
   an invala.e is — and every read of the Phi's version becomes an ld.c
   check, which reloads exactly on the paths that did not carry the value.
   Profitable only when those value-less paths essentially never execute
   (otherwise every read is a guaranteed reload plus a failed check), so
   the rescue demands profile evidence: every value-less operand edge must
   be dead under the training input.  It also needs at least one
   value-carrying operand. *)
let will_be_avail (a : analysis) ~(insertable : int -> bool)
    ~(rescuable : phi -> bool) : unit =
  let phis =
    Array.to_list a.phis |> List.filter_map (fun p -> p)
  in
  (* mark uninsertable bottom operands *)
  List.iter
    (fun phi ->
      phi.operands <-
        List.map
          (fun (pred, o) ->
            match o with
            | O_bot when not (insertable pred) -> (pred, O_uninsertable)
            | _ -> (pred, o))
          phi.operands)
    phis;
  (* canBeAvail, with lazy rescue *)
  let try_rescue phi =
    rescuable phi
    && List.exists
         (fun (_, o) -> match o with O_ver _ -> true | O_bot | O_uninsertable -> false)
         phi.operands
  in
  let q = Queue.create () in
  let kill_or_rescue phi =
    if phi.cba && not phi.lazy_ then begin
      if try_rescue phi then phi.lazy_ <- true
      else begin
        phi.cba <- false;
        Queue.add phi q
      end
    end
  in
  List.iter
    (fun phi ->
      let has_bad_bot =
        List.exists
          (fun (_, o) ->
            match o with
            | O_uninsertable -> true
            | O_bot -> not phi.downsafe
            | O_ver _ -> false)
          phi.operands
      in
      if has_bad_bot then kill_or_rescue phi)
    phis;
  while not (Queue.is_empty q) do
    let dead = Queue.pop q in
    List.iter
      (fun phi ->
        if phi.cba then begin
          let exposed =
            List.exists
              (fun (_, o) ->
                match o with
                | O_ver { from_phi = Some p; last_real = false; _ } -> p == dead
                | _ -> false)
              phi.operands
          in
          (* an operand whose Phi died is as good as bottom *)
          if exposed && not phi.downsafe then kill_or_rescue phi
        end)
      phis
  done;
  (* later; lazy Phis must materialize (their reads are checks) *)
  List.iter (fun phi -> phi.later <- phi.cba && not phi.lazy_) phis;
  let q2 = Queue.create () in
  List.iter
    (fun phi ->
      if phi.later then begin
        let has_real =
          List.exists
            (fun (_, o) -> match o with O_ver { last_real = true; _ } -> true | _ -> false)
            phi.operands
        in
        if has_real then begin
          phi.later <- false;
          Queue.add phi q2
        end
      end)
    phis;
  while not (Queue.is_empty q2) do
    let early = Queue.pop q2 in
    List.iter
      (fun phi ->
        if phi.later then begin
          let touched =
            List.exists
              (fun (_, o) ->
                match o with
                | O_ver { from_phi = Some p; _ } -> p == early
                | _ -> false)
              phi.operands
          in
          if touched then begin
            phi.later <- false;
            Queue.add phi q2
          end
        end)
      phis
  done

let wba phi = phi.cba && not phi.later

(* --- steps 5-6: Finalize and CodeMotion --- *)

(* Which versions need to materialize in the promotion temp: versions with
   redundant uses, plus (transitively) versions feeding a Phi operand of a
   will-be-avail Phi whose own version is needed. *)
let compute_need (a : analysis) : unit =
  let by_id = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace by_id v.v_id v) a.versions;
  let changed = ref true in
  List.iter (fun v -> v.v_need <- v.v_uses <> []) a.versions;
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if not v.v_need then begin
          let feeds_needed =
            List.exists
              (fun (phi, _) ->
                wba phi
                &&
                match Hashtbl.find_opt by_id phi.phi_ver with
                | Some pv -> pv.v_need
                | None -> false)
              v.v_feeds
          in
          if feeds_needed then begin
            v.v_need <- true;
            changed := true
          end
        end)
      a.versions
  done

(* Laziness (invala strategy): a Phi version reached through an invala.e
   path must be read through checks.  Initialized by mark_lazy_phis (cold
   operands), propagated along operand edges that did not pass a real
   occurrence. *)
let propagate_lazy (a : analysis) : unit =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        match v.v_def with
        | VD_phi phi when (not v.v_lazy) && phi.lazy_ ->
          v.v_lazy <- true;
          changed := true
        | VD_phi _ | VD_load _ | VD_store _ -> ())
      a.versions;
    List.iter
      (fun v ->
        if v.v_lazy then
          List.iter
            (fun (phi, last_real) ->
              if (not last_real) && not phi.lazy_ then begin
                phi.lazy_ <- true;
                changed := true
              end)
            v.v_feeds)
      a.versions
  done

(* Arming: a version must allocate an ALAT entry when a check will consult
   it — it crossed speculative kills (checks follow the stores), it feeds a
   lazy Phi (reads become ld.c), or it feeds a Phi whose version itself
   must be armed (the check after the kill inside a loop consults the entry
   allocated before the loop: Figure 3). *)
let compute_arms (a : analysis) ~alat : unit =
  if alat then begin
    let by_id = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace by_id v.v_id v) a.versions;
    List.iter
      (fun v ->
        if v.v_need then begin
          let lazy_feed = List.exists (fun (phi, _) -> phi.lazy_ && wba phi) v.v_feeds in
          v.v_arm <- v.v_spec_kills <> [] || lazy_feed || v.v_lazy
        end)
      a.versions;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun v ->
          if v.v_need && not v.v_arm then begin
            let feeds_armed =
              List.exists
                (fun (phi, _) ->
                  wba phi
                  &&
                  match Hashtbl.find_opt by_id phi.phi_ver with
                  | Some pv -> pv.v_arm
                  | None -> false)
                v.v_feeds
            in
            if feeds_armed then begin
              v.v_arm <- true;
              changed := true
            end
          end)
        a.versions
    done
  end

(* --- rewriting --- *)

type edit = {
  mutable replace : (int, Instr.instr list) Hashtbl.t; (* idx -> replacement *)
  mutable after : (int, Instr.instr list) Hashtbl.t; (* idx -> insert after *)
  mutable at_end : Instr.instr list; (* before terminator *)
}

let fresh_edit () = { replace = Hashtbl.create 4; after = Hashtbl.create 4; at_end = [] }

let add_replace e idx ins =
  Hashtbl.replace e.replace idx ins

let add_after e idx ins =
  let cur = try Hashtbl.find e.after idx with Not_found -> [] in
  Hashtbl.replace e.after idx (cur @ ins)

let apply_edits (cfg : Cfg.t) (edits : edit option array) : unit =
  Array.iteri
    (fun node edit ->
      match edit with
      | None -> ()
      | Some e ->
        let blk = Cfg.block cfg node in
        let out = ref [] in
        List.iteri
          (fun idx ins ->
            (match Hashtbl.find_opt e.replace idx with
            | Some repl -> out := List.rev_append repl !out
            | None -> out := ins :: !out);
            match Hashtbl.find_opt e.after idx with
            | Some post -> out := List.rev_append post !out
            | None -> ())
          blk.Block.instrs;
        out := List.rev_append e.at_end !out;
        blk.Block.instrs <- List.rev !out)
    edits

(* --- the driver for one expression --- *)

type codemotion_ctx = {
  config : Config.t;
  profile_hot : func:string -> label_id:int -> int; (* block exec count *)
  site_gen : Site.Gen.t;
}

(* The analysis half of [run_expr]: everything up to (and including) the
   any-work decision, with no edits, no fresh temps and no fresh sites —
   safe to run purely for candidate ranking and discard. *)
type prepared = {
  p_a : analysis;
  p_insert_edges : (int * phi) list;
  p_invala_edges : (int * phi) list;
  p_any_work : bool;
}

let prepare (ctx : codemotion_ctx) (collect : Expr.collect_ctx) (f : Func.t)
    (key : Expr.key) : prepared =
  let cfg = collect.Expr.cfg in
  let dom = Dominance.compute cfg in
  let n = Cfg.num_nodes cfg in
  let events = Array.init n (fun i -> Expr.events_in_block collect key i) in
  let phis = insert_phis cfg dom events in
  let a = { cfg; dom; key; events; phis; versions = [] } in
  rename a;
  downsafety a;
  let fname = Func.name f in
  let block_count node =
    ctx.profile_hot ~func:fname ~label_id:(Label.id (Cfg.label cfg node))
  in
  let profiled =
    match ctx.config.Config.policy with
    | Config.Spec_profile _ -> true
    | Config.Spec_never | Config.Spec_heuristic -> false
  in
  if ctx.config.Config.control_spec && ctx.config.Config.check_style = Config.Alat
     && profiled
  then force_loop_speculation a ~hot:(fun header -> block_count header > 0);
  (* insertion legality: an indirect expression's load may only be inserted
     where its address temp is defined, i.e. in blocks dominated by the
     temp's defining block *)
  let addr_def_node =
    match key.Expr.base with
    | Ops.Sym _ -> Some 0
    | Ops.Reg r ->
      (* single definition: insertions allowed below it; multiple
         definitions: no insertions at all (the address moves) *)
      let defs = ref [] in
      for i = 0 to n - 1 do
        List.iter
          (fun ins ->
            if List.exists (Temp.equal r) (Instr.defs ins) then defs := i :: !defs)
          (Cfg.block cfg i).Block.instrs
      done;
      (match !defs with [ d ] -> Some d | _ -> None)
  in
  let insertable node =
    match addr_def_node with
    | Some d -> Dominance.dominates dom d node
    | None -> false
  in
  let invala_ok =
    ctx.config.Config.use_invala && ctx.config.Config.check_style = Config.Alat
  in
  (* rescue only when every value-less operand edge was dead in training *)
  let rescuable phi =
    invala_ok && profiled
    && List.for_all
         (fun (pred, o) ->
           match o with
           | O_bot | O_uninsertable -> block_count pred = 0
           | O_ver _ -> true)
         phi.operands
  in
  will_be_avail a ~insertable ~rescuable;
  (* Placement: every non-value-carrying operand of a will-be-avail Phi
     needs either a load insertion (classic PRE) or, for lazy Phis and
     never-executed edges, an invala.e (paper Figure 2).  An edge the
     training run never took also switches its Phi to the lazy regime —
     inserting a load on unexplored paths is gratuitous. *)
  let invala_edges = ref [] in
  let insert_edges = ref [] in
  List.iter
    (function
      | None -> ()
      | Some phi when wba phi ->
        List.iter
          (fun (pred, o) ->
            let needs_insert =
              match o with
              | O_bot | O_uninsertable -> true
              | O_ver { from_phi = Some p; last_real = false; _ } -> not (wba p)
              | O_ver _ -> false
            in
            if needs_insert then begin
              let cold = profiled && block_count pred = 0 in
              if invala_ok && (phi.lazy_ || cold) then begin
                invala_edges := (pred, phi) :: !invala_edges;
                phi.lazy_ <- true
              end
              else insert_edges := (pred, phi) :: !insert_edges
            end)
          phi.operands
      | Some _ -> ())
    (Array.to_list a.phis);
  compute_need a;
  propagate_lazy a;
  compute_arms a ~alat:(ctx.config.Config.check_style = Config.Alat);
  (* is there anything to do? *)
  let any_work =
    List.exists (fun v -> v.v_uses <> []) a.versions
  in
  { p_a = a; p_insert_edges = !insert_edges; p_invala_edges = !invala_edges;
    p_any_work = any_work }

(* Weighted promotion benefit of a prepared candidate: per eliminable use,
   the load latency its class saves (2-cycle L1 for integers, 9 cycles for
   floats), scaled by the training execution count of the use's block when
   a profile is available, minus the candidate's expected speculation bill
   [as_conflict] — per check the rewriter would plant, (issue slot +
   P(conflict) x recovery price) x the check block's training count,
   rounded up so a nonzero expectation is never priced free.  The recovery
   price mirrors the machine: a plain ld.c miss re-runs one ordinary load,
   while a cascade chk.a failure also pays the recovery-flush penalty.
   The bill is only charged under probability gating, so [as_benefit]
   degrades to the legacy gross figure exactly on the binary-verdict
   path; under gating the pressure gate and the expected-value gate read
   one shared ledger.  [as_occ] is the matching dynamic occurrence
   estimate, the unit the spill side of the ledger is charged in. *)
(* Amortized cycles one *executed* check costs even when it hits: a ld.c
   needs no memory slot and retires in zero latency, but it still occupies
   bundle space, keeps its ALAT entry live, and feeds the RSE an extra
   stacked register.  A quarter cycle per execution matches the overhead
   measured on the kernel suite; whole-cycle charges over-tax checks that
   ride in otherwise short issue groups. *)
let check_issue_cost = 0.25

type assessment = {
  as_benefit : int; (* net: gross saved latency - as_conflict *)
  as_conflict : int; (* expected check-recovery cycles, rounded up *)
  as_occ : int;
  as_work : bool;
}

let assess (ctx : codemotion_ctx) (collect : Expr.collect_ctx) (f : Func.t)
    (key : Expr.key) : assessment =
  let p = prepare ctx collect f key in
  let a = p.p_a in
  let fname = Func.name f in
  let block_count node =
    ctx.profile_hot ~func:fname ~label_id:(Label.id (Cfg.label a.cfg node))
  in
  let policy = collect.Expr.policy in
  let lat =
    match Srp_ssa.Spec_policy.latency_class key.Expr.mty with
    | Srp_ssa.Spec_policy.Lat_l1 -> ctx.config.Config.lat_l1
    | Srp_ssa.Spec_policy.Lat_fp -> ctx.config.Config.lat_fp
  in
  let benefit = ref 0 in
  let occ = ref 0 in
  let conflict = ref 0.0 in
  List.iter
    (fun v ->
      List.iter
        (fun (node, _, _) ->
          let w =
            Srp_ssa.Spec_policy.occurrence_weight policy
              ~block_count:(block_count node)
          in
          occ := !occ + w;
          benefit := !benefit + (w * lat))
        v.v_uses;
      (* Expected speculation bill, mirrored off the exact check set
         [codemotion] plants: needed versions only, and a non-WBA Phi
         version checks only the kills some save dominates (its uses
         self-materialize, so a check before any save would consult a
         stale entry).  Pricing follows the machine: every executed
         check occupies an issue slot, and a conflicting one
         additionally pays the real recovery price — a plain ld.c miss
         is one ordinary reload, only a cascade chk.a trips the
         recovery-flush penalty.  The bill is charged only under
         probability gating so the binary verdict keeps its exact
         legacy ledger. *)
      if v.v_need && collect.Expr.prob_gate <> None then begin
        let pos_dominates (n0, i0) (n1, i1) =
          if n0 = n1 then i0 < i1
          else Dominance.strictly_dominates a.dom n0 n1
        in
        let checked =
          match v.v_def with
          | VD_load _ | VD_store _ -> v.v_spec_kills
          | VD_phi phi when wba phi -> v.v_spec_kills
          | VD_phi _ ->
            let uses =
              List.sort
                (fun (n1, i1, _) (n2, i2, _) ->
                  if n1 = n2 then Int.compare i1 i2 else Int.compare n1 n2)
                v.v_uses
            in
            let saved = ref [] in
            List.iter
              (fun (node, idx, _) ->
                if
                  not
                    (List.exists (fun p -> pos_dominates p (node, idx)) !saved)
                then saved := (node, idx) :: !saved)
              uses;
            List.filter
              (fun (node, idx, _, _, _) ->
                List.exists (fun p -> pos_dominates p (node, idx)) !saved)
              v.v_spec_kills
        in
        List.iter
          (fun (node, _, _, cascade, p) ->
            let w =
              Srp_ssa.Spec_policy.occurrence_weight policy
                ~block_count:(block_count node)
            in
            let recover =
              match cascade with
              | Some _ -> ctx.config.Config.recovery_penalty + lat
              | None -> lat
            in
            conflict :=
              !conflict
              +. (float_of_int w
                 *. (check_issue_cost +. (p *. float_of_int recover))))
          checked
      end)
    a.versions;
  let conflict = int_of_float (Float.ceil !conflict) in
  { as_benefit = !benefit - conflict; as_conflict = conflict; as_occ = !occ;
    as_work = p.p_any_work }

(* The rewriting half: commit a prepared candidate's edits to the
   function.  Must run against the same function state [prepare] saw. *)
let codemotion (ctx : codemotion_ctx) (_collect : Expr.collect_ctx)
    (f : Func.t) (key : Expr.key) (stats : stats) (p : prepared) : unit =
  let a = p.p_a in
  let cfg = a.cfg in
  let dom = a.dom in
  let n = Cfg.num_nodes cfg in
  let insert_edges = ref p.p_insert_edges in
  let invala_edges = ref p.p_invala_edges in
  if p.p_any_work then begin
    stats.exprs_promoted <- stats.exprs_promoted + 1;
    let mty = key.Expr.mty in
    let addr = Expr.addr_of_key key in
    let t_e = Func.fresh_temp f mty in
    let edits = Array.make n None in
    let edit node =
      match edits.(node) with
      | Some e -> e
      | None ->
        let e = fresh_edit () in
        edits.(node) <- Some e;
        e
    in
    let fresh_site () = Site.Gen.fresh ctx.site_gen in
    (* a Phi version that nothing consumes gets neither insertions nor
       invalidations *)
    let phi_version phi = List.find_opt (fun v -> v.v_id = phi.phi_ver) a.versions in
    let phi_needed phi =
      match phi_version phi with Some pv -> pv.v_need | None -> false
    in
    (* insertions at Phi operands *)
    List.iter
      (fun (pred, phi) ->
        if phi_needed phi then begin
          (* arm when the fed phi version is lazy or its consumers cross
             speculative kills *)
          let phi_arm =
            match phi_version phi with
            | Some pv -> pv.v_arm || phi.lazy_
            | None -> false
          in
          let promo =
            if phi.spec_forced then Instr.P_ld_sa
            else if ctx.config.Config.check_style = Config.Alat && phi_arm then
              Instr.P_ld_a
            else Instr.P_none
          in
          (edit pred).at_end <-
            (edit pred).at_end
            @ [ Instr.Load { dst = t_e; addr; mty; site = fresh_site (); promo } ];
          stats.loads_inserted <- stats.loads_inserted + 1;
          if promo = Instr.P_ld_sa then stats.ld_sa_inserted <- stats.ld_sa_inserted + 1
        end)
      !insert_edges;
    List.iter
      (fun (pred, phi) ->
        if phi_needed phi then begin
          (edit pred).at_end <- (edit pred).at_end @ [ Instr.Invala { dst = t_e } ];
          stats.invala_inserted <- stats.invala_inserted + 1
        end)
      !invala_edges;
    (* per-version rewrites *)
    let count_elim site =
      (match key.Expr.base with
      | Ops.Sym _ -> stats.loads_eliminated_direct <- stats.loads_eliminated_direct + 1
      | Ops.Reg _ ->
        stats.loads_eliminated_indirect <- stats.loads_eliminated_indirect + 1);
      stats.eliminated_sites <- site :: stats.eliminated_sites
    in
    let instr_at node idx = List.nth (Cfg.block cfg node).Block.instrs idx in
    let load_site node idx =
      match instr_at node idx with
      | Instr.Load { site; _ } -> site
      | _ -> fresh_site ()
    in
    let alat = ctx.config.Config.check_style = Config.Alat in
    (* rewrite a first computation: load straight into the promotion temp,
       then copy into the occurrence's original destination *)
    let rewrite_save v node idx dst =
      let promo = if v.v_arm && alat then Instr.P_ld_a else Instr.P_none in
      if promo = Instr.P_ld_a then stats.arms <- stats.arms + 1;
      add_replace (edit node) idx
        [ Instr.Load { dst = t_e; addr; mty; site = load_site node idx; promo };
          Instr.Mov { dst; src = Ops.Temp t_e } ]
    in
    (* rewrite a redundant load: a register move, or an ld.c check when the
       version is lazy (reached through an invala.e path) *)
    let rewrite_reload v node idx dst =
      let site = load_site node idx in
      if v.v_lazy && alat then
        add_replace (edit node) idx
          [ Instr.Check
              { dst = t_e; addr; mty; site; kind = Instr.C_ld_c { clear = false };
                recovery = [] };
            Instr.Mov { dst; src = Ops.Temp t_e } ]
      else add_replace (edit node) idx [ Instr.Mov { dst; src = Ops.Temp t_e } ];
      count_elim site
    in
    (* position dominance: (n0,i0) strictly before and dominating (n1,i1) *)
    let pos_dominates (n0, i0) (n1, i1) =
      if n0 = n1 then i0 < i1 else Dominance.strictly_dominates dom n0 n1
    in
    List.iter
      (fun v ->
        if v.v_need then begin
          (* materialize the defining occurrence *)
          (match v.v_def with
          | VD_load { node; idx; dst } -> rewrite_save v node idx dst
          | VD_store { node; idx; src } ->
            if v.v_arm && alat then begin
              (* arm after the store with an advanced load (Figure 1(b)) *)
              stats.arms <- stats.arms + 1;
              add_after (edit node) idx
                [ Instr.Load
                    { dst = t_e; addr; mty; site = fresh_site (); promo = Instr.P_ld_a } ]
            end
            else add_after (edit node) idx [ Instr.Mov { dst = t_e; src } ];
            List.iter (fun (node, idx, dst) -> rewrite_reload v node idx dst) v.v_uses
          | VD_phi phi when wba phi ->
            (* value arrives in t_e via operand insertions/materializations *)
            List.iter (fun (node, idx, dst) -> rewrite_reload v node idx dst) v.v_uses
          | VD_phi _ -> ());
          let emit_check (node, idx, store_info, cascade_cell, _prob) =
            match ctx.config.Config.check_style with
            | Config.Alat -> (
              match cascade_cell with
              | Some _ -> (
                (* Cascade crossing (Figure 4): the kill is the pointer's
                   own check statement.  Upgrade it in place to chk.a; its
                   recovery routine reloads the pointer (the generic part
                   of chk.a lowering) and then our data cell, re-arming
                   both entries.  A chk.a hit means the pointer did not
                   change, so the promoted data value is still addressed
                   correctly (data aliasing has its own ld.c checks). *)
                match instr_at node idx with
                | Instr.Check
                    { dst = pdst; addr = paddr; mty = pmty; site = psite;
                      kind = _; recovery = prev } ->
                  add_replace (edit node) idx
                    [ Instr.Check
                        { dst = pdst; addr = paddr; mty = pmty; site = psite;
                          kind = Instr.C_chk_a { clear = false };
                          recovery =
                            prev
                            @ [ Instr.Load
                                  { dst = t_e; addr; mty; site = fresh_site ();
                                    promo = Instr.P_ld_a } ] } ];
                  stats.chk_a_inserted <- stats.chk_a_inserted + 1
                | _ -> () (* the pointer check moved; stay conservative *))
              | None ->
                add_after (edit node) idx
                  [ Instr.Check
                      { dst = t_e; addr; mty; site = fresh_site ();
                        kind = Instr.C_ld_c { clear = false }; recovery = [] } ];
                stats.checks_inserted <- stats.checks_inserted + 1)
            | Config.Software -> (
              match store_info with
              | Some (store_addr, stored) ->
                add_after (edit node) idx
                  [ Instr.Sw_check
                      { dst = t_e; addr; store_addr; stored; mty;
                        site = fresh_site () } ];
                stats.sw_checks_inserted <- stats.sw_checks_inserted + 1
              | None -> ())
            | Config.No_speculation -> ()
          in
          match v.v_def with
          | VD_load _ | VD_store _ ->
            (* uses were rewritten above against the def's materialization;
               every recorded kill sits between the def and a potential use *)
            (match v.v_def with
            | VD_load _ ->
              List.iter (fun (node, idx, dst) -> rewrite_reload v node idx dst) v.v_uses
            | _ -> ());
            List.iter emit_check v.v_spec_kills
          | VD_phi phi when wba phi ->
            List.iter (fun (node, idx, dst) -> rewrite_reload v node idx dst) v.v_uses;
            List.iter emit_check v.v_spec_kills
          | VD_phi _ ->
            (* The Phi will not be available: its uses must self-materialize.
               A use dominated by an earlier save of the same version
               reloads; the others become saves themselves.  Checks are only
               useful for kills that some save dominates — a check before
               any materialization would consult a stale or missing entry
               on every execution. *)
            let uses =
              List.sort
                (fun (n1, i1, _) (n2, i2, _) ->
                  if n1 = n2 then Int.compare i1 i2 else Int.compare n1 n2)
                v.v_uses
            in
            let saved = ref [] in
            List.iter
              (fun (node, idx, dst) ->
                if List.exists (fun p -> pos_dominates p (node, idx)) !saved
                then rewrite_reload v node idx dst
                else begin
                  rewrite_save v node idx dst;
                  saved := (node, idx) :: !saved
                end)
              uses;
            List.iter
              (fun ((node, idx, _, _, _) as kill) ->
                if List.exists (fun p -> pos_dominates p (node, idx)) !saved then
                  emit_check kill)
              v.v_spec_kills
        end)
      a.versions;
    apply_edits cfg edits
  end

let run_expr (ctx : codemotion_ctx) (collect : Expr.collect_ctx) (f : Func.t)
    (key : Expr.key) (stats : stats) : unit =
  codemotion ctx collect f key stats (prepare ctx collect f key)
