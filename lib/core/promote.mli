(** Register promotion driver — the paper's primary contribution.

    Runs bottom-up rounds of per-expression SSAPRE over every function of a
    program, in place (paper section 3.2: [p] before [*p] before [**p]):
    round 1 promotes direct references; later rounds promote indirect
    references through address temps exposed by earlier rounds.  The alias
    analyses and mod/ref summaries are recomputed between rounds because
    each round manufactures new temps.

    After promotion the program contains multiple-definition temps plus
    [Check]/[Invala]/[Sw_check] pseudo-instructions; it is no longer
    interpretable by {!Srp_profile.Interp} but compiles via
    {!Srp_target.Codegen} and runs on {!Srp_machine.Machine}. *)

type result = {
  stats : Ssapre.stats;  (** whole-program promotion statistics *)
  per_func : (string * Ssapre.stats) list;
}

(** Per-function register-pressure summary fed back from the backend's
    allocator (injected by the driver — srp_core cannot depend on
    srp_target). *)
type pressure = {
  webs : int;  (** allocation entities across both classes *)
  peak_int : int;  (** must-reside integer peak, stack pointer included *)
  peak_fp : int;
  spill_traffic : int;  (** projected registers beyond the RSE pool *)
}

(** [run ~config ~pressure prog] promotes every function of [prog] in
    place and returns the statistics.  Defaults to {!Config.baseline}.

    [pressure] maps a function name to its register-pressure estimate;
    when supplied and [config.pressure] is set, candidates are ranked by
    weighted saved load latency and promoted only while the projected
    class pressure stays within [config.pressure_threshold] — above it a
    candidate must still out-pay its spill round-trip.  Without the
    callback (or with [config.pressure = false], the --no-pressure
    ablation) promotion is bit-identical to promote-everything. *)
val run :
  ?config:Config.t ->
  ?pressure:(string -> pressure option) ->
  Srp_ir.Program.t ->
  result

(**/**)

val policy_of_config : Srp_ir.Program.t -> Config.t -> Srp_ssa.Spec_policy.t
