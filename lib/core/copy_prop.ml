(* Copy propagation between promotion rounds.

   Round 1 rewrites each redundant scalar load as [Mov d = t]; loads that
   used [d] as an address base then read [load \[d\]].  Without propagation,
   two loads of *p end up with two different (single-use) address temps and
   round 2 cannot see they are the same expression.  Propagating copies
   whose source is itself a single-definition temp (or a constant) restores
   the unification: both loads become [load \[t\]] — this is the IR-level
   counterpart of the paper's bottom-up syntax-tree processing (p before
   *p, section 3.2).

   Sources with multiple definitions (promotion temps refreshed by checks)
   are never propagated: a check may change the temp's value, so "same
   temp" would no longer mean "same address".  This conservatism is exactly
   the paper's cascade restriction (section 4). *)

open Srp_ir

let run (f : Func.t) : unit =
  (* count static definitions per temp *)
  let def_counts = Expr.temp_def_counts f in
  let single_def t =
    match Temp.Tbl.find_opt def_counts t with Some 1 -> true | _ -> false
  in
  (* direct copy map: dst -> src, both sides single-def (or src constant) *)
  let copies = Temp.Tbl.create 32 in
  Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Instr.Mov { dst; src } when single_def dst -> (
        match src with
        | Ops.Temp s when single_def s -> Temp.Tbl.replace copies dst src
        | Ops.Int _ | Ops.Flt _ | Ops.Sym_addr _ -> Temp.Tbl.replace copies dst src
        | Ops.Temp _ -> ())
      | _ -> ())
    f;
  (* resolve chains (dst -> src -> src' ...) with a depth guard *)
  let rec resolve ?(depth = 0) (o : Ops.operand) : Ops.operand =
    if depth > 32 then o
    else
      match o with
      | Ops.Temp t -> (
        match Temp.Tbl.find_opt copies t with
        | Some src -> resolve ~depth:(depth + 1) src
        | None -> o)
      | Ops.Int _ | Ops.Flt _ | Ops.Sym_addr _ -> o
  in
  let subst_operand (o : Ops.operand) : Ops.operand = resolve o in
  let subst_addr (a : Ops.addr) : Ops.addr =
    match a.Ops.base with
    | Ops.Sym _ -> a
    | Ops.Reg r -> (
      match resolve (Ops.Temp r) with
      | Ops.Temp r' -> { a with Ops.base = Ops.Reg r' }
      | Ops.Sym_addr s ->
        (* the pointer is a known symbol address: the access is direct *)
        { Ops.base = Ops.Sym s; offset = a.Ops.offset }
      | Ops.Int _ | Ops.Flt _ -> a)
  in
  let subst_instr (ins : Instr.instr) : Instr.instr =
    match ins with
    | Instr.Load { dst; addr; mty; site; promo } ->
      Instr.Load { dst; addr = subst_addr addr; mty; site; promo }
    | Instr.Store { src; addr; mty; site } ->
      Instr.Store { src = subst_operand src; addr = subst_addr addr; mty; site }
    | Instr.Bin { dst; op; a; b } ->
      Instr.Bin { dst; op; a = subst_operand a; b = subst_operand b }
    | Instr.Un { dst; op; a } -> Instr.Un { dst; op; a = subst_operand a }
    | Instr.Mov { dst; src } -> Instr.Mov { dst; src = subst_operand src }
    | Instr.Call { dst; callee; args; site } ->
      Instr.Call { dst; callee; args = List.map subst_operand args; site }
    | Instr.Alloc { dst; nbytes; site } ->
      Instr.Alloc { dst; nbytes = subst_operand nbytes; site }
    | Instr.Check { dst; addr; mty; site; kind; recovery } ->
      Instr.Check { dst; addr = subst_addr addr; mty; site; kind; recovery }
    | Instr.Invala _ -> ins
    | Instr.Sw_check { dst; addr; store_addr; stored; mty; site } ->
      Instr.Sw_check
        { dst; addr = subst_addr addr; store_addr = subst_addr store_addr;
          stored = subst_operand stored; mty; site }
  in
  let subst_term (t : Instr.terminator) : Instr.terminator =
    match t with
    | Instr.Jump _ -> t
    | Instr.Br { cond; ifso; ifnot; site } ->
      Instr.Br { cond = subst_operand cond; ifso; ifnot; site }
    | Instr.Ret (Some o) -> Instr.Ret (Some (subst_operand o))
    | Instr.Ret None -> t
  in
  List.iter
    (fun blk ->
      blk.Block.instrs <- List.map subst_instr blk.Block.instrs;
      blk.Block.term <- subst_term blk.Block.term)
    (Func.blocks f)

(* Block-local copy propagation with *multi-definition* sources (promotion
   temps).  [Mov d = t] makes d an alias of t until either is redefined
   within the block; uses of d in that window read t instead.  This is what
   lets two loads of *w inside one loop iteration share w's promotion temp
   as their address base even though the temp is redefined every iteration
   — pointer-walking loops depend on it. *)
let run_local (f : Func.t) : unit =
  let subst_in_block (blk : Block.t) =
    let alias : Ops.operand Temp.Tbl.t = Temp.Tbl.create 8 in
    let kill_temp d =
      Temp.Tbl.remove alias d;
      (* any alias whose source is d dies too *)
      let stale =
        Temp.Tbl.fold
          (fun k v acc ->
            match v with
            | Ops.Temp s when Temp.equal s d -> k :: acc
            | _ -> acc)
          alias []
      in
      List.iter (Temp.Tbl.remove alias) stale
    in
    let res (o : Ops.operand) =
      match o with
      | Ops.Temp t -> ( match Temp.Tbl.find_opt alias t with Some v -> v | None -> o)
      | _ -> o
    in
    let res_addr (a : Ops.addr) =
      match a.Ops.base with
      | Ops.Sym _ -> a
      | Ops.Reg r -> (
        match Temp.Tbl.find_opt alias r with
        | Some (Ops.Temp r') -> { a with Ops.base = Ops.Reg r' }
        | Some (Ops.Sym_addr s) -> { Ops.base = Ops.Sym s; offset = a.Ops.offset }
        | Some _ | None -> a)
    in
    let rewrite (ins : Instr.instr) : Instr.instr =
      let ins' =
        match ins with
        | Instr.Load { dst; addr; mty; site; promo } ->
          Instr.Load { dst; addr = res_addr addr; mty; site; promo }
        | Instr.Store { src; addr; mty; site } ->
          Instr.Store { src = res src; addr = res_addr addr; mty; site }
        | Instr.Bin { dst; op; a; b } -> Instr.Bin { dst; op; a = res a; b = res b }
        | Instr.Un { dst; op; a } -> Instr.Un { dst; op; a = res a }
        | Instr.Mov { dst; src } -> Instr.Mov { dst; src = res src }
        | Instr.Call { dst; callee; args; site } ->
          Instr.Call { dst; callee; args = List.map res args; site }
        | Instr.Alloc { dst; nbytes; site } ->
          Instr.Alloc { dst; nbytes = res nbytes; site }
        | Instr.Check { dst; addr; mty; site; kind; recovery } ->
          Instr.Check { dst; addr = res_addr addr; mty; site; kind; recovery }
        | Instr.Invala _ -> ins
        | Instr.Sw_check { dst; addr; store_addr; stored; mty; site } ->
          Instr.Sw_check
            { dst; addr = res_addr addr; store_addr = res_addr store_addr;
              stored = res stored; mty; site }
      in
      List.iter kill_temp (Instr.defs ins');
      (match ins' with
      | Instr.Mov { dst; src = (Ops.Temp _ | Ops.Sym_addr _) as src } ->
        Temp.Tbl.replace alias dst src
      | _ -> ());
      ins'
    in
    blk.Block.instrs <- List.map rewrite blk.Block.instrs;
    blk.Block.term <-
      (match blk.Block.term with
      | Instr.Jump _ as t -> t
      | Instr.Br { cond; ifso; ifnot; site } ->
        Instr.Br { cond = res cond; ifso; ifnot; site }
      | Instr.Ret (Some o) -> Instr.Ret (Some (res o))
      | Instr.Ret None as t -> t)
  in
  List.iter subst_in_block (Func.blocks f)
