(* Structured emission: assemble the JSON documents behind `srp run --json`
   and `srp bench --json` / `bench/main.exe --json`.

   Two schemas:
   - "srp-run-v1": one execution — global counters, promotion statistics,
     process pass statistics, per-site event histogram and the top
     mis-speculating sites (the pfmon event-sampling stand-in);
   - "srp-bench-v1": one baseline-vs-speculative comparison per workload,
     carrying the Figure 8-11 rows machine-readably (the BENCH_*.json
     perf-trajectory feed).

   Per-event sums over the site histogram equal the matching global
   counters by construction; tests assert it. *)

module J = Srp_obs.Json
module C = Srp_machine.Counters
module Site_hist = Srp_obs.Site_hist

let promotion_json (s : Srp_core.Ssapre.stats) : J.t =
  J.Obj
    [ ("exprs_promoted", J.Int s.Srp_core.Ssapre.exprs_promoted);
      ("loads_eliminated_direct", J.Int s.Srp_core.Ssapre.loads_eliminated_direct);
      ("loads_eliminated_indirect",
       J.Int s.Srp_core.Ssapre.loads_eliminated_indirect);
      ("eliminated_sites",
       J.Arr
         (List.map
            (fun s -> J.Int (Srp_ir.Site.to_int s))
            s.Srp_core.Ssapre.eliminated_sites));
      ("checks_inserted", J.Int s.Srp_core.Ssapre.checks_inserted);
      ("sw_checks_inserted", J.Int s.Srp_core.Ssapre.sw_checks_inserted);
      ("invala_inserted", J.Int s.Srp_core.Ssapre.invala_inserted);
      ("loads_inserted", J.Int s.Srp_core.Ssapre.loads_inserted);
      ("ld_sa_inserted", J.Int s.Srp_core.Ssapre.ld_sa_inserted);
      ("arms", J.Int s.Srp_core.Ssapre.arms);
      ("chk_a_inserted", J.Int s.Srp_core.Ssapre.chk_a_inserted) ]

(* The "top mis-speculating sites" rows: check-failure ranking with
   volumes and failure rates. *)
let top_missers_json ?(n = 10) (h : Site_hist.t) : J.t =
  J.Arr
    (List.map
       (fun (site, fails) ->
         let checks = Site_hist.count h ~site Site_hist.Checks_retired in
         J.Obj
           [ ("site", J.Int site);
             ("check_failures", J.Int fails);
             ("checks_retired", J.Int checks);
             ("failure_rate_pct",
              J.Float
                (if checks = 0 then 0.0
                 else 100.0 *. float_of_int fails /. float_of_int checks)) ])
       (Site_hist.top h Site_hist.Check_failures ~n))

(* The "top mispredicting branches" rows: branch sites ranked by static
   predictor misses, the per-site view of the branch_mispredicts counter. *)
let top_mispredicts_json ?(n = 10) (h : Site_hist.t) : J.t =
  J.Arr
    (List.map
       (fun (site, misses) ->
         J.Obj [ ("site", J.Int site); ("branch_mispredicts", J.Int misses) ])
       (Site_hist.top h Site_hist.Branch_mispredicts ~n))

(* One `srp run` execution. *)
let run_json ~name (r : Pipeline.run_result) : J.t =
  J.Obj
    [ ("schema", J.String "srp-run-v1");
      ("workload", J.String name);
      ("level", J.String (Pipeline.level_name r.Pipeline.compiled.Pipeline.level));
      ("ablations",
       J.Arr
         (List.map
            (fun a -> J.String (Pipeline.ablation_name a))
            r.Pipeline.compiled.Pipeline.ablations));
      ("exit_code", J.Int (Int64.to_int r.Pipeline.exit_code));
      ("output", J.String r.Pipeline.output);
      ("counters", C.to_json r.Pipeline.counters);
      ("promotion",
       match r.Pipeline.compiled.Pipeline.promote with
       | Some p -> promotion_json p.Srp_core.Promote.stats
       | None -> J.Null);
      ("pass_stats", Srp_obs.Stats.to_json ());
      ("site_histogram", Site_hist.to_json r.Pipeline.site_stats);
      ("top_misspeculating_sites", top_missers_json r.Pipeline.site_stats);
      ("top_mispredicting_branches", top_mispredicts_json r.Pipeline.site_stats) ]

(* Register demand of one build: the per-function physical file sizes the
   allocator settled on.  [total] is what the RSE sees (every call
   allocates the callee's frame), [max] is the widest single frame. *)
let nregs_json (r : Pipeline.run_result) : J.t =
  let tgt = r.Pipeline.compiled.Pipeline.target in
  let total = ref 0 and widest = ref 0 and ftotal = ref 0 in
  Hashtbl.iter
    (fun _ f ->
      total := !total + f.Srp_target.Insn.nregs;
      ftotal := !ftotal + f.Srp_target.Insn.nfregs;
      if f.Srp_target.Insn.nregs > !widest then widest := f.Srp_target.Insn.nregs)
    tgt.Srp_target.Insn.funcs;
  J.Obj
    [ ("nregs", J.Int !total);
      ("max_frame_nregs", J.Int !widest);
      ("nfregs", J.Int !ftotal);
      ("split", J.Bool r.Pipeline.compiled.Pipeline.split) ]

(* One baseline-vs-speculative comparison, as the bench harness computes
   it: the four figure rows plus both builds' raw counters. *)
let bench_entry_json (r : Experiments.bench_result) : J.t =
  let name = r.Experiments.w.Workload.name in
  let base = r.Experiments.base.Pipeline.counters in
  let spec = r.Experiments.spec.Pipeline.counters in
  J.Obj
    [ ("name", J.String name);
      ("regalloc",
       J.Obj
         [ ("baseline", nregs_json r.Experiments.base);
           ("alat", nregs_json r.Experiments.spec) ]);
      ("figure8", Report.fig8_json (Report.figure8_row ~name ~base ~spec));
      ("figure9",
       Report.fig9_json
         (Report.figure9_row ~name
            ~base:(Experiments.promote_stats r.Experiments.base)
            ~spec:(Experiments.promote_stats r.Experiments.spec)));
      ("figure10", Report.fig10_json (Report.figure10_row ~name ~spec));
      ("figure11", Report.fig11_json (Report.figure11_row ~name ~base ~spec));
      ("baseline_counters", C.to_json base);
      ("alat_counters", C.to_json spec);
      ("alat_top_misspeculating_sites",
       top_missers_json r.Experiments.spec.Pipeline.site_stats);
      ("branch_mispredicts",
       J.Obj
         [ ("baseline", J.Int base.C.branch_mispredicts);
           ("alat", J.Int spec.C.branch_mispredicts) ]);
      ("alat_top_mispredicting_branches",
       top_mispredicts_json r.Experiments.spec.Pipeline.site_stats) ]

(* The artifact-cache block of a bench run: store counters plus the
   sweep's effective build throughput.  [compiles] is the number of
   (workload, level) build-and-run tasks, [wall_secs] the sweep's
   wall-clock time. *)
let cache_json ~(stats : Stage.cache_stats) ~compiles ~wall_secs : J.t =
  J.Obj
    [ ("hits", J.Int stats.Stage.hits);
      ("misses", J.Int stats.Stage.misses);
      ("evictions", J.Int stats.Stage.evictions);
      ("hit_rate", J.Float (Stage.hit_rate stats));
      ("compiles", J.Int compiles);
      ("wall_secs", J.Float wall_secs);
      ("compiles_per_sec",
       J.Float
         (if wall_secs > 0.0 then float_of_int compiles /. wall_secs else 0.0))
    ]

let bench_json ?(quick = false) ?cache (rs : Experiments.bench_result list) :
    J.t =
  J.Obj
    ([ ("schema", J.String "srp-bench-v1");
       ("quick", J.Bool quick);
       ("benchmarks", J.Arr (List.map bench_entry_json rs)) ]
    @ (match cache with None -> [] | Some c -> [ ("cache", c) ])
    @ [ ("pass_stats", Srp_obs.Stats.to_json ()) ])

let write_file path (doc : J.t) : unit =
  let oc = open_out path in
  output_string oc (J.to_string ~indent:2 doc);
  output_char oc '\n';
  close_out oc
