(* Compilation pipelines — the experiment matrix of the paper:

   - [O0]: straight lowering, no promotion (for reference only);
   - [Baseline]: the ORC -O3 stand-in: conservative PRE register promotion
     plus software run-time disambiguation on scalars (paper section 4
     says the baseline includes the software approach of [30]);
   - [Alat]: baseline machinery plus ALAT data speculation driven by an
     alias profile collected on the *train* input (the paper's system);
   - [Alat_heuristic]: ALAT speculation from static heuristics only —
     the no-profile ablation;
   - [Conservative]: PRE without any speculation (software checks off),
     isolating the value of the software baseline itself. *)

open Srp_ir
module Alias_profile = Srp_profile.Alias_profile

type level =
  | O0
  | Conservative
  | Baseline
  | Alat
  | Alat_heuristic

let level_name = function
  | O0 -> "O0"
  | Conservative -> "conservative"
  | Baseline -> "baseline"
  | Alat -> "alat"
  | Alat_heuristic -> "alat-heuristic"

(* Collect an alias profile by interpreting the program on the train
   input. *)
let train_profile (w : Workload.t) : Alias_profile.t =
  Srp_obs.Stats.time ~pass:"profile" "train_interp" @@ fun () ->
  let prog = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input prog w.Workload.train;
  let interp = Srp_profile.Interp.create prog in
  ignore (Srp_profile.Interp.run interp);
  Srp_profile.Interp.profile interp

(* --- ablations (ROADMAP "ablation wiring") ---

   Named promotion-config overrides applied on top of the selected level,
   so a single workload can be measured under each configuration of the
   bench sweep (A, E, F and a round-limit probe) without running the whole
   matrix.  Ablations B-D are level choices and already reachable via
   [-l baseline|conservative|alat-heuristic]. *)

type ablation =
  | No_invala  (** disable the invala.e cold-path strategy (ablation A) *)
  | No_control_spec  (** disable ld.sa hoisting (ablation E) *)
  | Cascade  (** enable section-2.4 cascade promotion (ablation F) *)
  | Single_round  (** max_rounds = 1: direct references only *)

let all_ablations = [ No_invala; No_control_spec; Cascade; Single_round ]

let ablation_name = function
  | No_invala -> "no-invala"
  | No_control_spec -> "no-control-spec"
  | Cascade -> "cascade"
  | Single_round -> "single-round"

let ablation_of_string s =
  List.find_opt (fun a -> ablation_name a = s) all_ablations

let apply_ablation (a : ablation) (c : Srp_core.Config.t) : Srp_core.Config.t =
  match a with
  | No_invala -> { c with Srp_core.Config.use_invala = false }
  | No_control_spec -> { c with Srp_core.Config.control_spec = false }
  | Cascade -> { c with Srp_core.Config.cascade = true }
  | Single_round -> { c with Srp_core.Config.max_rounds = 1 }

let config_of_level (level : level) (profile : Alias_profile.t option) :
    Srp_core.Config.t option =
  match level, profile with
  | O0, _ -> None
  | Conservative, _ -> Some Srp_core.Config.conservative
  | Baseline, _ -> Some Srp_core.Config.baseline
  | Alat, Some p -> Some (Srp_core.Config.alat ~profile:p)
  | Alat, None -> Some Srp_core.Config.alat_heuristic
  | Alat_heuristic, _ -> Some Srp_core.Config.alat_heuristic

type compiled = {
  level : level;
  ablations : ablation list;
  split : bool; (* hole-aware regalloc with live-range splitting *)
  ir : Program.t;
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(* Compile [w] at [level]; the ref input is applied to the globals before
   code generation (static data), the profile comes from the train run.
   [ablations] are config overrides on top of the level (no effect at O0,
   which runs no promotion at all).  [split:false] selects the
   closed-interval allocator (the --no-split ablation). *)
let compile ?profile ?(ablations = []) ?(layout = true) ?(bundle = true)
    ?(split = true) ~(input : Workload.input) (w : Workload.t) (level : level)
    : compiled =
  let ir = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input ir input;
  let promote =
    match config_of_level level profile with
    | None -> None
    | Some config ->
      let config = List.fold_left (Fun.flip apply_ablation) config ablations in
      Some (Srp_core.Promote.run ~config ir)
  in
  let ra =
    if split then Srp_target.Regalloc.default_policy
    else Srp_target.Regalloc.closed_policy
  in
  let target = Srp_target.Codegen.gen_program ~layout ~bundle ~ra ir in
  { level; ablations; split; ir; target; promote }

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
  site_stats : Srp_obs.Site_hist.t;
}

let run ?fuel ?trace (c : compiled) : run_result =
  let m = Srp_machine.Machine.create ?fuel ?trace c.target in
  let exit_code = Srp_machine.Machine.run m in
  { compiled = c; exit_code;
    output = Srp_machine.Machine.output m;
    counters = Srp_machine.Machine.counters m;
    site_stats = Srp_machine.Machine.site_stats m }

(* The standard experiment: profile on train, compile at [level], run on
   ref. *)
let profile_compile_run ?fuel ?trace ?ablations ?layout ?bundle ?split
    (w : Workload.t) (level : level) : run_result =
  let profile =
    match level with
    | Alat -> Some (train_profile w)
    | O0 | Conservative | Baseline | Alat_heuristic -> None
  in
  let c =
    compile ?profile ?ablations ?layout ?bundle ?split ~input:w.Workload.ref_
      w level
  in
  run ?fuel ?trace c
