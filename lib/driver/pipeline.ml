(* Compilation pipelines — the experiment matrix of the paper:

   - [O0]: straight lowering, no promotion (for reference only);
   - [Baseline]: the ORC -O3 stand-in: conservative PRE register promotion
     plus software run-time disambiguation on scalars (paper section 4
     says the baseline includes the software approach of [30]);
   - [Alat]: baseline machinery plus ALAT data speculation driven by an
     alias profile collected on the *train* input (the paper's system);
   - [Alat_heuristic]: ALAT speculation from static heuristics only —
     the no-profile ablation;
   - [Conservative]: PRE without any speculation (software checks off),
     isolating the value of the software baseline itself.

   Since the staged-pipeline refactor a compile is a chain of named stages
   (lower -> apply-input -> profile -> promote -> select -> regalloc ->
   layout -> bundle), each keyed by content (Stage.Key) and each an
   immutable artifact that any number of builds can share — the bench
   sweep lowers each source once and `srp serve` shares train profiles
   across a batch.  The original monolithic path survives unchanged as
   [*_monolithic]: it is the reference the differential tests (and the
   `srp run --no-cache` ablation) hold the staged path bit-identical
   against. *)

open Srp_ir
module Alias_profile = Srp_profile.Alias_profile

type level =
  | O0
  | Conservative
  | Baseline
  | Alat
  | Alat_heuristic

let level_name = function
  | O0 -> "O0"
  | Conservative -> "conservative"
  | Baseline -> "baseline"
  | Alat -> "alat"
  | Alat_heuristic -> "alat-heuristic"

let all_levels = [ O0; Conservative; Baseline; Alat; Alat_heuristic ]

let level_of_string s =
  List.find_opt (fun l -> level_name l = s) all_levels

(* --- ablations (ROADMAP "ablation wiring") ---

   Named promotion-config overrides applied on top of the selected level,
   so a single workload can be measured under each configuration of the
   bench sweep (A, E, F and a round-limit probe) without running the whole
   matrix.  Ablations B-D are level choices and already reachable via
   [-l baseline|conservative|alat-heuristic]. *)

type ablation =
  | No_invala  (** disable the invala.e cold-path strategy (ablation A) *)
  | No_control_spec  (** disable ld.sa hoisting (ablation E) *)
  | Cascade  (** enable section-2.4 cascade promotion (ablation F) *)
  | Single_round  (** max_rounds = 1: direct references only *)

let all_ablations = [ No_invala; No_control_spec; Cascade; Single_round ]

let ablation_name = function
  | No_invala -> "no-invala"
  | No_control_spec -> "no-control-spec"
  | Cascade -> "cascade"
  | Single_round -> "single-round"

let ablation_of_string s =
  List.find_opt (fun a -> ablation_name a = s) all_ablations

let apply_ablation (a : ablation) (c : Srp_core.Config.t) : Srp_core.Config.t =
  match a with
  | No_invala -> { c with Srp_core.Config.use_invala = false }
  | No_control_spec -> { c with Srp_core.Config.control_spec = false }
  | Cascade -> { c with Srp_core.Config.cascade = true }
  | Single_round -> { c with Srp_core.Config.max_rounds = 1 }

let config_of_level (level : level) (profile : Alias_profile.t option) :
    Srp_core.Config.t option =
  match level, profile with
  | O0, _ -> None
  | Conservative, _ -> Some Srp_core.Config.conservative
  | Baseline, _ -> Some Srp_core.Config.baseline
  | Alat, Some p -> Some (Srp_core.Config.alat ~profile:p)
  | Alat, None -> Some Srp_core.Config.alat_heuristic
  | Alat_heuristic, _ -> Some Srp_core.Config.alat_heuristic

type compiled = {
  level : level;
  ablations : ablation list;
  split : bool; (* hole-aware regalloc with live-range splitting *)
  ir : Program.t;
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(* Per-function pressure estimator handed to the promoter (srp_core cannot
   see srp_target, so the driver closes the loop): instruction selection
   plus a discarded allocator run over every function, snapshotted in one
   pass at the first request.  The first request arrives before any
   candidate commits, so every frame is the pristine unpromoted one and
   the snapshot is promotion-order independent; later rounds reuse it.

   [peak_int] is the projected co-resident stacked-register demand: the
   function's own allocated frame plus the largest other frame in the
   program — the two-deep call-stack model (main + one leaf at a time)
   that matches these kernels' measured max_stacked_regs exactly.  The
   RSE spills whole co-resident stacks, so a function whose own frame
   looks modest is still over budget when it sits under (or over) a fat
   partner frame.  Always computed against the default (hole-aware)
   policy — the estimate feeds the promote stage, whose content key must
   not depend on the downstream --no-split setting. *)
let pressure_fn (prog : Program.t) :
    string -> Srp_core.Promote.pressure option =
  let memo : (string, Srp_core.Promote.pressure option) Hashtbl.t =
    Hashtbl.create 16
  in
  let snapshot () =
    let open Srp_target in
    let ests =
      List.map
        (fun f ->
          let s = Codegen.select_func f in
          ( Func.name f,
            Regalloc.estimate
              { Regalloc.code = s.Codegen.sel_code;
                nivregs = s.Codegen.sel_nivregs;
                nfvregs = s.Codegen.sel_nfvregs;
                live_in = s.Codegen.sel_live_in;
                flive_in = s.Codegen.sel_flive_in;
                pinned = s.Codegen.sel_pinned;
                fpinned = s.Codegen.sel_fpinned;
                spill_base = s.Codegen.sel_frame_bytes } ))
        (Program.funcs prog)
    in
    List.iter
      (fun (name, e) ->
        let partner =
          List.fold_left
            (fun acc (n, o) ->
              if n = name then acc else max acc o.Regalloc.est_frame_int)
            0 ests
        in
        let stacked = e.Regalloc.est_frame_int + partner in
        Hashtbl.replace memo name
          (Some
             { Srp_core.Promote.webs = e.Regalloc.est_webs;
               peak_int = stacked;
               peak_fp = e.Regalloc.est_frame_fp;
               spill_traffic = max 0 (stacked - 24) }))
      ests
  in
  fun name ->
    if Hashtbl.length memo = 0 then snapshot ();
    match Hashtbl.find_opt memo name with Some r -> r | None -> None

(* --- the staged pipeline --- *)

(* Each stage helper returns (key, artifact-payload).  [cache] is an
   optional Stage.store: with one, artifacts are shared and reused across
   builds; without one, stages still run in the staged order (single
   lower, explicit clones) but nothing is retained. *)

(* Every stage build runs under a span ("stage.lower", ..., category
   "stage") carrying the content key, so a span file shows which builds
   ran, on which domain, against which artifact — cache hits emit no
   build span (the store emits a "cache.hit" instant instead). *)
let staged name ~key (build : unit -> Stage.artifact) () : Stage.artifact =
  Srp_obs.Span.with_span ~cat:"stage" ("stage." ^ name)
    ~args:[ ("key", Srp_obs.Json.String key) ]
    build

let lower_stage cache (source : string) : string * Program.t =
  let key = Stage.Key.lower ~source in
  ( key,
    Stage.as_lowered
      (Stage.get cache ~key
         ~build:
           (staged "lower" ~key (fun () ->
                Stage.Lowered (Srp_frontend.Lower.compile_source source)))) )

(* Input application works on a clone: the lowered artifact is shared by
   every build of this source, so baking an input set into it in place
   would corrupt every other consumer (see the regression tests). *)
let apply_stage cache ~(lower_key : string) (lowered : Program.t)
    (input : Workload.input) : string * Program.t =
  let key = Stage.Key.apply ~lower_key input in
  ( key,
    Stage.as_applied
      (Stage.get cache ~key
         ~build:
           (staged "apply-input" ~key (fun () ->
                let prog = Program.clone lowered in
                Workload.apply_input prog input;
                Stage.Applied prog))) )

let profile_stage cache ~(applied_key : string) (applied : Program.t) :
    string * Alias_profile.t =
  let key = Stage.Key.profile ~applied_key in
  ( key,
    Stage.as_profiled
      (Stage.get cache ~key
         ~build:
           (staged "profile" ~key (fun () ->
                Srp_obs.Stats.time ~pass:"profile" "train_interp" @@ fun () ->
                let interp = Srp_profile.Interp.create applied in
                ignore (Srp_profile.Interp.run interp);
                Stage.Profiled (Srp_profile.Interp.profile interp)))) )

(* Promotion mutates the program, so it too clones its (shared) input
   artifact.  At O0 there is no promotion: the applied artifact flows
   through unpromoted, under a key that still separates it from promoted
   siblings. *)
let promote_stage cache ~(applied_key : string) (applied : Program.t)
    (config : Srp_core.Config.t option) :
    string * Program.t * Srp_core.Promote.result option =
  let config_fp =
    match config with
    | None -> "none"
    | Some c -> Stage.Key.config_fingerprint c
  in
  let key = Stage.Key.promote ~applied_key ~config:config_fp in
  let art =
    Stage.get cache ~key
      ~build:
        (staged "promote" ~key (fun () ->
             match config with
             | None -> Stage.Applied applied
             | Some config ->
               let ir = Program.clone applied in
               let result =
                 Srp_core.Promote.run ~config ~pressure:(pressure_fn ir) ir
               in
               Stage.Promoted (ir, Some result)))
  in
  let ir, result = Stage.as_promoted art in
  (key, ir, result)

let select_stage cache ~(promote_key : string) (ir : Program.t) :
    string * Srp_target.Codegen.selected list =
  let key = Stage.Key.select ~promote_key in
  ( key,
    Stage.as_selected
      (Stage.get cache ~key
         ~build:
           (staged "select" ~key (fun () ->
                Stage.Selected (Srp_target.Codegen.select_program ir)))) )

let regalloc_stage cache ~(select_key : string) ~(split : bool)
    (sel : Srp_target.Codegen.selected list) :
    string * Srp_target.Codegen.allocated list =
  let key = Stage.Key.regalloc ~select_key ~split in
  let ra =
    if split then Srp_target.Regalloc.default_policy
    else Srp_target.Regalloc.closed_policy
  in
  ( key,
    Stage.as_allocated
      (Stage.get cache ~key
         ~build:
           (staged "regalloc" ~key (fun () ->
                Stage.Allocated (Srp_target.Codegen.alloc_program ~ra sel)))) )

let layout_stage cache ~(regalloc_key : string) ~(layout : bool)
    (al : Srp_target.Codegen.allocated list) :
    string * Srp_target.Codegen.allocated list =
  let key = Stage.Key.layout ~regalloc_key ~layout in
  ( key,
    Stage.as_allocated
      (Stage.get cache ~key
         ~build:
           (staged "layout" ~key (fun () ->
                Stage.Allocated
                  (if layout then Srp_target.Codegen.layout_program al else al)))) )

(* Scheduling and bundling share one stage: the scheduler's output only
   ever flows into the bundler (or the flat fallback), so a separate
   artifact would never be shared across different downstream settings. *)
let bundle_stage cache ~(layout_key : string) ~(sched : bool)
    ~(bundle : bool) (al : Srp_target.Codegen.allocated list) :
    string * Srp_target.Insn.func list =
  let key = Stage.Key.bundle ~layout_key ~sched ~bundle in
  ( key,
    Stage.as_bundled
      (Stage.get cache ~key
         ~build:
           (staged "bundle" ~key (fun () ->
                Stage.Bundled
                  (Srp_target.Codegen.bundle_program ~sched ~bundle al)))) )

(* Collect an alias profile by interpreting the program on the train
   input, via the lower / apply-input / profile stages — the train run
   reuses the same lower artifact as the ref build. *)
let train_profile ?cache (w : Workload.t) : Alias_profile.t =
  let lower_key, lowered = lower_stage cache w.Workload.source in
  let applied_key, applied =
    apply_stage cache ~lower_key lowered w.Workload.train
  in
  snd (profile_stage cache ~applied_key applied)

(* Compile [w] at [level]; the ref input is applied to the globals before
   code generation (static data), the profile comes from the train run.
   [ablations] are config overrides on top of the level (no effect at O0,
   which runs no promotion at all).  [split:false] selects the
   closed-interval allocator (the --no-split ablation); [pressure:false]
   turns the pressure gate off (the --no-pressure ablation, flowing
   through the config so the promote content key records it);
   [prob:false] turns probabilistic speculation gating off — the exact
   binary-verdict legacy path, also recorded in the promote content key
   (the --no-prob ablation); [sched:false] skips the pre-bundle list
   scheduler (the --no-sched ablation, recorded in the bundle stage
   key). *)
let compile ?cache ?profile ?(ablations = []) ?(layout = true)
    ?(sched = true) ?(bundle = true) ?(split = true) ?(pressure = true)
    ?(prob = true) ~(input : Workload.input) (w : Workload.t) (level : level)
    : compiled =
  let lower_key, lowered = lower_stage cache w.Workload.source in
  let applied_key, applied = apply_stage cache ~lower_key lowered input in
  let config =
    match config_of_level level profile with
    | None -> None
    | Some config ->
      let config = List.fold_left (Fun.flip apply_ablation) config ablations in
      Some
        { config with
          Srp_core.Config.pressure = config.Srp_core.Config.pressure && pressure;
          prob = config.Srp_core.Config.prob && prob
        }
  in
  let promote_key, ir, promote =
    promote_stage cache ~applied_key applied config
  in
  let select_key, sel = select_stage cache ~promote_key ir in
  let regalloc_key, al = regalloc_stage cache ~select_key ~split sel in
  let layout_key, al = layout_stage cache ~regalloc_key ~layout al in
  let _bundle_key, fns = bundle_stage cache ~layout_key ~sched ~bundle al in
  let target = Srp_target.Codegen.assemble_program ir fns in
  { level; ablations; split; ir; target; promote }

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
  site_stats : Srp_obs.Site_hist.t;
}

let run ?fuel ?trace ?timeline (c : compiled) : run_result =
  let m = Srp_machine.Machine.create ?fuel ?trace ?timeline c.target in
  let exit_code = Srp_machine.Machine.run m in
  { compiled = c; exit_code;
    output = Srp_machine.Machine.output m;
    counters = Srp_machine.Machine.counters m;
    site_stats = Srp_machine.Machine.site_stats m }

(* The standard experiment: profile on train, compile at [level], run on
   ref.  Without an explicit [cache] an ephemeral store scoped to this
   run still shares the lower artifact between the train-profile and ref
   builds, so parse/lower fires once per distinct source (the seed path
   lowered the same source twice per alat run). *)
let profile_compile_run ?fuel ?trace ?timeline ?cache ?ablations ?layout
    ?sched ?bundle ?split ?pressure ?prob (w : Workload.t) (level : level) :
    run_result =
  let cache =
    match cache with Some c -> c | None -> Stage.create ~capacity:16 ()
  in
  let profile =
    match level with
    | Alat -> Some (train_profile ~cache w)
    | O0 | Conservative | Baseline | Alat_heuristic -> None
  in
  let c =
    compile ~cache ?profile ?ablations ?layout ?sched ?bundle ?split
      ?pressure ?prob ~input:w.Workload.ref_ w level
  in
  run ?fuel ?trace ?timeline c

(* --- the seed monolithic path ---

   Kept verbatim as the reference implementation: the staged/cached path
   must stay bit-identical to it — output, exit code and every machine
   counter — which the differential tests and the `srp run --no-cache`
   ablation enforce. *)

let train_profile_monolithic (w : Workload.t) : Alias_profile.t =
  Srp_obs.Stats.time ~pass:"profile" "train_interp" @@ fun () ->
  let prog = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input prog w.Workload.train;
  let interp = Srp_profile.Interp.create prog in
  ignore (Srp_profile.Interp.run interp);
  Srp_profile.Interp.profile interp

let compile_monolithic ?profile ?(ablations = []) ?(layout = true)
    ?(sched = true) ?(bundle = true) ?(split = true) ?(pressure = true)
    ?(prob = true) ~(input : Workload.input) (w : Workload.t) (level : level)
    : compiled =
  let ir = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input ir input;
  let promote =
    match config_of_level level profile with
    | None -> None
    | Some config ->
      let config = List.fold_left (Fun.flip apply_ablation) config ablations in
      let config =
        { config with
          Srp_core.Config.pressure = config.Srp_core.Config.pressure && pressure;
          prob = config.Srp_core.Config.prob && prob
        }
      in
      Some (Srp_core.Promote.run ~config ~pressure:(pressure_fn ir) ir)
  in
  let ra =
    if split then Srp_target.Regalloc.default_policy
    else Srp_target.Regalloc.closed_policy
  in
  let target = Srp_target.Codegen.gen_program ~layout ~sched ~bundle ~ra ir in
  { level; ablations; split; ir; target; promote }

let profile_compile_run_monolithic ?fuel ?trace ?timeline ?ablations ?layout
    ?sched ?bundle ?split ?pressure ?prob (w : Workload.t) (level : level) :
    run_result =
  let profile =
    match level with
    | Alat -> Some (train_profile_monolithic w)
    | O0 | Conservative | Baseline | Alat_heuristic -> None
  in
  let c =
    compile_monolithic ?profile ?ablations ?layout ?sched ?bundle ?split
      ?pressure ?prob ~input:w.Workload.ref_ w level
  in
  run ?fuel ?trace ?timeline c
