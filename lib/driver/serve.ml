(* `srp serve` — the batch compile-and-simulate daemon (ROADMAP
   "production-scale" item).

   Protocol (schema srp-serve-v1): JSON-lines on stdin, one job per line,
   batch ends at EOF.  A job names a built-in workload or carries inline
   MiniC source, plus a level, ablations, backend flags and a fuel bound
   (the machine config):

     {"id": 1, "workload": "gzip", "level": "alat"}
     {"id": 2, "source": "int main() { return 0; }", "level": "O0",
      "ablations": [], "layout": true, "sched": true, "bundle": true,
      "split": true, "fuel": 1000000}

   The daemon dedupes jobs by content key, fans the unique jobs out on
   the Experiments domain pool over one shared stage store (so every
   build of a workload shares its lower artifact and train profile), and
   answers one JSON line per job in input order, followed by a summary
   line with compiles/sec and the cache hit rate.  Each response carries
   the pass statistics of its own job (Stats.with_scope) — the global
   registry would conflate concurrent jobs. *)

module Json = Srp_obs.Json
module Stats = Srp_obs.Stats
module Span = Srp_obs.Span

type job = {
  j_id : Json.t;  (* echoed back verbatim; line number if absent *)
  j_w : Workload.t;
  j_level : Pipeline.level;
  j_ablations : Pipeline.ablation list;
  j_layout : bool;
  j_sched : bool;
  j_bundle : bool;
  j_split : bool;
  j_pressure : bool;
  j_prob : bool;
  j_fuel : int option;
}

(* The job's content key: everything that determines its result.  Two
   jobs with equal keys are the same compile-and-run, whatever their ids
   say — the second is answered from the first's result.  "v4": the
   prob gating flag joined the key; "v3" added the sched backend flag
   (PR 9). *)
let job_key (j : job) : string =
  Stage.Key.digest
    ([ "serve-job"; "v4"; j.j_w.Workload.source;
       Marshal.to_string j.j_w.Workload.train [];
       Marshal.to_string j.j_w.Workload.ref_ [];
       Pipeline.level_name j.j_level ]
    @ List.map Pipeline.ablation_name j.j_ablations
    @ [ string_of_bool j.j_layout; string_of_bool j.j_sched;
        string_of_bool j.j_bundle; string_of_bool j.j_split;
        string_of_bool j.j_pressure; string_of_bool j.j_prob;
        (match j.j_fuel with None -> "" | Some f -> string_of_int f) ])

let ( let* ) = Result.bind

let bool_field ~default name js =
  match Json.member name js with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Fmt.str "field %S must be a boolean" name)

let parse_job ~(lookup : string -> Workload.t option) ~(line_no : int)
    (js : Json.t) : Json.t * (job, string) result =
  let id =
    match Json.member "id" js with Some v -> v | None -> Json.Int line_no
  in
  let job =
    let* w =
      match (Json.member "workload" js, Json.member "source" js) with
      | Some v, None -> (
        match Option.bind (Some v) Json.to_string_opt with
        | None -> Error "field \"workload\" must be a string"
        | Some name -> (
          match lookup name with
          | Some w -> Ok w
          | None -> Error (Fmt.str "unknown workload %S" name)))
      | None, Some v -> (
        match Json.to_string_opt v with
        | None -> Error "field \"source\" must be a string"
        | Some source ->
          Ok { Workload.name = "<inline>"; description = "inline source";
               source; train = []; ref_ = [] })
      | Some _, Some _ -> Error "give either \"workload\" or \"source\", not both"
      | None, None -> Error "job needs a \"workload\" name or inline \"source\""
    in
    let* level =
      match Json.member "level" js with
      | None -> Ok Pipeline.Alat
      | Some v -> (
        match Option.bind (Json.to_string_opt v) Pipeline.level_of_string with
        | Some l -> Ok l
        | None -> Error "field \"level\" must name an optimization level")
    in
    let* ablations =
      match Json.member "ablations" js with
      | None -> Ok []
      | Some v -> (
        match Json.to_list_opt v with
        | None -> Error "field \"ablations\" must be an array of names"
        | Some items ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match
                Option.bind (Json.to_string_opt item) Pipeline.ablation_of_string
              with
              | Some a -> Ok (acc @ [ a ])
              | None -> Error "unknown ablation name")
            (Ok []) items)
    in
    let* layout = bool_field ~default:true "layout" js in
    let* sched = bool_field ~default:true "sched" js in
    let* bundle = bool_field ~default:true "bundle" js in
    let* split = bool_field ~default:true "split" js in
    let* pressure = bool_field ~default:true "pressure" js in
    let* prob = bool_field ~default:true "prob" js in
    let* fuel =
      match Json.member "fuel" js with
      | None -> Ok None
      | Some v -> (
        match Json.to_int_opt v with
        | Some f when f > 0 -> Ok (Some f)
        | _ -> Error "field \"fuel\" must be a positive integer")
    in
    Ok { j_id = id; j_w = w; j_level = level; j_ablations = ablations;
         j_layout = layout; j_sched = sched; j_bundle = bundle;
         j_split = split; j_pressure = pressure; j_prob = prob;
         j_fuel = fuel }
  in
  (id, job)

(* One executed job: the run result plus the pass statistics scoped to
   this job alone. *)
type outcome = (Pipeline.run_result * Stats.Scope.t, exn) result

let run_job ~cache ~key (j : job) : Pipeline.run_result * Stats.Scope.t =
  Span.with_span ~cat:"serve" "serve.job"
    ~args:
      [ ("key", Json.String key);
        ("workload", Json.String j.j_w.Workload.name);
        ("level", Json.String (Pipeline.level_name j.j_level)) ]
    (fun () ->
      Stats.with_scope (fun () ->
          Pipeline.profile_compile_run ?fuel:j.j_fuel ~cache
            ~ablations:j.j_ablations ~layout:j.j_layout ~sched:j.j_sched
            ~bundle:j.j_bundle ~split:j.j_split ~pressure:j.j_pressure
            ~prob:j.j_prob j.j_w j.j_level))

let result_json (j : job) ~key ~deduped (r : Pipeline.run_result)
    (scope : Stats.Scope.t) : Json.t =
  Json.Obj
    [ ("type", Json.String "result");
      ("schema", Json.String "srp-serve-v1");
      ("id", j.j_id);
      ("workload", Json.String j.j_w.Workload.name);
      ("level", Json.String (Pipeline.level_name j.j_level));
      ("key", Json.String key);
      ("deduped", Json.Bool deduped);
      ("exit_code", Json.Int (Int64.to_int r.Pipeline.exit_code));
      ("output", Json.String r.Pipeline.output);
      ("counters", Srp_machine.Counters.to_json r.Pipeline.counters);
      ("pass_stats", Stats.Scope.to_json scope) ]

let error_json (id : Json.t) (msg : string) : Json.t =
  Json.Obj
    [ ("type", Json.String "error");
      ("schema", Json.String "srp-serve-v1");
      ("id", id);
      ("error", Json.String msg) ]

(* Nearest-rank percentile over a sorted array; 0 for an empty batch. *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0
              (min (n - 1)
                 (int_of_float (Float.ceil (p *. float_of_int n)) - 1)))

let summary_json ~jobs ~unique ~errors ~deduped ~wall_secs
    ~(latencies : float array) ~(stages : (string * int * float) list)
    ~(cache_stats : Stage.cache_stats) : Json.t =
  let compiles_per_sec =
    if wall_secs > 0.0 then float_of_int unique /. wall_secs else 0.0
  in
  let sorted = Array.copy latencies in
  Array.sort Float.compare sorted;
  Json.Obj
    [ ("type", Json.String "summary");
      ("schema", Json.String "srp-serve-v1");
      ("jobs", Json.Int jobs);
      ("unique", Json.Int unique);
      ("deduped", Json.Int deduped);
      ("errors", Json.Int errors);
      ("wall_secs", Json.Float wall_secs);
      ("compiles_per_sec", Json.Float compiles_per_sec);
      ("latency",
       Json.Obj
         [ ("p50_secs", Json.Float (percentile sorted 0.50));
           ("p95_secs", Json.Float (percentile sorted 0.95));
           ("max_secs", Json.Float (percentile sorted 1.0)) ]);
      ("stages",
       Json.Obj
         (List.map
            (fun (stage, builds, secs) ->
              ( stage,
                Json.Obj
                  [ ("builds", Json.Int builds);
                    ("wall_secs", Json.Float secs) ] ))
            stages));
      ("cache",
       Json.Obj
         [ ("hits", Json.Int cache_stats.Stage.hits);
           ("misses", Json.Int cache_stats.Stage.misses);
           ("evictions", Json.Int cache_stats.Stage.evictions);
           ("hit_rate", Json.Float (Stage.hit_rate cache_stats)) ]) ]

(* Read the whole batch, answer every line in order, emit the summary.
   [now] supplies wall-clock time (Unix.gettimeofday from bin/ — this
   library stays Unix-free).  Returns the number of failed jobs.

   The batch always runs under a span tracer: the one already installed
   (`srp serve --trace-spans`), else a sink-less tracer created for the
   batch — either way the summary line's per-stage breakdown comes from
   its aggregated totals, so daemon health is visible without a trace
   file. *)
let serve ~(lookup : string -> Workload.t option) ~(now : unit -> float)
    ?(capacity = 512) (ic : in_channel) (oc : out_channel) : int =
  let owned_tracer =
    match Span.active () with
    | Some _ -> None
    | None ->
      let t = Span.create () in
      Span.install t;
      Some t
  in
  let lines = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then lines := line :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  (* parse every line first: a batch with a malformed line still runs the
     rest *)
  let parsed =
    List.mapi
      (fun i line ->
        match Json.of_string line with
        | Error e -> (Json.Int (i + 1), Error (Fmt.str "parse error: %s" e))
        | Ok js -> parse_job ~lookup ~line_no:(i + 1) js)
      lines
  in
  (* dedupe by content key: first occurrence executes, the rest share *)
  let by_key : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let uniq : (job * string) list ref = ref [] in
  let nuniq = ref 0 in
  let routed =
    List.map
      (fun (id, parse) ->
        Span.instant ~cat:"serve" "serve.enqueue" ~args:[ ("id", id) ];
        match parse with
        | Error e -> (id, Error e)
        | Ok j ->
          let key = job_key j in
          (match Hashtbl.find_opt by_key key with
          | Some slot ->
            Span.instant ~cat:"serve" "serve.dedup"
              ~args:[ ("id", id); ("key", Json.String key) ];
            (id, Ok (j, key, slot, true))
          | None ->
            let slot = !nuniq in
            Hashtbl.replace by_key key slot;
            incr nuniq;
            uniq := (j, key) :: !uniq;
            (id, Ok (j, key, slot, false))))
      parsed
  in
  let uniq = Array.of_list (List.rev !uniq) in
  let cache = Stage.create ~capacity () in
  let latencies = Array.make (Array.length uniq) 0.0 in
  let t0 = now () in
  let outcomes : outcome array =
    Experiments.pool_map ~ntasks:(Array.length uniq) (fun i ->
        let j, key = uniq.(i) in
        let l0 = Srp_obs.Clock.now () in
        Fun.protect
          ~finally:(fun () -> latencies.(i) <- Srp_obs.Clock.now () -. l0)
          (fun () -> run_job ~cache ~key j))
  in
  let wall_secs = now () -. t0 in
  let failed = ref 0 in
  let ndeduped = ref 0 in
  Span.with_span ~cat:"serve" "serve.respond" (fun () ->
      List.iter
        (fun (id, routed) ->
          let doc =
            match routed with
            | Error e ->
              incr failed;
              error_json id e
            | Ok (j, key, slot, deduped) -> (
              if deduped then incr ndeduped;
              match outcomes.(slot) with
              | Ok (r, scope) -> result_json j ~key ~deduped r scope
              | Error e ->
                incr failed;
                error_json id (Printexc.to_string e))
          in
          output_string oc (Json.to_string doc);
          output_char oc '\n')
        routed);
  (* per-stage wall-time breakdown: the tracer's aggregated "stage"
     category, names stripped of their "stage." prefix *)
  let stages =
    match Span.active () with
    | None -> []
    | Some t ->
      List.filter_map
        (fun (cat, name, count, secs) ->
          if cat <> "stage" then None
          else
            let stage =
              if String.length name > 6 && String.sub name 0 6 = "stage." then
                String.sub name 6 (String.length name - 6)
              else name
            in
            Some (stage, count, secs))
        (Span.totals t)
  in
  (match owned_tracer with Some _ -> Span.uninstall () | None -> ());
  let summary =
    summary_json ~jobs:(List.length routed) ~unique:(Array.length uniq)
      ~errors:!failed ~deduped:!ndeduped ~wall_secs ~latencies ~stages
      ~cache_stats:(Stage.stats cache)
  in
  output_string oc (Json.to_string summary);
  output_char oc '\n';
  flush oc;
  !failed
