(* The paper's experiment suite: one function per figure, plus the
   ablations DESIGN.md commits to.  Each experiment runs the full pipeline
   (profile on train, compile, execute on ref in the machine simulator)
   and checks output equality between builds as it goes — a bench run
   doubles as an end-to-end correctness check. *)

module C = Srp_machine.Counters

type bench_result = {
  w : Workload.t;
  base : Pipeline.run_result;
  spec : Pipeline.run_result;
}

exception Output_mismatch of string

let promote_stats (r : Pipeline.run_result) : Srp_core.Ssapre.stats =
  match r.Pipeline.compiled.Pipeline.promote with
  | Some p -> p.Srp_core.Promote.stats
  | None -> Srp_core.Ssapre.empty_stats ()

(* The worker-domain pool the suite (and `srp serve`) fans out on: hand
   task indices out by an atomic ticket counter, land every result in its
   submission slot so output order never depends on domain scheduling.
   The calling domain works too; SRP_BENCH_JOBS overrides the pool size
   (mostly for exercising the multi-domain path on single-core
   machines). *)
let pool_map ~(ntasks : int) (f : int -> 'a) : ('a, exn) result array =
  let slots = Array.make ntasks None in
  let next = Atomic.make 0 in
  let worker () =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add next 1 in
      if i >= ntasks then continue_ := false
      else
        slots.(i) <-
          Some
            (try
               Ok
                 (Srp_obs.Span.with_span ~cat:"pool" "pool.task"
                    ~args:[ ("task", Srp_obs.Json.Int i) ]
                    (fun () -> f i))
             with e -> Error e)
    done
  in
  let jobs =
    match Sys.getenv_opt "SRP_BENCH_JOBS" with
    | Some s -> ( match int_of_string_opt s with Some j when j > 0 -> j | _ -> 1 )
    | None -> Domain.recommended_domain_count ()
  in
  let helpers = max 0 (min (ntasks - 1) (jobs - 1)) in
  let domains = List.init helpers (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Array.map (function Some r -> r | None -> assert false) slots

(* Run one workload at baseline and ALAT levels and check equivalence.
   [ablations] apply to the speculative build only — the baseline stays
   the fixed reference the figures are normalized against.  [cache]
   shares stage artifacts between the two builds (one lower, one input
   application per input set). *)
let run_pair ?fuel ?cache ?ablations ?sched ?prob (w : Workload.t) :
    bench_result =
  let base =
    Pipeline.profile_compile_run ?fuel ?cache ?sched ?prob w Pipeline.Baseline
  in
  let spec =
    Pipeline.profile_compile_run ?fuel ?cache ?ablations ?sched ?prob w
      Pipeline.Alat
  in
  if base.Pipeline.output <> spec.Pipeline.output then
    raise
      (Output_mismatch
         (Fmt.str "%s: baseline and speculative outputs differ!" w.Workload.name));
  { w; base; spec }

(* Run the whole suite from a pool of worker domains (pool_map).  The
   work unit is one (workload, level) build-and-run — two tasks per
   workload — so the figure tables and the --json rows come out in
   registry order no matter how the domains are scheduled.  The pipeline
   has no cross-run mutable state apart from the Stats registry and the
   optional stage cache, both domain-safe; with [cache] the two builds of
   a workload share its lower and apply-input artifacts, so the sweep
   lowers each source once instead of thrice (train + 2 levels).  The
   baseline-vs-speculative output check happens after the join, exactly
   as in the sequential run_pair. *)
let run_all ?fuel ?cache ?sched ?prob (workloads : Workload.t list) :
    bench_result list =
  let ws = Array.of_list workloads in
  let n = Array.length ws in
  let ntasks = 2 * n in
  let run_task i =
    let w = ws.(i / 2) in
    let level = if i mod 2 = 0 then Pipeline.Baseline else Pipeline.Alat in
    Pipeline.profile_compile_run ?fuel ?cache ?sched ?prob w level
  in
  let slots = pool_map ~ntasks run_task in
  let result i =
    match slots.(i) with Ok r -> r | Error e -> raise e
  in
  List.init n (fun k ->
      let base = result (2 * k) and spec = result ((2 * k) + 1) in
      if base.Pipeline.output <> spec.Pipeline.output then
        raise
          (Output_mismatch
             (Fmt.str "%s: baseline and speculative outputs differ!"
                ws.(k).Workload.name));
      { w = ws.(k); base; spec })

(* --- the four figures --- *)

let figure8 (rs : bench_result list) : string =
  let rows =
    List.map
      (fun r ->
        Report.figure8_row ~name:r.w.Workload.name
          ~base:r.base.Pipeline.counters ~spec:r.spec.Pipeline.counters)
      rs
  in
  Report.render_figure8 rows

let figure9 (rs : bench_result list) : string =
  let rows =
    List.map
      (fun r ->
        Report.figure9_row ~name:r.w.Workload.name
          ~base:(promote_stats r.base) ~spec:(promote_stats r.spec))
      rs
  in
  Report.render_figure9 rows

let figure10 (rs : bench_result list) : string =
  let rows =
    List.map
      (fun r ->
        Report.figure10_row ~name:r.w.Workload.name ~spec:r.spec.Pipeline.counters)
      rs
  in
  Report.render_figure10 rows

let figure11 (rs : bench_result list) : string =
  let rows =
    List.map
      (fun r ->
        Report.figure11_row ~name:r.w.Workload.name
          ~base:r.base.Pipeline.counters ~spec:r.spec.Pipeline.counters)
      rs
  in
  Report.render_figure11 rows

(* --- ablations --- *)

(* Generic comparison of two configs over a workload list; rows of
   (name, cycles_a, cycles_b, reduction%). *)
let compare_configs ?fuel ~(mk_a : Srp_profile.Alias_profile.t -> Srp_core.Config.t option)
    ~(mk_b : Srp_profile.Alias_profile.t -> Srp_core.Config.t option)
    (workloads : Workload.t list) : (string * int * int * float) list =
  List.map
    (fun w ->
      let profile = Pipeline.train_profile w in
      let run mk =
        let ir = Srp_frontend.Lower.compile_source w.Workload.source in
        Workload.apply_input ir w.Workload.ref_;
        (match mk profile with
        | Some config ->
          ignore
            (Srp_core.Promote.run ~config ~pressure:(Pipeline.pressure_fn ir)
               ir)
        | None -> ());
        let target = Srp_target.Codegen.gen_program ir in
        Srp_machine.Machine.run_program ?fuel target
      in
      let _, out_a, ca = run mk_a in
      let _, out_b, cb = run mk_b in
      if out_a <> out_b then
        raise (Output_mismatch (Fmt.str "%s: ablation outputs differ!" w.Workload.name));
      let red =
        100.0 *. float_of_int (ca.C.cycles - cb.C.cycles) /. float_of_int (max 1 ca.C.cycles)
      in
      (w.Workload.name, ca.C.cycles, cb.C.cycles, red))
    workloads

let render_compare ~label_a ~label_b rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; label_a ^ " cycles"; label_b ^ " cycles"; "gain %" ]
    ~rows:
      (List.map
         (fun (n, a, b, red) ->
           [ n; string_of_int a; string_of_int b; Fmt.str "%.2f" red ])
         rows)

(* Ablation A: invala.e strategy on/off. *)
let ablation_invala ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun p -> Some { (Srp_core.Config.alat ~profile:p) with Srp_core.Config.use_invala = false })
    ~mk_b:(fun p -> Some (Srp_core.Config.alat ~profile:p))
    workloads
  |> render_compare ~label_a:"no-invala" ~label_b:"invala"

(* Ablation B: software run-time disambiguation vs ALAT speculation. *)
let ablation_software ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun _ -> Some Srp_core.Config.baseline)
    ~mk_b:(fun p -> Some (Srp_core.Config.alat ~profile:p))
    workloads
  |> render_compare ~label_a:"software" ~label_b:"alat"

(* Ablation C: value of the software checks themselves (conservative PRE vs
   baseline). *)
let ablation_conservative ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun _ -> Some Srp_core.Config.conservative)
    ~mk_b:(fun _ -> Some Srp_core.Config.baseline)
    workloads
  |> render_compare ~label_a:"conservative" ~label_b:"software"

(* Ablation D: heuristic speculation (no profile) vs profile-driven. *)
let ablation_heuristic ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun _ -> Some Srp_core.Config.alat_heuristic)
    ~mk_b:(fun p -> Some (Srp_core.Config.alat ~profile:p))
    workloads
  |> render_compare ~label_a:"heuristic" ~label_b:"profile"

(* Ablation E: control speculation (ld.sa hoisting) on/off. *)
let ablation_control_spec ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun p -> Some { (Srp_core.Config.alat ~profile:p) with Srp_core.Config.control_spec = false })
    ~mk_b:(fun p -> Some (Srp_core.Config.alat ~profile:p))
    workloads
  |> render_compare ~label_a:"no-ld.sa" ~label_b:"ld.sa"

(* Ablation F: cascade promotion (section 2.4) on/off. *)
let ablation_cascade ?fuel workloads =
  compare_configs ?fuel
    ~mk_a:(fun p -> Some (Srp_core.Config.alat ~profile:p))
    ~mk_b:(fun p -> Some (Srp_core.Config.alat_cascade ~profile:p))
    workloads
  |> render_compare ~label_a:"no-cascade" ~label_b:"cascade"

(* Ablation G: the pre-bundle list scheduler on/off.  Unlike A-F this is
   a backend knob, not a promotion config — both runs are the full ALAT
   pipeline, differing only in whether sched.ml reorders each block
   before bundling.  The differential tests pin the two builds to the
   same outputs and non-cycle counters, so the delta here is pure
   latency hiding plus tighter packing. *)
let ablation_sched ?fuel workloads =
  List.map
    (fun w ->
      let off = Pipeline.profile_compile_run ?fuel ~sched:false w Pipeline.Alat in
      let on = Pipeline.profile_compile_run ?fuel ~sched:true w Pipeline.Alat in
      if off.Pipeline.output <> on.Pipeline.output then
        raise
          (Output_mismatch
             (Fmt.str "%s: sched ablation outputs differ!" w.Workload.name));
      let ca = off.Pipeline.counters.C.cycles
      and cb = on.Pipeline.counters.C.cycles in
      let red =
        100.0 *. float_of_int (ca - cb) /. float_of_int (max 1 ca)
      in
      (w.Workload.name, ca, cb, red))
    workloads
  |> render_compare ~label_a:"no-sched" ~label_b:"sched"

(* Ablation H: the probabilistic expected-value speculation gate on/off.
   Both runs are the full ALAT pipeline; off is the binary may-touch
   verdict (the pre-frequency behavior, [--no-prob]), on folds per-site
   conflict rates into the speculation decision and the promotion
   ledger. *)
let ablation_prob ?fuel workloads =
  List.map
    (fun w ->
      let off = Pipeline.profile_compile_run ?fuel ~prob:false w Pipeline.Alat in
      let on = Pipeline.profile_compile_run ?fuel ~prob:true w Pipeline.Alat in
      if off.Pipeline.output <> on.Pipeline.output then
        raise
          (Output_mismatch
             (Fmt.str "%s: prob ablation outputs differ!" w.Workload.name));
      let ca = off.Pipeline.counters.C.cycles
      and cb = on.Pipeline.counters.C.cycles in
      let red = 100.0 *. float_of_int (ca - cb) /. float_of_int (max 1 ca) in
      (w.Workload.name, ca, cb, red))
    workloads
  |> render_compare ~label_a:"no-prob" ~label_b:"prob"

(* Threshold sweep: cycles at ALAT as [spec_threshold] varies, against
   the binary-verdict column (no-prob), one row per workload.  The sweep
   drives {!Srp_core.Promote.run} directly (like ablations A-F) so each
   cell differs only in the promotion decision, and checks program
   output equality across every cell. *)
let threshold_sweep ?fuel ~(thresholds : float list)
    (workloads : Workload.t list) : string =
  let rows =
    List.map
      (fun w ->
        let profile = Pipeline.train_profile w in
        let run config =
          let ir = Srp_frontend.Lower.compile_source w.Workload.source in
          Workload.apply_input ir w.Workload.ref_;
          ignore
            (Srp_core.Promote.run ~config ~pressure:(Pipeline.pressure_fn ir)
               ir);
          let target = Srp_target.Codegen.gen_program ir in
          Srp_machine.Machine.run_program ?fuel target
        in
        let alat = Srp_core.Config.alat ~profile in
        let _, out0, c0 = run { alat with Srp_core.Config.prob = false } in
        let cells =
          List.map
            (fun t ->
              let _, out, c =
                run { alat with Srp_core.Config.spec_threshold = t }
              in
              if out <> out0 then
                raise
                  (Output_mismatch
                     (Fmt.str "%s: threshold-sweep outputs differ at %.3f!"
                        w.Workload.name t));
              c.C.cycles)
            thresholds
        in
        (w.Workload.name, c0.C.cycles, cells))
      workloads
  in
  Srp_support.Pp_util.render_table
    ~header:
      ("benchmark" :: "no-prob cycles"
      :: List.map (fun t -> Fmt.str "t=%.3f" t) thresholds)
    ~rows:
      (List.map
         (fun (n, c0, cells) ->
           n :: string_of_int c0 :: List.map string_of_int cells)
         rows)
