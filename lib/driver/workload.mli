(** Workload description: a MiniC source plus train and ref input sets.

    Inputs are injected as global-initializer overrides before each run,
    which keeps both the interpreter and the machine free of any I/O
    model — the MiniC programs read their inputs from global arrays. *)

open Srp_ir

type input = (string * Program.global_init) list

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source text *)
  train : input;  (** profiling input (the paper's SPEC train set) *)
  ref_ : input;  (** measurement input (the paper's SPEC ref set) *)
}

(** Overwrite the named globals' initializers in place.

    This mutates [prog] — callers holding a shared artifact (a cached
    lower-stage result) must apply inputs to a {!Program.clone}, never to
    the artifact itself, or every other consumer of that artifact sees
    the wrong input baked in.  The staged pipeline does this in its
    apply-input stage; see the independence regression test. *)
val apply_input : Program.t -> input -> unit
