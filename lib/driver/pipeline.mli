(** Compilation pipelines — the experiment matrix of the paper. *)

open Srp_ir

(** The optimization levels the experiments compare. *)
type level =
  | O0  (** straight lowering, no promotion *)
  | Conservative  (** PRE register promotion, no speculation *)
  | Baseline
      (** the ORC -O3 stand-in: conservative PRE + software run-time
          disambiguation on scalars (paper section 4) *)
  | Alat
      (** the paper's system: ALAT speculation driven by an alias profile
          collected on the train input *)
  | Alat_heuristic  (** ALAT speculation from static heuristics only *)

val level_name : level -> string

(** Collect an alias profile by interpreting the workload on its train
    input. *)
val train_profile : Workload.t -> Srp_profile.Alias_profile.t

val config_of_level :
  level -> Srp_profile.Alias_profile.t option -> Srp_core.Config.t option

(** Named promotion-config overrides applied on top of a level, so single
    workloads can be measured per bench-sweep configuration (ROADMAP
    "ablation wiring").  Ablations B-D of the sweep are level choices and
    already reachable via [-l]. *)
type ablation =
  | No_invala  (** disable the invala.e cold-path strategy (ablation A) *)
  | No_control_spec  (** disable ld.sa hoisting (ablation E) *)
  | Cascade  (** enable section-2.4 cascade promotion (ablation F) *)
  | Single_round  (** max_rounds = 1: direct references only *)

val all_ablations : ablation list
val ablation_name : ablation -> string
val ablation_of_string : string -> ablation option
val apply_ablation : ablation -> Srp_core.Config.t -> Srp_core.Config.t

type compiled = {
  level : level;
  ablations : ablation list;
  split : bool;
      (** hole-aware regalloc with live-range splitting (off = the
          closed-interval allocator, the [--no-split] ablation) *)
  ir : Program.t;  (** the (possibly promoted) IR *)
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(** Compile a workload at a level; [input] (usually the ref input) is baked
    into the global initializers before promotion and code generation.
    [ablations] override the level's promotion config (no effect at O0).
    [layout] (default on) runs the post-regalloc block layout pass — turn
    it off to A/B the branch-layout contribution in isolation.  [bundle]
    (default on) packs the laid-out code into IA-64 3-slot bundles so the
    machine fetches bundle-wise; off = flat instruction stream.  [split]
    (default on) selects the hole-aware live-range allocator; off falls
    back to one closed interval per vreg. *)
val compile :
  ?profile:Srp_profile.Alias_profile.t ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?bundle:bool ->
  ?split:bool ->
  input:Workload.input ->
  Workload.t ->
  level ->
  compiled

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
  site_stats : Srp_obs.Site_hist.t;
      (** per-site event attribution (pfmon stand-in) *)
}

val run : ?fuel:int -> ?trace:Srp_obs.Trace.sink -> compiled -> run_result

(** The standard experiment protocol: profile on train (for [Alat]),
    compile at [level], execute on ref. *)
val profile_compile_run :
  ?fuel:int ->
  ?trace:Srp_obs.Trace.sink ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?bundle:bool ->
  ?split:bool ->
  Workload.t ->
  level ->
  run_result
