(** Compilation pipelines — the experiment matrix of the paper.

    A compile is a chain of named stages (lower, apply-input, profile,
    promote, select, regalloc, layout, bundle), each producing an
    immutable artifact under a content-addressed key ({!Stage.Key}).
    Passing [?cache] (a {!Stage.store}) shares artifacts across builds —
    a bench sweep lowers each source once; [srp serve] shares the train
    profile across a whole batch.  The seed's monolithic path survives as
    the [*_monolithic] reference implementations: the staged path is held
    bit-identical to them (output, exit code, every machine counter) by
    the differential tests and by [srp run --no-cache]. *)

open Srp_ir

(** The optimization levels the experiments compare. *)
type level =
  | O0  (** straight lowering, no promotion *)
  | Conservative  (** PRE register promotion, no speculation *)
  | Baseline
      (** the ORC -O3 stand-in: conservative PRE + software run-time
          disambiguation on scalars (paper section 4) *)
  | Alat
      (** the paper's system: ALAT speculation driven by an alias profile
          collected on the train input *)
  | Alat_heuristic  (** ALAT speculation from static heuristics only *)

val level_name : level -> string
val all_levels : level list
val level_of_string : string -> level option

(** Collect an alias profile by interpreting the workload on its train
    input.  With [?cache], the lowered program and the profile itself are
    shared artifacts (a later [compile] of the same workload reuses the
    lower stage; a later [train_profile] is a cache hit). *)
val train_profile : ?cache:Stage.store -> Workload.t -> Srp_profile.Alias_profile.t

val config_of_level :
  level -> Srp_profile.Alias_profile.t option -> Srp_core.Config.t option

(** Named promotion-config overrides applied on top of a level, so single
    workloads can be measured per bench-sweep configuration (ROADMAP
    "ablation wiring").  Ablations B-D of the sweep are level choices and
    already reachable via [-l]. *)
type ablation =
  | No_invala  (** disable the invala.e cold-path strategy (ablation A) *)
  | No_control_spec  (** disable ld.sa hoisting (ablation E) *)
  | Cascade  (** enable section-2.4 cascade promotion (ablation F) *)
  | Single_round  (** max_rounds = 1: direct references only *)

val all_ablations : ablation list
val ablation_name : ablation -> string
val ablation_of_string : string -> ablation option
val apply_ablation : ablation -> Srp_core.Config.t -> Srp_core.Config.t

type compiled = {
  level : level;
  ablations : ablation list;
  split : bool;
      (** hole-aware regalloc with live-range splitting (off = the
          closed-interval allocator, the [--no-split] ablation) *)
  ir : Program.t;  (** the (possibly promoted) IR *)
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(** The per-function register-pressure estimator the promote stage feeds
    to {!Srp_core.Promote.run}: instruction selection plus the
    allocator's analysis prefix ({!Srp_target.Regalloc.estimate}) over
    the named function's current body, memoized by name.  Exposed so the
    differential tests can drive {!Srp_core.Promote.run} exactly as the
    pipeline does. *)
val pressure_fn : Program.t -> string -> Srp_core.Promote.pressure option

(** Compile a workload at a level; [input] (usually the ref input) is baked
    into the global initializers before promotion and code generation.
    [ablations] override the level's promotion config (no effect at O0).
    [layout] (default on) runs the post-regalloc block layout pass — turn
    it off to A/B the branch-layout contribution in isolation.  [sched]
    (default on) runs the pre-bundle latency-aware list scheduler
    ({!Srp_target.Sched}) over the laid-out code; off is the [--no-sched]
    ablation, bit-identical on every non-cycle counter.  [bundle]
    (default on) packs the laid-out code into IA-64 3-slot bundles so the
    machine fetches bundle-wise; off = flat instruction stream.  [split]
    (default on) selects the hole-aware live-range allocator; off falls
    back to one closed interval per vreg.  [pressure] (default on) keeps
    the pressure-aware candidate gate in the promoter; off is the
    [--no-pressure] ablation, reproducing promote-everything exactly (it
    flows through the config, so the promote content key records it).
    [prob] (default on) keeps the probabilistic expected-value
    speculation gate; off is the [--no-prob] ablation, the exact
    binary-verdict legacy path (also recorded in the promote content
    key).  [cache] shares stage artifacts with other builds; without it
    the stages still run (one lower, clones before mutation) but retain
    nothing. *)
val compile :
  ?cache:Stage.store ->
  ?profile:Srp_profile.Alias_profile.t ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?sched:bool ->
  ?bundle:bool ->
  ?split:bool ->
  ?pressure:bool ->
  ?prob:bool ->
  input:Workload.input ->
  Workload.t ->
  level ->
  compiled

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
  site_stats : Srp_obs.Site_hist.t;
      (** per-site event attribution (pfmon stand-in) *)
}

val run :
  ?fuel:int -> ?trace:Srp_obs.Trace.sink ->
  ?timeline:Srp_machine.Timeline.t -> compiled -> run_result

(** The standard experiment protocol: profile on train (for [Alat]),
    compile at [level], execute on ref.  Without an explicit [cache] an
    ephemeral store still shares the lower artifact between the train
    profile and the ref build, so parse/lower runs once per source. *)
val profile_compile_run :
  ?fuel:int ->
  ?trace:Srp_obs.Trace.sink ->
  ?timeline:Srp_machine.Timeline.t ->
  ?cache:Stage.store ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?sched:bool ->
  ?bundle:bool ->
  ?split:bool ->
  ?pressure:bool ->
  ?prob:bool ->
  Workload.t ->
  level ->
  run_result

(** {1 The seed monolithic path}

    The original single-function pipeline, kept verbatim as the reference
    the staged path is differentially tested against, and as the
    [srp run --no-cache] implementation. *)

val train_profile_monolithic : Workload.t -> Srp_profile.Alias_profile.t

val compile_monolithic :
  ?profile:Srp_profile.Alias_profile.t ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?sched:bool ->
  ?bundle:bool ->
  ?split:bool ->
  ?pressure:bool ->
  ?prob:bool ->
  input:Workload.input ->
  Workload.t ->
  level ->
  compiled

val profile_compile_run_monolithic :
  ?fuel:int ->
  ?trace:Srp_obs.Trace.sink ->
  ?timeline:Srp_machine.Timeline.t ->
  ?ablations:ablation list ->
  ?layout:bool ->
  ?sched:bool ->
  ?bundle:bool ->
  ?split:bool ->
  ?pressure:bool ->
  ?prob:bool ->
  Workload.t ->
  level ->
  run_result
