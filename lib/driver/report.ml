(* Derivation of the paper's evaluation figures from counter pairs.

   Figure 8 — per benchmark, the reduction (in %) of total CPU cycles,
   data-access cycles and retired loads of the speculative build relative
   to the baseline build.
   Figure 9 — among the loads the speculative build eliminated, the split
   between direct and indirect references (from promotion statistics).
   Figure 10 — checks/loads and the mis-speculation ratio
   (failed checks / checks retired).
   Figure 11 — RSE cycle increase relative to baseline, and RSE cycles as
   a fraction of total cycles. *)

module C = Srp_machine.Counters

let pct_reduction ~base ~new_ =
  if base = 0 then 0.0
  else 100.0 *. (float_of_int (base - new_) /. float_of_int base)

type fig8_row = {
  f8_name : string;
  cpu_cycles_red : float;
  data_access_red : float;
  loads_red : float;
}

let figure8_row ~name ~(base : C.t) ~(spec : C.t) : fig8_row =
  { f8_name = name;
    cpu_cycles_red = pct_reduction ~base:base.C.cycles ~new_:spec.C.cycles;
    data_access_red =
      pct_reduction ~base:base.C.data_access_cycles ~new_:spec.C.data_access_cycles;
    loads_red = pct_reduction ~base:base.C.loads_retired ~new_:spec.C.loads_retired }

type fig9_row = {
  f9_name : string;
  direct_pct : float;
  indirect_pct : float;
  eliminated_total : int;
}

(* Classified from promotion statistics: the *additional* load sites the
   speculative build eliminated beyond the baseline, split direct vs
   indirect (the baseline already removes the unaliased ones, so the delta
   is what speculation bought — the quantity Figure 9 plots). *)
let figure9_row ~name ~(base : Srp_core.Ssapre.stats)
    ~(spec : Srp_core.Ssapre.stats) : fig9_row =
  let d =
    max 0
      (spec.Srp_core.Ssapre.loads_eliminated_direct
      - base.Srp_core.Ssapre.loads_eliminated_direct)
  in
  let i =
    max 0
      (spec.Srp_core.Ssapre.loads_eliminated_indirect
      - base.Srp_core.Ssapre.loads_eliminated_indirect)
  in
  let total = d + i in
  let pct x = if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total in
  { f9_name = name; direct_pct = pct d; indirect_pct = pct i; eliminated_total = total }

type fig10_row = {
  f10_name : string;
  checks_per_load : float; (* checks retired / loads retired, % *)
  misspec_ratio : float; (* failed checks / checks retired, % *)
}

let figure10_row ~name ~(spec : C.t) : fig10_row =
  let ratio a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  { f10_name = name;
    checks_per_load = ratio spec.C.checks_retired spec.C.loads_retired;
    misspec_ratio = ratio spec.C.check_failures spec.C.checks_retired }

type fig11_row = {
  f11_name : string;
  rse_increase : float; (* % increase of RSE cycles vs baseline *)
  rse_fraction : float; (* RSE cycles / total cycles of the spec build, % *)
}

let figure11_row ~name ~(base : C.t) ~(spec : C.t) : fig11_row =
  let incr =
    if base.C.rse_cycles = 0 then if spec.C.rse_cycles = 0 then 0.0 else 100.0
    else
      100.0
      *. (float_of_int (spec.C.rse_cycles - base.C.rse_cycles)
         /. float_of_int base.C.rse_cycles)
  in
  { f11_name = name; rse_increase = incr;
    rse_fraction =
      (if spec.C.cycles = 0 then 0.0
       else 100.0 *. float_of_int spec.C.rse_cycles /. float_of_int spec.C.cycles) }

(* --- JSON rows (the machine-readable form of Figures 8-11) --- *)

module J = Srp_obs.Json

let fig8_json (r : fig8_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f8_name);
      ("cpu_cycles_reduction_pct", J.Float r.cpu_cycles_red);
      ("data_access_reduction_pct", J.Float r.data_access_red);
      ("loads_reduction_pct", J.Float r.loads_red) ]

let fig9_json (r : fig9_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f9_name);
      ("direct_pct", J.Float r.direct_pct);
      ("indirect_pct", J.Float r.indirect_pct);
      ("eliminated_sites", J.Int r.eliminated_total) ]

let fig10_json (r : fig10_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f10_name);
      ("checks_per_load_pct", J.Float r.checks_per_load);
      ("misspeculation_pct", J.Float r.misspec_ratio) ]

let fig11_json (r : fig11_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f11_name);
      ("rse_cycles_increase_pct", J.Float r.rse_increase);
      ("rse_total_cycles_pct", J.Float r.rse_fraction) ]

(* --- table rendering --- *)

let pct = Fmt.str "%.2f"

let render_figure8 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "cpu cycles red %"; "data access red %"; "loads red %" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.f8_name; pct r.cpu_cycles_red; pct r.data_access_red; pct r.loads_red ])
         rows)

let render_figure9 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "direct %"; "indirect %"; "eliminated sites" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.f9_name; pct r.direct_pct; pct r.indirect_pct;
             string_of_int r.eliminated_total ])
         rows)

let render_figure10 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "checks/loads %"; "mis-speculation %" ]
    ~rows:
      (List.map
         (fun r -> [ r.f10_name; pct r.checks_per_load; pct r.misspec_ratio ])
         rows)

let render_figure11 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "RSE cycles increase %"; "RSE/total cycles %" ]
    ~rows:
      (List.map
         (fun r -> [ r.f11_name; pct r.rse_increase; Fmt.str "%.4f" r.rse_fraction ])
         rows)
