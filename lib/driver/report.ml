(* Derivation of the paper's evaluation figures from counter pairs.

   Figure 8 — per benchmark, the reduction (in %) of total CPU cycles,
   data-access cycles and retired loads of the speculative build relative
   to the baseline build.
   Figure 9 — among the loads the speculative build eliminated, the split
   between direct and indirect references (from promotion statistics).
   Figure 10 — checks/loads and the mis-speculation ratio
   (failed checks / checks retired).
   Figure 11 — RSE cycle increase relative to baseline, and RSE cycles as
   a fraction of total cycles. *)

module C = Srp_machine.Counters

let pct_reduction ~base ~new_ =
  if base = 0 then 0.0
  else 100.0 *. (float_of_int (base - new_) /. float_of_int base)

type fig8_row = {
  f8_name : string;
  cpu_cycles_red : float;
  data_access_red : float;
  loads_red : float;
}

let figure8_row ~name ~(base : C.t) ~(spec : C.t) : fig8_row =
  { f8_name = name;
    cpu_cycles_red = pct_reduction ~base:base.C.cycles ~new_:spec.C.cycles;
    data_access_red =
      pct_reduction ~base:base.C.data_access_cycles ~new_:spec.C.data_access_cycles;
    loads_red = pct_reduction ~base:base.C.loads_retired ~new_:spec.C.loads_retired }

type fig9_row = {
  f9_name : string;
  direct_pct : float;
  indirect_pct : float;
  eliminated_total : int;
}

(* Classified from promotion statistics: the *additional* load sites the
   speculative build eliminated beyond the baseline, split direct vs
   indirect (the baseline already removes the unaliased ones, so the delta
   is what speculation bought — the quantity Figure 9 plots). *)
let figure9_row ~name ~(base : Srp_core.Ssapre.stats)
    ~(spec : Srp_core.Ssapre.stats) : fig9_row =
  let d =
    max 0
      (spec.Srp_core.Ssapre.loads_eliminated_direct
      - base.Srp_core.Ssapre.loads_eliminated_direct)
  in
  let i =
    max 0
      (spec.Srp_core.Ssapre.loads_eliminated_indirect
      - base.Srp_core.Ssapre.loads_eliminated_indirect)
  in
  let total = d + i in
  let pct x = if total = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int total in
  { f9_name = name; direct_pct = pct d; indirect_pct = pct i; eliminated_total = total }

type fig10_row = {
  f10_name : string;
  checks_per_load : float; (* checks retired / loads retired, % *)
  misspec_ratio : float; (* failed checks / checks retired, % *)
}

let figure10_row ~name ~(spec : C.t) : fig10_row =
  let ratio a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  { f10_name = name;
    checks_per_load = ratio spec.C.checks_retired spec.C.loads_retired;
    misspec_ratio = ratio spec.C.check_failures spec.C.checks_retired }

type fig11_row = {
  f11_name : string;
  rse_increase : float; (* % increase of RSE cycles vs baseline *)
  rse_fraction : float; (* RSE cycles / total cycles of the spec build, % *)
}

let figure11_row ~name ~(base : C.t) ~(spec : C.t) : fig11_row =
  let incr =
    if base.C.rse_cycles = 0 then if spec.C.rse_cycles = 0 then 0.0 else 100.0
    else
      100.0
      *. (float_of_int (spec.C.rse_cycles - base.C.rse_cycles)
         /. float_of_int base.C.rse_cycles)
  in
  { f11_name = name; rse_increase = incr;
    rse_fraction =
      (if spec.C.cycles = 0 then 0.0
       else 100.0 *. float_of_int spec.C.rse_cycles /. float_of_int spec.C.cycles) }

(* --- JSON rows (the machine-readable form of Figures 8-11) --- *)

module J = Srp_obs.Json

let fig8_json (r : fig8_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f8_name);
      ("cpu_cycles_reduction_pct", J.Float r.cpu_cycles_red);
      ("data_access_reduction_pct", J.Float r.data_access_red);
      ("loads_reduction_pct", J.Float r.loads_red) ]

let fig9_json (r : fig9_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f9_name);
      ("direct_pct", J.Float r.direct_pct);
      ("indirect_pct", J.Float r.indirect_pct);
      ("eliminated_sites", J.Int r.eliminated_total) ]

let fig10_json (r : fig10_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f10_name);
      ("checks_per_load_pct", J.Float r.checks_per_load);
      ("misspeculation_pct", J.Float r.misspec_ratio) ]

let fig11_json (r : fig11_row) : J.t =
  J.Obj
    [ ("benchmark", J.String r.f11_name);
      ("rse_cycles_increase_pct", J.Float r.rse_increase);
      ("rse_total_cycles_pct", J.Float r.rse_fraction) ]

(* --- table rendering --- *)

let pct = Fmt.str "%.2f"

let render_figure8 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "cpu cycles red %"; "data access red %"; "loads red %" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.f8_name; pct r.cpu_cycles_red; pct r.data_access_red; pct r.loads_red ])
         rows)

let render_figure9 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "direct %"; "indirect %"; "eliminated sites" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.f9_name; pct r.direct_pct; pct r.indirect_pct;
             string_of_int r.eliminated_total ])
         rows)

let render_figure10 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "checks/loads %"; "mis-speculation %" ]
    ~rows:
      (List.map
         (fun r -> [ r.f10_name; pct r.checks_per_load; pct r.misspec_ratio ])
         rows)

let render_figure11 rows =
  Srp_support.Pp_util.render_table
    ~header:[ "benchmark"; "RSE cycles increase %"; "RSE/total cycles %" ]
    ~rows:
      (List.map
         (fun r -> [ r.f11_name; pct r.rse_increase; Fmt.str "%.4f" r.rse_fraction ])
         rows)

(* --- `srp report`: consume an srp-spans-v1 file --- *)

module Span_report = struct
  (* One complete ("ph":"X") event of a span file; ts/dur in µs. *)
  type event = { e_name : string; e_ts : float; e_dur : float; e_tid : int }

  (* Parse the trace-event array, keeping complete events and noting the
     "truncated" marker's drop count.  Instants (cache hits, enqueues)
     carry no duration and don't participate in the time tables. *)
  let parse (doc : J.t) : (event list * int, string) result =
    match J.to_list_opt doc with
    | None -> Error "span file is not a JSON array of trace events"
    | Some items ->
      let dropped = ref 0 in
      let evs =
        List.filter_map
          (fun it ->
            let str k = Option.bind (J.member k it) J.to_string_opt in
            let num k = Option.bind (J.member k it) J.to_float_opt in
            (if str "name" = Some "truncated" then
               match
                 Option.bind (J.member "args" it) (J.member "dropped")
               with
               | Some (J.Int n) -> dropped := n
               | _ -> ());
            match str "ph", str "name", num "ts", num "dur" with
            | Some "X", Some name, Some ts, Some dur ->
              Some
                { e_name = name; e_ts = ts; e_dur = dur;
                  e_tid =
                    Option.value ~default:0
                      (Option.bind (J.member "tid" it) J.to_int_opt) }
            | _ -> None)
          items
      in
      Ok (evs, !dropped)

  type agg = {
    mutable count : int;
    mutable total : float; (* µs, inclusive of children *)
    mutable self : float; (* µs, minus direct children *)
  }

  let touch tbl key =
    match Hashtbl.find_opt tbl key with
    | Some a -> a
    | None ->
      let a = { count = 0; total = 0.0; self = 0.0 } in
      Hashtbl.replace tbl key a;
      a

  (* Reconstruct nesting per domain from the interval structure: events
     sorted by (start asc, dur desc) visit parents before children, and a
     stack of still-open intervals yields each event's span path
     ("a;b;c").  Self time = duration minus direct children.  Returns
     (per (name, tid) table, per path table). *)
  let analyze (evs : event list) :
      (string * int, agg) Hashtbl.t * (string, agg) Hashtbl.t =
    let by_span : (string * int, agg) Hashtbl.t = Hashtbl.create 32 in
    let by_path : (string, agg) Hashtbl.t = Hashtbl.create 32 in
    let tids = Hashtbl.create 8 in
    List.iter (fun e -> Hashtbl.replace tids e.e_tid ()) evs;
    Hashtbl.iter
      (fun tid () ->
        let mine =
          List.filter (fun e -> e.e_tid = tid) evs
          |> List.sort (fun a b ->
                 match compare a.e_ts b.e_ts with
                 | 0 -> compare b.e_dur a.e_dur
                 | c -> c)
        in
        (* stack of open (end-µs, path) frames, innermost first *)
        let stack = ref [] in
        List.iter
          (fun e ->
            let a = touch by_span (e.e_name, tid) in
            a.count <- a.count + 1;
            a.total <- a.total +. e.e_dur;
            while
              match !stack with
              | (end_, _) :: rest when end_ <= e.e_ts ->
                stack := rest;
                true
              | _ -> false
            do
              ()
            done;
            let path =
              match !stack with
              | [] -> e.e_name
              | (_, ppath) :: _ ->
                (* charge this event to its parent path's children *)
                let p = touch by_path ppath in
                p.self <- p.self -. e.e_dur;
                ppath ^ ";" ^ e.e_name
            in
            let pa = touch by_path path in
            pa.count <- pa.count + 1;
            pa.total <- pa.total +. e.e_dur;
            pa.self <- pa.self +. e.e_dur;
            stack := (e.e_ts +. e.e_dur, path) :: !stack)
          mine)
      tids;
    (by_span, by_path)

  let ms us = Fmt.str "%.3f" (us /. 1e3)

  (* The per-stage/per-domain wall-time table: one row per (span name,
     domain), busiest first. *)
  let span_table by_span : string =
    let rows =
      Hashtbl.fold (fun (name, tid) a acc -> (name, tid, a) :: acc) by_span []
      |> List.sort (fun (_, _, a) (_, _, b) -> compare b.total a.total)
      |> List.map (fun (name, tid, a) ->
             [ name; string_of_int tid; string_of_int a.count; ms a.total ])
    in
    Srp_support.Pp_util.render_table
      ~header:[ "span"; "domain"; "count"; "total ms" ] ~rows

  (* The text flamegraph: top-K span paths by self time, indented by
     nesting depth. *)
  let flamegraph ?(top_k = 15) by_path : string =
    let rows =
      Hashtbl.fold (fun path a acc -> (path, a) :: acc) by_path []
      |> List.sort (fun (_, a) (_, b) -> compare b.self a.self)
      |> List.filteri (fun i _ -> i < top_k)
      |> List.map (fun (path, a) ->
             let parts = String.split_on_char ';' path in
             let depth = List.length parts - 1 in
             let leaf = List.nth parts depth in
             [ String.make (2 * depth) ' ' ^ leaf;
               string_of_int a.count; ms a.self; ms a.total ])
    in
    Srp_support.Pp_util.render_table
      ~header:[ "hot span path (by self time)"; "count"; "self ms"; "total ms" ]
      ~rows

  (* The whole `srp report` rendering for one span file. *)
  let render ?top_k (doc : J.t) : (string, string) result =
    match parse doc with
    | Error e -> Error e
    | Ok (evs, dropped) ->
      let by_span, by_path = analyze evs in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Fmt.str "%d complete spans across %d domains%s\n\n" (List.length evs)
           (Hashtbl.length
              (let t = Hashtbl.create 8 in
               List.iter (fun e -> Hashtbl.replace t e.e_tid ()) evs;
               t))
           (if dropped > 0 then Fmt.str " (truncated: %d dropped)" dropped
            else ""));
      Buffer.add_string buf (span_table by_span);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (flamegraph ?top_k by_path);
      Ok (Buffer.contents buf)
end

(* --- `srp bench --compare`: regression gate over two srp-bench-v1 docs --- *)

module Compare = struct
  type thresholds = {
    cycle_pct : float;  (** allowed % growth of the cycle counters *)
    counter_pct : float;  (** allowed % growth of every other counter *)
  }

  (* Cycle counts wobble with code layout, so they get slack by default;
     event counts (loads, checks, ALAT traffic) are deterministic here
     and any growth is a real change. *)
  let default_thresholds = { cycle_pct = 2.0; counter_pct = 0.0 }

  let cycle_counters = [ "cycles"; "data_access_cycles"; "rse_cycles" ]

  (* l1_hits is the one counter where *more* is better and growth is
     covered by loads_retired + l1_misses anyway; comparing it "new >
     old = regression" would invert its meaning. *)
  let ignored_counters = [ "l1_hits" ]

  type regression = {
    r_bench : string;
    r_side : string; (* "baseline" | "alat" *)
    r_counter : string;
    r_old : int;
    r_new : int;
    r_delta_pct : float;
  }

  let bench_index (doc : J.t) : ((string, J.t) Hashtbl.t, string) result =
    match Option.bind (J.member "schema" doc) J.to_string_opt with
    | Some "srp-bench-v1" -> (
      match Option.bind (J.member "benchmarks" doc) J.to_list_opt with
      | None -> Error "missing \"benchmarks\" array"
      | Some entries ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun e ->
            match Option.bind (J.member "name" e) J.to_string_opt with
            | Some name -> Hashtbl.replace tbl name e
            | None -> ())
          entries;
        Ok tbl)
    | _ -> Error "not an srp-bench-v1 document"

  (* Compare one counters object pair; missing fields on the new side are
     errors (a counter vanished), not silently skipped. *)
  let compare_counters ~thresholds ~bench ~side (old_c : J.t) (new_c : J.t) :
      (regression list, string) result =
    match old_c with
    | J.Obj fields ->
      List.fold_left
        (fun acc (counter, old_v) ->
          match acc with
          | Error _ -> acc
          | Ok regs -> (
            if List.mem counter ignored_counters then Ok regs
            else
              match old_v, Option.bind (J.member counter new_c) J.to_int_opt with
              | J.Int old_v, Some new_v ->
                let pct =
                  if List.mem counter cycle_counters then thresholds.cycle_pct
                  else thresholds.counter_pct
                in
                let limit =
                  float_of_int old_v *. (1.0 +. (pct /. 100.0))
                in
                if new_v > old_v && float_of_int new_v > limit then
                  Ok
                    ({ r_bench = bench; r_side = side; r_counter = counter;
                       r_old = old_v; r_new = new_v;
                       r_delta_pct =
                         100.0
                         *. float_of_int (new_v - old_v)
                         /. float_of_int (max 1 old_v) }
                    :: regs)
                else Ok regs
              | J.Int _, None ->
                Error
                  (Fmt.str "%s/%s: counter %S missing from new document" bench
                     side counter)
              | _ -> Ok regs))
        (Ok []) fields
    | _ -> Error (Fmt.str "%s/%s: counters are not an object" bench side)

  (* Diff two srp-bench-v1 documents per kernel x level.  A benchmark
     present in [old_doc] but absent from [new_doc] is an error — a
     silently dropped kernel must not read as "no regressions". *)
  let compare_docs ?(thresholds = default_thresholds) ~(old_doc : J.t)
      ~(new_doc : J.t) () : (regression list, string) result =
    match bench_index old_doc, bench_index new_doc with
    | Error e, _ -> Error ("old: " ^ e)
    | _, Error e -> Error ("new: " ^ e)
    | Ok old_tbl, Ok new_tbl ->
      let names =
        Hashtbl.fold (fun name _ acc -> name :: acc) old_tbl []
        |> List.sort compare
      in
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ -> acc
          | Ok regs -> (
            match Hashtbl.find_opt new_tbl name with
            | None ->
              Error (Fmt.str "benchmark %S missing from new document" name)
            | Some new_e -> (
              let old_e = Hashtbl.find old_tbl name in
              let side side_name field k =
                match J.member field old_e, J.member field new_e with
                | Some o, Some n ->
                  Result.bind
                    (compare_counters ~thresholds ~bench:name ~side:side_name
                       o n)
                    k
                | _ ->
                  Error (Fmt.str "%s: missing %s" name field)
              in
              match
                side "baseline" "baseline_counters" @@ fun base_regs ->
                side "alat" "alat_counters" @@ fun alat_regs ->
                Ok (base_regs @ alat_regs)
              with
              | Ok more -> Ok (regs @ more)
              | Error e -> Error e)))
        (Ok []) names

  let render (regs : regression list) : string =
    if regs = [] then "no regressions\n"
    else
      Srp_support.Pp_util.render_table
        ~header:[ "benchmark"; "level"; "counter"; "old"; "new"; "delta %" ]
        ~rows:
          (List.map
             (fun r ->
               [ r.r_bench; r.r_side; r.r_counter; string_of_int r.r_old;
                 string_of_int r.r_new; Fmt.str "+%.2f" r.r_delta_pct ])
             regs)
end
