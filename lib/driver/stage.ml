(* The staged pipeline's artifact layer: content-addressed keys, typed
   per-stage artifacts, and a bounded in-memory store.

   Every compile decomposes into named stages

     lower -> apply-input -> profile -> promote -> select (codegen)
           -> regalloc -> layout -> bundle

   and each stage's output is an immutable artifact addressed by the hash
   of everything that determines it: the stage name, a per-stage version
   tag (bump it to invalidate old artifacts when a pass changes), the
   upstream stage keys, and the stage's own inputs (source text, input
   set, promotion config, backend flags).  Two jobs that share a prefix of
   that graph share the artifacts — the bench sweep compiles ten kernels
   at two levels but lowers each source once, and `srp serve` shares the
   train-input alias profile across every build of a workload.

   Artifacts are immutable by contract: stages that need to mutate their
   input (input application, promotion) clone it first (Program.clone).
   The store is domain-safe and dedupes in-flight builds — when two
   domains race to the same missing key, one builds and the other waits,
   so a parallel sweep still lowers each distinct source exactly once. *)

open Srp_ir
module Alias_profile = Srp_profile.Alias_profile
module Codegen = Srp_target.Codegen

type artifact =
  | Lowered of Program.t  (** pristine lowered source; never mutated *)
  | Applied of Program.t  (** clone of a [Lowered] with an input applied *)
  | Profiled of Alias_profile.t  (** train-input alias profile *)
  | Promoted of Program.t * Srp_core.Promote.result option
      (** clone of an [Applied] after promotion (None at O0: the applied
          program itself, unpromoted) *)
  | Selected of Codegen.selected list  (** instruction selection, per func *)
  | Allocated of Codegen.allocated list  (** post-regalloc (or post-layout) *)
  | Bundled of Srp_target.Insn.func list  (** final funcs, bundled or flat *)

(* A key resolved to an artifact of the wrong constructor: a key-derivation
   bug, never a user error. *)
exception Stage_mismatch of string

let mismatch what = raise (Stage_mismatch what)

(* --- content-addressed keys --- *)

module Key = struct
  (* Injective encoding: every part is length-prefixed, so no choice of
     separator can be confused by part contents (marshal bytes, source
     text).  MD5 (Digest) is plenty for an in-memory cache. *)
  let digest (parts : string list) : string =
    let buf = Buffer.create 128 in
    List.iter
      (fun p ->
        Buffer.add_string buf (string_of_int (String.length p));
        Buffer.add_char buf ':';
        Buffer.add_string buf p)
      parts;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let lower ~(source : string) = digest [ "lower"; "v1"; source ]

  let apply ~(lower_key : string) (input : Workload.input) =
    digest [ "apply"; "v1"; lower_key; Marshal.to_string input [] ]

  let profile ~(applied_key : string) =
    digest [ "profile"; "v1"; applied_key ]

  (* The promotion config's content fingerprint.  A profile-driven policy
     embeds the profile's serialized form, so retraining (or a different
     train input) changes every downstream key. *)
  let config_fingerprint (c : Srp_core.Config.t) : string =
    let style =
      match c.Srp_core.Config.check_style with
      | Srp_core.Config.No_speculation -> "none"
      | Srp_core.Config.Software -> "software"
      | Srp_core.Config.Alat -> "alat"
    in
    let policy =
      match c.Srp_core.Config.policy with
      | Srp_core.Config.Spec_never -> "never"
      | Srp_core.Config.Spec_heuristic -> "heuristic"
      | Srp_core.Config.Spec_profile p ->
        "profile:" ^ Digest.to_hex (Digest.string (Alias_profile.save p))
    in
    (* "v3": the probabilistic expected-value gate knobs joined the
       config (prob / spec_threshold / recovery_penalty); "v2" added the
       pressure-gate parameters.  Every knob that can change the
       promoter's output must be here, or a tuned threshold could be
       served a stale cached promote artifact. *)
    digest
      [ "config"; "v3"; style; policy;
        string_of_bool c.Srp_core.Config.control_spec;
        string_of_bool c.Srp_core.Config.use_invala;
        string_of_int c.Srp_core.Config.max_rounds;
        Printf.sprintf "%h" c.Srp_core.Config.cold_ratio;
        string_of_bool c.Srp_core.Config.cascade;
        string_of_bool c.Srp_core.Config.pressure;
        string_of_int c.Srp_core.Config.pressure_threshold;
        string_of_int c.Srp_core.Config.lat_l1;
        string_of_int c.Srp_core.Config.lat_fp;
        string_of_int c.Srp_core.Config.spill_cost;
        string_of_int c.Srp_core.Config.estimator;
        string_of_bool c.Srp_core.Config.prob;
        Printf.sprintf "%h" c.Srp_core.Config.spec_threshold;
        string_of_int c.Srp_core.Config.recovery_penalty ]

  let promote ~(applied_key : string) ~(config : string) =
    digest [ "promote"; "v1"; applied_key; config ]

  let select ~(promote_key : string) = digest [ "select"; "v1"; promote_key ]

  let regalloc ~(select_key : string) ~(split : bool) =
    digest [ "regalloc"; "v1"; select_key; string_of_bool split ]

  let layout ~(regalloc_key : string) ~(layout : bool) =
    digest [ "layout"; "v1"; regalloc_key; string_of_bool layout ]

  (* "v2": the pre-bundle list scheduler joined the stage (PR 9); its
     on/off bit determines the emitted stream, so it is part of the key. *)
  let bundle ~(layout_key : string) ~(sched : bool) ~(bundle : bool) =
    digest
      [ "bundle"; "v2"; layout_key; string_of_bool sched;
        string_of_bool bundle ]
end

(* --- the bounded store --- *)

type cache_stats = { hits : int; misses : int; evictions : int }

type slot =
  | Ready of { art : artifact; mutable last_use : int }
  | Building  (** another caller is computing this key right now *)

type store = {
  capacity : int;
  tbl : (string, slot) Hashtbl.t;
  mutable tick : int; (* LRU clock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mu : Mutex.t;
  cond : Condition.t; (* signaled when a Building slot resolves *)
}

let create ?(capacity = 256) () : store =
  if capacity < 1 then Fmt.invalid_arg "Stage.create: capacity %d" capacity;
  { capacity; tbl = Hashtbl.create 64; tick = 0; hits = 0; misses = 0;
    evictions = 0; mu = Mutex.create (); cond = Condition.create () }

let stats (t : store) : cache_stats =
  Mutex.protect t.mu (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions })

let hit_rate (s : cache_stats) : float =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Evict least-recently-used Ready entries down to capacity; Building
   slots are never evicted (a domain is about to fill them).  Called with
   the store lock held. *)
let evict_locked (t : store) =
  let ready = ref 0 in
  Hashtbl.iter (fun _ -> function Ready _ -> incr ready | Building -> ()) t.tbl;
  while !ready > t.capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun key -> function
        | Ready r -> (
          match !victim with
          | Some (_, lu) when lu <= r.last_use -> ()
          | _ -> victim := Some (key, r.last_use))
        | Building -> ())
      t.tbl;
    match !victim with
    | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1;
      Srp_obs.Stats.incr (Srp_obs.Stats.counter ~pass:"cache" "evictions");
      Srp_obs.Span.instant ~cat:"cache" "cache.evict"
        ~args:[ ("key", Srp_obs.Json.String key) ];
      decr ready
    | None -> ready := 0 (* unreachable: ready > capacity >= 1 *)
  done

let rec find_or_build (t : store) ~(key : string)
    ~(build : unit -> artifact) : artifact =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.tbl key with
  | Some (Ready r) ->
    t.tick <- t.tick + 1;
    r.last_use <- t.tick;
    t.hits <- t.hits + 1;
    Mutex.unlock t.mu;
    Srp_obs.Stats.incr (Srp_obs.Stats.counter ~pass:"cache" "hits");
    Srp_obs.Span.instant ~cat:"cache" "cache.hit"
      ~args:[ ("key", Srp_obs.Json.String key) ];
    r.art
  | Some Building ->
    (* another domain is building this key: wait for it to resolve, then
       look again (the slot may also have vanished if the builder failed,
       in which case this caller becomes the builder).  The span makes
       dedup stalls visible: its duration is time spent blocked on
       someone else's in-flight build of the same key. *)
    Srp_obs.Span.with_span ~cat:"cache" "cache.wait"
      ~args:[ ("key", Srp_obs.Json.String key) ]
      (fun () -> Condition.wait t.cond t.mu);
    Mutex.unlock t.mu;
    find_or_build t ~key ~build
  | None ->
    Hashtbl.replace t.tbl key Building;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mu;
    Srp_obs.Stats.incr (Srp_obs.Stats.counter ~pass:"cache" "misses");
    Srp_obs.Span.instant ~cat:"cache" "cache.miss"
      ~args:[ ("key", Srp_obs.Json.String key) ];
    (match build () with
    | art ->
      Mutex.lock t.mu;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key (Ready { art; last_use = t.tick });
      evict_locked t;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      art
    | exception e ->
      Mutex.lock t.mu;
      Hashtbl.remove t.tbl key;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu;
      raise e)

(* [get cache ~key ~build]: go through the store when one is provided;
   compute directly otherwise (the staged-but-uncached path). *)
let get (t : store option) ~(key : string) ~(build : unit -> artifact) :
    artifact =
  match t with None -> build () | Some t -> find_or_build t ~key ~build

(* --- typed accessors --- *)

let as_lowered = function Lowered p -> p | _ -> mismatch "lowered"
let as_applied = function Applied p -> p | _ -> mismatch "applied"
let as_profiled = function Profiled p -> p | _ -> mismatch "profiled"

let as_promoted = function
  | Promoted (p, r) -> (p, r)
  | Applied p -> (p, None) (* O0 shares the applied artifact unpromoted *)
  | _ -> mismatch "promoted"

let as_selected = function Selected s -> s | _ -> mismatch "selected"
let as_allocated = function Allocated a -> a | _ -> mismatch "allocated"
let as_bundled = function Bundled fs -> fs | _ -> mismatch "bundled"
