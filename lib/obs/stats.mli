(** Pass statistics — an LLVM [-stats] style registry.

    Compiler phases report named counters and timers into one
    process-global table; the driver renders it with {!report} (a table
    like [llvm -stats]) or {!to_json}.  The registry accumulates across
    runs in the same process; {!reset} clears it.  Instrumentation sites
    should look counters up at use time ([Stats.add (Stats.counter ...)]),
    not cache handles across resets.  All operations are domain-safe: the
    bench harness feeds the registry from a pool of worker domains. *)

type counter

(** Find-or-create the counter [(pass, name)]. Idempotent. *)
val counter : ?desc:string -> pass:string -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Raise the counter to [n] if it is below (high-water marks). *)
val set_max : counter -> int -> unit

val value : counter -> int

(** Read the statistic [(pass, name)] without creating it:
    [(count_or_calls, seconds)]. *)
val find : pass:string -> string -> (int * float) option

(** [time ~pass name f] runs [f ()], accumulating its monotonic
    wall-clock time ({!Clock.now}) and call count under the timer
    [(pass, name)].  When a {!Span} tracer is installed, the scope also
    emits a span named ["pass.name"] (category ["pass"]).
    Exception-safe. *)
val time : pass:string -> string -> (unit -> 'a) -> 'a

(** Render every statistic, ordered by (pass, name) — deterministic even
    when counters were registered from concurrent domains. *)
val report : unit -> string

val to_json : unit -> Json.t

(** Drop all statistics. *)
val reset : unit -> unit

(** {1 Per-job scopes}

    The registry is process-global, which conflates concurrent daemon
    jobs: an [srp serve] response must carry the pass statistics of its
    own job only.  {!with_scope} installs a domain-local shadow registry
    for the extent of [f]: every counter bump and timer tick inside [f]
    (on this domain) lands in both the global table and the returned
    scope.  Scopes are per-domain, so jobs running on different worker
    domains never bleed into each other's scopes; work a job waits on
    (another domain's in-flight stage build) is charged to the builder,
    not the waiter.  Nested scopes shadow the outer one for their
    extent. *)

module Scope : sig
  type t

  (** [(pass, name, count_or_calls, seconds)], sorted by (pass, name);
      [seconds] is 0 for plain counters. *)
  val entries : t -> (string * string * int * float) list

  (** Counter value / timer call count in this scope; 0 if absent. *)
  val value : t -> pass:string -> string -> int

  val to_json : t -> Json.t
end

(** Run [f] with a fresh scope active on the calling domain; returns
    [f ()]'s result and the scope. *)
val with_scope : (unit -> 'a) -> 'a * Scope.t
