(** Pass statistics — an LLVM [-stats] style registry.

    Compiler phases report named counters and timers into one
    process-global table; the driver renders it with {!report} (a table
    like [llvm -stats]) or {!to_json}.  The registry accumulates across
    runs in the same process; {!reset} clears it.  Instrumentation sites
    should look counters up at use time ([Stats.add (Stats.counter ...)]),
    not cache handles across resets.  All operations are domain-safe: the
    bench harness feeds the registry from a pool of worker domains. *)

type counter

(** Find-or-create the counter [(pass, name)]. Idempotent. *)
val counter : ?desc:string -> pass:string -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** Raise the counter to [n] if it is below (high-water marks). *)
val set_max : counter -> int -> unit

val value : counter -> int

(** [time ~pass name f] runs [f ()], accumulating its CPU time
    (Sys.time) and call count under the timer [(pass, name)].
    Exception-safe. *)
val time : pass:string -> string -> (unit -> 'a) -> 'a

(** Render every statistic, ordered by (pass, name) — deterministic even
    when counters were registered from concurrent domains. *)
val report : unit -> string

val to_json : unit -> Json.t

(** Drop all statistics. *)
val reset : unit -> unit
