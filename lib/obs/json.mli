(** A minimal JSON value type, encoder and parser — the observability
    layer's wire format, hand-rolled so that no library in the stack grows
    a new external dependency.

    The encoder emits RFC 8259 JSON (NaN/infinite floats become [null]);
    the parser accepts ordinary interchange JSON and exists mainly so tests
    can round-trip emitted documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(** Encode. [indent = 0] (the default) is compact single-line output;
    [indent > 0] pretty-prints with that many spaces per level. *)
val to_string : ?indent:int -> t -> string

(** Parse a complete document (trailing garbage is an error). *)
val of_string : string -> (t, string) result

(** Object field lookup; [None] on missing key or non-object. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
