(** Monotonic wall clock (CLOCK_MONOTONIC).

    The time base for spans and pass-statistics timers.  Unlike
    [Sys.time] (process CPU time, which double-counts concurrent Domain
    workers into each other's phases) this is wall-clock, and unlike
    [Unix.gettimeofday] it never steps backwards.  Only differences are
    meaningful; the origin is arbitrary. *)

(** Nanoseconds since an arbitrary origin; non-decreasing. *)
val ns : unit -> int64

(** Seconds since an arbitrary origin, as a float. *)
val now : unit -> float
