(* Pass statistics — an LLVM -stats style registry (cf. STATISTIC in
   RegisterPromotion.cpp).  Every compiler phase reports named counters and
   timers into one process-global table; the driver renders it as a table
   (`Stats.report`) or as JSON (`Stats.to_json`).

   The registry is process-global and accumulates across runs in the same
   process (the bench harness compiles dozens of programs; its pass stats
   are the totals).  `reset` clears it — handles obtained before a reset
   keep working but no longer feed the report, so instrumentation sites
   look counters up at use time rather than caching them.

   The bench harness compiles workloads from a pool of domains, so every
   access to the shared table and to entry fields takes one global mutex
   — these are tiny critical sections (int bumps, table lookups), far off
   any hot path.  The report orders entries by (pass, name) so its output
   does not depend on which domain registered a counter first. *)

type kind = Counter | Timer

type entry = {
  pass : string;
  name : string;
  desc : string;
  kind : kind;
  mutable count : int; (* counter value, or timer invocation count *)
  mutable secs : float; (* timers only: accumulated wall-clock seconds *)
}

type counter = entry

type registry = {
  tbl : (string * string, entry) Hashtbl.t;
  mutable order : entry list; (* reverse insertion order *)
}

let reg = { tbl = Hashtbl.create 64; order = [] }
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

(* --- per-job scopes ---

   The process-global registry conflates concurrent daemon jobs: `srp
   serve` compiles from a pool of domains, and a response must report the
   pass statistics of *its* job only.  A scope is a domain-local shadow
   registry: while active, every bump lands in both the global table and
   the scope, so existing instrumentation sites need no changes.  Scopes
   are per-domain (Domain.DLS), and each worker domain runs one job at a
   time, so two concurrent jobs never bleed counters into each other.
   Work a job *waits on* rather than executes (a cache hit on another
   domain's in-flight stage build) is charged to the builder's scope, not
   the waiter's — scope stats mean "work this job performed". *)

module Scope = struct
  type sentry = {
    s_pass : string;
    s_name : string;
    s_kind : kind;
    mutable s_count : int;
    mutable s_secs : float;
  }

  type t = { stbl : (string * string, sentry) Hashtbl.t }

  let create () = { stbl = Hashtbl.create 16 }

  let entry scope ~pass ~name kind =
    match Hashtbl.find_opt scope.stbl (pass, name) with
    | Some e -> e
    | None ->
      let e = { s_pass = pass; s_name = name; s_kind = kind; s_count = 0; s_secs = 0.0 } in
      Hashtbl.replace scope.stbl (pass, name) e;
      e

  (* (pass, name, count, seconds), sorted by (pass, name) like the global
     report. *)
  let entries scope =
    Hashtbl.fold (fun _ e acc -> e :: acc) scope.stbl []
    |> List.sort (fun a b -> compare (a.s_pass, a.s_name) (b.s_pass, b.s_name))
    |> List.map (fun e -> (e.s_pass, e.s_name, e.s_count, e.s_secs))

  let value scope ~pass name =
    match Hashtbl.find_opt scope.stbl (pass, name) with
    | Some e -> e.s_count
    | None -> 0

  let to_json scope : Json.t =
    Json.Arr
      (List.map
         (fun (pass, name, count, secs) ->
           Json.Obj
             ([ ("pass", Json.String pass); ("name", Json.String name) ]
             @
             if secs = 0.0 then [ ("value", Json.Int count) ]
             else [ ("seconds", Json.Float secs); ("calls", Json.Int count) ]))
         (entries scope))
end

(* The active scope of the calling domain, if any.  Only touched by its
   own domain, so no locking beyond the global mutex already held at the
   bump sites. *)
let scope_key : Scope.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current_scope () = !(Domain.DLS.get scope_key)

let with_scope (f : unit -> 'a) : 'a * Scope.t =
  let slot = Domain.DLS.get scope_key in
  let saved = !slot in
  let scope = Scope.create () in
  slot := Some scope;
  let v =
    Fun.protect ~finally:(fun () -> slot := saved) f
  in
  (v, scope)

let scoped ~pass ~name kind (bump : Scope.sentry -> unit) =
  match current_scope () with
  | None -> ()
  | Some scope -> bump (Scope.entry scope ~pass ~name kind)

let reset () =
  locked @@ fun () ->
  Hashtbl.reset reg.tbl;
  reg.order <- []

let find_or_add ~pass ~name ~desc kind =
  locked @@ fun () ->
  match Hashtbl.find_opt reg.tbl (pass, name) with
  | Some e -> e
  | None ->
    let e = { pass; name; desc; kind; count = 0; secs = 0.0 } in
    Hashtbl.replace reg.tbl (pass, name) e;
    reg.order <- e :: reg.order;
    e

let counter ?(desc = "") ~pass name : counter =
  find_or_add ~pass ~name ~desc Counter

let add (c : counter) n =
  locked (fun () -> c.count <- c.count + n);
  scoped ~pass:c.pass ~name:c.name c.kind (fun e ->
      e.Scope.s_count <- e.Scope.s_count + n)

let incr c = add c 1

let set_max (c : counter) n =
  locked (fun () -> if n > c.count then c.count <- n);
  scoped ~pass:c.pass ~name:c.name c.kind (fun e ->
      if n > e.Scope.s_count then e.Scope.s_count <- n)

let value (c : counter) = locked @@ fun () -> c.count

(* Read a statistic without creating it: (count-or-calls, seconds). *)
let find ~pass name =
  locked @@ fun () ->
  match Hashtbl.find_opt reg.tbl (pass, name) with
  | Some e -> Some (e.count, e.secs)
  | None -> None

(* Accumulate monotonic wall-clock time.  This used to read Sys.time —
   *process* CPU time — which double-counts under the Domain pool: while
   one worker timed its phase, every other busy worker's CPU seconds
   landed in the same delta.  Timed scopes also surface as spans
   ("pass.name") when a tracer is installed, so pass phases appear in
   the flamegraph with no extra instrumentation. *)
let time ~pass name f =
  let e = find_or_add ~pass ~name ~desc:"" Timer in
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now () -. t0 in
      locked (fun () ->
          e.secs <- e.secs +. dt;
          e.count <- e.count + 1);
      scoped ~pass ~name Timer (fun s ->
          s.Scope.s_secs <- s.Scope.s_secs +. dt;
          s.Scope.s_count <- s.Scope.s_count + 1))
    (fun () -> Span.with_span ~cat:"pass" (pass ^ "." ^ name) f)

(* Sorted, not insertion-ordered: with domains racing to register
   counters, insertion order is run-dependent; (pass, name) is not. *)
let entries () =
  locked (fun () -> reg.order)
  |> List.sort (fun a b -> compare (a.pass, a.name) (b.pass, b.name))

let report () : string =
  let rows =
    List.map
      (fun e ->
        match e.kind with
        | Counter -> [ e.pass; e.name; string_of_int e.count; "" ]
        | Timer ->
          [ e.pass; e.name; Fmt.str "%.4fs" e.secs; Fmt.str "%d calls" e.count ])
      (entries ())
  in
  if rows = [] then "(no statistics recorded)\n"
  else
    (* lightweight fixed-width table; lib/support is not a dependency *)
    let widths = [| 0; 0; 0; 0 |] in
    List.iter
      (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)))
      ([ "pass"; "statistic"; "value"; "" ] :: rows);
    let buf = Buffer.create 256 in
    let render row =
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf c;
          if i < 3 then
            Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
        row;
      Buffer.add_char buf '\n'
    in
    render [ "pass"; "statistic"; "value"; "" ];
    render
      (List.map (fun w -> String.make w '-') (Array.to_list widths)
      |> function
      | [ a; b; c; _ ] -> [ a; b; c; "" ]
      | r -> r);
    List.iter render rows;
    Buffer.contents buf

let to_json () : Json.t =
  Json.Arr
    (List.map
       (fun e ->
         Json.Obj
           ([ ("pass", Json.String e.pass); ("name", Json.String e.name) ]
           @ (if e.desc = "" then [] else [ ("desc", Json.String e.desc) ])
           @
           match e.kind with
           | Counter -> [ ("value", Json.Int e.count) ]
           | Timer ->
             [ ("seconds", Json.Float e.secs); ("calls", Json.Int e.count) ]))
       (entries ()))
