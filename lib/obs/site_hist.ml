(* Per-site event attribution — the pfmon event-sampling stand-in.

   pfmon on a real Itanium can sample which instruction address caused an
   ALAT event; our machine knows something better — the stable IR site id
   every load/store/check carries from lowering onward.  The machine
   records each memory-system event against its originating site here,
   which is what lets a report say *which load site* mis-speculates (and
   lets tests assert that per-site sums equal the global counters).

   Event names deliberately match the Counters.t field names so the
   cross-check between histogram and global counters is by-name. *)

type event =
  | Loads_retired
  | Fp_loads_retired
  | Stores_retired
  | Alat_inserts
  | Alat_evictions
  | Alat_store_invalidations
  | Checks_retired
  | Check_failures
  | Branch_mispredicts
  | Split_stalls

let all_events =
  [ Loads_retired; Fp_loads_retired; Stores_retired; Alat_inserts;
    Alat_evictions; Alat_store_invalidations; Checks_retired; Check_failures;
    Branch_mispredicts; Split_stalls ]

let event_index = function
  | Loads_retired -> 0
  | Fp_loads_retired -> 1
  | Stores_retired -> 2
  | Alat_inserts -> 3
  | Alat_evictions -> 4
  | Alat_store_invalidations -> 5
  | Checks_retired -> 6
  | Check_failures -> 7
  | Branch_mispredicts -> 8
  | Split_stalls -> 9

let n_events = List.length all_events

let event_name = function
  | Loads_retired -> "loads_retired"
  | Fp_loads_retired -> "fp_loads_retired"
  | Stores_retired -> "stores_retired"
  | Alat_inserts -> "alat_inserts"
  | Alat_evictions -> "alat_evictions"
  | Alat_store_invalidations -> "alat_store_invalidations"
  | Checks_retired -> "checks_retired"
  | Check_failures -> "check_failures"
  | Branch_mispredicts -> "branch_mispredicts"
  | Split_stalls -> "split_stalls"

(* site id -> event count vector.  Site -1 is the synthetic site codegen
   uses for spill traffic it manufactures itself. *)
type t = (int, int array) Hashtbl.t

let create () : t = Hashtbl.create 64

let record (t : t) ~site ev =
  let row =
    match Hashtbl.find_opt t site with
    | Some r -> r
    | None ->
      let r = Array.make n_events 0 in
      Hashtbl.replace t site r;
      r
  in
  let i = event_index ev in
  row.(i) <- row.(i) + 1

let count (t : t) ~site ev =
  match Hashtbl.find_opt t site with
  | Some r -> r.(event_index ev)
  | None -> 0

let total (t : t) ev =
  let i = event_index ev in
  Hashtbl.fold (fun _ r acc -> acc + r.(i)) t 0

let sites (t : t) = Hashtbl.fold (fun s _ acc -> s :: acc) t [] |> List.sort compare

(* Sites ranked by [ev], descending; ties by site id for determinism. *)
let top (t : t) ev ~n =
  let i = event_index ev in
  Hashtbl.fold (fun s r acc -> if r.(i) > 0 then (s, r.(i)) :: acc else acc) t []
  |> List.sort (fun (s1, c1) (s2, c2) ->
         if c1 <> c2 then compare c2 c1 else compare s1 s2)
  |> List.filteri (fun k _ -> k < n)

let to_json (t : t) : Json.t =
  Json.Arr
    (List.map
       (fun s ->
         let r = Hashtbl.find t s in
         Json.Obj
           (("site", Json.Int s)
           :: List.concat_map
                (fun ev ->
                  let c = r.(event_index ev) in
                  if c = 0 then [] else [ (event_name ev, Json.Int c) ])
                all_events))
       (sites t))

(* The "top mis-speculating sites" report: sites whose checks failed, with
   their check volume and failure rate — what pfmon event sampling would
   show for ALAT_CAPACITY_MISS-style events. *)
let pp_top_missers ppf (t : t) =
  match top t Check_failures ~n:10 with
  | [] -> Fmt.pf ppf "no mis-speculating sites"
  | worst ->
    Fmt.pf ppf "@[<v>top mis-speculating sites:@,%-6s %10s %10s %8s@," "site"
      "failures" "checks" "rate";
    List.iter
      (fun (s, fails) ->
        let checks = count t ~site:s Checks_retired in
        let rate =
          if checks = 0 then 0.0
          else 100.0 *. float_of_int fails /. float_of_int checks
        in
        Fmt.pf ppf "s%-5d %10d %10d %7.2f%%@," s fails checks rate)
      worst;
    Fmt.pf ppf "@]"

(* The "top mispredicting branches" report: branch sites ranked by static
   predictor misses — the view that makes a mispredict-per-iteration loop
   pathology visible instead of a single opaque global counter. *)
let pp_top_mispredicts ppf (t : t) =
  match top t Branch_mispredicts ~n:10 with
  | [] -> Fmt.pf ppf "no mispredicting branches"
  | worst ->
    Fmt.pf ppf "@[<v>top mispredicting branches:@,%-6s %12s@," "site"
      "mispredicts";
    List.iter (fun (s, n) -> Fmt.pf ppf "s%-5d %12d@," s n) worst;
    Fmt.pf ppf "@]"
