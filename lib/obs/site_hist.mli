(** Per-site event attribution — the pfmon event-sampling stand-in.

    The machine records every memory-system event against the stable IR
    site id of the instruction that caused it (the site the victim entry
    was *armed* by, for ALAT evictions and store invalidations).  Event
    names match the {!Srp_machine.Counters.t} field names, so per-event
    sums over all sites can be cross-checked against the global counters
    by name. *)

type event =
  | Loads_retired
  | Fp_loads_retired
  | Stores_retired
  | Alat_inserts
  | Alat_evictions  (** attributed to the evicted entry's arming site *)
  | Alat_store_invalidations
      (** attributed to the invalidated entry's arming site *)
  | Checks_retired  (** ld.c and chk.a *)
  | Check_failures
  | Branch_mispredicts  (** static-prediction misses, per branch site *)
  | Split_stalls
      (** bundle-dispersal issue groups ended early by a stop bit or
          template port conflict, charged to the first site-carrying
          instruction of the delayed bundle ([-1] when it has none) *)

val all_events : event list
val event_name : event -> string

type t

val create : unit -> t

(** Count one event at [site] ([-1] = synthetic codegen site). *)
val record : t -> site:int -> event -> unit

val count : t -> site:int -> event -> int

(** Sum over all sites — must equal the matching global counter. *)
val total : t -> event -> int

(** All sites with at least one event, ascending. *)
val sites : t -> int list

(** Sites ranked by [event] count, descending, zero-count sites omitted. *)
val top : t -> event -> n:int -> (int * int) list

(** One object per site, zero counts omitted:
    [{"site": 3, "loads_retired": 17, ...}]. *)
val to_json : t -> Json.t

(** Sites ranked by check failures, with volumes and failure rates. *)
val pp_top_missers : Format.formatter -> t -> unit

(** Branch sites ranked by static-predictor misses. *)
val pp_top_mispredicts : Format.formatter -> t -> unit
