(** Span tracing (schema [srp-spans-v1]).

    A domain-safe span tracer emitting Chrome trace-event /
    Perfetto-compatible JSON: each instrumented scope becomes one
    complete event ([{"ph":"X", ...}]) with monotonic microsecond
    timestamps, [pid] 1 and [tid] = the id of the Domain that ran it.
    The resulting file loads directly in Perfetto / chrome://tracing as
    a per-domain flamegraph.

    The tracer is process-global, mirroring the {!Stats} registry:
    instrumentation sites call {!with_span} unconditionally; with no
    tracer installed (the default) the cost is a single atomic load and
    behavior is untouched. *)

type t

(** [create ?limit ?out ()] makes a tracer. [out], when given, receives
    the JSON event array ([create] writes the opening ['[']; {!close}
    writes the closing [']'] — the channel itself stays owned by the
    caller). At most [limit] events (default [100_000]) are recorded;
    later events are counted as dropped, and {!close} appends a final
    instant event named ["truncated"] with [args.dropped] = the count.
    Without [out] the tracer only aggregates {!totals} — the mode
    [srp serve] uses for its summary breakdown. *)
val create : ?limit:int -> ?out:out_channel -> unit -> t

(** Install [t] as the process-global tracer read by {!with_span} and
    {!instant} on every domain. *)
val install : t -> unit

(** Remove the installed tracer (spans become no-ops again). *)
val uninstall : unit -> unit

(** The currently installed tracer, if any. *)
val active : unit -> t option

(** [enabled () = (active () <> None)] — cheap guard for callers that
    want to skip arg construction entirely. *)
val enabled : unit -> bool

(** [with_span ?cat ?args name f] runs [f ()] and, if a tracer is
    installed, emits one complete event covering its execution.
    Exception-safe: a raising [f] still emits (with an ["exn"] arg) and
    the exception is re-raised. *)
val with_span : ?cat:string -> ?args:(string * Json.t) list -> string ->
  (unit -> 'a) -> 'a

(** Like {!with_span}, but [f] returns [(result, extra_args)] so facts
    discovered inside the scope — a cache hit, a result digest — land in
    the span's [args]. *)
val with_span_args : ?cat:string -> ?args:(string * Json.t) list -> string ->
  (unit -> 'a * (string * Json.t) list) -> 'a

(** Zero-duration marker (cache hit/evict): a thread-scoped instant
    event ([{"ph":"i"}]). *)
val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** Events recorded so far (not counting drops). *)
val emitted : t -> int

(** Events dropped after the limit was reached. *)
val dropped : t -> int

(** [truncated t = (dropped t > 0)]. *)
val truncated : t -> bool

(** Per-[(cat, name)] aggregation over all recorded spans:
    [(cat, name, count, total_seconds)], sorted. Maintained even without
    an [out] channel. *)
val totals : t -> (string * string * int * float) list

(** Finish the event array: append the ["truncated"] marker if events
    were dropped, write the closing [']'], flush. Does not close the
    channel. *)
val close : t -> unit
