(** Bounded per-cycle event trace: one JSON object per line
    ([{"c": <cycle>, "ev": <kind>, ...}]).

    After [limit] events further emissions are dropped and counted;
    {!close} appends a final [{"ev":"truncated","dropped":N}] record if
    anything was dropped.  {!close} flushes but does not close the
    channel — the opener owns it. *)

type sink

val create : ?limit:int -> out_channel -> sink

val emit : sink -> cycle:int -> string -> (string * Json.t) list -> unit

(** Events written so far (excluding drops). *)
val emitted : sink -> int

val truncated : sink -> bool
val close : sink -> unit
