(* A minimal JSON value type with an encoder and a parser.  Hand-rolled on
   purpose: the container bakes in no JSON library, and the observability
   layer must not pull new dependencies into every library that reports
   statistics.  The encoder emits RFC 8259 JSON; the parser accepts what
   the encoder produces (plus ordinary interchange JSON) and exists mainly
   so tests can round-trip emitted documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(* --- encoding --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity; clamp to null like most emitters do. *)
let float_repr x =
  if not (Float.is_finite x) then None
  else
    (* shortest representation that still round-trips through
       float_of_string for the magnitudes we emit *)
    let s = Printf.sprintf "%.17g" x in
    let short = Printf.sprintf "%.12g" x in
    Some (if float_of_string short = x then short else s)

let rec encode buf ~indent ~level (v : t) =
  let nl n =
    if indent > 0 then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (indent * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> (
    match float_repr x with
    | None -> Buffer.add_string buf "null"
    | Some s ->
      Buffer.add_string buf s;
      (* make sure a whole-number float stays a float on re-parse *)
      if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
        Buffer.add_string buf ".0")
  | String s -> escape_string buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        encode buf ~indent ~level:(level + 1) x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_string buf k;
        Buffer.add_char buf ':';
        if indent > 0 then Buffer.add_char buf ' ';
        encode buf ~indent ~level:(level + 1) x)
      kvs;
    nl level;
    Buffer.add_char buf '}'

let to_string ?(indent = 0) (v : t) : string =
  let buf = Buffer.create 256 in
  encode buf ~indent ~level:0 v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let perror st fmt =
  Fmt.kstr (fun m -> raise (Parse_error (Fmt.str "at offset %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> perror st "expected '%c', found '%c'" c c'
  | None -> perror st "expected '%c', found end of input" c

let literal st word (v : t) =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else perror st "invalid literal"

(* encode a unicode codepoint as UTF-8 *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st : string =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then perror st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.pos >= String.length st.s then perror st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      match e with
      | '"' -> Buffer.add_char buf '"'; go ()
      | '\\' -> Buffer.add_char buf '\\'; go ()
      | '/' -> Buffer.add_char buf '/'; go ()
      | 'n' -> Buffer.add_char buf '\n'; go ()
      | 'r' -> Buffer.add_char buf '\r'; go ()
      | 't' -> Buffer.add_char buf '\t'; go ()
      | 'b' -> Buffer.add_char buf '\b'; go ()
      | 'f' -> Buffer.add_char buf '\012'; go ()
      | 'u' ->
        if st.pos + 4 > String.length st.s then perror st "truncated \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let cp =
          try int_of_string ("0x" ^ hex)
          with _ -> perror st "bad \\u escape %s" hex
        in
        add_utf8 buf cp;
        go ()
      | c -> perror st "bad escape '\\%c'" c)
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st : t =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  (* RFC 8259 has no leading '+' ('+' only appears in exponents), but the
     stdlib of_string functions accept it *)
  if tok = "" || tok.[0] = '+' then perror st "bad number %s" tok;
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
    match float_of_string_opt tok with
    | Some x -> Float x
    | None -> perror st "bad number %s" tok
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> perror st "bad number %s" tok

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> perror st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; items (v :: acc)
        | Some ']' -> expect st ']'; List.rev (v :: acc)
        | _ -> perror st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; members ((k, v) :: acc)
        | Some '}' -> expect st '}'; List.rev ((k, v) :: acc)
        | _ -> perror st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some _ -> parse_number st

let of_string (s : string) : (t, string) result =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then
      Error (Fmt.str "at offset %d: trailing garbage" st.pos)
    else Ok v
  with Parse_error m -> Error m

(* --- accessors (for tests and consumers of emitted documents) --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_float_opt = function Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function Arr xs -> Some xs | _ -> None
