(* Monotonic wall clock for the observability layer.

   Every timer in this library used to read Sys.time — *process* CPU
   time — which double-counts under the Domain pool: while one worker
   times its phase, every other busy worker's CPU seconds land in the
   same delta, so a two-domain bench run reported phases at ~2x their
   real duration.  Spans and pass-statistics timers want wall-clock
   time, and a *monotonic* one (gettimeofday can step backwards under
   NTP), so we read CLOCK_MONOTONIC through the bechamel stub that is
   already installed for the micro-benchmarks — no new dependency. *)

(* Nanoseconds since an arbitrary origin; strictly non-decreasing. *)
let ns () : int64 = Monotonic_clock.now ()

(* Seconds since an arbitrary origin, as a float.  Only differences are
   meaningful. *)
let now () : float = Int64.to_float (Monotonic_clock.now ()) /. 1e9
