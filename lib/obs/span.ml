(* Span tracing — the wall-clock side of the observability layer
   (schema srp-spans-v1).

   Where `Stats` answers "how much work did each pass do" and
   `Site_hist` answers "which load site caused this event", spans answer
   "where did the wall-clock time of this run go": every instrumented
   scope (a stage build, a pool task, a serve job, a timed pass) becomes
   one Chrome trace-event *complete* event (`"ph":"X"`) with a monotonic
   timestamp, a duration, and tid = the Domain that ran it — so a
   `--trace-spans FILE` run loads directly in Perfetto or
   chrome://tracing as a flamegraph with one track per domain.

   The tracer is process-global like the Stats registry: instrumentation
   sites call {!with_span} unconditionally, and when no tracer is
   installed (the default) the only cost is one atomic load.  Writing is
   mutex-serialized; the bound keeps a runaway batch from filling the
   disk, and `close` appends a final instant event named "truncated"
   with the drop count — the span-file analogue of `Trace`'s
   `{"ev":"truncated","dropped":N}` record.

   Every tracer also aggregates (cat, name) -> (count, total seconds)
   in memory, whether or not a file sink is attached; `srp serve` runs a
   sink-less tracer over every batch so its summary line can carry a
   per-stage wall-time breakdown without anyone asking for a trace
   file. *)

type agg = { mutable a_count : int; mutable a_secs : float }

type t = {
  out : out_channel option;
  limit : int;
  mutable emitted : int;
  mutable dropped : int;
  mutable first : bool; (* no event written yet (comma placement) *)
  t0 : int64; (* ns origin: tracer creation *)
  totals : (string * string, agg) Hashtbl.t; (* (cat, name) *)
  mu : Mutex.t;
}

let create ?(limit = 100_000) ?out () : t =
  let t =
    { out; limit; emitted = 0; dropped = 0; first = true; t0 = Clock.ns ();
      totals = Hashtbl.create 32; mu = Mutex.create () }
  in
  (match out with None -> () | Some oc -> output_char oc '[');
  t

(* --- the installed tracer ---

   One per process, like the Stats registry; read from every domain
   (pool workers inherit it), so the slot is an Atomic. *)

let installed : t option Atomic.t = Atomic.make None

let install t = Atomic.set installed (Some t)
let uninstall () = Atomic.set installed None
let active () = Atomic.get installed
let enabled () = Atomic.get installed <> None

(* --- emission --- *)

let us t (ns : int64) : float =
  Int64.to_float (Int64.sub ns t.t0) /. 1e3

(* One trace event, written under the tracer mutex.  [ph] is "X"
   (complete, with dur) or "i" (instant). *)
let write_event t ~name ~cat ~ph ~ts ?dur ~tid (args : (string * Json.t) list)
    : unit =
  Mutex.protect t.mu @@ fun () ->
  if t.emitted >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.emitted <- t.emitted + 1;
    match t.out with
    | None -> ()
    | Some oc ->
      if t.first then t.first <- false else output_char oc ',';
      output_char oc '\n';
      output_string oc
        (Json.to_string
           (Json.Obj
              ([ ("name", Json.String name); ("cat", Json.String cat);
                 ("ph", Json.String ph); ("ts", Json.Float ts) ]
              @ (match dur with
                | None -> []
                | Some d -> [ ("dur", Json.Float d) ])
              @ [ ("pid", Json.Int 1); ("tid", Json.Int tid) ]
              @ (match ph with
                | "i" -> [ ("s", Json.String "t") ] (* thread-scoped instant *)
                | _ -> [])
              @ match args with
                | [] -> []
                | args -> [ ("args", Json.Obj args) ])))
  end

let bump_total t ~cat ~name secs =
  Mutex.protect t.mu @@ fun () ->
  match Hashtbl.find_opt t.totals (cat, name) with
  | Some a ->
    a.a_count <- a.a_count + 1;
    a.a_secs <- a.a_secs +. secs
  | None -> Hashtbl.replace t.totals (cat, name) { a_count = 1; a_secs = secs }

let tid () = (Domain.self () :> int)

(* --- the public instrumentation points --- *)

(* [with_span_args name f]: run [f], emit one complete event spanning its
   execution; [f] returns (result, extra args) so outcomes discovered
   inside the scope (a cache hit, a job key) land in the event's args.
   Exception-safe: a raising scope still emits, with an "exn" arg. *)
let with_span_args ?(cat = "srp") ?(args = []) name
    (f : unit -> 'a * (string * Json.t) list) : 'a =
  match Atomic.get installed with
  | None -> fst (f ())
  | Some t ->
    let start = Clock.ns () in
    let finish extra =
      let stop = Clock.ns () in
      let dur_ns = Int64.sub stop start in
      write_event t ~name ~cat ~ph:"X" ~ts:(us t start)
        ~dur:(Int64.to_float dur_ns /. 1e3)
        ~tid:(tid ()) (args @ extra);
      bump_total t ~cat ~name (Int64.to_float dur_ns /. 1e9)
    in
    (match f () with
    | v, extra ->
      finish extra;
      v
    | exception e ->
      finish [ ("exn", Json.String (Printexc.to_string e)) ];
      raise e)

let with_span ?cat ?args name (f : unit -> 'a) : 'a =
  with_span_args ?cat ?args name (fun () -> (f (), []))

(* A zero-duration marker (cache hits, evictions): a thread-scoped
   instant event. *)
let instant ?(cat = "srp") ?(args = []) name : unit =
  match Atomic.get installed with
  | None -> ()
  | Some t ->
    write_event t ~name ~cat ~ph:"i" ~ts:(us t (Clock.ns ())) ~tid:(tid ())
      args;
    bump_total t ~cat ~name 0.0

(* --- reading a tracer back --- *)

let emitted t = Mutex.protect t.mu (fun () -> t.emitted)
let dropped t = Mutex.protect t.mu (fun () -> t.dropped)
let truncated t = dropped t > 0

(* (cat, name, count, total seconds), sorted by (cat, name). *)
let totals t : (string * string * int * float) list =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun (cat, name) a acc -> (cat, name, a.a_count, a.a_secs) :: acc)
        t.totals [])
  |> List.sort compare

(* Close the JSON array.  If events were dropped, first append a final
   instant event named "truncated" carrying the count (the reader-visible
   marker that the file is a prefix).  Flushes but does not close the
   channel — the opener owns it. *)
let close t =
  Mutex.protect t.mu (fun () ->
      match t.out with
      | None -> ()
      | Some oc ->
        if t.dropped > 0 then begin
          if t.first then t.first <- false else output_char oc ',';
          output_char oc '\n';
          output_string oc
            (Json.to_string
               (Json.Obj
                  [ ("name", Json.String "truncated");
                    ("cat", Json.String "srp"); ("ph", Json.String "i");
                    ("ts", Json.Float (us t (Clock.ns ())));
                    ("pid", Json.Int 1); ("tid", Json.Int (tid ()));
                    ("s", Json.String "t");
                    ("args", Json.Obj [ ("dropped", Json.Int t.dropped) ]) ]))
        end;
        output_string oc "\n]\n";
        flush oc)
