(* Bounded event-trace sink: one JSON object per line, each stamped with
   the machine cycle it retired at.  Meant for debugging codegen and the
   timing model — pipe a run through `srp run --trace FILE` and grep.

   The bound keeps a runaway loop from filling the disk: after [limit]
   events the sink counts drops silently and `close` appends a final
   `{"ev":"truncated","dropped":N}` record so a reader knows the trace is
   a prefix, not the whole run. *)

type sink = {
  oc : out_channel;
  limit : int;
  mutable emitted : int;
  mutable dropped : int;
}

let create ?(limit = 100_000) oc = { oc; limit; emitted = 0; dropped = 0 }

let emit t ~cycle kind fields =
  if t.emitted >= t.limit then t.dropped <- t.dropped + 1
  else begin
    t.emitted <- t.emitted + 1;
    output_string t.oc
      (Json.to_string
         (Json.Obj (("c", Json.Int cycle) :: ("ev", Json.String kind) :: fields)));
    output_char t.oc '\n'
  end

let emitted t = t.emitted
let truncated t = t.dropped > 0

let close t =
  if t.dropped > 0 then begin
    output_string t.oc
      (Json.to_string
         (Json.Obj
            [ ("ev", Json.String "truncated"); ("dropped", Json.Int t.dropped) ]));
    output_char t.oc '\n'
  end;
  flush t.oc
