(* Lowering: typed AST -> mid-level IR.

   The cardinal rule: every user variable stays in memory (explicit
   Load/Store on its symbol).  Lowering never caches a variable in a temp
   across statements — register promotion (lib/core) is the pass that earns
   that, and the baseline-vs-speculative comparison depends on both starting
   from the same memory-form IR.  Temps are single-assignment expression
   intermediates; merges of values (&&, ||, ?:) go through compiler scratch
   locals so the single-def discipline holds. *)

open Srp_ir

type ctx = {
  prog : Program.t;
  structs : Struct_env.t;
  func : Func.t;
  syms : (string, Symbol.t) Hashtbl.t; (* unique name -> symbol *)
  mutable cur : Block.t;
  mutable loop_stack : (Label.t * Label.t) list; (* (continue, break) *)
  mutable scratch : int;
}

exception Lower_error of string

let lerror fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

let emit ctx i = Block.append ctx.cur i

let fresh_temp ctx mty = Func.fresh_temp ctx.func mty

let fresh_site ctx = Site.Gen.fresh ctx.prog.Program.site_gen

let start_block ctx b = ctx.cur <- b

(* Terminate the current block and continue in [next]. *)
let finish ctx term next =
  ctx.cur.Block.term <- term;
  start_block ctx next

let find_sym ctx name =
  match Hashtbl.find_opt ctx.syms name with
  | Some s -> s
  | None -> lerror "lower: unresolved symbol %s" name

let scratch_local ctx mty =
  ctx.scratch <- ctx.scratch + 1;
  let name = Fmt.str "$t%d" ctx.scratch in
  let s =
    Symbol.Gen.fresh ctx.prog.Program.sym_gen ~name ~storage:Symbol.Local
      ~mty ~size_bytes:8 ~is_scalar:true
  in
  Func.add_local ctx.func s;
  Hashtbl.replace ctx.syms name s;
  s

let sizeof ctx ty = Struct_env.sizeof ctx.structs Ast.no_pos ty

let mty_of ty = Struct_env.mty_of_ty Ast.no_pos ty

let is_aggregate = function Ast.Tarr _ | Ast.Tstruct _ -> true | _ -> false

(* Load the value at [addr]. *)
let load ctx addr mty =
  let dst = fresh_temp ctx mty in
  emit ctx (Instr.Load { dst; addr; mty; site = fresh_site ctx; promo = Instr.P_none });
  Ops.Temp dst

(* Materialize an address as an integer operand (pointer value). *)
let addr_to_operand ctx (a : Ops.addr) : Ops.operand =
  match a.Ops.base, a.Ops.offset with
  | Ops.Sym s, 0 ->
    Symbol.mark_addr_taken s;
    Ops.Sym_addr s
  | Ops.Sym s, off ->
    Symbol.mark_addr_taken s;
    let dst = fresh_temp ctx Mem_ty.I64 in
    emit ctx (Instr.Bin { dst; op = Ops.Add; a = Ops.Sym_addr s; b = Ops.Int (Int64.of_int off) });
    Ops.Temp dst
  | Ops.Reg t, 0 -> Ops.Temp t
  | Ops.Reg t, off ->
    let dst = fresh_temp ctx Mem_ty.I64 in
    emit ctx (Instr.Bin { dst; op = Ops.Add; a = Ops.Temp t; b = Ops.Int (Int64.of_int off) });
    Ops.Temp dst

(* Turn a pointer-valued operand into an addr base. *)
let operand_to_addr ctx (o : Ops.operand) : Ops.addr =
  match o with
  | Ops.Temp t -> Ops.addr_of_temp t
  | Ops.Sym_addr s -> Ops.addr_of_sym s
  | Ops.Int _ | Ops.Flt _ ->
    (* e.g. *(int* )0 — materialize through a temp; will fault at runtime *)
    let dst = fresh_temp ctx Mem_ty.I64 in
    emit ctx (Instr.Mov { dst; src = o });
    Ops.addr_of_temp dst

let binop_ir ~float_ (op : Ast.binop) : Ops.binop =
  match op, float_ with
  | Ast.Badd, false -> Ops.Add
  | Ast.Bsub, false -> Ops.Sub
  | Ast.Bmul, false -> Ops.Mul
  | Ast.Bdiv, false -> Ops.Div
  | Ast.Brem, _ -> Ops.Rem
  | Ast.Band, _ -> Ops.And
  | Ast.Bor, _ -> Ops.Or
  | Ast.Bxor, _ -> Ops.Xor
  | Ast.Bshl, _ -> Ops.Shl
  | Ast.Bshr, _ -> Ops.Shr
  | Ast.Beq, false -> Ops.Eq
  | Ast.Bne, false -> Ops.Ne
  | Ast.Blt, false -> Ops.Lt
  | Ast.Ble, false -> Ops.Le
  | Ast.Bgt, false -> Ops.Gt
  | Ast.Bge, false -> Ops.Ge
  | Ast.Badd, true -> Ops.FAdd
  | Ast.Bsub, true -> Ops.FSub
  | Ast.Bmul, true -> Ops.FMul
  | Ast.Bdiv, true -> Ops.FDiv
  | Ast.Beq, true -> Ops.FEq
  | Ast.Bne, true -> Ops.FNe
  | Ast.Blt, true -> Ops.FLt
  | Ast.Ble, true -> Ops.FLe
  | Ast.Bgt, true -> Ops.FGt
  | Ast.Bge, true -> Ops.FGe
  | (Ast.Bland | Ast.Blor), _ -> assert false (* handled by control flow *)

(* --- expressions --- *)

let rec rvalue ctx (e : Typed_ast.texpr) : Ops.operand =
  let open Typed_ast in
  match e.tdesc with
  | Tint_lit v -> Ops.Int v
  | Tfloat_lit v -> Ops.Flt v
  | Tvar name ->
    let s = find_sym ctx name in
    if is_aggregate e.tty then begin
      (* array/struct decays to its address *)
      Symbol.mark_addr_taken s;
      Ops.Sym_addr s
    end
    else load ctx (Ops.addr_of_sym s) (Symbol.mty s)
  | Tcast_i2f a ->
    let v = rvalue ctx a in
    let dst = fresh_temp ctx Mem_ty.F64 in
    emit ctx (Instr.Un { dst; op = Ops.I2F; a = v });
    Ops.Temp dst
  | Tcast_f2i a ->
    let v = rvalue ctx a in
    let dst = fresh_temp ctx Mem_ty.I64 in
    emit ctx (Instr.Un { dst; op = Ops.F2I; a = v });
    Ops.Temp dst
  | Tun (op, a) -> (
    let v = rvalue ctx a in
    match op, a.tty with
    | Ast.Uneg, Ast.Tdouble ->
      let dst = fresh_temp ctx Mem_ty.F64 in
      emit ctx (Instr.Un { dst; op = Ops.FNeg; a = v });
      Ops.Temp dst
    | Ast.Uneg, _ ->
      let dst = fresh_temp ctx Mem_ty.I64 in
      emit ctx (Instr.Un { dst; op = Ops.Neg; a = v });
      Ops.Temp dst
    | Ast.Unot, _ ->
      (* !x = (x == 0) on the boolean view of x *)
      let b = to_bool ctx v a.tty in
      let dst = fresh_temp ctx Mem_ty.I64 in
      emit ctx (Instr.Bin { dst; op = Ops.Eq; a = b; b = Ops.Int 0L });
      Ops.Temp dst
    | Ast.Ubnot, _ ->
      let dst = fresh_temp ctx Mem_ty.I64 in
      emit ctx (Instr.Un { dst; op = Ops.Not; a = v });
      Ops.Temp dst)
  | Tbin ((Ast.Bland | Ast.Blor) as op, a, b) -> lower_shortcircuit ctx op a b
  | Tbin (op, a, b) -> (
    (* pointer arithmetic scaling *)
    match e.tty, a.tty, b.tty with
    | Ast.Tptr elt, _, Ast.Tint when op = Ast.Badd || op = Ast.Bsub ->
      let elt_size = sizeof ctx elt in
      let base = rvalue ctx a in
      let idx = rvalue ctx b in
      let scaled = fresh_temp ctx Mem_ty.I64 in
      emit ctx
        (Instr.Bin { dst = scaled; op = Ops.Mul; a = idx; b = Ops.Int (Int64.of_int elt_size) });
      let dst = fresh_temp ctx Mem_ty.I64 in
      let irop = if op = Ast.Badd then Ops.Add else Ops.Sub in
      emit ctx (Instr.Bin { dst; op = irop; a = base; b = Ops.Temp scaled });
      Ops.Temp dst
    | _ ->
      let float_ = a.tty = Ast.Tdouble || b.tty = Ast.Tdouble in
      let va = rvalue ctx a in
      let vb = rvalue ctx b in
      let irop = binop_ir ~float_ op in
      let dst = fresh_temp ctx (Ops.binop_result_mty irop) in
      emit ctx (Instr.Bin { dst; op = irop; a = va; b = vb });
      Ops.Temp dst)
  | Tderef _ | Tindex _ | Tfield _ | Tarrow _ ->
    if is_aggregate e.tty then
      (* aggregate lvalue in value context: its address *)
      addr_to_operand ctx (lvalue_addr ctx e)
    else
      let addr = lvalue_addr ctx e in
      load ctx addr (mty_of e.tty)
  | Taddr a -> addr_to_operand ctx (lvalue_addr ctx a)
  | Tcall (name, args) -> (
    match lower_call ctx name args (Some e.tty) with
    | Some v -> v
    | None -> lerror "void call used as a value")
  | Tcond (c, a, b) ->
    (* route both arms through a scratch local; promotion cleans it up *)
    let mty = if e.tty = Ast.Tdouble then Mem_ty.F64 else Mem_ty.I64 in
    let s = scratch_local ctx mty in
    let cond = lower_cond ctx c in
    let bt = Func.fresh_block ~hint:"ct" ctx.func in
    let bf = Func.fresh_block ~hint:"cf" ctx.func in
    let bj = Func.fresh_block ~hint:"cj" ctx.func in
    finish ctx
      (Instr.Br
         { cond; ifso = Block.label bt; ifnot = Block.label bf;
           site = fresh_site ctx })
      bt;
    let va = rvalue ctx a in
    emit ctx (Instr.Store { src = va; addr = Ops.addr_of_sym s; mty; site = fresh_site ctx });
    finish ctx (Instr.Jump (Block.label bj)) bf;
    let vb = rvalue ctx b in
    emit ctx (Instr.Store { src = vb; addr = Ops.addr_of_sym s; mty; site = fresh_site ctx });
    finish ctx (Instr.Jump (Block.label bj)) bj;
    load ctx (Ops.addr_of_sym s) mty

(* Coerce an operand to a 0/1 integer given its MiniC type. *)
and to_bool ctx (v : Ops.operand) (ty : Ast.ty) : Ops.operand =
  match ty with
  | Ast.Tdouble ->
    let dst = fresh_temp ctx Mem_ty.I64 in
    emit ctx (Instr.Bin { dst; op = Ops.FNe; a = v; b = Ops.Flt 0.0 });
    Ops.Temp dst
  | _ -> v

(* Evaluate [e] for control flow: an integer operand, 0 = false. *)
and lower_cond ctx (e : Typed_ast.texpr) : Ops.operand =
  let v = rvalue ctx e in
  to_bool ctx v e.Typed_ast.tty

and lower_shortcircuit ctx op a b : Ops.operand =
  let s = scratch_local ctx Mem_ty.I64 in
  let store v =
    emit ctx
      (Instr.Store { src = v; addr = Ops.addr_of_sym s; mty = Mem_ty.I64; site = fresh_site ctx })
  in
  let beval = Func.fresh_block ~hint:"sc" ctx.func in
  let bshort = Func.fresh_block ~hint:"sc" ctx.func in
  let bj = Func.fresh_block ~hint:"scj" ctx.func in
  let ca = lower_cond ctx a in
  (match op with
  | Ast.Bland ->
    finish ctx
      (Instr.Br
         { cond = ca; ifso = Block.label beval; ifnot = Block.label bshort;
           site = fresh_site ctx })
      bshort;
    store (Ops.Int 0L)
  | Ast.Blor ->
    finish ctx
      (Instr.Br
         { cond = ca; ifso = Block.label bshort; ifnot = Block.label beval;
           site = fresh_site ctx })
      bshort;
    store (Ops.Int 1L)
  | _ -> assert false);
  finish ctx (Instr.Jump (Block.label bj)) beval;
  let cb = lower_cond ctx b in
  (* normalize to 0/1 *)
  let dst = fresh_temp ctx Mem_ty.I64 in
  emit ctx (Instr.Bin { dst; op = Ops.Ne; a = cb; b = Ops.Int 0L });
  store (Ops.Temp dst);
  finish ctx (Instr.Jump (Block.label bj)) bj;
  load ctx (Ops.addr_of_sym s) Mem_ty.I64

(* Address of an lvalue.  Constant offsets accumulate into the [addr]
   offset so [g.f] and [a[3]] stay *direct* references. *)
and lvalue_addr ctx (e : Typed_ast.texpr) : Ops.addr =
  let open Typed_ast in
  match e.tdesc with
  | Tvar name ->
    let s = find_sym ctx name in
    Ops.addr_of_sym s
  | Tderef a -> operand_to_addr ctx (rvalue ctx a)
  | Tindex (a, i) -> (
    let elt_size = sizeof ctx e.tty in
    let base_addr =
      if is_aggregate a.tty then lvalue_addr ctx a
      else operand_to_addr ctx (rvalue ctx a) (* pointer value *)
    in
    match i.tdesc with
    | Tint_lit n ->
      { base_addr with Ops.offset = base_addr.Ops.offset + (Int64.to_int n * elt_size) }
    | _ ->
      let vi = rvalue ctx i in
      let scaled = fresh_temp ctx Mem_ty.I64 in
      emit ctx
        (Instr.Bin { dst = scaled; op = Ops.Mul; a = vi; b = Ops.Int (Int64.of_int elt_size) });
      let base_op = addr_to_operand ctx base_addr in
      let sum = fresh_temp ctx Mem_ty.I64 in
      emit ctx (Instr.Bin { dst = sum; op = Ops.Add; a = base_op; b = Ops.Temp scaled });
      Ops.addr_of_temp sum)
  | Tfield (a, f) ->
    let base = lvalue_addr ctx a in
    { base with Ops.offset = base.Ops.offset + f.Struct_env.f_offset }
  | Tarrow (a, f) ->
    let p = rvalue ctx a in
    let base = operand_to_addr ctx p in
    { base with Ops.offset = base.Ops.offset + f.Struct_env.f_offset }
  | _ -> lerror "not an lvalue"

and lower_call ctx name args (ret_ty : Ast.ty option) : Ops.operand option =
  let vargs = List.map (rvalue ctx) args in
  match name with
  | "malloc" -> (
    match vargs with
    | [ n ] ->
      let dst = fresh_temp ctx Mem_ty.I64 in
      emit ctx (Instr.Alloc { dst; nbytes = n; site = fresh_site ctx });
      Some (Ops.Temp dst)
    | _ -> lerror "malloc arity")
  | "print_int" | "print_float" ->
    emit ctx (Instr.Call { dst = None; callee = name; args = vargs; site = fresh_site ctx });
    None
  | _ ->
    let dst =
      match ret_ty with
      | Some Ast.Tvoid | None -> None
      | Some Ast.Tdouble -> Some (fresh_temp ctx Mem_ty.F64)
      | Some _ -> Some (fresh_temp ctx Mem_ty.I64)
    in
    emit ctx (Instr.Call { dst; callee = name; args = vargs; site = fresh_site ctx });
    Option.map (fun t -> Ops.Temp t) dst

(* --- statements --- *)

let rec lower_stmt ctx (s : Typed_ast.tstmt) : unit =
  let open Typed_ast in
  match s with
  | TSdecl (ty, uname, init) ->
    let is_scalar = not (is_aggregate ty) in
    let mty = if ty = Ast.Tdouble then Mem_ty.F64 else Mem_ty.I64 in
    let sym =
      Symbol.Gen.fresh ctx.prog.Program.sym_gen ~name:uname
        ~storage:Symbol.Local ~mty ~size_bytes:(sizeof ctx ty) ~is_scalar
    in
    Func.add_local ctx.func sym;
    Hashtbl.replace ctx.syms uname sym;
    Option.iter
      (fun e ->
        let v = rvalue ctx e in
        emit ctx
          (Instr.Store { src = v; addr = Ops.addr_of_sym sym; mty; site = fresh_site ctx }))
      init
  | TSassign (lhs, rhs) ->
    let v = rvalue ctx rhs in
    let addr = lvalue_addr ctx lhs in
    let mty = mty_of lhs.tty in
    emit ctx (Instr.Store { src = v; addr; mty; site = fresh_site ctx })
  | TSexpr e -> (
    match e.tdesc with
    | Tcall (name, args) -> ignore (lower_call ctx name (args : texpr list) (Some e.tty))
    | _ -> ignore (rvalue ctx e))
  | TSif (c, then_, else_) ->
    let cond = lower_cond ctx c in
    let bt = Func.fresh_block ~hint:"then" ctx.func in
    let bf = Func.fresh_block ~hint:"else" ctx.func in
    let bj = Func.fresh_block ~hint:"endif" ctx.func in
    finish ctx
      (Instr.Br
         { cond; ifso = Block.label bt; ifnot = Block.label bf;
           site = fresh_site ctx })
      bt;
    List.iter (lower_stmt ctx) then_;
    finish ctx (Instr.Jump (Block.label bj)) bf;
    List.iter (lower_stmt ctx) else_;
    finish ctx (Instr.Jump (Block.label bj)) bj
  | TSwhile (c, body) ->
    let bhead = Func.fresh_block ~hint:"while" ctx.func in
    let bbody = Func.fresh_block ~hint:"body" ctx.func in
    let bexit = Func.fresh_block ~hint:"endwhile" ctx.func in
    finish ctx (Instr.Jump (Block.label bhead)) bhead;
    let cond = lower_cond ctx c in
    finish ctx
      (Instr.Br
         { cond; ifso = Block.label bbody; ifnot = Block.label bexit;
           site = fresh_site ctx })
      bbody;
    ctx.loop_stack <- (Block.label bhead, Block.label bexit) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    finish ctx (Instr.Jump (Block.label bhead)) bexit
  | TSdo (body, c) ->
    let bbody = Func.fresh_block ~hint:"do" ctx.func in
    let bcond = Func.fresh_block ~hint:"docond" ctx.func in
    let bexit = Func.fresh_block ~hint:"enddo" ctx.func in
    finish ctx (Instr.Jump (Block.label bbody)) bbody;
    ctx.loop_stack <- (Block.label bcond, Block.label bexit) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    finish ctx (Instr.Jump (Block.label bcond)) bcond;
    let cond = lower_cond ctx c in
    finish ctx
      (Instr.Br
         { cond; ifso = Block.label bbody; ifnot = Block.label bexit;
           site = fresh_site ctx })
      bexit
  | TSreturn e ->
    let v = Option.map (rvalue ctx) e in
    let dead = Func.fresh_block ~hint:"dead" ctx.func in
    finish ctx (Instr.Ret v) dead
  | TSbreak -> (
    match ctx.loop_stack with
    | (_, bexit) :: _ ->
      let dead = Func.fresh_block ~hint:"dead" ctx.func in
      finish ctx (Instr.Jump bexit) dead
    | [] -> lerror "break outside a loop")
  | TScontinue -> (
    match ctx.loop_stack with
    | (bcont, _) :: _ ->
      let dead = Func.fresh_block ~hint:"dead" ctx.func in
      finish ctx (Instr.Jump bcont) dead
    | [] -> lerror "continue outside a loop")
  | TSblock body -> List.iter (lower_stmt ctx) body

(* --- constant evaluation for global initializers --- *)

let rec const_int (e : Typed_ast.texpr) : int64 =
  let open Typed_ast in
  match e.tdesc with
  | Tint_lit v -> v
  | Tun (Ast.Uneg, a) -> Int64.neg (const_int a)
  | Tbin (Ast.Badd, a, b) -> Int64.add (const_int a) (const_int b)
  | Tbin (Ast.Bsub, a, b) -> Int64.sub (const_int a) (const_int b)
  | Tbin (Ast.Bmul, a, b) -> Int64.mul (const_int a) (const_int b)
  | Tcast_f2i a -> Int64.of_float (const_float a)
  | _ -> lerror "global initializer must be a constant integer expression"

and const_float (e : Typed_ast.texpr) : float =
  let open Typed_ast in
  match e.tdesc with
  | Tfloat_lit v -> v
  | Tint_lit v -> Int64.to_float v
  | Tun (Ast.Uneg, a) -> -.const_float a
  | Tbin (Ast.Badd, a, b) -> const_float a +. const_float b
  | Tbin (Ast.Bsub, a, b) -> const_float a -. const_float b
  | Tbin (Ast.Bmul, a, b) -> const_float a *. const_float b
  | Tcast_i2f a -> Int64.to_float (const_int a)
  | _ -> lerror "global initializer must be a constant float expression"

(* --- program --- *)

let lower_func ctx_prog structs syms (tf : Typed_ast.tfunc) : Func.t =
  let prog = ctx_prog in
  let temp_gen = Temp.Gen.create () in
  let label_gen = Label.Gen.create () in
  let formals =
    List.map
      (fun (ty, uname) ->
        let mty = if ty = Ast.Tdouble then Mem_ty.F64 else Mem_ty.I64 in
        Symbol.Gen.fresh prog.Program.sym_gen ~name:uname
          ~storage:Symbol.Formal ~mty ~size_bytes:8 ~is_scalar:true)
      tf.Typed_ast.tf_formals
  in
  let ret_mty =
    match tf.Typed_ast.tf_ret with
    | Ast.Tvoid -> None
    | Ast.Tdouble -> Some Mem_ty.F64
    | _ -> Some Mem_ty.I64
  in
  let func = Func.create ~name:tf.Typed_ast.tf_name ~formals ~ret_mty ~temp_gen ~label_gen in
  let local_syms = Hashtbl.copy syms in
  List.iter (fun s -> Hashtbl.replace local_syms (Symbol.name s) s) formals;
  let ctx =
    { prog; structs; func; syms = local_syms;
      cur = Func.find_block func (Func.entry func); loop_stack = []; scratch = Hashtbl.hash tf.Typed_ast.tf_name land 0xffff }
  in
  List.iter (lower_stmt ctx) tf.Typed_ast.tf_body;
  (* fall-through return *)
  (match ctx.cur.Block.term, ret_mty with
  | Instr.Ret None, Some _ -> ctx.cur.Block.term <- Instr.Ret (Some (Ops.Int 0L))
  | _ -> ());
  func

let lower_program (tp : Typed_ast.tprogram) : Program.t =
  let prog = Program.create () in
  let structs = tp.Typed_ast.tp_structs in
  let syms = Hashtbl.create 32 in
  (* globals *)
  List.iter
    (fun (g : Typed_ast.tglobal) ->
      let ty = g.Typed_ast.tg_ty in
      let is_scalar = not (is_aggregate ty) in
      let mty =
        match ty with
        | Ast.Tdouble | Ast.Tarr (Ast.Tdouble, _) -> Mem_ty.F64
        | _ -> Mem_ty.I64
      in
      let sym =
        Symbol.Gen.fresh prog.Program.sym_gen ~name:g.Typed_ast.tg_name
          ~storage:Symbol.Global ~mty
          ~size_bytes:(Struct_env.sizeof structs Ast.no_pos ty) ~is_scalar
      in
      Hashtbl.replace syms g.Typed_ast.tg_name sym;
      let init =
        match g.Typed_ast.tg_init, ty with
        | None, _ -> Program.Init_zero
        | Some (Typed_ast.TIscalar e), Ast.Tdouble -> Program.Init_floats [| const_float e |]
        | Some (Typed_ast.TIscalar e), _ -> Program.Init_ints [| const_int e |]
        | Some (Typed_ast.TIlist es), (Ast.Tarr (Ast.Tdouble, _) | Ast.Tdouble) ->
          Program.Init_floats (Array.of_list (List.map const_float es))
        | Some (Typed_ast.TIlist es), _ ->
          Program.Init_ints (Array.of_list (List.map const_int es))
      in
      Program.add_global prog sym init)
    tp.Typed_ast.tp_globals;
  (* functions *)
  List.iter
    (fun tf -> Program.add_func prog (lower_func prog structs syms tf))
    tp.Typed_ast.tp_funcs;
  prog

(* Front door: source text -> verified IR program.  Critical edges are
   split here, before any profiling run, so the block set (and hence the
   profile's block counts) is identical between the profiling compile and
   the optimizing compile. *)
let compile_source (src : string) : Program.t =
  let module Stats = Srp_obs.Stats in
  let ast = Stats.time ~pass:"frontend" "parse" (fun () -> Parser.parse_program src) in
  let tp =
    Stats.time ~pass:"frontend" "typecheck" (fun () -> Typecheck.check_program ast)
  in
  let prog = Stats.time ~pass:"frontend" "lower" (fun () -> lower_program tp) in
  Stats.time ~pass:"frontend" "verify" (fun () ->
      List.iter Loops.split_critical_edges (Program.funcs prog);
      Verify.check_program prog);
  Stats.add
    (Stats.counter ~pass:"frontend" "functions_lowered")
    (List.length (Program.funcs prog));
  prog
