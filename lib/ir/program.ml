(* A whole program: global symbols, global initializers, functions, and the
   shared id generators that keep ids dense across the program. *)

type global_init =
  | Init_zero
  | Init_ints of int64 array
  | Init_floats of float array

type t = {
  globals : (Symbol.t * global_init) list Stdlib.ref;
  funcs : (string, Func.t) Hashtbl.t;
  mutable func_order : string list;
  sym_gen : Symbol.Gen.t;
  site_gen : Site.Gen.t;
}

let create () =
  { globals = Stdlib.ref []; funcs = Hashtbl.create 16; func_order = [];
    sym_gen = Symbol.Gen.create (); site_gen = Site.Gen.create () }

let add_global t s init = t.globals := (s, init) :: !(t.globals)
let globals t = List.rev !(t.globals)

(* Deep copy, for the staged pipeline's shared artifacts: a cached lowered
   program is immutable by contract, so consumers that mutate (input
   application, promotion) work on a clone.  The IR is pure data — no
   closures, no custom blocks — so a Marshal round trip is a faithful copy;
   internal sharing (symbols referenced from both the globals list and
   instruction operands) is preserved within the copy, and identity is by
   id everywhere, so the clone behaves exactly like a fresh lowering of the
   same source. *)
let clone (t : t) : t = Marshal.from_string (Marshal.to_string t []) 0

(* Replace a global's initializer (workload input injection). *)
let set_global_init t name init =
  t.globals :=
    List.map
      (fun (s, old) -> if Symbol.name s = name then (s, init) else (s, old))
      !(t.globals)

let add_func t f =
  let name = Func.name f in
  if Hashtbl.mem t.funcs name then
    Fmt.invalid_arg "Program.add_func: duplicate function %s" name;
  Hashtbl.replace t.funcs name f;
  t.func_order <- t.func_order @ [ name ]

let find_func t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> f
  | None -> Fmt.invalid_arg "Program.find_func: no function %s" name

let find_func_opt t name = Hashtbl.find_opt t.funcs name

let funcs t = List.map (Hashtbl.find t.funcs) t.func_order

let main t = find_func t "main"

(* Builtins are handled by the interpreter and the machine runtime, not
   defined as IR functions. *)
let builtins = [ "print_int"; "print_float"; "malloc" ]

let is_builtin name = List.mem name builtins

let all_symbols t =
  let gs = List.map fst (globals t) in
  let locals =
    List.concat_map (fun f -> Func.formals f @ Func.locals f) (funcs t)
  in
  gs @ locals

let pp ppf t =
  List.iter
    (fun (s, _) -> Fmt.pf ppf "global %a (%d bytes)@." Symbol.pp s (Symbol.size_bytes s))
    (globals t);
  List.iter (fun f -> Fmt.pf ppf "%a@." Func.pp f) (funcs t)
