(* Mid-level IR instructions.

   [Load]/[Store]/[Call]/[Alloc] carry stable [Site.t] ids.  The promotion
   pass (lib/core) rewrites loads into temp uses and introduces [Check] and
   [Invala] pseudo-instructions plus promotion flags; the code generator
   (lib/target) turns those into ld.a / ld.c / ld.sa / chk.a / invala.e. *)

(* Flag attached to a load that arms the ALAT (paper section 2.2/2.3). *)
type promo =
  | P_none (* plain ld *)
  | P_ld_a (* advanced load: arms an ALAT entry *)
  | P_ld_sa (* speculative advanced load: hoisted out of a loop, control+data speculative *)

(* Kind of check statement (paper sections 2.2-2.4).  [clear] is the
   clear/no-clear completer: no-clear keeps the ALAT entry live so a later
   check of the same temp can succeed (Figure 1(c), Figure 3). *)
type check_kind =
  | C_ld_c of { clear : bool }
  | C_chk_a of { clear : bool }

type instr =
  | Load of {
      dst : Temp.t;
      addr : Ops.addr;
      mty : Mem_ty.t;
      site : Site.t;
      promo : promo;
    }
  | Store of { src : Ops.operand; addr : Ops.addr; mty : Mem_ty.t; site : Site.t }
  | Bin of { dst : Temp.t; op : Ops.binop; a : Ops.operand; b : Ops.operand }
  | Un of { dst : Temp.t; op : Ops.unop; a : Ops.operand }
  | Mov of { dst : Temp.t; src : Ops.operand }
  | Call of {
      dst : Temp.t option;
      callee : string;
      args : Ops.operand list;
      site : Site.t;
    }
  | Alloc of { dst : Temp.t; nbytes : Ops.operand; site : Site.t }
  (* Check statement: revalidate promotion temp [dst] against memory.  On an
     ALAT hit it is free; on a miss it reloads (ld.c) or runs [recovery]
     then reloads (chk.a, cascade case of section 2.4). *)
  | Check of {
      dst : Temp.t;
      addr : Ops.addr;
      mty : Mem_ty.t;
      site : Site.t;
      kind : check_kind;
      recovery : instr list; (* re-executed on chk.a failure, before reload *)
    }
  (* Invalidate the ALAT entry tracking [dst] (paper Figure 2): forces the
     next check of [dst] to reload, making path-insertion unnecessary. *)
  | Invala of { dst : Temp.t }
  (* Software run-time disambiguation [Nicolau 89], used by the O3 baseline
     (paper section 5): after a may-aliased store through [store_addr], if
     it equals the promoted location's address, refresh the temp from the
     freshly stored value. *)
  | Sw_check of {
      dst : Temp.t;
      addr : Ops.addr; (* promoted location *)
      store_addr : Ops.addr; (* address the suspect store wrote through *)
      stored : Ops.operand; (* value it stored *)
      mty : Mem_ty.t;
      site : Site.t;
    }

(* Conditional branches carry a [Site.t] like memory operations do: the
   machine attributes branch mispredicts per site, so the branch must keep a
   stable identity from lowering through layout to the simulator. *)
type terminator =
  | Jump of Label.t
  | Br of { cond : Ops.operand; ifso : Label.t; ifnot : Label.t; site : Site.t }
  | Ret of Ops.operand option

let defs = function
  | Load { dst; _ } | Bin { dst; _ } | Un { dst; _ } | Mov { dst; _ }
  | Alloc { dst; _ } | Check { dst; _ } | Sw_check { dst; _ } ->
    [ dst ]
  | Call { dst; _ } -> ( match dst with Some d -> [ d ] | None -> [] )
  | Store _ | Invala _ -> []

let operand_temps (o : Ops.operand) =
  match o with Ops.Temp t -> [ t ] | Ops.Int _ | Ops.Flt _ | Ops.Sym_addr _ -> []

let addr_temps (a : Ops.addr) =
  match a.base with Ops.Reg t -> [ t ] | Ops.Sym _ -> []

let uses = function
  | Load { addr; _ } -> addr_temps addr
  | Store { src; addr; _ } -> operand_temps src @ addr_temps addr
  | Bin { a; b; _ } -> operand_temps a @ operand_temps b
  | Un { a; _ } | Mov { src = a; _ } -> operand_temps a
  | Call { args; _ } -> List.concat_map operand_temps args
  | Alloc { nbytes; _ } -> operand_temps nbytes
  (* A software check is read-modify-write: its "no collision" outcome
     keeps the current register value, so dst is semantically read —
     liveness must see that or a cleanup pass deletes the materialization
     feeding the check.  An ALAT ld.c is different: a hit *guarantees* the
     register holds the current memory value (the entry was armed by a
     ld.a to this register and no store has touched the address since),
     and a miss reloads — so its dst is not an input, and liveness-driven
     removal of back-to-back checks is sound (the redundant-check removal
     of paper section 3.4). *)
  | Check { dst; addr; _ } -> dst :: addr_temps addr
  | Invala _ -> []
  | Sw_check { dst; addr; store_addr; stored; _ } ->
    (dst :: addr_temps addr) @ addr_temps store_addr @ operand_temps stored

let term_uses = function
  | Jump _ -> []
  | Br { cond; _ } -> operand_temps cond
  | Ret (Some o) -> operand_temps o
  | Ret None -> []

let successors = function
  | Jump l -> [ l ]
  | Br { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Ret _ -> []

let site = function
  | Load { site; _ } | Store { site; _ } | Call { site; _ }
  | Alloc { site; _ } | Check { site; _ } | Sw_check { site; _ } ->
    Some site
  | Bin _ | Un _ | Mov _ | Invala _ -> None

let term_site = function
  | Br { site; _ } -> Some site
  | Jump _ | Ret _ -> None

let pp_promo ppf = function
  | P_none -> ()
  | P_ld_a -> Fmt.string ppf " !ld.a"
  | P_ld_sa -> Fmt.string ppf " !ld.sa"

let pp_check_kind ppf = function
  | C_ld_c { clear } -> Fmt.pf ppf "ld.c.%s" (if clear then "clr" else "nc")
  | C_chk_a { clear } -> Fmt.pf ppf "chk.a.%s" (if clear then "clr" else "nc")

let rec pp ppf = function
  | Load { dst; addr; mty; site; promo } ->
    Fmt.pf ppf "%a = load.%a %a  @%a%a" Temp.pp dst Mem_ty.pp mty Ops.pp_addr
      addr Site.pp site pp_promo promo
  | Store { src; addr; mty; site } ->
    Fmt.pf ppf "store.%a %a, %a  @%a" Mem_ty.pp mty Ops.pp_operand src
      Ops.pp_addr addr Site.pp site
  | Bin { dst; op; a; b } ->
    Fmt.pf ppf "%a = %a %a, %a" Temp.pp dst Ops.pp_binop op Ops.pp_operand a
      Ops.pp_operand b
  | Un { dst; op; a } ->
    Fmt.pf ppf "%a = %a %a" Temp.pp dst Ops.pp_unop op Ops.pp_operand a
  | Mov { dst; src } -> Fmt.pf ppf "%a = %a" Temp.pp dst Ops.pp_operand src
  | Call { dst; callee; args; site } ->
    let pp_dst ppf = function
      | Some d -> Fmt.pf ppf "%a = " Temp.pp d
      | None -> ()
    in
    Fmt.pf ppf "%acall %s(%a)  @%a" pp_dst dst callee
      (Srp_support.Pp_util.pp_list Ops.pp_operand)
      args Site.pp site
  | Alloc { dst; nbytes; site } ->
    Fmt.pf ppf "%a = alloc %a  @%a" Temp.pp dst Ops.pp_operand nbytes Site.pp
      site
  | Check { dst; addr; mty; site; kind; recovery } ->
    Fmt.pf ppf "%a = check[%a].%a %a  @%a" Temp.pp dst pp_check_kind kind
      Mem_ty.pp mty Ops.pp_addr addr Site.pp site;
    if recovery <> [] then
      Fmt.pf ppf " recovery{%a}" (Srp_support.Pp_util.pp_list ~sep:"; " pp)
        recovery
  | Invala { dst } -> Fmt.pf ppf "invala.e %a" Temp.pp dst
  | Sw_check { dst; addr; store_addr; stored; _ } ->
    Fmt.pf ppf "%a = sw_check %a vs %a (stored %a)" Temp.pp dst Ops.pp_addr
      addr Ops.pp_addr store_addr Ops.pp_operand stored

let pp_terminator ppf = function
  | Jump l -> Fmt.pf ppf "jump %a" Label.pp l
  | Br { cond; ifso; ifnot; site } ->
    Fmt.pf ppf "br %a, %a, %a  @%a" Ops.pp_operand cond Label.pp ifso Label.pp
      ifnot Site.pp site
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some o) -> Fmt.pf ppf "ret %a" Ops.pp_operand o
