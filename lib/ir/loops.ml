(* Natural loop detection from back edges, plus preheader insertion.

   The loop-invariant case of the paper (Figure 3: hoist a may-aliased load
   out of a loop as ld.sa, keep a chk.a.nc inside) needs a preheader block
   to place the hoisted load; SSAPRE achieves the same placement through
   WillBeAvail insertion on the loop-entry edge, which requires that edge to
   be non-critical.  [split_critical_edges] runs before SSA construction. *)

type loop = {
  header : int;
  body : int list; (* node ids, header included *)
  back_edges : (int * int) list; (* (tail, header) *)
}

(* Back edge t->h exists when h dominates t. *)
let find cfg dom =
  let n = Cfg.num_nodes cfg in
  let loops = Hashtbl.create 8 in
  for t = 0 to n - 1 do
    List.iter
      (fun h ->
        if Dominance.dominates dom h t then begin
          let cur =
            try Hashtbl.find loops h with Not_found -> { header = h; body = []; back_edges = [] }
          in
          Hashtbl.replace loops h { cur with back_edges = (t, h) :: cur.back_edges }
        end)
      (Cfg.succs cfg t)
  done;
  (* Natural loop body: backward reachability from back-edge tails without
     passing through the header. *)
  let compute_body l =
    let in_body = Array.make n false in
    in_body.(l.header) <- true;
    let stack = ref [] in
    List.iter
      (fun (t, _) ->
        if not in_body.(t) then begin
          in_body.(t) <- true;
          stack := t :: !stack
        end)
      l.back_edges;
    let rec drain () =
      match !stack with
      | [] -> ()
      | x :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not in_body.(p) then begin
              in_body.(p) <- true;
              stack := p :: !stack
            end)
          (Cfg.preds cfg x);
        drain ()
    in
    drain ();
    let body = ref [] in
    for i = n - 1 downto 0 do
      if in_body.(i) then body := i :: !body
    done;
    { l with body = !body }
  in
  Hashtbl.fold (fun _ l acc -> compute_body l :: acc) loops []
  |> List.sort (fun a b -> Int.compare a.header b.header)

(* An edge a->b is critical when a has several successors and b several
   predecessors.  Splitting them gives SSAPRE unambiguous insertion points
   (and gives the invala.e strategy a place to drop invalidations). *)
let split_critical_edges func =
  let cfg = Cfg.build func in
  let n = Cfg.num_nodes cfg in
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    match b.Block.term with
    | Instr.Br { cond; ifso; ifnot; site } ->
      let split target =
        let t_idx = Cfg.index_of_label cfg target in
        if List.length (Cfg.preds cfg t_idx) >= 2 then begin
          let nb = Func.fresh_block ~hint:"split" func in
          nb.Block.term <- Instr.Jump target;
          Block.label nb
        end
        else target
      in
      let ifso' = split ifso in
      let ifnot' = if Label.equal ifso ifnot then ifso' else split ifnot in
      b.Block.term <- Instr.Br { cond; ifso = ifso'; ifnot = ifnot'; site }
    | Instr.Jump _ | Instr.Ret _ -> ()
  done
