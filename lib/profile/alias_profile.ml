(* The alias profile: for every memory-op site, per-location dynamic hit
   counts (how many of the site's executions touched each abstract
   location), plus execution counts.

   This is the feedback the speculative compiler consumes (paper section
   3.1), upgraded from target *sets* to target *frequencies*: a chi/mu on
   location L at site s is marked speculative not just when the profile
   says s never touched L, but — under the expected-value gate — when it
   touched L rarely enough that the saved load latency beats the expected
   check/recovery cost.  The set semantics are recoverable ([targets],
   [may_touch]) and every legacy answer is preserved: a location is a
   member iff its hit count is nonzero.  Serializable to a simple text
   format so train-input profiles can be saved and replayed. *)

open Srp_ir
module Location = Srp_alias.Location

type t = {
  hits : int Location.Map.t Site.Tbl.t;
      (* site -> location -> dynamic accesses of the site that touched it *)
  counts : int Site.Tbl.t;
  block_counts : (string * int, int) Hashtbl.t; (* (func, label id) -> executions *)
}

let create () =
  { hits = Site.Tbl.create 64; counts = Site.Tbl.create 64;
    block_counts = Hashtbl.create 64 }

let record_block t ~func ~label_id =
  let key = (func, label_id) in
  let c = try Hashtbl.find t.block_counts key with Not_found -> 0 in
  Hashtbl.replace t.block_counts key (c + 1)

let block_count t ~func ~label_id =
  try Hashtbl.find t.block_counts (func, label_id) with Not_found -> 0

let record t site loc =
  let cur =
    match Site.Tbl.find_opt t.hits site with
    | Some m -> m
    | None -> Location.Map.empty
  in
  let n = match Location.Map.find_opt loc cur with Some n -> n | None -> 0 in
  Site.Tbl.replace t.hits site (Location.Map.add loc (n + 1) cur);
  let c = match Site.Tbl.find_opt t.counts site with Some c -> c | None -> 0 in
  Site.Tbl.replace t.counts site (c + 1)

let count t site =
  match Site.Tbl.find_opt t.counts site with Some c -> c | None -> 0

(* Was [site] ever executed at all?  Defined by the execution count, not
   table membership, so a deserialized `count 0` site is *not* executed
   (it never ran under training, exactly like an absent site). *)
let executed t site = count t site > 0

let hit_map t site =
  match Site.Tbl.find_opt t.hits site with
  | Some m -> m
  | None -> Location.Map.empty

let touch_count t site loc =
  match Location.Map.find_opt loc (hit_map t site) with
  | Some n -> n
  | None -> 0

let targets t site =
  Location.Map.fold
    (fun loc n acc -> if n > 0 then Location.Set.add loc acc else acc)
    (hit_map t site) Location.Set.empty

(* The speculation predicate: according to the profile, can the access at
   [site] touch [loc]?  Sites never executed under the training input are
   treated as "never touches anything", the aggressive choice the paper
   makes (such chi become speculative; a mis-speculation check catches the
   rare cases where the ref input disagrees). *)
let may_touch t site loc = touch_count t site loc > 0

(* Observed conflict frequency: the fraction of [site]'s training
   executions that touched [loc].  Degenerate inputs (hand-written or v1
   profiles where hits exist without a count) fall back to the binary
   verdict so probability 0 always coincides with legacy may_touch =
   false. *)
let conflict_rate t site loc =
  let h = touch_count t site loc in
  if h <= 0 then 0.0
  else
    let c = count t site in
    if c <= 0 then 1.0 else Float.min 1.0 (float_of_int h /. float_of_int c)

let sites t = Site.Tbl.fold (fun s _ acc -> s :: acc) t.counts [] |> List.sort Site.compare

let pp ppf t =
  List.iter
    (fun site ->
      Fmt.pf ppf "%a: count=%d targets={%a}@." Site.pp site (count t site)
        (Srp_support.Pp_util.pp_list (fun ppf (loc, n) ->
             Fmt.pf ppf "%a=%d" Location.pp loc n))
        (Location.Map.bindings (hit_map t site)))
    (sites t)

(* --- serialization ---

   A simple line-oriented text format so train-input profiles can be saved
   and fed to later compilations (the paper's feedback file).  v2 carries
   per-location hit counts and is declared by a header line:

     srp-profile-v2
     site <id> count <n> targets sym:<symbol-id>=<hits> heap:<site-id>=<hits> ...
     block <func> <label-id> <count>

   The v1 format (no header, bare sym:<id>/heap:<id> targets) is still
   loadable: each v1 target gets hits = the site's execution count, the
   conservative reading under which every recorded location conflicts on
   every execution — reproducing v1's binary verdicts exactly.

   Site lines are sorted by site id and block lines by (func, label id),
   so identical training runs produce byte-identical profiles (and thus
   stable content keys for the staged pipeline).

   Symbols are referenced by id; decoding therefore needs the same program
   (ids are deterministic given the source), which the driver guarantees by
   recompiling from the same file. *)

let format_header = "srp-profile-v2"

let save (t : t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf format_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun site ->
      Buffer.add_string buf
        (Fmt.str "site %d count %d targets" (Site.to_int site) (count t site));
      Location.Map.iter
        (fun loc hits ->
          Buffer.add_string buf
            (match loc with
            | Location.Sym s -> Fmt.str " sym:%d=%d" (Symbol.id s) hits
            | Location.Heap h -> Fmt.str " heap:%d=%d" (Site.to_int h) hits))
        (hit_map t site);
      Buffer.add_char buf '\n')
    (sites t);
  Hashtbl.fold (fun key c acc -> (key, c) :: acc) t.block_counts []
  |> List.sort (fun ((f1, l1), _) ((f2, l2), _) ->
         match String.compare f1 f2 with 0 -> Int.compare l1 l2 | c -> c)
  |> List.iter (fun ((func, label_id), c) ->
         Buffer.add_string buf (Fmt.str "block %s %d %d\n" func label_id c));
  Buffer.contents buf

exception Parse_error of string

(* [load ~symbols text] rebuilds a profile; [symbols] maps symbol ids back
   to symbols (from the program being compiled).  Malformed numeric fields
   and duplicate site/block lines raise [Parse_error] naming the offending
   line — a corrupt or concatenated profile must never silently last-win. *)
let load ~(symbols : (int, Srp_ir.Symbol.t) Hashtbl.t) (text : string) : t =
  let t = create () in
  let parse_line line =
    let int_field s =
      match int_of_string_opt s with
      | Some n -> n
      | None ->
        raise (Parse_error (Fmt.str "bad integer %S in line: %s" s line))
    in
    let target_loc kind id =
      match kind with
      | "sym" -> (
        match Hashtbl.find_opt symbols (int_field id) with
        | Some s -> Location.Sym s
        | None -> raise (Parse_error ("unknown symbol id " ^ id)))
      | "heap" -> Location.Heap (int_field id)
      | _ -> raise (Parse_error ("bad target kind " ^ kind))
    in
    match String.split_on_char ' ' (String.trim line) with
    | [] | [ "" ] -> ()
    | [ header ] when header = format_header -> ()
    | "site" :: site :: "count" :: n :: "targets" :: rest ->
      let site = int_field site in
      if Site.Tbl.mem t.counts site then
        raise (Parse_error (Fmt.str "duplicate site %d in line: %s" site line));
      let n = int_field n in
      Site.Tbl.replace t.counts site n;
      let hits =
        List.fold_left
          (fun acc tok ->
            let loc, h =
              match String.split_on_char ':' tok with
              | [ kind; id ] -> (
                (* v2 target "kind:id=hits"; v1 target "kind:id" gets
                   hits = site count (every execution conflicted). *)
                match String.split_on_char '=' id with
                | [ id; h ] -> (target_loc kind id, int_field h)
                | [ id ] -> (target_loc kind id, max n 1)
                | _ -> raise (Parse_error ("bad target " ^ tok)))
              | _ -> raise (Parse_error ("bad target " ^ tok))
            in
            if Location.Map.mem loc acc then
              raise
                (Parse_error (Fmt.str "duplicate target %s in line: %s" tok line));
            Location.Map.add loc h acc)
          Location.Map.empty rest
      in
      Site.Tbl.replace t.hits site hits
    | "block" :: func :: label_id :: c :: [] ->
      let key = (func, int_field label_id) in
      if Hashtbl.mem t.block_counts key then
        raise (Parse_error ("duplicate block line: " ^ line));
      Hashtbl.replace t.block_counts key (int_field c)
    | _ -> raise (Parse_error ("bad line: " ^ line))
  in
  List.iter parse_line (String.split_on_char '\n' text);
  t
