(* IR interpreter.  Two jobs:
   1. Reference semantics for differential testing (its printed output must
      match the machine simulator's, at every optimization level).
   2. Alias-profile collection (the paper's instrumentation-based profiling
      tool, section 3.1): every dynamic memory access resolves to its
      abstract location and is recorded per site.

   Pre-promotion IR only: promotion-inserted Check/Invala instructions have
   machine semantics and are rejected here. *)

open Srp_ir
module Location = Srp_alias.Location

exception Out_of_fuel

type frame = {
  func : Func.t;
  temps : Value.t Temp.Tbl.t;
  frame_regions : (Symbol.t * int64) list; (* local/formal -> base address *)
}

type t = {
  prog : Program.t;
  mem : Memory.t;
  globals : (int, int64) Hashtbl.t; (* symbol id -> base address *)
  output : Buffer.t;
  profile : Alias_profile.t;
  mutable fuel : int;
  mutable steps : int;
  collect_profile : bool;
}

(* --- setup --- *)

let global_base t (s : Symbol.t) =
  match Hashtbl.find_opt t.globals (Symbol.id s) with
  | Some a -> a
  | None -> Value.err "unknown global %s" (Symbol.name s)

let init_global t (s : Symbol.t) (init : Program.global_init) =
  let base = Memory.alloc t.mem ~size:(Symbol.size_bytes s) ~loc:(Location.Sym s) in
  Hashtbl.replace t.globals (Symbol.id s) base;
  (match init with
  | Program.Init_zero -> ()
  | Program.Init_ints vs ->
    Array.iteri
      (fun i v -> Memory.store t.mem (Int64.add base (Int64.of_int (i * 8))) (Value.Vint v))
      vs
  | Program.Init_floats vs ->
    Array.iteri
      (fun i v -> Memory.store t.mem (Int64.add base (Int64.of_int (i * 8))) (Value.Vflt v))
      vs)

let create ?(fuel = 50_000_000) ?(collect_profile = true)
    ?(overrides : (string * Program.global_init) list = []) (prog : Program.t) : t =
  let t =
    { prog; mem = Memory.create (); globals = Hashtbl.create 16;
      output = Buffer.create 256; profile = Alias_profile.create (); fuel;
      steps = 0; collect_profile }
  in
  List.iter
    (fun (s, init) ->
      let init =
        match List.assoc_opt (Symbol.name s) overrides with
        | Some o -> o
        | None -> init
      in
      init_global t s init)
    (Program.globals prog);
  t

(* --- evaluation --- *)

let sym_addr t frame (s : Symbol.t) : int64 =
  match Symbol.storage s with
  | Symbol.Global -> global_base t s
  | Symbol.Local | Symbol.Formal -> (
    match List.assq_opt s frame.frame_regions with
    | Some a -> a
    | None -> Value.err "no frame slot for %s in %s" (Symbol.name s) (Func.name frame.func))

let temp_val frame tmp =
  match Temp.Tbl.find_opt frame.temps tmp with
  | Some v -> v
  | None -> Value.err "read of undefined temp %s" (Temp.to_string tmp)

let eval_operand t frame (o : Ops.operand) : Value.t =
  match o with
  | Ops.Temp tmp -> temp_val frame tmp
  | Ops.Int i -> Value.Vint i
  | Ops.Flt f -> Value.Vflt f
  | Ops.Sym_addr s -> Value.Vint (sym_addr t frame s)

let eval_addr t frame (a : Ops.addr) : int64 =
  let base =
    match a.Ops.base with
    | Ops.Sym s -> sym_addr t frame s
    | Ops.Reg r -> Value.to_int (temp_val frame r)
  in
  Int64.add base (Int64.of_int a.Ops.offset)

let record_access t site addr =
  if t.collect_profile then
    match Memory.location_of_addr t.mem addr with
    | Some loc -> Alias_profile.record t.profile site loc
    | None -> () (* wild access; the load/store itself will fault *)

(* --- execution --- *)

let spend t =
  t.steps <- t.steps + 1;
  if t.steps > t.fuel then raise Out_of_fuel

let rec call_function t (callee : Func.t) (args : Value.t list) : Value.t option =
  (* build the frame: formals then locals, each a region *)
  let mk_region s =
    let base = Memory.alloc t.mem ~size:(Symbol.size_bytes s) ~loc:(Location.Sym s) in
    (s, base)
  in
  let formal_regions = List.map mk_region (Func.formals callee) in
  let local_regions = List.map mk_region (Func.locals callee) in
  let frame =
    { func = callee; temps = Temp.Tbl.create 32;
      frame_regions = formal_regions @ local_regions }
  in
  (* bind arguments into formal memory *)
  List.iter2
    (fun (s, base) v ->
      ignore s;
      Memory.store t.mem base v)
    formal_regions args;
  let result = run_block t frame (Func.entry callee) in
  List.iter (fun (_, base) -> Memory.free t.mem base) frame.frame_regions;
  result

and run_block t frame (label : Label.t) : Value.t option =
  if t.collect_profile then
    Alias_profile.record_block t.profile ~func:(Func.name frame.func)
      ~label_id:(Label.id label);
  let block = Func.find_block frame.func label in
  List.iter (exec_instr t frame) block.Block.instrs;
  spend t;
  match block.Block.term with
  | Instr.Jump l -> run_block t frame l
  | Instr.Br { cond; ifso; ifnot; site = _ } ->
    let v = eval_operand t frame cond in
    run_block t frame (if Value.truthy v then ifso else ifnot)
  | Instr.Ret None -> None
  | Instr.Ret (Some o) -> Some (eval_operand t frame o)

and exec_instr t frame (ins : Instr.instr) : unit =
  spend t;
  match ins with
  | Instr.Load { dst; addr; mty; site; _ } ->
    let a = eval_addr t frame addr in
    record_access t site a;
    Temp.Tbl.replace frame.temps dst (Memory.load_typed t.mem a mty)
  | Instr.Store { src; addr; site; _ } ->
    let v = eval_operand t frame src in
    let a = eval_addr t frame addr in
    (* direct accesses are recorded too: the dynamic mod sets of callees
       (used to speculate across calls) must see a callee's direct global
       stores, not just its indirect ones *)
    record_access t site a;
    Memory.store t.mem a v
  | Instr.Bin { dst; op; a; b } ->
    let va = eval_operand t frame a and vb = eval_operand t frame b in
    Temp.Tbl.replace frame.temps dst (Value.binop op va vb)
  | Instr.Un { dst; op; a } ->
    Temp.Tbl.replace frame.temps dst (Value.unop op (eval_operand t frame a))
  | Instr.Mov { dst; src } ->
    Temp.Tbl.replace frame.temps dst (eval_operand t frame src)
  | Instr.Alloc { dst; nbytes; site } ->
    let n = Int64.to_int (Value.to_int (eval_operand t frame nbytes)) in
    if n < 0 then Value.err "malloc of negative size";
    let base = Memory.alloc t.mem ~size:n ~loc:(Location.Heap site) in
    Temp.Tbl.replace frame.temps dst (Value.Vint base)
  | Instr.Call { dst; callee; args; _ } -> (
    let vargs = List.map (eval_operand t frame) args in
    match callee with
    | "print_int" ->
      let v = List.hd vargs in
      Buffer.add_string t.output (Fmt.str "%Ld\n" (Value.to_int v))
    | "print_float" ->
      let v = List.hd vargs in
      Buffer.add_string t.output (Fmt.str "%.6f\n" (Value.to_flt v))
    | _ -> (
      let g = Program.find_func t.prog callee in
      match call_function t g vargs, dst with
      | Some v, Some d -> Temp.Tbl.replace frame.temps d v
      | _, None -> ()
      | None, Some _ -> Value.err "void return used as a value in call to %s" callee))
  | Instr.Check _ | Instr.Invala _ | Instr.Sw_check _ ->
    Value.err "interpreter: promoted IR is not interpretable (use the machine simulator)"

(* Run main; returns the program's exit value. *)
let run (t : t) : int64 =
  let main = Program.main t.prog in
  match call_function t main [] with
  | Some v -> Value.to_int v
  | None -> 0L

let output t = Buffer.contents t.output
let profile t = t.profile
let steps t = t.steps

(* Convenience: interpret a program and return (exit code, output, profile). *)
let run_program ?fuel ?collect_profile ?overrides prog =
  let t = create ?fuel ?collect_profile ?overrides prog in
  let code = run t in
  (code, output t, profile t)
