(** The alias profile: for every memory-op site, per-location dynamic hit
    counts (how many of the site's executions touched each abstract
    location), plus execution counts and per-block execution counts.

    This is the feedback the speculative compiler consumes (paper section
    3.1): a chi/mu on location L at site s becomes {e chi_s}/{e mu_s}
    (speculative) when the profile says s touches L never — or, under the
    expected-value gate, rarely enough that the saved load latency beats
    the expected check/recovery cost.  Set semantics are recoverable: a
    location is a member of {!targets} iff its {!touch_count} is nonzero.
    Block counts drive the control-speculation and invala.e placement
    heuristics. *)

open Srp_ir
module Location = Srp_alias.Location

type t

val create : unit -> t

(** Record one dynamic access of [site] to a location. *)
val record : t -> Site.t -> Location.t -> unit

(** Count one execution of a basic block. *)
val record_block : t -> func:string -> label_id:int -> unit

val block_count : t -> func:string -> label_id:int -> int

(** Was [site] ever executed under the training input?  Equivalent to
    [count t site > 0] — a deserialized [count 0] site is not executed. *)
val executed : t -> Site.t -> bool

(** Dynamic execution count of [site]. *)
val count : t -> Site.t -> int

(** Locations [site] was observed touching (empty if never executed). *)
val targets : t -> Site.t -> Location.Set.t

(** How many of [site]'s executions touched [loc] (0 if never). *)
val touch_count : t -> Site.t -> Location.t -> int

(** Observed conflict frequency in [0, 1]: the fraction of [site]'s
    training executions that touched [loc].  0 exactly when
    {!may_touch} is false. *)
val conflict_rate : t -> Site.t -> Location.t -> float

(** The speculation predicate: per the profile, can the access at [site]
    touch [loc]?  Never-executed sites answer [false] — the aggressive
    choice the paper makes; a mis-speculation check repairs the rare
    disagreements. *)
val may_touch : t -> Site.t -> Location.t -> bool

(** All recorded sites, sorted. *)
val sites : t -> Site.t list

val pp : Format.formatter -> t -> unit

(** {1 Serialization}

    A line-oriented text format so train-input profiles can be saved and
    fed to later compilations (the paper's feedback file).  The current
    format is [srp-profile-v2] (header line, per-target [=hits] counts,
    site and block lines fully sorted so identical training runs produce
    byte-identical text); the headerless v1 format is still loadable,
    with each v1 target read as conflicting on every execution.  Symbols
    are referenced by id, so {!load} needs the same program's symbol
    table — ids are deterministic given the source. *)

val save : t -> string

exception Parse_error of string

(** Raises {!Parse_error} on malformed lines or numeric fields and on
    duplicate [site]/[block] lines. *)
val load : symbols:(int, Symbol.t) Hashtbl.t -> string -> t
