(* pfmon-style hardware counters.  Everything the paper's Figures 8-11
   report is derived from these. *)

type t = {
  mutable cycles : int;
  mutable instrs_retired : int;
  mutable loads_retired : int; (* ld, ld.a, ld.sa, and ld.c reloads *)
  mutable fp_loads_retired : int;
  mutable stores_retired : int;
  mutable checks_retired : int; (* ld.c executed *)
  mutable check_failures : int; (* ld.c that missed and reloaded *)
  mutable alat_inserts : int;
  mutable alat_evictions : int; (* capacity evictions *)
  mutable alat_store_invalidations : int;
  mutable invala_retired : int;
  mutable data_access_cycles : int; (* stall cycles waiting on memory results *)
  mutable rse_cycles : int; (* register stack spill/fill traffic *)
  mutable rse_spilled_regs : int;
  mutable rse_filled_regs : int;
  mutable branch_mispredicts : int;
  mutable bundles_retired : int; (* bundles dispersed (bundle-wise fetch) *)
  mutable nops_emitted : int; (* retired nop syllables, mostly bundle pads *)
  mutable split_stalls : int; (* issue groups ended early by a stop bit or
                                 template port conflict *)
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable max_stacked_regs : int;
}

let create () =
  { cycles = 0; instrs_retired = 0; loads_retired = 0; fp_loads_retired = 0;
    stores_retired = 0; checks_retired = 0; check_failures = 0;
    alat_inserts = 0; alat_evictions = 0; alat_store_invalidations = 0;
    invala_retired = 0; data_access_cycles = 0; rse_cycles = 0;
    rse_spilled_regs = 0; rse_filled_regs = 0; branch_mispredicts = 0;
    bundles_retired = 0; nops_emitted = 0; split_stalls = 0;
    l1_hits = 0; l1_misses = 0; l2_misses = 0; max_stacked_regs = 0 }

(* The one list every consumer derives from.  The pretty-printer, the JSON
   encoder and the per-site cross-check all go through [to_fields], and the
   field-count guard test compares its length against the runtime size of
   the record — adding a counter without listing it here fails the test
   instead of silently vanishing from reports (which is exactly how
   rse_spilled_regs went missing once). *)
let to_fields c =
  [ ("cycles", c.cycles);
    ("instrs_retired", c.instrs_retired);
    ("loads_retired", c.loads_retired);
    ("fp_loads_retired", c.fp_loads_retired);
    ("stores_retired", c.stores_retired);
    ("checks_retired", c.checks_retired);
    ("check_failures", c.check_failures);
    ("alat_inserts", c.alat_inserts);
    ("alat_evictions", c.alat_evictions);
    ("alat_store_invalidations", c.alat_store_invalidations);
    ("invala_retired", c.invala_retired);
    ("data_access_cycles", c.data_access_cycles);
    ("rse_cycles", c.rse_cycles);
    ("rse_spilled_regs", c.rse_spilled_regs);
    ("rse_filled_regs", c.rse_filled_regs);
    ("branch_mispredicts", c.branch_mispredicts);
    ("bundles_retired", c.bundles_retired);
    ("nops_emitted", c.nops_emitted);
    ("split_stalls", c.split_stalls);
    ("l1_hits", c.l1_hits);
    ("l1_misses", c.l1_misses);
    ("l2_misses", c.l2_misses);
    ("max_stacked_regs", c.max_stacked_regs) ]

let pp ppf c =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, v) -> Fmt.pf ppf "%-26s %d" name v))
    (to_fields c)

let to_json c : Srp_obs.Json.t =
  Srp_obs.Json.Obj
    (List.map (fun (k, v) -> (k, Srp_obs.Json.Int v)) (to_fields c))
