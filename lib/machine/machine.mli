(** The machine: functional execution of target code interleaved with an
    in-order, 6-issue pipeline timing model (a 733 MHz Itanium in spirit).

    - Issue groups hold up to 6 instructions with at most 2 memory ops and
      2 FP ops per cycle; a register scoreboard stalls issue until operands
      are ready, and stalls whose critical operand came from memory count
      as data-access cycles (the paper's Figure 8 metric).
    - ld.c checks issue as no-ops on a hit (paper section 1) and reload on
      a miss; chk.a failures branch to their recovery routine with a trap
      penalty (section 2.5).
    - ld.sa defers faults via NaT bits; consuming an unchecked NaT value
      raises {!Machine_error} — a compiler bug, not a program fault.
    - Memory is the same region-tracked store as the IR interpreter's, so
      outputs are bit-comparable for differential testing. *)

exception Machine_error of string

exception Out_of_fuel

type t

(** Load a target program: globals placed and initialized, counters zero.
    [fuel] bounds retired instructions (default 200M).  [trace] attaches a
    bounded per-cycle event sink (retires, stalls, ALAT arm/evict/
    invalidate/check events, RSE traffic) — free when absent.  [timeline]
    attaches a periodic occupancy sampler ({!Timeline}); also free when
    absent, and read-only when present (counters and output stay
    bit-identical). *)
val create :
  ?fuel:int -> ?trace:Srp_obs.Trace.sink -> ?timeline:Timeline.t ->
  Srp_target.Insn.program -> t

(** Execute [main]; returns its exit value.  Total cycles land in the
    counters. *)
val run : t -> int64

(** Everything the program printed (print_int/print_float). *)
val output : t -> string

val counters : t -> Counters.t

(** Per-site event attribution accumulated during {!run}: every ALAT
    insert/eviction/invalidation, check and retired load/store charged to
    its originating IR site (the pfmon event-sampling stand-in).  Per-event
    totals equal the corresponding global counters. *)
val site_stats : t -> Srp_obs.Site_hist.t

(** [run_program prog] = create + run; returns
    (exit code, output, counters). *)
val run_program :
  ?fuel:int -> ?trace:Srp_obs.Trace.sink -> ?timeline:Timeline.t ->
  Srp_target.Insn.program -> int64 * string * Counters.t
