(* The machine: functional execution of target code interleaved with an
   in-order, 6-issue pipeline timing model (a 733 MHz Itanium in spirit).

   Timing model: instructions issue in order; an issue group holds up to 6
   instructions with at most 2 memory ops and 2 FP ops per cycle.  A
   scoreboard of per-register ready times stalls issue until operands are
   ready; stall cycles whose critical operand was produced by a memory
   operation count as data-access cycles (the paper's second metric in
   Figure 8).  Taken-branch redirects cost one bubble; mispredictions
   (static backward-taken/forward-not-taken) cost a 6-cycle flush.

   Functional model: memory is the same region-tracked store the IR
   interpreter uses, so outputs are bit-comparable for differential
   testing.  NaT bits give ld.sa its deferred-fault semantics; reading a
   NaT register anywhere but a check is a simulator error (it would mean
   the compiler consumed an unchecked speculative value). *)

open Srp_target
module Value = Srp_profile.Value
module Memory = Srp_profile.Memory
module Location = Srp_alias.Location
module Site_hist = Srp_obs.Site_hist
module Trace = Srp_obs.Trace
module J = Srp_obs.Json

exception Machine_error of string

let merror fmt = Fmt.kstr (fun s -> raise (Machine_error s)) fmt

exception Out_of_fuel

type frame = {
  uid : int;
  func : Insn.func;
  iregs : Value.t array;
  fregs : Value.t array;
  inat : bool array;
  fnat : bool array;
  iready : int array; (* scoreboard: cycle the register value is ready *)
  fready : int array;
  imem : bool array; (* producer was a memory op *)
  fmem : bool array;
}

type t = {
  prog : Insn.program;
  mem : Memory.t;
  globals : (int, int64) Hashtbl.t; (* symbol id -> address *)
  alat : Alat.t;
  cache : Cache.t;
  rse : Rse.t;
  c : Counters.t;
  site_stats : Site_hist.t;
  trace : Trace.sink option;
  timeline : Timeline.t option;
  output : Buffer.t;
  mutable cycle : int;
  mutable group_slots : int; (* instructions issued in the current cycle *)
  mutable group_mem : int;
  mutable group_fp : int;
  (* bundle-wise dispersal state (only driven for bundled functions): how
     many bundles entered the current issue group, the M/F/B ports their
     templates reserve, and whether the last dispersed bundle carried an
     end-of-group stop bit *)
  mutable group_bundles : int;
  mutable group_m_ports : int;
  mutable group_f_ports : int;
  mutable group_b_ports : int;
  mutable pending_stop : bool;
  mutable frame_uid : int;
  mutable fuel : int;
  mutable sp : int64;
}

let issue_width = 6
let mem_per_cycle = 2
let fp_per_cycle = 2

(* Dispersal ports for bundle-wise fetch: up to two bundles per cycle, and
   across the window the templates may reserve at most 2 M, 2 F and 3 B
   units (pads reserve their slot's unit too — dispersal routes by
   template, not by what the syllable turns out to do). *)
let bundles_per_cycle = 2
let m_ports_per_cycle = 2
let f_ports_per_cycle = 2
let b_ports_per_cycle = 3

let template_ports : Insn.template -> int * int * int = function
  | Insn.MII -> (1, 0, 0)
  | Insn.MMI -> (2, 0, 0)
  | Insn.MIB -> (1, 0, 1)
  | Insn.MMB -> (2, 0, 1)
  | Insn.MFI -> (1, 1, 0)
  | Insn.MMF -> (2, 1, 0)
  | Insn.MBB -> (1, 0, 2)
  | Insn.BBB -> (0, 0, 3)

let mispredict_penalty = 6

(* chk.a failure: the front end flushes like a mispredicted branch, then the
   hardware raises a light trap that vectors into the recovery code — the
   trap dispatch costs an extra fixed latency on top of the flush (see the
   timing table in DESIGN.md). *)
let check_recovery_penalty = mispredict_penalty + 10

let create ?(fuel = 200_000_000) ?trace ?timeline (prog : Insn.program) : t =
  let mem = Memory.create () in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (s, init) ->
      let base =
        Memory.alloc mem ~size:(Srp_ir.Symbol.size_bytes s) ~loc:(Location.Sym s)
      in
      Hashtbl.replace globals (Srp_ir.Symbol.id s) base;
      (match init with
      | Srp_ir.Program.Init_zero -> ()
      | Srp_ir.Program.Init_ints vs ->
        Array.iteri
          (fun i v ->
            Memory.store mem (Int64.add base (Int64.of_int (i * 8))) (Value.Vint v))
          vs
      | Srp_ir.Program.Init_floats vs ->
        Array.iteri
          (fun i v ->
            Memory.store mem (Int64.add base (Int64.of_int (i * 8))) (Value.Vflt v))
          vs))
    prog.Insn.globals;
  { prog; mem; globals; alat = Alat.create (); cache = Cache.create ();
    rse = Rse.create (); c = Counters.create ();
    site_stats = Site_hist.create (); trace; timeline;
    output = Buffer.create 256;
    cycle = 0; group_slots = 0; group_mem = 0; group_fp = 0;
    group_bundles = 0; group_m_ports = 0; group_f_ports = 0;
    group_b_ports = 0; pending_stop = false; frame_uid = 0;
    fuel; sp = 0x4000_0000L }

(* --- observability helpers --- *)

(* Per-site event attribution (pfmon stand-in): every ALAT-relevant event
   is charged to the IR site that caused it. *)
let ev m ~site e = Site_hist.record m.site_stats ~site e

(* Trace emission is free when no sink is attached. *)
let tr m kind fields =
  match m.trace with
  | None -> ()
  | Some sink -> Trace.emit sink ~cycle:m.cycle kind fields

let op_name : Insn.insn -> string = function
  | Insn.Movl _ -> "movl"
  | Insn.Gaddr _ -> "gaddr"
  | Insn.Mov _ -> "mov"
  | Insn.Alu _ -> "alu"
  | Insn.Falu _ -> "falu"
  | Insn.Fcmp _ -> "fcmp"
  | Insn.Itof _ -> "itof"
  | Insn.Ftoi _ -> "ftoi"
  | Insn.Ld { kind = Insn.K_ld; _ } -> "ld"
  | Insn.Ld { kind = Insn.K_ld_a; _ } -> "ld.a"
  | Insn.Ld { kind = Insn.K_ld_sa; _ } -> "ld.sa"
  | Insn.Ld { kind = Insn.K_ld_c { clear = true }; _ } -> "ld.c.clr"
  | Insn.Ld { kind = Insn.K_ld_c { clear = false }; _ } -> "ld.c.nc"
  | Insn.St _ -> "st"
  | Insn.Chk_a _ -> "chk.a"
  | Insn.Invala_e _ -> "invala.e"
  | Insn.Sel _ -> "sel"
  | Insn.Br _ -> "br"
  | Insn.Brc _ -> "brc"
  | Insn.Call _ -> "call"
  | Insn.Ret _ -> "ret"
  | Insn.Alloc _ -> "alloc"
  | Insn.Print _ -> "print"
  | Insn.Nop -> "nop"

(* --- timing helpers --- *)

(* Timeline hook: fires on every cycle advance, read-only — it cannot
   perturb a counter (the on/off differential test holds the machine
   bit-identical either way). *)
let sample m =
  match m.timeline with
  | None -> ()
  | Some tl ->
    Timeline.maybe_sample tl ~cycle:m.cycle
      ~alat_live:(Alat.occupancy m.alat)
      ~rse_dirty:(Rse.dirty m.rse) ~rse_clean:(Rse.clean m.rse)
      ~instrs:m.c.Counters.instrs_retired
      ~l1_misses:m.c.Counters.l1_misses ~l2_misses:m.c.Counters.l2_misses

let new_group m =
  if m.group_slots > 0 then begin
    m.cycle <- m.cycle + 1;
    m.group_slots <- 0;
    m.group_mem <- 0;
    m.group_fp <- 0;
    m.group_bundles <- 0;
    m.group_m_ports <- 0;
    m.group_f_ports <- 0;
    m.group_b_ports <- 0;
    m.pending_stop <- false;
    sample m
  end

let advance_cycles m n =
  if n > 0 then begin
    new_group m;
    m.cycle <- m.cycle + n;
    sample m
  end

(* Stall until [ready]; attribute to data access if [mem_src]. *)
let wait_until m ~ready ~mem_src =
  if ready > m.cycle then begin
    new_group m;
    if ready > m.cycle then begin
      let stall = ready - m.cycle in
      m.cycle <- ready;
      if mem_src then
        m.c.Counters.data_access_cycles <- m.c.Counters.data_access_cycles + stall;
      tr m "stall" [ ("n", J.Int stall); ("mem", J.Bool mem_src) ];
      sample m
    end
  end

(* The site a split stall is charged to: the first site-carrying syllable
   of the delayed bundle, -1 when the bundle has none (pads, pure ALU). *)
let bundle_site (code : Insn.insn array) pc =
  let site_of : Insn.insn -> int option = function
    | Insn.Ld { site; _ } | Insn.St { site; _ } | Insn.Chk_a { site; _ }
    | Insn.Brc { site; _ } | Insn.Alloc { site; _ } ->
      Some site
    | _ -> None
  in
  let rec go k =
    if k > 2 || pc + k >= Array.length code then -1
    else match site_of code.(pc + k) with Some s -> s | None -> go (k + 1)
  in
  go 0

(* Bundle-wise dispersal, run whenever execution reaches slot 0 of a
   bundle.  A third bundle in the cycle rolls the group over naturally; a
   *second* bundle blocked by the previous bundle's stop bit or by a
   template port conflict ends the group early — a split, the stall the
   flat-stream model never paid. *)
let enter_bundle m code pc (b : Insn.bundle) =
  let pm, pf, pb = template_ports b.Insn.tmpl in
  if m.group_bundles >= bundles_per_cycle then new_group m
  else if
    m.group_bundles = 1
    && (m.pending_stop
       || m.group_m_ports + pm > m_ports_per_cycle
       || m.group_f_ports + pf > f_ports_per_cycle
       || m.group_b_ports + pb > b_ports_per_cycle)
  then begin
    let was_stop = m.pending_stop in
    m.c.Counters.split_stalls <- m.c.Counters.split_stalls + 1;
    ev m ~site:(bundle_site code pc) Srp_obs.Site_hist.Split_stalls;
    tr m "split" [ ("pc", J.Int pc); ("stop", J.Bool was_stop) ];
    new_group m
  end;
  m.group_bundles <- m.group_bundles + 1;
  m.group_m_ports <- m.group_m_ports + pm;
  m.group_f_ports <- m.group_f_ports + pf;
  m.group_b_ports <- m.group_b_ports + pb;
  m.pending_stop <- b.Insn.stop;
  m.c.Counters.bundles_retired <- m.c.Counters.bundles_retired + 1

(* Issue one instruction consuming [mem]/[fp] unit slots. *)
let issue_slot m ~mem ~fp =
  if
    m.group_slots >= issue_width
    || (mem && m.group_mem >= mem_per_cycle)
    || (fp && m.group_fp >= fp_per_cycle)
  then new_group m;
  m.group_slots <- m.group_slots + 1;
  if mem then m.group_mem <- m.group_mem + 1;
  if fp then m.group_fp <- m.group_fp + 1;
  m.c.Counters.instrs_retired <- m.c.Counters.instrs_retired + 1;
  m.fuel <- m.fuel - 1;
  if m.fuel <= 0 then raise Out_of_fuel

(* --- register access --- *)

let read_int fr m r : Value.t =
  if fr.inat.(r) then merror "read of NaT integer register r%d" r;
  wait_until m ~ready:fr.iready.(r) ~mem_src:fr.imem.(r);
  fr.iregs.(r)

let read_fp fr m r : Value.t =
  if fr.fnat.(r) then merror "read of NaT float register f%d" r;
  wait_until m ~ready:fr.fready.(r) ~mem_src:fr.fmem.(r);
  fr.fregs.(r)

let write_int fr r v ~ready ~mem =
  fr.iregs.(r) <- v;
  fr.inat.(r) <- false;
  fr.iready.(r) <- ready;
  fr.imem.(r) <- mem

let write_fp fr r v ~ready ~mem =
  fr.fregs.(r) <- v;
  fr.fnat.(r) <- false;
  fr.fready.(r) <- ready;
  fr.fmem.(r) <- mem

let read_src fr m (s : Insn.src) : Value.t =
  match s with
  | Insn.SReg r -> read_int fr m r
  | Insn.SImm i -> Value.Vint i
  | Insn.SFrg f -> read_fp fr m f
  | Insn.SFim x -> Value.Vflt x

let write_dest fr (d : Insn.dest) v ~ready ~mem =
  match d with
  | Insn.DInt r -> write_int fr r v ~ready ~mem
  | Insn.DFlt f -> write_fp fr f v ~ready ~mem

let src_is_fp = function Insn.SFrg _ | Insn.SFim _ -> true | Insn.SReg _ | Insn.SImm _ -> false

(* --- ALU semantics --- *)

let ialu_eval (op : Insn.ialu) a b : Value.t =
  let open Srp_ir.Ops in
  let irop =
    match op with
    | Insn.Aadd -> Add | Insn.Asub -> Sub | Insn.Amul -> Mul
    | Insn.Adiv -> Div | Insn.Arem -> Rem | Insn.Aand -> And
    | Insn.Aor -> Or | Insn.Axor -> Xor | Insn.Ashl -> Shl
    | Insn.Ashr -> Shr | Insn.Acmp_eq -> Eq | Insn.Acmp_ne -> Ne
    | Insn.Acmp_lt -> Lt | Insn.Acmp_le -> Le | Insn.Acmp_gt -> Gt
    | Insn.Acmp_ge -> Ge
  in
  Value.binop irop a b

let falu_eval (op : Insn.falu) a b : Value.t =
  let open Srp_ir.Ops in
  let irop =
    match op with
    | Insn.FAadd -> FAdd | Insn.FAsub -> FSub | Insn.FAmul -> FMul
    | Insn.FAdiv -> FDiv
  in
  Value.binop irop a b

let fcmp_eval (op : Insn.fcmp) a b : Value.t =
  let open Srp_ir.Ops in
  let irop =
    match op with
    | Insn.FCeq -> FEq | Insn.FCne -> FNe | Insn.FClt -> FLt
    | Insn.FCle -> FLe | Insn.FCgt -> FGt | Insn.FCge -> FGe
  in
  Value.binop irop a b

(* coerce a raw memory value to the view the destination register expects *)
let coerce_loaded (d : Insn.dest) (v : Value.t) : Value.t =
  match d, v with
  | Insn.DFlt _, Value.Vint 0L -> Value.Vflt 0.0 (* zero-initialized cell *)
  | Insn.DFlt _, Value.Vint bits -> Value.Vflt (Int64.float_of_bits bits)
  | Insn.DInt _, Value.Vflt x -> Value.Vint (Int64.bits_of_float x)
  | _, v -> v

let alat_tag fr (d : Insn.dest) : Alat.tag =
  match d with
  | Insn.DInt r -> Alat.int_tag ~frame:fr.uid r
  | Insn.DFlt f -> Alat.fp_tag ~frame:fr.uid f

(* --- execution --- *)

let rec exec_function m (func : Insn.func) (args : Value.t list) : Value.t option =
  m.frame_uid <- m.frame_uid + 1;
  let fr =
    { uid = m.frame_uid; func;
      iregs = Array.make (max 1 func.Insn.nregs) (Value.Vint 0L);
      fregs = Array.make (max 1 func.Insn.nfregs) (Value.Vflt 0.0);
      inat = Array.make (max 1 func.Insn.nregs) false;
      fnat = Array.make (max 1 func.Insn.nfregs) false;
      iready = Array.make (max 1 func.Insn.nregs) 0;
      fready = Array.make (max 1 func.Insn.nfregs) 0;
      imem = Array.make (max 1 func.Insn.nregs) false;
      fmem = Array.make (max 1 func.Insn.nfregs) false }
  in
  (* stack frame memory: a descending stack whose addresses are reused
     across calls, as on real hardware — ALAT partial tags of frame slots
     must be stable, not sweep the tag space *)
  let frame_size = ((func.Insn.frame_bytes + 7) / 8 * 8) + 8 in
  let saved_sp = m.sp in
  m.sp <- Int64.sub m.sp (Int64.of_int frame_size);
  let frame_base =
    Memory.alloc_at m.mem ~base:m.sp ~size:func.Insn.frame_bytes
      ~loc:(Location.Heap (-1) (* anonymous stack region *))
  in
  fr.iregs.(Insn.sp) <- Value.Vint frame_base;
  (* argument arrival *)
  List.iteri
    (fun i v ->
      match List.nth_opt func.Insn.formals i with
      | Some (_, Insn.DInt r) -> fr.iregs.(r) <- v
      | Some (_, Insn.DFlt f) -> fr.fregs.(f) <- v
      | None -> ())
    args;
  (* RSE charge for the new register frame *)
  let spill = Rse.call m.rse m.c ~nregs:func.Insn.nregs in
  if spill > 0 then
    tr m "rse.spill" [ ("regs", J.Int spill); ("f", J.String func.Insn.name) ];
  advance_cycles m spill;
  let result = exec_from m fr 0 in
  let fill = Rse.ret m.rse m.c in
  if fill > 0 then tr m "rse.fill" [ ("regs", J.Int fill) ];
  advance_cycles m fill;
  Alat.purge_frame m.alat ~frame:fr.uid;
  Memory.free m.mem frame_base;
  m.sp <- saved_sp;
  result

and exec_from m fr pc : Value.t option =
  if pc < 0 || pc >= Array.length fr.func.Insn.code then
    merror "%s: pc %d out of range" fr.func.Insn.name pc;
  (* bundle-wise fetch: crossing into slot 0 disperses the next bundle *)
  (match fr.func.Insn.bundles with
  | Some bs when pc mod 3 = 0 ->
    enter_bundle m fr.func.Insn.code pc bs.(pc / 3)
  | _ -> ());
  let ins = fr.func.Insn.code.(pc) in
  (* per-instruction retire record; the field list is only built when a
     sink is attached *)
  (match m.trace with
  | None -> ()
  | Some _ ->
    tr m "i"
      [ ("f", J.String fr.func.Insn.name); ("pc", J.Int pc);
        ("op", J.String (op_name ins)) ]);
  match ins with
  | Insn.Movl { dst; imm } ->
    issue_slot m ~mem:false ~fp:false;
    write_int fr dst (Value.Vint imm) ~ready:(m.cycle + 1) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Gaddr { dst; sym } ->
    issue_slot m ~mem:false ~fp:false;
    let addr =
      match Hashtbl.find_opt m.globals sym with
      | Some a -> a
      | None -> merror "unknown global symbol id %d" sym
    in
    write_int fr dst (Value.Vint addr) ~ready:(m.cycle + 1) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Mov { dst; src } ->
    let v = read_src fr m src in
    issue_slot m ~mem:false ~fp:(src_is_fp src);
    write_dest fr dst (coerce_loaded dst v) ~ready:(m.cycle + 1) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Alu { op; dst; a; b } ->
    let va = read_src fr m a and vb = read_src fr m b in
    issue_slot m ~mem:false ~fp:false;
    let lat = match op with Insn.Amul -> 3 | Insn.Adiv | Insn.Arem -> 20 | _ -> 1 in
    write_int fr dst (ialu_eval op va vb) ~ready:(m.cycle + lat) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Falu { op; dst; a; b } ->
    let va = read_src fr m a and vb = read_src fr m b in
    issue_slot m ~mem:false ~fp:true;
    let lat = match op with Insn.FAdiv -> 30 | _ -> 4 in
    write_fp fr dst (falu_eval op va vb) ~ready:(m.cycle + lat) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Fcmp { op; dst; a; b } ->
    let va = read_src fr m a and vb = read_src fr m b in
    issue_slot m ~mem:false ~fp:true;
    write_int fr dst (fcmp_eval op va vb) ~ready:(m.cycle + 2) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Itof { dst; src } ->
    let v = read_src fr m src in
    issue_slot m ~mem:false ~fp:true;
    write_fp fr dst (Value.Vflt (Int64.to_float (Value.to_int v))) ~ready:(m.cycle + 4) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Ftoi { dst; src } ->
    let v = read_src fr m src in
    issue_slot m ~mem:false ~fp:true;
    write_int fr dst (Value.Vint (Int64.of_float (Value.to_flt v))) ~ready:(m.cycle + 4) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Ld { kind; dst; base; site } -> exec_load m fr pc kind dst base site
  | Insn.St { src; base; site } ->
    let v = read_src fr m src in
    let a = Value.to_int (read_int fr m base) in
    issue_slot m ~mem:true ~fp:false;
    Memory.store m.mem a v;
    Cache.store_touch m.cache a;
    m.c.Counters.stores_retired <- m.c.Counters.stores_retired + 1;
    ev m ~site Site_hist.Stores_retired;
    let victims = Alat.store_probe_sites m.alat a in
    let inv = List.length victims in
    m.c.Counters.alat_store_invalidations <-
      m.c.Counters.alat_store_invalidations + inv;
    (* the invalidation is charged to the load site whose entry died *)
    List.iter (fun vs -> ev m ~site:vs Site_hist.Alat_store_invalidations) victims;
    if inv > 0 then
      tr m "alat.inval"
        [ ("site", J.Int site); ("addr", J.String (Fmt.str "0x%Lx" a));
          ("victims", J.Arr (List.map (fun s -> J.Int s) victims)) ];
    exec_from m fr (pc + 1)
  | Insn.Chk_a { tag; recovery; site } ->
    issue_slot m ~mem:false ~fp:false;
    m.c.Counters.checks_retired <- m.c.Counters.checks_retired + 1;
    ev m ~site Site_hist.Checks_retired;
    if Alat.check m.alat (alat_tag fr tag) ~clear:false then exec_from m fr (pc + 1)
    else begin
      (* branch to recovery: a light trap plus pipeline redirect *)
      m.c.Counters.check_failures <- m.c.Counters.check_failures + 1;
      ev m ~site Site_hist.Check_failures;
      tr m "chk.a.fail" [ ("site", J.Int site); ("recovery", J.Int recovery) ];
      advance_cycles m check_recovery_penalty;
      exec_from m fr recovery
    end
  | Insn.Invala_e { tag } ->
    issue_slot m ~mem:false ~fp:false;
    m.c.Counters.invala_retired <- m.c.Counters.invala_retired + 1;
    Alat.remove m.alat (alat_tag fr tag);
    exec_from m fr (pc + 1)
  | Insn.Sel { dst; cond; if_true; if_false } ->
    let vc = read_int fr m cond in
    let vt = read_src fr m if_true and vf = read_src fr m if_false in
    issue_slot m ~mem:false ~fp:false;
    let v = if Value.truthy vc then vt else vf in
    write_dest fr dst (coerce_loaded dst v) ~ready:(m.cycle + 1) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Br { target } ->
    issue_slot m ~mem:false ~fp:false;
    new_group m; (* taken-branch redirect *)
    exec_from m fr target
  | Insn.Brc { cond; ifso; ifnot; site } ->
    let vc = read_int fr m cond in
    issue_slot m ~mem:false ~fp:false;
    let taken = Value.truthy vc in
    let target = if taken then ifso else ifnot in
    (* Static prediction: backward taken, forward not taken, decided by the
       branch *direction* (ifso relative to the branch pc) — a taken forward
       branch flushes even when ifso = pc + 1.  A correctly predicted branch
       still pays a 1-bubble front-end redirect unless it falls through. *)
    let predicted_taken = ifso < pc in
    if taken <> predicted_taken then begin
      m.c.Counters.branch_mispredicts <- m.c.Counters.branch_mispredicts + 1;
      ev m ~site Site_hist.Branch_mispredicts;
      tr m "br.mispredict"
        [ ("site", J.Int site); ("pc", J.Int pc); ("taken", J.Bool taken) ];
      advance_cycles m mispredict_penalty
    end
    else if target <> pc + 1 then new_group m;
    exec_from m fr target
  | Insn.Call { callee; args; ret } -> (
    let vargs = List.map (read_src fr m) args in
    issue_slot m ~mem:false ~fp:false;
    new_group m;
    let g =
      match Hashtbl.find_opt m.prog.Insn.funcs callee with
      | Some g -> g
      | None -> merror "call to unknown function %s" callee
    in
    let r = exec_function m g vargs in
    new_group m;
    (match ret, r with
    | Some d, Some v -> write_dest fr d (coerce_loaded d v) ~ready:(m.cycle + 1) ~mem:false
    | Some _, None -> merror "%s returned no value" callee
    | None, _ -> ());
    exec_from m fr (pc + 1))
  | Insn.Ret { value } ->
    let v = Option.map (read_src fr m) value in
    issue_slot m ~mem:false ~fp:false;
    new_group m;
    v
  | Insn.Alloc { dst; nbytes; site } ->
    let n = Int64.to_int (Value.to_int (read_src fr m nbytes)) in
    issue_slot m ~mem:false ~fp:false;
    advance_cycles m 20; (* allocator runtime cost *)
    let base = Memory.alloc m.mem ~size:(max 8 n) ~loc:(Location.Heap site) in
    write_int fr dst (Value.Vint base) ~ready:(m.cycle + 1) ~mem:false;
    exec_from m fr (pc + 1)
  | Insn.Print { what; as_float } ->
    let v = read_src fr m what in
    issue_slot m ~mem:false ~fp:false;
    if as_float then Buffer.add_string m.output (Fmt.str "%.6f\n" (Value.to_flt v))
    else Buffer.add_string m.output (Fmt.str "%Ld\n" (Value.to_int v));
    exec_from m fr (pc + 1)
  | Insn.Nop ->
    issue_slot m ~mem:false ~fp:false;
    m.c.Counters.nops_emitted <- m.c.Counters.nops_emitted + 1;
    exec_from m fr (pc + 1)

and exec_load m fr pc (kind : Insn.ld_kind) (dst : Insn.dest) base site :
    Value.t option =
  let fp = match dst with Insn.DFlt _ -> true | Insn.DInt _ -> false in
  let a = Value.to_int (read_int fr m base) in
  (* a check load is "processed like a no-op when the check is successful"
     (paper section 1): it takes an issue slot but no memory unit; real
     loads occupy one of the two memory slots *)
  let is_check = match kind with Insn.K_ld_c _ -> true | _ -> false in
  issue_slot m ~mem:(not is_check) ~fp:(fp && not is_check);
  let tag = alat_tag fr dst in
  let do_load () =
    let lat = Cache.load_latency m.cache m.c ~fp a in
    let v = coerce_loaded dst (Memory.load m.mem a) in
    m.c.Counters.loads_retired <- m.c.Counters.loads_retired + 1;
    ev m ~site Site_hist.Loads_retired;
    if fp then begin
      m.c.Counters.fp_loads_retired <- m.c.Counters.fp_loads_retired + 1;
      ev m ~site Site_hist.Fp_loads_retired
    end;
    write_dest fr dst v ~ready:(m.cycle + lat) ~mem:true
  in
  (* arm an ALAT entry and attribute the insert (and any capacity
     eviction, charged to the evicted entry's arming site) *)
  let arm () =
    m.c.Counters.alat_inserts <- m.c.Counters.alat_inserts + 1;
    ev m ~site Site_hist.Alat_inserts;
    match Alat.insert ~site m.alat tag a with
    | None -> ()
    | Some victim_site ->
      m.c.Counters.alat_evictions <- m.c.Counters.alat_evictions + 1;
      ev m ~site:victim_site Site_hist.Alat_evictions;
      tr m "alat.evict" [ ("site", J.Int site); ("victim", J.Int victim_site) ]
  in
  (match kind with
  | Insn.K_ld -> do_load ()
  | Insn.K_ld_a ->
    do_load ();
    tr m "alat.arm" [ ("site", J.Int site); ("addr", J.String (Fmt.str "0x%Lx" a)) ];
    arm ()
  | Insn.K_ld_sa -> (
    (* control-speculative: defer faults with NaT, no ALAT entry on fault *)
    match Memory.location_of_addr m.mem a with
    | Some _ ->
      do_load ();
      arm ()
    | None -> (
      tr m "ld.sa.nat" [ ("site", J.Int site) ];
      (* IA-64: a deferred fault also invalidates any matching ALAT entry,
         so a later ld.c on this register misses and reloads instead of
         validating a stale entry left by a previous occupant of the
         (possibly reused) register *)
      Alat.remove m.alat (alat_tag fr dst);
      match dst with
      | Insn.DInt r -> fr.inat.(r) <- true
      | Insn.DFlt f -> fr.fnat.(f) <- true))
  | Insn.K_ld_c { clear } ->
    m.c.Counters.checks_retired <- m.c.Counters.checks_retired + 1;
    ev m ~site Site_hist.Checks_retired;
    if Alat.check m.alat tag ~clear then begin
      (* hit: the register already holds valid data; zero-latency *)
      (match dst with
      | Insn.DInt r -> if fr.inat.(r) then merror "ld.c hit on NaT register"
      | Insn.DFlt f -> if fr.fnat.(f) then merror "ld.c hit on NaT register")
    end
    else begin
      m.c.Counters.check_failures <- m.c.Counters.check_failures + 1;
      ev m ~site Site_hist.Check_failures;
      tr m "ld.c.miss"
        [ ("site", J.Int site); ("addr", J.String (Fmt.str "0x%Lx" a)) ];
      do_load ();
      if not clear then arm ()
    end);
  exec_from m fr (pc + 1)

(* --- entry points --- *)

let run (m : t) : int64 =
  Srp_obs.Stats.time ~pass:"machine" "simulate" @@ fun () ->
  let main =
    match Hashtbl.find_opt m.prog.Insn.funcs "main" with
    | Some f -> f
    | None -> merror "no main function"
  in
  let r = exec_function m main [] in
  new_group m;
  m.c.Counters.cycles <- m.cycle;
  (match m.timeline with
  | None -> ()
  | Some tl ->
    Timeline.final tl ~cycle:m.cycle
      ~alat_live:(Alat.occupancy m.alat)
      ~rse_dirty:(Rse.dirty m.rse) ~rse_clean:(Rse.clean m.rse)
      ~instrs:m.c.Counters.instrs_retired
      ~l1_misses:m.c.Counters.l1_misses ~l2_misses:m.c.Counters.l2_misses);
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"machine" "instructions_retired")
    m.c.Counters.instrs_retired;
  match r with Some v -> Value.to_int v | None -> 0L

let output m = Buffer.contents m.output
let counters m = m.c
let site_stats m = m.site_stats

(* Compile-and-run convenience used everywhere downstream. *)
let run_program ?fuel ?trace ?timeline (prog : Insn.program) :
    int64 * string * Counters.t =
  let m = create ?fuel ?trace ?timeline prog in
  let code = run m in
  (code, output m, counters m)
