(** The Advanced Load Address Table (paper section 2.1).

    Entries are tagged by the target register of the advanced load and
    carry a *partial* physical address (12 bits of the word address by
    default), as on Itanium.  Every retired store probes the table and
    invalidates entries whose partial address matches — so a false partial
    collision can only cause a spurious reload, never an incorrect result.

    Associativity is configurable; the default is fully associative
    (Itanium 2's 32-entry CAM).  Pass [~ways:2] for the original Itanium's
    organization, which exhibits set-conflict evictions.

    One idealization versus hardware: entries are tagged by
    (call-frame uid, register index) rather than physical register number,
    so register-stack wraparound can never make a stale entry validate a
    recycled register; {!purge_frame} drops a dying frame's entries at
    return, which is what reuse of the physical registers achieves on real
    hardware. *)

type tag

type t

val create : ?size:int -> ?ways:int -> ?paddr_bits:int -> unit -> t

(** Tag for an integer register of a call frame. *)
val int_tag : frame:int -> int -> tag

(** Tag for a floating-point register of a call frame. *)
val fp_tag : frame:int -> int -> tag

(** The partial address stored for a full byte address. *)
val partial : t -> int64 -> int

(** Allocate (or refresh) the entry for [tag] at the given address, as
    ld.a/ld.sa do.  [site] is the IR site id of the arming load, kept for
    per-site event attribution (defaults to [-1], "unknown").  If a valid
    entry had to be evicted for capacity, returns the evicted entry's
    arming site. *)
val insert : ?site:int -> t -> tag -> int64 -> int option

(** Does a valid entry exist for [tag]?  This is ld.c: a hit means the
    register's value is current.  [clear] removes the entry on a hit (the
    .clr completer); [~clear:false] keeps it (.nc, Figure 1(c)). *)
val check : t -> tag -> clear:bool -> bool

(** A retired store: invalidate every entry whose partial address matches.
    Returns how many entries died. *)
val store_probe : t -> int64 -> int

(** Like {!store_probe}, but returns the arming site of each entry that
    died, so the invalidation can be attributed per site. *)
val store_probe_sites : t -> int64 -> int list

(** Remove the entry for one register — the invala.e instruction. *)
val remove : t -> tag -> unit

(** Remove every entry (the invala instruction). *)
val invala_all : t -> unit

(** Drop all entries belonging to a returning call frame. *)
val purge_frame : t -> frame:int -> unit

(** Number of valid entries (for tests and statistics). *)
val occupancy : t -> int
