(** Register Stack Engine model (paper Figure 11).

    Every function allocates its integer register frame at the prologue;
    a fixed pool of physical stacked registers (default 24, a
    scaled-down stand-in for Itanium's 96 to match our scaled-down
    kernels) backs the frames of the whole call stack.  Overflow spills
    the oldest frames to the backing store at one register per cycle; a
    return that re-exposes a spilled frame fills it back.
    The paper's observation — promotion widens frames slightly, so RSE
    traffic can rise by tens of percent while remaining a vanishing
    fraction of execution — reproduces through this model. *)

type t

val create : ?phys_total:int -> unit -> t

(** Allocate a frame of [nregs] registers; returns spill cycles and
    updates the counters. *)
val call : t -> Counters.t -> nregs:int -> int

(** Return from the innermost frame; returns fill cycles. *)
val ret : t -> Counters.t -> int

(** Stacked registers resident in the physical file (would need a spill
    to evict) — the timeline sampler's "rse_dirty". *)
val dirty : t -> int

(** Stacked registers currently saved to the backing store — the
    sampler's "rse_clean". *)
val clean : t -> int
