(* The Advanced Load Address Table (paper section 2.1), modelled on the
   Itanium implementation: 32 entries, 2-way set-associative on partial
   physical address bits, tagged by the target register of the advanced
   load.

   Associativity: configurable.  The default is fully associative with
   round-robin replacement — the Itanium 2 ALAT is a 32-entry fully
   associative CAM; the original Itanium used 2 ways, which the ablation
   benches can request via [ways] to observe set-conflict evictions.

   Semantics:
   - ld.a/ld.sa allocate (or refresh) an entry for (frame, register);
   - every retired store probes the table and invalidates entries whose
     *partial* address matches — partial tags make a store occasionally
     invalidate an unrelated entry (a false collision: a spurious reload,
     never an incorrect result);
   - ld.c succeeds iff a valid entry for its register exists; on failure
     the data is reloaded (.nc re-allocates the entry, .clr does not);
   - invala.e removes the entry for one register.

   One idealization vs hardware: entries are tagged by (call-frame uid,
   register index) rather than physical register number, so register-stack
   wraparound can never cause a stale cross-frame hit.  DESIGN.md records
   this. *)

type tag = { frame : int; reg : int (* int regs 2r, fp regs 2r+1 *) }

type entry = {
  mutable valid : bool;
  mutable tag : tag;
  mutable paddr : int;
  (* IR site id of the advanced load that armed the entry, for per-site
     event attribution (-1 when armed outside the machine, e.g. tests) *)
  mutable site : int;
}

type t = {
  entries : entry array; (* n_sets * ways *)
  n_sets : int;
  ways : int;
  mutable victim : int; (* round-robin replacement cursor *)
  paddr_bits : int;
}

let create ?(size = 32) ?ways ?(paddr_bits = 12) () =
  let ways = match ways with Some w -> w | None -> size in
  let n_sets = max 1 (size / ways) in
  { entries =
      Array.init (n_sets * ways) (fun _ ->
          { valid = false; tag = { frame = 0; reg = 0 }; paddr = 0; site = -1 });
    n_sets; ways; victim = 0; paddr_bits }

let int_tag ~frame r = { frame; reg = 2 * r }
let fp_tag ~frame r = { frame; reg = (2 * r) + 1 }

let partial t (addr : int64) : int =
  Int64.to_int (Int64.shift_right_logical addr 3) land ((1 lsl t.paddr_bits) - 1)

let set_of t paddr = paddr mod t.n_sets

let same_tag a b = a.frame = b.frame && a.reg = b.reg

(* Remove any entry for [tag] (a register can have at most one). *)
let remove t tag =
  Array.iter
    (fun e -> if e.valid && same_tag e.tag tag then e.valid <- false)
    t.entries

(* Allocate an entry for an advanced load.  Returns the arming site of the
   valid entry that had to be evicted for capacity, if any. *)
let insert ?(site = -1) t tag (addr : int64) : int option =
  remove t tag;
  let paddr = partial t addr in
  let set = set_of t paddr in
  let base = set * t.ways in
  (* free way? *)
  let rec find_free i =
    if i >= t.ways then None
    else if not t.entries.(base + i).valid then Some (base + i)
    else find_free (i + 1)
  in
  let slot, evicted =
    match find_free 0 with
    | Some s -> s, None
    | None ->
      let s = base + (t.victim mod t.ways) in
      t.victim <- t.victim + 1;
      s, Some t.entries.(s).site
  in
  let e = t.entries.(slot) in
  e.valid <- true;
  e.tag <- tag;
  e.paddr <- paddr;
  e.site <- site;
  evicted

(* Does a valid entry exist for [tag]?  [clear] removes it on a hit. *)
let check t tag ~clear : bool =
  let hit = ref false in
  Array.iter
    (fun e ->
      if e.valid && same_tag e.tag tag then begin
        hit := true;
        if clear then e.valid <- false
      end)
    t.entries;
  !hit

(* A retired store: invalidate every entry whose partial address matches.
   Returns the arming sites of the entries invalidated (per-site
   attribution charges the invalidation to the load that armed the victim,
   as pfmon's event sampling would). *)
let store_probe_sites t (addr : int64) : int list =
  let paddr = partial t addr in
  let victims = ref [] in
  Array.iter
    (fun e ->
      if e.valid && e.paddr = paddr then begin
        e.valid <- false;
        victims := e.site :: !victims
      end)
    t.entries;
  !victims

let store_probe t (addr : int64) : int = List.length (store_probe_sites t addr)

let invala_all t = Array.iter (fun e -> e.valid <- false) t.entries

(* Drop every entry belonging to a returning call frame.  On real hardware
   the dying frame's stacked registers are re-allocated and any ld.a to
   the recycled register number overwrites the stale entry; purging at
   return is the frame-uid-tagged equivalent (without it, dead entries
   would squat in the table and evict live ones). *)
let purge_frame t ~frame =
  Array.iter
    (fun e -> if e.valid && e.tag.frame = frame then e.valid <- false)
    t.entries

let occupancy t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t.entries
