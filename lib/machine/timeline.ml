(* Machine timeline sampling (schema srp-timeline-v1).

   The counters are end-of-run sums; a timeline gives the Figure-8-style
   narrative a time axis: every [interval] cycles (default 1000) one
   JSON-lines row records the machine's occupancy state — live ALAT
   entries, RSE dirty (resident) vs. clean (backed-store) stacked
   registers, issue-slot utilization and cache misses over the window.
   The machine is event-driven rather than cycle-stepped, so samples are
   taken at the first cycle boundary *at or after* each interval mark
   (a multi-cycle stall lands one row, at its end); for the same reason
   the cache column is misses-per-window, not an instantaneous
   outstanding-miss count — the model has no in-flight state to probe.

   Rows ride the bounded `Trace` sink, so a runaway run truncates with
   the same `{"ev":"truncated","dropped":N}` record as an event trace.
   The sampler only *reads* machine state — enabling it cannot perturb
   a single counter (the differential test pins this). *)

module J = Srp_obs.Json

type t = {
  sink : Srp_obs.Trace.sink;
  interval : int;
  mutable next_at : int; (* first cycle eligible for the next sample *)
  (* previous sample's cumulative values, for the per-window deltas *)
  mutable last_cycle : int;
  mutable last_instrs : int;
  mutable last_l1_misses : int;
  mutable last_l2_misses : int;
}

let issue_width = 6

let create ?(interval = 1000) (sink : Srp_obs.Trace.sink) : t =
  if interval < 1 then
    Fmt.invalid_arg "Timeline.create: interval %d" interval;
  (* header row: lets a reader identify the schema and spacing without
     out-of-band context *)
  Srp_obs.Trace.emit sink ~cycle:0 "timeline.header"
    [ ("schema", J.String "srp-timeline-v1"); ("interval", J.Int interval) ];
  { sink; interval; next_at = interval; last_cycle = 0; last_instrs = 0;
    last_l1_misses = 0; last_l2_misses = 0 }

let row t ~cycle ~alat_live ~rse_dirty ~rse_clean ~instrs ~l1_misses
    ~l2_misses =
  let dcycles = cycle - t.last_cycle in
  let issue_util =
    if dcycles <= 0 then 0.0
    else
      float_of_int (instrs - t.last_instrs)
      /. float_of_int (issue_width * dcycles)
  in
  Srp_obs.Trace.emit t.sink ~cycle "timeline"
    [ ("alat_live", J.Int alat_live);
      ("rse_dirty", J.Int rse_dirty);
      ("rse_clean", J.Int rse_clean);
      ("issue_util", J.Float issue_util);
      ("l1_misses", J.Int (l1_misses - t.last_l1_misses));
      ("l2_misses", J.Int (l2_misses - t.last_l2_misses)) ];
  t.last_cycle <- cycle;
  t.last_instrs <- instrs;
  t.last_l1_misses <- l1_misses;
  t.last_l2_misses <- l2_misses;
  (* next mark strictly ahead of [cycle], on the interval grid *)
  t.next_at <- ((cycle / t.interval) + 1) * t.interval

(* The machine calls this whenever its cycle advances; a row is emitted
   only when the cycle has crossed the next interval mark. *)
let maybe_sample t ~cycle ~alat_live ~rse_dirty ~rse_clean ~instrs
    ~l1_misses ~l2_misses =
  if cycle >= t.next_at then
    row t ~cycle ~alat_live ~rse_dirty ~rse_clean ~instrs ~l1_misses
      ~l2_misses

(* End of run: one unconditional closing row, so short programs (under
   one interval) still produce a timeline. *)
let final t ~cycle ~alat_live ~rse_dirty ~rse_clean ~instrs ~l1_misses
    ~l2_misses =
  row t ~cycle ~alat_live ~rse_dirty ~rse_clean ~instrs ~l1_misses
    ~l2_misses
