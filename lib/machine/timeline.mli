(** Machine timeline sampling (schema [srp-timeline-v1]).

    A bounded periodic sampler: every [interval] cycles one JSON-lines
    row records live ALAT entries, RSE dirty/clean stacked registers,
    issue-slot utilization and per-window cache misses — a time axis
    for the end-of-run counter sums.  Rows ride a {!Srp_obs.Trace}
    sink and share its truncation convention.  Default off; attach via
    [Machine.create ~timeline].

    The machine is event-driven, so a sample lands at the first cycle
    boundary at or after each interval mark, and the cache column is
    misses accumulated over the window (the model tracks no in-flight
    miss state).  The sampler only reads machine state: enabling it
    leaves every counter and program output bit-identical. *)

type t

(** [create ?interval sink] (default interval 1000 cycles) writes a
    header row ([{"ev":"timeline.header","schema":"srp-timeline-v1",
    "interval":N}]) and returns the sampler.  Raises [Invalid_argument]
    if [interval < 1]. *)
val create : ?interval:int -> Srp_obs.Trace.sink -> t

(** Called by the machine when its cycle counter advances; emits a row
    iff [cycle] has crossed the next interval mark. *)
val maybe_sample :
  t -> cycle:int -> alat_live:int -> rse_dirty:int -> rse_clean:int ->
  instrs:int -> l1_misses:int -> l2_misses:int -> unit

(** One unconditional closing row at end of run, so programs shorter
    than one interval still produce a timeline. *)
val final :
  t -> cycle:int -> alat_live:int -> rse_dirty:int -> rse_clean:int ->
  instrs:int -> l1_misses:int -> l2_misses:int -> unit
