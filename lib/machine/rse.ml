(* Register Stack Engine model (paper Figure 11).

   Each function allocates its integer register frame at the prologue; a
   fixed pool of physical stacked registers backs the frames of the whole
   call stack.  When an allocation overflows the physical file, the RSE
   spills the oldest frames' registers to the backing store at one
   register per cycle; when a return re-exposes a spilled frame, the RSE
   fills it back.  rse_cycles is the spill+fill traffic — the paper's
   observation is that promotion grows frames slightly, so rse_cycles can
   rise by tens of percent while remaining a vanishing fraction of total
   cycles.

   The default pool is 24, a scaled-down stand-in for Itanium's 96
   stacked registers: our kernels are similarly scaled-down extracts, and
   at 96 no kernel's call stack ever overflows the file, which would make
   the RSE columns of the experiment tables identically zero.  Tests that
   model the real machine pass ~phys_total:96 explicitly. *)

type frame = { nregs : int; mutable spilled : int (* regs currently in backing store *) }

type t = {
  mutable stack : frame list; (* innermost first *)
  mutable phys_used : int; (* registers of unspilled (parts of) frames *)
  phys_total : int;
}

let create ?(phys_total = 24) () = { stack = []; phys_used = 0; phys_total }

(* Occupancy views for the timeline sampler: dirty = stacked registers
   resident in the physical file (the RSE would have to spill them),
   clean = stacked registers currently saved to the backing store. *)
let dirty t = t.phys_used
let clean t = List.fold_left (fun acc f -> acc + f.spilled) 0 t.stack

(* Allocate a frame of [nregs]; returns cycles spent spilling. *)
let call t (c : Counters.t) ~nregs : int =
  let f = { nregs; spilled = 0 } in
  t.stack <- f :: t.stack;
  t.phys_used <- t.phys_used + nregs;
  if c.Counters.max_stacked_regs < t.phys_used then
    c.Counters.max_stacked_regs <- t.phys_used;
  let spill_cost = ref 0 in
  if t.phys_used > t.phys_total then begin
    (* spill oldest frames until the new frame fits *)
    let rec spill_oldest = function
      | [] -> ()
      | fs ->
        if t.phys_used <= t.phys_total then ()
        else begin
          let oldest = List.nth fs (List.length fs - 1) in
          let resident = oldest.nregs - oldest.spilled in
          if resident = 0 then
            spill_oldest (List.filteri (fun i _ -> i < List.length fs - 1) fs)
          else begin
            let need = t.phys_used - t.phys_total in
            let n = min resident need in
            oldest.spilled <- oldest.spilled + n;
            t.phys_used <- t.phys_used - n;
            spill_cost := !spill_cost + n;
            c.Counters.rse_spilled_regs <- c.Counters.rse_spilled_regs + n;
            if t.phys_used > t.phys_total then
              spill_oldest (List.filteri (fun i _ -> i < List.length fs - 1) fs)
          end
        end
    in
    spill_oldest t.stack
  end;
  c.Counters.rse_cycles <- c.Counters.rse_cycles + !spill_cost;
  !spill_cost

(* Return from the innermost frame; returns cycles spent filling the
   caller's spilled registers. *)
let ret t (c : Counters.t) : int =
  match t.stack with
  | [] -> 0
  | f :: rest ->
    t.phys_used <- t.phys_used - (f.nregs - f.spilled);
    t.stack <- rest;
    let fill_cost =
      match rest with
      | caller :: _ when caller.spilled > 0 ->
        let n = caller.spilled in
        caller.spilled <- 0;
        t.phys_used <- t.phys_used + n;
        c.Counters.rse_filled_regs <- c.Counters.rse_filled_regs + n;
        n
      | _ -> 0
    in
    c.Counters.rse_cycles <- c.Counters.rse_cycles + fill_cost;
    fill_cost
