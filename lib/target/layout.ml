(* Post-regalloc block layout: loop rotation + fall-through chaining.

   The machine predicts conditional branches statically — backward taken,
   forward not taken (machine.ml).  Codegen emits while-loops in source
   order with the test at the top: the loop-head br.cond branches *forward*
   into the body on every iteration, so the predictor flushes the pipeline
   once per iteration of every loop, at every opt level.  This pass
   rearranges blocks after register allocation so the common path agrees
   with the predictor:

   1. Rebuild basic blocks from the resolved, indexed code.
   2. Find natural loops (DFS back edges on the block CFG; chk.a recovery
      edges are real edges here, so recovery blocks count as loop members).
   3. Rotate to test-at-bottom: a loop whose header ends in a br.cond that
      continues the loop on the taken side, and whose back edges are all
      unconditional br, is laid out with the header *after* every other
      member of the loop (usually right after its latch, whose jump then
      dissolves into fall-through).  The entry edge becomes a one-time
      forward guard jump and the header's br.cond turns into a
      backward-taken latch branch — predicted correctly every iteration.
      Multi-block `while (a && b)` heads rotate too, even though both
      br.cond targets stay in the loop.  No instruction is duplicated (a
      duplicated header would double-count per-site load/ALAT events), so
      steady state pays only the 1-cycle taken-branch redirect.
   4. Chain by fall-through: each remaining block prefers its fall-through
      continuation, its unconditional-jump target, or — where not-taken is
      plausibly the common case — the not-taken side of its br.cond as the
      next block, so forward conditional branches fall through (cost 0) on
      the not-taken path instead of paying a redirect.  Inside a loop the
      not-taken side is chained only when it is the side that stays in the
      loop; otherwise the emission order, whose dispatch branches are
      backward and predicted taken, is kept.
   5. Reassemble: drop jumps to the next block, insert jumps where a
      fall-through edge was severed, and patch every branch / chk.a
      recovery target to its new index.

   The pass never touches registers, so it composes with regalloc's ALAT
   pinning; and blocks at or past [body_len] (the chk.a recovery blocks
   codegen appends after the function body) are never moved or chained
   into, preserving the out-of-line recovery placement contract. *)

type stats = { mutable loops_rotated : int; mutable blocks_moved : int }

let run ?stats ~body_len (code : Insn.insn array) : Insn.insn array =
  let n = Array.length code in
  if n = 0 then code
  else begin
    (* --- block boundaries --- *)
    let is_leader = Array.make n false in
    is_leader.(0) <- true;
    let mark t = if t < n then is_leader.(t) <- true in
    let split_after i = if i + 1 < n then is_leader.(i + 1) <- true in
    Array.iteri
      (fun i ins ->
        match ins with
        | Insn.Br { target } ->
          mark target;
          split_after i
        | Insn.Brc { ifso; ifnot; _ } ->
          mark ifso;
          mark ifnot;
          split_after i
        | Insn.Chk_a { recovery; _ } ->
          mark recovery;
          split_after i
        | Insn.Ret _ -> split_after i
        | _ -> ())
      code;
    let nb = Array.fold_left (fun a l -> if l then a + 1 else a) 0 is_leader in
    let start = Array.make nb 0 in
    let block_of = Array.make n 0 in
    let bi = ref (-1) in
    for i = 0 to n - 1 do
      if is_leader.(i) then begin
        incr bi;
        start.(!bi) <- i
      end;
      block_of.(i) <- !bi
    done;
    let bend = Array.init nb (fun b -> if b + 1 < nb then start.(b + 1) else n) in
    (* recovery blocks: everything codegen emitted after the body *)
    let first_recovery =
      let r = ref nb in
      for b = nb - 1 downto 0 do
        if start.(b) >= body_len then r := b
      done;
      !r
    in
    let is_recovery b = b >= first_recovery in
    let last b = code.(bend.(b) - 1) in
    let falls_through b =
      match last b with
      | Insn.Br _ | Insn.Brc _ | Insn.Ret _ -> false
      | _ -> b + 1 < nb
    in
    (* --- block CFG, chk.a recovery edges included --- *)
    let succs b =
      let s = ref [] in
      for i = start.(b) to bend.(b) - 1 do
        match code.(i) with
        | Insn.Chk_a { recovery; _ } -> s := block_of.(recovery) :: !s
        | _ -> ()
      done;
      (match last b with
      | Insn.Br { target } -> s := block_of.(target) :: !s
      | Insn.Brc { ifso; ifnot; _ } ->
        s := block_of.(ifso) :: block_of.(ifnot) :: !s
      | Insn.Ret _ -> ()
      | _ -> if b + 1 < nb then s := (b + 1) :: !s);
      !s
    in
    let succ = Array.init nb succs in
    let pred = Array.make nb [] in
    Array.iteri
      (fun b ss -> List.iter (fun s -> pred.(s) <- b :: pred.(s)) ss)
      succ;
    (* --- back edges: DFS, an edge into a gray node closes a loop --- *)
    let color = Array.make nb 0 in
    let back_edges = ref [] in
    let rec dfs b =
      color.(b) <- 1;
      List.iter
        (fun s ->
          if color.(s) = 0 then dfs s
          else if color.(s) = 1 then back_edges := (b, s) :: !back_edges)
        succ.(b);
      color.(b) <- 2
    in
    dfs 0;
    (* natural loop membership per header: union over its back edges of
       everything that reaches a latch without passing the header *)
    let loops = Hashtbl.create 8 in
    List.iter
      (fun (u, h) ->
        let members, latches =
          match Hashtbl.find_opt loops h with
          | Some x -> x
          | None ->
            let x = (Array.make nb false, ref []) in
            Hashtbl.replace loops h x;
            x
        in
        latches := u :: !latches;
        members.(h) <- true;
        let stack = ref [ u ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | b :: rest ->
            stack := rest;
            if not members.(b) then begin
              members.(b) <- true;
              List.iter (fun p -> stack := p :: !stack) pred.(b)
            end
        done)
      !back_edges;
    (* --- rotation candidates --- *)
    (* A header rotates when its br.cond continues the loop on the taken
       side and every back edge reaches it by an unconditional br (a
       conditional back edge means the loop is already bottom-tested).
       Rotation is purely a placement rule: the header goes after the last
       other member of its loop (the completion rule below), so its taken
       branch — and any in-loop target of its br.cond — becomes backward,
       which the static predictor gets right.  This covers multi-block
       headers too: a short-circuit `while (a && b)` head whose br.cond
       targets both stay in the loop still wants the test at the bottom. *)
    let rotated = Array.make nb false in
    Hashtbl.iter
      (fun h (members, latches) ->
        if h <> 0 && not (is_recovery h) then
          match last h with
          | Insn.Brc { ifso; _ } when members.(block_of.(ifso)) ->
            let br_latch u =
              match last u with
              | Insn.Br { target } -> block_of.(target) = h
              | _ -> false
            in
            if List.for_all br_latch !latches then rotated.(h) <- true
          | _ -> ())
      loops;
    (* completion rule bookkeeping: which rotated headers each block counts
       toward, and how many non-header members each still waits for.
       Recovery-block members are excluded — they are pinned at the end and
       must not hold a header hostage. *)
    let containing = Array.make nb [] in
    let remaining = Array.make nb 0 in
    Hashtbl.iter
      (fun h (members, _) ->
        if rotated.(h) then
          Array.iteri
            (fun b m ->
              if m && b <> h && not (is_recovery b) then begin
                containing.(b) <- h :: containing.(b);
                remaining.(h) <- remaining.(h) + 1
              end)
            members)
      loops;
    (* --- fall-through chaining --- *)
    (* innermost loop per block (smallest member set), for the Ball-Larus
       style loop-branch heuristic below *)
    let loop_size h =
      let members, _ = Hashtbl.find loops h in
      Array.fold_left (fun a m -> if m then a + 1 else a) 0 members
    in
    let innermost = Array.make nb (-1) in
    Hashtbl.iter
      (fun h (members, _) ->
        Array.iteri
          (fun b m ->
            if m then
              let cur = innermost.(b) in
              if cur < 0 || loop_size h < loop_size cur then innermost.(b) <- h)
          members)
      loops;
    (* [t] is pinned after [t-1] when it is entered by fall-through; don't
       steal it into another chain. *)
    let ft_entered t = t > 0 && falls_through (t - 1) in
    let ds b =
      let guard t =
        if t = 0 || is_recovery t || rotated.(t) || ft_entered t then None
        else Some t
      in
      if falls_through b then begin
        let s = b + 1 in
        if is_recovery s || rotated.(s) then None else Some s
      end
      else
        match last b with
        | Insn.Br { target } -> guard block_of.(target)
        | Insn.Brc { ifso; ifnot; _ } -> (
          (* placing the not-taken side next makes the common forward branch
             fall through — but only when not-taken is plausibly the common
             case.  Outside any loop that is the default guess; inside a
             loop the loop-branch heuristic says the in-loop successor is
             the common one, so chain the not-taken side only when it is
             the one staying in the loop (exit-on-true).  When both sides
             stay in the loop the static predictor direction carries the
             information codegen's emission order already encodes (the
             short-circuit dispatch blocks sit after their targets, making
             the common taken branches backward) — keep that order. *)
          match innermost.(b) with
          | -1 -> guard block_of.(ifnot)
          | h ->
            let members, _ = Hashtbl.find loops h in
            if members.(block_of.(ifnot)) && not members.(block_of.(ifso))
            then guard block_of.(ifnot)
            else None)
        | _ -> None
    in
    let placed = Array.make nb false in
    let rev_order = ref [] in
    let place b =
      placed.(b) <- true;
      rev_order := b :: !rev_order;
      List.iter (fun h -> remaining.(h) <- remaining.(h) - 1) containing.(b)
    in
    (* the completion rule: a rotated header is emitted the moment the rest
       of its loop is placed — right after its latch when the latch ends
       the chain, so the latch's back-edge jump dissolves into
       fall-through.  Placing an inner header can complete an outer loop,
       hence the fixpoint. *)
    let flush_completed () =
      let again = ref true in
      while !again do
        again := false;
        for h = 0 to first_recovery - 1 do
          if rotated.(h) && (not placed.(h)) && remaining.(h) = 0 then begin
            place h;
            again := true
          end
        done
      done
    in
    for b0 = 0 to first_recovery - 1 do
      if (not placed.(b0)) && not rotated.(b0) then begin
        let c = ref (Some b0) in
        let continue_ = ref true in
        while !continue_ do
          match !c with
          | Some b when not placed.(b) ->
            place b;
            c := ds b
          | _ -> continue_ := false
        done;
        flush_completed ()
      end
    done;
    (* safety net: loops with unreachable members never complete — place
       whatever is left in emission order *)
    for b = 0 to first_recovery - 1 do
      if not placed.(b) then place b
    done;
    (* recovery blocks stay at the end, in emission order *)
    for b = first_recovery to nb - 1 do
      place b
    done;
    let order = Array.of_list (List.rev !rev_order) in
    (match stats with
    | None -> ()
    | Some s ->
      Array.iter (fun r -> if r then s.loops_rotated <- s.loops_rotated + 1) rotated;
      Array.iteri
        (fun k b -> if k <> b then s.blocks_moved <- s.blocks_moved + 1)
        order);
    (* --- reassemble: fix terminators, then patch targets --- *)
    (* appended jumps carry *original* target indices; the patch pass below
       maps every target through its block's new start *)
    let rev_out = ref [] in
    let newstart = Array.make nb 0 in
    let pos = ref 0 in
    Array.iteri
      (fun k b ->
        newstart.(b) <- !pos;
        let next = if k + 1 < nb then Some order.(k + 1) else None in
        let len = bend.(b) - start.(b) in
        let keep, appended =
          match last b with
          | Insn.Br { target } when next = Some block_of.(target) ->
            (len - 1, []) (* jump to the next block: fall through instead *)
          | _ when falls_through b && next <> Some (b + 1) ->
            (len, [ Insn.Br { target = start.(b + 1) } ]) (* severed edge *)
          | _ -> (len, [])
        in
        for i = start.(b) to start.(b) + keep - 1 do
          rev_out := code.(i) :: !rev_out
        done;
        List.iter (fun j -> rev_out := j :: !rev_out) appended;
        pos := !pos + keep + List.length appended)
      order;
    let out = Array.of_list (List.rev !rev_out) in
    Array.map
      (fun ins ->
        match ins with
        | Insn.Br { target } -> Insn.Br { target = newstart.(block_of.(target)) }
        | Insn.Brc { cond; ifso; ifnot; site } ->
          Insn.Brc
            { cond;
              ifso = newstart.(block_of.(ifso));
              ifnot = newstart.(block_of.(ifnot));
              site }
        | Insn.Chk_a { tag; recovery; site } ->
          Insn.Chk_a { tag; recovery = newstart.(block_of.(recovery)); site }
        | ins -> ins)
      out
  end
