(* Post-regalloc, pre-bundle latency-aware list scheduling.

   The bundler packs instructions in source order, so bundle slots and
   stop bits are spent on an unscheduled stream: a load sits right next
   to its use, the group-split rule inserts a stop, and the machine eats
   the full L1 (or FP) latency as a stall.  This pass reorders each basic
   block before bundling so independent work fills those shadows and
   ld.a/ld.sa hoist toward the top of their block — the access/execute
   decoupling argument applied to the ALAT speculation machinery.

   Scheduling must not change what the program *does*, only when it does
   it, and the differential test harness holds it to bit-identity on
   every non-cycle counter.  Three rules deliver that:

   1. Ordered ops stay ordered.  Every instruction [Insn.is_ordered]
      classifies — loads of all kinds, stores, chk.a, invala.e, alloc,
      calls, prints — keeps its original position *relative to the
      others*: the cache's replacement state, the ALAT's arm/evict/check
      sequence, the heap pointer and the output stream all observe their
      order.  Only pure register compute (movl/mov/alu/falu/fcmp/
      itof/ftoi/sel/nop) moves across them.
   2. Register dependences are edges.  RAW edges are weighted with the
      producer's result latency (the machine's table: L1-hit loads
      [Config.Sched.lat_l1]/[lat_fp], fdiv 30, mul 3, …); WAR and WAW
      edges are order-only.  The ALAT arm→check contract needs no extra
      machinery: a check load or chk.a *uses* its tag register
      (Regalloc.uses_defs), so the RAW edge from the arming ld.a — plus
      rule 1 — pins it behind its arm.
   3. Terminals stay terminal.  Br/Brc/Ret/Chk_a end their block and
      keep their exact pc, so branch targets never need repatching, the
      static predictor's backward/forward geometry is untouched, and
      recovery blocks (whose boundaries are block boundaries here, as in
      layout.ml) are never entered mid-stream.

   Within those constraints a greedy cycle-driven list scheduler issues
   by critical-path height over a mirror of the machine's issue
   resources (6 slots/cycle, 2 memory, 2 FP; ld.c occupies neither,
   matching machine.ml's hit-path dispensation), with
   [Config.Sched.hoist_bonus] added to advanced loads so ld.a/ld.sa win
   ties against equally-critical compute and issue as early as their
   block allows.  Ties break on original index: the pass is a pure,
   deterministic function of the instruction stream. *)

module W = Srp_core.Config.Sched

type stats = {
  mutable blocks : int; (* blocks considered (>= 2 movable insns) *)
  mutable moved : int; (* instructions whose index changed *)
  mutable hoist : int; (* slots of upward motion summed over ld.a/ld.sa *)
}

let issue_width = 6
let mem_per_cycle = 2
let fp_per_cycle = 2

(* Result latency in cycles before a dependent may issue: machine.ml's
   execution table, with loads priced at their L1-hit latency (the
   scheduler cannot know about misses; the common case is what the
   stream should be shaped for).  A check load is priced as a hit — the
   whole point of promotion is that it usually is one. *)
let latency (w : W.t) (ins : Insn.insn) : int =
  match ins with
  | Insn.Alu { op = Insn.Amul; _ } -> 3
  | Insn.Alu { op = Insn.Adiv | Insn.Arem; _ } -> 20
  | Insn.Falu { op = Insn.FAdiv; _ } -> 30
  | Insn.Falu _ -> 4
  | Insn.Fcmp _ -> 2
  | Insn.Itof _ | Insn.Ftoi _ -> 4
  | Insn.Ld { kind = Insn.K_ld_c _; _ } -> 1
  | Insn.Ld { dst = Insn.DFlt _; _ } -> w.W.lat_fp
  | Insn.Ld _ -> w.W.lat_l1
  | _ -> 1

(* Issue-resource classes, mirroring machine.ml's [issue_slot]: loads and
   stores take a memory port except check loads (an ALAT hit never
   touches memory); the FP ports serve FP arithmetic, conversions,
   FP-sourced movs and FP loads. *)
let takes_mem = function
  | Insn.Ld { kind = Insn.K_ld_c _; _ } -> false
  | Insn.Ld _ | Insn.St _ -> true
  | _ -> false

let takes_fp = function
  | Insn.Falu _ | Insn.Fcmp _ | Insn.Itof _ | Insn.Ftoi _ -> true
  | Insn.Mov { src = Insn.SFrg _ | Insn.SFim _; _ } -> true
  | Insn.Ld { kind = Insn.K_ld_c _; _ } -> false
  | Insn.Ld { dst = Insn.DFlt _; _ } -> true
  | _ -> false

(* Exact packing cost (pad nops, stops) of one candidate block order, by
   running the bundler itself over an isolated copy.  Every leader starts
   a fresh bundle, and scheduling never changes control flow, so each
   block executes the same number of times with or without scheduling —
   a block whose scheduled order packs at least as tightly as its source
   order can only shrink the dynamic nop/split bill.  Control-transfer
   targets point outside the block; they are clamped to 0 for the trial
   packing (targets never influence template choice or hazards). *)
let pack_cost (block : Insn.insn array) : int * int =
  let clamped =
    Array.map
      (function
        | Insn.Br _ -> Insn.Br { target = 0 }
        | Insn.Brc { cond; site; _ } ->
          Insn.Brc { cond; ifso = 0; ifnot = 0; site }
        | Insn.Chk_a { tag; site; _ } -> Insn.Chk_a { tag; recovery = 0; site }
        | ins -> ins)
      block
  in
  let st = { Bundle.bundles = 0; nops_added = 0; stops = 0 } in
  ignore (Bundle.run ~stats:st clamped);
  (st.Bundle.nops_added, st.Bundle.stops)

(* Schedule [code[lo, hi)] in place into [out[lo, hi)].  Returns unit;
   [out] must already hold a copy of [code]. *)
let schedule_block (w : W.t) stats (code : Insn.insn array)
    (out : Insn.insn array) lo hi =
  let n = hi - lo in
  let has_term = n > 0 && Insn.is_terminal code.(hi - 1) in
  let nsched = if has_term then n - 1 else n in
  let ins k = code.(lo + k) in
  let lat = Array.init n (fun k -> latency w (ins k)) in
  (* A block of nothing but 1-cycle producers has no latency to hide:
     reordering it can only churn the bundler's packing (more pad nops,
     different stop placement) for zero stall savings, so leave it in
     source order. *)
  let worth = ref false in
  for k = 0 to nsched - 1 do
    if lat.(k) > 1 then worth := true
  done;
  if nsched >= 2 && !worth then begin
    (* --- dependence DAG: edges (j, weight) with source < j --- *)
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    let add_edge i j wt =
      succs.(i) <- (j, wt) :: succs.(i);
      indeg.(j) <- indeg.(j) + 1
    in
    let last_def_i = Hashtbl.create 16 and last_def_f = Hashtbl.create 16 in
    let uses_i = Hashtbl.create 16 and uses_f = Hashtbl.create 16 in
    let last_ordered = ref (-1) in
    for k = 0 to n - 1 do
      let iu, fu, idf, fdf = Regalloc.uses_defs (ins k) in
      let raw defs r =
        match Hashtbl.find_opt defs r with
        | Some d -> add_edge d k lat.(d)
        | None -> ()
      in
      List.iter (raw last_def_i) iu;
      List.iter (raw last_def_f) fu;
      let def defs uses r =
        (* WAW: order after the previous writer *)
        (match Hashtbl.find_opt defs r with
        | Some d -> add_edge d k 0
        | None -> ());
        (* WAR: order after every reader of the previous value *)
        (match Hashtbl.find_opt uses r with
        | Some us -> List.iter (fun u -> if u <> k then add_edge u k 0) us
        | None -> ());
        Hashtbl.replace defs r k;
        Hashtbl.replace uses r []
      in
      List.iter (def last_def_i uses_i) idf;
      List.iter (def last_def_f uses_f) fdf;
      (* record reads (of the pre-def value: after def processing, so a
         self-read like r = r + 1 attaches to the previous generation) *)
      let record uses r =
        let us = Option.value ~default:[] (Hashtbl.find_opt uses r) in
        Hashtbl.replace uses r (k :: us)
      in
      List.iter (record uses_i) iu;
      List.iter (record uses_f) fu;
      if Insn.is_ordered (ins k) then begin
        if !last_ordered >= 0 then add_edge !last_ordered k 0;
        last_ordered := k
      end
    done;
    (* --- critical-path heights (terminal included so the chains feeding
       the branch condition keep their urgency), plus the hoist bonus on
       advanced loads --- *)
    let height = Array.make n 0 in
    for k = n - 1 downto 0 do
      let h =
        List.fold_left
          (fun acc (j, wt) -> max acc (wt + height.(j)))
          lat.(k) succs.(k)
      in
      height.(k) <- (if Insn.is_advanced_load (ins k) then h + w.W.hoist_bonus
                     else h)
    done;
    (* --- greedy cycle-driven issue over the machine's resource mirror --- *)
    let earliest = Array.make n 0 in
    let done_ = Array.make n false in
    let order = Array.make nsched (-1) in
    let placed = ref 0 in
    let time = ref 0 in
    let slots = ref 0 and mems = ref 0 and fps = ref 0 in
    while !placed < nsched do
      (* best ready candidate that fits this cycle's remaining resources *)
      let best = ref (-1) in
      for k = nsched - 1 downto 0 do
        if
          (not done_.(k))
          && indeg.(k) = 0
          && earliest.(k) <= !time
          && !slots < issue_width
          && ((not (takes_mem (ins k))) || !mems < mem_per_cycle)
          && ((not (takes_fp (ins k))) || !fps < fp_per_cycle)
          && (!best < 0 || height.(k) >= height.(!best))
        then best := k
      done;
      match !best with
      | -1 ->
        (* Nothing fits this cycle.  If an already-ready node was only
           blocked by the resource caps, the next cycle frees them; if
           everything ready is waiting on a latency, jump straight to the
           earliest such cycle. *)
        let soonest = ref max_int in
        for k = 0 to nsched - 1 do
          if (not done_.(k)) && indeg.(k) = 0 && earliest.(k) < !soonest then
            soonest := earliest.(k)
        done;
        time := max (!time + 1) !soonest;
        slots := 0;
        mems := 0;
        fps := 0
      | k ->
        done_.(k) <- true;
        order.(!placed) <- k;
        incr placed;
        incr slots;
        if takes_mem (ins k) then incr mems;
        if takes_fp (ins k) then incr fps;
        List.iter
          (fun (j, wt) ->
            indeg.(j) <- indeg.(j) - 1;
            earliest.(j) <- max earliest.(j) (!time + wt))
          succs.(k)
    done;
    (* --- profitability gate: keep the reorder only if it packs at
       least as tightly as the source order.  Latency hiding is worth
       nothing if it costs extra bundles in a hot loop — the dynamic nop
       and split bill scales with the block's execution count, and the
       cost comparison here is per-block exact (pack_cost runs the real
       bundler), so a gated stream can never retire more pad nops than
       the unscheduled one. *)
    let changed = ref false in
    for p = 0 to nsched - 1 do
      if order.(p) <> p then changed := true
    done;
    if !changed then begin
      let cand =
        Array.init n (fun p -> if p < nsched then ins order.(p) else ins p)
      in
      let orig = Array.init n ins in
      let nops_s, stops_s = pack_cost cand in
      let nops_o, stops_o = pack_cost orig in
      if nops_s <= nops_o && stops_s <= stops_o then begin
        stats.blocks <- stats.blocks + 1;
        for p = 0 to nsched - 1 do
          let k = order.(p) in
          out.(lo + p) <- ins k;
          if k <> p then stats.moved <- stats.moved + 1;
          if Insn.is_advanced_load (ins k) && k > p then
            stats.hoist <- stats.hoist + (k - p)
        done
        (* the terminal (if any) already sits at out.(hi - 1) via the copy *)
      end
    end
  end

let run ?stats ?(weights = W.default) (code : Insn.insn array) :
    Insn.insn array =
  let n = Array.length code in
  if n = 0 then code
  else begin
    let st =
      match stats with
      | Some s -> s
      | None -> { blocks = 0; moved = 0; hoist = 0 }
    in
    (* block leaders, exactly layout.ml's rule *)
    let is_leader = Array.make n false in
    is_leader.(0) <- true;
    let mark t = if t < n then is_leader.(t) <- true in
    let split_after i = if i + 1 < n then is_leader.(i + 1) <- true in
    Array.iteri
      (fun i ins ->
        match ins with
        | Insn.Br { target } ->
          mark target;
          split_after i
        | Insn.Brc { ifso; ifnot; _ } ->
          mark ifso;
          mark ifnot;
          split_after i
        | Insn.Chk_a { recovery; _ } ->
          mark recovery;
          split_after i
        | Insn.Ret _ -> split_after i
        | _ -> ())
      code;
    let out = Array.copy code in
    let lo = ref 0 in
    for i = 1 to n do
      if i = n || is_leader.(i) then begin
        schedule_block weights st code out !lo i;
        lo := i
      end
    done;
    out
  end
