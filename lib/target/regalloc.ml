(* Linear-scan register allocation over virtual-register code.

   Instruction selection emits code over an unbounded virtual register file
   (integer and float classes are independent; integer vreg 0 is the stack
   pointer and is pre-colored to physical r0).  This pass computes
   instruction-level liveness with an iterative backward dataflow over the
   indexed-code CFG (fall-through, branch targets, and the chk.a recovery
   edge), condenses each virtual register to one conservative live range
   [first, last], and renames ranges onto a compact physical file with the
   classic linear scan of Poletto & Sarkar.  Conservative single ranges keep
   loop-carried values safe without lifetime holes.

   [pinned] registers are the ALAT-involved temps: the ALAT tags entries by
   (frame, physical register), so the register that armed an entry (ld.a /
   ld.sa) must be the one the check consults, and nothing else may ever be
   renamed onto it — a reused register would let an unrelated value satisfy
   a check.  Pinned vregs are modeled as live for the whole function, which
   both gives them a private physical register and keeps them stable across
   recovery blocks. *)

type input = {
  code : Insn.insn array;
  nivregs : int; (* integer virtual registers; vreg 0 is sp *)
  nfvregs : int;
  live_in : int list; (* integer vregs live at entry (incoming formals) *)
  flive_in : int list;
  pinned : int list; (* integer vregs needing a private physical register *)
  fpinned : int list;
}

type result = {
  code : Insn.insn array;
  nregs : int; (* physical integer registers, sp included *)
  nfregs : int;
  imap : int array; (* int vreg -> physical register, -1 if unused *)
  fmap : int array;
}

(* --- uses / defs --- *)

(* Returns (int uses, float uses, int defs, float defs).  A check load's
   destination counts as a use as well as a def: on a hit the register must
   still hold the armed value, so the value is semantically consumed.  The
   chk.a tag and invala.e tag are pure uses. *)
let uses_defs (ins : Insn.insn) : int list * int list * int list * int list =
  let iu = ref [] and fu = ref [] and idf = ref [] and fdf = ref [] in
  let u = function
    | Insn.SReg r -> iu := r :: !iu
    | Insn.SFrg f -> fu := f :: !fu
    | Insn.SImm _ | Insn.SFim _ -> ()
  in
  let def_dest = function
    | Insn.DInt r -> idf := r :: !idf
    | Insn.DFlt f -> fdf := f :: !fdf
  in
  let use_dest = function
    | Insn.DInt r -> iu := r :: !iu
    | Insn.DFlt f -> fu := f :: !fu
  in
  (match ins with
  | Insn.Movl { dst; _ } | Insn.Gaddr { dst; _ } -> idf := [ dst ]
  | Insn.Mov { dst; src } ->
    u src;
    def_dest dst
  | Insn.Alu { dst; a; b; _ } | Insn.Fcmp { dst; a; b; _ } ->
    u a;
    u b;
    idf := [ dst ]
  | Insn.Falu { dst; a; b; _ } ->
    u a;
    u b;
    fdf := [ dst ]
  | Insn.Itof { dst; src } ->
    u src;
    fdf := [ dst ]
  | Insn.Ftoi { dst; src } ->
    u src;
    idf := [ dst ]
  | Insn.Ld { kind; dst; base; _ } ->
    iu := base :: !iu;
    (match kind with Insn.K_ld_c _ -> use_dest dst | _ -> ());
    def_dest dst
  | Insn.St { src; base; _ } ->
    u src;
    iu := base :: !iu
  | Insn.Chk_a { tag; _ } -> use_dest tag
  | Insn.Invala_e { tag } -> use_dest tag
  | Insn.Sel { dst; cond; if_true; if_false } ->
    iu := cond :: !iu;
    u if_true;
    u if_false;
    def_dest dst
  | Insn.Br _ -> ()
  | Insn.Brc { cond; _ } -> iu := [ cond ]
  | Insn.Call { args; ret; _ } ->
    List.iter u args;
    Option.iter def_dest ret
  | Insn.Ret { value } -> Option.iter u value
  | Insn.Alloc { dst; nbytes; _ } ->
    u nbytes;
    idf := [ dst ]
  | Insn.Print { what; _ } -> u what
  | Insn.Nop -> ());
  (!iu, !fu, !idf, !fdf)

let successors (code : Insn.insn array) pc : int list =
  match code.(pc) with
  | Insn.Br { target } -> [ target ]
  | Insn.Brc { cond = _; ifso; ifnot; site = _ } -> [ ifso; ifnot ]
  | Insn.Ret _ -> []
  | Insn.Chk_a { recovery; _ } -> [ pc + 1; recovery ]
  | _ -> if pc + 1 < Array.length code then [ pc + 1 ] else []

(* --- liveness and live ranges --- *)

(* One conservative closed range [lo, hi] per virtual register, or None for
   a register that never appears.  Float vregs are reported in the second
   array.  Entry-live and pinned vregs are widened as described above. *)
let ranges (inp : input) : (int * int) option array * (int * int) option array
    =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nv = ni + inp.nfvregs in
  let words = (nv + 62) / 63 in
  let live = Array.init n (fun _ -> Array.make (max words 1) 0) in
  let uses = Array.make (max n 1) [] and defs = Array.make (max n 1) [] in
  for pc = 0 to n - 1 do
    let iu, fu, idf, fdf = uses_defs inp.code.(pc) in
    uses.(pc) <- iu @ List.map (fun f -> ni + f) fu;
    defs.(pc) <- idf @ List.map (fun f -> ni + f) fdf
  done;
  let succs = Array.init (max n 1) (fun pc -> if pc < n then successors inp.code pc else []) in
  let tmp = Array.make (max words 1) 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = n - 1 downto 0 do
      Array.fill tmp 0 words 0;
      List.iter
        (fun s ->
          if s >= 0 && s < n then
            let row = live.(s) in
            for w = 0 to words - 1 do
              tmp.(w) <- tmp.(w) lor row.(w)
            done)
        succs.(pc);
      List.iter
        (fun v -> tmp.(v / 63) <- tmp.(v / 63) land lnot (1 lsl (v mod 63)))
        defs.(pc);
      List.iter
        (fun v -> tmp.(v / 63) <- tmp.(v / 63) lor (1 lsl (v mod 63)))
        uses.(pc);
      let row = live.(pc) in
      let diff = ref false in
      for w = 0 to words - 1 do
        if tmp.(w) <> row.(w) then diff := true
      done;
      if !diff then begin
        Array.blit tmp 0 row 0 words;
        changed := true
      end
    done
  done;
  let lo = Array.make (max nv 1) max_int and hi = Array.make (max nv 1) (-1) in
  let touch v pc =
    if pc < lo.(v) then lo.(v) <- pc;
    if pc > hi.(v) then hi.(v) <- pc
  in
  for pc = 0 to n - 1 do
    let row = live.(pc) in
    for w = 0 to words - 1 do
      if row.(w) <> 0 then
        for b = 0 to 62 do
          if row.(w) land (1 lsl b) <> 0 then
            let v = (w * 63) + b in
            if v < nv then touch v pc
        done
    done;
    List.iter (fun v -> touch v pc) uses.(pc);
    List.iter (fun v -> touch v pc) defs.(pc)
  done;
  (* incoming formals are defined "before" instruction 0 *)
  List.iter (fun v -> if hi.(v) >= 0 then touch v 0) inp.live_in;
  List.iter (fun f -> if hi.(ni + f) >= 0 then touch (ni + f) 0) inp.flive_in;
  (* ALAT registers: private for the whole function *)
  let widen v =
    if hi.(v) >= 0 then begin
      lo.(v) <- 0;
      hi.(v) <- max (n - 1) 0
    end
  in
  List.iter widen inp.pinned;
  List.iter (fun f -> widen (ni + f)) inp.fpinned;
  let extract off count =
    Array.init count (fun v ->
        if hi.(off + v) < 0 then None else Some (lo.(off + v), hi.(off + v)))
  in
  (extract 0 ni, extract ni inp.nfvregs)

(* --- linear scan --- *)

(* Allocate one register class.  [reserve0] pre-colors vreg 0 onto physical
   0 and keeps that register out of the pool (the stack pointer). *)
let scan_class ~reserve0 (rngs : (int * int) option array) : int array * int =
  let count = Array.length rngs in
  let map = Array.make (max count 1) (-1) in
  let intervals = ref [] in
  Array.iteri
    (fun v r ->
      match r with
      | Some (l, h) when not (reserve0 && v = 0) -> intervals := (v, l, h) :: !intervals
      | _ -> ())
    rngs;
  let intervals =
    List.sort
      (fun (v1, l1, _) (v2, l2, _) ->
        if l1 <> l2 then Int.compare l1 l2 else Int.compare v1 v2)
      !intervals
  in
  let next = ref (if reserve0 then 1 else 0) in
  if reserve0 && count > 0 then map.(0) <- 0;
  let free = ref [] (* ascending *) in
  let active = ref [] (* (end, phys) *) in
  let rec insert_sorted p = function
    | [] -> [ p ]
    | q :: rest as l -> if p < q then p :: l else q :: insert_sorted p rest
  in
  List.iter
    (fun (v, l, h) ->
      let still, expired = List.partition (fun (e, _) -> e >= l) !active in
      active := still;
      List.iter (fun (_, p) -> free := insert_sorted p !free) expired;
      let p =
        match !free with
        | p :: rest ->
          free := rest;
          p
        | [] ->
          let p = !next in
          incr next;
          p
      in
      map.(v) <- p;
      active := (h, p) :: !active)
    intervals;
  (map, !next)

(* --- rewriting --- *)

let rewrite (code : Insn.insn array) (imap : int array) (fmap : int array) :
    Insn.insn array =
  let ir r = imap.(r) in
  let s = function
    | Insn.SReg r -> Insn.SReg (ir r)
    | Insn.SFrg f -> Insn.SFrg fmap.(f)
    | (Insn.SImm _ | Insn.SFim _) as x -> x
  in
  let d = function
    | Insn.DInt r -> Insn.DInt (ir r)
    | Insn.DFlt f -> Insn.DFlt fmap.(f)
  in
  Array.map
    (fun ins ->
      match ins with
      | Insn.Movl { dst; imm } -> Insn.Movl { dst = ir dst; imm }
      | Insn.Gaddr { dst; sym } -> Insn.Gaddr { dst = ir dst; sym }
      | Insn.Mov { dst; src } -> Insn.Mov { dst = d dst; src = s src }
      | Insn.Alu { op; dst; a; b } ->
        Insn.Alu { op; dst = ir dst; a = s a; b = s b }
      | Insn.Falu { op; dst; a; b } ->
        Insn.Falu { op; dst = fmap.(dst); a = s a; b = s b }
      | Insn.Fcmp { op; dst; a; b } ->
        Insn.Fcmp { op; dst = ir dst; a = s a; b = s b }
      | Insn.Itof { dst; src } -> Insn.Itof { dst = fmap.(dst); src = s src }
      | Insn.Ftoi { dst; src } -> Insn.Ftoi { dst = ir dst; src = s src }
      | Insn.Ld { kind; dst; base; site } ->
        Insn.Ld { kind; dst = d dst; base = ir base; site }
      | Insn.St { src; base; site } ->
        Insn.St { src = s src; base = ir base; site }
      | Insn.Chk_a { tag; recovery; site } ->
        Insn.Chk_a { tag = d tag; recovery; site }
      | Insn.Invala_e { tag } -> Insn.Invala_e { tag = d tag }
      | Insn.Sel { dst; cond; if_true; if_false } ->
        Insn.Sel
          { dst = d dst; cond = ir cond; if_true = s if_true;
            if_false = s if_false }
      | Insn.Br _ as b -> b
      | Insn.Brc { cond; ifso; ifnot; site } ->
        Insn.Brc { cond = ir cond; ifso; ifnot; site }
      | Insn.Call { callee; args; ret } ->
        Insn.Call { callee; args = List.map s args; ret = Option.map d ret }
      | Insn.Ret { value } -> Insn.Ret { value = Option.map s value }
      | Insn.Alloc { dst; nbytes; site } ->
        Insn.Alloc { dst = ir dst; nbytes = s nbytes; site }
      | Insn.Print { what; as_float } ->
        Insn.Print { what = s what; as_float }
      | Insn.Nop -> Insn.Nop)
    code

let run (inp : input) : result =
  let irngs, frngs = ranges inp in
  let imap, nregs = scan_class ~reserve0:true irngs in
  let fmap, nfregs = scan_class ~reserve0:false frngs in
  { code = rewrite inp.code imap fmap;
    nregs = max nregs 1 (* sp exists even in a function with no int regs *);
    nfregs;
    imap;
    fmap }
