(* Hole-aware linear-scan register allocation with live-range splitting.

   Instruction selection emits code over an unbounded virtual register file
   (integer and float classes are independent; integer vreg 0 is the stack
   pointer and is pre-colored to physical r0).  The allocator:

   1. computes instruction-level liveness with an iterative backward
      dataflow over the indexed-code CFG (fall-through, branch targets and
      the chk.a recovery edge);
   2. keeps the per-instruction bitsets and represents every virtual
      register as an ordered list of disjoint *subranges* (maximal runs of
      program points where the value is live-in or being defined) — the
      gaps between them are Poletto & Sarkar's lifetime holes;
   3. partitions each plain vreg's subranges into *webs*: connected
      components under the CFG edges that carry the value.  Distinct webs
      exchange no dataflow, so they are independent allocation entities
      and may land in different physical registers with zero copies (a
      free split);
   4. runs a hole-aware first-fit scan: a physical register holds any set
      of entities whose subranges do not overlap, so two vregs share a
      register whenever their subranges interleave;
   5. under register-cap pressure it splits the overflowing entity at its
      hole boundaries: the value gets a frame slot, every def is followed
      by a store to the slot, and each subrange individually gets a
      second chance at the remaining holes (with a reload at its head
      when the value flows in) — subranges that fit nowhere stay
      memory-resident and are accessed through reserved scratch
      registers.  Spill slots are colored like registers, so
      non-overlapping spilled ranges share one slot.

   Soundness of hole packing: a subrange covers every pc where the value
   is live-in or defined, so on any *executed* path from a def of v to a
   use of v the register holds v at every step — a second entity placed
   in a linear-order hole is never live (and so never written) on such a
   path.  Subrange heads that are live-in (value arriving over a branch
   edge) are only reachable from pcs inside the same web, because a
   fall-through predecessor with the value live-out would itself be busy
   and hence merge into the same subrange.

   [pinned] registers are the ALAT-involved temps: the ALAT tags entries
   by (frame, physical register), so the register that armed an entry
   (ld.a / ld.sa) must be the one the check consults.  Pinned vregs are
   live from the arming load to their last check/invalidate — not the
   whole function, as the seed allocator modeled them ([pin_whole]
   restores that for comparison).  They are never split or spilled.  Two
   pinned vregs may share a physical register when their subranges are
   disjoint: while a check of temp T is still pending, the check's tag
   use keeps T live — hence busy — at every intervening pc, so the
   overlap test already forbids any other temp from arming (and thus
   re-tagging) the shared register before T's check retires; sequential
   arm/check/arm reuse of one tag is exactly how ALAT entries recycle.
   Plain values may likewise live in a pinned register's holes — register
   writes never touch the ALAT, and no check of the pinned temp is live
   across the hole. *)

type input = {
  code : Insn.insn array;
  nivregs : int; (* integer virtual registers; vreg 0 is sp *)
  nfvregs : int;
  live_in : int list; (* integer vregs live at entry (incoming formals) *)
  flive_in : int list;
  pinned : int list; (* integer vregs needing ALAT tag stability *)
  fpinned : int list;
  spill_base : int; (* frame offset where spill slots may be placed *)
}

type mode =
  | Closed (* one conservative interval per vreg, no splitting *)
  | Holes (* subranges + webs + second-chance splitting *)

type policy = {
  mode : mode;
  cap_int : int; (* allocatable int registers, sp included (Holes mode) *)
  cap_fp : int;
  pin_whole : bool; (* seed modeling: pinned live for the whole function *)
}

(* 96 stacked integer registers is the IA-64 frame ceiling; the float cap
   mirrors it.  Pinned and entry-live values may exceed the cap (they can
   never be spilled), as do the reserved spill scratch registers. *)
let default_policy =
  { mode = Holes; cap_int = 96; cap_fp = 96; pin_whole = false }

(* The --no-split ablation reproduces the seed allocator exactly: one
   conservative closed interval per vreg AND whole-function pinned ranges,
   so A/B runs measure the full upgrade, not half of it. *)
let closed_policy = { default_policy with mode = Closed; pin_whole = true }

type ra_stats = {
  subranges : int; (* live subranges across both classes *)
  webs : int; (* allocation entities (webs + pinned ranges) *)
  splits_inserted : int; (* zero-copy web splits + spill-time splits *)
  spilled_webs : int;
  spill_slots : int;
  reloads : int; (* reload instructions inserted *)
  spill_stores : int; (* store instructions inserted *)
  remat_webs : int; (* entities recomputed at use instead of residing *)
  remat_uses : int; (* rematerialization instructions inserted *)
}

type result = {
  code : Insn.insn array;
  nregs : int; (* physical integer registers, sp + scratch included *)
  nfregs : int;
  imap : int array; (* int vreg -> entry-point physical register, -1 *)
  fmap : int array;
  new_index : int array; (* old pc -> new pc (length n+1; last = length) *)
  spill_bytes : int; (* frame bytes added for spill slots *)
  stats : ra_stats;
  iassign : (int * int * int) list array; (* per vreg: (lo, hi, phys|-1) *)
  fassign : (int * int * int) list array;
}

(* --- uses / defs --- *)

(* Returns (int uses, float uses, int defs, float defs).  A check load's
   destination counts as a use as well as a def: on a hit the register must
   still hold the armed value, so the value is semantically consumed.  The
   chk.a tag and invala.e tag are pure uses. *)
let uses_defs (ins : Insn.insn) : int list * int list * int list * int list =
  let iu = ref [] and fu = ref [] and idf = ref [] and fdf = ref [] in
  let u = function
    | Insn.SReg r -> iu := r :: !iu
    | Insn.SFrg f -> fu := f :: !fu
    | Insn.SImm _ | Insn.SFim _ -> ()
  in
  let def_dest = function
    | Insn.DInt r -> idf := r :: !idf
    | Insn.DFlt f -> fdf := f :: !fdf
  in
  let use_dest = function
    | Insn.DInt r -> iu := r :: !iu
    | Insn.DFlt f -> fu := f :: !fu
  in
  (match ins with
  | Insn.Movl { dst; _ } | Insn.Gaddr { dst; _ } -> idf := [ dst ]
  | Insn.Mov { dst; src } ->
    u src;
    def_dest dst
  | Insn.Alu { dst; a; b; _ } | Insn.Fcmp { dst; a; b; _ } ->
    u a;
    u b;
    idf := [ dst ]
  | Insn.Falu { dst; a; b; _ } ->
    u a;
    u b;
    fdf := [ dst ]
  | Insn.Itof { dst; src } ->
    u src;
    fdf := [ dst ]
  | Insn.Ftoi { dst; src } ->
    u src;
    idf := [ dst ]
  | Insn.Ld { kind; dst; base; _ } ->
    iu := base :: !iu;
    (match kind with Insn.K_ld_c _ -> use_dest dst | _ -> ());
    def_dest dst
  | Insn.St { src; base; _ } ->
    u src;
    iu := base :: !iu
  | Insn.Chk_a { tag; _ } -> use_dest tag
  | Insn.Invala_e { tag } -> use_dest tag
  | Insn.Sel { dst; cond; if_true; if_false } ->
    iu := cond :: !iu;
    u if_true;
    u if_false;
    def_dest dst
  | Insn.Br _ -> ()
  | Insn.Brc { cond; _ } -> iu := [ cond ]
  | Insn.Call { args; ret; _ } ->
    List.iter u args;
    Option.iter def_dest ret
  | Insn.Ret { value } -> Option.iter u value
  | Insn.Alloc { dst; nbytes; _ } ->
    u nbytes;
    idf := [ dst ]
  | Insn.Print { what; _ } -> u what
  | Insn.Nop -> ());
  (!iu, !fu, !idf, !fdf)

let successors (code : Insn.insn array) pc : int list =
  match code.(pc) with
  | Insn.Br { target } -> [ target ]
  | Insn.Brc { cond = _; ifso; ifnot; site = _ } -> [ ifso; ifnot ]
  | Insn.Ret _ -> []
  | Insn.Chk_a { recovery; _ } -> [ pc + 1; recovery ]
  | _ -> if pc + 1 < Array.length code then [ pc + 1 ] else []

(* --- liveness --- *)

let bit row v = row.(v / 63) land (1 lsl (v mod 63)) <> 0
let setbit row v = row.(v / 63) <- row.(v / 63) lor (1 lsl (v mod 63))

(* Per-pc live-in bitsets over the combined vreg index space (float vregs
   offset by nivregs), plus the per-pc use/def lists. *)
let compute_liveness (inp : input) :
    int array array * int list array * int list array * int =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nv = ni + inp.nfvregs in
  let words = max ((nv + 62) / 63) 1 in
  let uses = Array.make (max n 1) [] and defs = Array.make (max n 1) [] in
  for pc = 0 to n - 1 do
    let iu, fu, idf, fdf = uses_defs inp.code.(pc) in
    uses.(pc) <- iu @ List.map (fun f -> ni + f) fu;
    defs.(pc) <- idf @ List.map (fun f -> ni + f) fdf
  done;
  let live = Array.init (max n 1) (fun _ -> Array.make words 0) in
  let succs =
    Array.init (max n 1) (fun pc ->
        if pc < n then successors inp.code pc else [])
  in
  let tmp = Array.make words 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = n - 1 downto 0 do
      Array.fill tmp 0 words 0;
      List.iter
        (fun s ->
          if s >= 0 && s < n then
            let row = live.(s) in
            for w = 0 to words - 1 do
              tmp.(w) <- tmp.(w) lor row.(w)
            done)
        succs.(pc);
      List.iter
        (fun v -> tmp.(v / 63) <- tmp.(v / 63) land lnot (1 lsl (v mod 63)))
        defs.(pc);
      List.iter (fun v -> setbit tmp v) uses.(pc);
      let row = live.(pc) in
      let diff = ref false in
      for w = 0 to words - 1 do
        if tmp.(w) <> row.(w) then diff := true
      done;
      if !diff then begin
        Array.blit tmp 0 row 0 words;
        changed := true
      end
    done
  done;
  (live, uses, defs, words)

(* [busy]: live-in plus the defs of the instruction itself — the program
   points where the vreg occupies its register.  Entry-live vregs (formals)
   are busy at 0: the argument arrival is their def. *)
let busy_rows (inp : input) live uses defs words =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nv = ni + inp.nfvregs in
  let busy =
    Array.init (max n 1) (fun pc ->
        if pc < Array.length live then Array.copy live.(pc)
        else Array.make words 0)
  in
  for pc = 0 to n - 1 do
    List.iter (fun v -> setbit busy.(pc) v) defs.(pc)
  done;
  let appears = Array.make (max nv 1) false in
  Array.iter (List.iter (fun v -> appears.(v) <- true)) uses;
  Array.iter (List.iter (fun v -> appears.(v) <- true)) defs;
  if n > 0 then begin
    List.iter (fun v -> if appears.(v) then setbit busy.(0) v) inp.live_in;
    List.iter
      (fun f -> if appears.(ni + f) then setbit busy.(0) (ni + f))
      inp.flive_in
  end;
  busy

(* Maximal runs of busy program points, per combined vreg, ascending. *)
let subranges_of busy n nv : (int * int) list array =
  let subs = Array.make (max nv 1) [] in
  for pc = 0 to n - 1 do
    let row = busy.(pc) in
    Array.iteri
      (fun w word ->
        if word <> 0 then
          for b = 0 to 62 do
            if word land (1 lsl b) <> 0 then begin
              let v = (w * 63) + b in
              if v < nv then
                match subs.(v) with
                | (lo, hi) :: rest when hi = pc - 1 -> subs.(v) <- (lo, pc) :: rest
                | l -> subs.(v) <- (pc, pc) :: l
            end
          done)
      row
  done;
  Array.map List.rev subs

(* Busy-at-pc boolean matrices (int, float) — ground truth for the
   interference property tests, straight from the liveness bitsets. *)
let live_matrix (inp : input) : bool array array * bool array array =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let live, uses, defs, words = compute_liveness inp in
  let busy = busy_rows inp live uses defs words in
  ( Array.init (max n 1) (fun pc -> Array.init (max ni 1) (fun v -> v < ni && bit busy.(pc) v)),
    Array.init (max n 1) (fun pc ->
        Array.init (max inp.nfvregs 1) (fun f -> f < inp.nfvregs && bit busy.(pc) (ni + f))) )

(* One conservative closed range [lo, hi] per virtual register, or None for
   a register that never appears (the Closed-mode view; pinned vregs are
   narrowed to their real extent, not widened). *)
let ranges (inp : input) : (int * int) option array * (int * int) option array
    =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nv = ni + inp.nfvregs in
  let live, uses, defs, words = compute_liveness inp in
  let busy = busy_rows inp live uses defs words in
  let subs = subranges_of busy n nv in
  let condense v =
    match subs.(v) with
    | [] -> None
    | (lo, _) :: _ as l ->
      let hi = List.fold_left (fun a (_, h) -> max a h) lo l in
      Some (lo, hi)
  in
  ( Array.init (max ni 1) (fun v -> if v < ni then condense v else None),
    Array.init (max inp.nfvregs 1) (fun f ->
        if f < inp.nfvregs then condense (ni + f) else None) )

(* --- allocation entities --- *)

type piece = {
  p_lo : int;
  p_hi : int;
  mutable p_reg : int; (* physical register; -1 = memory-resident *)
}

type entity = {
  e_vreg : int; (* combined index *)
  e_pieces : piece list; (* ascending, disjoint *)
  e_pinned : bool;
  e_nospill : bool; (* pinned and entry-live values never spill *)
  mutable e_remat : Insn.insn option;
      (* single pure def (sp+imm, global address, constant): instead of
         opening a register, recompute into a scratch at each use *)
  mutable e_spilled : bool;
  mutable e_slot : int;
}

let build_entities (inp : input) ~(policy : policy) live subs : entity list =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nv = ni + inp.nfvregs in
  let pinned = Array.make (max nv 1) false in
  List.iter (fun v -> pinned.(v) <- true) inp.pinned;
  List.iter (fun f -> pinned.(ni + f) <- true) inp.fpinned;
  let entry = Array.make (max nv 1) false in
  List.iter (fun v -> entry.(v) <- true) inp.live_in;
  List.iter (fun f -> entry.(ni + f) <- true) inp.flive_in;
  let subs =
    if not policy.pin_whole then subs
    else
      Array.mapi
        (fun v l -> if pinned.(v) && l <> [] && n > 0 then [ (0, n - 1) ] else l)
        subs
  in
  let subs =
    match policy.mode with
    | Holes -> subs
    | Closed ->
      Array.map
        (function
          | [] -> []
          | (lo, _) :: _ as l ->
            let hi = List.fold_left (fun a (_, h) -> max a h) lo l in
            [ (lo, hi) ])
        subs
  in
  let parr = Array.map Array.of_list subs in
  (* webs: union-find over (vreg, subrange) pairs, connected by CFG edges
     that carry the value across a linear-order discontinuity *)
  let base = Array.make (nv + 1) 0 in
  for v = 0 to nv - 1 do
    base.(v + 1) <- base.(v) + Array.length parr.(v)
  done;
  let uf = Array.init (max base.(nv) 1) (fun i -> i) in
  let rec find i = if uf.(i) = i then i else begin
      let r = find uf.(i) in
      uf.(i) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then uf.(max ra rb) <- min ra rb
  in
  let piece_idx v pc =
    let a = parr.(v) in
    let rec go lo hi =
      if lo > hi then -1
      else
        let m = (lo + hi) / 2 in
        let l, h = a.(m) in
        if pc < l then go lo (m - 1)
        else if pc > h then go (m + 1) hi
        else m
    in
    go 0 (Array.length a - 1)
  in
  (match policy.mode with
  | Closed -> ()
  | Holes ->
    for pc = 0 to n - 1 do
      List.iter
        (fun s ->
          (* fall-through edges stay inside one subrange by construction *)
          if s >= 0 && s < n && s <> pc + 1 then
            Array.iteri
              (fun w word ->
                if word <> 0 then
                  for b = 0 to 62 do
                    if word land (1 lsl b) <> 0 then begin
                      let v = (w * 63) + b in
                      if v < nv && v <> 0 && not pinned.(v) then begin
                        let a = piece_idx v pc and c = piece_idx v s in
                        if a >= 0 && c >= 0 then
                          union (base.(v) + a) (base.(v) + c)
                      end
                    end
                  done)
              live.(s))
        (successors inp.code pc)
    done);
  let ents = ref [] in
  for v = nv - 1 downto 0 do
    let ps = parr.(v) in
    if Array.length ps > 0 && not (v = 0 && ni > 0) then
      if pinned.(v) || policy.mode = Closed then
        ents :=
          { e_vreg = v;
            e_pieces =
              Array.to_list
                (Array.map (fun (l, h) -> { p_lo = l; p_hi = h; p_reg = -1 }) ps);
            e_pinned = pinned.(v);
            e_nospill = pinned.(v) || entry.(v);
            e_remat = None;
            e_spilled = false;
            e_slot = -1 }
          :: !ents
      else begin
        let tbl = Hashtbl.create 8 in
        Array.iteri
          (fun i (l, h) ->
            let r = find (base.(v) + i) in
            let cur = Option.value (Hashtbl.find_opt tbl r) ~default:[] in
            Hashtbl.replace tbl r ({ p_lo = l; p_hi = h; p_reg = -1 } :: cur))
          ps;
        let groups = Hashtbl.fold (fun _ l acc -> List.rev l :: acc) tbl [] in
        let groups =
          List.sort
            (fun a b -> compare (List.hd a).p_lo (List.hd b).p_lo)
            groups
        in
        List.iter
          (fun pieces ->
            ents :=
              { e_vreg = v; e_pieces = pieces; e_pinned = false;
                e_nospill = entry.(v); e_remat = None; e_spilled = false;
                e_slot = -1 }
              :: !ents)
          (List.rev groups)
      end
  done;
  List.sort
    (fun a b ->
      let la = (List.hd a.e_pieces).p_lo and lb = (List.hd b.e_pieces).p_lo in
      if la <> lb then compare la lb else compare a.e_vreg b.e_vreg)
    !ents

(* --- hole-aware first-fit scan --- *)

let rec overlaps a b =
  match (a, b) with
  | [], _ | _, [] -> false
  | (al, ah) :: at, (bl, bh) :: bt ->
    if ah < bl then overlaps at b
    else if bh < al then overlaps a bt
    else true

let rec merge_occ a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((al, _) as x) :: at, ((bl, _) as y) :: bt ->
    if al <= bl then x :: merge_occ at b else y :: merge_occ a bt

(* Allocate one class.  [reserve0] pre-colors vreg 0 onto physical 0 and
   keeps that register out of the pool (the stack pointer).  Returns the
   used register count and the spilled entities in allocation order.
   Pinned and entry-live entities may open registers beyond the cap; when
   [allow_spill] is false (Closed mode) everything may.

   [remat_limit] sizes the file by the values that must live in
   registers: once that many are open, a rematerializable entity that
   fits no hole is recomputed at each use instead of opening another
   register — demand reduction with zero memory traffic. *)
let allocate_class ~reserve0 ~cap ~allow_spill ~remat_limit
    (ents : entity list) : int * entity list =
  let max_regs = cap + List.length ents + 2 in
  let occ = Array.make max_regs [] in
  let count = ref (if reserve0 then 1 else 0) in
  let first = if reserve0 then 1 else 0 in
  let spilled = ref [] in
  let spans e = List.map (fun p -> (p.p_lo, p.p_hi)) e.e_pieces in
  let assign e r =
    e.e_remat <- None;
    List.iter (fun p -> p.p_reg <- r) e.e_pieces;
    occ.(r) <- merge_occ (spans e) occ.(r)
  in
  List.iter
    (fun e ->
      let ps = spans e in
      let rec try_fit r =
        if r >= !count then None
        else if overlaps ps occ.(r) then try_fit (r + 1)
        else Some r
      in
      match try_fit first with
      | Some r -> assign e r
      | None ->
        if e.e_remat <> None && allow_spill && !count >= remat_limit then
          (* every piece stays register-free; uses recompute the value *)
          List.iter (fun p -> p.p_reg <- -1) e.e_pieces
        else if !count < cap || (not allow_spill) || e.e_nospill then begin
          let r = !count in
          incr count;
          assign e r
        end
        else begin
          (* split at hole boundaries: the value gets a frame slot and each
             subrange gets a second chance at the remaining holes *)
          e.e_spilled <- true;
          spilled := e :: !spilled;
          List.iter
            (fun p ->
              let rec try2 r =
                if r >= !count then None
                else if overlaps [ (p.p_lo, p.p_hi) ] occ.(r) then try2 (r + 1)
                else Some r
              in
              match try2 first with
              | Some r ->
                p.p_reg <- r;
                occ.(r) <- merge_occ [ (p.p_lo, p.p_hi) ] occ.(r)
              | None -> p.p_reg <- -1)
            e.e_pieces
        end)
    ents;
  (!count, List.rev !spilled)

(* First-fit slot coloring over the condensed spans of spilled entities:
   non-overlapping spilled ranges share one frame slot. *)
let color_slots (spilled : entity list) : int =
  let n = List.length spilled in
  let occ = Array.make (max n 1) [] in
  let used = ref 0 in
  List.iter
    (fun e ->
      let lo = (List.hd e.e_pieces).p_lo in
      let hi = List.fold_left (fun a p -> max a p.p_hi) lo e.e_pieces in
      let rec go s =
        if s < !used && overlaps [ (lo, hi) ] occ.(s) then go (s + 1) else s
      in
      let s = go 0 in
      if s >= !used then used := s + 1;
      e.e_slot <- s;
      occ.(s) <- merge_occ [ (lo, hi) ] occ.(s))
    spilled;
  !used

(* --- rewrite --- *)

(* Spill traffic carries the synthetic site -1, like codegen's own formal
   spills: per-site attribution sums stay equal to the global counters. *)
let spill_site = -1

(* remat candidacy: a plain entity whose only def recomputes a value
   that is constant within the function (frame address, global address,
   immediate) — safe to re-emit at any later pc *)
let mark_remat (inp : input) (defs : int list array) (ents : entity list) :
    unit =
  let ni = inp.nivregs in
  List.iter
    (fun e ->
      if (not e.e_nospill) && e.e_vreg < ni then begin
        let v = e.e_vreg in
        let dpcs =
          List.concat_map
            (fun p ->
              let l = ref [] in
              for pc = p.p_lo to p.p_hi do
                if List.mem v defs.(pc) then l := pc :: !l
              done;
              !l)
            e.e_pieces
        in
        match dpcs with
        | [ d ] -> (
          match inp.code.(d) with
          | Insn.Alu { op = Insn.Aadd; dst; a = Insn.SReg 0; b = Insn.SImm _ }
            when dst = v ->
            e.e_remat <- Some inp.code.(d)
          | Insn.Gaddr { dst; _ } when dst = v -> e.e_remat <- Some inp.code.(d)
          | Insn.Movl { dst; _ } when dst = v -> e.e_remat <- Some inp.code.(d)
          | _ -> ())
        | _ -> ()
      end)
    ents

(* the must-reside peak: pressure from entities that cannot remat.
   The file is sized by this; remat candidates above it recompute. *)
let peak_of ~n (ents0 : entity list) : int =
  let peak = ref 0 in
  for pc = 0 to n - 1 do
    let c = ref 0 in
    List.iter
      (fun e ->
        if
          e.e_remat = None
          && List.exists (fun p -> p.p_lo <= pc && pc <= p.p_hi) e.e_pieces
        then incr c)
      ents0;
    if !c > !peak then peak := !c
  done;
  !peak

let run ?(policy = default_policy) (inp : input) : result =
  let n = Array.length inp.code in
  let ni = inp.nivregs in
  let nf = inp.nfvregs in
  let nv = ni + nf in
  let live, uses, defs, words = compute_liveness inp in
  let busy = busy_rows inp live uses defs words in
  let subs = subranges_of busy n nv in
  let ents = build_entities inp ~policy live subs in
  let ients = List.filter (fun e -> e.e_vreg < ni) ents in
  let fents = List.filter (fun e -> e.e_vreg >= ni) ents in
  let allow_spill = policy.mode = Holes in
  if allow_spill then mark_remat inp defs ents;
  let ipeak = 1 + peak_of ~n ients (* + the reserved stack pointer *) in
  let fpeak = peak_of ~n fents in
  let icount, ispilled =
    allocate_class ~reserve0:true ~cap:(max policy.cap_int 1) ~allow_spill
      ~remat_limit:(min (max policy.cap_int 1) ipeak)
      ients
  in
  let fcount, fspilled =
    allocate_class ~reserve0:false ~cap:(max policy.cap_fp 0) ~allow_spill
      ~remat_limit:(min (max policy.cap_fp 0) fpeak)
      fents
  in
  let spilled = ispilled @ fspilled in
  let nslots = color_slots spilled in
  let slot_off e = inp.spill_base + (8 * e.e_slot) in
  (* per-vreg location lists, ascending by lo *)
  let vloc : (piece * int * Insn.insn option) list array =
    Array.make (max nv 1) []
  in
  List.iter
    (fun e ->
      let off = if e.e_spilled then slot_off e else -1 in
      List.iter
        (fun p -> vloc.(e.e_vreg) <- (p, off, e.e_remat) :: vloc.(e.e_vreg))
        e.e_pieces)
    ents;
  Array.iteri
    (fun v l ->
      vloc.(v) <-
        List.sort (fun (a, _, _) (b, _, _) -> compare a.p_lo b.p_lo) l)
    vloc;
  if ni > 0 then
    vloc.(0) <- [ ({ p_lo = 0; p_hi = max (n - 1) 0; p_reg = 0 }, -1, None) ];
  let loc_at v pc =
    match
      List.find_opt (fun (p, _, _) -> p.p_lo <= pc && pc <= p.p_hi) vloc.(v)
    with
    | Some x -> x
    | None -> Fmt.invalid_arg "Regalloc: vreg %d has no location at pc %d" v pc
  in
  let preg_at v pc =
    let p, _, _ = loc_at v pc in
    p.p_reg
  in
  (* Reloads re-establishing a register-resident piece of a spilled value.
     The slot is current everywhere (every def writes through), so a reload
     is needed exactly where control can enter the piece with the value
     live but not yet in the piece's register: the piece head, and any
     branch target inside the piece — a jump there may come from a region
     where the value sat in memory or in another piece's register. *)
  let jump_target = Array.make (max n 1) false in
  Array.iter
    (fun ins ->
      List.iter
        (fun t -> if t >= 0 && t < n then jump_target.(t) <- true)
        (match ins with
        | Insn.Br { target } -> [ target ]
        | Insn.Brc { ifso; ifnot; _ } -> [ ifso; ifnot ]
        | Insn.Chk_a { recovery; _ } -> [ recovery ]
        | _ -> []))
    inp.code;
  let head_reloads = Array.make (max n 1) [] in
  List.iter
    (fun e ->
      if e.e_spilled then
        List.iter
          (fun p ->
            if p.p_reg >= 0 then
              for pc = p.p_lo to p.p_hi do
                if
                  (pc = p.p_lo || jump_target.(pc))
                  && bit live.(pc) e.e_vreg
                then
                  head_reloads.(pc) <-
                    head_reloads.(pc) @ [ (e.e_vreg, p.p_reg, slot_off e) ]
              done)
          e.e_pieces)
    ents;
  (* scratch planning: memory-resident operands borrow reserved registers
     past the allocated file; one extra int register carries slot
     addresses *)
  let max_iscr = ref 0 and max_fscr = ref 0 in
  let any_remat = List.exists (fun e -> e.e_remat <> None) ents in
  if nslots > 0 || any_remat then
    for pc = 0 to n - 1 do
      let iu, fu, idf, fdf = uses_defs inp.code.(pc) in
      let mem v = preg_at v pc < 0 in
      let miu = List.filter mem (List.sort_uniq compare iu) in
      let mfu =
        List.filter (fun f -> mem (ni + f)) (List.sort_uniq compare fu)
      in
      let mid = List.exists mem idf in
      let mfd = List.exists (fun f -> mem (ni + f)) fdf in
      max_iscr :=
        max !max_iscr (List.length miu + (if mid then 1 else 0));
      max_fscr := max !max_fscr (List.length mfu + (if mfd then 1 else 0))
    done;
  let any_spill = nslots > 0 in
  let iscr_base = icount and fscr_base = fcount in
  let addr_reg = icount + !max_iscr in
  let nregs =
    max (icount + !max_iscr + (if any_spill then 1 else 0)) 1
  in
  let nfregs = fcount + !max_fscr in
  (* emission *)
  let out = ref [] in
  let out_len = ref 0 in
  let push i =
    out := i :: !out;
    incr out_len
  in
  let new_index = Array.make (n + 1) 0 in
  let stats_reloads = ref 0 and stats_stores = ref 0 in
  let stats_remats = ref 0 in
  let addr_insn off =
    Insn.Alu
      { op = Insn.Aadd; dst = addr_reg; a = Insn.SReg Insn.sp;
        b = Insn.SImm (Int64.of_int off) }
  in
  (* re-emit a rematerializable def with the scratch as its target *)
  let remat_to r = function
    | Insn.Alu a -> Insn.Alu { a with dst = r }
    | Insn.Gaddr g -> Insn.Gaddr { g with dst = r }
    | Insn.Movl m -> Insn.Movl { m with dst = r }
    | _ -> assert false
  in
  for pc = 0 to n - 1 do
    new_index.(pc) <- !out_len;
    List.iter
      (fun (v, r, off) ->
        push (addr_insn off);
        push
          (Insn.Ld
             { kind = Insn.K_ld;
               dst = (if v < ni then Insn.DInt r else Insn.DFlt r);
               base = addr_reg; site = spill_site });
        incr stats_reloads)
      head_reloads.(pc);
    let iu, fu, _, _ = uses_defs inp.code.(pc) in
    let iscr = Hashtbl.create 4 and fscr = Hashtbl.create 4 in
    let niscr = ref 0 and nfscr = ref 0 in
    List.iter
      (fun v ->
        let p, off, rm = loc_at v pc in
        if p.p_reg < 0 && not (Hashtbl.mem iscr v) then begin
          let r = iscr_base + !niscr in
          incr niscr;
          Hashtbl.replace iscr v r;
          (match rm with
          | Some ins ->
            push (remat_to r ins);
            incr stats_remats
          | None ->
            push (addr_insn off);
            push
              (Insn.Ld
                 { kind = Insn.K_ld; dst = Insn.DInt r; base = addr_reg;
                   site = spill_site });
            incr stats_reloads)
        end)
      (List.sort_uniq compare iu);
    List.iter
      (fun f ->
        let p, off, _ = loc_at (ni + f) pc in
        if p.p_reg < 0 && not (Hashtbl.mem fscr f) then begin
          let r = fscr_base + !nfscr in
          incr nfscr;
          Hashtbl.replace fscr f r;
          push (addr_insn off);
          push
            (Insn.Ld
               { kind = Insn.K_ld; dst = Insn.DFlt r; base = addr_reg;
                 site = spill_site });
          incr stats_reloads
        end)
      (List.sort_uniq compare fu);
    let iuse v =
      match Hashtbl.find_opt iscr v with
      | Some r -> r
      | None -> preg_at v pc
    in
    let fuse f =
      match Hashtbl.find_opt fscr f with
      | Some r -> r
      | None -> preg_at (ni + f) pc
    in
    let after = ref [] in
    let idef v =
      let p, off, _ = loc_at v pc in
      let r = if p.p_reg >= 0 then p.p_reg else iscr_base + !niscr in
      if off >= 0 then begin
        after :=
          !after
          @ [ addr_insn off;
              Insn.St { src = Insn.SReg r; base = addr_reg; site = spill_site }
            ];
        incr stats_stores
      end;
      r
    in
    let fdef f =
      let p, off, _ = loc_at (ni + f) pc in
      let r = if p.p_reg >= 0 then p.p_reg else fscr_base + !nfscr in
      if off >= 0 then begin
        after :=
          !after
          @ [ addr_insn off;
              Insn.St { src = Insn.SFrg r; base = addr_reg; site = spill_site }
            ];
        incr stats_stores
      end;
      r
    in
    let s = function
      | Insn.SReg r -> Insn.SReg (iuse r)
      | Insn.SFrg f -> Insn.SFrg (fuse f)
      | (Insn.SImm _ | Insn.SFim _) as x -> x
    in
    let d = function
      | Insn.DInt r -> Insn.DInt (idef r)
      | Insn.DFlt f -> Insn.DFlt (fdef f)
    in
    let d_use = function
      | Insn.DInt r -> Insn.DInt (iuse r)
      | Insn.DFlt f -> Insn.DFlt (fuse f)
    in
    let ins' =
      match inp.code.(pc) with
      | Insn.Movl { dst; imm } -> Insn.Movl { dst = idef dst; imm }
      | Insn.Gaddr { dst; sym } -> Insn.Gaddr { dst = idef dst; sym }
      | Insn.Mov { dst; src } -> Insn.Mov { dst = d dst; src = s src }
      | Insn.Alu { op; dst; a; b } ->
        Insn.Alu { op; dst = idef dst; a = s a; b = s b }
      | Insn.Falu { op; dst; a; b } ->
        Insn.Falu { op; dst = fdef dst; a = s a; b = s b }
      | Insn.Fcmp { op; dst; a; b } ->
        Insn.Fcmp { op; dst = idef dst; a = s a; b = s b }
      | Insn.Itof { dst; src } -> Insn.Itof { dst = fdef dst; src = s src }
      | Insn.Ftoi { dst; src } -> Insn.Ftoi { dst = idef dst; src = s src }
      | Insn.Ld { kind; dst; base; site } ->
        Insn.Ld { kind; dst = d dst; base = iuse base; site }
      | Insn.St { src; base; site } ->
        Insn.St { src = s src; base = iuse base; site }
      | Insn.Chk_a { tag; recovery; site } ->
        Insn.Chk_a { tag = d_use tag; recovery; site }
      | Insn.Invala_e { tag } -> Insn.Invala_e { tag = d_use tag }
      | Insn.Sel { dst; cond; if_true; if_false } ->
        Insn.Sel
          { dst = d dst; cond = iuse cond; if_true = s if_true;
            if_false = s if_false }
      | Insn.Br _ as b -> b
      | Insn.Brc { cond; ifso; ifnot; site } ->
        Insn.Brc { cond = iuse cond; ifso; ifnot; site }
      | Insn.Call { callee; args; ret } ->
        Insn.Call { callee; args = List.map s args; ret = Option.map d ret }
      | Insn.Ret { value } -> Insn.Ret { value = Option.map s value }
      | Insn.Alloc { dst; nbytes; site } ->
        Insn.Alloc { dst = idef dst; nbytes = s nbytes; site }
      | Insn.Print { what; as_float } -> Insn.Print { what = s what; as_float }
      | Insn.Nop -> Insn.Nop
    in
    push ins';
    List.iter push !after
  done;
  new_index.(n) <- !out_len;
  let code = Array.of_list (List.rev !out) in
  (* retarget control flow: a branch to an old pc lands on the reload
     cluster of that pc (inserted spill code never branches) *)
  Array.iteri
    (fun i ins ->
      code.(i) <-
        (match ins with
        | Insn.Br { target } -> Insn.Br { target = new_index.(target) }
        | Insn.Brc { cond; ifso; ifnot; site } ->
          Insn.Brc
            { cond; ifso = new_index.(ifso); ifnot = new_index.(ifnot); site }
        | Insn.Chk_a { tag; recovery; site } ->
          Insn.Chk_a { tag; recovery = new_index.(recovery); site }
        | x -> x))
    code;
  (* entry-point assignment (formals are remapped through this) *)
  let imap = Array.make (max ni 1) (-1) in
  if ni > 0 then imap.(0) <- 0;
  for v = 1 to ni - 1 do
    match vloc.(v) with
    | (p, _, _) :: _ when p.p_reg >= 0 -> imap.(v) <- p.p_reg
    | _ -> ()
  done;
  let fmap = Array.make (max nf 1) (-1) in
  for f = 0 to nf - 1 do
    match vloc.(ni + f) with
    | (p, _, _) :: _ when p.p_reg >= 0 -> fmap.(f) <- p.p_reg
    | _ -> ()
  done;
  let iassign =
    Array.init (max ni 1) (fun v ->
        if v < ni then
          List.map (fun (p, _, _) -> (p.p_lo, p.p_hi, p.p_reg)) vloc.(v)
        else [])
  in
  let fassign =
    Array.init (max nf 1) (fun f ->
        if f < nf then
          List.map (fun (p, _, _) -> (p.p_lo, p.p_hi, p.p_reg)) vloc.(ni + f)
        else [])
  in
  let web_counts = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace web_counts e.e_vreg
        (1 + Option.value (Hashtbl.find_opt web_counts e.e_vreg) ~default:0))
    ents;
  let zero_cost_splits =
    Hashtbl.fold (fun _ c a -> a + (c - 1)) web_counts 0
  in
  let spill_splits =
    List.fold_left
      (fun a e ->
        a + List.length (List.filter (fun p -> p.p_reg >= 0) e.e_pieces))
      0 spilled
  in
  let subranges_total =
    List.fold_left (fun a e -> a + List.length e.e_pieces) 0 ents
  in
  { code;
    nregs;
    nfregs;
    imap;
    fmap;
    new_index;
    spill_bytes = 8 * nslots;
    stats =
      { subranges = subranges_total;
        webs = List.length ents;
        splits_inserted = zero_cost_splits + spill_splits;
        spilled_webs = List.length spilled;
        spill_slots = nslots;
        reloads = !stats_reloads;
        spill_stores = !stats_stores;
        remat_webs =
          List.length (List.filter (fun e -> e.e_remat <> None) ents);
        remat_uses = !stats_remats };
    iassign;
    fassign }

(* --- the pressure estimate consumed by the promoter --- *)

type estimate = {
  est_webs : int; (* allocation entities across both classes *)
  est_frame_int : int;
      (* the allocated integer frame: sp, spill scratch included — exactly
         the [nregs] the RSE will be charged at every call *)
  est_frame_fp : int;
}

(* What a function's frame will cost before promotion grows it: run the
   allocator on the pristine selection and read the frame it actually
   sizes.  The early must-reside peak (peak_of) systematically
   undershoots the real file — remat candidates still occupy registers
   up to the remat limit, allocation is piece-granular, and
   memory-resident operands borrow scratch past the allocated file — and
   the RSE is charged the real [nregs], so the real frame is the only
   honest baseline for a spill-cost model.  One discarded allocation per
   function, once per compile: noise next to promotion's per-round alias
   analyses. *)
let estimate ?(policy = default_policy) (inp : input) : estimate =
  let res = run ~policy inp in
  { est_webs = res.stats.webs;
    est_frame_int = res.nregs;
    est_frame_fp = res.nfregs }
