(* Post-regalloc, post-layout instruction bundling (ROADMAP "instruction
   bundler").

   Real IA-64 code is not a flat instruction stream: the front end fetches
   3-syllable *bundles*, each naming a template that routes its slots to
   M/I/F/B units, with stop bits (;;) separating register-dependent
   instruction groups.  This pass packs the resolved, allocated, laid-out
   code of a function into that shape so the machine can fetch bundle-wise
   and charge template-induced splits (Figure 8's cycle counts on real
   hardware include them).

   Syllable classes:
     M  ld / ld.a / ld.sa / ld.c, st, chk.a, invala.e, alloc
     I  movl, addl(gaddr), alu, integer mov/sel
     F  falu, fcmp, setf/fcvt, float mov/sel
     B  br, br.cond, br.call, br.ret, out (runtime call)
   A nop is a wildcard: it satisfies any slot, which is what lets it pad.

   Template subset: MII, MMI, MIB, MMB, MFI, MMF, MBB, BBB; only MII and
   MMI exist in the stopped (;;) encoding, so when a stop must follow a
   template that cannot carry one the packer either marks the previous
   MII/MMI bundle or spends an all-nop MII;; bundle.

   Group rule (mirrored by the machine and the property tests): an
   instruction group ends at a stop bit, and unconditionally after a br,
   br.call or br.ret syllable (the machine always breaks the issue group
   there; a br.cond does *not* end the group on its fall-through path).
   Within one group no syllable may read (RAW) or redefine (WAW) a
   register defined by an earlier syllable of the group — except the
   IA-64 compare-to-branch special case: a br.cond may consume a predicate
   computed by a cmp/fcmp in its own group.

   Every branch / chk.a-recovery target is a leader and every leader
   starts a fresh bundle, so control transfers always land on slot 0. *)

type syl = M | I | F | B

let slots = function
  | Insn.MII -> [| M; I; I |]
  | Insn.MMI -> [| M; M; I |]
  | Insn.MIB -> [| M; I; B |]
  | Insn.MMB -> [| M; M; B |]
  | Insn.MFI -> [| M; F; I |]
  | Insn.MMF -> [| M; M; F |]
  | Insn.MBB -> [| M; B; B |]
  | Insn.BBB -> [| B; B; B |]

(* Closing preference: templates that can still take a stop bit first, so
   a later hazard can often mark the previous bundle instead of spending a
   nop bundle. *)
let all_templates =
  [ Insn.MII; Insn.MMI; Insn.MFI; Insn.MIB; Insn.MMB; Insn.MMF; Insn.MBB;
    Insn.BBB ]

let stop_capable = function Insn.MII | Insn.MMI -> true | _ -> false

(* [None] = nop wildcard, fits any slot. *)
let syllable_of : Insn.insn -> syl option = function
  | Insn.Ld _ | Insn.St _ | Insn.Chk_a _ | Insn.Invala_e _ | Insn.Alloc _ ->
    Some M
  | Insn.Falu _ | Insn.Fcmp _ | Insn.Itof _ | Insn.Ftoi _ -> Some F
  | Insn.Mov { dst = Insn.DFlt _; _ } | Insn.Sel { dst = Insn.DFlt _; _ } ->
    Some F
  | Insn.Movl _ | Insn.Gaddr _ | Insn.Alu _
  | Insn.Mov { dst = Insn.DInt _; _ }
  | Insn.Sel { dst = Insn.DInt _; _ } ->
    Some I
  | Insn.Br _ | Insn.Brc _ | Insn.Call _ | Insn.Ret _ | Insn.Print _ -> Some B
  | Insn.Nop -> None

let fits cls slot = match cls with None -> true | Some c -> c = slot

(* the group breaks unconditionally after these (machine: new_group) *)
let breaks_group = function
  | Insn.Br _ | Insn.Call _ | Insn.Ret _ -> true
  | _ -> false

(* the IA-64 compare-to-branch exception: a br.cond may read a predicate
   computed earlier in its own group *)
let is_cmp = function
  | Insn.Alu { op = Insn.Acmp_eq | Insn.Acmp_ne | Insn.Acmp_lt | Insn.Acmp_le
                    | Insn.Acmp_gt | Insn.Acmp_ge; _ }
  | Insn.Fcmp _ ->
    true
  | _ -> false

(* RAW/WAW of [ins] against the registers defined since the last group
   break; [gdefs_i]/[gdefs_f] also record whether the defining instruction
   was a compare (for the branch exception). *)
let hazard ~gdefs_i ~gdefs_f (ins : Insn.insn) =
  let iu, fu, idf, fdf = Regalloc.uses_defs ins in
  let brc_cond = match ins with Insn.Brc { cond; _ } -> Some cond | _ -> None in
  let raw_i r =
    match Hashtbl.find_opt gdefs_i r with
    | None -> false
    | Some by_cmp -> not (by_cmp && brc_cond = Some r)
  in
  List.exists raw_i iu
  || List.exists (Hashtbl.mem gdefs_f) fu
  || List.exists (Hashtbl.mem gdefs_i) idf
  || List.exists (Hashtbl.mem gdefs_f) fdf

type stats = {
  mutable bundles : int;
  mutable nops_added : int;
  mutable stops : int;
}

(* Pack [code] into bundles.  Returns the padded instruction stream (all
   branch / recovery targets remapped) plus one bundle descriptor per
   three instructions. *)
let run ?stats (code : Insn.insn array) : Insn.insn array * Insn.bundle array
    =
  let n = Array.length code in
  (* --- leaders: every control-transfer target starts a bundle --- *)
  let is_leader = Array.make (max n 1) false in
  if n > 0 then is_leader.(0) <- true;
  let mark t = if t >= 0 && t < n then is_leader.(t) <- true in
  let split_after i = if i + 1 < n then is_leader.(i + 1) <- true in
  Array.iteri
    (fun i ins ->
      match ins with
      | Insn.Br { target } ->
        mark target;
        split_after i
      | Insn.Brc { ifso; ifnot; _ } ->
        mark ifso;
        mark ifnot;
        split_after i
      | Insn.Chk_a { recovery; _ } -> mark recovery
      | Insn.Ret _ -> split_after i
      | _ -> ())
    code;
  (* --- packing state --- *)
  let out_rev = ref [] in
  let out_len = ref 0 in
  (* start-of-bundle position of each original instruction.  Targets are
     leaders and leaders open fresh bundles, so a target's bundle holds
     only pad nops before it — branches land on slot 0 and execute at most
     two nops before the real leader instruction. *)
  let bpos = Array.make (max n 1) (-1) in
  (* emitted bundles, mutable so a hazard can retroactively set the stop
     bit of an already-closed MII/MMI bundle *)
  let bundles = ref [] (* reversed (tmpl, stop ref) *) in
  let cur_rev = ref [] (* current partial bundle, reversed (insn, class) *) in
  let cur_len = ref 0 in
  let gdefs_i : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let gdefs_f : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let clear_group () =
    Hashtbl.reset gdefs_i;
    Hashtbl.reset gdefs_f
  in
  let emit ins =
    out_rev := ins :: !out_rev;
    incr out_len
  in
  (* a template matches the placed prefix when every placed syllable fits
     its slot *)
  let prefix_ok t =
    let sl = slots t in
    List.for_all (fun (i, cls) -> fits cls sl.(i))
      (List.mapi (fun k (_, cls) -> (!cur_len - 1 - k, cls)) !cur_rev)
  in
  let close ~stop =
    if !cur_len > 0 then begin
      let candidates = if stop then [ Insn.MII; Insn.MMI ] else all_templates in
      let t =
        match List.find_opt prefix_ok candidates with
        | Some t -> t
        | None -> Fmt.invalid_arg "Bundle: no template fits"
      in
      List.iter (fun (ins, _) -> emit ins) (List.rev !cur_rev);
      for _ = !cur_len to 2 do
        emit Insn.Nop;
        match stats with Some s -> s.nops_added <- s.nops_added + 1 | None -> ()
      done;
      bundles := (t, ref stop) :: !bundles;
      (match stats with
      | Some s ->
        s.bundles <- s.bundles + 1;
        if stop then s.stops <- s.stops + 1
      | None -> ());
      cur_rev := [];
      cur_len := 0
    end
  in
  (* can the current partial bundle close as MII/MMI (i.e. carry a stop)? *)
  let closable_with_stop () =
    !cur_len > 0 && (prefix_ok Insn.MII || prefix_ok Insn.MMI)
  in
  (* a stop is needed before the next instruction and the current bundle
     is empty: mark the previous bundle if its encoding allows, otherwise
     spend an all-nop MII;; *)
  let stop_before_fresh () =
    match !bundles with
    | (t, stop) :: _ when stop_capable t && not !stop ->
      stop := true;
      (match stats with Some s -> s.stops <- s.stops + 1 | None -> ())
    | _ ->
      for _ = 0 to 2 do
        emit Insn.Nop;
        match stats with Some s -> s.nops_added <- s.nops_added + 1 | None -> ()
      done;
      bundles := (Insn.MII, ref true) :: !bundles;
      (match stats with
      | Some s ->
        s.bundles <- s.bundles + 1;
        s.stops <- s.stops + 1
      | None -> ())
  in
  for i = 0 to n - 1 do
    let ins = code.(i) in
    if is_leader.(i) then close ~stop:false;
    let cls = syllable_of ins in
    if hazard ~gdefs_i ~gdefs_f ins then begin
      if closable_with_stop () then close ~stop:true
      else begin
        close ~stop:false;
        stop_before_fresh ()
      end;
      clear_group ()
    end;
    (* place, closing (and possibly pad-opening) until a template fits *)
    let placed = ref false in
    while not !placed do
      let slot = !cur_len in
      let ok t = prefix_ok t && fits cls (slots t).(slot) in
      if slot < 3 && List.exists ok all_templates then begin
        bpos.(i) <- !out_len;
        cur_rev := (ins, cls) :: !cur_rev;
        incr cur_len;
        placed := true
      end
      else if !cur_len > 0 then close ~stop:false
      else begin
        (* fresh bundle and still no fit: I/F can't open one — pad slot 0 *)
        cur_rev := [ (Insn.Nop, None) ];
        cur_len := 1;
        match stats with Some s -> s.nops_added <- s.nops_added + 1 | None -> ()
      end
    done;
    if !cur_len = 3 then close ~stop:false;
    (* group bookkeeping *)
    if breaks_group ins then clear_group ()
    else begin
      let _, _, idf, fdf = Regalloc.uses_defs ins in
      let cmp = is_cmp ins in
      List.iter (fun r -> Hashtbl.replace gdefs_i r cmp) idf;
      List.iter (fun r -> Hashtbl.replace gdefs_f r false) fdf
    end
  done;
  close ~stop:false;
  let out = Array.of_list (List.rev !out_rev) in
  let bs =
    Array.of_list
      (List.rev_map (fun (t, stop) -> { Insn.tmpl = t; stop = !stop }) !bundles)
  in
  assert (Array.length out = 3 * Array.length bs);
  (* --- patch control-transfer targets to their new indices --- *)
  let repos t =
    let p = bpos.(t) in
    assert (p >= 0 && p mod 3 = 0);
    p
  in
  let out =
    Array.map
      (fun ins ->
        match ins with
        | Insn.Br { target } -> Insn.Br { target = repos target }
        | Insn.Brc { cond; ifso; ifnot; site } ->
          Insn.Brc { cond; ifso = repos ifso; ifnot = repos ifnot; site }
        | Insn.Chk_a { tag; recovery; site } ->
          Insn.Chk_a { tag; recovery = repos recovery; site }
        | ins -> ins)
      out
  in
  (out, bs)
