(* The target instruction set: a small IA-64-flavoured machine.

   Code is straight-line and indexed — branch targets, chk.a recovery
   entries and the implicit fall-through are all plain instruction indices,
   resolved by the code generator.  Integer and float registers live in
   separate files (r0..rN / f0..fN); [sp] is a fixed integer register that
   the machine preloads with the frame base address before the first
   instruction executes, and that codegen never writes.

   The speculative subset mirrors the paper:
   - [K_ld_a]   ld8.a    advanced load: loads and arms an ALAT entry keyed
                         by (frame, destination register)
   - [K_ld_sa]  ld8.sa   speculative advanced load: like ld.a but a faulting
                         address defers into the register's NaT bit
   - [K_ld_c]   ld8.c    check load: a no-op on an ALAT hit; on a miss it
                         reloads (and with the .nc completer re-arms)
   - [Chk_a]    chk.a    check with a recovery branch: on a miss control
                         transfers to [recovery], which re-executes the
                         dependent loads and branches back
   - [Invala_e] invala.e invalidates one ALAT entry, forcing the next check
                         of that register to reload (paper Figure 2) *)

type src =
  | SReg of int (* integer register *)
  | SImm of int64
  | SFrg of int (* float register *)
  | SFim of float

type dest = DInt of int | DFlt of int

type ialu =
  | Aadd | Asub | Amul | Adiv | Arem
  | Aand | Aor | Axor | Ashl | Ashr
  | Acmp_eq | Acmp_ne | Acmp_lt | Acmp_le | Acmp_gt | Acmp_ge

type falu = FAadd | FAsub | FAmul | FAdiv
type fcmp = FCeq | FCne | FClt | FCle | FCgt | FCge

type ld_kind = K_ld | K_ld_a | K_ld_sa | K_ld_c of { clear : bool }

type insn =
  | Movl of { dst : int; imm : int64 }
  | Gaddr of { dst : int; sym : int } (* materialize a global's address *)
  | Mov of { dst : dest; src : src }
  | Alu of { op : ialu; dst : int; a : src; b : src }
  | Falu of { op : falu; dst : int; a : src; b : src }
  | Fcmp of { op : fcmp; dst : int; a : src; b : src } (* integer 0/1 result *)
  | Itof of { dst : int; src : src }
  | Ftoi of { dst : int; src : src }
  | Ld of { kind : ld_kind; dst : dest; base : int; site : int }
  | St of { src : src; base : int; site : int }
  | Chk_a of { tag : dest; recovery : int; site : int }
  | Invala_e of { tag : dest }
  | Sel of { dst : dest; cond : int; if_true : src; if_false : src }
  | Br of { target : int }
  | Brc of { cond : int; ifso : int; ifnot : int; site : int }
  | Call of { callee : string; args : src list; ret : dest option }
  | Ret of { value : src option }
  | Alloc of { dst : int; nbytes : src; site : int } (* runtime malloc *)
  | Print of { what : src; as_float : bool } (* runtime print_int/print_float *)
  | Nop

(* The stack-pointer register: preloaded by the machine, read-only to
   generated code. *)
let sp = 0

(* --- dependence classification ---

   The pre-bundle list scheduler (sched.ml) and its independent checker in
   the test suite share these ground rules.

   [is_ordered]: instructions whose effects reach beyond the register
   files.  Cache replacement state observes the order of every memory
   access, the ALAT observes the order of arms / checks / invalidates and
   of the stores that evict entries, allocation bumps the heap pointer,
   and calls / prints touch the outside world.  The scheduler keeps these
   in their original total order — only register-to-register compute moves
   around them — which is what makes a scheduled stream bit-identical to
   the unscheduled one on every non-cycle architectural counter. *)
let is_ordered = function
  | Ld _ | St _ | Chk_a _ | Invala_e _ | Alloc _ | Call _ | Print _ -> true
  | Movl _ | Gaddr _ | Mov _ | Alu _ | Falu _ | Fcmp _ | Itof _ | Ftoi _
  | Sel _ | Br _ | Brc _ | Ret _ | Nop ->
    false

(* [is_terminal]: instructions that end a scheduling region and stay
   pinned at their pc.  Br/Brc/Ret transfer control outright; chk.a does
   too (its recovery block branches back to the instruction after it, so
   that instruction is a block leader).  Keeping terminals at unchanged
   indices means branch targets and the static predictor's taken/not-taken
   geometry survive scheduling untouched. *)
let is_terminal = function
  | Br _ | Brc _ | Ret _ | Chk_a _ -> true
  | _ -> false

(* speculative loads the scheduler hoists preferentially *)
let is_advanced_load = function
  | Ld { kind = K_ld_a | K_ld_sa; _ } -> true
  | _ -> false

(* --- IA-64 bundles ---

   A bundle holds three syllables dispensed to M (memory), I (integer),
   F (floating-point) and B (branch) units, named by a template; the
   realistic subset below covers what our ISA needs.  Only the MII and
   MMI encodings carry an end-of-bundle stop bit in this subset, so the
   bundler pads with an all-nop MII;; when a stop is needed after a
   template that cannot carry one. *)

type template = MII | MMI | MIB | MMB | MFI | MMF | MBB | BBB

type bundle = { tmpl : template; stop : bool (* end-of-bundle ;; *) }

let template_name = function
  | MII -> "mii" | MMI -> "mmi" | MIB -> "mib" | MMB -> "mmb"
  | MFI -> "mfi" | MMF -> "mmf" | MBB -> "mbb" | BBB -> "bbb"

type func = {
  name : string;
  formals : (Srp_ir.Symbol.t * dest) list; (* arrival registers, in order *)
  code : insn array;
  bundles : bundle array option;
      (* bundle-wise view of [code]: when present, [Array.length code] is
         exactly [3 * Array.length bundles] and instruction [pc] is slot
         [pc mod 3] of bundle [pc / 3]; every branch / recovery target
         lands on a slot-0 boundary.  [None] = flat (unbundled) stream. *)
  nregs : int; (* integer registers used, sp included *)
  nfregs : int;
  frame_bytes : int;
  slot_of_sym : (int, int) Hashtbl.t; (* Symbol.id -> frame byte offset *)
}

type program = {
  funcs : (string, func) Hashtbl.t;
  func_order : string list;
  globals : (Srp_ir.Symbol.t * Srp_ir.Program.global_init) list;
}

(* --- assembly printer --- *)

let pp_dest ppf = function
  | DInt r -> Fmt.pf ppf "r%d" r
  | DFlt f -> Fmt.pf ppf "f%d" f

let pp_src ppf = function
  | SReg r -> Fmt.pf ppf "r%d" r
  | SImm i -> Fmt.pf ppf "%Ld" i
  | SFrg f -> Fmt.pf ppf "f%d" f
  | SFim x -> Fmt.pf ppf "%g" x

let ialu_name = function
  | Aadd -> "add" | Asub -> "sub" | Amul -> "mul" | Adiv -> "div"
  | Arem -> "rem" | Aand -> "and" | Aor -> "or" | Axor -> "xor"
  | Ashl -> "shl" | Ashr -> "shr"
  | Acmp_eq -> "cmp.eq" | Acmp_ne -> "cmp.ne" | Acmp_lt -> "cmp.lt"
  | Acmp_le -> "cmp.le" | Acmp_gt -> "cmp.gt" | Acmp_ge -> "cmp.ge"

let falu_name = function
  | FAadd -> "fadd" | FAsub -> "fsub" | FAmul -> "fmul" | FAdiv -> "fdiv"

let fcmp_name = function
  | FCeq -> "fcmp.eq" | FCne -> "fcmp.ne" | FClt -> "fcmp.lt"
  | FCle -> "fcmp.le" | FCgt -> "fcmp.gt" | FCge -> "fcmp.ge"

(* ld8 for the integer file, ldf8 for the float file, with the speculative
   completer: .a / .sa / .c.clr / .c.nc *)
let ld_name (kind : ld_kind) (dst : dest) =
  let base = match dst with DInt _ -> "ld8" | DFlt _ -> "ldf8" in
  let compl_ =
    match kind with
    | K_ld -> ""
    | K_ld_a -> ".a"
    | K_ld_sa -> ".sa"
    | K_ld_c { clear = true } -> ".c.clr"
    | K_ld_c { clear = false } -> ".c.nc"
  in
  base ^ compl_

let pp_insn ppf = function
  | Movl { dst; imm } -> Fmt.pf ppf "movl r%d = %Ld" dst imm
  | Gaddr { dst; sym } -> Fmt.pf ppf "addl r%d = @gprel(sym%d)" dst sym
  | Mov { dst; src } -> Fmt.pf ppf "mov %a = %a" pp_dest dst pp_src src
  | Alu { op; dst; a; b } ->
    Fmt.pf ppf "%s r%d = %a, %a" (ialu_name op) dst pp_src a pp_src b
  | Falu { op; dst; a; b } ->
    Fmt.pf ppf "%s f%d = %a, %a" (falu_name op) dst pp_src a pp_src b
  | Fcmp { op; dst; a; b } ->
    Fmt.pf ppf "%s r%d = %a, %a" (fcmp_name op) dst pp_src a pp_src b
  | Itof { dst; src } -> Fmt.pf ppf "setf.sig f%d = %a" dst pp_src src
  | Ftoi { dst; src } -> Fmt.pf ppf "fcvt.fx r%d = %a" dst pp_src src
  | Ld { kind; dst; base; site } ->
    Fmt.pf ppf "%s %a = [r%d]  ;; s%d" (ld_name kind dst) pp_dest dst base site
  | St { src; base; site } ->
    Fmt.pf ppf "st8 [r%d] = %a  ;; s%d" base pp_src src site
  | Chk_a { tag; recovery; site } ->
    Fmt.pf ppf "chk.a.nc %a, .%d  ;; s%d" pp_dest tag recovery site
  | Invala_e { tag } -> Fmt.pf ppf "invala.e %a" pp_dest tag
  | Sel { dst; cond; if_true; if_false } ->
    Fmt.pf ppf "sel %a = r%d ? %a : %a" pp_dest dst cond pp_src if_true
      pp_src if_false
  | Br { target } -> Fmt.pf ppf "br .%d" target
  | Brc { cond; ifso; ifnot; site } ->
    Fmt.pf ppf "br.cond r%d, .%d, .%d  ;; s%d" cond ifso ifnot site
  | Call { callee; args; ret } ->
    let pp_ret ppf = function
      | Some d -> Fmt.pf ppf "%a = " pp_dest d
      | None -> ()
    in
    Fmt.pf ppf "%abr.call %s(%a)" pp_ret ret callee
      (Srp_support.Pp_util.pp_list pp_src)
      args
  | Ret { value } ->
    (match value with
    | Some v -> Fmt.pf ppf "br.ret %a" pp_src v
    | None -> Fmt.string ppf "br.ret")
  | Alloc { dst; nbytes; site } ->
    Fmt.pf ppf "alloc r%d = %a bytes  ;; s%d" dst pp_src nbytes site
  | Print { what; as_float } ->
    Fmt.pf ppf "out.%s %a" (if as_float then "fp" else "int") pp_src what
  | Nop -> Fmt.string ppf "nop"

let pp_func ppf (f : func) =
  let pp_formal ppf (s, d) =
    Fmt.pf ppf "%a=%a" Srp_ir.Symbol.pp s pp_dest d
  in
  Fmt.pf ppf "%s(%a):  // %d iregs, %d fregs, frame %d bytes@." f.name
    (Srp_support.Pp_util.pp_list pp_formal)
    f.formals f.nregs f.nfregs f.frame_bytes;
  match f.bundles with
  | None -> Array.iteri (fun i ins -> Fmt.pf ppf "  .%-4d %a@." i pp_insn ins) f.code
  | Some bs ->
    Array.iteri
      (fun b { tmpl; stop } ->
        Fmt.pf ppf "  { .%s@." (template_name tmpl);
        for s = 0 to 2 do
          let i = (3 * b) + s in
          Fmt.pf ppf "  .%-4d   %a@." i pp_insn f.code.(i)
        done;
        Fmt.pf ppf "  %s@." (if stop then ";; }" else "}"))
      bs
