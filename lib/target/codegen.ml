(* Code generation: lower the (possibly promoted) CFG IR onto the target
   ISA.  Per function:

   1. Frame layout — every formal and local symbol gets an 8-aligned frame
      slot; user variables stay in memory (register promotion, not codegen,
      is what moves them into temps).
   2. Address materialization — each referenced symbol's address is
      computed once in the prologue (addl @gprel for globals, sp+slot for
      frame symbols) and held in a virtual register for the whole function;
      constant offsets fold into a per-use add.
   3. Formal spilling — arguments arrive in registers and are stored to
      their frame slots before the body runs, so loads of formals see
      memory like every other symbol reference.
   4. Instruction selection over virtual registers, with branch targets as
      symbolic labels.  The speculative IR lowers directly: promotion flags
      pick the load completer (ld / ld.a / ld.sa), [Check] with [C_ld_c]
      becomes a check load on the promotion temp's own register, [C_chk_a]
      becomes chk.a with an out-of-line recovery block, [Invala] becomes
      invala.e, and [Sw_check] becomes an address compare plus a select.
   5. chk.a recovery blocks are emitted after the function body: reload the
      checked temp with a fresh ld.a (re-arming its entry), re-execute the
      recorded dependent loads, and branch back to the instruction after
      the check (Ju et al., PACT'00 style recovery code).
   6. Label resolution to instruction indices, then linear-scan register
      allocation (Regalloc), pinning ALAT-involved temps to private
      physical registers so ALAT (frame, register) tags stay stable.

   The NaT/ALAT contract with the machine: an ld.sa whose address faults
   sets the destination's NaT bit instead of trapping; only a check load
   may see that register next (it reloads on the inevitable ALAT miss and
   clears the bit).  Codegen therefore never schedules a plain read of a
   speculative temp before its check — reloads of a promoted value always
   follow the check that ssapre placed on the same path. *)

open Srp_ir

(* --- emission buffer with symbolic labels --- *)

(* Branch targets inside the buffer hold label keys, patched to instruction
   indices once the whole function is laid out.  Block labels use their
   non-negative [Label.id]; synthetic labels (recovery entries and return
   points) count down from -1. *)
type buf = {
  mutable rev : Insn.insn list; (* reversed code *)
  mutable len : int;
  lbl_pos : (int, int) Hashtbl.t; (* label key -> instruction index *)
  mutable patches : int list; (* indices of insns holding label keys *)
  mutable next_lbl : int;
}

let emit b i =
  b.rev <- i :: b.rev;
  b.len <- b.len + 1

let emit_patched b i =
  b.patches <- b.len :: b.patches;
  emit b i

let fresh_lbl b =
  let l = b.next_lbl in
  b.next_lbl <- l - 1;
  l

let bind_lbl b l = Hashtbl.replace b.lbl_pos l b.len

let resolve b =
  let code = Array.of_list (List.rev b.rev) in
  let pos l =
    match Hashtbl.find_opt b.lbl_pos l with
    | Some p -> p
    | None -> Fmt.invalid_arg "Codegen: unresolved label %d" l
  in
  List.iter
    (fun idx ->
      code.(idx) <-
        (match code.(idx) with
        | Insn.Br { target } -> Insn.Br { target = pos target }
        | Insn.Brc { cond; ifso; ifnot; site } ->
          Insn.Brc { cond; ifso = pos ifso; ifnot = pos ifnot; site }
        | Insn.Chk_a { tag; recovery; site } ->
          Insn.Chk_a { tag; recovery = pos recovery; site }
        | ins -> ins))
    b.patches;
  code

(* --- per-function context --- *)

type pending_recovery = {
  rec_lbl : int;
  back_lbl : int;
  p_dst : Temp.t; (* checked pointer temp: reloaded + re-armed first *)
  p_addr : Ops.addr; (* its own memory cell *)
  p_site : int;
  p_instrs : Instr.instr list; (* dependent reloads recorded by ssapre *)
}

type ctx = {
  b : buf;
  mutable next_ireg : int; (* vreg 0 = sp *)
  mutable next_freg : int;
  temp_reg : (int, int) Hashtbl.t; (* Temp.id -> vreg (class from mty) *)
  sym_reg : (int, int) Hashtbl.t; (* Symbol.id -> int vreg with its address *)
  slot_of_sym : (int, int) Hashtbl.t;
  mutable pending : pending_recovery list;
  mutable pinned : Temp.t list; (* ALAT-involved temps *)
}

let fresh_ireg ctx =
  let r = ctx.next_ireg in
  ctx.next_ireg <- r + 1;
  r

let fresh_freg ctx =
  let f = ctx.next_freg in
  ctx.next_freg <- f + 1;
  f

let reg_of_temp ctx (t : Temp.t) : int =
  match Hashtbl.find_opt ctx.temp_reg (Temp.id t) with
  | Some r -> r
  | None ->
    let r =
      match Temp.mty t with
      | Mem_ty.I64 -> fresh_ireg ctx
      | Mem_ty.F64 -> fresh_freg ctx
    in
    Hashtbl.replace ctx.temp_reg (Temp.id t) r;
    r

let dest_of_temp ctx (t : Temp.t) : Insn.dest =
  match Temp.mty t with
  | Mem_ty.I64 -> Insn.DInt (reg_of_temp ctx t)
  | Mem_ty.F64 -> Insn.DFlt (reg_of_temp ctx t)

let ireg_of_temp ctx (t : Temp.t) : int =
  match dest_of_temp ctx t with
  | Insn.DInt r -> r
  | Insn.DFlt _ ->
    Fmt.invalid_arg "Codegen: float temp %%%d in integer position" (Temp.id t)

let sym_addr_reg ctx (s : Symbol.t) : int =
  match Hashtbl.find_opt ctx.sym_reg (Symbol.id s) with
  | Some r -> r
  | None ->
    Fmt.invalid_arg "Codegen: symbol %s has no materialized address"
      (Symbol.name s)

let src_of_operand ctx (o : Ops.operand) : Insn.src =
  match o with
  | Ops.Temp t -> (
    match Temp.mty t with
    | Mem_ty.I64 -> Insn.SReg (reg_of_temp ctx t)
    | Mem_ty.F64 -> Insn.SFrg (reg_of_temp ctx t))
  | Ops.Int i -> Insn.SImm i
  | Ops.Flt x -> Insn.SFim x
  | Ops.Sym_addr s -> Insn.SReg (sym_addr_reg ctx s)

(* Force an operand into an integer register (branch conditions, address
   bases). *)
let int_reg_of_operand ctx (o : Ops.operand) : int =
  match src_of_operand ctx o with
  | Insn.SReg r -> r
  | Insn.SImm i ->
    let r = fresh_ireg ctx in
    emit ctx.b (Insn.Movl { dst = r; imm = i });
    r
  | Insn.SFrg _ | Insn.SFim _ ->
    Fmt.invalid_arg "Codegen: float operand in integer position"

(* Effective address of an IR addr, as an integer register. *)
let addr_reg ctx (a : Ops.addr) : int =
  let base =
    match a.Ops.base with
    | Ops.Sym s -> sym_addr_reg ctx s
    | Ops.Reg t -> ireg_of_temp ctx t
  in
  if a.Ops.offset = 0 then base
  else begin
    let r = fresh_ireg ctx in
    emit ctx.b
      (Insn.Alu
         { op = Insn.Aadd; dst = r; a = Insn.SReg base;
           b = Insn.SImm (Int64.of_int a.Ops.offset) });
    r
  end

(* --- prescan: referenced symbols and ALAT-pinned temps --- *)

let prescan (f : Func.t) : Symbol.t list * Temp.t list =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let pinned = ref [] in
  let note_sym s =
    if not (Hashtbl.mem seen (Symbol.id s)) then begin
      Hashtbl.replace seen (Symbol.id s) ();
      order := s :: !order
    end
  in
  let note_addr (a : Ops.addr) =
    match a.Ops.base with Ops.Sym s -> note_sym s | Ops.Reg _ -> ()
  in
  let note_op = function Ops.Sym_addr s -> note_sym s | _ -> () in
  let pin t = pinned := t :: !pinned in
  let rec scan (ins : Instr.instr) =
    match ins with
    | Instr.Load { dst; addr; promo; _ } ->
      note_addr addr;
      if promo <> Instr.P_none then pin dst
    | Instr.Store { src; addr; _ } ->
      note_op src;
      note_addr addr
    | Instr.Bin { a; b; _ } ->
      note_op a;
      note_op b
    | Instr.Un { a; _ } -> note_op a
    | Instr.Mov { src; _ } -> note_op src
    | Instr.Call { args; _ } -> List.iter note_op args
    | Instr.Alloc { nbytes; _ } -> note_op nbytes
    | Instr.Check { dst; addr; recovery; _ } ->
      pin dst;
      note_addr addr;
      List.iter scan recovery
    | Instr.Invala { dst } -> pin dst
    | Instr.Sw_check { addr; store_addr; stored; _ } ->
      note_addr addr;
      note_addr store_addr;
      note_op stored
  in
  List.iter
    (fun (blk : Block.t) ->
      List.iter scan blk.Block.instrs;
      match blk.Block.term with
      | Instr.Br { cond; _ } -> note_op cond
      | Instr.Ret (Some o) -> note_op o
      | Instr.Jump _ | Instr.Ret None -> ())
    (Func.blocks f);
  (* formals always need an address (the prologue spill), referenced or
     not *)
  List.iter note_sym (Func.formals f);
  (List.rev !order, !pinned)

(* --- instruction selection --- *)

let ialu_of_binop : Ops.binop -> Insn.ialu option = function
  | Ops.Add -> Some Insn.Aadd
  | Ops.Sub -> Some Insn.Asub
  | Ops.Mul -> Some Insn.Amul
  | Ops.Div -> Some Insn.Adiv
  | Ops.Rem -> Some Insn.Arem
  | Ops.And -> Some Insn.Aand
  | Ops.Or -> Some Insn.Aor
  | Ops.Xor -> Some Insn.Axor
  | Ops.Shl -> Some Insn.Ashl
  | Ops.Shr -> Some Insn.Ashr
  | Ops.Eq -> Some Insn.Acmp_eq
  | Ops.Ne -> Some Insn.Acmp_ne
  | Ops.Lt -> Some Insn.Acmp_lt
  | Ops.Le -> Some Insn.Acmp_le
  | Ops.Gt -> Some Insn.Acmp_gt
  | Ops.Ge -> Some Insn.Acmp_ge
  | _ -> None

let falu_of_binop : Ops.binop -> Insn.falu option = function
  | Ops.FAdd -> Some Insn.FAadd
  | Ops.FSub -> Some Insn.FAsub
  | Ops.FMul -> Some Insn.FAmul
  | Ops.FDiv -> Some Insn.FAdiv
  | _ -> None

let fcmp_of_binop : Ops.binop -> Insn.fcmp option = function
  | Ops.FEq -> Some Insn.FCeq
  | Ops.FNe -> Some Insn.FCne
  | Ops.FLt -> Some Insn.FClt
  | Ops.FLe -> Some Insn.FCle
  | Ops.FGt -> Some Insn.FCgt
  | Ops.FGe -> Some Insn.FCge
  | _ -> None

let kind_of_promo : Instr.promo -> Insn.ld_kind = function
  | Instr.P_none -> Insn.K_ld
  | Instr.P_ld_a -> Insn.K_ld_a
  | Instr.P_ld_sa -> Insn.K_ld_sa

(* Synthetic loads/stores (formal spills, recovery pointer reloads when the
   IR site is reused) keep real sites where available; codegen-invented
   memory ops carry site -1, which nothing downstream keys on. *)
let synth_site = -1

let lower_instr ctx (ins : Instr.instr) : unit =
  match ins with
  | Instr.Load { dst; addr; mty = _; site; promo } ->
    let base = addr_reg ctx addr in
    emit ctx.b
      (Insn.Ld
         { kind = kind_of_promo promo; dst = dest_of_temp ctx dst; base;
           site = Site.to_int site })
  | Instr.Store { src; addr; mty = _; site } ->
    let v = src_of_operand ctx src in
    let base = addr_reg ctx addr in
    emit ctx.b (Insn.St { src = v; base; site = Site.to_int site })
  | Instr.Bin { dst; op; a; b } -> (
    let va = src_of_operand ctx a and vb = src_of_operand ctx b in
    match (ialu_of_binop op, falu_of_binop op, fcmp_of_binop op) with
    | Some iop, _, _ ->
      emit ctx.b (Insn.Alu { op = iop; dst = ireg_of_temp ctx dst; a = va; b = vb })
    | _, Some fop, _ ->
      emit ctx.b
        (Insn.Falu { op = fop; dst = reg_of_temp ctx dst; a = va; b = vb })
    | _, _, Some cop ->
      emit ctx.b
        (Insn.Fcmp { op = cop; dst = ireg_of_temp ctx dst; a = va; b = vb })
    | None, None, None -> assert false)
  | Instr.Un { dst; op; a } -> (
    let v = src_of_operand ctx a in
    match op with
    | Ops.Neg ->
      emit ctx.b
        (Insn.Alu
           { op = Insn.Asub; dst = ireg_of_temp ctx dst; a = Insn.SImm 0L;
             b = v })
    | Ops.Not ->
      emit ctx.b
        (Insn.Alu
           { op = Insn.Axor; dst = ireg_of_temp ctx dst; a = v;
             b = Insn.SImm (-1L) })
    | Ops.FNeg ->
      (* IEEE-exact negation: -0.0 - x flips the sign for every x,
         including signed zeros and NaN payload propagation *)
      emit ctx.b
        (Insn.Falu
           { op = Insn.FAsub; dst = reg_of_temp ctx dst; a = Insn.SFim (-0.0);
             b = v })
    | Ops.I2F -> emit ctx.b (Insn.Itof { dst = reg_of_temp ctx dst; src = v })
    | Ops.F2I -> emit ctx.b (Insn.Ftoi { dst = ireg_of_temp ctx dst; src = v }))
  | Instr.Mov { dst; src } ->
    emit ctx.b
      (Insn.Mov { dst = dest_of_temp ctx dst; src = src_of_operand ctx src })
  | Instr.Call { dst; callee; args; site } -> (
    match callee, args, dst with
    | "print_int", [ a ], None ->
      emit ctx.b (Insn.Print { what = src_of_operand ctx a; as_float = false })
    | "print_float", [ a ], None ->
      emit ctx.b (Insn.Print { what = src_of_operand ctx a; as_float = true })
    | "malloc", [ n ], Some d ->
      (* lowering emits [Alloc] for malloc; accept a literal call too *)
      emit ctx.b
        (Insn.Alloc
           { dst = ireg_of_temp ctx d; nbytes = src_of_operand ctx n;
             site = Site.to_int site })
    | _ ->
      emit ctx.b
        (Insn.Call
           { callee; args = List.map (src_of_operand ctx) args;
             ret = Option.map (dest_of_temp ctx) dst }))
  | Instr.Alloc { dst; nbytes; site } ->
    emit ctx.b
      (Insn.Alloc
         { dst = ireg_of_temp ctx dst; nbytes = src_of_operand ctx nbytes;
           site = Site.to_int site })
  | Instr.Check { dst; addr; mty = _; site; kind = Instr.C_ld_c { clear }; _ }
    ->
    (* the check load targets the promotion temp's own (pinned) register:
       its ALAT tag is exactly the one the arming ld.a allocated *)
    let base = addr_reg ctx addr in
    emit ctx.b
      (Insn.Ld
         { kind = Insn.K_ld_c { clear }; dst = dest_of_temp ctx dst; base;
           site = Site.to_int site })
  | Instr.Check
      { dst; addr; mty = _; site; kind = Instr.C_chk_a _; recovery } ->
    let rec_lbl = fresh_lbl ctx.b in
    emit_patched ctx.b
      (Insn.Chk_a
         { tag = dest_of_temp ctx dst; recovery = rec_lbl;
           site = Site.to_int site });
    let back_lbl = fresh_lbl ctx.b in
    bind_lbl ctx.b back_lbl;
    ctx.pending <-
      { rec_lbl; back_lbl; p_dst = dst; p_addr = addr;
        p_site = Site.to_int site; p_instrs = recovery }
      :: ctx.pending
  | Instr.Invala { dst } ->
    emit ctx.b (Insn.Invala_e { tag = dest_of_temp ctx dst })
  | Instr.Sw_check { dst; addr; store_addr; stored; mty = _; site = _ } ->
    (* software run-time disambiguation: if the suspect store wrote our
       address, refresh the temp from the stored value, else keep it *)
    let a1 = addr_reg ctx addr in
    let a2 = addr_reg ctx store_addr in
    let c = fresh_ireg ctx in
    emit ctx.b
      (Insn.Alu
         { op = Insn.Acmp_eq; dst = c; a = Insn.SReg a1; b = Insn.SReg a2 });
    let dstd = dest_of_temp ctx dst in
    let self =
      match dstd with Insn.DInt r -> Insn.SReg r | Insn.DFlt f -> Insn.SFrg f
    in
    emit ctx.b
      (Insn.Sel
         { dst = dstd; cond = c; if_true = src_of_operand ctx stored;
           if_false = self })

(* Emit pending chk.a recovery blocks (after the function body).  A
   recovery block may itself contain checks, so drain until stable. *)
let rec flush_recovery ctx =
  match ctx.pending with
  | [] -> ()
  | { rec_lbl; back_lbl; p_dst; p_addr; p_site; p_instrs } :: rest ->
    ctx.pending <- rest;
    bind_lbl ctx.b rec_lbl;
    (* generic chk.a recovery prefix: reload the checked temp itself with a
       fresh ld.a, re-arming its ALAT entry *)
    let base = addr_reg ctx p_addr in
    emit ctx.b
      (Insn.Ld
         { kind = Insn.K_ld_a; dst = dest_of_temp ctx p_dst; base;
           site = p_site });
    List.iter (lower_instr ctx) p_instrs;
    emit_patched ctx.b (Insn.Br { target = back_lbl });
    flush_recovery ctx

(* --- function-level driver, split into phases ---

   Selection, register allocation, block layout and bundling are separate
   functions over explicit intermediate records so the staged pipeline
   (lib/driver) can cache each phase's output under its own
   content-addressed key.  [gen_func] composes the phases exactly as the
   old fused driver did; none of the phase functions mutates its input
   record or the arrays it carries, so cached intermediates can feed any
   number of downstream builds. *)

let round8 n = (n + 7) / 8 * 8

(* Instruction selection: everything up to (and excluding) register
   allocation — virtual registers, resolved branch targets, recovery
   blocks flushed after the body. *)
type selected = {
  sel_name : string;
  sel_formals : (Symbol.t * Insn.dest) list; (* dests are virtual *)
  sel_code : Insn.insn array;
  sel_body_len : int; (* recovery blocks start at this index *)
  sel_nivregs : int;
  sel_nfvregs : int;
  sel_live_in : int list;
  sel_flive_in : int list;
  sel_pinned : int list;
  sel_fpinned : int list;
  sel_frame_bytes : int; (* symbol slots only; spill slots extend it *)
  sel_slot_of_sym : (int, int) Hashtbl.t;
}

(* Post-regalloc: physical registers, spill code inserted, frame final. *)
type allocated = {
  al_name : string;
  al_formals : (Symbol.t * Insn.dest) list; (* dests are physical *)
  al_code : Insn.insn array;
  al_body_len : int;
  al_nregs : int;
  al_nfregs : int;
  al_frame_bytes : int;
  al_slot_of_sym : (int, int) Hashtbl.t;
}

let select_func (f : Func.t) : selected =
  let b =
    { rev = []; len = 0; lbl_pos = Hashtbl.create 16; patches = [];
      next_lbl = -1 }
  in
  let ctx =
    { b; next_ireg = 1 (* 0 = sp *); next_freg = 0;
      temp_reg = Hashtbl.create 64; sym_reg = Hashtbl.create 16;
      slot_of_sym = Hashtbl.create 16; pending = []; pinned = [] }
  in
  (* frame layout: formals first, then locals *)
  let frame_bytes =
    List.fold_left
      (fun off s ->
        Hashtbl.replace ctx.slot_of_sym (Symbol.id s) off;
        off + round8 (Symbol.size_bytes s))
      0
      (Func.formals f @ Func.locals f)
  in
  let referenced, pinned_temps = prescan f in
  (* prologue 1: materialize every referenced symbol address once *)
  List.iter
    (fun s ->
      let r = fresh_ireg ctx in
      (if Symbol.is_global s then
         emit b (Insn.Gaddr { dst = r; sym = Symbol.id s })
       else
         let slot = Hashtbl.find ctx.slot_of_sym (Symbol.id s) in
         emit b
           (Insn.Alu
              { op = Insn.Aadd; dst = r; a = Insn.SReg Insn.sp;
                b = Insn.SImm (Int64.of_int slot) }));
      Hashtbl.replace ctx.sym_reg (Symbol.id s) r)
    referenced;
  (* prologue 2: spill incoming formals to their frame slots *)
  let formals =
    List.map
      (fun s ->
        let d =
          match Symbol.mty s with
          | Mem_ty.I64 -> Insn.DInt (fresh_ireg ctx)
          | Mem_ty.F64 -> Insn.DFlt (fresh_freg ctx)
        in
        (s, d))
      (Func.formals f)
  in
  List.iter
    (fun (s, d) ->
      let v =
        match d with
        | Insn.DInt r -> Insn.SReg r
        | Insn.DFlt fr -> Insn.SFrg fr
      in
      emit b
        (Insn.St { src = v; base = sym_addr_reg ctx s; site = synth_site }))
    formals;
  (* body: blocks in layout order; a Jump to the next block falls through *)
  let blocks = Func.blocks f in
  let rec go = function
    | [] -> ()
    | (blk : Block.t) :: rest ->
      bind_lbl b (Label.id (Block.label blk));
      List.iter (lower_instr ctx) blk.Block.instrs;
      (match blk.Block.term with
      | Instr.Jump l -> (
        match rest with
        | next :: _ when Label.equal (Block.label next) l -> ()
        | _ -> emit_patched b (Insn.Br { target = Label.id l }))
      | Instr.Br { cond; ifso; ifnot; site } ->
        let c = int_reg_of_operand ctx cond in
        emit_patched b
          (Insn.Brc
             { cond = c; ifso = Label.id ifso; ifnot = Label.id ifnot;
               site = Srp_ir.Site.to_int site })
      | Instr.Ret o ->
        emit b (Insn.Ret { value = Option.map (src_of_operand ctx) o }));
      go rest
  in
  go blocks;
  (* recovery blocks start here; Layout keeps them out-of-line at the end *)
  let body_len = b.len in
  flush_recovery ctx;
  let code = resolve b in
  (* ALAT temps get private physical registers downstream *)
  let pinned_i, pinned_f =
    List.fold_left
      (fun (pi, pf) t ->
        match dest_of_temp ctx t with
        | Insn.DInt r -> (r :: pi, pf)
        | Insn.DFlt fr -> (pi, fr :: pf))
      ([], []) pinned_temps
  in
  let live_in, flive_in =
    List.fold_left
      (fun (li, fli) (_, d) ->
        match d with
        | Insn.DInt r -> (r :: li, fli)
        | Insn.DFlt fr -> (li, fr :: fli))
      ([], []) formals
  in
  { sel_name = Func.name f;
    sel_formals = formals;
    sel_code = code;
    sel_body_len = body_len;
    sel_nivregs = ctx.next_ireg;
    sel_nfvregs = ctx.next_freg;
    sel_live_in = live_in;
    sel_flive_in = flive_in;
    sel_pinned = pinned_i;
    sel_fpinned = pinned_f;
    sel_frame_bytes = frame_bytes;
    sel_slot_of_sym = ctx.slot_of_sym }

let alloc_func ?(ra = Regalloc.default_policy) (s : selected) : allocated =
  let res =
    Srp_obs.Stats.time ~pass:"target" "regalloc" (fun () ->
        Regalloc.run ~policy:ra
          { Regalloc.code = s.sel_code; nivregs = s.sel_nivregs;
            nfvregs = s.sel_nfvregs; live_in = s.sel_live_in;
            flive_in = s.sel_flive_in; pinned = s.sel_pinned;
            fpinned = s.sel_fpinned; spill_base = s.sel_frame_bytes })
  in
  (* spill slots live past the symbol slots; splitting may grow the frame,
     slot coloring keeps the growth to the peak overlap *)
  let frame_bytes = s.sel_frame_bytes + res.Regalloc.spill_bytes in
  (* spill reloads/stores shift instruction indices: recovery code now
     starts where the old boundary landed *)
  let body_len = res.Regalloc.new_index.(s.sel_body_len) in
  Srp_obs.Stats.set_max
    (Srp_obs.Stats.counter ~pass:"target" "max_int_regs")
    res.Regalloc.nregs;
  let rst = res.Regalloc.stats in
  List.iter
    (fun (name, v) ->
      Srp_obs.Stats.add (Srp_obs.Stats.counter ~pass:"target" name) v)
    [ ("subranges", rst.Regalloc.subranges);
      ("webs", rst.Regalloc.webs);
      ("splits_inserted", rst.Regalloc.splits_inserted);
      ("spilled_webs", rst.Regalloc.spilled_webs);
      ("spill_slots", rst.Regalloc.spill_slots);
      ("spill_reloads", rst.Regalloc.reloads);
      ("spill_stores", rst.Regalloc.spill_stores);
      ("remat_webs", rst.Regalloc.remat_webs);
      ("remat_uses", rst.Regalloc.remat_uses) ];
  let remap_dest = function
    | Insn.DInt r -> Insn.DInt res.Regalloc.imap.(r)
    | Insn.DFlt fr -> Insn.DFlt res.Regalloc.fmap.(fr)
  in
  { al_name = s.sel_name;
    al_formals = List.map (fun (sym, d) -> (sym, remap_dest d)) s.sel_formals;
    al_code = res.Regalloc.code;
    al_body_len = body_len;
    al_nregs = res.Regalloc.nregs;
    al_nfregs = res.Regalloc.nfregs;
    al_frame_bytes = frame_bytes;
    al_slot_of_sym = s.sel_slot_of_sym }

let layout_func (a : allocated) : allocated =
  let ls = { Layout.loops_rotated = 0; blocks_moved = 0 } in
  let code =
    Srp_obs.Stats.time ~pass:"target" "layout" (fun () ->
        Layout.run ~stats:ls ~body_len:a.al_body_len a.al_code)
  in
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "loops_rotated")
    ls.Layout.loops_rotated;
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "blocks_moved")
    ls.Layout.blocks_moved;
  { a with al_code = code }

(* List scheduling after layout, before bundling: layout fixes the block
   order (and with it the predictor geometry), scheduling then reorders
   within each block, and the bundler packs the scheduled stream. *)
let sched_func (a : allocated) : allocated =
  let st = { Sched.blocks = 0; moved = 0; hoist = 0 } in
  let code =
    Srp_obs.Stats.time ~pass:"target" "sched" (fun () ->
        Sched.run ~stats:st a.al_code)
  in
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "sched_blocks")
    st.Sched.blocks;
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "sched_moved")
    st.Sched.moved;
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "sched_hoist_slots")
    st.Sched.hoist;
  { a with al_code = code }

let func_of_allocated (a : allocated) ~(bundles : Insn.bundle array option) :
    Insn.func =
  { Insn.name = a.al_name;
    formals = a.al_formals;
    code = a.al_code;
    bundles;
    nregs = a.al_nregs;
    nfregs = a.al_nfregs;
    frame_bytes = a.al_frame_bytes;
    slot_of_sym = a.al_slot_of_sym }

(* Bundling last: it only pads and remaps indices, so it composes with
   both regalloc's ALAT pinning and layout's block order. *)
let bundle_func (a : allocated) : Insn.func =
  let bst = { Bundle.bundles = 0; nops_added = 0; stops = 0 } in
  let code, bs =
    Srp_obs.Stats.time ~pass:"target" "bundle" (fun () ->
        Bundle.run ~stats:bst a.al_code)
  in
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "bundles_emitted")
    bst.Bundle.bundles;
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "bundle_nops")
    bst.Bundle.nops_added;
  Srp_obs.Stats.add
    (Srp_obs.Stats.counter ~pass:"target" "bundle_stops")
    bst.Bundle.stops;
  func_of_allocated { a with al_code = code } ~bundles:(Some bs)

let flat_func (a : allocated) : Insn.func = func_of_allocated a ~bundles:None

let gen_func ?(layout = true) ?(sched = true) ?(bundle = true)
    ?(ra = Regalloc.default_policy) (f : Func.t) : Insn.func =
  let s = select_func f in
  let a = alloc_func ~ra s in
  let a = if layout then layout_func a else a in
  let a = if sched then sched_func a else a in
  if bundle then bundle_func a else flat_func a

let gen_program ?(layout = true) ?(sched = true) ?(bundle = true)
    ?(ra = Regalloc.default_policy) (prog : Program.t) : Insn.program =
  let funcs = Hashtbl.create 16 in
  Srp_obs.Stats.time ~pass:"target" "codegen" (fun () ->
      List.iter
        (fun f ->
          Hashtbl.replace funcs (Func.name f)
            (gen_func ~layout ~sched ~bundle ~ra f))
        (Program.funcs prog));
  { Insn.funcs;
    func_order = prog.Program.func_order;
    globals = Program.globals prog }

(* Program-level phase drivers for the staged pipeline: each maps its
   per-function phase over a list in [func_order], so the driver can cache
   the whole program's intermediate under one stage key. *)

let select_program (prog : Program.t) : selected list =
  Srp_obs.Stats.time ~pass:"target" "codegen" (fun () ->
      List.map select_func (Program.funcs prog))

let alloc_program ?ra (sel : selected list) : allocated list =
  List.map (fun s -> alloc_func ?ra s) sel

let layout_program (al : allocated list) : allocated list =
  List.map layout_func al

let bundle_program ~(sched : bool) ~(bundle : bool) (al : allocated list) :
    Insn.func list =
  List.map
    (fun a ->
      let a = if sched then sched_func a else a in
      if bundle then bundle_func a else flat_func a)
    al

(* Final assembly is cheap (one hashtable build over shared [Insn.func]
   values) and happens outside the cache, per compile. *)
let assemble_program (prog : Program.t) (fns : Insn.func list) : Insn.program
    =
  let funcs = Hashtbl.create 16 in
  List.iter (fun (f : Insn.func) -> Hashtbl.replace funcs f.Insn.name f) fns;
  { Insn.funcs;
    func_order = prog.Program.func_order;
    globals = Program.globals prog }
