(* Speculation policy: decides which chi/mu operations are *speculative*
   (paper section 3.1): an update/use of location L at site s is marked
   speculative when, per the policy, it is unlikely to touch L at runtime.

   - [Profile]: answers come with a conflict *probability* — the fraction
     of the site's training executions that touched L (the paper's primary
     scheme, fig. 5, extended with the probability-annotated alias facts
     of the probabilistic-alias-analysis line of work).  Call sites use
     the callee's *dynamic* mod rates: per-invocation touch frequencies of
     the locations its store sites (and transitively its callees') were
     observed to write.
   - [Heuristic]: no profile; speculate that an indirect store does not
     touch a location unless the points-to set is a singleton (a crude
     stand-in the paper mentions as "heuristic rules").  Probabilities are
     binary.
   - [Never]: the conservative baseline — nothing is speculative; every
     probability is 1.

   The boolean predicates are defined as [probability > 0], so the legacy
   set-membership verdicts are preserved exactly: a location is in a
   site's observed target set iff its hit count — hence its conflict
   rate — is nonzero. *)

open Srp_ir
module Location = Srp_alias.Location
module Alias_profile = Srp_profile.Alias_profile

type mode =
  | Never
  | Heuristic
  | Profile of Alias_profile.t

type t = {
  mode : mode;
  dyn_mod : (string, float Location.Map.t) Hashtbl.t;
      (* per-function dynamic mod: location -> per-invocation touch rate *)
}

(* Dynamic mod rates: which locations did each function's stores actually
   touch (transitively), per the profile, and how often per invocation.
   Fixpoint over the call graph.  A function's own stores contribute
   hits / entry-count (clamped to 1); callee maps propagate by point-wise
   max — monotone and drawn from a finite value set, so the fixpoint
   terminates even on recursive call graphs.  The support of the map (the
   rate > 0 locations) is exactly the legacy dynamic mod *set*. *)
let compute_dyn_mod (prog : Program.t) (profile : Alias_profile.t) =
  let tbl = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None -> Location.Map.empty
  in
  let max_merge a b =
    Location.Map.union (fun _ x y -> Some (Float.max x y)) a b
  in
  (* Per-function own-store hit totals, divided by training invocations. *)
  let own f =
    let fname = Func.name f in
    let entries =
      Alias_profile.block_count profile ~func:fname
        ~label_id:(Label.id (Func.entry f))
    in
    let hits = ref Location.Map.empty in
    let add loc h =
      if h > 0 then
        hits :=
          Location.Map.update loc
            (function Some n -> Some (n + h) | None -> Some h)
            !hits
    in
    Func.iter_instrs
      (fun _ ins ->
        match ins with
        | Instr.Store { addr; site; _ } -> (
          match addr.Ops.base with
          | Ops.Sym s ->
            if Alias_profile.executed profile site then
              add (Location.Sym s) (Alias_profile.count profile site)
          | Ops.Reg _ ->
            Location.Set.iter
              (fun loc -> add loc (Alias_profile.touch_count profile site loc))
              (Alias_profile.targets profile site))
        | _ -> ())
      f;
    Location.Map.map
      (fun h -> Float.min 1.0 (float_of_int h /. float_of_int (max 1 entries)))
      !hits
  in
  let owns =
    List.map (fun f -> (f, own f)) (Program.funcs prog)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f, own_rates) ->
        let fname = Func.name f in
        let acc = ref own_rates in
        Func.iter_instrs
          (fun _ ins ->
            match ins with
            | Instr.Call { callee; _ } ->
              if not (Program.is_builtin callee) then
                acc := max_merge !acc (get callee)
            | _ -> ())
          f;
        if not (Location.Map.equal Float.equal !acc (get fname)) then begin
          Hashtbl.replace tbl fname !acc;
          changed := true
        end)
      owns
  done;
  tbl

let create (prog : Program.t) (mode : mode) : t =
  let dyn_mod =
    match mode with
    | Profile p -> compute_dyn_mod prog p
    | Never | Heuristic -> Hashtbl.create 1
  in
  { mode; dyn_mod }

(* Conflict probability of the indirect access at [site] against [loc]:
   how likely is one execution of the site to touch it?  [n_targets] is
   the size of the static points-to set (for the heuristic). *)
let store_conflict_prob t ~site ~n_targets loc =
  match t.mode with
  | Never -> 1.0
  | Heuristic -> if n_targets <= 1 then 1.0 else 0.0
  | Profile p -> Alias_profile.conflict_rate p site loc

(* Conflict probability of the call at [site] (to [callee]) against
   [loc]: the callee's transitive per-invocation touch rate. *)
let call_conflict_prob t ~callee ~site loc =
  ignore site;
  match t.mode with
  | Never -> 1.0
  | Heuristic -> 1.0 (* never speculate across calls without a profile *)
  | Profile _ -> (
    match Hashtbl.find_opt t.dyn_mod callee with
    | Some m -> (
      match Location.Map.find_opt loc m with Some r -> r | None -> 0.0)
    | None -> 0.0 (* callee never ran under training input *)
  )

(* May the indirect access at [site] touch [loc], per the policy?  The
   binary verdict: exactly [conflict probability > 0]. *)
let store_may_touch t ~site ~n_targets loc =
  store_conflict_prob t ~site ~n_targets loc > 0.0

(* May the call at [site] (to [callee]) modify [loc]? *)
let call_may_touch t ~callee ~site loc =
  call_conflict_prob t ~callee ~site loc > 0.0

let is_profiled t = match t.mode with Profile _ -> true | Never | Heuristic -> false

(* --- cost-model inputs threaded to the promoter --- *)

type latency_class =
  | Lat_l1 (* integer loads: L1 hit, 2 cycles on the modeled machine *)
  | Lat_fp (* floating-point loads bypass L1, 9 cycles *)

let latency_class (mty : Mem_ty.t) : latency_class =
  match mty with Mem_ty.I64 -> Lat_l1 | Mem_ty.F64 -> Lat_fp

(* How many dynamic executions one static occurrence stands for.  With a
   profile the training block count is the estimate (a never-executed
   block contributes nothing); without one every occurrence counts once. *)
let occurrence_weight t ~block_count =
  match t.mode with
  | Profile _ -> max 0 block_count
  | Never | Heuristic -> 1
