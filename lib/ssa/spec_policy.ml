(* Speculation policy: decides which chi/mu operations are *speculative*
   (paper section 3.1): an update/use of location L at site s is marked
   speculative when, per the policy, it is unlikely to touch L at runtime.

   - [Profile]: L not in the site's observed target set from alias
     profiling (the paper's primary scheme; fig. 5).  Call sites use the
     callee's *dynamic* mod set: the union of targets its store sites (and
     transitively its callees') were observed to write.
   - [Heuristic]: no profile; speculate that an indirect store does not
     touch a location unless the points-to set is a singleton (a crude
     stand-in the paper mentions as "heuristic rules").
   - [Never]: the conservative baseline — nothing is speculative. *)

open Srp_ir
module Location = Srp_alias.Location
module Alias_profile = Srp_profile.Alias_profile

type mode =
  | Never
  | Heuristic
  | Profile of Alias_profile.t

type t = {
  mode : mode;
  dyn_mod : (string, Location.Set.t) Hashtbl.t; (* per-function dynamic mod *)
}

(* Dynamic mod sets: which locations did each function's stores actually
   touch (transitively), per the profile.  Fixpoint over the call graph. *)
let compute_dyn_mod (prog : Program.t) (profile : Alias_profile.t) =
  let tbl = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some s -> s
    | None -> Location.Set.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let fname = Func.name f in
        let acc = ref (get fname) in
        Func.iter_instrs
          (fun _ ins ->
            match ins with
            | Instr.Store { addr; site; _ } -> (
              match addr.Ops.base with
              | Ops.Sym s ->
                if Alias_profile.executed profile site then
                  acc := Location.Set.add (Location.Sym s) !acc
              | Ops.Reg _ ->
                acc := Location.Set.union (Alias_profile.targets profile site) !acc)
            | Instr.Call { callee; _ } ->
              if not (Program.is_builtin callee) then
                acc := Location.Set.union (get callee) !acc
            | _ -> ())
          f;
        if not (Location.Set.equal !acc (get fname)) then begin
          Hashtbl.replace tbl fname !acc;
          changed := true
        end)
      (Program.funcs prog)
  done;
  tbl

let create (prog : Program.t) (mode : mode) : t =
  let dyn_mod =
    match mode with
    | Profile p -> compute_dyn_mod prog p
    | Never | Heuristic -> Hashtbl.create 1
  in
  { mode; dyn_mod }

(* May the indirect access at [site] touch [loc], per the policy?  [n_targets]
   is the size of the static points-to set (for the heuristic). *)
let store_may_touch t ~site ~n_targets loc =
  match t.mode with
  | Never -> true
  | Heuristic -> n_targets <= 1
  | Profile p -> Alias_profile.may_touch p site loc

(* May the call at [site] (to [callee]) modify [loc]? *)
let call_may_touch t ~callee ~site loc =
  ignore site;
  match t.mode with
  | Never -> true
  | Heuristic -> true (* never speculate across calls without a profile *)
  | Profile _ -> (
    match Hashtbl.find_opt t.dyn_mod callee with
    | Some s -> Location.Set.mem loc s
    | None -> false (* callee never ran under training input *)
  )

let is_profiled t = match t.mode with Profile _ -> true | Never | Heuristic -> false

(* --- cost-model inputs threaded to the promoter --- *)

type latency_class =
  | Lat_l1 (* integer loads: L1 hit, 2 cycles on the modeled machine *)
  | Lat_fp (* floating-point loads bypass L1, 9 cycles *)

let latency_class (mty : Mem_ty.t) : latency_class =
  match mty with Mem_ty.I64 -> Lat_l1 | Mem_ty.F64 -> Lat_fp

(* How many dynamic executions one static occurrence stands for.  With a
   profile the training block count is the estimate (a never-executed
   block contributes nothing); without one every occurrence counts once. *)
let occurrence_weight t ~block_count =
  match t.mode with
  | Profile _ -> max 0 block_count
  | Never | Heuristic -> 1
