(** Speculation policy: decides which chi/mu operations are *speculative*
    (paper section 3.1) — an update/use of location L at site s is marked
    chi_s/mu_s when, per the policy, it is unlikely to touch L at runtime.

    Call sites are judged against the callee's *dynamic mod set*: the union
    of locations its store sites (and transitively its callees') were
    observed writing under the training input, computed by a fixpoint over
    the call graph. *)

open Srp_ir

type mode =
  | Never  (** the conservative baseline: nothing is speculative *)
  | Heuristic
      (** no profile: speculate only when the static points-to set is not
          a singleton (the paper's "heuristic rules" stand-in) *)
  | Profile of Srp_profile.Alias_profile.t  (** the paper's scheme *)

type t

val create : Program.t -> mode -> t

(** Conflict probability of the indirect store at [site] against [loc]:
    the fraction of its training executions that touched it.  [n_targets]
    is the size of its static points-to set (used by the heuristic, which
    answers 0 or 1).  [Never] always answers 1. *)
val store_conflict_prob :
  t -> site:Site.t -> n_targets:int -> Srp_alias.Location.t -> float

(** Conflict probability of the call at [site] to [callee] against [loc]:
    the callee's transitive per-invocation touch rate under training. *)
val call_conflict_prob :
  t -> callee:string -> site:Site.t -> Srp_alias.Location.t -> float

(** May the indirect store at [site] touch [loc]?  Exactly
    [store_conflict_prob > 0], which preserves the legacy set-membership
    verdict.  [false] licenses a chi_s. *)
val store_may_touch : t -> site:Site.t -> n_targets:int -> Srp_alias.Location.t -> bool

(** May the call at [site] to [callee] modify [loc]?  Exactly
    [call_conflict_prob > 0]. *)
val call_may_touch : t -> callee:string -> site:Site.t -> Srp_alias.Location.t -> bool

val is_profiled : t -> bool

(** Latency class of a promoted load, the benefit side of the pressure
    cost model: integer loads are L1 hits (2 cycles on the modeled
    machine), floating-point loads bypass L1 (9 cycles). *)
type latency_class =
  | Lat_l1
  | Lat_fp

val latency_class : Mem_ty.t -> latency_class

(** How many dynamic executions one static occurrence stands for: the
    training block count under a profile (0 for a never-executed block),
    1 per occurrence otherwise. *)
val occurrence_weight : t -> block_count:int -> int
