(* Tests for the IR layer: CFG construction, dominators (checked against a
   naive reference algorithm on random CFGs), dominance frontiers, natural
   loops, critical-edge splitting, and the verifier. *)

open Srp_ir

(* Build a synthetic function from an edge list: nodes 0..n-1, node 0 is
   the entry, terminators are jumps/branches following the edge list. *)
let mk_func n (edges : (int * int) list) : Func.t =
  let temp_gen = Temp.Gen.create () in
  let label_gen = Label.Gen.create () in
  let f = Func.create ~name:"synth" ~formals:[] ~ret_mty:None ~temp_gen ~label_gen in
  let labels =
    Array.init n (fun i ->
        if i = 0 then Func.entry f
        else Block.label (Func.fresh_block ~hint:"n" f))
  in
  for i = 0 to n - 1 do
    let succs = List.filter_map (fun (a, b) -> if a = i then Some b else None) edges in
    let blk = Func.find_block f labels.(i) in
    match succs with
    | [] -> blk.Block.term <- Instr.Ret None
    | [ s ] -> blk.Block.term <- Instr.Jump labels.(s)
    | [ s1; s2 ] ->
      let t = Func.fresh_temp f Mem_ty.I64 in
      Block.append blk (Instr.Mov { dst = t; src = Ops.Int 1L });
      blk.Block.term <-
        Instr.Br
          { cond = Ops.Temp t; ifso = labels.(s1); ifnot = labels.(s2);
            site = i }
    | s1 :: s2 :: _ ->
      let t = Func.fresh_temp f Mem_ty.I64 in
      Block.append blk (Instr.Mov { dst = t; src = Ops.Int 1L });
      blk.Block.term <-
        Instr.Br
          { cond = Ops.Temp t; ifso = labels.(s1); ifnot = labels.(s2);
            site = i }
  done;
  f

(* Naive dominators: dom(b) = all nodes that appear on every path from the
   entry to b.  Computed by the classic iterative set algorithm. *)
let naive_dominators (cfg : Cfg.t) : bool array array =
  let n = Cfg.num_nodes cfg in
  let dom = Array.init n (fun i -> Array.make n (i <> 0 || true)) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      dom.(i).(j) <- (if i = 0 then i = j || false else true)
    done
  done;
  for j = 0 to n - 1 do
    dom.(0).(j) <- j = 0
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter = Array.make n true in
      let preds = Cfg.preds cfg i in
      if preds = [] then Array.fill inter 0 n false
      else
        List.iter (fun p -> Array.iteri (fun j v -> inter.(j) <- v && dom.(p).(j)) inter) preds;
      inter.(i) <- true;
      if inter <> dom.(i) then begin
        dom.(i) <- inter;
        changed := true
      end
    done
  done;
  dom

let test_cfg_rpo () =
  (* diamond: 0 -> 1,2 -> 3 *)
  let f = mk_func 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let cfg = Cfg.build f in
  Alcotest.(check int) "4 reachable nodes" 4 (Cfg.num_nodes cfg);
  Alcotest.(check int) "entry is node 0" 0 (Cfg.entry_index cfg);
  (* RPO: entry first, join last *)
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare (Cfg.preds cfg 3))

let test_cfg_unreachable () =
  (* node 3 unreachable *)
  let f = mk_func 4 [ (0, 1); (1, 2) ] in
  let cfg = Cfg.build f in
  Alcotest.(check int) "unreachable dropped" 3 (Cfg.num_nodes cfg)

let test_dominators_diamond () =
  let f = mk_func 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let j = 3 and b1 = 1 in
  Alcotest.(check bool) "entry dominates all" true (Dominance.dominates dom 0 j);
  Alcotest.(check bool) "branch arm does not dominate join" false
    (Dominance.dominates dom b1 j);
  Alcotest.(check (option int)) "idom of join is entry" (Some 0) (Dominance.idom dom j)

let test_dominators_loop () =
  (* 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit) *)
  let f = mk_func 4 [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let header = 1 in
  Alcotest.(check bool) "header dominates body" true
    (Dominance.dominates dom header 2);
  let loops = Loops.find cfg dom in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let l = List.hd loops in
  Alcotest.(check int) "loop header" header l.Loops.header;
  Alcotest.(check int) "loop body size" 2 (List.length l.Loops.body)

(* Random-CFG property: fast dominators match the naive quadratic ones. *)
let prop_dominators_match =
  QCheck.Test.make ~name:"dominators match naive reference" ~count:120
    QCheck.(pair (int_range 2 12) (list_of_size (Gen.int_range 1 30) (pair (int_bound 11) (int_bound 11))))
    (fun (n, raw_edges) ->
      let edges =
        (* keep the graph connected-ish: a spine 0->1->..->n-1 plus noise *)
        List.init (n - 1) (fun i -> (i, i + 1))
        @ List.filter_map
            (fun (a, b) -> if a < n && b < n && b <> 0 then Some (a, b) else None)
            raw_edges
      in
      let f = mk_func n edges in
      let cfg = Cfg.build f in
      let dom = Dominance.compute cfg in
      let naive = naive_dominators cfg in
      let m = Cfg.num_nodes cfg in
      let ok = ref true in
      for a = 0 to m - 1 do
        for b = 0 to m - 1 do
          if Dominance.dominates dom a b <> naive.(b).(a) then ok := false
        done
      done;
      !ok)

(* Dominance frontier property: b is in DF(a) iff a dominates a predecessor
   of b but does not strictly dominate b. *)
let prop_frontier_correct =
  QCheck.Test.make ~name:"dominance frontier definition" ~count:120
    QCheck.(pair (int_range 2 10) (list_of_size (Gen.int_range 1 25) (pair (int_bound 9) (int_bound 9))))
    (fun (n, raw_edges) ->
      let edges =
        List.init (n - 1) (fun i -> (i, i + 1))
        @ List.filter_map
            (fun (a, b) -> if a < n && b < n && b <> 0 then Some (a, b) else None)
            raw_edges
      in
      let f = mk_func n edges in
      let cfg = Cfg.build f in
      let dom = Dominance.compute cfg in
      let m = Cfg.num_nodes cfg in
      let ok = ref true in
      for a = 0 to m - 1 do
        for b = 0 to m - 1 do
          let in_df = List.mem b (Dominance.frontier dom a) in
          let should =
            List.exists (fun p -> Dominance.dominates dom a p) (Cfg.preds cfg b)
            && not (Dominance.strictly_dominates dom a b)
          in
          if in_df <> should then ok := false
        done
      done;
      !ok)

let test_split_critical_edges () =
  (* 0 -> {1, 2}; 1 -> 2: edge 0->2 is critical *)
  let f = mk_func 3 [ (0, 1); (0, 2); (1, 2) ] in
  Loops.split_critical_edges f;
  let cfg = Cfg.build f in
  (* after splitting there must be no edge whose source has several
     successors and whose target has several predecessors *)
  let ok = ref true in
  for i = 0 to Cfg.num_nodes cfg - 1 do
    if List.length (Cfg.succs cfg i) > 1 then
      List.iter
        (fun s -> if List.length (Cfg.preds cfg s) > 1 then ok := false)
        (Cfg.succs cfg i)
  done;
  Alcotest.(check bool) "no critical edges" true !ok;
  Verify.check_func f

let test_verify_catches_bad_label () =
  let f = mk_func 2 [ (0, 1) ] in
  let blk = List.hd (Func.blocks f) in
  let bogus =
    let g = Label.Gen.create () in
    let rec skip n = if n = 0 then Label.Gen.fresh g else (ignore (Label.Gen.fresh g); skip (n - 1)) in
    skip 100
  in
  blk.Block.term <- Instr.Jump bogus;
  Alcotest.(check bool) "verifier rejects" true
    (try
       Verify.check_func f;
       false
     with Verify.Ill_formed _ -> true)

let test_verify_catches_double_def () =
  let f = mk_func 1 [] in
  let blk = List.hd (Func.blocks f) in
  let t = Func.fresh_temp f Mem_ty.I64 in
  Block.append blk (Instr.Mov { dst = t; src = Ops.Int 1L });
  Block.append blk (Instr.Mov { dst = t; src = Ops.Int 2L });
  Alcotest.(check bool) "verifier rejects double def" true
    (try
       Verify.check_func f;
       false
     with Verify.Ill_formed _ -> true);
  (* but it is legal once the function leaves the SSA-temp regime *)
  f.Func.ssa_temps <- false;
  Verify.check_func f

let test_verify_catches_undominated_use () =
  (* use in one branch of a diamond, def in the other *)
  let f = mk_func 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = Func.fresh_temp f Mem_ty.I64 in
  let b1 = Cfg.build f in
  let blk1 = Cfg.block b1 (Cfg.index_of_label b1 (Block.label (List.nth (Func.blocks f) 1))) in
  let blk2 = List.nth (Func.blocks f) 2 in
  Block.append blk1 (Instr.Mov { dst = t; src = Ops.Int 1L });
  Block.append blk2 (Instr.Un { dst = Func.fresh_temp f Mem_ty.I64; op = Ops.Neg; a = Ops.Temp t });
  Alcotest.(check bool) "verifier rejects undominated use" true
    (try
       Verify.check_func f;
       false
     with Verify.Ill_formed _ -> true)

let test_iterated_frontier () =
  (* classic: defs in both arms of a diamond put a phi at the join *)
  let f = mk_func 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let idf = Dominance.iterated_frontier dom [ 1; 2 ] in
  Alcotest.(check (list int)) "idf is the join" [ 3 ] idf

let test_instr_defs_uses () =
  let tg = Temp.Gen.create () in
  let t1 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t2 = Temp.Gen.fresh tg Mem_ty.I64 in
  let ins = Instr.Bin { dst = t1; op = Ops.Add; a = Ops.Temp t2; b = Ops.Int 3L } in
  Alcotest.(check int) "one def" 1 (List.length (Instr.defs ins));
  Alcotest.(check int) "one use" 1 (List.length (Instr.uses ins));
  let ld = Instr.Load { dst = t1; addr = Ops.addr_of_temp t2; mty = Mem_ty.I64;
                        site = 0; promo = Instr.P_none } in
  Alcotest.(check bool) "load uses its base" true
    (List.exists (Temp.equal t2) (Instr.uses ld))

let suite =
  [ Alcotest.test_case "cfg rpo + preds" `Quick test_cfg_rpo;
    Alcotest.test_case "cfg drops unreachable" `Quick test_cfg_unreachable;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "dominators + natural loop" `Quick test_dominators_loop;
    QCheck_alcotest.to_alcotest prop_dominators_match;
    QCheck_alcotest.to_alcotest prop_frontier_correct;
    Alcotest.test_case "critical edge splitting" `Quick test_split_critical_edges;
    Alcotest.test_case "verifier: bad label" `Quick test_verify_catches_bad_label;
    Alcotest.test_case "verifier: double def" `Quick test_verify_catches_double_def;
    Alcotest.test_case "verifier: undominated use" `Quick test_verify_catches_undominated_use;
    Alcotest.test_case "iterated frontier" `Quick test_iterated_frontier;
    Alcotest.test_case "instr defs/uses" `Quick test_instr_defs_uses ]
