(* Tests for the observability layer (lib/obs) and its wiring: JSON
   round-trips, the pass-statistics registry, per-site event attribution
   (histogram sums must equal the global counters), the counter
   field-count guard, the bounded trace sink, ablation wiring and the
   emitted `srp run --json` / bench documents. *)

open Srp_driver
module J = Srp_obs.Json
module Stats = Srp_obs.Stats
module Site_hist = Srp_obs.Site_hist
module Trace = Srp_obs.Trace
module C = Srp_machine.Counters

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* pretty-printable Json.t for alcotest equality *)
let json_testable : J.t Alcotest.testable =
  Alcotest.testable (fun ppf j -> Fmt.string ppf (J.to_string j)) ( = )

let parse_ok s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse of %S failed: %s" s e

(* --- Json --- *)

let roundtrip j =
  Alcotest.check json_testable
    (Fmt.str "compact round-trip of %s" (J.to_string j))
    j
    (parse_ok (J.to_string j));
  Alcotest.check json_testable "indented round-trip" j
    (parse_ok (J.to_string ~indent:2 j))

let test_json_roundtrip () =
  roundtrip J.Null;
  roundtrip (J.Bool true);
  roundtrip (J.Bool false);
  roundtrip (J.Int 0);
  roundtrip (J.Int (-42));
  roundtrip (J.Int max_int);
  roundtrip (J.Float 1.5);
  roundtrip (J.Float (-0.25));
  roundtrip (J.Float 3.141592653589793);
  (* whole-number floats must stay Float through the round-trip *)
  roundtrip (J.Float 2.0);
  roundtrip (J.String "");
  roundtrip (J.String "a\"b\\c\nd\te\r\x0c\x08f");
  roundtrip (J.String "unicode: \xc3\xa9\xe2\x82\xac");
  roundtrip (J.Arr []);
  roundtrip (J.Obj []);
  roundtrip
    (J.Obj
       [ ("a", J.Arr [ J.Int 1; J.Float 2.5; J.Null ]);
         ("nested", J.Obj [ ("b", J.Bool false); ("s", J.String "x y") ]);
         ("empty", J.Arr []) ])

let test_json_special_floats () =
  (* NaN / infinities are not representable in JSON: encoded as null *)
  Alcotest.(check string) "nan" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf" "null" (J.to_string (J.Float Float.infinity))

let test_json_escapes_control_chars () =
  let s = J.to_string (J.String "a\nb\x01c") in
  Alcotest.(check bool) "newline escaped" true (contains ~needle:"\\n" s);
  Alcotest.(check bool) "control escaped" true (contains ~needle:"\\u0001" s);
  Alcotest.check json_testable "still parses back" (J.String "a\nb\x01c")
    (parse_ok s)

let test_json_parse_unicode_escape () =
  Alcotest.check json_testable "\\u00e9 decodes to UTF-8"
    (J.String "\xc3\xa9")
    (parse_ok {|"é"|})

let test_json_parse_errors () =
  let rejects s =
    match J.of_string s with
    | Ok _ -> Alcotest.failf "parser accepted %S" s
    | Error _ -> ()
  in
  List.iter rejects
    [ ""; "{"; "["; "tru"; "nul"; "\"unterminated"; "{\"a\":}"; "[1,]";
      "{\"a\" 1}"; "1 2" (* trailing garbage *); "{} []"; "'single'";
      "+1"; "01a" ]

let test_json_accessors () =
  let doc = parse_ok {|{"a": 1, "b": [true, "x"], "f": 2.5}|} in
  Alcotest.(check (option int)) "member a" (Some 1)
    (Option.bind (J.member "a" doc) J.to_int_opt);
  Alcotest.(check (option int)) "missing member" None
    (Option.bind (J.member "zzz" doc) J.to_int_opt);
  Alcotest.(check bool) "to_float_opt accepts Int" true
    (Option.bind (J.member "a" doc) J.to_float_opt = Some 1.0);
  Alcotest.(check bool) "to_float_opt on Float" true
    (Option.bind (J.member "f" doc) J.to_float_opt = Some 2.5);
  (match Option.bind (J.member "b" doc) J.to_list_opt with
  | Some [ J.Bool true; J.String "x" ] -> ()
  | _ -> Alcotest.fail "to_list_opt shape");
  Alcotest.(check (option string)) "to_string_opt" (Some "x")
    (match J.member "b" doc with
    | Some (J.Arr [ _; s ]) -> J.to_string_opt s
    | _ -> None)

(* --- Counters: the field-count guard (satellite a) --- *)

let test_counters_field_guard () =
  let c = C.create () in
  (* Every field of Counters.t is an immediate int, so the runtime block
     size is exactly the field count: adding a field without extending
     to_fields (which feeds pp, to_json and the per-site cross-check)
     fails here. *)
  Alcotest.(check int) "to_fields covers every record field"
    (Obj.size (Obj.repr c))
    (List.length (C.to_fields c));
  let names = List.map fst (C.to_fields c) in
  Alcotest.(check int) "field names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_counters_pp_prints_all_fields () =
  let c = C.create () in
  let s = Fmt.str "%a" C.pp c in
  (* the fields the old pp dropped, plus a sentinel old one *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " printed") true (contains ~needle:n s))
    [ "rse_spilled_regs"; "rse_filled_regs"; "max_stacked_regs"; "cycles" ]

let test_counters_to_json () =
  let c = C.create () in
  c.C.loads_retired <- 7;
  let doc = C.to_json c in
  Alcotest.(check (option int)) "loads_retired" (Some 7)
    (Option.bind (J.member "loads_retired" doc) J.to_int_opt);
  match doc with
  | J.Obj fields ->
    Alcotest.(check int) "json has every field" (List.length (C.to_fields c))
      (List.length fields)
  | _ -> Alcotest.fail "counters json is not an object"

(* --- Stats registry --- *)

let test_stats_counters () =
  Stats.reset ();
  let c = Stats.counter ~pass:"obs-test" "widgets" in
  Stats.incr c;
  Stats.add c 4;
  Alcotest.(check int) "accumulated" 5 (Stats.value c);
  (* find-or-create is idempotent: same handle, same value *)
  Alcotest.(check int) "idempotent lookup" 5
    (Stats.value (Stats.counter ~pass:"obs-test" "widgets"));
  let m = Stats.counter ~pass:"obs-test" "high-water" in
  Stats.set_max m 3;
  Stats.set_max m 9;
  Stats.set_max m 2;
  Alcotest.(check int) "set_max keeps the max" 9 (Stats.value m)

let test_stats_timer_and_report () =
  Stats.reset ();
  let r = Stats.time ~pass:"obs-test" "work" (fun () -> 41 + 1) in
  Alcotest.(check int) "time returns f ()" 42 r;
  ignore (Stats.time ~pass:"obs-test" "work" (fun () -> ()));
  (* exceptions propagate but the call is still accounted *)
  (try Stats.time ~pass:"obs-test" "work" (fun () -> failwith "boom")
   with Failure _ -> ());
  ignore (Stats.counter ~pass:"obs-test" "widgets");
  let rep = Stats.report () in
  Alcotest.(check bool) "report mentions the timer" true
    (contains ~needle:"work" rep);
  Alcotest.(check bool) "report mentions the counter" true
    (contains ~needle:"widgets" rep);
  (match Stats.to_json () with
  | J.Arr entries ->
    Alcotest.(check int) "one json entry per statistic" 2 (List.length entries);
    let timer =
      List.find
        (fun e -> Option.bind (J.member "name" e) J.to_string_opt = Some "work")
        entries
    in
    Alcotest.(check (option int)) "timer call count" (Some 3)
      (Option.bind (J.member "calls" timer) J.to_int_opt)
  | _ -> Alcotest.fail "stats json is not an array");
  Stats.reset ();
  match Stats.to_json () with
  | J.Arr [] -> ()
  | _ -> Alcotest.fail "reset did not clear the registry"

(* Timed scopes use a monotonic wall clock, not Sys.time.  Sys.time is
   *process* CPU time: two domains spinning concurrently advance it at
   twice the wall rate, so each scope would record ~2x its own duration
   (the bug this pins down).  Each domain spins for a fixed wall-clock
   target, so with the wall clock every scope records ~target seconds
   regardless of what other domains do. *)
let test_stats_parallel_no_double_count () =
  Stats.reset ();
  let target = 0.05 in
  let spin () =
    let t0 = Srp_obs.Clock.now () in
    while Srp_obs.Clock.now () -. t0 < target do
      ()
    done
  in
  let worker () = Stats.time ~pass:"obs-test" "parallel-scope" spin in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  match Stats.find ~pass:"obs-test" "parallel-scope" with
  | None -> Alcotest.fail "timer not recorded"
  | Some (calls, secs) ->
    Alcotest.(check int) "both scopes recorded" 2 calls;
    Alcotest.(check bool)
      (Fmt.str "no CPU-time double-count (%.3fs for 2 x %.3fs scopes)" secs
         target)
      true
      (secs >= 2.0 *. target && secs < 2.0 *. target *. 1.5)

(* --- Site_hist --- *)

let test_site_hist_basics () =
  let h = Site_hist.create () in
  Site_hist.record h ~site:3 Site_hist.Loads_retired;
  Site_hist.record h ~site:3 Site_hist.Loads_retired;
  Site_hist.record h ~site:7 Site_hist.Loads_retired;
  Site_hist.record h ~site:7 Site_hist.Check_failures;
  Site_hist.record h ~site:1 Site_hist.Alat_inserts;
  Alcotest.(check int) "count" 2 (Site_hist.count h ~site:3 Site_hist.Loads_retired);
  Alcotest.(check int) "count absent" 0
    (Site_hist.count h ~site:99 Site_hist.Loads_retired);
  Alcotest.(check int) "total" 3 (Site_hist.total h Site_hist.Loads_retired);
  Alcotest.(check (list int)) "sites ascending" [ 1; 3; 7 ] (Site_hist.sites h);
  Alcotest.(check (list (pair int int))) "top ranked desc"
    [ (3, 2); (7, 1) ]
    (Site_hist.top h Site_hist.Loads_retired ~n:10);
  Alcotest.(check (list (pair int int))) "top truncates"
    [ (3, 2) ]
    (Site_hist.top h Site_hist.Loads_retired ~n:1);
  (* json omits zero counts *)
  (match Site_hist.to_json h with
  | J.Arr rows ->
    let row1 =
      List.find
        (fun r -> Option.bind (J.member "site" r) J.to_int_opt = Some 1)
        rows
    in
    Alcotest.(check (option int)) "nonzero event present" (Some 1)
      (Option.bind (J.member "alat_inserts" row1) J.to_int_opt);
    Alcotest.(check bool) "zero event omitted" true
      (J.member "loads_retired" row1 = None)
  | _ -> Alcotest.fail "site histogram json is not an array");
  (* event names track the Counters field names *)
  let counter_names = List.map fst (C.to_fields (C.create ())) in
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Site_hist.event_name e ^ " is a counter field")
        true
        (List.mem (Site_hist.event_name e) counter_names))
    Site_hist.all_events

(* --- per-site attribution vs global counters (the by-construction
   invariant the emitter documents) --- *)

let test_attribution_sums name () =
  let w = Srp_workloads.Registry.find name in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let r = Pipeline.profile_compile_run small Pipeline.Alat in
  let c = r.Pipeline.counters in
  let h = r.Pipeline.site_stats in
  let field e = List.assoc (Site_hist.event_name e) (C.to_fields c) in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Fmt.str "%s: site sum = global %s" name (Site_hist.event_name e))
        (field e) (Site_hist.total h e))
    Site_hist.all_events;
  Alcotest.(check bool) (name ^ " retired loads") true (c.C.loads_retired > 0)

(* Attribution with the pressure gate actively capping: at a zero
   register budget every candidate is over threshold, so only
   promotions whose saved latency beats the spill cost survive (the
   fp-load class) and the build runs with a mix of promoted and gated
   sites.  The per-site histogram must still sum to the global counters
   exactly — a gated site that kept a stale site id, or an edit applied
   outside the accepted set, breaks the equality. *)
let test_attribution_sums_gated () =
  let w = Srp_workloads.Registry.find "mcf" in
  let profile = Pipeline.train_profile w in
  let build config =
    let ir = Srp_frontend.Lower.compile_source w.Workload.source in
    Workload.apply_input ir w.Workload.train;
    let res =
      Srp_core.Promote.run ~config ~pressure:(Pipeline.pressure_fn ir) ir
    in
    (res, Srp_target.Codegen.gen_program ir)
  in
  let alat = Srp_core.Config.alat ~profile in
  let capped = { alat with Srp_core.Config.pressure_threshold = 0 } in
  let full, _ = build alat in
  let gated, target = build capped in
  Alcotest.(check bool) "the capped gate rejected at least one promotion" true
    (gated.Srp_core.Promote.stats.Srp_core.Ssapre.exprs_promoted
    < full.Srp_core.Promote.stats.Srp_core.Ssapre.exprs_promoted);
  let m = Srp_machine.Machine.create target in
  let _ = Srp_machine.Machine.run m in
  let c = Srp_machine.Machine.counters m in
  let h = Srp_machine.Machine.site_stats m in
  let field e = List.assoc (Site_hist.event_name e) (C.to_fields c) in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Fmt.str "capped mcf: site sum = global %s" (Site_hist.event_name e))
        (field e) (Site_hist.total h e))
    Site_hist.all_events

(* --- trace sink --- *)

let test_trace_bounded () =
  let path = Filename.temp_file "srp_obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let limit = 50 in
  let oc = open_out path in
  let sink = Trace.create ~limit oc in
  let w = Srp_workloads.Registry.find "gzip" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let c =
    Pipeline.compile ~profile:(Pipeline.train_profile small)
      ~input:small.Workload.train small Pipeline.Alat
  in
  let _ = Pipeline.run ~trace:sink c in
  Alcotest.(check bool) "hit the bound" true (Trace.truncated sink);
  Alcotest.(check int) "emitted stops at limit" limit (Trace.emitted sink);
  Trace.close sink;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  Alcotest.(check int) "limit + truncated record" (limit + 1)
    (List.length lines);
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.failf "trace line is not an object: %s" l
      | Error e -> Alcotest.failf "trace line does not parse: %s (%s)" l e)
    lines;
  let last = parse_ok (List.nth lines limit) in
  Alcotest.(check (option string)) "final truncated record"
    (Some "truncated")
    (Option.bind (J.member "ev" last) J.to_string_opt);
  Alcotest.(check bool) "dropped count positive" true
    (match Option.bind (J.member "dropped" last) J.to_int_opt with
    | Some n -> n > 0
    | None -> false)

(* Driving the sink past its bound emits exactly one
   {"ev":"truncated","dropped":N} record, with N exact. *)
let test_trace_truncation_exact () =
  let path = Filename.temp_file "srp_obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let limit = 10 and total = 25 in
  let oc = open_out path in
  let sink = Trace.create ~limit oc in
  for i = 1 to total do
    Trace.emit sink ~cycle:i "tick" [ ("i", J.Int i) ]
  done;
  Alcotest.(check int) "emitted caps at limit" limit (Trace.emitted sink);
  Trace.close sink;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev_map parse_ok !lines in
  Alcotest.(check int) "exactly limit + 1 lines" (limit + 1)
    (List.length lines);
  let truncs =
    List.filter
      (fun l ->
        Option.bind (J.member "ev" l) J.to_string_opt = Some "truncated")
      lines
  in
  Alcotest.(check int) "exactly one truncated record" 1 (List.length truncs);
  Alcotest.(check (option int)) "dropped count exact" (Some (total - limit))
    (Option.bind (J.member "dropped" (List.hd truncs)) J.to_int_opt)

let test_trace_untruncated () =
  let path = Filename.temp_file "srp_obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Trace.create oc in
  Trace.emit sink ~cycle:5 "alat.arm" [ ("site", J.Int 3) ];
  Trace.close sink;
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  let eof = try ignore (input_line ic); false with End_of_file -> true in
  close_in ic;
  Alcotest.(check bool) "no truncated record when under limit" true eof;
  let doc = parse_ok line in
  Alcotest.(check (option int)) "cycle" (Some 5)
    (Option.bind (J.member "c" doc) J.to_int_opt);
  Alcotest.(check (option string)) "kind" (Some "alat.arm")
    (Option.bind (J.member "ev" doc) J.to_string_opt);
  Alcotest.(check (option int)) "payload" (Some 3)
    (Option.bind (J.member "site" doc) J.to_int_opt)

(* --- ablation wiring (satellite b) --- *)

let test_ablation_names_roundtrip () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Pipeline.ablation_name a ^ " parses back")
        true
        (Pipeline.ablation_of_string (Pipeline.ablation_name a) = Some a))
    Pipeline.all_ablations;
  Alcotest.(check bool) "unknown rejected" true
    (Pipeline.ablation_of_string "frobnicate" = None)

let test_ablation_config_overrides () =
  let base =
    { Srp_core.Config.alat_heuristic with
      Srp_core.Config.use_invala = true;
      control_spec = true }
  in
  let open Srp_core.Config in
  Alcotest.(check bool) "no-invala" false
    (Pipeline.apply_ablation Pipeline.No_invala base).use_invala;
  Alcotest.(check bool) "no-control-spec" false
    (Pipeline.apply_ablation Pipeline.No_control_spec base).control_spec;
  Alcotest.(check bool) "cascade" true
    (Pipeline.apply_ablation Pipeline.Cascade base).cascade;
  Alcotest.(check int) "single-round" 1
    (Pipeline.apply_ablation Pipeline.Single_round base).max_rounds

let test_ablation_run_output_equal () =
  let w = Srp_workloads.Registry.find "gzip" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let plain = Pipeline.profile_compile_run small Pipeline.Alat in
  let ablated =
    Pipeline.profile_compile_run
      ~ablations:[ Pipeline.No_invala; Pipeline.Single_round ]
      small Pipeline.Alat
  in
  Alcotest.(check string) "ablations preserve program output"
    plain.Pipeline.output ablated.Pipeline.output;
  Alcotest.(check bool) "ablations recorded in compiled" true
    (ablated.Pipeline.compiled.Pipeline.ablations
    = [ Pipeline.No_invala; Pipeline.Single_round ])

(* --- emitted documents (satellite c, e2e) --- *)

let test_run_json_roundtrip () =
  let w = Srp_workloads.Registry.find "mcf" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let r = Pipeline.profile_compile_run small Pipeline.Alat in
  let s = J.to_string ~indent:2 (Emit.run_json ~name:"mcf" r) in
  let doc = parse_ok s in
  Alcotest.(check (option string)) "schema" (Some "srp-run-v1")
    (Option.bind (J.member "schema" doc) J.to_string_opt);
  Alcotest.(check (option string)) "level" (Some "alat")
    (Option.bind (J.member "level" doc) J.to_string_opt);
  let counters = Option.get (J.member "counters" doc) in
  let loads =
    Option.get (Option.bind (J.member "loads_retired" counters) J.to_int_opt)
  in
  Alcotest.(check bool) "nonzero loads_retired" true (loads > 0);
  (* histogram sums survive the JSON round-trip *)
  let hist =
    Option.get (Option.bind (J.member "site_histogram" doc) J.to_list_opt)
  in
  let hist_loads =
    List.fold_left
      (fun acc row ->
        acc
        + Option.value ~default:0
            (Option.bind (J.member "loads_retired" row) J.to_int_opt))
      0 hist
  in
  Alcotest.(check int) "histogram loads sum equals counter" loads hist_loads;
  (match Option.bind (J.member "pass_stats" doc) J.to_list_opt with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "pass_stats empty or missing");
  match Option.bind (J.member "promotion" doc) (J.member "exprs_promoted") with
  | Some (J.Int _) -> ()
  | _ -> Alcotest.fail "promotion stats missing"

let test_bench_json_roundtrip () =
  let w = Srp_workloads.Registry.find "gzip" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let r = Experiments.run_pair small in
  let s = J.to_string ~indent:2 (Emit.bench_json ~quick:true [ r ]) in
  let doc = parse_ok s in
  Alcotest.(check (option string)) "schema" (Some "srp-bench-v1")
    (Option.bind (J.member "schema" doc) J.to_string_opt);
  let benchmarks =
    Option.get (Option.bind (J.member "benchmarks" doc) J.to_list_opt)
  in
  Alcotest.(check int) "one benchmark" 1 (List.length benchmarks);
  let entry = List.hd benchmarks in
  Alcotest.(check (option string)) "name" (Some "gzip")
    (Option.bind (J.member "name" entry) J.to_string_opt);
  List.iter
    (fun fig ->
      match J.member fig entry with
      | Some (J.Obj _) -> ()
      | _ -> Alcotest.failf "%s row missing" fig)
    [ "figure8"; "figure9"; "figure10"; "figure11" ];
  match
    Option.bind (J.member "figure8" entry)
      (fun f ->
        Option.bind (J.member "cpu_cycles_reduction_pct" f) J.to_float_opt)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "figure8 cycles reduction missing"

(* The CLI end to end: `srp run FILE --json` prints a parseable document.
   Skipped outside the dune sandbox (the binary path is build-relative). *)
let test_cli_run_json () =
  let bin = Filename.concat (Filename.concat ".." "bin") "srp.exe" in
  if not (Sys.file_exists bin) then ()
  else begin
    let src = Filename.temp_file "srp_obs_cli" ".minic" in
    let out = Filename.temp_file "srp_obs_cli" ".json" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove src;
        Sys.remove out)
    @@ fun () ->
    let oc = open_out src in
    output_string oc
      "int a[8];\n\
       int main() {\n\
      \  int i; int s; s = 0;\n\
      \  for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }\n\
      \  for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }\n\
      \  return s;\n\
       }\n";
    close_out oc;
    let cmd =
      Fmt.str "%s run %s --json >%s 2>/dev/null" (Filename.quote bin)
        (Filename.quote src) (Filename.quote out)
    in
    let rc = Sys.command cmd in
    Alcotest.(check int) "exit code is the program's (sum 84 & 0xff)" 84 rc;
    let ic = open_in_bin out in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let doc = parse_ok s in
    Alcotest.(check (option string)) "schema" (Some "srp-run-v1")
      (Option.bind (J.member "schema" doc) J.to_string_opt);
    Alcotest.(check (option int)) "exit_code field" (Some 84)
      (Option.bind (J.member "exit_code" doc) J.to_int_opt);
    match
      Option.bind (J.member "counters" doc) (fun c ->
          Option.bind (J.member "loads_retired" c) J.to_int_opt)
    with
    | Some n when n > 0 -> ()
    | _ -> Alcotest.fail "cli json has no retired loads"
  end

let suite =
  [ Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: special floats" `Quick test_json_special_floats;
    Alcotest.test_case "json: control chars" `Quick
      test_json_escapes_control_chars;
    Alcotest.test_case "json: unicode escape" `Quick
      test_json_parse_unicode_escape;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json: accessors" `Quick test_json_accessors;
    Alcotest.test_case "counters: field-count guard" `Quick
      test_counters_field_guard;
    Alcotest.test_case "counters: pp prints all fields" `Quick
      test_counters_pp_prints_all_fields;
    Alcotest.test_case "counters: to_json" `Quick test_counters_to_json;
    Alcotest.test_case "stats: counters" `Quick test_stats_counters;
    Alcotest.test_case "stats: timer + report + reset" `Quick
      test_stats_timer_and_report;
    Alcotest.test_case "stats: parallel scopes use wall clock" `Quick
      test_stats_parallel_no_double_count;
    Alcotest.test_case "site_hist: basics" `Quick test_site_hist_basics;
    Alcotest.test_case "attribution: gzip sums = counters" `Quick
      (test_attribution_sums "gzip");
    Alcotest.test_case "attribution: mcf sums = counters" `Quick
      (test_attribution_sums "mcf");
    Alcotest.test_case "attribution: pressure-capped sums = counters" `Quick
      test_attribution_sums_gated;
    Alcotest.test_case "trace: bounded" `Quick test_trace_bounded;
    Alcotest.test_case "trace: exact truncation record" `Quick
      test_trace_truncation_exact;
    Alcotest.test_case "trace: under limit" `Quick test_trace_untruncated;
    Alcotest.test_case "ablation: names round-trip" `Quick
      test_ablation_names_roundtrip;
    Alcotest.test_case "ablation: config overrides" `Quick
      test_ablation_config_overrides;
    Alcotest.test_case "ablation: output preserved" `Quick
      test_ablation_run_output_equal;
    Alcotest.test_case "emit: run json round-trip" `Quick
      test_run_json_roundtrip;
    Alcotest.test_case "emit: bench json round-trip" `Quick
      test_bench_json_roundtrip;
    Alcotest.test_case "cli: srp run --json" `Quick test_cli_run_json ]
