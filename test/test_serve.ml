(* The srp-serve-v1 batch protocol: response ordering, dedup, per-job
   pass stats, error isolation, and the summary block — plus an
   env-scaled soak that drives randomized gen_minic programs through the
   daemon and differentially checks each response against the seed
   monolithic pipeline (SRP_SOAK_JOBS raises the job count in CI). *)

open Srp_driver
module Json = Srp_obs.Json

let lookup name =
  List.find_opt
    (fun w -> w.Workload.name = name)
    (Srp_workloads.Registry.all ())

(* Run a batch through the daemon and hand back the parsed response
   lines.  Channels go through temp files: the daemon's interface is
   in_channel/out_channel, exactly as bin/srp.ml drives it. *)
let serve_batch ?(capacity = 512) (batch_lines : string list) :
    Json.t list * int =
  let in_path = Filename.temp_file "srp_serve_in" ".jsonl" in
  let out_path = Filename.temp_file "srp_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      let oc = open_out in_path in
      List.iter (fun l -> output_string oc (l ^ "\n")) batch_lines;
      close_out oc;
      let ic = open_in in_path in
      let oc = open_out out_path in
      let failed =
        Serve.serve ~lookup ~now:Sys.time ~capacity ic oc
      in
      close_in ic;
      close_out oc;
      let ic = open_in out_path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      ( List.rev_map
          (fun l ->
            match Json.of_string l with
            | Ok js -> js
            | Error e -> Alcotest.failf "unparseable response %S: %s" l e)
          !lines,
        failed ))

let str_field name js =
  match Option.bind (Json.member name js) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" name

let int_field name js =
  match Option.bind (Json.member name js) Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "missing int field %S" name

let bool_field name js =
  match Json.member name js with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "missing bool field %S" name

let test_batch () =
  let batch =
    [ {|{"id": "first", "source": "int main() { return 7; }", "level": "O0"}|};
      {|{"id": "dup", "source": "int main() { return 7; }", "level": "O0"}|};
      {|{"id": "other", "source": "int main() { return 3; }", "level": "baseline"}|};
      {|{"id": "bad", "workload": "no-such-kernel"}|};
      {|this is not json|}
    ]
  in
  let responses, failed = serve_batch batch in
  Alcotest.(check int) "one response per line plus summary"
    (List.length batch + 1) (List.length responses);
  Alcotest.(check int) "two failed jobs reported" 2 failed;
  let r = Array.of_list responses in
  (* responses in input order *)
  Alcotest.(check string) "id order" "first" (str_field "id" r.(0));
  Alcotest.(check string) "dup id" "dup" (str_field "id" r.(1));
  Alcotest.(check string) "result type" "result" (str_field "type" r.(0));
  Alcotest.(check int) "exit code" 7 (int_field "exit_code" r.(0));
  Alcotest.(check bool) "first not deduped" false (bool_field "deduped" r.(0));
  Alcotest.(check bool) "duplicate flagged" true (bool_field "deduped" r.(1));
  Alcotest.(check string) "duplicate shares result key"
    (str_field "key" r.(0)) (str_field "key" r.(1));
  Alcotest.(check int) "duplicate shares exit code" 7 (int_field "exit_code" r.(1));
  Alcotest.(check int) "other job independent" 3 (int_field "exit_code" r.(2));
  Alcotest.(check string) "unknown workload errors" "error"
    (str_field "type" r.(3));
  Alcotest.(check string) "parse error errors" "error" (str_field "type" r.(4));
  (* per-job pass stats: each executed job lowered its own source once *)
  let parse_calls js =
    match Json.member "pass_stats" js with
    | Some (Json.Arr entries) ->
      List.fold_left
        (fun acc e ->
          match (Json.member "pass" e, Json.member "name" e) with
          | Some (Json.String "frontend"), Some (Json.String "parse") ->
            acc + Option.value ~default:0 (Option.bind (Json.member "calls" e) Json.to_int_opt)
          | _ -> acc)
        0 entries
    | _ -> Alcotest.fail "missing pass_stats"
  in
  Alcotest.(check int) "job-scoped stats: one lower" 1 (parse_calls r.(0));
  Alcotest.(check int) "job-scoped stats: one lower (other)" 1
    (parse_calls r.(2));
  (* summary *)
  let s = r.(5) in
  Alcotest.(check string) "summary type" "summary" (str_field "type" s);
  Alcotest.(check string) "schema" "srp-serve-v1" (str_field "schema" s);
  Alcotest.(check int) "jobs" 5 (int_field "jobs" s);
  Alcotest.(check int) "unique" 2 (int_field "unique" s);
  Alcotest.(check int) "deduped" 1 (int_field "deduped" s);
  Alcotest.(check int) "errors" 2 (int_field "errors" s);
  match Json.member "cache" s with
  | Some c ->
    Alcotest.(check bool) "nonzero stage misses" true (int_field "misses" c > 0)
  | None -> Alcotest.fail "summary lacks cache block"

(* Span accounting across a batch (the serve instrumentation): every
   executed job emits a serve.job span; deduped resubmissions add only
   enqueue/dedup instants, so the span count tracks unique work, not
   batch size.  Installing a tracer around the daemon is exactly what
   `srp serve --trace-spans` does — serve must use it rather than its
   own, and must leave it installed. *)
let test_serve_spans () =
  let module Span = Srp_obs.Span in
  let tracer = Span.create () in
  Span.install tracer;
  Fun.protect ~finally:Span.uninstall @@ fun () ->
  let job ret = Fmt.str {|{"source": "int main() { return %d; }", "level": "O0"}|} ret in
  let batch = [ job 1; job 1; job 1; job 2 ] in
  let responses, failed = serve_batch batch in
  Alcotest.(check int) "no failures" 0 failed;
  Alcotest.(check int) "all answered" (List.length batch + 1)
    (List.length responses);
  let count cat name =
    List.fold_left
      (fun acc (c, n, k, _) -> if c = cat && n = name then acc + k else acc)
      0 (Span.totals tracer)
  in
  (* every executed job got a span; dedup kept the count at unique *)
  Alcotest.(check int) "one serve.job span per unique job" 2
    (count "serve" "serve.job");
  Alcotest.(check int) "one enqueue instant per line" 4
    (count "serve" "serve.enqueue");
  Alcotest.(check int) "one dedup instant per resubmission" 2
    (count "serve" "serve.dedup");
  Alcotest.(check int) "one respond phase" 1 (count "serve" "serve.respond");
  (* the unique jobs built their stages under the same tracer *)
  Alcotest.(check bool) "stage spans recorded" true
    (count "stage" "stage.lower" > 0);
  (* a second identical batch grows the totals by the same amounts: span
     volume is stable under dedup, not proportional to resubmissions *)
  let before = count "serve" "serve.job" in
  let _ = serve_batch (batch @ [ job 1; job 1 ]) in
  Alcotest.(check int) "second batch adds its unique jobs only"
    (before + 2)
    (count "serve" "serve.job")

(* Nearest-rank percentile edge cases.  The summary sorts with
   Float.compare (a polymorphic-compare sort would still order floats,
   but the typed comparator documents intent and survives a future
   change of element type); the degenerate batch sizes are where an
   off-by-one in ceil(p*n)-1 would bite. *)
let test_percentile () =
  let check = Alcotest.(check (float 0.0)) in
  (* n = 0: an all-error batch still emits a summary *)
  check "empty p50" 0.0 (Serve.percentile [||] 0.50);
  check "empty p100" 0.0 (Serve.percentile [||] 1.0);
  (* n = 1: every percentile is the single sample *)
  check "single p50" 7.0 (Serve.percentile [| 7.0 |] 0.50);
  check "single p95" 7.0 (Serve.percentile [| 7.0 |] 0.95);
  check "single p100" 7.0 (Serve.percentile [| 7.0 |] 1.0);
  (* n = 2: nearest-rank p50 is the FIRST element (rank ceil(0.5*2)=1),
     p95 and max are the second *)
  check "pair p50" 1.0 (Serve.percentile [| 1.0; 9.0 |] 0.50);
  check "pair p95" 9.0 (Serve.percentile [| 1.0; 9.0 |] 0.95);
  check "pair p100" 9.0 (Serve.percentile [| 1.0; 9.0 |] 1.0);
  (* and that the summary actually sorts: an unsorted-input mistake
     would surface here as p50 > p95 *)
  let sorted = [| 3.0; 1.0; 2.0 |] in
  Array.sort Float.compare sorted;
  check "sorted p50" 2.0 (Serve.percentile sorted 0.50)

(* the summary's latency percentiles and per-stage breakdown *)
let test_serve_summary_breakdown () =
  let responses, failed =
    serve_batch
      [ {|{"source": "int main() { return 1; }", "level": "O0"}|};
        {|{"source": "int main() { return 2; }", "level": "baseline"}|};
        {|{"source": "int main() { return 2; }", "level": "baseline"}|} ]
  in
  Alcotest.(check int) "no failures" 0 failed;
  let s = List.nth responses 3 in
  Alcotest.(check string) "summary type" "summary" (str_field "type" s);
  (match Json.member "latency" s with
  | Some lat ->
    let f name =
      match Option.bind (Json.member name lat) Json.to_float_opt with
      | Some v -> v
      | None -> Alcotest.failf "missing latency field %S" name
    in
    let p50 = f "p50_secs" and p95 = f "p95_secs" and mx = f "max_secs" in
    Alcotest.(check bool) "percentiles ordered" true
      (p50 > 0.0 && p50 <= p95 && p95 <= mx)
  | None -> Alcotest.fail "summary lacks latency block");
  match Json.member "stages" s with
  | Some (Json.Obj stages) ->
    (* every pipeline stage ran at least once for O0+baseline builds *)
    List.iter
      (fun stage ->
        match List.assoc_opt stage stages with
        | Some row ->
          Alcotest.(check bool) (stage ^ " built") true
            (int_field "builds" row > 0);
          Alcotest.(check bool) (stage ^ " wall time") true
            (match Option.bind (Json.member "wall_secs" row) Json.to_float_opt with
            | Some v -> v >= 0.0
            | None -> false)
        | None -> Alcotest.failf "summary stages lack %S" stage)
      [ "lower"; "apply-input"; "promote"; "select"; "regalloc"; "layout";
        "bundle" ]
  | _ -> Alcotest.fail "summary lacks stages block"

(* a registered workload through the daemon matches the direct pipeline *)
let test_workload_job () =
  let responses, failed =
    serve_batch [ {|{"id": 1, "workload": "mcf", "level": "alat"}|} ]
  in
  Alcotest.(check int) "no failures" 0 failed;
  let r = List.hd responses in
  let w = Srp_workloads.Registry.find "mcf" in
  let direct = Pipeline.profile_compile_run_monolithic w Pipeline.Alat in
  Alcotest.(check string) "output matches direct pipeline"
    direct.Pipeline.output (str_field "output" r);
  Alcotest.(check int) "exit code matches"
    (Int64.to_int direct.Pipeline.exit_code)
    (int_field "exit_code" r)

(* --- randomized soak: daemon vs monolithic pipeline ---

   Each job is a random gen_minic program at a random level with random
   backend flags; the daemon's answer must match the seed monolithic
   pipeline bit for bit.  SRP_SOAK_JOBS scales the batch (the CI soak
   job sets 200); the default keeps `dune runtest` fast. *)
let soak_jobs =
  match Option.bind (Sys.getenv_opt "SRP_SOAK_JOBS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 6

let test_soak () =
  let rng = Srp_support.Rng.create 0x5e41e in
  let descs =
    List.init soak_jobs (fun i ->
        let seed = Srp_support.Rng.int rng 1_000_000 in
        let level =
          List.nth Pipeline.all_levels
            (Srp_support.Rng.int rng (List.length Pipeline.all_levels))
        in
        let flag () = Srp_support.Rng.int rng 2 = 0 in
        ( i, Gen_minic.program ~seed (), level, flag (), flag (), flag (),
          flag (), flag (), flag () ))
  in
  let batch =
    List.map
      (fun (i, src, level, layout, sched, bundle, split, pressure, prob) ->
        Json.to_string
          (Json.Obj
             [ ("id", Json.Int i);
               ("source", Json.String src);
               ("level", Json.String (Pipeline.level_name level));
               ("layout", Json.Bool layout);
               ("sched", Json.Bool sched);
               ("bundle", Json.Bool bundle);
               ("split", Json.Bool split);
               ("pressure", Json.Bool pressure);
               ("prob", Json.Bool prob) ]))
      descs
  in
  let responses, failed = serve_batch batch in
  Alcotest.(check int) "no failed soak jobs" 0 failed;
  List.iteri
    (fun i (_, src, level, layout, sched, bundle, split, pressure, prob)
    ->
      let r = List.nth responses i in
      let w =
        { Workload.name = Fmt.str "soak-%d" i; description = "soak";
          source = src; train = []; ref_ = [] }
      in
      let direct =
        Pipeline.profile_compile_run_monolithic ~layout ~sched ~bundle ~split
          ~pressure ~prob w level
      in
      Alcotest.(check string)
        (Fmt.str "soak job %d output" i)
        direct.Pipeline.output (str_field "output" r);
      Alcotest.(check int)
        (Fmt.str "soak job %d exit code" i)
        (Int64.to_int direct.Pipeline.exit_code)
        (int_field "exit_code" r))
    descs

let suite =
  [ Alcotest.test_case "batch: order, dedup, stats, summary" `Quick test_batch;
    Alcotest.test_case "spans: one per unique job, stable under dedup" `Quick
      test_serve_spans;
    Alcotest.test_case "percentile: nearest-rank n=0/1/2 edges" `Quick
      test_percentile;
    Alcotest.test_case "summary: latency percentiles + stage breakdown" `Quick
      test_serve_summary_breakdown;
    Alcotest.test_case "workload job matches direct pipeline" `Slow
      test_workload_job;
    Alcotest.test_case
      (Fmt.str "soak: %d random jobs vs monolithic" soak_jobs)
      `Slow test_soak ]
