(* Tests for the backend: register allocation invariants, code generation,
   and the assembly shapes of the paper's figures. *)

open Srp_frontend
module Insn = Srp_target.Insn
module Codegen = Srp_target.Codegen
module Regalloc = Srp_target.Regalloc

let compile = Lower.compile_source

let gen src =
  let prog = compile src in
  (prog, Codegen.gen_program prog)

let gen_alat src =
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
  (prog, Codegen.gen_program prog)

let func (tgt : Insn.program) name = Hashtbl.find tgt.Insn.funcs name

let count_insns f pred = Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 f.Insn.code

let test_codegen_labels_resolve () =
  let _, tgt =
    gen {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { if (i % 2) { s = s + i; } }
  return s;
}
|}
  in
  let f = func tgt "main" in
  Array.iter
    (fun ins ->
      match ins with
      | Insn.Br { target } ->
        if target < 0 || target >= Array.length f.Insn.code then
          Alcotest.fail "unresolved branch target"
      | Insn.Brc { ifso; ifnot; _ } ->
        if ifso < 0 || ifso >= Array.length f.Insn.code then Alcotest.fail "bad ifso";
        if ifnot < 0 || ifnot >= Array.length f.Insn.code then Alcotest.fail "bad ifnot"
      | _ -> ())
    f.Insn.code

let test_codegen_register_bounds () =
  let _, tgt =
    gen {|
double mix(double a, int b) { return a * b; }
int main() {
  int x = 3;
  double d = mix(1.5, x);
  print_float(d);
  return 0;
}
|}
  in
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (fun ins ->
          let check_reg r = if r < 0 || r >= f.Insn.nregs then Alcotest.fail "reg out of bounds" in
          let check_src = function
            | Insn.SReg r -> check_reg r
            | Insn.SFrg fr -> if fr < 0 || fr >= f.Insn.nfregs then Alcotest.fail "freg oob"
            | Insn.SImm _ | Insn.SFim _ -> ()
          in
          match ins with
          | Insn.Alu { dst; a; b; _ } ->
            check_reg dst;
            check_src a;
            check_src b
          | Insn.Ld { dst = Insn.DInt r; base; _ } ->
            check_reg r;
            check_reg base
          | Insn.St { src; base; _ } ->
            check_src src;
            check_reg base
          | _ -> ())
        f.Insn.code)
    tgt.Insn.funcs

let test_regalloc_alat_dedicated () =
  (* ALAT-involved temps must not share registers with anything else:
     check by confirming the check's register equals its arming load's
     register and is written by no other instruction class *)
  let _, tgt =
    gen_alat {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let check_regs = ref [] in
  Array.iter
    (fun ins ->
      match ins with
      | Insn.Ld { kind = Insn.K_ld_c _; dst = Insn.DInt r; _ } -> check_regs := r :: !check_regs
      | _ -> ())
    f.Insn.code;
  Alcotest.(check bool) "at least one check" true (!check_regs <> []);
  List.iter
    (fun r ->
      (* the only writers of a check register are loads of the same cell *)
      Array.iter
        (fun ins ->
          match ins with
          | Insn.Alu { dst; _ } when dst = r -> Alcotest.fail "ALAT register clobbered by ALU"
          | Insn.Mov { dst = Insn.DInt d; _ } when d = r ->
            Alcotest.fail "ALAT register clobbered by mov"
          | _ -> ())
        f.Insn.code)
    !check_regs

let test_figure1_assembly_shape () =
  let _, tgt =
    gen_alat {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let has_ld_a = count_insns f (function Insn.Ld { kind = Insn.K_ld_a; _ } -> true | _ -> false) in
  let has_ld_c =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "ld.a present (arming)" true (has_ld_a >= 1);
  Alcotest.(check bool) "ld.c present (check)" true (has_ld_c >= 1)

let test_figure3_assembly_shape () =
  let _, tgt =
    gen_alat {|
int p; int b;
int* q;
int sel;
int n;
int main() {
  int i;
  int r = 0;
  if (sel == 7) { q = &p; } else { q = &b; }
  p = 11;
  n = 200;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p + 1;
  }
  print_int(r);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let speculative_loads =
    count_insns f (function
      | Insn.Ld { kind = Insn.K_ld_sa | Insn.K_ld_a; _ } -> true
      | _ -> false)
  in
  let checks =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "hoisted speculative load" true (speculative_loads >= 1);
  Alcotest.(check bool) "in-loop check" true (checks >= 1)

(* --- block layout: rotation, recovery placement, semantic equivalence --- *)

module Counters = Srp_machine.Counters

let test_layout_rotated_loop_mispredicts () =
  let src = {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 1000; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|} in
  let laid = Codegen.gen_program (compile src) in
  let flat = Codegen.gen_program ~layout:false (compile src) in
  let _, out_l, cl = Srp_machine.Machine.run_program laid in
  let _, out_f, cf = Srp_machine.Machine.run_program flat in
  Alcotest.(check string) "layout preserves output" out_f out_l;
  Alcotest.(check bool) "top-tested loop mispredicts every iteration" true
    (cf.Counters.branch_mispredicts >= 1000);
  Alcotest.(check bool) "rotated loop retires ~zero steady-state mispredicts"
    true
    (cl.Counters.branch_mispredicts < 10);
  Alcotest.(check bool) "rotation wins cycles" true
    (cl.Counters.cycles < cf.Counters.cycles)

let test_layout_recovery_out_of_line () =
  (* cascade promotion (figure 4) emits chk.a recovery blocks; layout must
     keep them out of the fall-through stream: a recovery entry sits after
     its check and is never entered by falling off the previous
     instruction *)
  let src = {|
int a; int b;
int* p;
int** pp;
int* r;
int sel;
int checksum;
int main() {
  int i;
  p = &a;
  a = 100;
  if (sel == 5) { pp = &p; } else { pp = &r; }
  for (i = 0; i < 40; i = i + 1) {
    checksum = checksum + *p + 1;
    *pp = &b;
    checksum = checksum + *p + 3;
  }
  print_int(checksum);
  print_int(*p);
  return 0;
}
|} in
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat_cascade ~profile) prog);
  let tgt = Codegen.gen_program prog in
  let f = func tgt "main" in
  let checks = ref 0 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Insn.Chk_a { recovery; _ } ->
        incr checks;
        Alcotest.(check bool) "recovery is out of line, after the check" true
          (recovery > i);
        (* the bundler may pad with nops after the preceding terminator;
           those pads are unreachable, so skip back to the last real insn *)
        let rec before j =
          match f.Insn.code.(j) with Insn.Nop -> before (j - 1) | ins -> ins
        in
        Alcotest.(check bool) "recovery entry not reachable by fall-through"
          true
          (match before (recovery - 1) with
          | Insn.Br _ | Insn.Brc _ | Insn.Ret _ -> true
          | _ -> false)
      | _ -> ())
    f.Insn.code;
  Alcotest.(check bool) "program really has chk.a" true (!checks >= 1)

let test_layout_differential_alat () =
  (* same speculative program, layout on vs off: bit-identical behaviour *)
  let src = {|
int p; int b;
int* q;
int n;
int main() {
  int i;
  int r = 0;
  q = &b;
  p = 3;
  n = 500;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p;
    if (i % 7 == 0) { q = &b; }
  }
  print_int(r);
  return 0;
}
|} in
  let build layout =
    let pprog = compile src in
    let _, _, profile = Srp_profile.Interp.run_program pprog in
    let prog = compile src in
    ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
    Codegen.gen_program ~layout prog
  in
  let code_l, out_l, _ = Srp_machine.Machine.run_program (build true) in
  let code_f, out_f, _ = Srp_machine.Machine.run_program (build false) in
  Alcotest.(check string) "stdout agrees" out_f out_l;
  Alcotest.(check int64) "exit code agrees" code_f code_l

let test_addr_hoisting () =
  (* a global referenced many times should be materialized once in the
     prologue, not per use *)
  let _, tgt =
    gen {|
int g;
int main() {
  g = 1; g = g + 1; g = g + 2; g = g + 3; g = g + 4;
  print_int(g);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let gaddrs = count_insns f (function Insn.Gaddr _ -> true | _ -> false) in
  Alcotest.(check bool) "address hoisted (few Gaddr)" true (gaddrs <= 2)

let test_formal_spill_prologue () =
  let _, tgt = gen {|
int f(int a, double b) { return a + b; }
int main() { return f(1, 2.5); }
|} in
  let f = func tgt "f" in
  (* prologue stores both formals to memory before anything else loads *)
  let first_loads = ref 0 and stores_before = ref 0 in
  (try
     Array.iter
       (fun ins ->
         match ins with
         | Insn.St _ -> incr stores_before
         | Insn.Ld _ -> raise Exit
         | _ -> ())
       f.Insn.code
   with Exit -> ());
  ignore !first_loads;
  Alcotest.(check bool) "formals spilled in prologue" true (!stores_before >= 2)

let test_frame_layout_disjoint () =
  let prog, tgt = gen {|
int f(int a) { int x; int y[4]; x = a; y[0] = x; return y[0]; }
int main() { return f(5); }
|} in
  ignore prog;
  let f = func tgt "f" in
  let slots = Hashtbl.fold (fun _ off acc -> off :: acc) f.Insn.slot_of_sym [] in
  let sorted = List.sort compare slots in
  let rec no_overlap = function
    | a :: (b :: _ as rest) -> a <> b && no_overlap rest
    | _ -> true
  in
  Alcotest.(check bool) "distinct slots" true (no_overlap sorted);
  Alcotest.(check bool) "frame covers slots" true
    (List.for_all (fun o -> o < f.Insn.frame_bytes) slots)

(* --- Regalloc property tests ---

   Random straight-line-plus-branches code over a small virtual register
   file, checked directly against the allocator's own range analysis:
   allocation must stay within the reported physical file sizes, and two
   virtual registers whose live ranges overlap must land on distinct
   physical registers. *)

let pt_nivregs = 7 (* vreg 0 is sp; generators draw from 1.. *)
let pt_nfvregs = 4

let gen_insn len =
  let open QCheck.Gen in
  let ireg = int_range 1 (pt_nivregs - 1) in
  let freg = int_range 0 (pt_nfvregs - 1) in
  let lbl = int_range 0 (len - 1) in
  let isrc =
    oneof
      [ map (fun r -> Insn.SReg r) ireg;
        map (fun i -> Insn.SImm (Int64.of_int i)) (int_range (-8) 8) ]
  in
  let fsrc =
    oneof
      [ map (fun f -> Insn.SFrg f) freg;
        map (fun x -> Insn.SFim (float_of_int x)) (int_range 0 5) ]
  in
  oneof
    [ map2 (fun d i -> Insn.Movl { dst = d; imm = Int64.of_int i }) ireg (int_range 0 99);
      map3 (fun d a b -> Insn.Alu { op = Insn.Aadd; dst = d; a; b }) ireg isrc isrc;
      map3 (fun d a b -> Insn.Falu { op = Insn.FAadd; dst = d; a; b }) freg fsrc fsrc;
      map2 (fun d s -> Insn.Mov { dst = Insn.DInt d; src = s }) ireg isrc;
      map2 (fun d s -> Insn.Mov { dst = Insn.DFlt d; src = s }) freg fsrc;
      map2
        (fun d b -> Insn.Ld { kind = Insn.K_ld; dst = Insn.DInt d; base = b; site = 0 })
        ireg ireg;
      map2 (fun s b -> Insn.St { src = s; base = b; site = 0 }) isrc ireg;
      map3
        (fun c t1 t2 -> Insn.Brc { cond = c; ifso = t1; ifnot = t2; site = 0 })
        ireg lbl lbl;
      map (fun t -> Insn.Br { target = t }) lbl;
      return Insn.Nop ]

let gen_code =
  let open QCheck.Gen in
  int_range 1 25 >>= fun body ->
  list_repeat body (gen_insn (body + 1)) >>= fun instrs ->
  return (Array.of_list (instrs @ [ Insn.Ret { value = None } ]))

let print_code code =
  String.concat "\n"
    (Array.to_list
       (Array.mapi (fun i ins -> Fmt.str ".%d %a" i Insn.pp_insn ins) code))

let arb_code = QCheck.make ~print:print_code gen_code

let pt_input ?(pinned = []) code =
  { Regalloc.code;
    nivregs = pt_nivregs;
    nfvregs = pt_nfvregs;
    live_in = [];
    flive_in = [];
    pinned;
    fpinned = [] }

let prop_alloc_within_bounds code =
  let res = Regalloc.run (pt_input code) in
  Array.for_all
    (fun ins ->
      let iu, fu, idf, fdf = Regalloc.uses_defs ins in
      List.for_all (fun r -> r >= 0 && r < res.Regalloc.nregs) (iu @ idf)
      && List.for_all (fun f -> f >= 0 && f < res.Regalloc.nfregs) (fu @ fdf))
    res.Regalloc.code

let overlaps r1 r2 =
  match (r1, r2) with
  | Some (l1, h1), Some (l2, h2) -> not (h1 < l2 || h2 < l1)
  | _ -> false

let prop_live_vregs_disjoint code =
  let inp = pt_input code in
  let irngs, frngs = Regalloc.ranges inp in
  let res = Regalloc.run inp in
  let class_ok rngs map =
    let n = Array.length rngs in
    let ok = ref true in
    for v1 = 0 to n - 1 do
      for v2 = v1 + 1 to n - 1 do
        if overlaps rngs.(v1) rngs.(v2) && map.(v1) = map.(v2) then ok := false
      done
    done;
    !ok
  in
  class_ok irngs res.Regalloc.imap && class_ok frngs res.Regalloc.fmap

let prop_pinned_register_private code =
  (* a pinned vreg (an ALAT temp) gets a physical register nothing else in
     the function is renamed onto, live-range overlap or not *)
  let res = Regalloc.run (pt_input ~pinned:[ 1 ] code) in
  let p = res.Regalloc.imap.(1) in
  p < 0 (* vreg 1 unused in this sample: nothing to check *)
  || Array.for_all
       (fun v -> v = 1 || res.Regalloc.imap.(v) <> p)
       (Array.init pt_nivregs (fun v -> v))

let regalloc_qchecks =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:300 ~name:"regalloc within nregs/nfregs" arb_code
        prop_alloc_within_bounds;
      QCheck.Test.make ~count:300 ~name:"overlapping live ranges disjoint"
        arb_code prop_live_vregs_disjoint;
      QCheck.Test.make ~count:300 ~name:"pinned (ALAT) register private"
        arb_code prop_pinned_register_private ]

let suite =
  regalloc_qchecks
  @ [ Alcotest.test_case "labels resolve" `Quick test_codegen_labels_resolve;
    Alcotest.test_case "register bounds" `Quick test_codegen_register_bounds;
    Alcotest.test_case "ALAT registers dedicated" `Quick test_regalloc_alat_dedicated;
    Alcotest.test_case "figure 1 assembly shape" `Quick test_figure1_assembly_shape;
    Alcotest.test_case "figure 3 assembly shape" `Quick test_figure3_assembly_shape;
    Alcotest.test_case "layout rotates hot loops" `Quick test_layout_rotated_loop_mispredicts;
    Alcotest.test_case "layout keeps recovery out of line" `Quick test_layout_recovery_out_of_line;
    Alcotest.test_case "layout differential (alat)" `Quick test_layout_differential_alat;
    Alcotest.test_case "address hoisting" `Quick test_addr_hoisting;
    Alcotest.test_case "formal spill prologue" `Quick test_formal_spill_prologue;
    Alcotest.test_case "frame layout disjoint" `Quick test_frame_layout_disjoint ]
