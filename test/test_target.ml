(* Tests for the backend: register allocation invariants, code generation,
   and the assembly shapes of the paper's figures. *)

open Srp_frontend
module Insn = Srp_target.Insn
module Codegen = Srp_target.Codegen
module Regalloc = Srp_target.Regalloc

let compile = Lower.compile_source

let gen src =
  let prog = compile src in
  (prog, Codegen.gen_program prog)

let gen_alat src =
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
  (prog, Codegen.gen_program prog)

let func (tgt : Insn.program) name = Hashtbl.find tgt.Insn.funcs name

let count_insns f pred = Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 f.Insn.code

let test_codegen_labels_resolve () =
  let _, tgt =
    gen {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { if (i % 2) { s = s + i; } }
  return s;
}
|}
  in
  let f = func tgt "main" in
  Array.iter
    (fun ins ->
      match ins with
      | Insn.Br { target } ->
        if target < 0 || target >= Array.length f.Insn.code then
          Alcotest.fail "unresolved branch target"
      | Insn.Brc { ifso; ifnot; _ } ->
        if ifso < 0 || ifso >= Array.length f.Insn.code then Alcotest.fail "bad ifso";
        if ifnot < 0 || ifnot >= Array.length f.Insn.code then Alcotest.fail "bad ifnot"
      | _ -> ())
    f.Insn.code

let test_codegen_register_bounds () =
  let _, tgt =
    gen {|
double mix(double a, int b) { return a * b; }
int main() {
  int x = 3;
  double d = mix(1.5, x);
  print_float(d);
  return 0;
}
|}
  in
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (fun ins ->
          let check_reg r = if r < 0 || r >= f.Insn.nregs then Alcotest.fail "reg out of bounds" in
          let check_src = function
            | Insn.SReg r -> check_reg r
            | Insn.SFrg fr -> if fr < 0 || fr >= f.Insn.nfregs then Alcotest.fail "freg oob"
            | Insn.SImm _ | Insn.SFim _ -> ()
          in
          match ins with
          | Insn.Alu { dst; a; b; _ } ->
            check_reg dst;
            check_src a;
            check_src b
          | Insn.Ld { dst = Insn.DInt r; base; _ } ->
            check_reg r;
            check_reg base
          | Insn.St { src; base; _ } ->
            check_src src;
            check_reg base
          | _ -> ())
        f.Insn.code)
    tgt.Insn.funcs

let test_regalloc_alat_dedicated () =
  (* The ALAT tags entries by physical register, so between an arming load
     and its check nothing else may write the armed register.  (The
     hole-aware allocator may legitimately reuse the register *outside*
     the armed window, so the old whole-function exclusivity is gone —
     the contract is arm-to-check.)  Built with layout off so linear
     order is the emission order and the armed windows are contiguous. *)
  let src = {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|} in
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
  let tgt = Codegen.gen_program ~layout:false ~bundle:false prog in
  let f = func tgt "main" in
  let armed = Hashtbl.create 4 in
  let checks = ref 0 in
  Array.iter
    (fun ins ->
      (match ins with
      | Insn.Ld { kind = Insn.K_ld_a | Insn.K_ld_sa; dst = Insn.DInt r; _ } ->
        Hashtbl.replace armed r ()
      | Insn.Ld { kind = Insn.K_ld_c _; dst = Insn.DInt r; _ } ->
        incr checks;
        Hashtbl.remove armed r
      | Insn.Chk_a { tag = Insn.DInt r; _ } | Insn.Invala_e { tag = Insn.DInt r }
        ->
        incr checks;
        Hashtbl.remove armed r
      | _ -> ());
      let writes r =
        let _, _, idf, _ = Regalloc.uses_defs ins in
        List.mem r idf
      in
      match ins with
      | Insn.Ld { kind = Insn.K_ld_a | Insn.K_ld_sa | Insn.K_ld_c _; _ } ->
        () (* the speculative loads and checks own their register *)
      | _ ->
        Hashtbl.iter
          (fun r () ->
            if writes r then
              Alcotest.fail "ALAT register clobbered while armed")
          armed)
    f.Insn.code;
  Alcotest.(check bool) "at least one check" true (!checks >= 1)

let test_figure1_assembly_shape () =
  let _, tgt =
    gen_alat {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let has_ld_a = count_insns f (function Insn.Ld { kind = Insn.K_ld_a; _ } -> true | _ -> false) in
  let has_ld_c =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "ld.a present (arming)" true (has_ld_a >= 1);
  Alcotest.(check bool) "ld.c present (check)" true (has_ld_c >= 1)

let test_figure3_assembly_shape () =
  let _, tgt =
    gen_alat {|
int p; int b;
int* q;
int sel;
int n;
int main() {
  int i;
  int r = 0;
  if (sel == 7) { q = &p; } else { q = &b; }
  p = 11;
  n = 200;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p + 1;
  }
  print_int(r);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let speculative_loads =
    count_insns f (function
      | Insn.Ld { kind = Insn.K_ld_sa | Insn.K_ld_a; _ } -> true
      | _ -> false)
  in
  let checks =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "hoisted speculative load" true (speculative_loads >= 1);
  Alcotest.(check bool) "in-loop check" true (checks >= 1)

(* --- block layout: rotation, recovery placement, semantic equivalence --- *)

module Counters = Srp_machine.Counters

let test_layout_rotated_loop_mispredicts () =
  let src = {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 1000; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|} in
  let laid = Codegen.gen_program (compile src) in
  let flat = Codegen.gen_program ~layout:false (compile src) in
  let _, out_l, cl = Srp_machine.Machine.run_program laid in
  let _, out_f, cf = Srp_machine.Machine.run_program flat in
  Alcotest.(check string) "layout preserves output" out_f out_l;
  Alcotest.(check bool) "top-tested loop mispredicts every iteration" true
    (cf.Counters.branch_mispredicts >= 1000);
  Alcotest.(check bool) "rotated loop retires ~zero steady-state mispredicts"
    true
    (cl.Counters.branch_mispredicts < 10);
  Alcotest.(check bool) "rotation wins cycles" true
    (cl.Counters.cycles < cf.Counters.cycles)

let test_layout_recovery_out_of_line () =
  (* cascade promotion (figure 4) emits chk.a recovery blocks; layout must
     keep them out of the fall-through stream: a recovery entry sits after
     its check and is never entered by falling off the previous
     instruction *)
  let src = {|
int a; int b;
int* p;
int** pp;
int* r;
int sel;
int checksum;
int main() {
  int i;
  p = &a;
  a = 100;
  if (sel == 5) { pp = &p; } else { pp = &r; }
  for (i = 0; i < 40; i = i + 1) {
    checksum = checksum + *p + 1;
    *pp = &b;
    checksum = checksum + *p + 3;
  }
  print_int(checksum);
  print_int(*p);
  return 0;
}
|} in
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat_cascade ~profile) prog);
  let tgt = Codegen.gen_program prog in
  let f = func tgt "main" in
  let checks = ref 0 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Insn.Chk_a { recovery; _ } ->
        incr checks;
        Alcotest.(check bool) "recovery is out of line, after the check" true
          (recovery > i);
        (* the bundler may pad with nops after the preceding terminator;
           those pads are unreachable, so skip back to the last real insn *)
        let rec before j =
          match f.Insn.code.(j) with Insn.Nop -> before (j - 1) | ins -> ins
        in
        Alcotest.(check bool) "recovery entry not reachable by fall-through"
          true
          (match before (recovery - 1) with
          | Insn.Br _ | Insn.Brc _ | Insn.Ret _ -> true
          | _ -> false)
      | _ -> ())
    f.Insn.code;
  Alcotest.(check bool) "program really has chk.a" true (!checks >= 1)

let test_layout_differential_alat () =
  (* same speculative program, layout on vs off: bit-identical behaviour *)
  let src = {|
int p; int b;
int* q;
int n;
int main() {
  int i;
  int r = 0;
  q = &b;
  p = 3;
  n = 500;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p;
    if (i % 7 == 0) { q = &b; }
  }
  print_int(r);
  return 0;
}
|} in
  let build layout =
    let pprog = compile src in
    let _, _, profile = Srp_profile.Interp.run_program pprog in
    let prog = compile src in
    ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
    Codegen.gen_program ~layout prog
  in
  let code_l, out_l, _ = Srp_machine.Machine.run_program (build true) in
  let code_f, out_f, _ = Srp_machine.Machine.run_program (build false) in
  Alcotest.(check string) "stdout agrees" out_f out_l;
  Alcotest.(check int64) "exit code agrees" code_f code_l

let test_addr_hoisting () =
  (* a global referenced many times should be materialized once in the
     prologue, not per use *)
  let _, tgt =
    gen {|
int g;
int main() {
  g = 1; g = g + 1; g = g + 2; g = g + 3; g = g + 4;
  print_int(g);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let gaddrs = count_insns f (function Insn.Gaddr _ -> true | _ -> false) in
  Alcotest.(check bool) "address hoisted (few Gaddr)" true (gaddrs <= 2)

let test_formal_spill_prologue () =
  let _, tgt = gen {|
int f(int a, double b) { return a + b; }
int main() { return f(1, 2.5); }
|} in
  let f = func tgt "f" in
  (* prologue stores both formals to memory before anything else loads *)
  let first_loads = ref 0 and stores_before = ref 0 in
  (try
     Array.iter
       (fun ins ->
         match ins with
         | Insn.St _ -> incr stores_before
         | Insn.Ld _ -> raise Exit
         | _ -> ())
       f.Insn.code
   with Exit -> ());
  ignore !first_loads;
  Alcotest.(check bool) "formals spilled in prologue" true (!stores_before >= 2)

let test_frame_layout_disjoint () =
  let prog, tgt = gen {|
int f(int a) { int x; int y[4]; x = a; y[0] = x; return y[0]; }
int main() { return f(5); }
|} in
  ignore prog;
  let f = func tgt "f" in
  let slots = Hashtbl.fold (fun _ off acc -> off :: acc) f.Insn.slot_of_sym [] in
  let sorted = List.sort compare slots in
  let rec no_overlap = function
    | a :: (b :: _ as rest) -> a <> b && no_overlap rest
    | _ -> true
  in
  Alcotest.(check bool) "distinct slots" true (no_overlap sorted);
  Alcotest.(check bool) "frame covers slots" true
    (List.for_all (fun o -> o < f.Insn.frame_bytes) slots)

(* --- Regalloc property tests ---

   Random straight-line-plus-branches code over a small virtual register
   file, checked directly against the allocator's own range analysis:
   allocation must stay within the reported physical file sizes, and two
   virtual registers whose live ranges overlap must land on distinct
   physical registers. *)

let pt_nivregs = 7 (* vreg 0 is sp; generators draw from 1.. *)
let pt_nfvregs = 4

let gen_insn len =
  let open QCheck.Gen in
  let ireg = int_range 1 (pt_nivregs - 1) in
  let freg = int_range 0 (pt_nfvregs - 1) in
  let lbl = int_range 0 (len - 1) in
  let isrc =
    oneof
      [ map (fun r -> Insn.SReg r) ireg;
        map (fun i -> Insn.SImm (Int64.of_int i)) (int_range (-8) 8) ]
  in
  let fsrc =
    oneof
      [ map (fun f -> Insn.SFrg f) freg;
        map (fun x -> Insn.SFim (float_of_int x)) (int_range 0 5) ]
  in
  oneof
    [ map2 (fun d i -> Insn.Movl { dst = d; imm = Int64.of_int i }) ireg (int_range 0 99);
      map3 (fun d a b -> Insn.Alu { op = Insn.Aadd; dst = d; a; b }) ireg isrc isrc;
      map3 (fun d a b -> Insn.Falu { op = Insn.FAadd; dst = d; a; b }) freg fsrc fsrc;
      map2 (fun d s -> Insn.Mov { dst = Insn.DInt d; src = s }) ireg isrc;
      map2 (fun d s -> Insn.Mov { dst = Insn.DFlt d; src = s }) freg fsrc;
      map2
        (fun d b -> Insn.Ld { kind = Insn.K_ld; dst = Insn.DInt d; base = b; site = 0 })
        ireg ireg;
      map2 (fun s b -> Insn.St { src = s; base = b; site = 0 }) isrc ireg;
      map3
        (fun c t1 t2 -> Insn.Brc { cond = c; ifso = t1; ifnot = t2; site = 0 })
        ireg lbl lbl;
      map (fun t -> Insn.Br { target = t }) lbl;
      return Insn.Nop ]

let gen_code =
  let open QCheck.Gen in
  int_range 1 25 >>= fun body ->
  list_repeat body (gen_insn (body + 1)) >>= fun instrs ->
  return (Array.of_list (instrs @ [ Insn.Ret { value = None } ]))

let print_code code =
  String.concat "\n"
    (Array.to_list
       (Array.mapi (fun i ins -> Fmt.str ".%d %a" i Insn.pp_insn ins) code))

let arb_code = QCheck.make ~print:print_code gen_code

let pt_input ?(pinned = []) code =
  { Regalloc.code;
    nivregs = pt_nivregs;
    nfvregs = pt_nfvregs;
    live_in = [];
    flive_in = [];
    pinned;
    fpinned = [];
    spill_base = 0 }

let alloc_within_bounds policy code =
  let res = Regalloc.run ~policy (pt_input code) in
  Array.for_all
    (fun ins ->
      let iu, fu, idf, fdf = Regalloc.uses_defs ins in
      List.for_all (fun r -> r >= 0 && r < res.Regalloc.nregs) (iu @ idf)
      && List.for_all (fun f -> f >= 0 && f < res.Regalloc.nfregs) (fu @ fdf))
    res.Regalloc.code

let prop_alloc_within_bounds code =
  alloc_within_bounds Regalloc.default_policy code

(* A register file small enough that random code overflows it and the
   splitting/spilling machinery actually runs: sp + one allocatable int
   register, one float register. *)
let tiny_policy =
  { Regalloc.default_policy with Regalloc.cap_int = 2; cap_fp = 1 }

let prop_spill_alloc_within_bounds code = alloc_within_bounds tiny_policy code

(* Physical register of [v] at original pc per the reported assignment;
   -1 = memory-resident or dead there. *)
let phys_at assign v pc =
  match
    List.find_opt (fun (lo, hi, _) -> lo <= pc && pc <= hi) assign.(v)
  with
  | Some (_, _, r) -> r
  | None -> -1

(* The subrange-interference property, checked against the raw liveness
   bitsets (not the condensed ranges): two vregs busy at the same pc never
   occupy the same physical register. *)
let subranges_disjoint policy code =
  let inp = pt_input code in
  let ilive, flive = Regalloc.live_matrix inp in
  let res = Regalloc.run ~policy inp in
  let class_ok live assign nv =
    let ok = ref true in
    Array.iteri
      (fun pc row ->
        for v1 = 0 to nv - 1 do
          for v2 = v1 + 1 to nv - 1 do
            if row.(v1) && row.(v2) then begin
              let r1 = phys_at assign v1 pc and r2 = phys_at assign v2 pc in
              if r1 >= 0 && r1 = r2 then ok := false
            end
          done
        done)
      live;
    !ok
  in
  class_ok ilive res.Regalloc.iassign pt_nivregs
  && class_ok flive res.Regalloc.fassign pt_nfvregs

let prop_subranges_disjoint code =
  subranges_disjoint Regalloc.default_policy code

let prop_subranges_disjoint_closed code =
  subranges_disjoint Regalloc.closed_policy code

let prop_subranges_disjoint_tiny code = subranges_disjoint tiny_policy code

let prop_pinned_register_private code =
  (* ALAT temps: the tag names the physical register, so a pinned vreg is
     never split across registers, and nothing else occupies the register
     while the temp is busy (between arming and the last check) — a check
     still pending keeps the temp busy, so this subsumes tag integrity.
     Outside that window the register is ordinary, and two temps with
     disjoint windows may recycle one tag register — old whole-function
     exclusivity is gone by design. *)
  let inp = pt_input ~pinned:[ 1; 2 ] code in
  let ilive, _ = Regalloc.live_matrix inp in
  let res = Regalloc.run inp in
  let assign = res.Regalloc.iassign in
  let regs_of v =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, _, r) -> if r >= 0 then Some r else None)
         assign.(v))
  in
  let one_reg v = List.length (regs_of v) <= 1 in
  let private_while_busy v =
    match regs_of v with
    | [ p ] ->
      let ok = ref true in
      Array.iteri
        (fun pc row ->
          if row.(v) then
            for v2 = 1 to pt_nivregs - 1 do
              if v2 <> v && phys_at assign v2 pc = p then ok := false
            done)
        ilive;
      !ok
    | _ -> true
  in
  one_reg 1 && one_reg 2 && private_while_busy 1 && private_while_busy 2

(* --- executable straight-line programs: the spilling differential ---

   Def-before-use straight-line code can run on the machine, so the capped
   allocator must print exactly what the uncapped one prints; and since a
   textual scan of straight-line code is a dominance check, every spill
   reload must be preceded by a store to its slot. *)

let gen_straight_code =
  let open QCheck.Gen in
  let pick_defined defined =
    let a = Array.of_list defined in
    map (fun j -> a.(j)) (int_range 0 (Array.length a - 1))
  in
  let isrc defined =
    if defined = [] then
      map (fun k -> Insn.SImm (Int64.of_int k)) (int_range 0 9)
    else
      oneof
        [ map (fun k -> Insn.SImm (Int64.of_int k)) (int_range 0 9);
          map (fun r -> Insn.SReg r) (pick_defined defined) ]
  in
  let fsrc fdefined =
    if fdefined = [] then
      map (fun k -> Insn.SFim (float_of_int k)) (int_range 0 9)
    else
      oneof
        [ map (fun k -> Insn.SFim (float_of_int k)) (int_range 0 9);
          map (fun f -> Insn.SFrg f) (pick_defined fdefined) ]
  in
  let ireg = int_range 1 (pt_nivregs - 1) in
  let freg = int_range 0 (pt_nfvregs - 1) in
  let iop = oneofl [ Insn.Aadd; Insn.Asub; Insn.Amul ] in
  int_range 10 40 >>= fun n ->
  let rec go i defined fdefined acc =
    if i = 0 then
      return (Array.of_list (List.rev (Insn.Ret { value = None } :: acc)))
    else
      int_range 0 4 >>= fun kind ->
      match kind with
      | 0 ->
        map2
          (fun d k -> (d, Insn.Movl { dst = d; imm = Int64.of_int k }))
          ireg (int_range 0 99)
        >>= fun (d, ins) ->
        go (i - 1) (List.sort_uniq compare (d :: defined)) fdefined (ins :: acc)
      | 1 ->
        map3
          (fun op (d, a) b -> (d, Insn.Alu { op; dst = d; a; b }))
          iop
          (map2 (fun d a -> (d, a)) ireg (isrc defined))
          (isrc defined)
        >>= fun (d, ins) ->
        go (i - 1) (List.sort_uniq compare (d :: defined)) fdefined (ins :: acc)
      | 2 ->
        map3
          (fun (d, a) b () -> (d, Insn.Falu { op = Insn.FAadd; dst = d; a; b }))
          (map2 (fun d a -> (d, a)) freg (fsrc fdefined))
          (fsrc fdefined) (return ())
        >>= fun (d, ins) ->
        go (i - 1) defined (List.sort_uniq compare (d :: fdefined)) (ins :: acc)
      | 3 when defined <> [] ->
        map
          (fun r -> Insn.Print { what = Insn.SReg r; as_float = false })
          (pick_defined defined)
        >>= fun ins -> go (i - 1) defined fdefined (ins :: acc)
      | _ when fdefined <> [] ->
        map
          (fun f -> Insn.Print { what = Insn.SFrg f; as_float = true })
          (pick_defined fdefined)
        >>= fun ins -> go (i - 1) defined fdefined (ins :: acc)
      | _ -> go i defined fdefined acc
  in
  go n [] [] []

let arb_straight_code = QCheck.make ~print:print_code gen_straight_code

(* Wrap allocated straight-line code into a runnable one-function program. *)
let exec_alloc policy code =
  let res = Regalloc.run ~policy (pt_input code) in
  let f =
    { Insn.name = "main";
      formals = [];
      code = res.Regalloc.code;
      bundles = None;
      nregs = res.Regalloc.nregs;
      nfregs = res.Regalloc.nfregs;
      frame_bytes = res.Regalloc.spill_bytes;
      slot_of_sym = Hashtbl.create 1 }
  in
  let funcs = Hashtbl.create 1 in
  Hashtbl.replace funcs "main" f;
  let prog = { Insn.funcs; func_order = [ "main" ]; globals = [] } in
  let _, out, _ = Srp_machine.Machine.run_program prog in
  (res, out)

let prop_spill_output_identical code =
  let _, out_full = exec_alloc Regalloc.default_policy code in
  let _, out_tiny = exec_alloc tiny_policy code in
  out_full = out_tiny

let prop_spill_reload_dominated code =
  let res, _ = exec_alloc tiny_policy code in
  (* straight-line code: textual order is dominance order *)
  let stored = Hashtbl.create 8 in
  let ok = ref true in
  let c = res.Regalloc.code in
  Array.iteri
    (fun i ins ->
      if i > 0 then
        match (c.(i - 1), ins) with
        | ( Insn.Alu { op = Insn.Aadd; dst; a = Insn.SReg 0; b = Insn.SImm off },
            Insn.Ld { base; site = -1; _ } )
          when dst = base ->
          if not (Hashtbl.mem stored off) then ok := false
        | ( Insn.Alu { op = Insn.Aadd; dst; a = Insn.SReg 0; b = Insn.SImm off },
            Insn.St { base; site = -1; _ } )
          when dst = base ->
          Hashtbl.replace stored off ()
        | _ -> ())
    c;
  !ok

let regalloc_qchecks =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:300 ~name:"regalloc within nregs/nfregs" arb_code
        prop_alloc_within_bounds;
      QCheck.Test.make ~count:300 ~name:"capped regalloc within nregs/nfregs"
        arb_code prop_spill_alloc_within_bounds;
      QCheck.Test.make ~count:300 ~name:"overlapping subranges disjoint"
        arb_code prop_subranges_disjoint;
      QCheck.Test.make ~count:300
        ~name:"overlapping subranges disjoint (closed)" arb_code
        prop_subranges_disjoint_closed;
      QCheck.Test.make ~count:300
        ~name:"overlapping subranges disjoint (capped)" arb_code
        prop_subranges_disjoint_tiny;
      QCheck.Test.make ~count:300 ~name:"pinned (ALAT) register private"
        arb_code prop_pinned_register_private;
      QCheck.Test.make ~count:200 ~name:"capped output = uncapped output"
        arb_straight_code prop_spill_output_identical;
      QCheck.Test.make ~count:200 ~name:"spill reloads dominated by stores"
        arb_straight_code prop_spill_reload_dominated ]

(* --- the seed allocator's pinned-vregs bug (regression) --- *)

let test_pinned_narrowing_frees_register () =
  (* The seed modeled pinned vregs as live for the whole function, so an
     ALAT temp blocked its register even after its last check.  Narrowed
     to arm..check, a later value reuses the register. *)
  let code =
    [| Insn.Movl { dst = 1; imm = 5L };
       Insn.St { src = Insn.SReg 1; base = 0; site = 0 };
       Insn.Movl { dst = 2; imm = 7L };
       Insn.St { src = Insn.SReg 2; base = 0; site = 0 };
       Insn.Ret { value = None } |]
  in
  let inp =
    { Regalloc.code; nivregs = 3; nfvregs = 0; live_in = []; flive_in = [];
      pinned = [ 1 ]; fpinned = []; spill_base = 0 }
  in
  let wide =
    Regalloc.run
      ~policy:{ Regalloc.closed_policy with Regalloc.pin_whole = true }
      inp
  in
  let narrow =
    Regalloc.run
      ~policy:{ Regalloc.closed_policy with Regalloc.pin_whole = false }
      inp
  in
  Alcotest.(check int) "whole-function pinning blocks a register" 3
    wide.Regalloc.nregs;
  Alcotest.(check int) "narrowed pinning frees it" 2 narrow.Regalloc.nregs

(* --- spill-slot coloring: non-overlapping spilled ranges share a slot --- *)

let test_spill_slot_reuse () =
  (* v2 and v4 are computed from live registers (not rematerializable), so
     under the tiny cap they genuinely spill; their ranges don't overlap,
     so slot coloring must give them one shared frame slot. *)
  let code =
    [| Insn.Movl { dst = 1; imm = 1L };
       Insn.Alu { op = Insn.Aadd; dst = 2; a = Insn.SReg 1; b = Insn.SImm 2L };
       Insn.Alu { op = Insn.Aadd; dst = 1; a = Insn.SReg 1; b = Insn.SReg 2 };
       Insn.St { src = Insn.SReg 1; base = 0; site = 0 };
       Insn.Movl { dst = 3; imm = 3L };
       Insn.Alu { op = Insn.Aadd; dst = 4; a = Insn.SReg 3; b = Insn.SImm 4L };
       Insn.Alu { op = Insn.Aadd; dst = 3; a = Insn.SReg 3; b = Insn.SReg 4 };
       Insn.St { src = Insn.SReg 3; base = 0; site = 0 };
       Insn.Ret { value = None } |]
  in
  let inp =
    { Regalloc.code; nivregs = 5; nfvregs = 0; live_in = []; flive_in = [];
      pinned = []; fpinned = []; spill_base = 16 }
  in
  let res = Regalloc.run ~policy:tiny_policy inp in
  let st = res.Regalloc.stats in
  Alcotest.(check int) "two webs spill" 2 st.Regalloc.spilled_webs;
  Alcotest.(check int) "non-overlapping spills share one slot" 1
    st.Regalloc.spill_slots;
  Alcotest.(check int) "frame grows by exactly one slot" 8
    res.Regalloc.spill_bytes;
  Alcotest.(check int) "one reload per spilled use" 2 st.Regalloc.reloads;
  Alcotest.(check int) "one store per spilled def" 2 st.Regalloc.spill_stores

(* --- hole-aware vs closed allocator on the benchmark kernels --- *)

module Pipeline = Srp_driver.Pipeline
module Workload = Srp_driver.Workload
module Site_hist = Srp_obs.Site_hist

let small_workload name =
  let w = Srp_workloads.Registry.find name in
  { w with Workload.ref_ = w.Workload.train }

let nregs_total (tgt : Insn.program) =
  Hashtbl.fold (fun _ f a -> a + f.Insn.nregs) tgt.Insn.funcs 0

let rse_traffic (c : Counters.t) =
  c.Counters.rse_spilled_regs + c.Counters.rse_filled_regs

(* Every level x layout x bundle x split combination of one kernel is
   bit-identical on program output and exit code (train input). *)
let test_split_matrix name () =
  let w = small_workload name in
  let profile = Pipeline.train_profile w in
  let reference = ref None in
  List.iter
    (fun level ->
      let profile =
        match level with Pipeline.Alat -> Some profile | _ -> None
      in
      List.iter
        (fun (layout, bundle, split) ->
          let c =
            Pipeline.compile ?profile ~layout ~bundle ~split
              ~input:w.Workload.ref_ w level
          in
          let r = Pipeline.run c in
          let key =
            Fmt.str "%s %s layout=%b bundle=%b split=%b" name
              (Pipeline.level_name level) layout bundle split
          in
          match !reference with
          | None -> reference := Some (r.Pipeline.output, r.Pipeline.exit_code)
          | Some (out, code) ->
            Alcotest.(check string) (key ^ " output") out r.Pipeline.output;
            Alcotest.(check int64) (key ^ " exit code") code
              r.Pipeline.exit_code)
        [ (true, true, true); (true, true, false); (true, false, true);
          (true, false, false); (false, true, true); (false, true, false);
          (false, false, true); (false, false, false) ])
    [ Pipeline.O0; Pipeline.Conservative; Pipeline.Baseline; Pipeline.Alat;
      Pipeline.Alat_heuristic ]

(* The tentpole's acceptance criterion: on the register-hungry kernels the
   hole-aware allocator strictly reduces register demand and RSE traffic
   at the alat level versus the closed-interval allocator. *)
let test_split_strict_reduction name () =
  let w = small_workload name in
  let split = Pipeline.profile_compile_run w Pipeline.Alat in
  let nosplit = Pipeline.profile_compile_run ~split:false w Pipeline.Alat in
  Alcotest.(check string) "outputs agree" nosplit.Pipeline.output
    split.Pipeline.output;
  Alcotest.(check int64) "exit codes agree" nosplit.Pipeline.exit_code
    split.Pipeline.exit_code;
  let nr_s = nregs_total split.Pipeline.compiled.Pipeline.target in
  let nr_c = nregs_total nosplit.Pipeline.compiled.Pipeline.target in
  Alcotest.(check bool)
    (Fmt.str "%s: hole-aware nregs %d < closed %d" name nr_s nr_c)
    true (nr_s < nr_c);
  let t_s = rse_traffic split.Pipeline.counters
  and t_c = rse_traffic nosplit.Pipeline.counters in
  Alcotest.(check bool)
    (Fmt.str "%s: hole-aware rse traffic %d < closed %d" name t_s t_c)
    true
    (t_c > 0 && t_s < t_c)

(* Split on/off is bit-identical on output and all non-cycle counters for
   all ten kernels: only the timing family (cycles, bundle geometry, RSE
   traffic) may move; retired events and the whole ALAT stream may not. *)
let cycle_family =
  [ "cycles"; "instrs_retired"; "data_access_cycles"; "bundles_retired";
    "nops_emitted"; "split_stalls"; "rse_cycles"; "rse_spilled_regs";
    "rse_filled_regs"; "max_stacked_regs" ]

let test_split_noncycle_counters () =
  List.iter
    (fun w ->
      let small = { w with Workload.ref_ = w.Workload.train } in
      let s = Pipeline.profile_compile_run small Pipeline.Alat in
      let n = Pipeline.profile_compile_run ~split:false small Pipeline.Alat in
      Alcotest.(check string)
        (w.Workload.name ^ " output")
        n.Pipeline.output s.Pipeline.output;
      Alcotest.(check int64)
        (w.Workload.name ^ " exit code")
        n.Pipeline.exit_code s.Pipeline.exit_code;
      List.iter2
        (fun (k, vs) (k', vn) ->
          assert (k = k');
          if not (List.mem k cycle_family) then
            Alcotest.(check int)
              (Fmt.str "%s: %s equal across split on/off" w.Workload.name k)
              vn vs)
        (Counters.to_fields s.Pipeline.counters)
        (Counters.to_fields n.Pipeline.counters))
    (Srp_workloads.Registry.all ())

(* --- spilled kernel builds: semantics, attribution, reload dominance --- *)

(* Compile a kernel at alat under a custom register-allocation policy
   (Pipeline only exposes the split bool; pressure tests need tiny caps). *)
let compile_capped ?(layout = true) ?(sched = true) ?(bundle = true) ~policy w =
  let profile = Pipeline.train_profile w in
  let ir = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input ir w.Workload.ref_;
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) ir);
  Codegen.gen_program ~layout ~sched ~bundle ~ra:policy ir

let kernel_cap = { Regalloc.default_policy with Regalloc.cap_int = 8; cap_fp = 4 }

let test_capped_kernel_attribution name () =
  let w = small_workload name in
  let tgt = compile_capped ~policy:kernel_cap w in
  let full = compile_capped ~policy:Regalloc.default_policy w in
  Alcotest.(check bool) "cap binds (register demand shrinks)" true
    (nregs_total tgt < nregs_total full);
  let m = Srp_machine.Machine.create tgt in
  ignore (Srp_machine.Machine.run m);
  let m_full = Srp_machine.Machine.create full in
  ignore (Srp_machine.Machine.run m_full);
  Alcotest.(check string) "capped output = uncapped output"
    (Srp_machine.Machine.output m_full)
    (Srp_machine.Machine.output m);
  (* per-site attribution still sums to the global counters even though
     spilled values live in several places (satellite: split builds keep
     the Site_hist invariant) *)
  let c = Srp_machine.Machine.counters m in
  let h = Srp_machine.Machine.site_stats m in
  List.iter
    (fun e ->
      Alcotest.(check int)
        (Fmt.str "%s capped: site sum = global %s" name
           (Site_hist.event_name e))
        (List.assoc (Site_hist.event_name e) (Counters.to_fields c))
        (Site_hist.total h e))
    Site_hist.all_events

(* Forward all-paths dataflow over a flat (unbundled, unlaid-out) function:
   every spill reload reads a slot that a spill store wrote on every path
   from entry.  Sound because spilled entities are never live-in at entry
   (entry-live formals are unspillable), so liveness guarantees a def —
   and hence a store — on every entry path. *)
let check_reloads_dominated (f : Insn.func) =
  let code = f.Insn.code in
  let n = Array.length code in
  let off_idx = Hashtbl.create 8 in
  let spill_accesses = ref [] in
  for i = 1 to n - 1 do
    match (code.(i - 1), code.(i)) with
    | ( Insn.Alu { op = Insn.Aadd; dst; a = Insn.SReg 0; b = Insn.SImm off },
        Insn.Ld { base; site = -1; _ } )
      when dst = base ->
      if not (Hashtbl.mem off_idx off) then
        Hashtbl.replace off_idx off (Hashtbl.length off_idx);
      spill_accesses := (`Reload, i, off) :: !spill_accesses
    | ( Insn.Alu { op = Insn.Aadd; dst; a = Insn.SReg 0; b = Insn.SImm off },
        Insn.St { base; site = -1; _ } )
      when dst = base ->
      if not (Hashtbl.mem off_idx off) then
        Hashtbl.replace off_idx off (Hashtbl.length off_idx);
      spill_accesses := (`Store, i, off) :: !spill_accesses
    | _ -> ()
  done;
  let noff = Hashtbl.length off_idx in
  if noff > 0 then begin
    let words = (noff + 62) / 63 in
    let top = Array.make words (-1) in
    let inb = Array.init n (fun _ -> Array.copy top) in
    Array.fill inb.(0) 0 words 0;
    let gen = Array.make n (-1, -1) in
    List.iter
      (fun (k, i, off) ->
        if k = `Store then
          let b = Hashtbl.find off_idx off in
          gen.(i) <- (b / 63, 1 lsl (b mod 63)))
      !spill_accesses;
    let changed = ref true in
    while !changed do
      changed := false;
      for pc = 0 to n - 1 do
        let out = Array.copy inb.(pc) in
        (match gen.(pc) with
        | -1, _ -> ()
        | w, m -> out.(w) <- out.(w) lor m);
        List.iter
          (fun s ->
            if s >= 0 && s < n then begin
              let row = inb.(s) in
              for w = 0 to words - 1 do
                let x = row.(w) land out.(w) in
                if x <> row.(w) then begin
                  row.(w) <- x;
                  changed := true
                end
              done
            end)
          (Regalloc.successors code pc)
      done
    done;
    List.iter
      (fun (k, i, off) ->
        if k = `Reload then begin
          let b = Hashtbl.find off_idx off in
          if inb.(i).(b / 63) land (1 lsl (b mod 63)) = 0 then
            Alcotest.fail
              (Fmt.str "%s: reload at pc %d of slot %Ld not dominated by a store"
                 f.Insn.name i off)
        end)
      !spill_accesses
  end

let test_capped_kernel_reloads_dominated name () =
  let w = small_workload name in
  (* sched:false — spill-access detection below pattern-matches the
     `sp+off` address compute *adjacent* to its Ld/St, and the list
     scheduler is free to separate them (it never reorders the memory
     ops themselves, so dominance is unaffected — only detection). *)
  let tgt =
    compile_capped ~layout:false ~sched:false ~bundle:false
      ~policy:kernel_cap w
  in
  Hashtbl.iter (fun _ f -> check_reloads_dominated f) tgt.Insn.funcs

let suite =
  regalloc_qchecks
  @ [ Alcotest.test_case "labels resolve" `Quick test_codegen_labels_resolve;
    Alcotest.test_case "register bounds" `Quick test_codegen_register_bounds;
    Alcotest.test_case "ALAT registers dedicated" `Quick test_regalloc_alat_dedicated;
    Alcotest.test_case "figure 1 assembly shape" `Quick test_figure1_assembly_shape;
    Alcotest.test_case "figure 3 assembly shape" `Quick test_figure3_assembly_shape;
    Alcotest.test_case "layout rotates hot loops" `Quick test_layout_rotated_loop_mispredicts;
    Alcotest.test_case "layout keeps recovery out of line" `Quick test_layout_recovery_out_of_line;
    Alcotest.test_case "layout differential (alat)" `Quick test_layout_differential_alat;
    Alcotest.test_case "address hoisting" `Quick test_addr_hoisting;
    Alcotest.test_case "formal spill prologue" `Quick test_formal_spill_prologue;
    Alcotest.test_case "frame layout disjoint" `Quick test_frame_layout_disjoint;
    Alcotest.test_case "pinned narrowing frees a register" `Quick
      test_pinned_narrowing_frees_register;
    Alcotest.test_case "spill slots reused" `Quick test_spill_slot_reuse;
    Alcotest.test_case "split matrix: ammp" `Slow (test_split_matrix "ammp");
    Alcotest.test_case "split matrix: equake" `Slow (test_split_matrix "equake");
    Alcotest.test_case "split matrix: gap" `Slow (test_split_matrix "gap");
    Alcotest.test_case "split reduces pressure: ammp" `Slow
      (test_split_strict_reduction "ammp");
    Alcotest.test_case "split reduces pressure: equake" `Slow
      (test_split_strict_reduction "equake");
    Alcotest.test_case "split reduces pressure: gap" `Slow
      (test_split_strict_reduction "gap");
    Alcotest.test_case "split on/off: non-cycle counters equal (10 kernels)"
      `Slow test_split_noncycle_counters;
    Alcotest.test_case "capped kernel: attribution sums (gzip)" `Slow
      (test_capped_kernel_attribution "gzip");
    Alcotest.test_case "capped kernel: attribution sums (twolf)" `Slow
      (test_capped_kernel_attribution "twolf");
    Alcotest.test_case "capped kernel: reloads dominated (mcf)" `Slow
      (test_capped_kernel_reloads_dominated "mcf");
    Alcotest.test_case "capped kernel: reloads dominated (twolf)" `Slow
      (test_capped_kernel_reloads_dominated "twolf") ]
