(* The span tracer (srp-spans-v1), the machine timeline sampler
   (srp-timeline-v1) and their consumers: file format round-trips,
   truncation, per-domain well-nestedness (QCheck), the on/off
   differential (enabling observability leaves every counter and output
   bit-identical), `srp report` rendering and the bench --compare
   regression checker. *)

open Srp_driver
module J = Srp_obs.Json
module Span = Srp_obs.Span
module Trace = Srp_obs.Trace
module C = Srp_machine.Counters

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let parse_ok s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "span file does not parse: %s" e

(* Run [f] with a fresh file-backed tracer installed; return the parsed
   span document and the tracer (already closed). *)
let with_file_tracer ?limit (f : unit -> unit) : J.t * Span.t =
  let path = Filename.temp_file "srp_span" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let t = Span.create ?limit ~out:oc () in
  Span.install t;
  Fun.protect
    ~finally:(fun () ->
      Span.uninstall ();
      Span.close t;
      close_out_noerr oc)
    f;
  (parse_ok (read_file path), t)

let events doc =
  match doc with
  | J.Arr evs -> evs
  | _ -> Alcotest.fail "span document is not an array"

let str_field name js =
  match Option.bind (J.member name js) J.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" name

let float_field name js =
  match Option.bind (J.member name js) J.to_float_opt with
  | Some f -> f
  | None -> Alcotest.failf "missing number field %S" name

let int_field name js =
  match Option.bind (J.member name js) J.to_int_opt with
  | Some i -> i
  | None -> Alcotest.failf "missing int field %S" name

(* --- file format --- *)

let test_span_file_shape () =
  let doc, t =
    with_file_tracer (fun () ->
        Span.with_span ~cat:"test" "outer" (fun () ->
            Span.with_span ~cat:"test" "inner"
              ~args:[ ("k", J.String "v") ]
              (fun () -> ());
            Span.instant ~cat:"test" "mark");
        ignore
          (Span.with_span_args ~cat:"test" "argsy" (fun () ->
               (17, [ ("hit", J.Bool true) ]))))
  in
  let evs = events doc in
  Alcotest.(check int) "four events" 4 (List.length evs);
  Alcotest.(check int) "emitted agrees" 4 (Span.emitted t);
  Alcotest.(check bool) "nothing dropped" false (Span.truncated t);
  (* spans are emitted at scope end: inner, mark, outer, argsy *)
  let names = List.map (str_field "name") evs in
  Alcotest.(check (list string)) "emission order"
    [ "inner"; "mark"; "outer"; "argsy" ]
    names;
  List.iter
    (fun ev ->
      Alcotest.(check string) "cat" "test" (str_field "cat" ev);
      Alcotest.(check int) "pid" 1 (int_field "pid" ev);
      ignore (int_field "tid" ev);
      ignore (float_field "ts" ev))
    evs;
  let by_name n = List.find (fun e -> str_field "name" e = n) evs in
  let inner = by_name "inner" and outer = by_name "outer" in
  Alcotest.(check string) "complete event" "X" (str_field "ph" inner);
  Alcotest.(check bool) "inner nested in outer" true
    (float_field "ts" inner >= float_field "ts" outer
    && float_field "ts" inner +. float_field "dur" inner
       <= float_field "ts" outer +. float_field "dur" outer +. 1e-6);
  (match Option.bind (J.member "args" inner) (J.member "k") with
  | Some (J.String "v") -> ()
  | _ -> Alcotest.fail "static args missing");
  let mark = by_name "mark" in
  Alcotest.(check string) "instant event" "i" (str_field "ph" mark);
  Alcotest.(check string) "thread-scoped" "t" (str_field "s" mark);
  Alcotest.(check bool) "instant has no dur" true (J.member "dur" mark = None);
  (* with_span_args: args discovered inside the scope land in the event *)
  match Option.bind (J.member "args" (by_name "argsy")) (J.member "hit") with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.fail "scope-result args missing"

let test_span_exception_safe () =
  let doc, _ =
    with_file_tracer (fun () ->
        try Span.with_span ~cat:"test" "boom" (fun () -> failwith "kapow")
        with Failure _ -> ())
  in
  match events doc with
  | [ ev ] ->
    Alcotest.(check string) "span still emitted" "boom" (str_field "name" ev);
    (match Option.bind (J.member "args" ev) (J.member "exn") with
    | Some (J.String msg) ->
      Alcotest.(check bool) "exn arg carries the message" true
        (contains ~needle:"kapow" msg)
    | _ -> Alcotest.fail "raising span lacks the exn arg")
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let test_span_truncation () =
  let limit = 5 and total = 12 in
  let doc, t =
    with_file_tracer ~limit (fun () ->
        for i = 1 to total do
          Span.with_span ~cat:"test" (Fmt.str "s%d" i) (fun () -> ())
        done)
  in
  Alcotest.(check int) "emitted caps at limit" limit (Span.emitted t);
  Alcotest.(check int) "dropped counts the rest" (total - limit)
    (Span.dropped t);
  Alcotest.(check bool) "truncated" true (Span.truncated t);
  let evs = events doc in
  Alcotest.(check int) "file holds limit + marker" (limit + 1)
    (List.length evs);
  let markers =
    List.filter (fun e -> str_field "name" e = "truncated") evs
  in
  (* exactly one truncated marker, as the last event, with the count —
     the span-file analogue of Trace's {"ev":"truncated"} record *)
  Alcotest.(check int) "exactly one truncated marker" 1 (List.length markers);
  let last = List.nth evs limit in
  Alcotest.(check string) "marker is last" "truncated" (str_field "name" last);
  Alcotest.(check string) "marker is an instant" "i" (str_field "ph" last);
  match Option.bind (J.member "args" last) (J.member "dropped") with
  | Some (J.Int n) -> Alcotest.(check int) "dropped arg exact" (total - limit) n
  | _ -> Alcotest.fail "truncated marker lacks args.dropped"

let test_span_totals_sinkless () =
  (* the srp-serve mode: no out channel, aggregation only *)
  let t = Span.create () in
  Span.install t;
  Fun.protect ~finally:Span.uninstall (fun () ->
      for _ = 1 to 3 do
        Span.with_span ~cat:"stage" "stage.lower" (fun () -> ())
      done;
      Span.with_span ~cat:"pool" "pool.task" (fun () -> ()));
  Alcotest.(check int) "events counted without a sink" 4 (Span.emitted t);
  match Span.totals t with
  | [ ("pool", "pool.task", 1, _); ("stage", "stage.lower", 3, secs) ] ->
    Alcotest.(check bool) "durations accumulate" true (secs >= 0.0)
  | l -> Alcotest.failf "unexpected totals (%d rows)" (List.length l)

let test_span_disabled_is_noop () =
  Alcotest.(check bool) "no tracer installed" false (Span.enabled ());
  Alcotest.(check int) "with_span still runs f" 9
    (Span.with_span "ghost" (fun () -> 9));
  Span.instant "ghost"

(* --- QCheck: random span trees stay well-nested per domain --- *)

(* A span tree described by a nested list shape; running it produces one
   event per node.  The property: in the emitted file, events of each
   tid reconstruct into properly nested intervals (every event either
   contains or is disjoint from every other, and each event fits inside
   the innermost enclosing one). *)
type tree = Node of tree list

let rec tree_gen depth =
  let open QCheck.Gen in
  if depth = 0 then pure (Node [])
  else
    map (fun kids -> Node kids) (list_size (int_bound 3) (tree_gen (depth - 1)))

let rec run_tree i (Node children) =
  Span.with_span ~cat:"q" (Fmt.str "n%d" i) (fun () ->
      List.iteri run_tree children)

let rec count_nodes (Node children) =
  List.fold_left (fun acc c -> acc + count_nodes c) 1 children

let check_well_nested (evs : J.t list) =
  (* group by tid, sort by (ts asc, dur desc); a stack of end-times then
     witnesses the nesting: after popping finished spans, the current
     event must end within the enclosing one *)
  let by_tid = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      if str_field "ph" ev = "X" then begin
        let tid = int_field "tid" ev in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_tid tid) in
        Hashtbl.replace by_tid tid
          ((float_field "ts" ev, float_field "dur" ev) :: prev)
      end)
    evs;
  Hashtbl.iter
    (fun _tid spans ->
      let spans =
        List.sort
          (fun (ts1, d1) (ts2, d2) ->
            match compare ts1 ts2 with 0 -> compare d2 d1 | c -> c)
          spans
      in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          while
            match !stack with
            | top :: rest when top <= ts ->
              stack := rest;
              true
            | _ -> false
          do
            ()
          done;
          (match !stack with
          | top :: _ ->
            if ts +. dur > top +. 1e-6 then
              Alcotest.failf
                "span [%f, %f] overflows its enclosing span (end %f)" ts
                (ts +. dur) top
          | [] -> ());
          stack := (ts +. dur) :: !stack)
        spans)
    by_tid

let qcheck_well_nested =
  QCheck.Test.make ~count:30 ~name:"random span trees are well-nested"
    (QCheck.make ~print:(fun t -> Fmt.str "%d nodes" (count_nodes t))
       (tree_gen 4))
    (fun tree ->
      let doc, _ = with_file_tracer (fun () -> run_tree 0 tree) in
      let evs = events doc in
      check_well_nested evs;
      List.length evs = count_nodes tree)

let test_span_multi_domain () =
  let doc, _ =
    with_file_tracer (fun () ->
        let worker k =
          Domain.spawn (fun () ->
              Span.with_span ~cat:"q" (Fmt.str "dom%d" k) (fun () ->
                  Span.with_span ~cat:"q" "leaf" (fun () -> ())))
        in
        let d1 = worker 1 and d2 = worker 2 in
        Domain.join d1;
        Domain.join d2)
  in
  let evs = events doc in
  Alcotest.(check int) "two spans per domain" 4 (List.length evs);
  let tids = List.sort_uniq compare (List.map (int_field "tid") evs) in
  Alcotest.(check int) "distinct domain tracks" 2 (List.length tids);
  check_well_nested evs

(* --- the on/off differential: observability must not perturb runs --- *)

let test_observability_differential () =
  let w = Srp_workloads.Registry.find "gzip" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let plain = Pipeline.profile_compile_run small Pipeline.Alat in
  let span_path = Filename.temp_file "srp_span_diff" ".json" in
  let tl_path = Filename.temp_file "srp_tl_diff" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove span_path;
      Sys.remove tl_path)
  @@ fun () ->
  let span_oc = open_out span_path in
  let tracer = Span.create ~out:span_oc () in
  Span.install tracer;
  let tl_oc = open_out tl_path in
  let sink = Trace.create tl_oc in
  let timeline = Srp_machine.Timeline.create ~interval:64 sink in
  let observed =
    Fun.protect
      ~finally:(fun () ->
        Span.uninstall ();
        Span.close tracer;
        close_out_noerr span_oc;
        Trace.close sink;
        close_out_noerr tl_oc)
      (fun () -> Pipeline.profile_compile_run ~timeline small Pipeline.Alat)
  in
  Alcotest.(check string) "output bit-identical" plain.Pipeline.output
    observed.Pipeline.output;
  Alcotest.(check int64) "exit code identical" plain.Pipeline.exit_code
    observed.Pipeline.exit_code;
  List.iter2
    (fun (name, v0) (name', v1) ->
      Alcotest.(check string) "field order" name name';
      Alcotest.(check int) ("counter " ^ name) v0 v1)
    (C.to_fields plain.Pipeline.counters)
    (C.to_fields observed.Pipeline.counters);
  Alcotest.(check bool) "spans were recorded" true (Span.emitted tracer > 0);
  (* and the span file is loadable *)
  ignore (parse_ok (read_file span_path))

(* --- the timeline sampler --- *)

let timeline_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match J.of_string l with
         | Ok js -> js
         | Error e -> Alcotest.failf "timeline line %S: %s" l e)

let test_timeline_rows () =
  let w = Srp_workloads.Registry.find "mcf" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let path = Filename.temp_file "srp_timeline" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Trace.create oc in
  let timeline = Srp_machine.Timeline.create ~interval:100 sink in
  let r = Pipeline.profile_compile_run ~timeline small Pipeline.Alat in
  Trace.close sink;
  close_out oc;
  match timeline_lines path with
  | header :: rows ->
    Alcotest.(check string) "header kind" "timeline.header"
      (str_field "ev" header);
    Alcotest.(check string) "schema" "srp-timeline-v1"
      (str_field "schema" header);
    Alcotest.(check int) "interval echoed" 100 (int_field "interval" header);
    Alcotest.(check bool) "at least the closing row" true (rows <> []);
    let cycles = List.map (int_field "c") rows in
    List.iter
      (fun row ->
        Alcotest.(check string) "row kind" "timeline" (str_field "ev" row);
        Alcotest.(check bool) "alat_live bounded" true
          (let v = int_field "alat_live" row in
           v >= 0 && v <= 32);
        Alcotest.(check bool) "rse_dirty nonneg" true
          (int_field "rse_dirty" row >= 0);
        Alcotest.(check bool) "rse_clean nonneg" true
          (int_field "rse_clean" row >= 0);
        (* the in-progress group's instructions retire before its cycle
           is counted, so a window can read slightly above 1.0 *)
        Alcotest.(check bool) "issue_util sane" true
          (let u = float_field "issue_util" row in
           u >= 0.0 && u <= 2.0);
        Alcotest.(check bool) "miss windows nonneg" true
          (int_field "l1_misses" row >= 0 && int_field "l2_misses" row >= 0))
      rows;
    Alcotest.(check bool) "cycles nondecreasing" true
      (List.for_all2 ( <= )
         (List.filteri (fun i _ -> i < List.length cycles - 1) cycles)
         (List.tl cycles));
    (* the unconditional closing row lands at the end of the run *)
    Alcotest.(check int) "final row at the last cycle"
      r.Pipeline.counters.C.cycles
      (List.nth cycles (List.length cycles - 1));
    (* per-window l1 misses sum back to the global counter *)
    let l1_sum =
      List.fold_left (fun acc row -> acc + int_field "l1_misses" row) 0 rows
    in
    Alcotest.(check int) "window l1 misses sum to the counter"
      r.Pipeline.counters.C.l1_misses l1_sum
  | [] -> Alcotest.fail "empty timeline"

let test_timeline_bad_interval () =
  let sink = Trace.create stdout in
  Alcotest.check_raises "interval 0 rejected"
    (Invalid_argument "Timeline.create: interval 0") (fun () ->
      ignore (Srp_machine.Timeline.create ~interval:0 sink))

(* --- srp report: the span-file consumer --- *)

let test_report_renders_pipeline_spans () =
  let w = Srp_workloads.Registry.find "gzip" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let doc, _ =
    with_file_tracer (fun () ->
        ignore (Pipeline.profile_compile_run small Pipeline.Alat))
  in
  match Report.Span_report.render doc with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok s ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) (needle ^ " in report") true
          (contains ~needle s))
      [ "stage.lower"; "stage.bundle"; "hot span path"; "total ms"; "spans" ]

let test_report_rejects_garbage () =
  (match Report.Span_report.render (J.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-array accepted");
  match Report.Span_report.render (J.Arr [ J.Int 3 ]) with
  | Ok s ->
    (* non-event entries are skipped, leaving an empty report *)
    Alcotest.(check bool) "empty report" true
      (contains ~needle:"0 complete spans" s)
  | Error _ -> ()

let test_report_counts_truncation () =
  let doc, _ =
    with_file_tracer ~limit:3 (fun () ->
        for i = 1 to 10 do
          Span.with_span ~cat:"t" (Fmt.str "s%d" i) (fun () -> ())
        done)
  in
  match Report.Span_report.render doc with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok s ->
    Alcotest.(check bool) "reports the drop count" true
      (contains ~needle:"7" s && contains ~needle:"truncated" s)

(* --- bench --compare: the srp-bench-v1 regression checker --- *)

let bench_doc ?(name = "k") ?(cycles = 1000) ?(loads = 50) ?(l1_hits = 40)
    ?(extra = []) () =
  let counters =
    J.Obj
      ([ ("cycles", J.Int cycles);
         ("loads_retired", J.Int loads);
         ("l1_hits", J.Int l1_hits) ]
      @ extra)
  in
  J.Obj
    [ ("schema", J.String "srp-bench-v1");
      ("benchmarks",
       J.Arr
         [ J.Obj
             [ ("name", J.String name);
               ("baseline_counters", counters);
               ("alat_counters", counters) ] ]) ]

let compare_ok ?thresholds ~old_doc ~new_doc () =
  match Report.Compare.compare_docs ?thresholds ~old_doc ~new_doc () with
  | Ok regs -> regs
  | Error e -> Alcotest.failf "compare errored: %s" e

let test_compare_self_clean () =
  let doc = bench_doc () in
  let regs = compare_ok ~old_doc:doc ~new_doc:doc () in
  Alcotest.(check int) "self-compare is clean" 0 (List.length regs);
  Alcotest.(check string) "render says so" "no regressions\n"
    (Report.Compare.render regs)

let test_compare_cycle_slack () =
  (* +1% cycles sits inside the default 2% slack; +10% does not *)
  let old_doc = bench_doc ~cycles:1000 () in
  Alcotest.(check int) "wobble tolerated" 0
    (List.length
       (compare_ok ~old_doc ~new_doc:(bench_doc ~cycles:1010 ()) ()));
  let regs = compare_ok ~old_doc ~new_doc:(bench_doc ~cycles:1100 ()) () in
  (* both sides of the benchmark regressed *)
  Alcotest.(check int) "real growth flagged on both sides" 2
    (List.length regs);
  let r = List.hd regs in
  Alcotest.(check string) "counter named" "cycles" r.Report.Compare.r_counter;
  Alcotest.(check bool) "delta positive" true
    (r.Report.Compare.r_delta_pct > 9.0);
  Alcotest.(check bool) "render table mentions it" true
    (contains ~needle:"cycles" (Report.Compare.render regs))

let test_compare_event_counters_strict () =
  (* non-cycle counters default to zero slack: +1 load is a regression *)
  let old_doc = bench_doc ~loads:50 () in
  let regs = compare_ok ~old_doc ~new_doc:(bench_doc ~loads:51 ()) () in
  Alcotest.(check int) "one extra load flagged" 2 (List.length regs);
  Alcotest.(check string) "loads named" "loads_retired"
    (List.hd regs).Report.Compare.r_counter;
  (* ...unless the caller grants slack *)
  let lax =
    { Report.Compare.default_thresholds with Report.Compare.counter_pct = 5.0 }
  in
  Alcotest.(check int) "threshold is configurable" 0
    (List.length
       (compare_ok ~thresholds:lax ~old_doc
          ~new_doc:(bench_doc ~loads:51 ()) ()))

let test_compare_improvements_and_l1_hits () =
  (* shrinking counters never regress; l1_hits growth is ignored *)
  let old_doc = bench_doc ~cycles:1000 ~loads:50 ~l1_hits:40 () in
  let new_doc = bench_doc ~cycles:900 ~loads:45 ~l1_hits:999 () in
  Alcotest.(check int) "improvement is clean" 0
    (List.length (compare_ok ~old_doc ~new_doc ()))

let test_compare_missing_is_error () =
  let old_doc = bench_doc ~name:"k" () in
  (* a dropped kernel must not read as "no regressions" *)
  (match
     Report.Compare.compare_docs ~old_doc
       ~new_doc:(bench_doc ~name:"other" ()) ()
   with
  | Error e ->
    Alcotest.(check bool) "names the kernel" true (contains ~needle:"k" e)
  | Ok _ -> Alcotest.fail "missing benchmark accepted");
  (* a vanished counter is an error too *)
  let old_doc = bench_doc ~extra:[ ("checks_retired", J.Int 7) ] () in
  (match Report.Compare.compare_docs ~old_doc ~new_doc:(bench_doc ()) () with
  | Error e ->
    Alcotest.(check bool) "names the counter" true
      (contains ~needle:"checks_retired" e)
  | Ok _ -> Alcotest.fail "missing counter accepted");
  (* schema mismatches are errors, not empty diffs *)
  match
    Report.Compare.compare_docs ~old_doc:(J.Obj []) ~new_doc:(bench_doc ()) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less document accepted"

let suite =
  [ Alcotest.test_case "span: file shape" `Quick test_span_file_shape;
    Alcotest.test_case "span: exception-safe" `Quick test_span_exception_safe;
    Alcotest.test_case "span: truncation marker" `Quick test_span_truncation;
    Alcotest.test_case "span: sink-less totals" `Quick
      test_span_totals_sinkless;
    Alcotest.test_case "span: disabled is a no-op" `Quick
      test_span_disabled_is_noop;
    QCheck_alcotest.to_alcotest qcheck_well_nested;
    Alcotest.test_case "span: multi-domain tracks" `Quick
      test_span_multi_domain;
    Alcotest.test_case "differential: observability off = on" `Slow
      test_observability_differential;
    Alcotest.test_case "timeline: rows + window sums" `Slow test_timeline_rows;
    Alcotest.test_case "timeline: bad interval" `Quick
      test_timeline_bad_interval;
    Alcotest.test_case "report: renders pipeline spans" `Slow
      test_report_renders_pipeline_spans;
    Alcotest.test_case "report: rejects garbage" `Quick
      test_report_rejects_garbage;
    Alcotest.test_case "report: surfaces truncation" `Quick
      test_report_counts_truncation;
    Alcotest.test_case "compare: self is clean" `Quick test_compare_self_clean;
    Alcotest.test_case "compare: cycle slack" `Quick test_compare_cycle_slack;
    Alcotest.test_case "compare: strict event counters" `Quick
      test_compare_event_counters_strict;
    Alcotest.test_case "compare: improvements ignored" `Quick
      test_compare_improvements_and_l1_hits;
    Alcotest.test_case "compare: missing data errors" `Quick
      test_compare_missing_is_error ]
