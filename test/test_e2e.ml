(* End-to-end tests: every built-in kernel through the full experiment
   pipeline on its *train* input (fast), with all levels output-equal and
   the headline metrics moving in the right direction. *)

open Srp_driver
module C = Srp_machine.Counters

(* Run one workload on its train input at several levels and return the
   (level, run_result) pairs. *)
let run_train (w : Workload.t) levels =
  (* substitute train for ref so the e2e suite stays fast *)
  let small = { w with Workload.ref_ = w.Workload.train } in
  List.map (fun l -> (l, Pipeline.profile_compile_run small l)) levels

let test_kernel_equivalence name () =
  let w = Srp_workloads.Registry.find name in
  let runs =
    run_train w
      [ Pipeline.O0; Pipeline.Conservative; Pipeline.Baseline; Pipeline.Alat;
        Pipeline.Alat_heuristic ]
  in
  match runs with
  | (_, first) :: rest ->
    List.iter
      (fun (l, r) ->
        Alcotest.(check string)
          (Fmt.str "%s output at %s" name (Pipeline.level_name l))
          first.Pipeline.output r.Pipeline.output)
      rest
  | [] -> ()

let test_kernel_improves name () =
  let w = Srp_workloads.Registry.find name in
  let runs = run_train w [ Pipeline.Baseline; Pipeline.Alat ] in
  let base = List.assoc Pipeline.Baseline runs in
  let spec = List.assoc Pipeline.Alat runs in
  (* On the small train inputs the arming loads can offset part of the
     win (twolf), so the invariant here is "no meaningful regression";
     the bench harness on the ref inputs checks the actual reductions. *)
  Alcotest.(check bool)
    (Fmt.str "%s: loads not regressed" name)
    true
    (float_of_int spec.Pipeline.counters.C.loads_retired
    <= 1.02 *. float_of_int base.Pipeline.counters.C.loads_retired)

let test_o0_worst () =
  let w = Srp_workloads.Registry.find "mcf" in
  let runs = run_train w [ Pipeline.O0; Pipeline.Baseline ] in
  let o0 = List.assoc Pipeline.O0 runs in
  let base = List.assoc Pipeline.Baseline runs in
  Alcotest.(check bool) "baseline beats O0" true
    (base.Pipeline.counters.C.cycles < o0.Pipeline.counters.C.cycles)

let test_checks_only_in_alat () =
  (* gzip, not twolf: the expected-value gate prices twolf's one
     check-bearing candidate out (its check traffic beats the saved
     latency), so twolf retires no checks on the train input anymore *)
  let w = Srp_workloads.Registry.find "gzip" in
  let runs = run_train w [ Pipeline.Conservative; Pipeline.Baseline; Pipeline.Alat ] in
  let get l = (List.assoc l runs).Pipeline.counters in
  Alcotest.(check int) "no checks in conservative" 0 (get Pipeline.Conservative).C.checks_retired;
  Alcotest.(check int) "no alat checks in software baseline" 0
    (get Pipeline.Baseline).C.checks_retired;
  Alcotest.(check bool) "checks in alat" true ((get Pipeline.Alat).C.checks_retired > 0)

let test_profile_input_sensitivity () =
  (* gzip trained on an alias-free input mis-speculates on the ref input
     but still recovers the correct answer *)
  let w = Srp_workloads.Registry.find "gzip" in
  let spec = Pipeline.profile_compile_run w Pipeline.Alat in
  Alcotest.(check bool) "gzip really mis-speculates on ref" true
    (spec.Pipeline.counters.C.check_failures > 0)

let test_figure_rows_well_formed () =
  let w = Srp_workloads.Registry.find "vpr" in
  let small = { w with Workload.ref_ = w.Workload.train } in
  let r = Experiments.run_pair small in
  let f8 =
    Report.figure8_row ~name:"vpr" ~base:r.Experiments.base.Pipeline.counters
      ~spec:r.Experiments.spec.Pipeline.counters
  in
  Alcotest.(check bool) "reduction bounded" true
    (f8.Report.loads_red < 100.0 && f8.Report.loads_red > -100.0);
  let f10 =
    Report.figure10_row ~name:"vpr" ~spec:r.Experiments.spec.Pipeline.counters
  in
  Alcotest.(check bool) "misspec ratio is a percentage" true
    (f10.Report.misspec_ratio >= 0.0 && f10.Report.misspec_ratio <= 100.0)

let kernel_tests =
  List.concat_map
    (fun name ->
      [ Alcotest.test_case (name ^ " all levels agree") `Slow (test_kernel_equivalence name);
        Alcotest.test_case (name ^ " loads reduced") `Slow (test_kernel_improves name) ])
    (Srp_workloads.Registry.names ())

let suite =
  kernel_tests
  @ [ Alcotest.test_case "baseline beats O0" `Slow test_o0_worst;
      Alcotest.test_case "checks only in alat" `Slow test_checks_only_in_alat;
      Alcotest.test_case "gzip mis-speculates on ref" `Slow test_profile_input_sensitivity;
      Alcotest.test_case "figure rows well-formed" `Slow test_figure_rows_well_formed ]
