(* Tests for the pre-bundle latency-aware list scheduler.

   Three layers, mirroring test_bundle.ml:
   - QCheck properties over random instruction blocks, judged by an
     independent re-implementation of the dependence rules (the
     reads/writes table, the ordered-op classification and the block
     leader rule are all restated here from the ISA, not imported from
     the scheduler or the allocator): the output is a per-block
     permutation of the input; no RAW/WAW/WAR pair is inverted; the
     memory/ALAT/side-effect subsequence of each block is untouched; no
     ALAT tag's arm/check/invalidate sequence changes; terminals keep
     their exact pc.
   - Deterministic units: a fully serial chain comes back identical, and
     an independent ld.a hoists above older compute.
   - A sched-on/off differential over every built-in kernel at every
     level: bit-identical output, exit code and non-cycle counters;
     cycles never regress at alat; and the aggregate split_stalls +
     nops_emitted bill strictly shrinks — the scheduler must buy its
     keep at the bundler, not just at the latency model. *)

module Insn = Srp_target.Insn
module Sched = Srp_target.Sched
module C = Srp_machine.Counters
open Srp_driver

(* --- independent dependence rules --- *)

(* (int reads, float reads, int writes, float writes), re-derived from
   the ISA semantics opcode by opcode. *)
let reads_writes (ins : Insn.insn) : int list * int list * int list * int list
    =
  let src = function
    | Insn.SReg r -> ([ r ], [])
    | Insn.SFrg f -> ([], [ f ])
    | Insn.SImm _ | Insn.SFim _ -> ([], [])
  in
  let dest = function Insn.DInt r -> ([ r ], []) | Insn.DFlt f -> ([], [ f ]) in
  let ( ++ ) (a, b) (c, d) = (a @ c, b @ d) in
  let none = ([], []) in
  let r, w =
    match ins with
    | Insn.Movl { dst; _ } | Insn.Gaddr { dst; _ } -> (none, ([ dst ], []))
    | Insn.Mov { dst; src = s } -> (src s, dest dst)
    | Insn.Alu { a; b; dst; _ } | Insn.Fcmp { a; b; dst; _ } ->
      (src a ++ src b, ([ dst ], []))
    | Insn.Falu { a; b; dst; _ } -> (src a ++ src b, ([], [ dst ]))
    | Insn.Itof { src = s; dst } -> (src s, ([], [ dst ]))
    | Insn.Ftoi { src = s; dst } -> (src s, ([ dst ], []))
    | Insn.Ld { kind; dst; base; _ } ->
      (* a check load consults the value it may already hold *)
      let extra =
        match kind with Insn.K_ld_c _ -> dest dst | _ -> none
      in
      ((([ base ], []) ++ extra), dest dst)
    | Insn.St { src = s; base; _ } -> (src s ++ ([ base ], []), none)
    | Insn.Chk_a { tag; _ } | Insn.Invala_e { tag } -> (dest tag, none)
    | Insn.Sel { dst; cond; if_true; if_false } ->
      (([ cond ], []) ++ src if_true ++ src if_false, dest dst)
    | Insn.Br _ -> (none, none)
    | Insn.Brc { cond; _ } -> (([ cond ], []), none)
    | Insn.Call { args; ret; _ } ->
      ( List.fold_left (fun acc a -> acc ++ src a) none args,
        match ret with Some d -> dest d | None -> none )
    | Insn.Ret { value } ->
      ((match value with Some s -> src s | None -> none), none)
    | Insn.Alloc { dst; nbytes; _ } -> (src nbytes, ([ dst ], []))
    | Insn.Print { what; _ } -> (src what, none)
    | Insn.Nop -> (none, none)
  in
  (fst r, snd r, fst w, snd w)

(* effects beyond the register files: cache state, ALAT state, the heap
   pointer, the output stream — their relative order is architecture *)
let observes_world = function
  | Insn.Ld _ | Insn.St _ | Insn.Chk_a _ | Insn.Invala_e _ | Insn.Alloc _
  | Insn.Call _ | Insn.Print _ ->
    true
  | _ -> false

let ends_block = function
  | Insn.Br _ | Insn.Brc _ | Insn.Ret _ | Insn.Chk_a _ -> true
  | _ -> false

(* block extents: leaders are branch/check targets and the instruction
   after any control transfer *)
let blocks (code : Insn.insn array) : (int * int) list =
  let n = Array.length code in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  let mark t = if t >= 0 && t < n then leader.(t) <- true in
  Array.iteri
    (fun i ins ->
      (match ins with
      | Insn.Br { target } -> mark target
      | Insn.Brc { ifso; ifnot; _ } ->
        mark ifso;
        mark ifnot
      | Insn.Chk_a { recovery; _ } -> mark recovery
      | _ -> ());
      if ends_block ins then mark (i + 1))
    code;
  let bs = ref [] and lo = ref 0 in
  for i = 1 to n do
    if i = n || leader.(i) then begin
      bs := (!lo, i) :: !bs;
      lo := i
    end
  done;
  List.rev !bs

(* Match each output slot of a block to a distinct input index holding an
   identical instruction; None if the block is not a permutation. *)
let match_block (inp : Insn.insn array) (out : Insn.insn array) lo hi :
    int array option =
  let n = hi - lo in
  let used = Array.make n false in
  let map = Array.make n (-1) in
  let ok = ref true in
  for p = 0 to n - 1 do
    let rec find k =
      if k >= n then -1
      else if (not used.(k)) && inp.(lo + k) = out.(lo + p) then k
      else find (k + 1)
    in
    match find 0 with
    | -1 -> ok := false
    | k ->
      used.(k) <- true;
      map.(p) <- k
  done;
  if !ok then Some map else None

(* --- random blocks: test_bundle's generator plus the scheduler-relevant
   opcodes (conversions, sel, all speculative load kinds, alloc, print) *)

let pt_niregs = 7
let pt_nfregs = 4

let gen_insn len =
  let open QCheck.Gen in
  let ireg = int_range 1 (pt_niregs - 1) in
  let freg = int_range 0 (pt_nfregs - 1) in
  let lbl = int_range 0 (len - 1) in
  let isrc =
    oneof
      [ map (fun r -> Insn.SReg r) ireg;
        map (fun i -> Insn.SImm (Int64.of_int i)) (int_range (-8) 8) ]
  in
  let fsrc =
    oneof
      [ map (fun f -> Insn.SFrg f) freg;
        map (fun x -> Insn.SFim (float_of_int x)) (int_range 0 5) ]
  in
  frequency
    [ (2, map2 (fun d i -> Insn.Movl { dst = d; imm = Int64.of_int i }) ireg (int_range 0 99));
      (3, map3 (fun d a b -> Insn.Alu { op = Insn.Aadd; dst = d; a; b }) ireg isrc isrc);
      (1, map3 (fun d a b -> Insn.Alu { op = Insn.Amul; dst = d; a; b }) ireg isrc isrc);
      (2, map3 (fun d a b -> Insn.Alu { op = Insn.Acmp_lt; dst = d; a; b }) ireg isrc isrc);
      (2, map3 (fun d a b -> Insn.Falu { op = Insn.FAadd; dst = d; a; b }) freg fsrc fsrc);
      (1, map3 (fun d a b -> Insn.Falu { op = Insn.FAmul; dst = d; a; b }) freg fsrc fsrc);
      (1, map3 (fun d a b -> Insn.Fcmp { op = Insn.FClt; dst = d; a; b }) ireg fsrc fsrc);
      (1, map2 (fun d s -> Insn.Itof { dst = d; src = s }) freg isrc);
      (1, map2 (fun d s -> Insn.Ftoi { dst = d; src = s }) ireg fsrc);
      (2, map2 (fun d s -> Insn.Mov { dst = Insn.DInt d; src = s }) ireg isrc);
      (1, map2 (fun d s -> Insn.Mov { dst = Insn.DFlt d; src = s }) freg fsrc);
      (1, map3
            (fun d c (t, f) -> Insn.Sel { dst = Insn.DInt d; cond = c; if_true = t; if_false = f })
            ireg ireg (pair isrc isrc));
      (3, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld; dst = Insn.DInt d; base = b; site = 0 })
            ireg ireg);
      (1, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld_a; dst = Insn.DInt d; base = b; site = 1 })
            ireg ireg);
      (1, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld_sa; dst = Insn.DInt d; base = b; site = 1 })
            ireg ireg);
      (1, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld_c { clear = false }; dst = Insn.DInt d; base = b; site = 2 })
            ireg ireg);
      (1, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld; dst = Insn.DFlt d; base = b; site = 0 })
            freg ireg);
      (2, map2 (fun s b -> Insn.St { src = s; base = b; site = 0 }) isrc ireg);
      (1, map2 (fun r t -> Insn.Chk_a { tag = Insn.DInt r; recovery = t; site = 2 }) ireg lbl);
      (1, map (fun r -> Insn.Invala_e { tag = Insn.DInt r }) ireg);
      (1, map2 (fun d s -> Insn.Alloc { dst = d; nbytes = s; site = 3 }) ireg isrc);
      (1, map (fun s -> Insn.Print { what = s; as_float = false }) isrc);
      (2, map3
            (fun c t1 t2 -> Insn.Brc { cond = c; ifso = t1; ifnot = t2; site = 0 })
            ireg lbl lbl);
      (1, map (fun t -> Insn.Br { target = t }) lbl);
      (1, map2
            (fun a r -> Insn.Call { callee = "h"; args = [ a ]; ret = Some (Insn.DInt r) })
            isrc ireg);
      (1, return Insn.Nop) ]

let gen_code =
  let open QCheck.Gen in
  int_range 1 40 >>= fun body ->
  list_repeat body (gen_insn (body + 1)) >>= fun instrs ->
  return (Array.of_list (instrs @ [ Insn.Ret { value = None } ]))

let print_code code =
  String.concat "\n"
    (Array.to_list
       (Array.mapi (fun i ins -> Fmt.str ".%d %a" i Insn.pp_insn ins) code))

let arb_code = QCheck.make ~print:print_code gen_code

(* --- the properties --- *)

let prop_permutation code =
  let out = Sched.run code in
  Array.length out = Array.length code
  && List.for_all
       (fun (lo, hi) -> match_block code out lo hi <> None)
       (blocks code)

let prop_dependences_preserved code =
  let out = Sched.run code in
  let inter a b = List.exists (fun x -> List.mem x b) a in
  List.for_all
    (fun (lo, hi) ->
      match match_block code out lo hi with
      | None -> false
      | Some map ->
        let n = hi - lo in
        (* place.(input index) = output position *)
        let place = Array.make n (-1) in
        Array.iteri (fun p k -> place.(k) <- p) map;
        let rw = Array.init n (fun k -> reads_writes code.(lo + k)) in
        let dep i j =
          let iu_i, fu_i, iw_i, fw_i = rw.(i) in
          let iu_j, fu_j, iw_j, fw_j = rw.(j) in
          inter iw_i iu_j || inter fw_i fu_j (* RAW *)
          || inter iw_i iw_j || inter fw_i fw_j (* WAW *)
          || inter iu_i iw_j || inter fu_i fw_j (* WAR *)
        in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if dep i j && place.(i) >= place.(j) then ok := false
          done
        done;
        !ok)
    (blocks code)

let prop_world_order_preserved code =
  let out = Sched.run code in
  List.for_all
    (fun (lo, hi) ->
      let seq a =
        List.filter observes_world
          (Array.to_list (Array.sub a lo (hi - lo)))
      in
      seq code = seq out)
    (blocks code)

(* every ALAT tag's own arm / check / invalidate / store story: stores
   kill arbitrary entries, so they belong to every tag's sequence *)
let prop_alat_sequences_preserved code =
  let out = Sched.run code in
  let touches tag = function
    | Insn.Ld { kind = Insn.K_ld_a | Insn.K_ld_sa | Insn.K_ld_c _; dst; _ } ->
      dst = tag
    | Insn.Chk_a { tag = t; _ } | Insn.Invala_e { tag = t } -> t = tag
    | Insn.St _ -> true
    | _ -> false
  in
  let tags =
    Array.to_list code
    |> List.filter_map (function
         | Insn.Ld { kind = Insn.K_ld_a | Insn.K_ld_sa; dst; _ } -> Some dst
         | _ -> None)
  in
  List.for_all
    (fun (lo, hi) ->
      List.for_all
        (fun tag ->
          let seq a =
            List.filter (touches tag)
              (Array.to_list (Array.sub a lo (hi - lo)))
          in
          seq code = seq out)
        tags)
    (blocks code)

let prop_terminals_pinned code =
  let out = Sched.run code in
  Array.length out = Array.length code
  && Array.for_all
       (fun i -> (not (ends_block code.(i))) || out.(i) = code.(i))
       (Array.init (Array.length code) (fun i -> i))

let sched_qchecks =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:500 ~name:"per-block permutation" arb_code
        prop_permutation;
      QCheck.Test.make ~count:500 ~name:"no RAW/WAW/WAR pair inverted"
        arb_code prop_dependences_preserved;
      QCheck.Test.make ~count:500
        ~name:"memory/ALAT/side-effect order preserved" arb_code
        prop_world_order_preserved;
      QCheck.Test.make ~count:500 ~name:"per-tag ALAT sequences preserved"
        arb_code prop_alat_sequences_preserved;
      QCheck.Test.make ~count:500 ~name:"terminals pinned at their pc"
        arb_code prop_terminals_pinned ]

(* --- deterministic units --- *)

let test_serial_chain_is_identity () =
  let chain =
    [| Insn.Movl { dst = 1; imm = 1L };
       Insn.Alu { op = Insn.Aadd; dst = 2; a = Insn.SReg 1; b = Insn.SImm 1L };
       Insn.Alu { op = Insn.Aadd; dst = 3; a = Insn.SReg 2; b = Insn.SImm 1L };
       Insn.Alu { op = Insn.Aadd; dst = 4; a = Insn.SReg 3; b = Insn.SImm 1L };
       Insn.Ret { value = None } |]
  in
  Alcotest.(check bool) "fully serial block untouched" true
    (Sched.run chain = chain)

let test_independent_lda_hoists () =
  (* the ld.a owes nothing to the FP chain ahead of it, so it should
     issue earlier (separating it from its consumer), while the FP chain
     fills the shadow *)
  let code =
    [| Insn.Falu { op = Insn.FAadd; dst = 1; a = Insn.SFrg 0; b = Insn.SFrg 0 };
       Insn.Falu { op = Insn.FAadd; dst = 2; a = Insn.SFrg 1; b = Insn.SFrg 1 };
       Insn.Ld { kind = Insn.K_ld_a; dst = Insn.DInt 1; base = 2; site = 0 };
       Insn.Alu { op = Insn.Aadd; dst = 3; a = Insn.SReg 1; b = Insn.SImm 1L };
       Insn.Ret { value = None } |]
  in
  let out = Sched.run code in
  Alcotest.(check bool) "ld.a hoisted above the FP chain" true
    (out.(1) = code.(2) && out.(3) = code.(1))

(* --- sched-on/off differential over the built-in kernels --- *)

let cycle_family =
  [ "cycles"; "instrs_retired"; "data_access_cycles"; "bundles_retired";
    "nops_emitted"; "split_stalls" ]

let run_small (w : Workload.t) ~sched level =
  let small = { w with Workload.ref_ = w.Workload.train } in
  Pipeline.profile_compile_run ~sched small level

let test_kernel_sched_differential name () =
  let w = Srp_workloads.Registry.find name in
  List.iter
    (fun level ->
      let on = run_small w ~sched:true level in
      let off = run_small w ~sched:false level in
      Alcotest.(check string)
        (Fmt.str "%s@%s output" name (Pipeline.level_name level))
        off.Pipeline.output on.Pipeline.output;
      Alcotest.(check int64)
        (Fmt.str "%s@%s exit code" name (Pipeline.level_name level))
        off.Pipeline.exit_code on.Pipeline.exit_code;
      List.iter2
        (fun (k, von) (k', voff) ->
          assert (k = k');
          if not (List.mem k cycle_family) then
            Alcotest.(check int)
              (Fmt.str "%s@%s counter %s" name (Pipeline.level_name level) k)
              voff von)
        (C.to_fields on.Pipeline.counters)
        (C.to_fields off.Pipeline.counters);
      if level = Pipeline.Alat then
        Alcotest.(check bool)
          (Fmt.str "%s@alat scheduled cycles <= unscheduled" name)
          true
          (on.Pipeline.counters.C.cycles <= off.Pipeline.counters.C.cycles))
    Pipeline.all_levels

(* the scheduler must also pay at the bundler: over the whole suite at
   alat, stop-bit splits plus retired pad nops strictly shrink *)
let test_sched_shrinks_issue_bill () =
  let agg sched =
    List.fold_left
      (fun acc name ->
        let r =
          run_small (Srp_workloads.Registry.find name) ~sched Pipeline.Alat
        in
        acc + r.Pipeline.counters.C.split_stalls
        + r.Pipeline.counters.C.nops_emitted)
      0
      (Srp_workloads.Registry.names ())
  in
  let on = agg true and off = agg false in
  Alcotest.(check bool)
    (Fmt.str "aggregate split_stalls+nops_emitted shrinks (%d -> %d)" off on)
    true (on < off)

let kernel_diff_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " sched on/off differential") `Slow
        (test_kernel_sched_differential name))
    (Srp_workloads.Registry.names ())

let suite =
  sched_qchecks
  @ [ Alcotest.test_case "fully serial chain is identity" `Quick
        test_serial_chain_is_identity;
      Alcotest.test_case "independent ld.a hoists" `Quick
        test_independent_lda_hoists;
      Alcotest.test_case "aggregate issue bill shrinks" `Slow
        test_sched_shrinks_issue_bill ]
  @ kernel_diff_tests
