(* Tests for the machine model: the ALAT, the caches, the RSE, and the
   executing pipeline (differentially against the interpreter). *)

module Alat = Srp_machine.Alat
module Cache = Srp_machine.Cache
module Rse = Srp_machine.Rse
module Counters = Srp_machine.Counters

(* --- ALAT unit tests --- *)

let test_alat_arm_check () =
  let a = Alat.create () in
  let tag = Alat.int_tag ~frame:1 5 in
  ignore (Alat.insert a tag 0x1000L);
  Alcotest.(check bool) "armed entry hits" true (Alat.check a tag ~clear:false);
  Alcotest.(check bool) "nc keeps the entry" true (Alat.check a tag ~clear:false);
  Alcotest.(check bool) "clr removes it" true (Alat.check a tag ~clear:true);
  Alcotest.(check bool) "gone after clr" false (Alat.check a tag ~clear:false)

let test_alat_store_invalidation () =
  let a = Alat.create () in
  let tag = Alat.int_tag ~frame:1 5 in
  ignore (Alat.insert a tag 0x1000L);
  Alcotest.(check int) "matching store invalidates" 1 (Alat.store_probe a 0x1000L);
  Alcotest.(check bool) "check misses after store" false (Alat.check a tag ~clear:false)

let test_alat_partial_tag_false_collision () =
  let a = Alat.create ~paddr_bits:12 () in
  let tag = Alat.int_tag ~frame:1 5 in
  ignore (Alat.insert a tag 0x1000L);
  (* an address 2^15 bytes away shares the 12-bit word tag *)
  let colliding = Int64.add 0x1000L (Int64.of_int (4096 * 8)) in
  Alcotest.(check int) "false collision invalidates (safe direction)" 1
    (Alat.store_probe a colliding);
  (* a non-colliding address does not *)
  ignore (Alat.insert a tag 0x1000L);
  Alcotest.(check int) "different tag leaves it alone" 0 (Alat.store_probe a 0x1008L);
  Alcotest.(check bool) "still armed" true (Alat.check a tag ~clear:false)

let test_alat_register_keyed () =
  let a = Alat.create () in
  let t1 = Alat.int_tag ~frame:1 5 in
  let t2 = Alat.int_tag ~frame:1 6 in
  ignore (Alat.insert a t1 0x1000L);
  Alcotest.(check bool) "other register misses" false (Alat.check a t2 ~clear:false);
  (* same register re-armed at a new address: only one entry *)
  ignore (Alat.insert a t1 0x2000L);
  Alcotest.(check int) "old address no longer matches" 0 (Alat.store_probe a 0x1000L);
  Alcotest.(check int) "new address matches" 1 (Alat.store_probe a 0x2000L)

let test_alat_frames_isolated () =
  let a = Alat.create () in
  let t1 = Alat.int_tag ~frame:1 5 in
  let t2 = Alat.int_tag ~frame:2 5 in
  ignore (Alat.insert a t1 0x1000L);
  Alcotest.(check bool) "same reg, other frame misses" false (Alat.check a t2 ~clear:false);
  Alat.purge_frame a ~frame:1;
  Alcotest.(check bool) "purged frame misses" false (Alat.check a t1 ~clear:false)

let test_alat_capacity_eviction () =
  let a = Alat.create ~size:32 ~ways:2 () in
  (* fill one set: addresses with identical set index *)
  let mk_addr i = Int64.of_int (((i * 16 * 8) lor 0) * 1) in
  let evicted = ref 0 in
  for i = 0 to 3 do
    if Alat.insert a (Alat.int_tag ~frame:1 i) (mk_addr i) <> None then
      incr evicted
  done;
  Alcotest.(check bool) "third insert into a 2-way set evicts" true (!evicted >= 1)

let test_alat_fp_tags_distinct () =
  let a = Alat.create () in
  let ti = Alat.int_tag ~frame:1 3 in
  let tf = Alat.fp_tag ~frame:1 3 in
  ignore (Alat.insert a ti 0x1000L);
  Alcotest.(check bool) "fp tag distinct from int tag" false (Alat.check a tf ~clear:false)

let test_alat_invala_all () =
  let a = Alat.create () in
  ignore (Alat.insert a (Alat.int_tag ~frame:1 1) 0x10L);
  ignore (Alat.insert a (Alat.int_tag ~frame:1 2) 0x20L);
  Alcotest.(check int) "occupancy" 2 (Alat.occupancy a);
  Alat.invala_all a;
  Alcotest.(check int) "empty" 0 (Alat.occupancy a)

(* --- cache tests --- *)

let test_cache_hit_miss () =
  let c = Cache.create () in
  let ctr = Counters.create () in
  let lat1 = Cache.load_latency c ctr ~fp:false 0x4000L in
  Alcotest.(check bool) "cold miss is slow" true (lat1 > Cache.lat_l1);
  let lat2 = Cache.load_latency c ctr ~fp:false 0x4000L in
  Alcotest.(check int) "warm hit is 2 cycles" Cache.lat_l1 lat2;
  (* same line, different word: still a hit *)
  let lat3 = Cache.load_latency c ctr ~fp:false 0x4008L in
  Alcotest.(check int) "same line hits" Cache.lat_l1 lat3

let test_cache_fp_latency () =
  let c = Cache.create () in
  let ctr = Counters.create () in
  ignore (Cache.load_latency c ctr ~fp:true 0x8000L);
  let lat = Cache.load_latency c ctr ~fp:true 0x8000L in
  Alcotest.(check int) "fp loads cost 9 cycles even when resident" Cache.lat_fp lat

let test_cache_capacity () =
  let c = Cache.create () in
  let ctr = Counters.create () in
  (* stream 1 MiB: must overflow 16 KiB L1 *)
  for i = 0 to 16_383 do
    ignore (Cache.load_latency c ctr ~fp:false (Int64.of_int (i * 64)))
  done;
  let lat = Cache.load_latency c ctr ~fp:false 0x0L in
  Alcotest.(check bool) "evicted line misses L1" true (lat > Cache.lat_l1)

(* --- RSE tests --- *)

let test_rse_no_overflow () =
  let r = Rse.create ~phys_total:96 () in
  let c = Counters.create () in
  Alcotest.(check int) "small frames free" 0 (Rse.call r c ~nregs:30);
  Alcotest.(check int) "still free" 0 (Rse.call r c ~nregs:30);
  Alcotest.(check int) "ret free" 0 (Rse.ret r c);
  Alcotest.(check int) "rse cycles zero" 0 c.Counters.rse_cycles

let test_rse_overflow_spill_fill () =
  let r = Rse.create ~phys_total:96 () in
  let c = Counters.create () in
  ignore (Rse.call r c ~nregs:60);
  let spill = Rse.call r c ~nregs:60 in
  Alcotest.(check int) "spills the overflow" 24 spill;
  Alcotest.(check int) "spilled regs counted" 24 c.Counters.rse_spilled_regs;
  let fill = Rse.ret r c in
  Alcotest.(check int) "fills the caller back" 24 fill;
  Alcotest.(check int) "rse cycles = spill + fill" 48 c.Counters.rse_cycles

let test_rse_deep_recursion () =
  let r = Rse.create ~phys_total:96 () in
  let c = Counters.create () in
  for _ = 1 to 10 do
    ignore (Rse.call r c ~nregs:20)
  done;
  Alcotest.(check bool) "deep stack spilled" true (c.Counters.rse_spilled_regs > 0);
  Alcotest.(check int) "max stacked peaks before spilling" 116 c.Counters.max_stacked_regs;
  for _ = 1 to 10 do
    ignore (Rse.ret r c)
  done;
  Alcotest.(check bool) "fills happened" true (c.Counters.rse_filled_regs > 0)

(* --- static branch prediction on br.cond ---

   The machine predicts by direction alone: a branch whose taken target
   sits at a lower address than the branch is predicted taken, any other
   is predicted not taken (machine.ml).  These hand-assembled programs pin
   each quadrant of that contract, plus the degenerate taken-to-next-pc
   case, so a layout change can't silently redefine what "mispredict"
   means. *)

module Insn = Srp_target.Insn

let raw_main code ~nregs =
  let funcs = Hashtbl.create 1 in
  Hashtbl.replace funcs "main"
    { Insn.name = "main"; formals = []; code; bundles = None; nregs;
      nfregs = 0; frame_bytes = 0; slot_of_sym = Hashtbl.create 1 };
  { Insn.funcs; func_order = [ "main" ]; globals = [] }

let run_raw code ~nregs =
  let exit_code, _, c = Srp_machine.Machine.run_program (raw_main code ~nregs) in
  (exit_code, c)

let test_predict_taken_backward () =
  (* a 3-iteration countdown: the backward latch branch is predicted taken,
     so only the final not-taken exit mispredicts *)
  let code =
    [| Insn.Movl { dst = 1; imm = 3L };
       Insn.Alu { op = Insn.Asub; dst = 1; a = Insn.SReg 1; b = Insn.SImm 1L };
       Insn.Alu { op = Insn.Acmp_gt; dst = 2; a = Insn.SReg 1; b = Insn.SImm 0L };
       Insn.Brc { cond = 2; ifso = 1; ifnot = 4; site = 7 };
       Insn.Ret { value = Some (Insn.SImm 0L) } |]
  in
  let exit_code, c = run_raw code ~nregs:3 in
  Alcotest.(check int64) "exits through ifnot" 0L exit_code;
  Alcotest.(check int) "only the loop exit mispredicts" 1
    c.Counters.branch_mispredicts

let test_predict_taken_forward () =
  let code =
    [| Insn.Movl { dst = 1; imm = 1L };
       Insn.Brc { cond = 1; ifso = 3; ifnot = 2; site = 7 };
       Insn.Ret { value = Some (Insn.SImm 1L) };
       Insn.Ret { value = Some (Insn.SImm 0L) } |]
  in
  let exit_code, c = run_raw code ~nregs:2 in
  Alcotest.(check int64) "takes the branch" 0L exit_code;
  Alcotest.(check int) "taken forward branch mispredicts" 1
    c.Counters.branch_mispredicts

let test_predict_not_taken_forward () =
  let code =
    [| Insn.Movl { dst = 1; imm = 0L };
       Insn.Brc { cond = 1; ifso = 3; ifnot = 2; site = 7 };
       Insn.Ret { value = Some (Insn.SImm 0L) };
       Insn.Ret { value = Some (Insn.SImm 1L) } |]
  in
  let exit_code, c = run_raw code ~nregs:2 in
  Alcotest.(check int64) "falls through" 0L exit_code;
  Alcotest.(check int) "not-taken forward branch predicted" 0
    c.Counters.branch_mispredicts

let test_predict_not_taken_backward () =
  let code =
    [| Insn.Movl { dst = 1; imm = 0L };
       Insn.Nop;
       Insn.Brc { cond = 1; ifso = 1; ifnot = 3; site = 7 };
       Insn.Ret { value = Some (Insn.SImm 0L) } |]
  in
  let exit_code, c = run_raw code ~nregs:2 in
  Alcotest.(check int64) "falls through" 0L exit_code;
  Alcotest.(check int) "not-taken backward branch mispredicts" 1
    c.Counters.branch_mispredicts

let test_predict_taken_to_next_pc () =
  (* ifso = pc + 1: still a *forward* taken branch by direction, so it
     mispredicts — the predictor keys on direction, not on whether the
     target happens to be the fall-through address *)
  let code =
    [| Insn.Movl { dst = 1; imm = 1L };
       Insn.Brc { cond = 1; ifso = 2; ifnot = 3; site = 7 };
       Insn.Ret { value = Some (Insn.SImm 0L) };
       Insn.Ret { value = Some (Insn.SImm 1L) } |]
  in
  let exit_code, c = run_raw code ~nregs:2 in
  Alcotest.(check int64) "lands on next pc" 0L exit_code;
  Alcotest.(check int) "taken-to-next-pc still mispredicts" 1
    c.Counters.branch_mispredicts

(* --- machine vs interpreter differential on hand-written programs --- *)

let differential src =
  let ref_prog = Srp_frontend.Lower.compile_source src in
  let code_i, out_i, _ = Srp_profile.Interp.run_program ref_prog in
  let prog = Srp_frontend.Lower.compile_source src in
  let tgt = Srp_target.Codegen.gen_program prog in
  let code_m, out_m, _ = Srp_machine.Machine.run_program tgt in
  Alcotest.(check string) "stdout agrees" out_i out_m;
  Alcotest.(check int64) "exit code agrees" code_i code_m

let test_machine_arith () =
  differential {|
int main() {
  print_int(7 / 2); print_int(-7 / 2); print_int(7 % 3); print_int(-7 % 3);
  print_int(1 << 10); print_int(-16 >> 2);
  print_int(5 & 3); print_int(5 | 3); print_int(5 ^ 3); print_int(~5);
  print_float(1.0 / 3.0); print_float(0.1 + 0.2);
  print_int(3.9);
  print_float(3);
  return 0;
}
|}

let test_machine_control () =
  differential {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
    if (i == 7) { break; }
  }
  while (s > 0) { s = s - 3; }
  do { s = s + 1; } while (s < 2);
  print_int(s);
  return s;
}
|}

let test_machine_heap_structs () =
  differential {|
struct node { int v; double w; struct node* next; };
int main() {
  struct node* head = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    struct node* n = malloc(24);
    n->v = i * 3;
    n->w = i * 0.5;
    n->next = head;
    head = n;
  }
  int s = 0; double t = 0.0;
  while (head != 0) { s += head->v; t = t + head->w; head = head->next; }
  print_int(s); print_float(t);
  return 0;
}
|}

let test_machine_functions () =
  differential {|
int square(int x) { return x * x; }
double mix(double a, int b) { return a * b + 0.5; }
int rec(int n) { if (n <= 1) { return 1; } return n * rec(n - 1); }
int main() {
  print_int(square(12));
  print_float(mix(1.5, 4));
  print_int(rec(10));
  return 0;
}
|}

let test_machine_zero_init () =
  differential {|
int arr[4];
double darr[4];
int g;
int main() {
  print_int(arr[2]); print_float(darr[1]); print_int(g);
  return 0;
}
|}

let test_counters_sane () =
  let src = {|
int g;
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) { g = g + i; }
  print_int(g);
  return 0;
}
|} in
  let prog = Srp_frontend.Lower.compile_source src in
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, _, c = Srp_machine.Machine.run_program tgt in
  Alcotest.(check bool) "cycles positive" true (c.Counters.cycles > 0);
  Alcotest.(check bool) "instrs >= loads + stores" true
    (c.Counters.instrs_retired >= c.Counters.loads_retired + c.Counters.stores_retired);
  (* 6-wide machine: cycles >= instrs / 6 *)
  Alcotest.(check bool) "ipc bounded by width" true
    (c.Counters.cycles * 6 >= c.Counters.instrs_retired)

let test_machine_fuel () =
  let src = "int main() { while (1) { } return 0; }" in
  let prog = Srp_frontend.Lower.compile_source src in
  let tgt = Srp_target.Codegen.gen_program prog in
  Alcotest.check_raises "runs out of fuel" Srp_machine.Machine.Out_of_fuel (fun () ->
      ignore (Srp_machine.Machine.run_program ~fuel:10_000 tgt))

let suite =
  [ Alcotest.test_case "alat arm/check/clear" `Quick test_alat_arm_check;
    Alcotest.test_case "alat store invalidation" `Quick test_alat_store_invalidation;
    Alcotest.test_case "alat partial-tag collisions" `Quick test_alat_partial_tag_false_collision;
    Alcotest.test_case "alat keyed by register" `Quick test_alat_register_keyed;
    Alcotest.test_case "alat frame isolation + purge" `Quick test_alat_frames_isolated;
    Alcotest.test_case "alat capacity eviction" `Quick test_alat_capacity_eviction;
    Alcotest.test_case "alat fp/int tags distinct" `Quick test_alat_fp_tags_distinct;
    Alcotest.test_case "alat invala_all" `Quick test_alat_invala_all;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache fp latency" `Quick test_cache_fp_latency;
    Alcotest.test_case "cache capacity" `Quick test_cache_capacity;
    Alcotest.test_case "rse no overflow" `Quick test_rse_no_overflow;
    Alcotest.test_case "rse spill/fill" `Quick test_rse_overflow_spill_fill;
    Alcotest.test_case "rse deep recursion" `Quick test_rse_deep_recursion;
    Alcotest.test_case "predict taken backward" `Quick test_predict_taken_backward;
    Alcotest.test_case "predict taken forward" `Quick test_predict_taken_forward;
    Alcotest.test_case "predict not-taken forward" `Quick test_predict_not_taken_forward;
    Alcotest.test_case "predict not-taken backward" `Quick test_predict_not_taken_backward;
    Alcotest.test_case "predict taken to next pc" `Quick test_predict_taken_to_next_pc;
    Alcotest.test_case "machine arith (vs interp)" `Quick test_machine_arith;
    Alcotest.test_case "machine control flow (vs interp)" `Quick test_machine_control;
    Alcotest.test_case "machine heap/structs (vs interp)" `Quick test_machine_heap_structs;
    Alcotest.test_case "machine functions (vs interp)" `Quick test_machine_functions;
    Alcotest.test_case "machine zero-init (vs interp)" `Quick test_machine_zero_init;
    Alcotest.test_case "counters sane" `Quick test_counters_sane;
    Alcotest.test_case "fuel exhaustion" `Quick test_machine_fuel ]
