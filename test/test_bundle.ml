(* Tests for the IA-64 bundling pass and bundle-wise fetch.

   Three layers:
   - QCheck properties over random (not necessarily executable) instruction
     blocks: the bundler is a pure repacking — every input instruction
     appears exactly once and in order; templates are legal for what each
     slot holds; stop bits only appear on stop-capable encodings; no
     RAW/WAW hazard survives inside a stop-delimited group (checked by an
     independent re-implementation of the group rule); every control
     transfer lands on a slot-0 boundary.
   - A bundle-on/off differential over all built-in kernels: architectural
     behaviour is bit-identical, only the cycle family of counters moves,
     and bundling never makes code faster.
   - A counter-attribution check: per-site split_stalls sum to the global
     counter. *)

module Insn = Srp_target.Insn
module Bundle = Srp_target.Bundle
module Regalloc = Srp_target.Regalloc
module Codegen = Srp_target.Codegen
module C = Srp_machine.Counters
module SH = Srp_obs.Site_hist
open Srp_driver

(* --- random instruction blocks ---

   Richer than the regalloc generator: includes compares feeding branches
   (the group-rule exception), advanced loads, checks with recovery
   targets, invala.e and calls, so every syllable class and group break
   shows up. *)

let pt_niregs = 7
let pt_nfregs = 4

let gen_insn len =
  let open QCheck.Gen in
  let ireg = int_range 1 (pt_niregs - 1) in
  let freg = int_range 0 (pt_nfregs - 1) in
  let lbl = int_range 0 (len - 1) in
  let isrc =
    oneof
      [ map (fun r -> Insn.SReg r) ireg;
        map (fun i -> Insn.SImm (Int64.of_int i)) (int_range (-8) 8) ]
  in
  let fsrc =
    oneof
      [ map (fun f -> Insn.SFrg f) freg;
        map (fun x -> Insn.SFim (float_of_int x)) (int_range 0 5) ]
  in
  frequency
    [ (2, map2 (fun d i -> Insn.Movl { dst = d; imm = Int64.of_int i }) ireg (int_range 0 99));
      (3, map3 (fun d a b -> Insn.Alu { op = Insn.Aadd; dst = d; a; b }) ireg isrc isrc);
      (2, map3 (fun d a b -> Insn.Alu { op = Insn.Acmp_lt; dst = d; a; b }) ireg isrc isrc);
      (2, map3 (fun d a b -> Insn.Falu { op = Insn.FAadd; dst = d; a; b }) freg fsrc fsrc);
      (1, map3 (fun d a b -> Insn.Fcmp { op = Insn.FClt; dst = d; a; b }) ireg fsrc fsrc);
      (2, map2 (fun d s -> Insn.Mov { dst = Insn.DInt d; src = s }) ireg isrc);
      (1, map2 (fun d s -> Insn.Mov { dst = Insn.DFlt d; src = s }) freg fsrc);
      (3, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld; dst = Insn.DInt d; base = b; site = 0 })
            ireg ireg);
      (1, map2
            (fun d b -> Insn.Ld { kind = Insn.K_ld_a; dst = Insn.DInt d; base = b; site = 1 })
            ireg ireg);
      (2, map2 (fun s b -> Insn.St { src = s; base = b; site = 0 }) isrc ireg);
      (1, map2 (fun r t -> Insn.Chk_a { tag = Insn.DInt r; recovery = t; site = 2 }) ireg lbl);
      (1, map (fun r -> Insn.Invala_e { tag = Insn.DInt r }) ireg);
      (2, map3
            (fun c t1 t2 -> Insn.Brc { cond = c; ifso = t1; ifnot = t2; site = 0 })
            ireg lbl lbl);
      (1, map (fun t -> Insn.Br { target = t }) lbl);
      (1, map2
            (fun a r -> Insn.Call { callee = "h"; args = [ a ]; ret = Some (Insn.DInt r) })
            isrc ireg);
      (1, return Insn.Nop) ]

let gen_code =
  let open QCheck.Gen in
  int_range 1 30 >>= fun body ->
  list_repeat body (gen_insn (body + 1)) >>= fun instrs ->
  return (Array.of_list (instrs @ [ Insn.Ret { value = None } ]))

let print_code code =
  String.concat "\n"
    (Array.to_list
       (Array.mapi (fun i ins -> Fmt.str ".%d %a" i Insn.pp_insn ins) code))

let arb_code = QCheck.make ~print:print_code gen_code

(* targets are remapped by the pass; compare everything else *)
let strip_targets = function
  | Insn.Br _ -> Insn.Br { target = -1 }
  | Insn.Brc { cond; site; _ } -> Insn.Brc { cond; ifso = -1; ifnot = -1; site }
  | Insn.Chk_a { tag; site; _ } -> Insn.Chk_a { tag; recovery = -1; site }
  | ins -> ins

let non_nops code =
  Array.to_list code
  |> List.filter_map (fun i -> if i = Insn.Nop then None else Some (strip_targets i))

let prop_stream_preserved code =
  let out, _ = Bundle.run code in
  non_nops out = non_nops code

let prop_shape code =
  let out, bs = Bundle.run code in
  let n = Array.length out in
  n = 3 * Array.length bs
  && Array.for_all
       (fun b ->
         (not b.Insn.stop)
         || (match b.Insn.tmpl with Insn.MII | Insn.MMI -> true | _ -> false))
       bs
  && Array.for_all
       (fun pc ->
         match Bundle.syllable_of out.(pc) with
         | None -> true (* nop: wildcard *)
         | Some c -> c = (Bundle.slots bs.(pc / 3).Insn.tmpl).(pc mod 3))
       (Array.init n (fun i -> i))
  && Array.for_all
       (fun ins ->
         let aligned t = t >= 0 && t < n && t mod 3 = 0 in
         match ins with
         | Insn.Br { target } -> aligned target
         | Insn.Brc { ifso; ifnot; _ } -> aligned ifso && aligned ifnot
         | Insn.Chk_a { recovery; _ } -> aligned recovery
         | _ -> true)
       out

(* Independent re-statement of the group rule (the machine's contract): a
   group ends at a stop bit and after br/call/ret; within one group no
   syllable reads or redefines a register defined earlier in the group,
   except a br.cond consuming a predicate its own group computed. *)
let prop_groups_hazard_free code =
  let out, bs = Bundle.run code in
  let gi : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let gf : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let clear () =
    Hashtbl.reset gi;
    Hashtbl.reset gf
  in
  let is_cmp = function
    | Insn.Alu
        { op =
            ( Insn.Acmp_eq | Insn.Acmp_ne | Insn.Acmp_lt | Insn.Acmp_le
            | Insn.Acmp_gt | Insn.Acmp_ge );
          _ }
    | Insn.Fcmp _ ->
      true
    | _ -> false
  in
  let ok = ref true in
  Array.iteri
    (fun pc ins ->
      let iu, fu, idf, fdf = Regalloc.uses_defs ins in
      let brc_cond =
        match ins with Insn.Brc { cond; _ } -> Some cond | _ -> None
      in
      let raw r =
        match Hashtbl.find_opt gi r with
        | None -> false
        | Some by_cmp -> not (by_cmp && brc_cond = Some r)
      in
      if
        List.exists raw iu
        || List.exists (Hashtbl.mem gf) fu
        || List.exists (Hashtbl.mem gi) idf
        || List.exists (Hashtbl.mem gf) fdf
      then ok := false;
      (match ins with
      | Insn.Br _ | Insn.Call _ | Insn.Ret _ -> clear ()
      | _ ->
        let cmp = is_cmp ins in
        List.iter (fun r -> Hashtbl.replace gi r cmp) idf;
        List.iter (fun r -> Hashtbl.replace gf r false) fdf);
      if pc mod 3 = 2 && bs.(pc / 3).Insn.stop then clear ())
    out;
  !ok

let bundle_qchecks =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:500 ~name:"every insn exactly once, in order"
        arb_code prop_stream_preserved;
      QCheck.Test.make ~count:500
        ~name:"templates legal, stops encodable, targets aligned" arb_code
        prop_shape;
      QCheck.Test.make ~count:500 ~name:"no RAW/WAW inside a group" arb_code
        prop_groups_hazard_free ]

(* --- codegen wiring --- *)

let test_codegen_bundle_invariant () =
  let src = {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|} in
  let prog = Srp_frontend.Lower.compile_source src in
  let tgt = Codegen.gen_program prog in
  let f = Hashtbl.find tgt.Insn.funcs "main" in
  (match f.Insn.bundles with
  | None -> Alcotest.fail "default compile should carry bundles"
  | Some bs ->
    Alcotest.(check int) "code is 3 x bundles" (3 * Array.length bs)
      (Array.length f.Insn.code));
  let flat =
    Codegen.gen_program ~bundle:false (Srp_frontend.Lower.compile_source src)
  in
  let ff = Hashtbl.find flat.Insn.funcs "main" in
  Alcotest.(check bool) "--no-bundle yields a flat stream" true
    (ff.Insn.bundles = None)

(* --- bundle-on/off differential over the built-in kernels --- *)

(* counters allowed to move when bundling turns on: the cycle family *)
let cycle_family =
  [ "cycles"; "instrs_retired"; "data_access_cycles"; "bundles_retired";
    "nops_emitted"; "split_stalls" ]

let run_small (w : Workload.t) ~bundle level =
  let small = { w with Workload.ref_ = w.Workload.train } in
  Pipeline.profile_compile_run ~bundle small level

let test_kernel_bundle_differential name () =
  let w = Srp_workloads.Registry.find name in
  List.iter
    (fun level ->
      let on = run_small w ~bundle:true level in
      let off = run_small w ~bundle:false level in
      Alcotest.(check string)
        (Fmt.str "%s@%s output" name (Pipeline.level_name level))
        off.Pipeline.output on.Pipeline.output;
      Alcotest.(check int64)
        (Fmt.str "%s@%s exit code" name (Pipeline.level_name level))
        off.Pipeline.exit_code on.Pipeline.exit_code;
      List.iter2
        (fun (k, von) (k', voff) ->
          assert (k = k');
          if not (List.mem k cycle_family) then
            Alcotest.(check int)
              (Fmt.str "%s@%s counter %s" name (Pipeline.level_name level) k)
              voff von)
        (C.to_fields on.Pipeline.counters)
        (C.to_fields off.Pipeline.counters);
      Alcotest.(check bool)
        (Fmt.str "%s@%s bundled cycles >= flat" name (Pipeline.level_name level))
        true
        (on.Pipeline.counters.C.cycles >= off.Pipeline.counters.C.cycles);
      Alcotest.(check int)
        (Fmt.str "%s@%s flat run retires no bundles" name
           (Pipeline.level_name level))
        0 off.Pipeline.counters.C.bundles_retired;
      Alcotest.(check bool)
        (Fmt.str "%s@%s bundled run retires bundles" name
           (Pipeline.level_name level))
        true
        (on.Pipeline.counters.C.bundles_retired > 0))
    [ Pipeline.Baseline; Pipeline.Alat ]

let test_alat_still_wins_bundled () =
  (* speculation must keep paying off under bundle-wise fetch *)
  List.iter
    (fun name ->
      let w = Srp_workloads.Registry.find name in
      let base = run_small w ~bundle:true Pipeline.Baseline in
      let spec = run_small w ~bundle:true Pipeline.Alat in
      Alcotest.(check bool)
        (Fmt.str "%s: alat cycles not regressed vs baseline (bundled)" name)
        true
        (float_of_int spec.Pipeline.counters.C.cycles
        <= 1.02 *. float_of_int base.Pipeline.counters.C.cycles))
    (Srp_workloads.Registry.names ())

(* --- split_stalls attribution --- *)

let test_split_attribution () =
  let src = {|
int p; int b;
int* q;
int sel;
int n;
int main() {
  int i;
  int r = 0;
  if (sel == 7) { q = &p; } else { q = &b; }
  p = 11;
  n = 400;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p + 1;
  }
  print_int(r);
  return 0;
}
|} in
  let w =
    { Workload.name = "split-attrib"; description = "attribution probe";
      source = src; train = []; ref_ = [] }
  in
  let r = Pipeline.profile_compile_run w Pipeline.Alat in
  let c = r.Pipeline.counters in
  let h = r.Pipeline.site_stats in
  Alcotest.(check bool) "splits actually happen" true (c.C.split_stalls > 0);
  let by_site =
    List.fold_left
      (fun acc s -> acc + SH.count h ~site:s SH.Split_stalls)
      0 (SH.sites h)
  in
  Alcotest.(check int) "per-site split_stalls sum to the global counter"
    c.C.split_stalls by_site

let kernel_diff_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " bundle on/off differential") `Slow
        (test_kernel_bundle_differential name))
    (Srp_workloads.Registry.names ())

let suite =
  bundle_qchecks
  @ [ Alcotest.test_case "codegen carries bundles" `Quick
        test_codegen_bundle_invariant;
      Alcotest.test_case "split_stalls attribution sums" `Quick
        test_split_attribution;
      Alcotest.test_case "alat still wins under bundling" `Slow
        test_alat_still_wins_bundled ]
  @ kernel_diff_tests
