(* Random MiniC program generator for differential testing.

   The generated programs are deterministic (no input), terminate (all
   loops are counted), never fault (indices come from loop counters modulo
   array sizes; pointers are always initialized to valid objects before
   any dereference), and print a checksum trail so two executions can be
   compared bit-for-bit.

   The shapes are chosen to stress the promotion machinery: scalar globals
   with their addresses escaping into pointers, stores through ambiguous
   pointers between re-reads, nested control flow, and helper calls. *)

module Rng = Srp_support.Rng

type ctx = {
  rng : Rng.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable loop_counters : string list; (* in-scope counted loop variables *)
  mutable depth : int;
  n_scalars : int;
  n_fscalars : int;
  n_arrays : int;
  n_ptrs : int;
  n_helpers : int;
}

let line ctx fmt =
  Buffer.add_string ctx.buf (String.make (ctx.indent * 2) ' ');
  Fmt.kstr
    (fun s ->
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let scalar ctx = Fmt.str "g%d" (Rng.int ctx.rng ctx.n_scalars)
let fscalar ctx = Fmt.str "f%d" (Rng.int ctx.rng ctx.n_fscalars)
let array_name ctx = Fmt.str "arr%d" (Rng.int ctx.rng ctx.n_arrays)
let ptr ctx = Fmt.str "p%d" (Rng.int ctx.rng ctx.n_ptrs)

let array_size = 16

(* An in-bounds index expression. *)
let index ctx =
  match ctx.loop_counters with
  | [] -> string_of_int (Rng.int ctx.rng array_size)
  | cs ->
    let c = List.nth cs (Rng.int ctx.rng (List.length cs)) in
    (match Rng.int ctx.rng 3 with
    | 0 -> Fmt.str "%s %% %d" c array_size
    | 1 -> Fmt.str "(%s + %d) %% %d" c (Rng.int ctx.rng 7) array_size
    | _ -> string_of_int (Rng.int ctx.rng array_size))

(* An integer expression of bounded depth.  Division only by non-zero
   constants; everything else is total. *)
let rec expr ctx depth =
  if depth <= 0 then atom ctx
  else
    match Rng.int ctx.rng 8 with
    | 0 -> Fmt.str "(%s + %s)" (expr ctx (depth - 1)) (expr ctx (depth - 1))
    | 1 -> Fmt.str "(%s - %s)" (expr ctx (depth - 1)) (expr ctx (depth - 1))
    | 2 -> Fmt.str "(%s * %s)" (atom ctx) (atom ctx)
    | 3 -> Fmt.str "(%s / %d)" (expr ctx (depth - 1)) (1 + Rng.int ctx.rng 9)
    | 4 -> Fmt.str "(%s %% %d)" (expr ctx (depth - 1)) (1 + Rng.int ctx.rng 9)
    | 5 -> Fmt.str "(%s ^ %s)" (atom ctx) (atom ctx)
    | 6 ->
      Fmt.str "(%s %s %s)" (expr ctx (depth - 1))
        (Rng.pick ctx.rng [| "<"; "<="; "=="; "!="; ">"; ">=" |])
        (expr ctx (depth - 1))
    | _ -> atom ctx

and atom ctx =
  match Rng.int ctx.rng 6 with
  | 0 -> string_of_int (Rng.int ctx.rng 100 - 50)
  | 1 -> scalar ctx
  | 2 -> Fmt.str "%s[%s]" (array_name ctx) (index ctx)
  | 3 -> Fmt.str "*%s" (ptr ctx)
  | 4 -> ( match ctx.loop_counters with [] -> scalar ctx | c :: _ -> c)
  | _ -> scalar ctx

(* A statement; recursion bounded by ctx.depth. *)
let rec stmt ctx =
  let choice = Rng.int ctx.rng 14 in
  if ctx.depth >= 3 && choice >= 7 then simple ctx
  else
    match choice with
    | 0 | 1 | 2 -> simple ctx
    | 3 ->
      (* counted loop; occasionally 0- or 1-trip so promoted loops with
         their arming loads hoisted see short trip counts too *)
      let c = Fmt.str "i%d" (Rng.int ctx.rng 1000) in
      if List.mem c ctx.loop_counters then simple ctx
      else begin
        let bound =
          if Rng.int ctx.rng 4 = 0 then Rng.int ctx.rng 2
          else 1 + Rng.int ctx.rng 8
        in
        line ctx "{ int %s;" c;
        ctx.indent <- ctx.indent + 1;
        line ctx "for (%s = 0; %s < %d; %s = %s + 1) {" c c bound c c;
        ctx.indent <- ctx.indent + 1;
        ctx.loop_counters <- c :: ctx.loop_counters;
        ctx.depth <- ctx.depth + 1;
        let n = 1 + Rng.int ctx.rng 3 in
        for _ = 1 to n do
          stmt ctx
        done;
        ctx.depth <- ctx.depth - 1;
        ctx.loop_counters <- List.tl ctx.loop_counters;
        ctx.indent <- ctx.indent - 1;
        line ctx "}";
        ctx.indent <- ctx.indent - 1;
        line ctx "}"
      end
    | 4 | 5 ->
      (* if / if-else *)
      line ctx "if (%s) {" (expr ctx 1);
      ctx.indent <- ctx.indent + 1;
      ctx.depth <- ctx.depth + 1;
      stmt ctx;
      ctx.depth <- ctx.depth - 1;
      ctx.indent <- ctx.indent - 1;
      if Rng.bool ctx.rng then begin
        line ctx "} else {";
        ctx.indent <- ctx.indent + 1;
        ctx.depth <- ctx.depth + 1;
        stmt ctx;
        ctx.depth <- ctx.depth - 1;
        ctx.indent <- ctx.indent - 1
      end;
      line ctx "}"
    | 6 ->
      (* repoint a pointer (always to a valid object) *)
      let p = ptr ctx in
      if Rng.bool ctx.rng then line ctx "%s = &%s;" p (scalar ctx)
      else line ctx "%s = &%s[%s];" p (array_name ctx) (index ctx)
    | 7 -> line ctx "checksum = checksum + %s;" (expr ctx 2)
    | 8 -> line ctx "print_int(%s);" (expr ctx 1)
    | 9 ->
      (* helper call: a whole read/aliased-store/re-read shape behind a
         call boundary — promotions live across it must stay sound *)
      if ctx.n_helpers = 0 then simple ctx
      else
        line ctx "%s = %s + h%d(%s);" (scalar ctx) (scalar ctx)
          (Rng.int ctx.rng ctx.n_helpers) (expr ctx 1)
    | 10 ->
      (* pointer copy: two names for the same cell from here on *)
      line ctx "%s = %s;" (ptr ctx) (ptr ctx)
    | 11 ->
      (* long dependence chain: a run of serially dependent updates on
         one scalar.  The list scheduler cannot reorder any of it (every
         update is RAW on the last), so sched on/off must agree exactly
         while the critical-path heights get a deep chain to walk. *)
      let g = scalar ctx in
      let k = 4 + Rng.int ctx.rng 8 in
      for _ = 1 to k do
        line ctx "%s = (%s * 3 + %s) %% 8191;" g g (atom ctx)
      done
    | 12 ->
      (* FP-heavy block: chained double arithmetic with itof mix-ins —
         long FP latencies for the scheduler to hide.  Coefficients sum
         below 1 with small additive terms, so every f stays bounded and
         the truncated checksum contribution is exact. *)
      if ctx.n_fscalars = 0 then simple ctx
      else begin
        let d = fscalar ctx and d2 = fscalar ctx in
        let k = 3 + Rng.int ctx.rng 5 in
        for _ = 1 to k do
          match Rng.int ctx.rng 3 with
          | 0 ->
            line ctx "%s = %s * 0.5 + %s * 0.25 + %d.5;" d d d2
              (Rng.int ctx.rng 3)
          | 1 ->
            let c =
              match ctx.loop_counters with
              | [] -> string_of_int (Rng.int ctx.rng 8)
              | c :: _ -> c
            in
            line ctx "%s = %s * 0.25 + %s;" d d2 c
          | _ -> line ctx "%s = %s * 0.5 + %d.25;" d d (Rng.int ctx.rng 4)
        done;
        line ctx "checksum = checksum + %s;" d
      end
    | _ -> simple ctx

and simple ctx =
  match Rng.int ctx.rng 5 with
  | 0 -> line ctx "%s = %s;" (scalar ctx) (expr ctx 2)
  | 1 -> line ctx "%s[%s] = %s;" (array_name ctx) (index ctx) (expr ctx 2)
  | 2 -> line ctx "*%s = %s;" (ptr ctx) (expr ctx 2)
  | 3 ->
    (* pointer-to-pointer traffic: a store whose value came through
       another (possibly aliasing) pointer *)
    line ctx "*%s = *%s + %s;" (ptr ctx) (ptr ctx) (expr ctx 1)
  | _ ->
    (* the promotion-relevant shape: read, aliased store, re-read *)
    let g = scalar ctx in
    line ctx "checksum = checksum + %s;" g;
    line ctx "*%s = %s + 1;" (ptr ctx) g;
    line ctx "checksum = checksum + %s;" g

(* A helper function: the promotion-relevant read / aliased-store /
   re-read shape hidden behind a call boundary.  Bodies only touch
   globals and the integer parameter (never array indices derived from
   it), so helpers are total wherever they are called — and they are only
   called from main, after every pointer has been initialized. *)
let helper ctx i =
  let g = scalar ctx and g2 = scalar ctx and p = ptr ctx in
  line ctx "int h%d(int x) {" i;
  ctx.indent <- 1;
  line ctx "%s = %s + x;" g g;
  line ctx "checksum = checksum + %s;" g2;
  line ctx "*%s = %s + %d;" p g2 (Rng.int ctx.rng 5);
  line ctx "checksum = checksum + %s;" g2;
  line ctx "return x + %s;" g;
  ctx.indent <- 0;
  line ctx "}"

(* Generate a full program from a seed. *)
let program ?(n_scalars = 4) ?(n_fscalars = 2) ?(n_arrays = 2) ?(n_ptrs = 3)
    ?(n_helpers = 2) ~seed () : string =
  let ctx =
    { rng = Rng.create seed; buf = Buffer.create 1024; indent = 0;
      loop_counters = []; depth = 0; n_scalars; n_fscalars; n_arrays; n_ptrs;
      n_helpers }
  in
  for i = 0 to n_scalars - 1 do
    line ctx "int g%d = %d;" i (Rng.int ctx.rng 20)
  done;
  for i = 0 to n_fscalars - 1 do
    line ctx "double f%d = %d.5;" i (Rng.int ctx.rng 4)
  done;
  for i = 0 to n_arrays - 1 do
    line ctx "int arr%d[%d];" i array_size
  done;
  for i = 0 to n_ptrs - 1 do
    line ctx "int* p%d;" i
  done;
  line ctx "int checksum;";
  for i = 0 to n_helpers - 1 do
    helper ctx i
  done;
  line ctx "int main() {";
  ctx.indent <- 1;
  (* initialize every pointer before any use *)
  for i = 0 to n_ptrs - 1 do
    if Rng.bool ctx.rng then line ctx "p%d = &g%d;" i (Rng.int ctx.rng n_scalars)
    else line ctx "p%d = &arr%d[%d];" i (Rng.int ctx.rng n_arrays) (Rng.int ctx.rng array_size)
  done;
  let n = 4 + Rng.int ctx.rng 8 in
  for _ = 1 to n do
    stmt ctx
  done;
  line ctx "print_int(checksum);";
  for i = 0 to n_scalars - 1 do
    line ctx "print_int(g%d);" i
  done;
  for i = 0 to n_fscalars - 1 do
    line ctx "print_float(f%d);" i
  done;
  line ctx "return 0;";
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf
