(* Tests for the interpreter substrate itself: the memory model, the
   alias-profile contents, and the speculation policy's derived data. *)

open Srp_frontend
module Memory = Srp_profile.Memory
module Value = Srp_profile.Value
module Alias_profile = Srp_profile.Alias_profile
module Location = Srp_alias.Location

let test_memory_regions () =
  let m = Memory.create () in
  let sym =
    Srp_ir.Symbol.Gen.fresh (Srp_ir.Symbol.Gen.create ()) ~name:"x"
      ~storage:Srp_ir.Symbol.Global ~mty:Srp_ir.Mem_ty.I64 ~size_bytes:32
      ~is_scalar:false
  in
  let base = Memory.alloc m ~size:32 ~loc:(Location.Sym sym) in
  Alcotest.(check bool) "aligned" true (Int64.rem base 8L = 0L);
  (match Memory.location_of_addr m (Int64.add base 24L) with
  | Some (Location.Sym s) -> Alcotest.(check string) "inside region" "x" (Srp_ir.Symbol.name s)
  | _ -> Alcotest.fail "expected the region");
  Alcotest.(check (option reject)) "past the end is nobody's" None
    (Option.map (fun _ -> ()) (Memory.location_of_addr m (Int64.add base 32L)))

let test_memory_zero_init () =
  let m = Memory.create () in
  let base = Memory.alloc m ~size:16 ~loc:(Location.Heap 0) in
  (match Memory.load m base with
  | Value.Vint 0L -> ()
  | v -> Alcotest.failf "expected zero, got %a" Value.pp v);
  (match Memory.load_typed m base Srp_ir.Mem_ty.F64 with
  | Value.Vflt 0.0 -> ()
  | v -> Alcotest.failf "expected 0.0, got %a" Value.pp v)

let test_memory_free_erases () =
  let m = Memory.create () in
  let base = Memory.alloc m ~size:8 ~loc:(Location.Heap 1) in
  Memory.store m base (Value.Vint 7L);
  Memory.free m base;
  let base2 = Memory.alloc m ~size:8 ~loc:(Location.Heap 2) in
  ignore base2;
  (* whether or not addresses are reused, a fresh region reads zero *)
  (match Memory.load m base2 with
  | Value.Vint 0L -> ()
  | v -> Alcotest.failf "fresh region not zero: %a" Value.pp v)

let test_wild_access_faults () =
  let m = Memory.create () in
  Alcotest.(check bool) "wild load raises" true
    (try
       ignore (Memory.load m 0x10L);
       false
     with Value.Interp_error _ -> true);
  Alcotest.(check bool) "unaligned raises" true
    (try
       let b = Memory.alloc m ~size:8 ~loc:(Location.Heap 3) in
       ignore (Memory.load m (Int64.add b 4L));
       false
     with Value.Interp_error _ -> true)

let test_profile_counts_and_targets () =
  let src = {|
int a; int b;
int* p;
int main() {
  int i;
  p = &a;
  for (i = 0; i < 5; i = i + 1) { *p = i; }
  p = &b;
  *p = 9;
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, _, profile = Srp_profile.Interp.run_program prog in
  (* the in-loop indirect store executed 5 times, touching only a *)
  let sites = Alias_profile.sites profile in
  let five =
    List.filter
      (fun s ->
        Alias_profile.count profile s = 5
        && Location.Set.exists
             (fun l -> Location.to_string l = "a")
             (Alias_profile.targets profile s))
      sites
  in
  Alcotest.(check bool) "an a-touching site ran 5 times" true (five <> []);
  List.iter
    (fun s ->
      Alcotest.(check (list string)) "it touched only a" [ "a" ]
        (List.map Location.to_string
           (Location.Set.elements (Alias_profile.targets profile s))))
    five

let test_profile_block_counts () =
  let src = {|
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 7; i = i + 1) { s = s + i; }
  print_int(s);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, _, profile = Srp_profile.Interp.run_program prog in
  (* some block ran exactly 7 times (the loop body) *)
  let f = Srp_ir.Program.find_func prog "main" in
  let found = ref false in
  List.iter
    (fun blk ->
      let c =
        Alias_profile.block_count profile ~func:"main"
          ~label_id:(Srp_ir.Label.id (Srp_ir.Block.label blk))
      in
      if c = 7 then found := true)
    (Srp_ir.Func.blocks f);
  Alcotest.(check bool) "loop body counted 7" true !found

let test_interp_rejects_promoted () =
  let src = "int a; int* q; int main() { q = &a; a = 1; int x = a; *q = 2; int y = a; return x + y; }" in
  let pprog = Lower.compile_source src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = Lower.compile_source src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
  (* the promoted program contains Check instructions *)
  let has_check = ref false in
  Srp_ir.Func.iter_instrs
    (fun _ ins -> match ins with Srp_ir.Instr.Check _ -> has_check := true | _ -> ())
    (Srp_ir.Program.find_func prog "main");
  if !has_check then
    Alcotest.(check bool) "interp refuses checks" true
      (try
         ignore (Srp_profile.Interp.run_program ~collect_profile:false prog);
         false
       with Value.Interp_error _ -> true)

let test_fuel () =
  let src = "int main() { while (1) { } return 0; }" in
  let prog = Lower.compile_source src in
  Alcotest.check_raises "fuel" Srp_profile.Interp.Out_of_fuel (fun () ->
      ignore (Srp_profile.Interp.run_program ~fuel:1000 prog))

let test_value_ops () =
  let open Srp_ir.Ops in
  Alcotest.(check bool) "div by zero raises" true
    (try
       ignore (Value.binop Div (Value.Vint 1L) (Value.Vint 0L));
       false
     with Value.Interp_error _ -> true);
  (match Value.binop Add (Value.Vint 2L) (Value.Vint 3L) with
  | Value.Vint 5L -> ()
  | _ -> Alcotest.fail "add");
  (match Value.binop FLt (Value.Vflt 1.0) (Value.Vflt 2.0) with
  | Value.Vint 1L -> ()
  | _ -> Alcotest.fail "flt");
  (match Value.unop F2I (Value.Vflt 3.99) with
  | Value.Vint 3L -> ()
  | _ -> Alcotest.fail "f2i truncates")

let suite =
  [ Alcotest.test_case "memory regions" `Quick test_memory_regions;
    Alcotest.test_case "memory zero init" `Quick test_memory_zero_init;
    Alcotest.test_case "memory free erases" `Quick test_memory_free_erases;
    Alcotest.test_case "wild access faults" `Quick test_wild_access_faults;
    Alcotest.test_case "profile counts and targets" `Quick test_profile_counts_and_targets;
    Alcotest.test_case "profile block counts" `Quick test_profile_block_counts;
    Alcotest.test_case "interp rejects promoted IR" `Quick test_interp_rejects_promoted;
    Alcotest.test_case "interpreter fuel" `Quick test_fuel;
    Alcotest.test_case "value semantics" `Quick test_value_ops ]

let test_profile_roundtrip () =
  let src = {|
int a; int b;
int* p;
int sel;
int main() {
  int i;
  if (sel) { p = &a; } else { p = &b; }
  struct_free();
  for (i = 0; i < 9; i = i + 1) { *p = i; }
  return 0;
}
void struct_free() { }
|} in
  (* the helper makes the source multi-function for block-count coverage *)
  let src = String.concat "" [ src ] in
  let prog = Lower.compile_source src in
  let _, _, profile = Srp_profile.Interp.run_program prog in
  let text = Alias_profile.save profile in
  let symbols = Hashtbl.create 16 in
  List.iter
    (fun s -> Hashtbl.replace symbols (Srp_ir.Symbol.id s) s)
    (Srp_ir.Program.all_symbols prog);
  let back = Alias_profile.load ~symbols text in
  (* every site's counts and targets survive the round trip *)
  List.iter
    (fun site ->
      Alcotest.(check int)
        (Fmt.str "count of site %d" (Srp_ir.Site.to_int site))
        (Alias_profile.count profile site)
        (Alias_profile.count back site);
      Alcotest.(check bool)
        (Fmt.str "targets of site %d" (Srp_ir.Site.to_int site))
        true
        (Location.Set.equal
           (Alias_profile.targets profile site)
           (Alias_profile.targets back site)))
    (Alias_profile.sites profile);
  (* block counts too *)
  let f = Srp_ir.Program.find_func prog "main" in
  List.iter
    (fun blk ->
      let lid = Srp_ir.Label.id (Srp_ir.Block.label blk) in
      Alcotest.(check int) "block count" 
        (Alias_profile.block_count profile ~func:"main" ~label_id:lid)
        (Alias_profile.block_count back ~func:"main" ~label_id:lid))
    (Srp_ir.Func.blocks f)

(* --- serialization properties and format pinning --- *)

let no_symbols : (int, Srp_ir.Symbol.t) Hashtbl.t = Hashtbl.create 0

(* Random profiles as operation scripts (record / record_block calls)
   over heap locations, so loading needs no symbol table and the
   property is self-contained. *)
let arb_profile_ops =
  let open QCheck.Gen in
  let gen_op =
    oneof
      [ (let* site = int_range 0 9 in
         let* heap = int_range 0 5 in
         return (`Access (site, heap)));
        (let* func = oneofl [ "main"; "f"; "g" ] in
         let* label = int_range 0 7 in
         return (`Block (func, label))) ]
  in
  let print_ops ops =
    String.concat "; "
      (List.map
         (function
           | `Access (s, h) -> Fmt.str "access s%d heap:%d" s h
           | `Block (f, l) -> Fmt.str "block %s %d" f l)
         ops)
  in
  QCheck.make ~print:print_ops (list_size (int_range 0 60) gen_op)

let profile_of_ops ops =
  let p = Alias_profile.create () in
  List.iter
    (function
      | `Access (site, heap) -> Alias_profile.record p site (Location.Heap heap)
      | `Block (func, label_id) -> Alias_profile.record_block p ~func ~label_id)
    ops;
  p

(* save . load . save must be byte-identical: the text format is fully
   sorted, so one pass through the parser cannot reorder or rewrite
   anything.  This is what makes profiles usable as content-key inputs
   in the staged pipeline. *)
let prop_save_load_save =
  QCheck.Test.make ~count:300 ~name:"save . load . save byte-identical"
    arb_profile_ops (fun ops ->
      let p = profile_of_ops ops in
      let s1 = Alias_profile.save p in
      let back = Alias_profile.load ~symbols:no_symbols s1 in
      s1 = Alias_profile.save back)

(* ... and the reloaded profile answers every query identically. *)
let prop_load_preserves_queries =
  QCheck.Test.make ~count:300 ~name:"load preserves counts/rates/blocks"
    arb_profile_ops (fun ops ->
      let p = profile_of_ops ops in
      let back = Alias_profile.load ~symbols:no_symbols (Alias_profile.save p) in
      List.for_all
        (fun s ->
          Alias_profile.count p s = Alias_profile.count back s
          && Location.Set.equal (Alias_profile.targets p s)
               (Alias_profile.targets back s)
          && List.for_all
               (fun h ->
                 let l = Location.Heap h in
                 Alias_profile.touch_count p s l
                 = Alias_profile.touch_count back s l
                 && Alias_profile.conflict_rate p s l
                    = Alias_profile.conflict_rate back s l)
               [ 0; 1; 2; 3; 4; 5 ])
        (Alias_profile.sites p)
      && List.for_all
           (fun func ->
             List.for_all
               (fun label_id ->
                 Alias_profile.block_count p ~func ~label_id
                 = Alias_profile.block_count back ~func ~label_id)
               [ 0; 1; 2; 3; 4; 5; 6; 7 ])
           [ "main"; "f"; "g" ])

let test_v1_migration () =
  (* headerless v1 text, bare kind:id targets: every recorded location is
     read as conflicting on every execution, reproducing the binary
     verdicts exactly *)
  let text = "site 3 count 5 targets heap:1 heap:2\nsite 4 count 0 targets heap:7\n" in
  let p = Alias_profile.load ~symbols:no_symbols text in
  Alcotest.(check int) "v1 count" 5 (Alias_profile.count p 3);
  Alcotest.(check int) "v1 hits = count" 5
    (Alias_profile.touch_count p 3 (Location.Heap 1));
  Alcotest.(check (float 0.0)) "v1 rate is 1" 1.0
    (Alias_profile.conflict_rate p 3 (Location.Heap 2));
  (* a v1 count-0 site with targets still answers may_touch (the legacy
     set semantics) but is not executed (the pinned count semantics) *)
  Alcotest.(check bool) "v1 count-0 target may_touch" true
    (Alias_profile.may_touch p 4 (Location.Heap 7));
  Alcotest.(check bool) "v1 count-0 not executed" false
    (Alias_profile.executed p 4);
  Alcotest.(check (float 0.0)) "v1 count-0 rate is 1" 1.0
    (Alias_profile.conflict_rate p 4 (Location.Heap 7))

let test_count0_site_not_executed () =
  let text = "srp-profile-v2\nsite 9 count 0 targets\n" in
  let p = Alias_profile.load ~symbols:no_symbols text in
  Alcotest.(check bool) "count-0 site not executed" false
    (Alias_profile.executed p 9);
  Alcotest.(check bool) "count-0 site has no targets" true
    (Location.Set.is_empty (Alias_profile.targets p 9));
  (* the site line is still present, so reloading keeps it: sites lists it *)
  Alcotest.(check (list int)) "site retained" [ 9 ]
    (List.map Srp_ir.Site.to_int (Alias_profile.sites p))

let check_parse_error name needle text =
  match Alias_profile.load ~symbols:no_symbols text with
  | _ -> Alcotest.failf "%s: expected Parse_error" name
  | exception Alias_profile.Parse_error msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      (Fmt.str "%s: message %S names %S" name msg needle)
      true (contains msg needle)

let test_load_rejects_corruption () =
  check_parse_error "duplicate site" "duplicate site"
    "srp-profile-v2\nsite 1 count 2 targets heap:0=2\nsite 1 count 3 targets\n";
  check_parse_error "duplicate block" "duplicate block"
    "srp-profile-v2\nblock main 4 7\nblock main 4 9\n";
  check_parse_error "duplicate target" "duplicate target"
    "srp-profile-v2\nsite 1 count 2 targets heap:0=1 heap:0=1\n";
  check_parse_error "bad site integer" "\"x\""
    "srp-profile-v2\nsite x count 2 targets\n";
  check_parse_error "bad count integer" "\"2z\""
    "srp-profile-v2\nsite 1 count 2z targets\n";
  check_parse_error "bad hits integer" "\"ten\""
    "srp-profile-v2\nsite 1 count 2 targets heap:0=ten\n";
  check_parse_error "bad block count" "\"seven\"" "block main 4 seven\n";
  check_parse_error "unknown symbol" "unknown symbol"
    "srp-profile-v2\nsite 1 count 2 targets sym:99=1\n";
  check_parse_error "junk line" "bad line" "srp-profile-v2\nfrobnicate 3\n"

let suite =
  suite
  @ [ Alcotest.test_case "profile save/load roundtrip" `Quick
        test_profile_roundtrip;
      QCheck_alcotest.to_alcotest prop_save_load_save;
      QCheck_alcotest.to_alcotest prop_load_preserves_queries;
      Alcotest.test_case "v1 profile migration" `Quick test_v1_migration;
      Alcotest.test_case "count-0 site not executed" `Quick
        test_count0_site_not_executed;
      Alcotest.test_case "load rejects corrupt profiles" `Quick
        test_load_rejects_corruption ]
