(* Differential testing over randomly generated MiniC programs: the
   interpreter and the machine simulator must agree at every optimization
   level — including speculative ALAT promotion under a profile collected
   from the program's own run, and under an adversarially *wrong* profile
   (empty profile: everything looks speculative), which exercises check
   mis-speculation recovery. *)

module Config = Srp_core.Config
module Promote = Srp_core.Promote

let interp_reference src =
  let prog = Srp_frontend.Lower.compile_source src in
  let code, out, profile = Srp_profile.Interp.run_program prog in
  (code, out, profile)

let machine_run ?(layout = true) ?(sched = true) ?(bundle = true)
    ?(split = true) ?(pressure = false) ?(prob = true) src config =
  let prog = Srp_frontend.Lower.compile_source src in
  (match config with
  | Some c ->
    (* with the pressure axis on, feed the promoter the same regalloc
       estimate the driver pipeline injects; off means no callback — the
       promoter's legacy ungated path, exactly `srp --no-pressure`.
       prob off folds into the config like the pipeline's `--no-prob`:
       the binary may-touch verdict, no expected-value debit *)
    let c = { c with Config.prob = c.Config.prob && prob } in
    let est =
      if pressure then Some (Srp_driver.Pipeline.pressure_fn prog) else None
    in
    ignore (Promote.run ~config:c ?pressure:est prog)
  | None -> ());
  let ra =
    if split then Srp_target.Regalloc.default_policy
    else Srp_target.Regalloc.closed_policy
  in
  let tgt = Srp_target.Codegen.gen_program ~layout ~sched ~bundle ~ra prog in
  let code, out, _ = Srp_machine.Machine.run_program ~fuel:50_000_000 tgt in
  (code, out)

let check_level ?layout ?sched ?bundle ?split ?pressure ?prob src name
    expected config =
  let code, out =
    machine_run ?layout ?sched ?bundle ?split ?pressure ?prob src config
  in
  if out <> snd expected || code <> fst expected then
    Alcotest.failf "%s diverged!\n--- source ---\n%s\n--- expected ---\n%s--- got ---\n%s"
      name src (snd expected) out

(* the level sweep every seed goes through; the empty profile is the
   adversarial case: it claims nothing ever aliases, so every chi becomes
   speculative and the ALAT checks must repair all of it *)
let level_configs profile =
  let empty = Srp_profile.Alias_profile.create () in
  [ ("O0", None);
    ("conservative", Some Config.conservative);
    ("baseline(software)", Some Config.baseline);
    ("alat-heuristic", Some Config.alat_heuristic);
    ("alat-profile", Some (Config.alat ~profile));
    ("alat-wrong-profile", Some (Config.alat ~profile:empty)) ]

let run_seed seed =
  let src = Gen_minic.program ~seed () in
  let code, out, profile = interp_reference src in
  let expected = (code, out) in
  List.iter
    (fun (name, config) ->
      check_level src (Fmt.str "seed %d %s" seed name) expected config)
    (level_configs profile);
  (* conservative promotion must also be interpretable *)
  let prog = Srp_frontend.Lower.compile_source src in
  ignore (Promote.run ~config:Config.conservative prog);
  let _, out2, _ = Srp_profile.Interp.run_program ~collect_profile:false prog in
  if out2 <> out then Alcotest.failf "conservative interp diverged for seed %d" seed

(* every level crossed with the backend ablation axes:
   {layout,sched,bundle,split,pressure,prob} on/off.  Pressure-on runs
   the gated promoter with the pipeline's regalloc estimate; pressure-off
   is the legacy ungated path (`srp --no-pressure`).  Sched-on runs the
   pre-bundle list scheduler, which may only move cycle-family counters.
   Prob-on folds per-site conflict rates into the speculation gate;
   prob-off is the binary may-touch verdict (`srp --no-prob`).  All must
   agree with the interpreter bit for bit — a gate may promote less or
   speculate differently, never compute differently.  The failure
   message carries the reproducing seed. *)
let default_combos =
  [ (true, true, true, true, true, true); (true, true, false, true, true, true);
    (false, true, true, true, true, false);
    (false, false, false, true, true, true);
    (true, false, true, true, true, false);
    (true, true, true, false, true, true);
    (false, false, false, false, true, true);
    (true, true, true, true, false, true);
    (true, false, true, false, false, false);
    (false, false, false, false, false, false) ]

let run_seed_matrix ?(combos = default_combos) seed =
  let src = Gen_minic.program ~seed () in
  let code, out, profile = interp_reference src in
  let expected = (code, out) in
  List.iter
    (fun (layout, sched, bundle, split, pressure, prob) ->
      List.iter
        (fun (name, config) ->
          check_level ~layout ~sched ~bundle ~split ~pressure ~prob src
            (Fmt.str
               "seed %d %s (layout=%b sched=%b bundle=%b split=%b \
                pressure=%b prob=%b)"
               seed name layout sched bundle split pressure prob)
            expected config)
        (level_configs profile))
    combos

let test_batch lo hi () =
  for seed = lo to hi do
    run_seed seed
  done

let test_matrix_batch lo hi () =
  for seed = lo to hi do
    run_seed_matrix seed
  done

(* SRP_FUZZ_ITERS=N runs N extra seeds through the full
   level x layout x sched x bundle x split matrix — off (0) in the
   default test run, used by the non-blocking CI fuzz jobs and for local
   soak testing.  SRP_FUZZ_SPLIT=0 focuses the sweep on the
   closed-interval allocator (split off across every layout/bundle
   combo), SRP_FUZZ_SCHED=0 on the unscheduled stream (sched off across
   the matrix), and SRP_FUZZ_PROB=0 on the binary-verdict speculation
   gate (prob off across the matrix), so the allocator paths, the
   scheduler ablation, and the legacy gate each get their own CI soak. *)
let fuzz_iters =
  match Sys.getenv_opt "SRP_FUZZ_ITERS" with
  | Some s -> ( try max 0 (int_of_string s) with _ -> 0)
  | None -> 0

let fuzz_combos =
  match
    ( Sys.getenv_opt "SRP_FUZZ_SPLIT",
      Sys.getenv_opt "SRP_FUZZ_SCHED",
      Sys.getenv_opt "SRP_FUZZ_PROB" )
  with
  | Some ("0" | "off" | "false"), _, _ ->
    [ (true, true, true, false, true, true);
      (true, true, false, false, true, true);
      (false, true, true, false, true, false);
      (false, false, false, false, true, true);
      (true, true, true, false, false, true);
      (false, false, false, false, false, false) ]
  | _, Some ("0" | "off" | "false"), _ ->
    [ (true, false, true, true, true, true);
      (true, false, false, true, true, true);
      (false, false, true, true, true, false);
      (false, false, false, true, true, true);
      (true, false, true, false, true, true);
      (true, false, true, true, false, false);
      (false, false, false, false, false, false) ]
  | _, _, Some ("0" | "off" | "false") ->
    [ (true, true, true, true, true, false);
      (true, true, false, true, true, false);
      (false, true, true, true, true, false);
      (false, false, false, true, true, false);
      (true, true, true, false, true, false);
      (true, true, true, true, false, false);
      (false, false, false, false, false, false) ]
  | _ -> default_combos

let test_fuzz_sweep () =
  for seed = 10_000 to 10_000 + fuzz_iters - 1 do
    run_seed_matrix ~combos:fuzz_combos seed
  done

(* A couple of adversarial hand-picked shapes the generator rarely hits. *)
let test_alias_storm () =
  (* every pointer aimed at the same scalar: constant real collisions *)
  let src = {|
int g = 3;
int h = 4;
int* p0; int* p1; int* p2;
int checksum;
int main() {
  p0 = &g; p1 = &g; p2 = &h;
  int i;
  for (i = 0; i < 30; i = i + 1) {
    checksum = checksum + g;
    *p0 = checksum % 13;
    checksum = checksum + g + h;
    *p1 = g + 1;
    *p2 = h + 1;
    checksum = checksum + g - h;
  }
  print_int(checksum); print_int(g); print_int(h);
  return 0;
}
|} in
  let code, out, profile = interp_reference src in
  check_level src "storm O0" (code, out) None;
  check_level src "storm alat" (code, out) (Some (Config.alat ~profile));
  let empty = Srp_profile.Alias_profile.create () in
  check_level src "storm alat wrong-profile" (code, out) (Some (Config.alat ~profile:empty))

let test_self_aliasing_walk () =
  (* a pointer that walks over the array it is also read through *)
  let src = {|
int arr[16];
int* w;
int checksum;
int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) { arr[i] = i; }
  w = &arr[0];
  for (i = 0; i < 15; i = i + 1) {
    checksum = checksum + *w;
    arr[(i + 1) % 16] = *w + 2;
    checksum = checksum + *w;
    w = w + 1;
  }
  print_int(checksum);
  return 0;
}
|} in
  let code, out, profile = interp_reference src in
  check_level src "walk O0" (code, out) None;
  check_level src "walk baseline" (code, out) (Some Config.baseline);
  check_level src "walk alat" (code, out) (Some (Config.alat ~profile))

let suite =
  [ Alcotest.test_case "random differential seeds 1-40" `Quick (test_batch 1 40);
    Alcotest.test_case "random differential seeds 41-80" `Quick (test_batch 41 80);
    Alcotest.test_case "random differential seeds 81-120" `Slow (test_batch 81 120);
    Alcotest.test_case "random differential seeds 121-200" `Slow (test_batch 121 200);
    Alcotest.test_case "matrix differential seeds 1-10 (layout x bundle)" `Quick
      (test_matrix_batch 1 10);
    Alcotest.test_case "matrix differential seeds 11-30 (layout x bundle)" `Slow
      (test_matrix_batch 11 30);
    Alcotest.test_case
      (Fmt.str "fuzz sweep (SRP_FUZZ_ITERS=%d)" fuzz_iters)
      `Quick test_fuzz_sweep;
    Alcotest.test_case "alias storm" `Quick test_alias_storm;
    Alcotest.test_case "self-aliasing pointer walk" `Quick test_self_aliasing_walk ]
