(* Test runner: all suites.  `dune runtest` runs quick + slow; ALCOTEST_QUICK
   can restrict to the quick subset. *)

let () =
  Alcotest.run "srp"
    [ ("support", Test_support.suite);
      ("frontend", Test_frontend.suite);
      ("ir", Test_ir.suite);
      ("alias", Test_alias.suite);
      ("ssa", Test_ssa.suite);
      ("profile", Test_profile.suite);
      ("core", Test_core.suite);
      ("passes", Test_passes.suite);
      ("target", Test_target.suite);
      ("bundle", Test_bundle.suite);
      ("sched", Test_sched.suite);
      ("machine", Test_machine.suite);
      ("random", Test_random.suite);
      ("obs", Test_obs.suite);
      ("span", Test_span.suite);
      ("stage", Test_stage.suite);
      ("serve", Test_serve.suite);
      ("e2e", Test_e2e.suite) ]
