(* The staged pipeline and its artifact cache.

   The load-bearing property is the differential one: a staged (and
   cached) build must be bit-identical — output, exit code, every machine
   counter — to the seed monolithic pipeline, for every kernel at every
   level.  Around it: content-key soundness (QCheck), artifact sharing
   and store bounds, the single-lower guarantee, per-job Stats scopes,
   and the apply-input independence regression. *)

open Srp_driver
module C = Srp_machine.Counters
module Stats = Srp_obs.Stats

let levels =
  [ Pipeline.O0; Pipeline.Conservative; Pipeline.Baseline; Pipeline.Alat;
    Pipeline.Alat_heuristic ]

(* train-as-ref, like the e2e suite: full-size ref inputs belong to the
   bench harness *)
let small name =
  let w = Srp_workloads.Registry.find name in
  { w with Workload.ref_ = w.Workload.train }

let kernels =
  [ "gzip"; "vpr"; "mcf"; "parser"; "bzip2"; "twolf"; "gap"; "ammp"; "art";
    "equake" ]

(* --- staged vs monolithic differential --- *)

let check_identical name level (staged : Pipeline.run_result)
    (mono : Pipeline.run_result) =
  let tag what =
    Fmt.str "%s @ %s: %s" name (Pipeline.level_name level) what
  in
  Alcotest.(check string) (tag "output") mono.Pipeline.output
    staged.Pipeline.output;
  Alcotest.(check int64) (tag "exit code") mono.Pipeline.exit_code
    staged.Pipeline.exit_code;
  List.iter2
    (fun (k, m) (k', s) ->
      assert (k = k');
      Alcotest.(check int) (tag ("counter " ^ k)) m s)
    (C.to_fields mono.Pipeline.counters)
    (C.to_fields staged.Pipeline.counters)

(* One shared store across all levels of the kernel, so the comparison
   also covers cache-hit builds (the second level onward reuses the
   lower/apply artifacts). *)
let test_differential name () =
  let w = small name in
  let cache = Stage.create () in
  List.iter
    (fun level ->
      let staged = Pipeline.profile_compile_run ~cache w level in
      let mono = Pipeline.profile_compile_run_monolithic w level in
      check_identical name level staged mono)
    levels

(* The probability-gate differential: under --no-prob both paths must
   take the exact legacy binary-verdict route, so staged = monolithic
   bit for bit at every level; and at every level but Alat the gate is
   inert (those configs carry no speculation probabilities), so prob
   on/off must also be bit-identical to each other. *)
let test_no_prob_differential name () =
  let w = small name in
  let cache = Stage.create () in
  List.iter
    (fun level ->
      let off = Pipeline.profile_compile_run ~cache ~prob:false w level in
      let mono = Pipeline.profile_compile_run_monolithic ~prob:false w level in
      check_identical name level off mono;
      if level <> Pipeline.Alat then
        check_identical name level
          (Pipeline.profile_compile_run ~cache w level)
          off)
    levels

(* --- content-key soundness (QCheck) --- *)

(* A job descriptor exercising every field the issue names: source,
   input, level, ablation set, backend flags, machine config.  The
   property: [Serve.job_key] is injective on descriptors — equal keys
   iff equal descriptors. *)
type desc = {
  d_source : int; (* index into distinct sources *)
  d_input : int; (* index into distinct ref inputs *)
  d_level : int;
  d_ablations : bool list; (* inclusion mask over all_ablations *)
  d_layout : bool;
  d_sched : bool;
  d_bundle : bool;
  d_split : bool;
  d_pressure : bool;
  d_prob : bool;
  d_fuel : int option;
}

let sources =
  [| "int main() { return 1; }"; "int main() { return 2; }" |]

let inputs = [| []; [ ("input_len", Srp_workloads.Input_gen.scalar_int 7) ] |]

let job_of_desc (d : desc) : Serve.job =
  { Serve.j_id = Srp_obs.Json.Null;
    j_w =
      { Workload.name = "qcheck"; description = "";
        source = sources.(d.d_source); train = []; ref_ = inputs.(d.d_input) };
    j_level = List.nth Pipeline.all_levels d.d_level;
    j_ablations =
      List.filteri (fun i _ -> List.nth d.d_ablations i) Pipeline.all_ablations;
    j_layout = d.d_layout;
    j_sched = d.d_sched;
    j_bundle = d.d_bundle;
    j_split = d.d_split;
    j_pressure = d.d_pressure;
    j_prob = d.d_prob;
    j_fuel = d.d_fuel }

let gen_desc =
  let open QCheck.Gen in
  let* d_source = int_bound 1 in
  let* d_input = int_bound 1 in
  let* d_level = int_bound (List.length Pipeline.all_levels - 1) in
  let* d_ablations =
    flatten_l (List.map (fun _ -> bool) Pipeline.all_ablations)
  in
  let* d_layout = bool in
  let* d_sched = bool in
  let* d_bundle = bool in
  let* d_split = bool in
  let* d_pressure = bool in
  let* d_prob = bool in
  let+ d_fuel = oneof [ return None; map (fun n -> Some (n + 1)) (int_bound 3) ] in
  { d_source; d_input; d_level; d_ablations; d_layout; d_sched; d_bundle;
    d_split; d_pressure; d_prob; d_fuel }

let print_desc d =
  Fmt.str "{src=%d;in=%d;lvl=%d;abl=%a;l=%b;sc=%b;b=%b;s=%b;p=%b;pr=%b;fuel=%a}"
    d.d_source d.d_input d.d_level
    Fmt.(list ~sep:comma bool)
    d.d_ablations d.d_layout d.d_sched d.d_bundle d.d_split d.d_pressure
    d.d_prob
    Fmt.(option int)
    d.d_fuel

let key_soundness =
  QCheck.Test.make ~count:500 ~name:"job keys: equal iff descriptors equal"
    (QCheck.make ~print:(QCheck.Print.pair print_desc print_desc)
       QCheck.Gen.(pair gen_desc gen_desc))
    (fun (d1, d2) ->
      let k1 = Serve.job_key (job_of_desc d1)
      and k2 = Serve.job_key (job_of_desc d2) in
      if d1 = d2 then k1 = k2 else k1 <> k2)

(* Stage keys directly: each input that must invalidate a stage does. *)
let test_stage_keys () =
  let distinct what l =
    let n = List.length (List.sort_uniq compare l) in
    Alcotest.(check int) (what ^ " keys distinct") (List.length l) n
  in
  distinct "lower"
    [ Stage.Key.lower ~source:"a"; Stage.Key.lower ~source:"b" ];
  let lk = Stage.Key.lower ~source:"a" in
  distinct "apply"
    [ Stage.Key.apply ~lower_key:lk [];
      Stage.Key.apply ~lower_key:lk
        [ ("x", Srp_workloads.Input_gen.scalar_int 1) ];
      Stage.Key.apply ~lower_key:(Stage.Key.lower ~source:"b") [] ];
  let ak = Stage.Key.apply ~lower_key:lk [] in
  distinct "promote"
    (List.map
       (fun c -> Stage.Key.promote ~applied_key:ak ~config:c)
       ("none"
       :: List.map Stage.Key.config_fingerprint
            [ Srp_core.Config.conservative; Srp_core.Config.baseline;
              Srp_core.Config.alat_heuristic;
              { Srp_core.Config.baseline with Srp_core.Config.max_rounds = 1 };
              (* every pressure-gate parameter must reach the fingerprint:
                 a tuned knob served a stale cached promote artifact would
                 silently undo the tuning *)
              { Srp_core.Config.baseline with Srp_core.Config.pressure = false };
              { Srp_core.Config.baseline with
                Srp_core.Config.pressure_threshold = 16 };
              { Srp_core.Config.baseline with Srp_core.Config.lat_l1 = 3 };
              { Srp_core.Config.baseline with Srp_core.Config.lat_fp = 12 };
              { Srp_core.Config.baseline with Srp_core.Config.spill_cost = 6 };
              { Srp_core.Config.baseline with Srp_core.Config.estimator = 3 };
              (* the probabilistic-gate knobs likewise *)
              { Srp_core.Config.baseline with Srp_core.Config.prob = false };
              { Srp_core.Config.baseline with
                Srp_core.Config.spec_threshold = 0.25 };
              { Srp_core.Config.baseline with
                Srp_core.Config.recovery_penalty = 7 }
            ]));
  let pk = Stage.Key.promote ~applied_key:ak ~config:"none" in
  let sk = Stage.Key.select ~promote_key:pk in
  distinct "regalloc"
    [ Stage.Key.regalloc ~select_key:sk ~split:true;
      Stage.Key.regalloc ~select_key:sk ~split:false ];
  let rk = Stage.Key.regalloc ~select_key:sk ~split:true in
  distinct "layout"
    [ Stage.Key.layout ~regalloc_key:rk ~layout:true;
      Stage.Key.layout ~regalloc_key:rk ~layout:false ];
  let yk = Stage.Key.layout ~regalloc_key:rk ~layout:true in
  (* the sched and bundle knobs share the stage: all four settings must
     key distinctly or a --no-sched build could be served a scheduled
     artifact *)
  distinct "bundle"
    [ Stage.Key.bundle ~layout_key:yk ~sched:true ~bundle:true;
      Stage.Key.bundle ~layout_key:yk ~sched:true ~bundle:false;
      Stage.Key.bundle ~layout_key:yk ~sched:false ~bundle:true;
      Stage.Key.bundle ~layout_key:yk ~sched:false ~bundle:false ]

(* Identical builds through one store share artifacts physically. *)
let test_artifact_sharing () =
  let w = small "mcf" in
  let cache = Stage.create () in
  let r1 = Pipeline.profile_compile_run ~cache w Pipeline.Baseline in
  let r2 = Pipeline.profile_compile_run ~cache w Pipeline.Baseline in
  Alcotest.(check bool) "promoted IR physically shared" true
    (r1.Pipeline.compiled.Pipeline.ir == r2.Pipeline.compiled.Pipeline.ir);
  Alcotest.(check string) "same output" r1.Pipeline.output r2.Pipeline.output

(* --- the single-lower guarantee (the seed double-lower bug) --- *)

let test_single_lower () =
  let w = small "twolf" in
  Stats.reset ();
  ignore (Pipeline.profile_compile_run w Pipeline.Alat);
  (match Stats.find ~pass:"frontend" "parse" with
  | Some (calls, _) ->
    Alcotest.(check int) "parse/lower once per distinct source" 1 calls
  | None -> Alcotest.fail "no frontend/parse statistic recorded");
  match Stats.find ~pass:"profile" "train_interp" with
  | Some (calls, _) ->
    Alcotest.(check int) "one train interpretation" 1 calls
  | None -> Alcotest.fail "no profile/train_interp statistic recorded"

(* --- per-job Stats scopes --- *)

(* Two domains bump different counters concurrently inside their own
   scopes; neither scope may see the other's counts (the global registry
   sees both). *)
let test_scope_isolation () =
  let iters = 10_000 in
  let bump name () =
    for _ = 1 to iters do
      Stats.incr (Stats.counter ~pass:"test_scope" name)
    done
  in
  let d1 = Domain.spawn (fun () -> Stats.with_scope (bump "alpha")) in
  let d2 = Domain.spawn (fun () -> Stats.with_scope (bump "beta")) in
  let (), s1 = Domain.join d1 in
  let (), s2 = Domain.join d2 in
  Alcotest.(check int) "scope 1 own counter" iters
    (Stats.Scope.value s1 ~pass:"test_scope" "alpha");
  Alcotest.(check int) "scope 1 clean of scope 2" 0
    (Stats.Scope.value s1 ~pass:"test_scope" "beta");
  Alcotest.(check int) "scope 2 own counter" iters
    (Stats.Scope.value s2 ~pass:"test_scope" "beta");
  Alcotest.(check int) "scope 2 clean of scope 1" 0
    (Stats.Scope.value s2 ~pass:"test_scope" "alpha")

(* --- store bounds and in-flight dedup --- *)

let test_eviction () =
  let cache = Stage.create ~capacity:2 () in
  let get k = ignore (Stage.get (Some cache) ~key:k ~build:(fun () -> Stage.Bundled [])) in
  get "k1";
  get "k2";
  get "k3";
  (* k1 is the LRU victim *)
  let s = Stage.stats cache in
  Alcotest.(check int) "evictions" 1 s.Stage.evictions;
  Alcotest.(check int) "misses" 3 s.Stage.misses;
  get "k2";
  get "k1";
  let s = Stage.stats cache in
  Alcotest.(check int) "k2 still resident" 1 s.Stage.hits;
  Alcotest.(check int) "k1 rebuilt after eviction" 4 s.Stage.misses

let test_inflight_dedup () =
  let cache = Stage.create () in
  let builds = Atomic.make 0 in
  let racers = 4 in
  let domains =
    List.init racers (fun _ ->
        Domain.spawn (fun () ->
            Stage.get (Some cache) ~key:"same" ~build:(fun () ->
                Atomic.incr builds;
                (* widen the in-flight window so waiters actually wait *)
                ignore (Sys.opaque_identity (Array.make 100_000 0));
                Stage.Bundled [])))
  in
  List.iter (fun d -> ignore (Domain.join d)) domains;
  Alcotest.(check int) "one build for racing domains" 1 (Atomic.get builds);
  let s = Stage.stats cache in
  Alcotest.(check int) "every racer accounted" racers
    (s.Stage.hits + s.Stage.misses)

(* --- apply-input independence (the copy-on-write regression) --- *)

(* Two builds of one workload with different inputs, from one cached
   lower artifact, must not see each other's input: re-building with the
   first input must reproduce the first output exactly. *)
let test_apply_input_independence () =
  let w = Srp_workloads.Registry.find "gzip" in
  let cache = Stage.create () in
  let build input =
    Pipeline.run
      (Pipeline.compile ~cache ~input w Pipeline.Baseline)
  in
  let a1 = build w.Workload.train in
  let b = build w.Workload.ref_ in
  let a2 = build w.Workload.train in
  Alcotest.(check bool) "different inputs give different outputs" true
    (a1.Pipeline.output <> b.Pipeline.output);
  Alcotest.(check string) "first input reproducible after second"
    a1.Pipeline.output a2.Pipeline.output;
  Alcotest.(check bool) "train build artifact shared, not rebuilt" true
    (a1.Pipeline.compiled.Pipeline.ir == a2.Pipeline.compiled.Pipeline.ir)

let suite =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " staged = monolithic") `Slow
        (test_differential name))
    kernels
  @ List.map
      (fun name ->
        Alcotest.test_case (name ^ " --no-prob legacy path") `Slow
          (test_no_prob_differential name))
      kernels
  @ [ QCheck_alcotest.to_alcotest key_soundness;
      Alcotest.test_case "stage keys invalidate per input" `Quick
        test_stage_keys;
      Alcotest.test_case "identical builds share artifacts" `Quick
        test_artifact_sharing;
      Alcotest.test_case "alat run lowers each source once" `Quick
        test_single_lower;
      Alcotest.test_case "scopes isolate concurrent domains" `Quick
        test_scope_isolation;
      Alcotest.test_case "LRU eviction respects capacity" `Quick test_eviction;
      Alcotest.test_case "racing builds dedup in flight" `Quick
        test_inflight_dedup;
      Alcotest.test_case "apply-input leaves shared artifacts intact" `Slow
        test_apply_input_independence ]
