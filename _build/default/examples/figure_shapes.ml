(* Figure shapes: the basic transformations of the paper's section 2,
   recreated on tiny MiniC programs and shown as generated assembly.

   - read-after-read across an aliased store   -> ld.a ... ld.c   (Fig 1a)
   - read-after-write across an aliased store  -> st; ld.a ... ld.c (Fig 1b)
   - several redundant reads                   -> ld.c.nc chain   (Fig 1c)
   - loop-invariant under an aliased store     -> ld.sa before the loop,
                                                  check inside     (Fig 3)

   Run with: dune exec examples/figure_shapes.exe *)

let compile_and_show ~title ~focus source =
  Fmt.pr "@.=== %s ===@." title;
  (* train profile: the aliasing path is never taken *)
  let pprog = Srp_frontend.Lower.compile_source source in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let ir = Srp_frontend.Lower.compile_source source in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) ir);
  let tgt = Srp_target.Codegen.gen_program ir in
  let f = Hashtbl.find tgt.Srp_target.Insn.funcs focus in
  Fmt.pr "%a@." Srp_target.Insn.pp_func f

let fig1a = {|
int a; int b;
int* q;
int flip;
int main() {
  int r = 0;
  if (flip == 77) { q = &a; } else { q = &b; }
  a = 5;
  r = r + a + 1;   // becomes ld.a (arms the ALAT)
  *q = 123;        // possibly-aliased store
  r = r + a + 3;   // becomes ld.c (free when no collision)
  print_int(r);
  return 0;
}
|}

let fig1c = {|
int a; int b;
int* q;
int flip;
int main() {
  int r = 0;
  if (flip == 77) { q = &a; } else { q = &b; }
  a = 9;
  r = r + a + 1;   // ld.a
  *q = 1;
  r = r + a + 3;   // ld.c.nc: keeps the entry alive
  *q = 2;
  r = r - a - 5;   // ld.c.nc again
  print_int(r);
  return 0;
}
|}

let fig3 = {|
int p; int b;
int* q;
int flip;
int n;
void init() { p = 11; n = 500; if (flip == 77) { q = &p; } else { q = &b; } }
int main() {
  int i;
  int r = 0;
  init();            // p's value is set elsewhere: no dominating store here
  for (i = 0; i < n; i = i + 1) {
    *q = i;          // possible alias write in the loop that may modify p
    r = r + p + 1;   // hoisted above the loop as ld.sa; checked inside
  }
  print_int(r);
  return 0;
}
|}

let () =
  compile_and_show ~title:"Figure 1(a/b): read after read/write across an aliased store"
    ~focus:"main" fig1a;
  compile_and_show ~title:"Figure 1(c): multiple redundant loads -> ld.c.nc chain"
    ~focus:"main" fig1c;
  compile_and_show ~title:"Figure 3: speculative loop invariant -> ld.sa + in-loop check"
    ~focus:"main" fig3;
  Fmt.pr
    "@.Look for: ld8.a (advanced load, arms the ALAT), ld8.c.nc (check load,\n\
     a no-op on a hit), ld8.sa (control+data speculative hoisted load), and\n\
     invala.e (entry invalidation on paths that bypass the load).@."
