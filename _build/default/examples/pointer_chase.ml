(* Pointer chasing end to end: the built-in mcf-like workload through the
   whole experiment pipeline, with per-build hardware counters — a single-
   benchmark slice of the paper's Figure 8.

   Run with: dune exec examples/pointer_chase.exe *)

open Srp_driver

let () =
  let w = Srp_workloads.Registry.find "mcf" in
  Fmt.pr "workload: %s — %s@.@." w.Workload.name w.Workload.description;
  let levels =
    [ Pipeline.O0; Pipeline.Conservative; Pipeline.Baseline; Pipeline.Alat ]
  in
  let results =
    List.map (fun l -> (l, Pipeline.profile_compile_run w l)) levels
  in
  (* all levels must agree on the program output *)
  (match results with
  | (_, first) :: rest ->
    List.iter
      (fun (l, r) ->
        if r.Pipeline.output <> first.Pipeline.output then
          Fmt.failwith "output mismatch at %s" (Pipeline.level_name l))
      rest
  | [] -> ());
  Fmt.pr "%s@."
    (Srp_support.Pp_util.render_table
       ~header:[ "level"; "cycles"; "loads"; "checks"; "fails"; "data-access cy" ]
       ~rows:
         (List.map
            (fun (l, r) ->
              let c = r.Pipeline.counters in
              [ Pipeline.level_name l;
                string_of_int c.Srp_machine.Counters.cycles;
                string_of_int c.Srp_machine.Counters.loads_retired;
                string_of_int c.Srp_machine.Counters.checks_retired;
                string_of_int c.Srp_machine.Counters.check_failures;
                string_of_int c.Srp_machine.Counters.data_access_cycles ])
            results));
  let base = List.assoc Pipeline.Baseline results in
  let spec = List.assoc Pipeline.Alat results in
  let f8 =
    Report.figure8_row ~name:"mcf" ~base:base.Pipeline.counters
      ~spec:spec.Pipeline.counters
  in
  Fmt.pr
    "@.speculative vs baseline: cycles -%.2f%%, data access -%.2f%%, loads -%.2f%%@."
    f8.Report.cpu_cycles_red f8.Report.data_access_red f8.Report.loads_red
