examples/alias_speculation.ml: Fmt Srp_alias Srp_core Srp_frontend Srp_ir Srp_profile Srp_ssa
