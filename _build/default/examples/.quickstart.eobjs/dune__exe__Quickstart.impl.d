examples/quickstart.ml: Fmt Srp_core Srp_frontend Srp_machine Srp_profile Srp_target
