examples/figure_shapes.mli:
