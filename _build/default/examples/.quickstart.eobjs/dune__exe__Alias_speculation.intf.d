examples/alias_speculation.mli:
