examples/pointer_chase.ml: Fmt List Pipeline Report Srp_driver Srp_machine Srp_support Srp_workloads Workload
