examples/quickstart.mli:
