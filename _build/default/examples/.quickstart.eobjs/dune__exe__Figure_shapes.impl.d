examples/figure_shapes.ml: Fmt Hashtbl Srp_core Srp_frontend Srp_profile Srp_target
