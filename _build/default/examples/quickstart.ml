(* Quickstart: the whole pipeline on a dozen lines of MiniC.

   A global [limit] may be aliased by the pointer [knob] (the compiler
   cannot tell), so the baseline must reload it inside the loop.  The
   speculative build profiles a training run, sees that [knob] never hits
   [limit], promotes it into a register with an ALAT check, and wins.

   Run with: dune exec examples/quickstart.exe *)

let source = {|
int limit;
int table[64];
int* knob;
int sel;

int main() {
  int i;
  int sum = 0;
  limit = 37;
  if (sel == 99) { knob = &limit; } else { knob = &table[8]; }
  for (i = 0; i < 1000; i = i + 1) {
    sum = sum + limit + i;     // limit would stay in a register, but...
    *knob = sum;               // ...this store may alias it
    sum = sum + limit * 2;     // so the baseline reloads it here
  }
  print_int(sum);
  return 0;
}
|}

let () =
  (* 1. reference semantics + alias profile from the interpreter *)
  let prog = Srp_frontend.Lower.compile_source source in
  let _, expected, profile = Srp_profile.Interp.run_program prog in
  Fmt.pr "interpreter says: %s" expected;

  (* 2. baseline build (conservative PRE + software checks) *)
  let base_ir = Srp_frontend.Lower.compile_source source in
  ignore (Srp_core.Promote.run ~config:Srp_core.Config.baseline base_ir);
  let _, base_out, base_c =
    Srp_machine.Machine.run_program (Srp_target.Codegen.gen_program base_ir)
  in

  (* 3. speculative build (ALAT, profile-driven) *)
  let spec_ir = Srp_frontend.Lower.compile_source source in
  let r = Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) spec_ir in
  let _, spec_out, spec_c =
    Srp_machine.Machine.run_program (Srp_target.Codegen.gen_program spec_ir)
  in

  assert (base_out = expected && spec_out = expected);
  Fmt.pr "all three builds agree.@.@.";
  let s = r.Srp_core.Promote.stats in
  Fmt.pr "speculative promotion: %d expressions, %d loads eliminated, %d checks@."
    s.Srp_core.Ssapre.exprs_promoted
    (s.loads_eliminated_direct + s.loads_eliminated_indirect)
    s.checks_inserted;
  let open Srp_machine.Counters in
  Fmt.pr "baseline:    %6d cycles, %5d loads@." base_c.cycles base_c.loads_retired;
  Fmt.pr "speculative: %6d cycles, %5d loads (%d checks, %d failed)@."
    spec_c.cycles spec_c.loads_retired spec_c.checks_retired spec_c.check_failures;
  Fmt.pr "cycle reduction: %.1f%%@."
    (100.0
    *. float_of_int (base_c.cycles - spec_c.cycles)
    /. float_of_int base_c.cycles)
