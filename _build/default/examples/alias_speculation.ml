(* Alias speculation in the SSA form: the paper's section 3.1 (Figures 5
   and 6) on a real program.

   The points-to set of [p] computed by the compiler is {a, b}; the alias
   profile observes only {b}.  Updates of [a] at the store through [p]
   are therefore marked chi_s (speculative) and the rename step ignores
   them — exactly the example of Figure 6.

   Run with: dune exec examples/alias_speculation.exe *)

let source = {|
int a; int b;
int* p;
int sel;

int main() {
  int x;
  int y;
  if (sel == 1) { p = &a; } else { p = &b; }
  a = 41;
  x = a;        // first occurrence of "a"
  *p = 7;       // compiler: may update a or b; profile: only ever b
  y = a;        // second occurrence: speculatively the same version
  print_int(x + y);
  return 0;
}
|}

let () =
  (* alias profile from a training run (sel = 0: p points at b) *)
  let pprog = Srp_frontend.Lower.compile_source source in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  Fmt.pr "=== alias profile (train input) ===@.%a@."
    Srp_profile.Alias_profile.pp profile;

  let prog = Srp_frontend.Lower.compile_source source in
  let mgr = Srp_alias.Manager.build prog in
  let f = Srp_ir.Program.find_func prog "main" in

  (* without the profile: every chi is real *)
  let conservative = Srp_ssa.Spec_policy.create prog Srp_ssa.Spec_policy.Never in
  let modref = Srp_alias.Modref.compute mgr prog in
  let annot_c = Srp_ssa.Annot.compute ~mgr ~modref ~policy:conservative f in
  let ssa_c = Srp_ssa.Ssa_form.build ~annot:annot_c f in
  Fmt.pr "=== traditional renaming (chi on both a and b) ===@.%a@."
    Srp_ssa.Ssa_form.pp ssa_c;

  (* with the profile: the update of a becomes chi_s and is ignored *)
  let speculative =
    Srp_ssa.Spec_policy.create prog (Srp_ssa.Spec_policy.Profile profile)
  in
  let annot_s = Srp_ssa.Annot.compute ~mgr ~modref ~policy:speculative f in
  let ssa_s = Srp_ssa.Ssa_form.build ~annot:annot_s f in
  Fmt.pr "=== speculative renaming (chi_s on a: ignored, checked) ===@.%a@."
    Srp_ssa.Ssa_form.pp ssa_s;

  (* and the resulting promotion *)
  let ir = Srp_frontend.Lower.compile_source source in
  let r = Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) ir in
  let s = r.Srp_core.Promote.stats in
  Fmt.pr
    "promotion on the speculative form: %d loads eliminated, %d check statements@."
    (s.Srp_core.Ssapre.loads_eliminated_direct + s.Srp_core.Ssapre.loads_eliminated_indirect)
    s.Srp_core.Ssapre.checks_inserted;
  Fmt.pr "@.=== promoted IR (main) ===@.%a@." Srp_ir.Func.pp
    (Srp_ir.Program.find_func ir "main")
