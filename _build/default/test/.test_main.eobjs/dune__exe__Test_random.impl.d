test/test_random.ml: Alcotest Gen_minic Srp_core Srp_frontend Srp_machine Srp_profile Srp_target
