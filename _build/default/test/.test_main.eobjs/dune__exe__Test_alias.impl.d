test/test_alias.ml: Alcotest List Lower Srp_alias Srp_driver Srp_frontend Srp_ir Srp_profile Srp_support Srp_workloads
