test/test_core.ml: Alcotest List Lower Srp_core Srp_frontend Srp_ir Srp_machine Srp_profile Srp_target
