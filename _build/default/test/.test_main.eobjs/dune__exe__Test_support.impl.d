test/test_support.ml: Alcotest Array Id_gen List Pp_util QCheck QCheck_alcotest Rng Srp_support String Union_find Vec
