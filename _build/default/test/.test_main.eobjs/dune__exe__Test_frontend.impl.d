test/test_frontend.ml: Alcotest Ast Lexer List Lower Parser Srp_frontend Srp_ir Srp_profile String Struct_env Typecheck
