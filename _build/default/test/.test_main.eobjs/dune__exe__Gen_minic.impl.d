test/gen_minic.ml: Buffer Fmt List Srp_support String
