test/test_target.ml: Alcotest Array Hashtbl List Lower Srp_core Srp_frontend Srp_profile Srp_target
