test/test_profile.ml: Alcotest Fmt Hashtbl Int64 List Lower Option Srp_alias Srp_core Srp_frontend Srp_ir Srp_profile String
