test/test_machine.ml: Alcotest Int64 Srp_frontend Srp_machine Srp_profile Srp_target
