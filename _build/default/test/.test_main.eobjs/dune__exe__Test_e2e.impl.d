test/test_e2e.ml: Alcotest Experiments Fmt List Pipeline Report Srp_driver Srp_machine Srp_workloads Workload
