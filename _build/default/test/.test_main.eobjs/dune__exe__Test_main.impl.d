test/test_main.ml: Alcotest Test_alias Test_core Test_e2e Test_frontend Test_ir Test_machine Test_passes Test_profile Test_random Test_ssa Test_support Test_target
