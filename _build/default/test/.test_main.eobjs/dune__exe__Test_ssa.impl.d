test/test_ssa.ml: Alcotest List Lower Srp_alias Srp_driver Srp_frontend Srp_ir Srp_profile Srp_ssa Srp_workloads
