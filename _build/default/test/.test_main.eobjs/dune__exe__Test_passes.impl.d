test/test_passes.ml: Alcotest Array Block Func Instr Int64 Label List Mem_ty Ops Program Srp_core Srp_driver Srp_frontend Srp_ir Srp_machine Srp_workloads Symbol Temp
