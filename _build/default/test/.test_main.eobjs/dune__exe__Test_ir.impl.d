test/test_ir.ml: Alcotest Array Block Cfg Dominance Func Gen Instr Label List Loops Mem_ty Ops QCheck QCheck_alcotest Srp_ir Temp Verify
