(* Tests for the promotion pass itself: redundancy elimination, check
   insertion, arming, the invala strategy, store-load forwarding, software
   checks, and the regression cases found during development. *)

open Srp_frontend
module Config = Srp_core.Config
module Promote = Srp_core.Promote
module Ssapre = Srp_core.Ssapre

let compile = Lower.compile_source

let profile_of src =
  let p = compile src in
  let _, _, profile = Srp_profile.Interp.run_program p in
  profile

(* Compile + promote, return (program, stats). *)
let promoted ?(config = Config.conservative) src =
  let prog = compile src in
  let r = Promote.run ~config prog in
  (prog, r.Promote.stats)

let alat_promoted src =
  let profile = profile_of src in
  promoted ~config:(Config.alat ~profile) src

(* instruction census over one function *)
type census = {
  mutable loads : int;
  mutable ld_a : int;
  mutable ld_sa : int;
  mutable checks : int;
  mutable invala : int;
  mutable sw_checks : int;
  mutable stores : int;
}

let census prog fname =
  let c =
    { loads = 0; ld_a = 0; ld_sa = 0; checks = 0; invala = 0; sw_checks = 0; stores = 0 }
  in
  Srp_ir.Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Srp_ir.Instr.Load { promo; _ } -> (
        c.loads <- c.loads + 1;
        match promo with
        | Srp_ir.Instr.P_ld_a -> c.ld_a <- c.ld_a + 1
        | Srp_ir.Instr.P_ld_sa -> c.ld_sa <- c.ld_sa + 1
        | Srp_ir.Instr.P_none -> ())
      | Srp_ir.Instr.Check _ -> c.checks <- c.checks + 1
      | Srp_ir.Instr.Invala _ -> c.invala <- c.invala + 1
      | Srp_ir.Instr.Sw_check _ -> c.sw_checks <- c.sw_checks + 1
      | Srp_ir.Instr.Store _ -> c.stores <- c.stores + 1
      | _ -> ())
    (Srp_ir.Program.find_func prog fname);
  c

(* Differential helper: conservative promotion must preserve interpreter
   semantics (the promoted IR is still interpretable). *)
let check_conservative_semantics src =
  let ref_prog = compile src in
  let _, expected, _ = Srp_profile.Interp.run_program ref_prog in
  let prog, _ = promoted ~config:Config.conservative src in
  let _, got, _ = Srp_profile.Interp.run_program ~collect_profile:false prog in
  Alcotest.(check string) "conservative semantics" expected got

let simple_redundant = {|
int g;
int main() {
  int a = g + 1;
  int b = g + 2;
  int c = g + 3;
  print_int(a + b + c);
  return 0;
}
|}

let test_simple_redundancy () =
  let prog, stats = promoted simple_redundant in
  (* 2 redundant loads of g, plus store-load forwarding of a, b and c *)
  Alcotest.(check int) "five loads eliminated" 5 stats.Ssapre.loads_eliminated_direct;
  Alcotest.(check int) "one load remains" 1 (census prog "main").loads;
  check_conservative_semantics simple_redundant

let test_store_load_forwarding () =
  let src = {|
int g;
int main() {
  g = 42;
  print_int(g + 1);
  print_int(g + 2);
  return 0;
}
|} in
  let prog, stats = promoted src in
  Alcotest.(check int) "both loads eliminated" 2 stats.Ssapre.loads_eliminated_direct;
  Alcotest.(check int) "no loads left" 0 (census prog "main").loads;
  check_conservative_semantics src

let test_conservative_respects_alias () =
  (* with speculation off, the aliased store kills availability *)
  let src = {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;      // must be reloaded
  print_int(x + y);
  return 0;
}
|} in
  let prog, _ = promoted ~config:Config.conservative src in
  let c = census prog "main" in
  Alcotest.(check bool) "a reloaded after the aliased store" true (c.loads >= 1);
  Alcotest.(check int) "no checks in conservative mode" 0 c.checks;
  check_conservative_semantics src

let fig1_shape = {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}

let test_alat_inserts_check () =
  let prog, stats = alat_promoted fig1_shape in
  let c = census prog "main" in
  Alcotest.(check bool) "a check statement exists" true (c.checks >= 1);
  Alcotest.(check bool) "an arming load (ld.a) exists" true (c.ld_a >= 1);
  Alcotest.(check bool) "speculative elimination happened" true
    (stats.Ssapre.loads_eliminated_direct >= 1);
  Alcotest.(check bool) "all stores kept (ALAT never removes stores)" true
    (c.stores >= 3)

let test_software_check_mode () =
  let prog, stats = promoted ~config:Config.baseline fig1_shape in
  let c = census prog "main" in
  Alcotest.(check bool) "sw check emitted" true (c.sw_checks >= 1);
  Alcotest.(check int) "no alat checks in software mode" 0 c.checks;
  Alcotest.(check bool) "elimination happened" true
    (stats.Ssapre.sw_checks_inserted >= 1)

let test_software_handles_real_alias () =
  (* in software mode the check must forward the stored value when the
     alias is real: sel picks &a *)
  let src = {|
int a; int b;
int* q;
int sel = 1;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;      // really 9 now!
  print_int(x + y);
  return 0;
}
|} in
  let ref_prog = compile src in
  let _, expected, _ = Srp_profile.Interp.run_program ref_prog in
  Alcotest.(check string) "reference" "14\n" expected;
  let prog, _ = promoted ~config:Config.baseline src in
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, got, _ = Srp_machine.Machine.run_program tgt in
  Alcotest.(check string) "software-checked result" expected got

let test_alat_handles_real_alias () =
  (* profile says q only ever hits b (train sel = 0), but we run the
     promoted code in a world where the profile was wrong by flipping the
     global before execution: the ALAT check must reload *)
  let train_src = {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel == 7) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|} in
  let profile = profile_of train_src in
  (* same program with sel = 7 baked in: the alias is real at run time *)
  let prog = compile train_src in
  Srp_ir.Program.set_global_init prog "sel" (Srp_ir.Program.Init_ints [| 7L |]);
  ignore (Promote.run ~config:(Config.alat ~profile) prog);
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, got, counters = Srp_machine.Machine.run_program tgt in
  Alcotest.(check string) "mis-speculation recovered" "14\n" got;
  Alcotest.(check bool) "a check actually failed" true
    (counters.Srp_machine.Counters.check_failures >= 1)

let test_loop_invariant_ld_sa () =
  let src = {|
int p; int b;
int* q;
int sel;
int n;
int main() {
  int i;
  int r = 0;
  if (sel == 7) { q = &p; } else { q = &b; }
  p = 11;
  n = 100;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p + 1;
  }
  print_int(r);
  return 0;
}
|} in
  let prog, stats = alat_promoted src in
  let c = census prog "main" in
  Alcotest.(check bool) "ld.sa emitted for the hoisted load" true
    (c.ld_sa >= 1 || c.ld_a >= 1);
  Alcotest.(check bool) "in-loop check emitted" true (c.checks >= 1);
  Alcotest.(check bool) "loads eliminated" true (stats.Ssapre.loads_eliminated_direct > 0)

let test_indirect_promotion () =
  let src = {|
struct s { int a; int b; };
int stats[8];
int* slots[4];
int main() {
  struct s* o = malloc(16);
  o->a = 3;
  o->b = 4;
  slots[0] = &stats[0];
  slots[1] = &(o->a);
  int* cur = slots[0];
  int x = o->a;
  *cur = 5;
  int y = o->a;     // speculatively redundant (profile: cur only hits stats)
  print_int(x + y + o->b);
  return 0;
}
|} in
  let _, stats = alat_promoted src in
  Alcotest.(check bool) "indirect loads eliminated" true
    (stats.Ssapre.loads_eliminated_indirect >= 1)

let test_multi_def_base_promotion () =
  (* pointer-walking loop: the base temp is redefined every iteration, but
     the two *w reads within one iteration must still unify *)
  let src = {|
int arr[64];
int acc_tbl[8];
int* slots[4];
int main() {
  int i;
  for (i = 0; i < 64; i = i + 1) { arr[i] = i; }
  slots[0] = &acc_tbl[0];
  slots[1] = &arr[5];
  int* cur = slots[0];
  int* w = &arr[0];
  int sum = 0;
  for (i = 0; i < 60; i = i + 1) {
    int v = *w;
    *cur = *cur + v;
    sum = sum + *w + *w;   // re-reads across the cursor store
    w = w + 1;
  }
  print_int(sum);
  return 0;
}
|} in
  let _, stats = alat_promoted src in
  Alcotest.(check bool) "pointer-walk re-reads eliminated" true
    (stats.Ssapre.loads_eliminated_indirect >= 1)

(* Regression: a use reached only by a non-available Phi must materialize
   itself rather than read an undefined temp (found during development:
   [%26 = %32] with no definition of %32). *)
let test_regression_nonavail_phi () =
  let src = {|
int x; int y;
int* q;
int main() {
  int i;
  int acc = 0;
  q = &y;
  x = 10;
  for (i = 0; i < 10; i = i + 1) {
    acc = acc + x;
    *q = i;
  }
  print_int(acc);
  print_int(y);    // y's only load: reached through a dead Phi
  return 0;
}
|} in
  let prog, _ = alat_promoted src in
  (* run it: an undefined register read would crash the machine *)
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, got, _ = Srp_machine.Machine.run_program tgt in
  Alcotest.(check string) "output" "100\n9\n" got

(* Regression: a later promotion round must not eliminate an earlier
   round's arming load (it would disarm the checks that rely on it). *)
let test_regression_arming_survives_rounds () =
  let src = {|
int x; int y;
int* q;
int sel;
int main() {
  int i;
  if (sel > 3) { q = &x; } else { q = &y; }
  x = 10;
  for (i = 0; i < 50; i = i + 1) {
    y = y + x + 1;
    *q = i;
    y = y + x + 3;
  }
  print_int(x); print_int(y);
  return 0;
}
|} in
  let prog, _ = alat_promoted src in
  let c = census prog "main" in
  Alcotest.(check bool) "checks exist" true (c.checks >= 1);
  Alcotest.(check bool) "arming load survives" true (c.ld_a >= 1);
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, got, counters = Srp_machine.Machine.run_program tgt in
  Alcotest.(check string) "output" "10\n62\n" got;
  Alcotest.(check int) "no check ever fails (q never hits x)" 0
    counters.Srp_machine.Counters.check_failures

let test_check_cleanup_removes_dead () =
  (* a speculative kill whose version is never used afterwards must not
     leave a check behind *)
  let src = {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;        // chi_s on a, but a is never read again
  print_int(x);
  return 0;
}
|} in
  let prog, _ = alat_promoted src in
  let c = census prog "main" in
  Alcotest.(check int) "no dead checks" 0 c.checks

let test_copy_prop_folds_constants () =
  let src = {|
int g;
int main() {
  g = 7;
  int a = g;
  int b = a + g;
  print_int(b);
  return 0;
}
|} in
  let prog, _ = promoted ~config:Config.conservative src in
  let _, out, _ = Srp_profile.Interp.run_program ~collect_profile:false prog in
  Alcotest.(check string) "value" "14\n" out

let test_stats_accounting () =
  let _, stats = alat_promoted fig1_shape in
  Alcotest.(check bool) "exprs promoted counted" true (stats.Ssapre.exprs_promoted > 0);
  Alcotest.(check int) "eliminated sites recorded" (List.length stats.Ssapre.eliminated_sites)
    (stats.Ssapre.loads_eliminated_direct + stats.Ssapre.loads_eliminated_indirect)

let test_promotion_idempotent_semantics () =
  (* promoting twice must not change behaviour *)
  let src = fig1_shape in
  let profile = profile_of src in
  let prog = compile src in
  ignore (Promote.run ~config:(Config.alat ~profile) prog);
  ignore (Promote.run ~config:(Config.alat ~profile) prog);
  let tgt = Srp_target.Codegen.gen_program prog in
  let _, got, _ = Srp_machine.Machine.run_program tgt in
  let refp = compile src in
  let _, expected, _ = Srp_profile.Interp.run_program refp in
  Alcotest.(check string) "double promotion semantics" expected got

let suite =
  [ Alcotest.test_case "simple redundancy" `Quick test_simple_redundancy;
    Alcotest.test_case "store-load forwarding" `Quick test_store_load_forwarding;
    Alcotest.test_case "conservative respects aliases" `Quick test_conservative_respects_alias;
    Alcotest.test_case "alat inserts ld.a + ld.c" `Quick test_alat_inserts_check;
    Alcotest.test_case "software check mode" `Quick test_software_check_mode;
    Alcotest.test_case "software handles real alias" `Quick test_software_handles_real_alias;
    Alcotest.test_case "alat recovers from mis-speculation" `Quick test_alat_handles_real_alias;
    Alcotest.test_case "loop invariant -> ld.sa" `Quick test_loop_invariant_ld_sa;
    Alcotest.test_case "indirect promotion" `Quick test_indirect_promotion;
    Alcotest.test_case "pointer-walk (multi-def base)" `Quick test_multi_def_base_promotion;
    Alcotest.test_case "regression: non-available phi" `Quick test_regression_nonavail_phi;
    Alcotest.test_case "regression: arming survives rounds" `Quick
      test_regression_arming_survives_rounds;
    Alcotest.test_case "dead check cleanup" `Quick test_check_cleanup_removes_dead;
    Alcotest.test_case "copy propagation" `Quick test_copy_prop_folds_constants;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "promotion idempotent" `Quick test_promotion_idempotent_semantics ]

(* --- cascade promotion (paper section 2.4, Figure 4) --- *)

let cascade_src = {|
int a; int b;
int* p;
int** pp;
int* r;
int sel;
int checksum;
int main() {
  int i;
  p = &a;
  a = 100;
  if (sel == 5) { pp = &p; } else { pp = &r; }
  for (i = 0; i < 40; i = i + 1) {
    checksum = checksum + *p + 1;
    *pp = &b;                        // may repoint p (never does when sel=0)
    checksum = checksum + *p + 3;   // cascade re-read
  }
  print_int(checksum);
  print_int(*p);
  return 0;
}
|}

let run_on_machine prog =
  Srp_machine.Machine.run_program (Srp_target.Codegen.gen_program prog)

let test_cascade_promotes_more () =
  let profile = profile_of cascade_src in
  let _, plain = promoted ~config:(Config.alat ~profile) cascade_src in
  let _, casc = promoted ~config:(Config.alat_cascade ~profile) cascade_src in
  Alcotest.(check bool) "cascade eliminates additional indirect loads" true
    (casc.Ssapre.loads_eliminated_indirect > plain.Ssapre.loads_eliminated_indirect);
  Alcotest.(check bool) "a chk.a was emitted" true (casc.Ssapre.chk_a_inserted >= 1)

let test_cascade_correct () =
  let refp = compile cascade_src in
  let _, out, profile = Srp_profile.Interp.run_program refp in
  let prog, _ = promoted ~config:(Config.alat_cascade ~profile) cascade_src in
  let _, got, c = run_on_machine prog in
  Alcotest.(check string) "cascade output" out got;
  Alcotest.(check int) "no recovery needed when the profile holds" 0
    c.Srp_machine.Counters.check_failures

let test_cascade_recovery_fires () =
  (* profile says pp never repoints p; run with sel=5 where it always does *)
  let profile = profile_of cascade_src in
  let prog = compile cascade_src in
  Srp_ir.Program.set_global_init prog "sel" (Srp_ir.Program.Init_ints [| 5L |]);
  let refp = compile cascade_src in
  Srp_ir.Program.set_global_init refp "sel" (Srp_ir.Program.Init_ints [| 5L |]);
  let _, expected, _ = Srp_profile.Interp.run_program refp in
  ignore (Promote.run ~config:(Config.alat_cascade ~profile) prog);
  let _, got, c = run_on_machine prog in
  Alcotest.(check string) "recovered output" expected got;
  Alcotest.(check bool) "recovery routine actually ran" true
    (c.Srp_machine.Counters.check_failures >= 40)

let cascade_suite =
  [ Alcotest.test_case "cascade promotes across pointer checks" `Quick
      test_cascade_promotes_more;
    Alcotest.test_case "cascade correctness (profile holds)" `Quick test_cascade_correct;
    Alcotest.test_case "cascade recovery on mis-speculation" `Quick
      test_cascade_recovery_fires ]

let suite = suite @ cascade_suite
