(* Tests for the points-to analyses, the type filter and mod/ref summaries,
   including the soundness property that every dynamically observed target
   is statically predicted. *)

open Srp_frontend
module Location = Srp_alias.Location
module Manager = Srp_alias.Manager
module Steensgaard = Srp_alias.Steensgaard
module Andersen = Srp_alias.Andersen
module Modref = Srp_alias.Modref

let compile = Lower.compile_source

(* The points-to set of the address temp of the first indirect store in
   [fname]. *)
let first_indirect_store_pts which prog fname =
  let f = Srp_ir.Program.find_func prog fname in
  let result = ref None in
  Srp_ir.Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Srp_ir.Instr.Store { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Reg r; _ }; _ }
        when !result = None ->
        result := Some (which ~func:fname r)
      | _ -> ())
    f;
  match !result with Some s -> s | None -> Alcotest.fail "no indirect store found"

let names_of set =
  Location.Set.elements set |> List.map Location.to_string |> List.sort compare

let two_targets_src = {|
int a; int b; int c;
int* p;
int sel;
int main() {
  if (sel) { p = &a; } else { p = &b; }
  *p = 1;
  c = 2;
  return 0;
}
|}

let test_steensgaard_two_targets () =
  let prog = compile two_targets_src in
  let st = Steensgaard.run prog in
  let pts = first_indirect_store_pts (Steensgaard.points_to_of_temp st) prog "main" in
  Alcotest.(check (list string)) "p -> {a, b}" [ "a"; "b" ] (names_of pts)

let test_andersen_two_targets () =
  let prog = compile two_targets_src in
  let an = Andersen.run prog in
  let pts = first_indirect_store_pts (Andersen.points_to_of_temp an) prog "main" in
  Alcotest.(check (list string)) "p -> {a, b}" [ "a"; "b" ] (names_of pts)

(* Andersen is directional: [q = &a; p = q] must not make q point to what p
   later receives.  Steensgaard unifies and does. *)
let direction_src = {|
int a; int b;
int* p; int* q;
int main() {
  q = &a;
  p = q;
  p = &b;
  *q = 1;
  return 0;
}
|}

let test_andersen_beats_steensgaard () =
  let prog = compile direction_src in
  let an = Andersen.run prog in
  let st = Steensgaard.run prog in
  let a_pts = first_indirect_store_pts (Andersen.points_to_of_temp an) prog "main" in
  let s_pts = first_indirect_store_pts (Steensgaard.points_to_of_temp st) prog "main" in
  Alcotest.(check (list string)) "andersen: q -> {a}" [ "a" ] (names_of a_pts);
  Alcotest.(check bool) "steensgaard unifies: q -> {a, b}" true
    (List.mem "b" (names_of s_pts))

let test_heap_site_naming () =
  let src = {|
struct s { int v; struct s* n; };
struct s* mk1() { struct s* x = malloc(16); return x; }
struct s* mk2() { struct s* x = malloc(16); return x; }
int main() {
  struct s* a = mk1();
  struct s* b = mk2();
  a->v = 1;
  b->v = 2;
  return a->v + b->v;
}
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let f = Srp_ir.Program.find_func prog "main" in
  let sets = ref [] in
  Srp_ir.Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Srp_ir.Instr.Store { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Reg r; _ }; mty; _ } ->
        sets := Manager.points_to mgr ~func:"main" ~mty r :: !sets
      | _ -> ())
    f;
  (match !sets with
  | [ s2; s1 ] ->
    Alcotest.(check int) "a's store: one heap site" 1 (Location.Set.cardinal s1);
    Alcotest.(check int) "b's store: one heap site" 1 (Location.Set.cardinal s2);
    Alcotest.(check bool) "different allocation sites" false (Location.Set.equal s1 s2)
  | _ -> Alcotest.fail "expected two indirect stores")

let test_pointer_table_confuses_both () =
  (* the kernel idiom: a pointer table holding mostly-array pointers plus
     one pointer to a hot scalar forces both analyses to include the
     scalar *)
  let src = {|
int hot;
int arr[8];
int* slots[4];
int main() {
  slots[0] = &arr[0];
  slots[1] = &arr[4];
  slots[2] = &hot;
  int* c = slots[1];
  *c = 5;
  return hot;
}
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let pts =
    first_indirect_store_pts
      (fun ~func r -> Manager.points_to mgr ~func ~mty:Srp_ir.Mem_ty.I64 r)
      prog "main"
  in
  Alcotest.(check bool) "hot is a may-target" true
    (List.mem "hot" (names_of pts));
  Alcotest.(check bool) "arr is a may-target" true (List.mem "arr" (names_of pts))

let test_type_filter () =
  let src = {|
int ivar; double dvar;
double* dp;
int sel;
double scratch[4];
int main() {
  if (sel) { dp = &dvar; } else { dp = &scratch[0]; }
  *dp = 1.5;
  ivar = 3;
  return ivar;
}
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let pts =
    first_indirect_store_pts
      (fun ~func r -> Manager.points_to mgr ~func ~mty:Srp_ir.Mem_ty.F64 r)
      prog "main"
  in
  (* the F64 store must not be assumed to alias the int variable *)
  Alcotest.(check bool) "no int target for an f64 store" false
    (List.mem "ivar" (names_of pts));
  Alcotest.(check bool) "dvar is a target" true (List.mem "dvar" (names_of pts))

let test_modref () =
  let src = {|
int g; int h;
int* p;
void writes_g() { g = 1; }
void writes_both() { writes_g(); h = 2; }
int reads_g() { return g; }
int main() { p = &g; writes_both(); return reads_g(); }
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let mr = Modref.compute mgr prog in
  let names set = names_of set in
  Alcotest.(check (list string)) "writes_g mods g" [ "g" ] (names (Modref.mod_of mr "writes_g"));
  Alcotest.(check (list string)) "writes_both mods g,h" [ "g"; "h" ]
    (names (Modref.mod_of mr "writes_both"));
  Alcotest.(check (list string)) "reads_g refs g" [ "g" ] (names (Modref.ref_of mr "reads_g"));
  Alcotest.(check (list string)) "reads_g mods nothing" [] (names (Modref.mod_of mr "reads_g"))

let test_modref_recursion () =
  let src = {|
int g;
int down(int n) { if (n <= 0) { return 0; } g = g + n; return down(n - 1); }
int main() { return down(3); }
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let mr = Modref.compute mgr prog in
  Alcotest.(check (list string)) "recursive fn mods g" [ "g" ]
    (names_of (Modref.mod_of mr "down"))

let test_modref_private_locals_hidden () =
  let src = {|
int callee() { int local = 5; local = local + 1; return local; }
int main() { return callee(); }
|} in
  let prog = compile src in
  let mgr = Manager.build prog in
  let mr = Modref.compute mgr prog in
  Alcotest.(check (list string)) "private locals invisible" []
    (names_of (Modref.mod_of mr "callee"))

(* Soundness of the static analyses against the dynamic profile: every
   location a site actually touched must be in the static points-to set of
   that site's address. *)
let check_soundness src =
  let prog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program prog in
  let mgr = Manager.build prog in
  List.iter
    (fun f ->
      let fname = Srp_ir.Func.name f in
      Srp_ir.Func.iter_instrs
        (fun _ ins ->
          match ins with
          | Srp_ir.Instr.Store
              { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Reg r; _ }; mty; site; _ }
          | Srp_ir.Instr.Load
              { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Reg r; _ }; mty; site; _ } ->
            let static = Manager.points_to mgr ~func:fname ~mty r in
            let dynamic = Srp_profile.Alias_profile.targets profile site in
            (* ignore stack-frame accesses to locals of *other* frames:
               our kernels do not do this, and location identity for
               frames is per-symbol anyway *)
            if not (Location.Set.subset dynamic static) then
              Alcotest.failf "unsound at %a: dynamic {%a} vs static {%a}"
                Srp_ir.Site.pp site
                (Srp_support.Pp_util.pp_list Location.pp)
                (Location.Set.elements dynamic)
                (Srp_support.Pp_util.pp_list Location.pp)
                (Location.Set.elements static)
          | _ -> ())
        f)
    (Srp_ir.Program.funcs prog)

let test_soundness_vs_profile () =
  check_soundness two_targets_src;
  check_soundness direction_src;
  check_soundness {|
struct n { int v; struct n* next; };
int table[16];
int* cur;
int main() {
  struct n* head = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    struct n* e = malloc(16);
    e->v = i;
    e->next = head;
    head = e;
  }
  cur = &table[3];
  int s = 0;
  while (head != 0) { *cur = s; s = s + head->v; head = head->next; }
  print_int(s);
  return 0;
}
|}

(* Soundness on every built-in kernel (train inputs, the profile run the
   compiler itself uses). *)
let test_soundness_kernels () =
  List.iter
    (fun (w : Srp_driver.Workload.t) ->
      let prog = compile w.Srp_driver.Workload.source in
      Srp_driver.Workload.apply_input prog w.Srp_driver.Workload.train;
      let interp = Srp_profile.Interp.create prog in
      ignore (Srp_profile.Interp.run interp);
      let profile = Srp_profile.Interp.profile interp in
      let mgr = Manager.build prog in
      List.iter
        (fun f ->
          let fname = Srp_ir.Func.name f in
          Srp_ir.Func.iter_instrs
            (fun _ ins ->
              match ins with
              | Srp_ir.Instr.Store
                  { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Reg r; _ }; mty; site; _ } ->
                let static = Manager.points_to mgr ~func:fname ~mty r in
                let dynamic = Srp_profile.Alias_profile.targets profile site in
                if not (Location.Set.subset dynamic static) then
                  Alcotest.failf "%s: unsound store at %a" w.Srp_driver.Workload.name
                    Srp_ir.Site.pp site
              | _ -> ())
            f)
        (Srp_ir.Program.funcs prog))
    (Srp_workloads.Registry.all ())

let suite =
  [ Alcotest.test_case "steensgaard two targets" `Quick test_steensgaard_two_targets;
    Alcotest.test_case "andersen two targets" `Quick test_andersen_two_targets;
    Alcotest.test_case "andersen directional precision" `Quick test_andersen_beats_steensgaard;
    Alcotest.test_case "heap site naming" `Quick test_heap_site_naming;
    Alcotest.test_case "pointer table confuses both" `Quick test_pointer_table_confuses_both;
    Alcotest.test_case "type-based filter" `Quick test_type_filter;
    Alcotest.test_case "mod/ref summaries" `Quick test_modref;
    Alcotest.test_case "mod/ref recursion" `Quick test_modref_recursion;
    Alcotest.test_case "mod/ref hides private locals" `Quick test_modref_private_locals_hidden;
    Alcotest.test_case "static soundness vs dynamic profile" `Quick test_soundness_vs_profile;
    Alcotest.test_case "soundness on all kernels (train)" `Slow test_soundness_kernels ]
