(* Tests for the support library: growable vectors, union-find, the PRNG
   and the table renderer. *)

open Srp_support

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Alcotest.(check int) "get 99" 9801 (Vec.get v 99)

let test_vec_pop_top () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.(check int) "top" 3 (Vec.top v);
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "top after pop" 2 (Vec.top v);
  Alcotest.(check int) "length" 2 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop v);
      ignore (Vec.pop v))

let test_vec_set_iter () =
  let v = Vec.make ~dummy:0 5 1 in
  Vec.set v 2 42;
  let sum = Vec.fold_left ( + ) 0 v in
  Alcotest.(check int) "fold after set" (1 + 1 + 42 + 1 + 1) sum;
  let count = ref 0 in
  Vec.iteri (fun i x -> if i = 2 then count := x) v;
  Alcotest.(check int) "iteri sees set" 42 !count

let test_vec_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Vec.clear v;
  Alcotest.(check bool) "empty after clear" true (Vec.is_empty v);
  Vec.push v 9;
  Alcotest.(check int) "reusable" 9 (Vec.get v 0)

let test_uf_basic () =
  let uf = Union_find.create 10 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~1" true (Union_find.equiv uf 0 1);
  Alcotest.(check bool) "0!~2" false (Union_find.equiv uf 0 2);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "0~3 transitively" true (Union_find.equiv uf 0 3)

let test_uf_grow () =
  let uf = Union_find.create 2 in
  ignore (Union_find.union uf 0 1);
  let r_before = Union_find.find uf 0 in
  Union_find.ensure uf 100;
  (* growth must not change existing representatives *)
  Alcotest.(check int) "rep stable after ensure" r_before (Union_find.find uf 0);
  Alcotest.(check bool) "0~1 still" true (Union_find.equiv uf 0 1);
  ignore (Union_find.union uf 50 99);
  Alcotest.(check bool) "new elements work" true (Union_find.equiv uf 50 99);
  Alcotest.(check bool) "disjoint" false (Union_find.equiv uf 0 99)

let test_uf_classes () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  let classes = Union_find.classes uf in
  let sizes = List.map (fun (_, m) -> List.length m) classes |> List.sort compare in
  Alcotest.(check (list int)) "class sizes" [ 1; 2; 3 ] sizes

(* Property: union-find equivalence is exactly the reflexive-transitive
   closure of the union operations. *)
let prop_uf_closure =
  QCheck.Test.make ~name:"union-find matches naive closure" ~count:200
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* naive: adjacency + floyd-warshall style closure *)
      let reach = Array.make_matrix 20 20 false in
      for i = 0 to 19 do
        reach.(i).(i) <- true
      done;
      List.iter
        (fun (a, b) ->
          reach.(a).(b) <- true;
          reach.(b).(a) <- true)
        pairs;
      for k = 0 to 19 do
        for i = 0 to 19 do
          for j = 0 to 19 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          if Union_find.equiv uf i j <> reach.(i).(j) then ok := false
        done
      done;
      !ok)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of range"
  done;
  let f = Rng.float r in
  if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range"

let test_rng_pick_shuffle () =
  let r = Rng.create 3 in
  let arr = [| 10; 20; 30 |] in
  let v = Rng.pick r arr in
  Alcotest.(check bool) "pick member" true (Array.exists (( = ) v) arr);
  let arr2 = Array.init 20 (fun i -> i) in
  Rng.shuffle r arr2;
  let sorted = Array.copy arr2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 (fun i -> i)) sorted

let test_id_gen () =
  let g = Id_gen.create () in
  Alcotest.(check int) "first" 0 (Id_gen.fresh g);
  Alcotest.(check int) "second" 1 (Id_gen.fresh g);
  Alcotest.(check int) "count" 2 (Id_gen.count g)

let test_render_table () =
  let t =
    Pp_util.render_table ~header:[ "name"; "v" ]
      ~rows:[ [ "a"; "10" ]; [ "bb"; "3" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length t > 0 && String.sub t 0 4 = "name");
  (* columns align: every line has the same length or more *)
  let lines = String.split_on_char '\n' t |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "4 lines (header, rule, 2 rows)" 4 (List.length lines)

let test_pad () =
  Alcotest.(check string) "pad" "ab " (Pp_util.pad 3 "ab");
  Alcotest.(check string) "lpad" " ab" (Pp_util.lpad 3 "ab");
  Alcotest.(check string) "pad overflow" "abcd" (Pp_util.pad 3 "abcd")

let suite =
  [ Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec pop/top" `Quick test_vec_pop_top;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec set/iter" `Quick test_vec_set_iter;
    Alcotest.test_case "vec clear" `Quick test_vec_clear;
    Alcotest.test_case "uf basic" `Quick test_uf_basic;
    Alcotest.test_case "uf grow keeps reps" `Quick test_uf_grow;
    Alcotest.test_case "uf classes" `Quick test_uf_classes;
    QCheck_alcotest.to_alcotest prop_uf_closure;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng pick/shuffle" `Quick test_rng_pick_shuffle;
    Alcotest.test_case "id gen" `Quick test_id_gen;
    Alcotest.test_case "render table" `Quick test_render_table;
    Alcotest.test_case "pad/lpad" `Quick test_pad ]
