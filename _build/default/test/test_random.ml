(* Differential testing over randomly generated MiniC programs: the
   interpreter and the machine simulator must agree at every optimization
   level — including speculative ALAT promotion under a profile collected
   from the program's own run, and under an adversarially *wrong* profile
   (empty profile: everything looks speculative), which exercises check
   mis-speculation recovery. *)

module Config = Srp_core.Config
module Promote = Srp_core.Promote

let interp_reference src =
  let prog = Srp_frontend.Lower.compile_source src in
  let code, out, profile = Srp_profile.Interp.run_program prog in
  (code, out, profile)

let machine_run src config =
  let prog = Srp_frontend.Lower.compile_source src in
  (match config with
  | Some c -> ignore (Promote.run ~config:c prog)
  | None -> ());
  let tgt = Srp_target.Codegen.gen_program prog in
  let code, out, _ = Srp_machine.Machine.run_program ~fuel:50_000_000 tgt in
  (code, out)

let check_level src name expected config =
  let code, out = machine_run src config in
  if out <> snd expected || code <> fst expected then
    Alcotest.failf "%s diverged!\n--- source ---\n%s\n--- expected ---\n%s--- got ---\n%s"
      name src (snd expected) out

let run_seed seed =
  let src = Gen_minic.program ~seed () in
  let code, out, profile = interp_reference src in
  let expected = (code, out) in
  check_level src "O0" expected None;
  check_level src "conservative" expected (Some Config.conservative);
  check_level src "baseline(software)" expected (Some Config.baseline);
  check_level src "alat-heuristic" expected (Some Config.alat_heuristic);
  check_level src "alat-profile" expected (Some (Config.alat ~profile));
  (* adversarial: an empty profile claims nothing ever aliases, so every
     chi becomes speculative; the ALAT checks must repair all of it *)
  let empty = Srp_profile.Alias_profile.create () in
  check_level src "alat-wrong-profile" expected (Some (Config.alat ~profile:empty));
  (* conservative promotion must also be interpretable *)
  let prog = Srp_frontend.Lower.compile_source src in
  ignore (Promote.run ~config:Config.conservative prog);
  let _, out2, _ = Srp_profile.Interp.run_program ~collect_profile:false prog in
  if out2 <> out then Alcotest.failf "conservative interp diverged for seed %d" seed

let test_batch lo hi () =
  for seed = lo to hi do
    run_seed seed
  done

(* A couple of adversarial hand-picked shapes the generator rarely hits. *)
let test_alias_storm () =
  (* every pointer aimed at the same scalar: constant real collisions *)
  let src = {|
int g = 3;
int h = 4;
int* p0; int* p1; int* p2;
int checksum;
int main() {
  p0 = &g; p1 = &g; p2 = &h;
  int i;
  for (i = 0; i < 30; i = i + 1) {
    checksum = checksum + g;
    *p0 = checksum % 13;
    checksum = checksum + g + h;
    *p1 = g + 1;
    *p2 = h + 1;
    checksum = checksum + g - h;
  }
  print_int(checksum); print_int(g); print_int(h);
  return 0;
}
|} in
  let code, out, profile = interp_reference src in
  check_level src "storm O0" (code, out) None;
  check_level src "storm alat" (code, out) (Some (Config.alat ~profile));
  let empty = Srp_profile.Alias_profile.create () in
  check_level src "storm alat wrong-profile" (code, out) (Some (Config.alat ~profile:empty))

let test_self_aliasing_walk () =
  (* a pointer that walks over the array it is also read through *)
  let src = {|
int arr[16];
int* w;
int checksum;
int main() {
  int i;
  for (i = 0; i < 16; i = i + 1) { arr[i] = i; }
  w = &arr[0];
  for (i = 0; i < 15; i = i + 1) {
    checksum = checksum + *w;
    arr[(i + 1) % 16] = *w + 2;
    checksum = checksum + *w;
    w = w + 1;
  }
  print_int(checksum);
  return 0;
}
|} in
  let code, out, profile = interp_reference src in
  check_level src "walk O0" (code, out) None;
  check_level src "walk baseline" (code, out) (Some Config.baseline);
  check_level src "walk alat" (code, out) (Some (Config.alat ~profile))

let suite =
  [ Alcotest.test_case "random differential seeds 1-40" `Quick (test_batch 1 40);
    Alcotest.test_case "random differential seeds 41-80" `Quick (test_batch 41 80);
    Alcotest.test_case "random differential seeds 81-120" `Slow (test_batch 81 120);
    Alcotest.test_case "random differential seeds 121-200" `Slow (test_batch 121 200);
    Alcotest.test_case "alias storm" `Quick test_alias_storm;
    Alcotest.test_case "self-aliasing pointer walk" `Quick test_self_aliasing_walk ]
