(* Tests for the MiniC front end: lexer, parser, typechecker, lowering. *)

open Srp_frontend

let lex_kinds src =
  List.map (fun (l : Lexer.lexed) -> l.Lexer.tok) (Lexer.tokenize src)

let test_lex_basic () =
  let toks = lex_kinds "int x = 42;" in
  Alcotest.(check int) "token count (incl. eof)" 6 (List.length toks);
  (match toks with
  | [ Lexer.KW_INT; Lexer.IDENT "x"; Lexer.EQ; Lexer.INT_LIT 42L; Lexer.SEMI; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream")

let test_lex_operators () =
  let toks = lex_kinds "a->b <= c >> 2 && !d" in
  Alcotest.(check bool) "has arrow" true (List.mem Lexer.ARROW toks);
  Alcotest.(check bool) "has le" true (List.mem Lexer.LE toks);
  Alcotest.(check bool) "has shr" true (List.mem Lexer.SHR toks);
  Alcotest.(check bool) "has ampamp" true (List.mem Lexer.AMPAMP toks);
  Alcotest.(check bool) "has bang" true (List.mem Lexer.BANG toks)

let test_lex_floats () =
  match lex_kinds "3.5 1.0e3 2." with
  | [ Lexer.FLOAT_LIT a; Lexer.FLOAT_LIT b; Lexer.FLOAT_LIT c; Lexer.EOF ] ->
    Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
    Alcotest.(check (float 1e-9)) "1e3" 1000.0 b;
    Alcotest.(check (float 1e-9)) "2." 2.0 c
  | _ -> Alcotest.fail "expected three float literals"

let test_lex_comments () =
  let toks = lex_kinds "a // line\n /* block\n comment */ b" in
  Alcotest.(check int) "comments skipped" 3 (List.length toks)

let test_lex_error_pos () =
  try
    ignore (Lexer.tokenize "int x;\n  @");
    Alcotest.fail "expected lex error"
  with Lexer.Lex_error (_, pos) ->
    Alcotest.(check int) "line" 2 pos.Ast.line;
    Alcotest.(check int) "col" 3 pos.Ast.col

let parse_ok src = ignore (Parser.parse_program src)

let parse_fails src =
  try
    ignore (Parser.parse_program src);
    false
  with Parser.Parse_error _ -> true

let test_parse_struct () =
  parse_ok "struct s { int a; double b; struct s* next; }; int main() { return 0; }"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3): check through evaluation *)
  let src = "int main() { print_int(1 + 2 * 3); print_int((1 + 2) * 3); return 0; }" in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "precedence" "7\n9\n" out

let test_parse_errors () =
  Alcotest.(check bool) "missing semi" true (parse_fails "int main() { return 0 }");
  Alcotest.(check bool) "unbalanced" true (parse_fails "int main() { if (1 { } return 0; }");
  Alcotest.(check bool) "bad toplevel" true (parse_fails "return 3;")

let type_fails src =
  try
    ignore (Typecheck.check_program (Parser.parse_program src));
    false
  with Typecheck.Type_error _ -> true

let test_type_errors () =
  Alcotest.(check bool) "unknown var" true (type_fails "int main() { return y; }");
  Alcotest.(check bool) "unknown func" true (type_fails "int main() { return f(); }");
  Alcotest.(check bool) "arity" true
    (type_fails "int f(int a) { return a; } int main() { return f(1, 2); }");
  Alcotest.(check bool) "deref int" true (type_fails "int main() { int x; return *x; }");
  Alcotest.(check bool) "field on int" true (type_fails "int main() { int x; return x.f; }");
  Alcotest.(check bool) "unknown struct value" true
    (type_fails "struct t g; int main() { return 0; }");
  Alcotest.(check bool) "unknown field" true
    (type_fails "struct s { int a; }; struct s* p; int main() { return p->b; }");
  Alcotest.(check bool) "void variable" true (type_fails "int main() { void v; return 0; }");
  Alcotest.(check bool) "dup variable" true
    (type_fails "int main() { int x; int x; return 0; }");
  Alcotest.(check bool) "return value from void" true
    (type_fails "void f() { return 3; } int main() { return 0; }");
  Alcotest.(check bool) "aggregate assign" true
    (type_fails "struct s { int a; }; struct s g; struct s h; int main() { g = h; return 0; }")

let test_type_shadowing () =
  (* inner scopes may shadow; unique names keep them apart *)
  let src = {|
int main() {
  int x = 1;
  if (x) { int x = 2; print_int(x); }
  print_int(x);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "shadowing" "2\n1\n" out

let test_implicit_conversions () =
  let src = {|
double d;
int main() {
  d = 3;              // int -> double
  int i = 7.9;        // double -> int (truncation)
  print_float(d + 1); // int literal promoted
  print_int(i);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "conversions" "4.000000\n7\n" out

let test_struct_layout () =
  let env = Struct_env.create () in
  Struct_env.add env
    { Ast.sname = "inner"; sfields = [ (Ast.Tint, "a"); (Ast.Tdouble, "b") ];
      spos = Ast.no_pos };
  Struct_env.add env
    { Ast.sname = "outer";
      sfields =
        [ (Ast.Tint, "x"); (Ast.Tstruct "inner", "in_"); (Ast.Tarr (Ast.Tint, 4), "arr") ];
      spos = Ast.no_pos };
  Alcotest.(check int) "inner size" 16 (Struct_env.sizeof env Ast.no_pos (Ast.Tstruct "inner"));
  Alcotest.(check int) "outer size" (8 + 16 + 32)
    (Struct_env.sizeof env Ast.no_pos (Ast.Tstruct "outer"));
  let f = Struct_env.field env Ast.no_pos "outer" "arr" in
  Alcotest.(check int) "arr offset" 24 f.Struct_env.f_offset

let test_lowering_memory_form () =
  (* lowering must keep every user variable in memory: loads/stores, no
     cross-statement caching in temps *)
  let src = "int g; int main() { g = 1; g = g + 1; g = g + 1; return g; }" in
  let prog = Lower.compile_source src in
  let f = Srp_ir.Program.find_func prog "main" in
  let loads = ref 0 and stores = ref 0 in
  Srp_ir.Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Srp_ir.Instr.Load _ -> incr loads
      | Srp_ir.Instr.Store _ -> incr stores
      | _ -> ())
    f;
  Alcotest.(check int) "three loads of g (two adds + return)" 3 !loads;
  Alcotest.(check int) "three stores" 3 !stores

let test_lowering_verifies () =
  (* a grab-bag program stressing all syntax; must pass the IR verifier
     (compile_source runs it) and round-trip through the interpreter *)
  let src = {|
struct pt { int x; int y; };
struct pt grid[4];
int vals[8] = { 1, 2, 3, 4, 5, 6, 7, 8 };
double dd = 0.25;
int g = 5;

int helper(int a, double b) {
  if (a > 3 && b > 0.1) { return a * 2; }
  return a == 0 ? 7 : -a;
}

int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 4; i = i + 1) {
    grid[i].x = vals[i];
    grid[i].y = vals[i + 4];
  }
  i = 0;
  while (i < 4) {
    acc += grid[i].x * grid[i].y;
    i = i + 1;
    if (acc > 100) { break; }
  }
  do { acc = acc - 1; } while (acc > 60);
  acc = acc << 1 >> 1;
  acc = acc ^ 5 | 2 & 3;
  print_int(helper(g, dd));
  print_int(acc);
  print_int(~0 + vals[g % 8]);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let code, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check int64) "exit" 0L code;
  Alcotest.(check bool) "has output" true (String.length out > 0)

let test_short_circuit () =
  (* && must not evaluate its rhs when lhs is false: the rhs would divide
     by zero *)
  let src = {|
int z;
int main() {
  int ok = z != 0 && 10 / z > 1;
  print_int(ok);
  int also = z == 0 || 10 / z > 1;
  print_int(also);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "short circuit" "0\n1\n" out

let test_global_initializers () =
  let src = {|
int a = 2 + 3 * 4;
int arr[3] = { 10, 20, 30 };
double d = 1.5 * 2.0;
int main() { print_int(a); print_int(arr[1]); print_float(d); return 0; }
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "global inits" "14\n20\n3.000000\n" out

let test_pointer_arithmetic () =
  let src = {|
int arr[10];
int main() {
  int i;
  for (i = 0; i < 10; i = i + 1) { arr[i] = i * i; }
  int* p = &arr[2];
  print_int(*p);
  print_int(*(p + 3));
  int* q = p + 1;
  print_int(*q);
  return 0;
}
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "ptr arith (scaled)" "4\n25\n9\n" out

let test_recursion () =
  let src = {|
int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
int main() { print_int(fib(12)); return 0; }
|} in
  let prog = Lower.compile_source src in
  let _, out, _ = Srp_profile.Interp.run_program prog in
  Alcotest.(check string) "fib 12" "144\n" out

let suite =
  [ Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex floats" `Quick test_lex_floats;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex error position" `Quick test_lex_error_pos;
    Alcotest.test_case "parse struct" `Quick test_parse_struct;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "shadowing" `Quick test_type_shadowing;
    Alcotest.test_case "implicit conversions" `Quick test_implicit_conversions;
    Alcotest.test_case "struct layout" `Quick test_struct_layout;
    Alcotest.test_case "lowering keeps variables in memory" `Quick test_lowering_memory_form;
    Alcotest.test_case "lowering verifies (grab bag)" `Quick test_lowering_verifies;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "global initializers" `Quick test_global_initializers;
    Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arithmetic;
    Alcotest.test_case "recursion" `Quick test_recursion ]
