(* Tests for the backend: register allocation invariants, code generation,
   and the assembly shapes of the paper's figures. *)

open Srp_frontend
module Insn = Srp_target.Insn
module Codegen = Srp_target.Codegen
module Regalloc = Srp_target.Regalloc

let compile = Lower.compile_source

let gen src =
  let prog = compile src in
  (prog, Codegen.gen_program prog)

let gen_alat src =
  let pprog = compile src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = compile src in
  ignore (Srp_core.Promote.run ~config:(Srp_core.Config.alat ~profile) prog);
  (prog, Codegen.gen_program prog)

let func (tgt : Insn.program) name = Hashtbl.find tgt.Insn.funcs name

let count_insns f pred = Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 f.Insn.code

let test_codegen_labels_resolve () =
  let _, tgt =
    gen {|
int main() {
  int i; int s = 0;
  for (i = 0; i < 10; i = i + 1) { if (i % 2) { s = s + i; } }
  return s;
}
|}
  in
  let f = func tgt "main" in
  Array.iter
    (fun ins ->
      match ins with
      | Insn.Br { target } ->
        if target < 0 || target >= Array.length f.Insn.code then
          Alcotest.fail "unresolved branch target"
      | Insn.Brc { ifso; ifnot; _ } ->
        if ifso < 0 || ifso >= Array.length f.Insn.code then Alcotest.fail "bad ifso";
        if ifnot < 0 || ifnot >= Array.length f.Insn.code then Alcotest.fail "bad ifnot"
      | _ -> ())
    f.Insn.code

let test_codegen_register_bounds () =
  let _, tgt =
    gen {|
double mix(double a, int b) { return a * b; }
int main() {
  int x = 3;
  double d = mix(1.5, x);
  print_float(d);
  return 0;
}
|}
  in
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (fun ins ->
          let check_reg r = if r < 0 || r >= f.Insn.nregs then Alcotest.fail "reg out of bounds" in
          let check_src = function
            | Insn.SReg r -> check_reg r
            | Insn.SFrg fr -> if fr < 0 || fr >= f.Insn.nfregs then Alcotest.fail "freg oob"
            | Insn.SImm _ | Insn.SFim _ -> ()
          in
          match ins with
          | Insn.Alu { dst; a; b; _ } ->
            check_reg dst;
            check_src a;
            check_src b
          | Insn.Ld { dst = Insn.DInt r; base; _ } ->
            check_reg r;
            check_reg base
          | Insn.St { src; base; _ } ->
            check_src src;
            check_reg base
          | _ -> ())
        f.Insn.code)
    tgt.Insn.funcs

let test_regalloc_alat_dedicated () =
  (* ALAT-involved temps must not share registers with anything else:
     check by confirming the check's register equals its arming load's
     register and is written by no other instruction class *)
  let _, tgt =
    gen_alat {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let check_regs = ref [] in
  Array.iter
    (fun ins ->
      match ins with
      | Insn.Ld { kind = Insn.K_ld_c _; dst = Insn.DInt r; _ } -> check_regs := r :: !check_regs
      | _ -> ())
    f.Insn.code;
  Alcotest.(check bool) "at least one check" true (!check_regs <> []);
  List.iter
    (fun r ->
      (* the only writers of a check register are loads of the same cell *)
      Array.iter
        (fun ins ->
          match ins with
          | Insn.Alu { dst; _ } when dst = r -> Alcotest.fail "ALAT register clobbered by ALU"
          | Insn.Mov { dst = Insn.DInt d; _ } when d = r ->
            Alcotest.fail "ALAT register clobbered by mov"
          | _ -> ())
        f.Insn.code)
    !check_regs

let test_figure1_assembly_shape () =
  let _, tgt =
    gen_alat {|
int a; int b;
int* q;
int sel;
int main() {
  if (sel) { q = &a; } else { q = &b; }
  a = 5;
  int x = a;
  *q = 9;
  int y = a;
  print_int(x + y);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let has_ld_a = count_insns f (function Insn.Ld { kind = Insn.K_ld_a; _ } -> true | _ -> false) in
  let has_ld_c =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "ld.a present (arming)" true (has_ld_a >= 1);
  Alcotest.(check bool) "ld.c present (check)" true (has_ld_c >= 1)

let test_figure3_assembly_shape () =
  let _, tgt =
    gen_alat {|
int p; int b;
int* q;
int sel;
int n;
int main() {
  int i;
  int r = 0;
  if (sel == 7) { q = &p; } else { q = &b; }
  p = 11;
  n = 200;
  for (i = 0; i < n; i = i + 1) {
    *q = i;
    r = r + p + 1;
  }
  print_int(r);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let speculative_loads =
    count_insns f (function
      | Insn.Ld { kind = Insn.K_ld_sa | Insn.K_ld_a; _ } -> true
      | _ -> false)
  in
  let checks =
    count_insns f (function Insn.Ld { kind = Insn.K_ld_c _; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "hoisted speculative load" true (speculative_loads >= 1);
  Alcotest.(check bool) "in-loop check" true (checks >= 1)

let test_addr_hoisting () =
  (* a global referenced many times should be materialized once in the
     prologue, not per use *)
  let _, tgt =
    gen {|
int g;
int main() {
  g = 1; g = g + 1; g = g + 2; g = g + 3; g = g + 4;
  print_int(g);
  return 0;
}
|}
  in
  let f = func tgt "main" in
  let gaddrs = count_insns f (function Insn.Gaddr _ -> true | _ -> false) in
  Alcotest.(check bool) "address hoisted (few Gaddr)" true (gaddrs <= 2)

let test_formal_spill_prologue () =
  let _, tgt = gen {|
int f(int a, double b) { return a + b; }
int main() { return f(1, 2.5); }
|} in
  let f = func tgt "f" in
  (* prologue stores both formals to memory before anything else loads *)
  let first_loads = ref 0 and stores_before = ref 0 in
  (try
     Array.iter
       (fun ins ->
         match ins with
         | Insn.St _ -> incr stores_before
         | Insn.Ld _ -> raise Exit
         | _ -> ())
       f.Insn.code
   with Exit -> ());
  ignore !first_loads;
  Alcotest.(check bool) "formals spilled in prologue" true (!stores_before >= 2)

let test_frame_layout_disjoint () =
  let prog, tgt = gen {|
int f(int a) { int x; int y[4]; x = a; y[0] = x; return y[0]; }
int main() { return f(5); }
|} in
  ignore prog;
  let f = func tgt "f" in
  let slots = Hashtbl.fold (fun _ off acc -> off :: acc) f.Insn.slot_of_sym [] in
  let sorted = List.sort compare slots in
  let rec no_overlap = function
    | a :: (b :: _ as rest) -> a <> b && no_overlap rest
    | _ -> true
  in
  Alcotest.(check bool) "distinct slots" true (no_overlap sorted);
  Alcotest.(check bool) "frame covers slots" true
    (List.for_all (fun o -> o < f.Insn.frame_bytes) slots)

let suite =
  [ Alcotest.test_case "labels resolve" `Quick test_codegen_labels_resolve;
    Alcotest.test_case "register bounds" `Quick test_codegen_register_bounds;
    Alcotest.test_case "ALAT registers dedicated" `Quick test_regalloc_alat_dedicated;
    Alcotest.test_case "figure 1 assembly shape" `Quick test_figure1_assembly_shape;
    Alcotest.test_case "figure 3 assembly shape" `Quick test_figure3_assembly_shape;
    Alcotest.test_case "address hoisting" `Quick test_addr_hoisting;
    Alcotest.test_case "formal spill prologue" `Quick test_formal_spill_prologue;
    Alcotest.test_case "frame layout disjoint" `Quick test_frame_layout_disjoint ]
