(* Unit tests for the in-between passes (copy propagation, dead-check
   cleanup) and for the report/input-generation utilities. *)

open Srp_ir
module Config = Srp_core.Config

(* Build a one-block function directly. *)
let mk_block_func instrs term =
  let temp_gen = Temp.Gen.create () in
  let label_gen = Label.Gen.create () in
  let f = Func.create ~name:"f" ~formals:[] ~ret_mty:None ~temp_gen ~label_gen in
  let blk = Func.find_block f (Func.entry f) in
  List.iter (Block.append blk) instrs;
  blk.Block.term <- term;
  (f, temp_gen)

let count_instrs f pred =
  let n = ref 0 in
  Func.iter_instrs (fun _ i -> if pred i then incr n) f;
  !n

let test_copy_prop_chain () =
  (* t0 = 5; t1 = t0; t2 = t1; ret t2  ==>  ret 5 *)
  let tg = Temp.Gen.create () in
  let t0 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t1 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t2 = Temp.Gen.fresh tg Mem_ty.I64 in
  let f, _ =
    mk_block_func
      [ Instr.Mov { dst = t0; src = Ops.Int 5L };
        Instr.Mov { dst = t1; src = Ops.Temp t0 };
        Instr.Mov { dst = t2; src = Ops.Temp t1 } ]
      (Instr.Ret (Some (Ops.Temp t2)))
  in
  Srp_core.Copy_prop.run f;
  let blk = List.hd (Func.blocks f) in
  (match blk.Block.term with
  | Instr.Ret (Some (Ops.Int 5L)) -> ()
  | t -> Alcotest.failf "expected ret 5, got %a" Instr.pp_terminator t)

let test_copy_prop_addr_folding () =
  (* t0 = &g; load [t0] becomes a direct load of g *)
  let sym_gen = Symbol.Gen.create () in
  let g =
    Symbol.Gen.fresh sym_gen ~name:"g" ~storage:Symbol.Global ~mty:Mem_ty.I64
      ~size_bytes:8 ~is_scalar:true
  in
  let tg = Temp.Gen.create () in
  let t0 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t1 = Temp.Gen.fresh tg Mem_ty.I64 in
  let f, _ =
    mk_block_func
      [ Instr.Mov { dst = t0; src = Ops.Sym_addr g };
        Instr.Load
          { dst = t1; addr = Ops.addr_of_temp t0; mty = Mem_ty.I64; site = 0;
            promo = Instr.P_none } ]
      (Instr.Ret (Some (Ops.Temp t1)))
  in
  Srp_core.Copy_prop.run f;
  let direct =
    count_instrs f (function
      | Instr.Load { addr = { Ops.base = Ops.Sym s; _ }; _ } -> Symbol.equal s g
      | _ -> false)
  in
  Alcotest.(check int) "load folded to direct" 1 direct

let test_copy_prop_multi_def_blocked () =
  (* t0 has two defs: its copies must NOT propagate across the redef *)
  let tg = Temp.Gen.create () in
  let t0 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t1 = Temp.Gen.fresh tg Mem_ty.I64 in
  let f, _ =
    mk_block_func
      [ Instr.Mov { dst = t0; src = Ops.Int 1L };
        Instr.Mov { dst = t1; src = Ops.Temp t0 };
        Instr.Mov { dst = t0; src = Ops.Int 2L } ]
      (Instr.Ret (Some (Ops.Temp t1)))
  in
  f.Func.ssa_temps <- false;
  Srp_core.Copy_prop.run f;
  (* global copy-prop must not turn [ret t1] into [ret t0]: t0 is multi-def.
     The local pass may legally fold t1 -> 1 (position-scoped). *)
  (match (List.hd (Func.blocks f)).Block.term with
  | Instr.Ret (Some (Ops.Temp t)) ->
    Alcotest.(check bool) "not rebound to the multi-def temp" false (Temp.equal t t0)
  | Instr.Ret (Some (Ops.Int 1L)) -> ()
  | t -> Alcotest.failf "unexpected terminator %a" Instr.pp_terminator t)

let test_local_copy_prop_scoped () =
  (* within a block, an alias dies when its source is redefined *)
  let tg = Temp.Gen.create () in
  let t0 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t1 = Temp.Gen.fresh tg Mem_ty.I64 in
  let t2 = Temp.Gen.fresh tg Mem_ty.I64 in
  let f, _ =
    mk_block_func
      [ Instr.Mov { dst = t1; src = Ops.Temp t0 }; (* alias t1 -> t0 *)
        Instr.Mov { dst = t0; src = Ops.Int 9L }; (* t0 redefined: alias dead *)
        Instr.Bin { dst = t2; op = Ops.Add; a = Ops.Temp t1; b = Ops.Int 0L } ]
      (Instr.Ret (Some (Ops.Temp t2)))
  in
  f.Func.ssa_temps <- false;
  Srp_core.Copy_prop.run_local f;
  let uses_t0_after_redef =
    count_instrs f (function
      | Instr.Bin { a = Ops.Temp t; _ } -> Temp.equal t t0
      | _ -> false)
  in
  Alcotest.(check int) "stale alias not applied" 0 uses_t0_after_redef

let test_cleanup_removes_dead_mov () =
  let tg = Temp.Gen.create () in
  let t0 = Temp.Gen.fresh tg Mem_ty.I64 in
  let f, _ =
    mk_block_func [ Instr.Mov { dst = t0; src = Ops.Int 5L } ] (Instr.Ret None)
  in
  f.Func.ssa_temps <- false;
  Srp_core.Check_cleanup.run f;
  Alcotest.(check int) "dead mov removed" 0
    (count_instrs f (function Instr.Mov _ -> true | _ -> false))

let test_cleanup_keeps_stores_and_calls () =
  let sym_gen = Symbol.Gen.create () in
  let g =
    Symbol.Gen.fresh sym_gen ~name:"g" ~storage:Symbol.Global ~mty:Mem_ty.I64
      ~size_bytes:8 ~is_scalar:true
  in
  let f, _ =
    mk_block_func
      [ Instr.Store { src = Ops.Int 1L; addr = Ops.addr_of_sym g; mty = Mem_ty.I64; site = 0 };
        Instr.Call { dst = None; callee = "print_int"; args = [ Ops.Int 1L ]; site = 1 } ]
      (Instr.Ret None)
  in
  f.Func.ssa_temps <- false;
  Srp_core.Check_cleanup.run f;
  Alcotest.(check int) "store kept" 1
    (count_instrs f (function Instr.Store _ -> true | _ -> false));
  Alcotest.(check int) "call kept" 1
    (count_instrs f (function Instr.Call _ -> true | _ -> false))

let test_cleanup_check_chain () =
  (* a chain of checks with no final reader dies entirely; with a reader,
     the last check (and the temp's liveness) keeps what is needed *)
  let tg = Temp.Gen.create () in
  let te = Temp.Gen.fresh tg Mem_ty.I64 in
  let sym_gen = Symbol.Gen.create () in
  let g =
    Symbol.Gen.fresh sym_gen ~name:"g" ~storage:Symbol.Global ~mty:Mem_ty.I64
      ~size_bytes:8 ~is_scalar:true
  in
  let chk () =
    Instr.Check
      { dst = te; addr = Ops.addr_of_sym g; mty = Mem_ty.I64; site = 9;
        kind = Instr.C_ld_c { clear = false }; recovery = [] }
  in
  let f, _ = mk_block_func [ chk (); chk (); chk () ] (Instr.Ret None) in
  f.Func.ssa_temps <- false;
  Srp_core.Check_cleanup.run f;
  Alcotest.(check int) "unread checks all die" 0
    (count_instrs f (function Instr.Check _ -> true | _ -> false));
  let f2, _ = mk_block_func [ chk (); chk () ] (Instr.Ret (Some (Ops.Temp te))) in
  f2.Func.ssa_temps <- false;
  Srp_core.Check_cleanup.run f2;
  Alcotest.(check bool) "a consumed check survives" true
    (count_instrs f2 (function Instr.Check _ -> true | _ -> false) >= 1)

(* --- report derivations --- *)

let test_report_math () =
  let base = Srp_machine.Counters.create () in
  let spec = Srp_machine.Counters.create () in
  base.Srp_machine.Counters.cycles <- 1000;
  spec.Srp_machine.Counters.cycles <- 930;
  base.Srp_machine.Counters.loads_retired <- 400;
  spec.Srp_machine.Counters.loads_retired <- 300;
  base.Srp_machine.Counters.data_access_cycles <- 200;
  spec.Srp_machine.Counters.data_access_cycles <- 150;
  let r = Srp_driver.Report.figure8_row ~name:"x" ~base ~spec in
  Alcotest.(check (float 1e-9)) "cycles red" 7.0 r.Srp_driver.Report.cpu_cycles_red;
  Alcotest.(check (float 1e-9)) "loads red" 25.0 r.Srp_driver.Report.loads_red;
  spec.Srp_machine.Counters.checks_retired <- 60;
  spec.Srp_machine.Counters.check_failures <- 3;
  let r10 = Srp_driver.Report.figure10_row ~name:"x" ~spec in
  Alcotest.(check (float 1e-9)) "checks/loads" 20.0 r10.Srp_driver.Report.checks_per_load;
  Alcotest.(check (float 1e-9)) "misspec" 5.0 r10.Srp_driver.Report.misspec_ratio;
  base.Srp_machine.Counters.rse_cycles <- 100;
  spec.Srp_machine.Counters.rse_cycles <- 120;
  let r11 = Srp_driver.Report.figure11_row ~name:"x" ~base ~spec in
  Alcotest.(check (float 1e-9)) "rse increase" 20.0 r11.Srp_driver.Report.rse_increase

(* --- workload input generators --- *)

let test_input_generators () =
  (match Srp_workloads.Input_gen.ints ~seed:1 ~n:100 ~lo:(-5) ~hi:5 with
  | Program.Init_ints a ->
    Alcotest.(check int) "length" 100 (Array.length a);
    Array.iter
      (fun v ->
        if Int64.compare v (-5L) < 0 || Int64.compare v 5L > 0 then
          Alcotest.fail "int out of range")
      a
  | _ -> Alcotest.fail "expected ints");
  (match Srp_workloads.Input_gen.flags ~seed:2 ~n:1000 ~p:0.25 with
  | Program.Init_ints a ->
    let ones = Array.fold_left (fun acc v -> if v = 1L then acc + 1 else acc) 0 a in
    Alcotest.(check bool) "flag rate plausible" true (ones > 150 && ones < 350)
  | _ -> Alcotest.fail "expected flags");
  (* determinism: same seed, same data *)
  let a = Srp_workloads.Input_gen.floats ~seed:3 ~n:10 ~lo:0.0 ~hi:1.0 in
  let b = Srp_workloads.Input_gen.floats ~seed:3 ~n:10 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_workload_registry () =
  Alcotest.(check int) "ten kernels" 10 (List.length (Srp_workloads.Registry.all ()));
  List.iter
    (fun name ->
      let w = Srp_workloads.Registry.find name in
      Alcotest.(check string) "find by name" name w.Srp_driver.Workload.name;
      (* every kernel's source must compile *)
      ignore (Srp_frontend.Lower.compile_source w.Srp_driver.Workload.source))
    (Srp_workloads.Registry.names ())

let suite =
  [ Alcotest.test_case "copy prop chains" `Quick test_copy_prop_chain;
    Alcotest.test_case "copy prop folds addresses" `Quick test_copy_prop_addr_folding;
    Alcotest.test_case "copy prop blocked by multi-def" `Quick test_copy_prop_multi_def_blocked;
    Alcotest.test_case "local copy prop is position-scoped" `Quick test_local_copy_prop_scoped;
    Alcotest.test_case "cleanup removes dead movs" `Quick test_cleanup_removes_dead_mov;
    Alcotest.test_case "cleanup keeps effects" `Quick test_cleanup_keeps_stores_and_calls;
    Alcotest.test_case "cleanup check chains" `Quick test_cleanup_check_chain;
    Alcotest.test_case "report derivations" `Quick test_report_math;
    Alcotest.test_case "input generators" `Quick test_input_generators;
    Alcotest.test_case "workload registry" `Quick test_workload_registry ]
