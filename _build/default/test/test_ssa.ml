(* Tests for the speculative memory-SSA layer: chi/mu annotation, the
   speculation policy, SSA construction and its verifier. *)

open Srp_frontend
module Location = Srp_alias.Location
module Manager = Srp_alias.Manager
module Modref = Srp_alias.Modref
module Spec_policy = Srp_ssa.Spec_policy
module Annot = Srp_ssa.Annot
module Ssa_form = Srp_ssa.Ssa_form

let figure5_src = {|
int a; int b;
int* p;
int sel;
int main() {
  if (sel == 1) { p = &a; } else { p = &b; }
  a = 41;
  int x = a;
  *p = 7;
  int y = a;
  print_int(x + y);
  return 0;
}
|}

let build_ssa ?profile src =
  let prog = Lower.compile_source src in
  let mgr = Manager.build prog in
  let modref = Modref.compute mgr prog in
  let mode =
    match profile with
    | Some p -> Spec_policy.Profile p
    | None -> Spec_policy.Never
  in
  let policy = Spec_policy.create prog mode in
  let f = Srp_ir.Program.find_func prog "main" in
  let annot = Annot.compute ~mgr ~modref ~policy f in
  (prog, annot, Ssa_form.build ~annot f)

(* collect all chi effects across the function *)
let all_chis (f : Srp_ir.Func.t) (annot : Annot.t) =
  let acc = ref [] in
  List.iter
    (fun blk ->
      List.iteri
        (fun idx _ ->
          let a = Annot.get annot (Srp_ir.Block.label blk, idx) in
          acc := a.Annot.chi @ !acc)
        blk.Srp_ir.Block.instrs)
    (Srp_ir.Func.blocks f);
  !acc

let test_chi_on_both_targets () =
  let prog, annot, _ = build_ssa figure5_src in
  let f = Srp_ir.Program.find_func prog "main" in
  let chis = all_chis f annot in
  let names = List.map (fun (e : Annot.eff) -> Location.to_string e.Annot.loc) chis in
  Alcotest.(check bool) "chi on a" true (List.mem "a" names);
  Alcotest.(check bool) "chi on b" true (List.mem "b" names);
  (* without a profile nothing is speculative *)
  Alcotest.(check bool) "no speculative chi" false
    (List.exists (fun (e : Annot.eff) -> e.Annot.spec) chis)

let test_chi_speculative_with_profile () =
  (* train with sel = 0: p only ever points at b -> chi on a becomes
     speculative, chi on b stays real (the paper's Figure 5) *)
  let pprog = Lower.compile_source figure5_src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog, annot, _ = build_ssa ~profile figure5_src in
  let f = Srp_ir.Program.find_func prog "main" in
  let chis = all_chis f annot in
  let spec_of name =
    List.filter_map
      (fun (e : Annot.eff) ->
        if Location.to_string e.Annot.loc = name then Some e.Annot.spec else None)
      chis
  in
  Alcotest.(check (list bool)) "chi_s on a" [ true ] (spec_of "a");
  Alcotest.(check (list bool)) "real chi on b" [ false ] (spec_of "b")

let test_ssa_versions () =
  let _, _, ssa = build_ssa figure5_src in
  Srp_ssa.Ssa_verify.check ssa;
  (* the two loads of a must see different versions (the chi renumbered) *)
  let versions = ref [] in
  let cfg = ssa.Ssa_form.cfg in
  for node = 0 to Srp_ir.Cfg.num_nodes cfg - 1 do
    let blk = Srp_ir.Cfg.block cfg node in
    List.iteri
      (fun idx ins ->
        match ins with
        | Srp_ir.Instr.Load { addr = { Srp_ir.Ops.base = Srp_ir.Ops.Sym s; _ }; _ }
          when Srp_ir.Symbol.name s = "a" -> (
          match (Ssa_form.instr_ssa ssa (Srp_ir.Block.label blk, idx)).Ssa_form.use with
          | Some (_, v) -> versions := v :: !versions
          | None -> ())
        | _ -> ())
      blk.Srp_ir.Block.instrs
  done;
  match List.sort_uniq compare !versions with
  | [ _; _ ] -> () (* two distinct versions: the chi intervened *)
  | vs -> Alcotest.failf "expected 2 distinct versions of a, got %d" (List.length vs)

let test_ssa_phi_at_merge () =
  let _, _, ssa = build_ssa figure5_src in
  (* p is stored in both arms: its versions must merge through a phi *)
  let has_p_phi = ref false in
  for node = 0 to Srp_ir.Cfg.num_nodes ssa.Ssa_form.cfg - 1 do
    List.iter
      (fun (p : Ssa_form.phi) ->
        if Location.to_string p.Ssa_form.phi_loc = "p" then has_p_phi := true)
      (Ssa_form.phis_of_node ssa node)
  done;
  Alcotest.(check bool) "phi for p at the merge" true !has_p_phi

let test_ssa_loop_phi () =
  let src = {|
int g;
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) { g = g + 1; }
  print_int(g);
  return 0;
}
|} in
  let _, _, ssa = build_ssa src in
  Srp_ssa.Ssa_verify.check ssa;
  let phi_locs = ref [] in
  for node = 0 to Srp_ir.Cfg.num_nodes ssa.Ssa_form.cfg - 1 do
    List.iter
      (fun (p : Ssa_form.phi) ->
        phi_locs := Location.to_string p.Ssa_form.phi_loc :: !phi_locs)
      (Ssa_form.phis_of_node ssa node)
  done;
  Alcotest.(check bool) "loop phi for g" true (List.mem "g" !phi_locs);
  Alcotest.(check bool) "loop phi for i" true (List.mem "i.1" !phi_locs)

let test_mu_on_indirect_load () =
  let src = {|
int a; int b;
int* p;
int sel;
int main() {
  if (sel == 1) { p = &a; } else { p = &b; }
  int v = *p;
  return v;
}
|} in
  let prog = Lower.compile_source src in
  let mgr = Manager.build prog in
  let modref = Modref.compute mgr prog in
  let policy = Spec_policy.create prog Spec_policy.Never in
  let f = Srp_ir.Program.find_func prog "main" in
  let annot = Annot.compute ~mgr ~modref ~policy f in
  let mus = ref [] in
  List.iter
    (fun blk ->
      List.iteri
        (fun idx _ ->
          let a = Annot.get annot (Srp_ir.Block.label blk, idx) in
          mus := a.Annot.mu @ !mus)
        blk.Srp_ir.Block.instrs)
    (Srp_ir.Func.blocks f);
  let names = List.map (fun (e : Annot.eff) -> Location.to_string e.Annot.loc) !mus in
  Alcotest.(check bool) "mu on a" true (List.mem "a" names);
  Alcotest.(check bool) "mu on b" true (List.mem "b" names)

let test_call_chi_from_modref () =
  let src = {|
int g;
void writer() { g = 5; }
int main() { g = 1; writer(); return g; }
|} in
  let prog = Lower.compile_source src in
  let mgr = Manager.build prog in
  let modref = Modref.compute mgr prog in
  let policy = Spec_policy.create prog Spec_policy.Never in
  let f = Srp_ir.Program.find_func prog "main" in
  let annot = Annot.compute ~mgr ~modref ~policy f in
  let chis = all_chis f annot in
  Alcotest.(check bool) "call has chi on g" true
    (List.exists (fun (e : Annot.eff) -> Location.to_string e.Annot.loc = "g") chis)

let test_dyn_mod_speculation () =
  (* a callee whose static mod set includes g but which never dynamically
     touches it: the call's chi on g should be speculative under the
     profile *)
  let src = {|
int g; int scratch;
int* p;
int sel;
void cb() { if (sel == 9) { p = &g; } else { p = &scratch; } *p = 1; }
int main() {
  g = 3;
  cb();
  print_int(g);
  return 0;
}
|} in
  let pprog = Lower.compile_source src in
  let _, _, profile = Srp_profile.Interp.run_program pprog in
  let prog = Lower.compile_source src in
  let mgr = Manager.build prog in
  let modref = Modref.compute mgr prog in
  Alcotest.(check bool) "static mod includes g" true
    (Location.Set.exists
       (fun l -> Location.to_string l = "g")
       (Modref.mod_of modref "cb"));
  let policy = Spec_policy.create prog (Spec_policy.Profile profile) in
  let f = Srp_ir.Program.find_func prog "main" in
  let annot = Annot.compute ~mgr ~modref ~policy f in
  let chis = all_chis f annot in
  let g_spec =
    List.filter_map
      (fun (e : Annot.eff) ->
        if Location.to_string e.Annot.loc = "g" then Some e.Annot.spec else None)
      chis
  in
  Alcotest.(check (list bool)) "call chi_s on g" [ true ] g_spec

let test_ssa_verify_all_kernels () =
  List.iter
    (fun (w : Srp_driver.Workload.t) ->
      let prog = Lower.compile_source w.Srp_driver.Workload.source in
      let mgr = Manager.build prog in
      let modref = Modref.compute mgr prog in
      let policy = Spec_policy.create prog Spec_policy.Heuristic in
      List.iter
        (fun f ->
          let annot = Annot.compute ~mgr ~modref ~policy f in
          let ssa = Ssa_form.build ~annot f in
          Srp_ssa.Ssa_verify.check ssa)
        (Srp_ir.Program.funcs prog))
    (Srp_workloads.Registry.all ())

let suite =
  [ Alcotest.test_case "chi on both may-targets" `Quick test_chi_on_both_targets;
    Alcotest.test_case "chi_s from the profile (Figure 5)" `Quick test_chi_speculative_with_profile;
    Alcotest.test_case "chi renumbers versions" `Quick test_ssa_versions;
    Alcotest.test_case "phi at merges" `Quick test_ssa_phi_at_merge;
    Alcotest.test_case "loop phis" `Quick test_ssa_loop_phi;
    Alcotest.test_case "mu on indirect loads" `Quick test_mu_on_indirect_load;
    Alcotest.test_case "call chi from mod/ref" `Quick test_call_chi_from_modref;
    Alcotest.test_case "dynamic-mod call speculation" `Quick test_dyn_mod_speculation;
    Alcotest.test_case "ssa verifies on all kernels" `Slow test_ssa_verify_all_kernels ]
