(** Union-find with path halving and union by rank, over dense integer
    elements.

    Growable: {!ensure} extends the element universe in place and never
    changes representatives of existing classes — the Steensgaard analysis
    relies on that while it discovers nodes on the fly. *)

type t

val create : int -> t

(** Number of live elements. *)
val size : t -> int

(** Make sure elements [0, n) exist. *)
val ensure : t -> int -> unit

val find : t -> int -> int

(** Merge two classes; returns the surviving representative. *)
val union : t -> int -> int -> int

val equiv : t -> int -> int -> bool

(** All classes as (representative, members) pairs. *)
val classes : t -> (int * int list) list
