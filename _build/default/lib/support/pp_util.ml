(* Small formatting helpers shared by the IR / assembly printers and the
   benchmark report tables. *)

let pp_list ?(sep = ", ") pp_elt ppf xs =
  Fmt.(list ~sep:(fun ppf () -> string ppf sep) pp_elt) ppf xs

let pp_array ?(sep = ", ") pp_elt ppf xs =
  pp_list ~sep pp_elt ppf (Array.to_list xs)

let to_string pp x = Fmt.str "%a" pp x

(* Percentage with one decimal, e.g. [4.3%]. *)
let pp_pct ppf x = Fmt.pf ppf "%.1f%%" x

(* Right-pad [s] to [width] with spaces (for fixed-width report tables). *)
let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

(* Left-pad, for numeric columns. *)
let lpad width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

(* Render a table: header row + data rows, columns auto-sized, first column
   left-aligned, the rest right-aligned.  Used by the bench harness to print
   the per-figure tables. *)
let render_table ~header ~rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let s = if i = 0 then pad widths.(i) cell else lpad widths.(i) cell in
        Buffer.add_string buf s)
      row;
    Buffer.add_char buf '\n'
  in
  render_row header;
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf
