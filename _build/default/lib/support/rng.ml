(* Deterministic splitmix64 PRNG.  All randomness in the project (workload
   input generation, property-test corpora, cache hashing salts) flows
   through explicitly seeded instances so every experiment is
   bit-reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

(* True with probability p. *)
let chance t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
