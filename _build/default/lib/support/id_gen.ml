(* Monotonic id generator.  Each IR entity family (temps, labels, symbols,
   sites, versions) owns one generator so ids are dense and usable as array
   indices. *)

type t = { mutable next : int }

let create ?(start = 0) () = { next = start }

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

let count t = t.next

let reset t = t.next <- 0
