(** Deterministic splitmix64 PRNG.

    All randomness in the project (workload input generation, test
    corpora) flows through explicitly seeded instances, so every
    experiment and every test is reproducible bit-for-bit. *)

type t

val create : int -> t

val copy : t -> t

val next_int64 : t -> int64

(** Uniform in [0, bound).  @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Uniform in [0, 1). *)
val float : t -> float

(** True with probability [p]. *)
val chance : t -> float -> bool

(** @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit
