lib/support/pp_util.ml: Array Buffer Fmt List String
