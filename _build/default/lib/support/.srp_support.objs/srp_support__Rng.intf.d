lib/support/rng.mli:
