lib/support/id_gen.ml:
