(* Growable array. OCaml 5.1 has no [Dynarray] (added in 5.2), so we carry a
   small, allocation-friendly equivalent used throughout the IR and the
   simulator. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* slot filler; never observable through the API *)
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let make ~dummy n x =
  let n' = max n 8 in
  let data = Array.make n' dummy in
  Array.fill data 0 n x;
  { data; len = n; dummy }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let top t =
  if t.len = 0 then invalid_arg "Vec.top: empty";
  t.data.(t.len - 1)

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t = List.init t.len (fun i -> t.data.(i))

let to_array t = Array.init t.len (fun i -> t.data.(i))

let of_list ~dummy xs =
  let t = create ~dummy in
  List.iter (push t) xs;
  t

let map ~dummy f t =
  let r = create ~dummy in
  iter (fun x -> push r (f x)) t;
  r
