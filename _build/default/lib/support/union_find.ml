(* Union-find with path halving and union by rank, over dense integer
   elements.  Growable: [ensure] extends the element universe in place, so
   representatives of existing classes never change — the Steensgaard
   analysis relies on that while it discovers nodes on the fly. *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable len : int; (* number of live elements *)
}

let create n =
  let n' = max n 8 in
  { parent = Array.init n' (fun i -> i); rank = Array.make n' 0; len = n }

let size t = t.len

(* Make sure elements [0, n) exist. *)
let ensure t n =
  if n > Array.length t.parent then begin
    let cap = ref (Array.length t.parent) in
    while !cap < n do
      cap := !cap * 2
    done;
    let parent = Array.init !cap (fun i -> if i < t.len then t.parent.(i) else i) in
    let rank = Array.make !cap 0 in
    Array.blit t.rank 0 rank 0 t.len;
    t.parent <- parent;
    t.rank <- rank
  end;
  if n > t.len then t.len <- n

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    (* path halving: point x at its grandparent *)
    t.parent.(x) <- t.parent.(p);
    find t t.parent.(x)
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let equiv t a b = find t a = find t b

(* All classes as lists of members, keyed by representative. *)
let classes t =
  let tbl = Hashtbl.create 16 in
  for i = t.len - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
