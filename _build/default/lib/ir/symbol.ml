(* Named memory objects: globals, function locals and formals.  Every user
   variable lives in memory in the lowered IR — register promotion is
   precisely the pass that moves (possibly aliased) symbols into temps, so
   lowering must not pre-empt it.

   [addr_taken] is set during lowering whenever [&x] (or array decay /
   struct-field address arithmetic) escapes; only address-taken symbols can
   be pointed to and therefore can carry chi/mu annotations. *)

type storage = Global | Local | Formal

type t = {
  id : int;
  name : string;
  storage : storage;
  mty : Mem_ty.t; (* element type for aggregates, cell type for scalars *)
  size_bytes : int;
  is_scalar : bool; (* a single 8-byte cell, promotable as a direct ref *)
  mutable addr_taken : bool;
}

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let id t = t.id
let name t = t.name
let storage t = t.storage
let mty t = t.mty
let size_bytes t = t.size_bytes
let is_scalar t = t.is_scalar
let is_global t = t.storage = Global
let addr_taken t = t.addr_taken
let mark_addr_taken t = t.addr_taken <- true

let pp ppf t = Fmt.string ppf t.name
let to_string t = t.name

module Gen = struct
  type symbol = t
  type t = Srp_support.Id_gen.t

  let create () = Srp_support.Id_gen.create ()

  let fresh g ~name ~storage ~mty ~size_bytes ~is_scalar : symbol =
    { id = Srp_support.Id_gen.fresh g;
      name; storage; mty; size_bytes; is_scalar; addr_taken = false }

  let count g = Srp_support.Id_gen.count g
end

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
