(* A function: an ordered list of basic blocks, the entry block first.

   [ssa_temps] distinguishes the two temp regimes: lowering produces
   single-static-definition temps (SSA values), whereas register promotion
   deliberately introduces multiple definitions of promotion temps (saves,
   checks).  The verifier adapts its checks to the regime. *)

type t = {
  name : string;
  formals : Symbol.t list;
  locals : Symbol.t list Stdlib.ref;
  ret_mty : Mem_ty.t option;
  entry : Label.t;
  mutable blocks : Block.t list; (* entry first; rest in layout order *)
  temp_gen : Temp.Gen.t;
  label_gen : Label.Gen.t;
  mutable ssa_temps : bool;
}

let create ~name ~formals ~ret_mty ~temp_gen ~label_gen =
  let entry = Label.Gen.fresh ~hint:"entry" label_gen in
  let b = Block.create entry in
  { name; formals; locals = Stdlib.ref []; ret_mty; entry; blocks = [ b ];
    temp_gen; label_gen; ssa_temps = true }

let name t = t.name
let entry t = t.entry
let blocks t = t.blocks
let formals t = t.formals
let locals t = !(t.locals)
let add_local t s = t.locals := s :: !(t.locals)

let find_block t l =
  match List.find_opt (fun b -> Label.equal (Block.label b) l) t.blocks with
  | Some b -> b
  | None -> Fmt.invalid_arg "Func.find_block: %s has no block %s" t.name (Label.to_string l)

let add_block t b = t.blocks <- t.blocks @ [ b ]

let fresh_block ?(hint = "bb") t =
  let b = Block.create (Label.Gen.fresh ~hint t.label_gen) in
  add_block t b;
  b

let fresh_temp t mty = Temp.Gen.fresh t.temp_gen mty

let num_blocks t = List.length t.blocks

(* Predecessor map over labels. *)
let predecessors t =
  let preds = Label.Tbl.create 16 in
  List.iter (fun b -> Label.Tbl.replace preds (Block.label b) []) t.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          let cur = try Label.Tbl.find preds succ with Not_found -> [] in
          Label.Tbl.replace preds succ (Block.label b :: cur))
        (Block.successors b))
    t.blocks;
  preds

let iter_instrs f t =
  List.iter (fun b -> List.iter (f (Block.label b)) b.Block.instrs) t.blocks

let pp ppf t =
  let pp_formal ppf s = Fmt.pf ppf "%a" Symbol.pp s in
  Fmt.pf ppf "@[<v>func %s(%a):@,%a@]" t.name
    (Srp_support.Pp_util.pp_list pp_formal)
    t.formals
    (fun ppf bs -> List.iter (fun b -> Fmt.pf ppf "%a@," Block.pp b) bs)
    t.blocks
