(* Operators, operands and memory addresses of the mid-level IR. *)

type binop =
  (* 64-bit integer *)
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  (* 64-bit float *)
  | FAdd | FSub | FMul | FDiv
  | FEq | FNe | FLt | FLe | FGt | FGe

type unop = Neg | Not | FNeg | I2F | F2I

type operand =
  | Temp of Temp.t
  | Int of int64
  | Flt of float
  | Sym_addr of Symbol.t (* address constant: &x, array decay *)

(* A memory address: base plus byte offset.  [Sym] bases with any constant
   offset are *direct* references (scalar symbols, fixed array slots, fields
   of a global struct); [Reg] bases are *indirect* references through a
   pointer-valued temp.  The distinction drives virtual-variable naming and
   Figure 9's direct/indirect classification. *)
type base = Sym of Symbol.t | Reg of Temp.t

type addr = { base : base; offset : int }

let addr_of_sym s = { base = Sym s; offset = 0 }
let addr_of_temp t = { base = Reg t; offset = 0 }

let is_direct a = match a.base with Sym _ -> true | Reg _ -> false

let binop_is_float = function
  | FAdd | FSub | FMul | FDiv | FEq | FNe | FLt | FLe | FGt | FGe -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge -> false

(* Result type of a binop: float compares produce integer 0/1. *)
let binop_result_mty = function
  | FAdd | FSub | FMul | FDiv -> Mem_ty.F64
  | _ -> Mem_ty.I64

let unop_result_mty = function
  | Neg | Not | F2I -> Mem_ty.I64
  | FNeg | I2F -> Mem_ty.F64

let operand_mty = function
  | Temp t -> Temp.mty t
  | Int _ -> Mem_ty.I64
  | Flt _ -> Mem_ty.F64
  | Sym_addr _ -> Mem_ty.I64

let pp_binop ppf op =
  let s =
    match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
    | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
    | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
    | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
    | FEq -> "feq" | FNe -> "fne" | FLt -> "flt" | FLe -> "fle"
    | FGt -> "fgt" | FGe -> "fge"
  in
  Fmt.string ppf s

let pp_unop ppf op =
  let s =
    match op with
    | Neg -> "neg" | Not -> "not" | FNeg -> "fneg" | I2F -> "i2f" | F2I -> "f2i"
  in
  Fmt.string ppf s

let pp_operand ppf = function
  | Temp t -> Temp.pp ppf t
  | Int i -> Fmt.pf ppf "%Ld" i
  | Flt f -> Fmt.pf ppf "%h" f
  | Sym_addr s -> Fmt.pf ppf "&%a" Symbol.pp s

let pp_addr ppf a =
  match a.base, a.offset with
  | Sym s, 0 -> Fmt.pf ppf "[%a]" Symbol.pp s
  | Sym s, off -> Fmt.pf ppf "[%a+%d]" Symbol.pp s off
  | Reg t, 0 -> Fmt.pf ppf "[%a]" Temp.pp t
  | Reg t, off -> Fmt.pf ppf "[%a+%d]" Temp.pp t off

let equal_addr a b =
  a.offset = b.offset
  && (match a.base, b.base with
     | Sym s1, Sym s2 -> Symbol.equal s1 s2
     | Reg t1, Reg t2 -> Temp.equal t1 t2
     | Sym _, Reg _ | Reg _, Sym _ -> false)
