(** IR well-formedness checker: every branch targets an existing block, the
    entry block is first, every temp has one definition and dominates its
    uses while the function is in the SSA-temp regime
    ({!Func.t}[.ssa_temps]), and calls resolve with matching arity.

    Run after lowering (automatically by {!Srp_frontend.Lower.compile_source})
    and after passes in tests. *)

exception Ill_formed of string

val check_func : Func.t -> unit

val check_program : Program.t -> unit
