(** Dominator tree and dominance frontiers over a {!Cfg.t}, via the
    Cooper–Harvey–Kennedy iterative algorithm (the CFG's reverse-postorder
    numbering is exactly the iteration order it wants). *)

type t

val compute : Cfg.t -> t

(** Immediate dominator; [None] for the entry. *)
val idom : t -> int -> int option

(** Dominator-tree children. *)
val children : t -> int -> int list

(** Dominance frontier of a node. *)
val frontier : t -> int -> int list

(** Dominator-tree preorder (the SSA rename walk order). *)
val preorder : t -> int array

(** [dominates t a b]: does [a] dominate [b], reflexively?  Constant time
    via pre/post intervals. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** Iterated dominance frontier of a node set — the phi insertion points
    for a variable defined in those nodes. *)
val iterated_frontier : t -> int list -> int list
