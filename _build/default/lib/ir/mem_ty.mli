(** Machine-level memory cell types.

    MiniC integers, pointers and booleans are all 64-bit integers; doubles
    are 64-bit floats.  The distinction matters to the machine model: an
    integer L1 hit costs 2 cycles while a floating-point load costs 9
    (FP loads bypass L1 on Itanium) — the effect the paper leans on in
    section 4 to explain why its FP benchmarks gain the most. *)

type t = I64 | F64

val size_bytes : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
