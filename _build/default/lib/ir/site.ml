(* Stable ids for memory-operation occurrences (loads, stores, calls, heap
   allocations).  Sites are assigned once during lowering and survive every
   subsequent pass, which is what lets the alias profile collected by the IR
   interpreter be joined back against chi/mu annotations in the compiler
   (paper section 3.1), and lets the reports classify which load sites were
   eliminated (Figure 9). *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_int t = t
let pp ppf t = Fmt.pf ppf "s%d" t

module Gen = struct
  type t = Srp_support.Id_gen.t

  let create () = Srp_support.Id_gen.create ()
  let fresh g : int = Srp_support.Id_gen.fresh g
  let count g = Srp_support.Id_gen.count g
end

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Tbl = Hashtbl.Make (Int)
