(** Natural loop detection from back edges, and critical-edge splitting.

    The loop-invariant case of the paper (Figure 3: hoist a may-aliased
    load out of a loop as ld.sa, keep a check inside) relies on SSAPRE
    insertion at the loop-entry edge, which requires that edge to be
    non-critical — {!split_critical_edges} runs right after lowering. *)

type loop = {
  header : int;
  body : int list;  (** node ids, header included *)
  back_edges : (int * int) list;  (** (tail, header) *)
}

(** All natural loops of a CFG, sorted by header. *)
val find : Cfg.t -> Dominance.t -> loop list

(** Split every edge whose source has several successors and whose target
    has several predecessors, in place. *)
val split_critical_edges : Func.t -> unit
