(** Array-indexed view of a function's control-flow graph.

    Analyses (dominance, SSA construction, SSAPRE) want dense integer node
    ids; [build] freezes a {!Func.t} into arrays in reverse postorder, so
    index 0 is the entry and forward edges mostly increase.  Unreachable
    blocks are excluded.

    The view aliases the function's blocks: passes may rewrite instruction
    lists in place through it, but changing the block *set* or the
    terminators requires rebuilding. *)

type t

val build : Func.t -> t

val num_nodes : t -> int

val block : t -> int -> Block.t

val label : t -> int -> Label.t

val succs : t -> int -> int list

val preds : t -> int -> int list

val func : t -> Func.t

(** @raise Invalid_argument for labels of unreachable blocks. *)
val index_of_label : t -> Label.t -> int

val entry_index : t -> int

(** Nodes with no successors (return blocks). *)
val exit_indices : t -> int list
