(* Dominator tree and dominance frontiers, via the Cooper-Harvey-Kennedy
   "simple, fast dominance" iterative algorithm.  The CFG's nodes are
   already in reverse postorder, which is exactly the iteration order the
   algorithm wants. *)

type t = {
  cfg : Cfg.t;
  idom : int array; (* idom.(0) = 0 *)
  children : int list array; (* dominator-tree children *)
  frontier : int list array; (* dominance frontier per node *)
  preorder : int array; (* dominator-tree preorder, for SSA rename walks *)
  pre_index : int array; (* node -> position in [preorder] *)
  post_index : int array; (* node -> dominator-tree postorder index *)
}

let compute cfg =
  let n = Cfg.num_nodes cfg in
  let undefined = -1 in
  let idom = Array.make n undefined in
  idom.(0) <- 0;
  let intersect a b =
    (* walk up the tree; RPO indices decrease toward the entry *)
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do
        a := idom.(!a)
      done;
      while !b > !a do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let processed = List.filter (fun p -> idom.(p) <> undefined) (Cfg.preds cfg i) in
      match processed with
      | [] -> () (* can't happen on reachable-only CFGs after first sweep *)
      | first :: rest ->
        let new_idom = List.fold_left intersect first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    children.(idom.(i)) <- i :: children.(idom.(i))
  done;
  (* Dominance frontiers (Cooper-Harvey-Kennedy). *)
  let frontier = Array.make n [] in
  for i = 0 to n - 1 do
    let preds = Cfg.preds cfg i in
    if List.length preds >= 2 then
      List.iter
        (fun p ->
          let runner = ref p in
          while !runner <> idom.(i) do
            if not (List.mem i frontier.(!runner)) then
              frontier.(!runner) <- i :: frontier.(!runner);
            runner := idom.(!runner)
          done)
        preds
  done;
  (* Dominator-tree preorder and postorder. *)
  let preorder = Array.make n 0 in
  let pre_index = Array.make n 0 in
  let post_index = Array.make n 0 in
  let pre_pos = ref 0 and post_pos = ref 0 in
  let rec walk i =
    preorder.(!pre_pos) <- i;
    pre_index.(i) <- !pre_pos;
    incr pre_pos;
    List.iter walk children.(i);
    post_index.(i) <- !post_pos;
    incr post_pos
  in
  walk 0;
  { cfg; idom; children; frontier; preorder; pre_index; post_index }

let idom t i = if i = 0 then None else Some t.idom.(i)
let children t i = t.children.(i)
let frontier t i = t.frontier.(i)
let preorder t = t.preorder

(* [dominates t a b]: does a dominate b (reflexively)?  Constant-time via
   the pre/post interval property of the dominator tree. *)
let dominates t a b =
  t.pre_index.(a) <= t.pre_index.(b) && t.post_index.(a) >= t.post_index.(b)

let strictly_dominates t a b = a <> b && dominates t a b

(* Iterated dominance frontier of a set of nodes — the phi insertion points
   for a variable defined at those nodes. *)
let iterated_frontier t nodes =
  let in_df = Array.make (Array.length t.idom) false in
  let worklist = Queue.create () in
  List.iter (fun n -> Queue.add n worklist) nodes;
  let on_work = Array.make (Array.length t.idom) false in
  List.iter (fun n -> on_work.(n) <- true) nodes;
  while not (Queue.is_empty worklist) do
    let x = Queue.pop worklist in
    List.iter
      (fun y ->
        if not in_df.(y) then begin
          in_df.(y) <- true;
          if not on_work.(y) then begin
            on_work.(y) <- true;
            Queue.add y worklist
          end
        end)
      t.frontier.(x)
  done;
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) in_df;
  List.rev !acc
