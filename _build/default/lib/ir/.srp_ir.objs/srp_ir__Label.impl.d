lib/ir/label.ml: Fmt Hashtbl Int Map Set Srp_support
