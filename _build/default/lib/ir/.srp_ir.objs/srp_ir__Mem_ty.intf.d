lib/ir/mem_ty.mli: Format
