lib/ir/mem_ty.ml: Fmt
