lib/ir/ops.ml: Fmt Mem_ty Symbol Temp
