lib/ir/dominance.ml: Array Cfg List Queue
