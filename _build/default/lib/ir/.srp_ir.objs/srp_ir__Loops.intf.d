lib/ir/loops.mli: Cfg Dominance Func
