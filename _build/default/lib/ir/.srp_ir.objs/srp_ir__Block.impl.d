lib/ir/block.ml: Fmt Instr Label List
