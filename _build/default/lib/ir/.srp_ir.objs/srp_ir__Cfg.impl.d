lib/ir/cfg.ml: Array Block Fmt Func Label List Srp_support
