lib/ir/verify.ml: Block Cfg Dominance Fmt Func Instr Label List Program Temp
