lib/ir/func.ml: Block Fmt Label List Mem_ty Srp_support Stdlib Symbol Temp
