lib/ir/program.ml: Fmt Func Hashtbl List Site Stdlib Symbol
