lib/ir/instr.ml: Fmt Label List Mem_ty Ops Site Srp_support Temp
