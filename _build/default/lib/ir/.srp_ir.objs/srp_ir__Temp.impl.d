lib/ir/temp.ml: Fmt Hashtbl Int Map Mem_ty Set Srp_support
