lib/ir/loops.ml: Array Block Cfg Dominance Func Hashtbl Instr Int Label List
