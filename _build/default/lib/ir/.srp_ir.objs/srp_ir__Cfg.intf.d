lib/ir/cfg.mli: Block Func Label
