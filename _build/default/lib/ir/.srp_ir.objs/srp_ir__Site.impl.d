lib/ir/site.ml: Fmt Hashtbl Int Map Set Srp_support
