(* Array-indexed view of a function's control-flow graph.

   Analyses (dominance, SSA construction, SSAPRE) want dense integer node
   ids; this module freezes a [Func.t] into arrays in reverse-postorder so
   index 0 is always the entry and forward edges mostly go up in index.
   Unreachable blocks are excluded (they carry no occurrences worth
   promoting and would break dominator computation). *)

type t = {
  func : Func.t;
  blocks : Block.t array; (* indexed by node id, RPO order *)
  index_of : int Label.Tbl.t; (* label id -> node id *)
  succs : int list array;
  preds : int list array;
}

let build func =
  let order = Srp_support.Vec.create ~dummy:(List.hd (Func.blocks func)) in
  let visited = Label.Tbl.create 16 in
  (* Postorder DFS from the entry block. *)
  let rec dfs label =
    if not (Label.Tbl.mem visited label) then begin
      Label.Tbl.replace visited label ();
      let b = Func.find_block func label in
      List.iter dfs (Block.successors b);
      Srp_support.Vec.push order b
    end
  in
  dfs (Func.entry func);
  let n = Srp_support.Vec.length order in
  let blocks =
    Array.init n (fun i -> Srp_support.Vec.get order (n - 1 - i))
  in
  let index_of = Label.Tbl.create 16 in
  Array.iteri (fun i b -> Label.Tbl.replace index_of (Block.label b) i) blocks;
  let succs =
    Array.map
      (fun b ->
        List.filter_map
          (fun l -> Label.Tbl.find_opt index_of l)
          (Block.successors b))
      blocks
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  { func; blocks; index_of; succs; preds }

let num_nodes t = Array.length t.blocks
let block t i = t.blocks.(i)
let label t i = Block.label t.blocks.(i)
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let func t = t.func

let index_of_label t l =
  match Label.Tbl.find_opt t.index_of l with
  | Some i -> i
  | None -> Fmt.invalid_arg "Cfg.index_of_label: unreachable %s" (Label.to_string l)

let entry_index (_ : t) = 0

(* Nodes with no successors (return blocks). *)
let exit_indices t =
  let acc = ref [] in
  for i = num_nodes t - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc
