(* Basic-block labels, unique within a function. *)

type t = { id : int; hint : string }

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let id t = t.id

let pp ppf t =
  if t.hint = "" then Fmt.pf ppf "L%d" t.id else Fmt.pf ppf "%s%d" t.hint t.id

let to_string t = Fmt.str "%a" pp t

module Gen = struct
  type label = t
  type t = Srp_support.Id_gen.t

  let create () = Srp_support.Id_gen.create ()
  let fresh ?(hint = "") g : label = { id = Srp_support.Id_gen.fresh g; hint }
  let count g = Srp_support.Id_gen.count g
end

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
