(* Machine-level memory cell types.  MiniC integers, pointers and booleans
   are all 64-bit integers; doubles are 64-bit floats.  The distinction
   matters to the machine model: on Itanium an integer L1 hit costs 2 cycles
   while a floating-point load costs 9 (FP loads bypass L1), which is the
   effect the paper leans on in section 4. *)

type t = I64 | F64

let size_bytes = function I64 -> 8 | F64 -> 8

let equal (a : t) b = a = b

let pp ppf = function
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"

let to_string = function I64 -> "i64" | F64 -> "f64"
