(* A basic block: straight-line instructions plus one terminator. *)

type t = {
  label : Label.t;
  mutable instrs : Instr.instr list;
  mutable term : Instr.terminator;
}

let create label = { label; instrs = []; term = Instr.Ret None }

let label t = t.label

let successors t = Instr.successors t.term

let append t i = t.instrs <- t.instrs @ [ i ]

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%a:@,%a%a@]" Label.pp t.label
    (fun ppf is ->
      List.iter (fun i -> Fmt.pf ppf "%a@," Instr.pp i) is)
    t.instrs Instr.pp_terminator t.term
