(* IR well-formedness checker.  Run after lowering and after every pass in
   tests; failures raise [Ill_formed] with a description. *)

exception Ill_formed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let check_func (f : Func.t) =
  (* Every terminator targets an existing block. *)
  let labels = List.map Block.label (Func.blocks f) in
  let mem l = List.exists (Label.equal l) labels in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (mem s) then
            fail "%s: block %s jumps to unknown label %s" (Func.name f)
              (Label.to_string (Block.label b))
              (Label.to_string s))
        (Block.successors b))
    (Func.blocks f);
  (* Entry block exists and is first. *)
  (match Func.blocks f with
  | [] -> fail "%s: no blocks" (Func.name f)
  | b :: _ ->
    if not (Label.equal (Block.label b) (Func.entry f)) then
      fail "%s: entry block is not first" (Func.name f));
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  (* Temp discipline. *)
  let def_site = Temp.Tbl.create 64 in
  let n = Cfg.num_nodes cfg in
  for i = 0 to n - 1 do
    let b = Cfg.block cfg i in
    List.iteri
      (fun pos ins ->
        List.iter
          (fun d ->
            (match Temp.Tbl.find_opt def_site d with
            | Some _ when f.Func.ssa_temps ->
              fail "%s: temp %s multiply defined (ssa_temps)" (Func.name f)
                (Temp.to_string d)
            | _ -> ());
            if not (Temp.Tbl.mem def_site d) then
              Temp.Tbl.replace def_site d (i, pos))
          (Instr.defs ins))
      b.Block.instrs
  done;
  (* In the SSA-temp regime every use must be dominated by its def. *)
  if f.Func.ssa_temps then
    for i = 0 to n - 1 do
      let b = Cfg.block cfg i in
      let check_use pos t =
        match Temp.Tbl.find_opt def_site t with
        | None ->
          fail "%s: temp %s used but never defined" (Func.name f)
            (Temp.to_string t)
        | Some (di, dpos) ->
          let ok =
            if di = i then dpos < pos
            else Dominance.strictly_dominates dom di i
          in
          if not ok then
            fail "%s: use of %s in %s not dominated by its definition"
              (Func.name f) (Temp.to_string t)
              (Label.to_string (Cfg.label cfg i))
      in
      List.iteri (fun pos ins -> List.iter (check_use pos) (Instr.uses ins)) b.Block.instrs;
      List.iter (check_use max_int) (Instr.term_uses b.Block.term)
    done

let check_program (p : Program.t) =
  (* Calls resolve to functions or builtins, with matching arity. *)
  List.iter
    (fun f ->
      Func.iter_instrs
        (fun _ ins ->
          match ins with
          | Instr.Call { callee; args; _ } ->
            if not (Program.is_builtin callee) then begin
              match Program.find_func_opt p callee with
              | None -> fail "call to unknown function %s" callee
              | Some g ->
                let want = List.length (Func.formals g) in
                let got = List.length args in
                if want <> got then
                  fail "call to %s: %d args, expected %d" callee got want
            end
          | _ -> ())
        f;
      check_func f)
    (Program.funcs p)
