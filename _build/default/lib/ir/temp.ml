(* Expression temporaries.  Before register promotion every temp has exactly
   one static definition (lowering guarantees it), so temps behave as SSA
   values.  Promotion deliberately breaks this by inserting check statements
   that redefine promotion temps; [Func.ssa_temps] records which regime a
   function is in and the verifier checks accordingly. *)

type t = { id : int; mty : Mem_ty.t }

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let id t = t.id
let mty t = t.mty

let pp ppf t =
  Fmt.pf ppf "%%%d%s" t.id (match t.mty with Mem_ty.I64 -> "" | Mem_ty.F64 -> "f")

let to_string t = Fmt.str "%a" pp t

module Gen = struct
  type temp = t
  type t = Srp_support.Id_gen.t

  let create () = Srp_support.Id_gen.create ()
  let fresh g mty : temp = { id = Srp_support.Id_gen.fresh g; mty }
  let count g = Srp_support.Id_gen.count g
end

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
