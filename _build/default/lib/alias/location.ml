(* Abstract memory locations: named symbols and heap objects named by their
   allocation site (the naming scheme the paper's companion work [7] calls
   malloc-site naming).  Field-insensitive: an aggregate symbol or heap
   object is one location; offsets within it are not distinguished by the
   static analyses (the dynamic profile is also collected at this
   granularity so the two compose). *)

open Srp_ir

type t =
  | Sym of Symbol.t
  | Heap of Site.t (* allocation site *)

let compare a b =
  match a, b with
  | Sym s1, Sym s2 -> Symbol.compare s1 s2
  | Heap h1, Heap h2 -> Site.compare h1 h2
  | Sym _, Heap _ -> -1
  | Heap _, Sym _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Sym s -> Symbol.pp ppf s
  | Heap site -> Fmt.pf ppf "heap@%a" Site.pp site

let to_string l = Fmt.str "%a" pp l

let is_heap = function Heap _ -> true | Sym _ -> false

let mty = function
  | Sym s -> Some (Symbol.mty s)
  | Heap _ -> None (* heap cells may hold either; never filtered by type *)

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)
