(* Andersen-style subset-based (inclusion) points-to analysis: the
   flow-insensitive but directional analysis that upgrades the ORC
   baseline's precision beyond Steensgaard's equivalence classes.

   Standard worklist formulation: points-to sets over memory nodes, copy
   edges, and complex load/store constraints discovered as sets grow. *)

open Srp_ir
module ISet = Set.Make (Int)

type t = {
  env : Node_env.t;
  pts : (int, ISet.t) Hashtbl.t; (* node -> memory nodes it may point to *)
  loc_of_node : (int, Location.t) Hashtbl.t;
}

type builder = {
  benv : Node_env.t;
  bpts : (int, ISet.t) Hashtbl.t;
  copy : (int, ISet.t) Hashtbl.t; (* a -> {b}: pts(a) <= pts(b) *)
  loads : (int, ISet.t) Hashtbl.t; (* r -> {d}: d = *r *)
  stores : (int, ISet.t) Hashtbl.t; (* r -> {s}: *r = s *)
  work : int Queue.t;
  mutable dirty : ISet.t;
}

let get tbl k = try Hashtbl.find tbl k with Not_found -> ISet.empty

let add_to tbl k v =
  let cur = get tbl k in
  if not (ISet.mem v cur) then begin
    Hashtbl.replace tbl k (ISet.add v cur);
    true
  end
  else false

let mark b n =
  if not (ISet.mem n b.dirty) then begin
    b.dirty <- ISet.add n b.dirty;
    Queue.add n b.work
  end

let add_pts b n target = if add_to b.bpts n target then mark b n

let add_copy b src dst =
  if add_to b.copy src dst then
    (* propagate what src already has *)
    ISet.iter (fun x -> add_pts b dst x) (get b.bpts src)

let run (prog : Program.t) : t =
  let env = Node_env.create () in
  List.iter (fun s -> ignore (Node_env.node_of_sym env s)) (Program.all_symbols prog);
  let b =
    { benv = env; bpts = Hashtbl.create 64; copy = Hashtbl.create 64;
      loads = Hashtbl.create 16; stores = Hashtbl.create 16;
      work = Queue.create (); dirty = ISet.empty }
  in
  let operand_node fname (o : Ops.operand) : [ `Node of int | `Addr_of of int | `None ] =
    match o with
    | Ops.Temp tmp -> `Node (Node_env.node_of_temp env ~func:fname tmp)
    | Ops.Sym_addr s -> `Addr_of (Node_env.node_of_sym env s)
    | Ops.Int _ | Ops.Flt _ -> `None
  in
  (* dst = src (value copy) *)
  let assign_to dst_node src fname =
    match operand_node fname src with
    | `Node v -> add_copy b v dst_node
    | `Addr_of m -> add_pts b dst_node m
    | `None -> ()
  in
  let process_func (f : Func.t) =
    let fname = Func.name f in
    Func.iter_instrs
      (fun _ ins ->
        match ins with
        | Instr.Load { dst; addr; _ }
        | Instr.Check { dst; addr; _ }
        | Instr.Sw_check { dst; addr; _ } -> (
          let d = Node_env.node_of_temp env ~func:fname dst in
          match addr.Ops.base with
          | Ops.Sym s -> add_copy b (Node_env.node_of_sym env s) d
          | Ops.Reg r ->
            let rn = Node_env.node_of_temp env ~func:fname r in
            if add_to b.loads rn d then
              ISet.iter (fun o -> add_copy b o d) (get b.bpts rn))
        | Instr.Store { src; addr; _ } -> (
          match addr.Ops.base with
          | Ops.Sym s -> assign_to (Node_env.node_of_sym env s) src fname
          | Ops.Reg r -> (
            let rn = Node_env.node_of_temp env ~func:fname r in
            match operand_node fname src with
            | `Node v ->
              if add_to b.stores rn v then
                ISet.iter (fun o -> add_copy b v o) (get b.bpts rn)
            | `Addr_of m ->
              (* *r = &x: route through a synthetic node holding {x} *)
              let anon = Node_env.fresh_anon env in
              add_pts b anon m;
              if add_to b.stores rn anon then
                ISet.iter (fun o -> add_copy b anon o) (get b.bpts rn)
            | `None -> ()))
        | Instr.Bin { dst; a; b = b2; _ } ->
          let d = Node_env.node_of_temp env ~func:fname dst in
          assign_to d a fname;
          assign_to d b2 fname
        | Instr.Un { dst; a; _ } | Instr.Mov { dst; src = a } ->
          let d = Node_env.node_of_temp env ~func:fname dst in
          assign_to d a fname
        | Instr.Alloc { dst; site; _ } ->
          let d = Node_env.node_of_temp env ~func:fname dst in
          add_pts b d (Node_env.node_of_heap env site)
        | Instr.Call { dst; callee; args; _ } ->
          if not (Program.is_builtin callee) then begin
            match Program.find_func_opt prog callee with
            | Some g ->
              List.iteri
                (fun i formal ->
                  match List.nth_opt args i with
                  | Some arg -> assign_to (Node_env.node_of_sym env formal) arg fname
                  | None -> ())
                (Func.formals g);
              (match dst with
              | Some d ->
                add_copy b (Node_env.node_of_ret env callee)
                  (Node_env.node_of_temp env ~func:fname d)
              | None -> ())
            | None -> ()
          end
        | Instr.Invala _ -> ())
      f;
    List.iter
      (fun blk ->
        match blk.Block.term with
        | Instr.Ret (Some o) -> assign_to (Node_env.node_of_ret env fname) o fname
        | Instr.Ret None | Instr.Jump _ | Instr.Br _ -> ())
      (Func.blocks f)
  in
  List.iter process_func (Program.funcs prog);
  (* worklist propagation *)
  while not (Queue.is_empty b.work) do
    let n = Queue.pop b.work in
    b.dirty <- ISet.remove n b.dirty;
    let pn = get b.bpts n in
    (* copy successors *)
    ISet.iter (fun d -> ISet.iter (fun x -> add_pts b d x) pn) (get b.copy n);
    (* complex constraints anchored on n *)
    ISet.iter (fun d -> ISet.iter (fun o -> add_copy b o d) pn) (get b.loads n);
    ISet.iter (fun s -> ISet.iter (fun o -> add_copy b s o) pn) (get b.stores n)
  done;
  let loc_of_node = Hashtbl.create 64 in
  List.iter (fun (id, loc) -> Hashtbl.replace loc_of_node id loc) (Node_env.memory_nodes env);
  { env; pts = b.bpts; loc_of_node }

let points_to_of_node (t : t) node : Location.Set.t =
  ISet.fold
    (fun id acc ->
      match Hashtbl.find_opt t.loc_of_node id with
      | Some loc -> Location.Set.add loc acc
      | None -> acc)
    (get t.pts node) Location.Set.empty

let points_to_of_temp (t : t) ~func tmp =
  points_to_of_node t (Node_env.node_of_temp t.env ~func tmp)
