(** Interprocedural mod/ref summaries: for every function, the locations it
    (transitively) may store to and load from, used to place chi/mu around
    call sites.  Only locations visible across a call boundary matter —
    globals, heap objects, and address-taken locals; a callee's private
    local cannot be named by its caller.  Recursion is handled by a
    fixpoint over the call graph. *)

open Srp_ir

type summary = { mod_set : Location.Set.t; ref_set : Location.Set.t }

type t

val compute : Manager.t -> Program.t -> t

val find : t -> string -> summary

(** Locations [name] may (transitively) write. *)
val mod_of : t -> string -> Location.Set.t

(** Locations [name] may (transitively) read. *)
val ref_of : t -> string -> Location.Set.t
