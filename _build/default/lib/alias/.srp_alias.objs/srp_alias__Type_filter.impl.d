lib/alias/type_filter.ml: Location Mem_ty Srp_ir
