lib/alias/modref.mli: Location Manager Program Srp_ir
