lib/alias/modref.ml: Func Hashtbl Instr List Location Manager Ops Program Srp_ir Symbol
