lib/alias/location.ml: Fmt Map Set Site Srp_ir Symbol
