lib/alias/andersen.ml: Block Func Hashtbl Instr Int List Location Node_env Ops Program Queue Set Srp_ir
