lib/alias/node_env.ml: Hashtbl List Location Site Srp_ir Symbol Temp
