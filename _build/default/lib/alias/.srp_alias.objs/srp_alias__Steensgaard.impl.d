lib/alias/steensgaard.ml: Block Func Hashtbl Instr List Location Node_env Ops Program Srp_ir Srp_support
