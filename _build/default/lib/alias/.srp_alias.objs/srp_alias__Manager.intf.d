lib/alias/manager.mli: Location Mem_ty Program Srp_ir Temp
