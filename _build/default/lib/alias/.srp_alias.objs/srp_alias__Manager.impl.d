lib/alias/manager.ml: Andersen Location Program Srp_ir Steensgaard Type_filter
