(** Facade over the points-to analyses: the one object the SSA builder and
    the promotion pass query, mirroring the "sequence of pointer analyses"
    the ORC -O3 baseline composes (paper section 4): equivalence-class
    (Steensgaard), inclusion-based (Andersen) and the unsafe type-based
    refinement. *)

open Srp_ir

type flavour =
  | Steensgaard_only
  | Andersen_refined  (** intersect both analyses (both sound) *)

type t

(** Run the configured analyses over a whole program.  Defaults:
    [Andersen_refined] with the type filter on. *)
val build : ?flavour:flavour -> ?type_filter:bool -> Program.t -> t

(** Raw points-to set of the pointer value held in a temp of [func]. *)
val points_to_raw : t -> func:string -> Temp.t -> Location.Set.t

(** Locations an indirect access through the temp with cell type [mty] may
    touch (type filter applied if configured). *)
val points_to : t -> func:string -> mty:Mem_ty.t -> Temp.t -> Location.Set.t

(** Stable equivalence-class key, used for virtual-variable naming. *)
val class_of_temp : t -> func:string -> Temp.t -> int

(** May two indirect accesses alias? *)
val may_alias :
  t -> func:string -> mty1:Mem_ty.t -> Temp.t -> mty2:Mem_ty.t -> Temp.t -> bool
