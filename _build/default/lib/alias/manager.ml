(* Facade over the points-to analyses: one object the SSA builder and the
   promotion pass query, configured with the analysis flavour and the
   type-based refinement, mirroring the "sequence of pointer analyses" the
   ORC baseline composes (paper section 4). *)

open Srp_ir

type flavour = Steensgaard_only | Andersen_refined

type t = {
  flavour : flavour;
  type_filter : bool;
  steens : Steensgaard.t;
  anders : Andersen.t option;
}

let build ?(flavour = Andersen_refined) ?(type_filter = true) (prog : Program.t) : t
    =
  let steens = Steensgaard.run prog in
  let anders =
    match flavour with
    | Steensgaard_only -> None
    | Andersen_refined -> Some (Andersen.run prog)
  in
  { flavour; type_filter; steens; anders }

(* Raw points-to set of the pointer value held in [tmp]. *)
let points_to_raw t ~func tmp : Location.Set.t =
  match t.anders with
  | Some a ->
    (* Andersen refines Steensgaard; intersect for safety of the composition
       (both are sound, so the intersection is too). *)
    let pa = Andersen.points_to_of_temp a ~func tmp in
    let ps = Steensgaard.points_to_of_temp t.steens ~func tmp in
    Location.Set.inter pa ps
  | None -> Steensgaard.points_to_of_temp t.steens ~func tmp

(* Locations an indirect access through [tmp] with cell type [mty] may
   touch. *)
let points_to t ~func ~mty tmp : Location.Set.t =
  let raw = points_to_raw t ~func tmp in
  if t.type_filter then Type_filter.filter ~access_mty:mty raw else raw

(* Stable class key for virtual-variable naming. *)
let class_of_temp t ~func tmp = Steensgaard.class_of_temp t.steens ~func tmp

let may_alias t ~func ~mty1 tmp1 ~mty2 tmp2 =
  let p1 = points_to t ~func ~mty:mty1 tmp1 in
  let p2 = points_to t ~func ~mty:mty2 tmp2 in
  not (Location.Set.is_empty (Location.Set.inter p1 p2))
