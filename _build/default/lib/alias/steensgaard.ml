(* Steensgaard's near-linear, unification-based points-to analysis — the
   "equivalence class based alias analysis" the paper names as part of the
   ORC -O3 baseline (section 4).

   Every node has at most one points-to successor [alpha]; assignments
   unify.  Conditional unification is skipped (plain Steensgaard):
   precision is recovered later by the flow/type filters and, in the
   speculative compiler, by the dynamic alias profile. *)

open Srp_ir

type t = {
  env : Node_env.t;
  uf : Srp_support.Union_find.t;
  alpha : (int, int) Hashtbl.t; (* representative -> points-to node *)
}

let reg t n =
  Srp_support.Union_find.ensure t.uf (n + 1);
  n

(* --- core unification machinery --- *)

let rec unify t a b =
  let ra = Srp_support.Union_find.find t.uf (reg t a) in
  let rb = Srp_support.Union_find.find t.uf (reg t b) in
  if ra <> rb then begin
    let ta = Hashtbl.find_opt t.alpha ra in
    let tb = Hashtbl.find_opt t.alpha rb in
    Hashtbl.remove t.alpha ra;
    Hashtbl.remove t.alpha rb;
    let r = Srp_support.Union_find.union t.uf ra rb in
    (match ta, tb with
    | None, None -> ()
    | Some x, None | None, Some x -> Hashtbl.replace t.alpha r x
    | Some x, Some y ->
      Hashtbl.replace t.alpha r x;
      unify t x y)
  end

(* The node the content of [n] points to, creating a fresh one if needed. *)
let points_to_node t n =
  let r = Srp_support.Union_find.find t.uf (reg t n) in
  match Hashtbl.find_opt t.alpha r with
  | Some x -> reg t x
  | None ->
    let x = reg t (Node_env.fresh_anon t.env) in
    Hashtbl.replace t.alpha r x;
    x

(* --- constraint generation --- *)

let run (prog : Program.t) : t =
  let env = Node_env.create () in
  (* Pre-register all symbols so the node table covers them even if a
     symbol is never referenced. *)
  List.iter (fun s -> ignore (Node_env.node_of_sym env s)) (Program.all_symbols prog);
  let t = { env; uf = Srp_support.Union_find.create 64; alpha = Hashtbl.create 64 } in
  let pt n = points_to_node t n in
  (* value node of an operand within function [fname] *)
  let operand_node fname (o : Ops.operand) : int option =
    match o with
    | Ops.Temp tmp -> Some (Node_env.node_of_temp env ~func:fname tmp)
    | Ops.Sym_addr s ->
      (* a fresh value node whose points-to target is the symbol *)
      let v = Node_env.fresh_anon env in
      unify t (pt v) (Node_env.node_of_sym env s);
      Some v
    | Ops.Int _ | Ops.Flt _ -> None
  in
  let addr_node fname (a : Ops.addr) : [ `Direct of int | `Indirect of int ] =
    match a.Ops.base with
    | Ops.Sym s -> `Direct (Node_env.node_of_sym env s)
    | Ops.Reg r -> `Indirect (Node_env.node_of_temp env ~func:fname r)
  in
  (* dst_node = src (value assignment) *)
  let do_assign dst_node (src : Ops.operand) fname =
    match operand_node fname src with
    | None -> ()
    | Some v -> unify t (pt dst_node) (pt v)
  in
  let load_into fname dst addr =
    let d = Node_env.node_of_temp env ~func:fname dst in
    match addr_node fname addr with
    | `Direct s -> unify t (pt d) (pt s)
    | `Indirect r ->
      (* dst = *r: pts(dst) = pts(pts(r)) *)
      unify t (pt d) (pt (pt r))
  in
  let process_func (f : Func.t) =
    let fname = Func.name f in
    Func.iter_instrs
      (fun _ ins ->
        match ins with
        | Instr.Load { dst; addr; _ }
        | Instr.Check { dst; addr; _ }
        | Instr.Sw_check { dst; addr; _ } ->
          load_into fname dst addr
        | Instr.Store { src; addr; _ } -> (
          match addr_node fname addr with
          | `Direct s -> do_assign s src fname
          | `Indirect r -> do_assign (pt r) src fname)
        | Instr.Bin { dst; a; b; _ } ->
          (* pointer arithmetic: the result may point wherever either
             operand points *)
          let d = Node_env.node_of_temp env ~func:fname dst in
          List.iter
            (fun o ->
              match operand_node fname o with
              | Some v -> unify t (pt d) (pt v)
              | None -> ())
            [ a; b ]
        | Instr.Un { dst; a; _ } | Instr.Mov { dst; src = a } ->
          let d = Node_env.node_of_temp env ~func:fname dst in
          (match operand_node fname a with
          | Some v -> unify t (pt d) (pt v)
          | None -> ())
        | Instr.Alloc { dst; site; _ } ->
          let d = Node_env.node_of_temp env ~func:fname dst in
          unify t (pt d) (Node_env.node_of_heap env site)
        | Instr.Call { dst; callee; args; _ } ->
          if not (Program.is_builtin callee) then begin
            match Program.find_func_opt prog callee with
            | Some g ->
              let formals = Func.formals g in
              List.iteri
                (fun i formal ->
                  match List.nth_opt args i with
                  | Some arg -> do_assign (Node_env.node_of_sym env formal) arg fname
                  | None -> ())
                formals;
              (match dst with
              | Some d ->
                let dn = Node_env.node_of_temp env ~func:fname d in
                unify t (pt dn) (pt (Node_env.node_of_ret env callee))
              | None -> ())
            | None -> ()
          end
        | Instr.Invala _ -> ())
      f;
    (* return statements feed the function's ret node *)
    List.iter
      (fun blk ->
        match blk.Block.term with
        | Instr.Ret (Some o) -> do_assign (Node_env.node_of_ret env fname) o fname
        | Instr.Ret None | Instr.Jump _ | Instr.Br _ -> ())
      (Func.blocks f)
  in
  List.iter process_func (Program.funcs prog);
  t

(* --- queries --- *)

(* Locations the value held in [node] may point to: all memory nodes in the
   class of alpha(node). *)
let points_to_of_node (t : t) node : Location.Set.t =
  let n = reg t node in
  let r = Srp_support.Union_find.find t.uf n in
  match Hashtbl.find_opt t.alpha r with
  | None -> Location.Set.empty
  | Some target ->
    let rt = Srp_support.Union_find.find t.uf (reg t target) in
    List.fold_left
      (fun acc (id, loc) ->
        if Srp_support.Union_find.find t.uf (reg t id) = rt then
          Location.Set.add loc acc
        else acc)
      Location.Set.empty
      (Node_env.memory_nodes t.env)

let points_to_of_temp (t : t) ~func tmp =
  points_to_of_node t (Node_env.node_of_temp t.env ~func tmp)

(* Class id of the pointer value in a temp — used as a virtual-variable
   fallback key for address temps with no recognizable origin. *)
let class_of_temp (t : t) ~func tmp =
  let n = reg t (Node_env.node_of_temp t.env ~func tmp) in
  let r = Srp_support.Union_find.find t.uf n in
  match Hashtbl.find_opt t.alpha r with
  | Some target -> Srp_support.Union_find.find t.uf (reg t target)
  | None -> r
