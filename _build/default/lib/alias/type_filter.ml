(* The "unsafe type-based pointer analysis" of the ORC -O3 baseline (paper
   section 4): an indirect access of cell type T is assumed not to alias
   symbols whose cells have a different type.  Unsafe in full C (casts can
   reinterpret memory); in MiniC the only laundering path is malloc'd
   memory, so heap locations are never filtered. *)

open Srp_ir

let filter ~(access_mty : Mem_ty.t) (locs : Location.Set.t) : Location.Set.t =
  Location.Set.filter
    (fun loc ->
      match Location.mty loc with
      | None -> true (* heap: unknown cell types, keep *)
      | Some m -> Mem_ty.equal m access_mty)
    locs
