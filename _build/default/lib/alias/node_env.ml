(* Shared node universe for the points-to analyses.  Nodes stand for the
   *content* of an entity: a symbol's cell(s), a heap object's cells, a
   temp's value, or a function's return value.  Both Steensgaard and
   Andersen build the same node table so their results can be compared
   (the ablation benches do exactly that). *)

open Srp_ir

type key =
  | K_sym of int (* Symbol id *)
  | K_heap of int (* allocation Site id *)
  | K_temp of string * int (* (function name, temp id): temp ids are per-function *)
  | K_ret of string (* function return value *)
  | K_anon of int (* analysis-internal value node *)

type t = {
  ids : (key, int) Hashtbl.t;
  mutable keys : key list; (* reverse order of allocation *)
  mutable count : int;
  sym_of_id : (int, Symbol.t) Hashtbl.t; (* symbol id -> symbol, for decoding *)
}

let create () =
  { ids = Hashtbl.create 64; keys = []; count = 0; sym_of_id = Hashtbl.create 64 }

let node t key =
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
    let id = t.count in
    t.count <- t.count + 1;
    Hashtbl.replace t.ids key id;
    t.keys <- key :: t.keys;
    id

let node_of_sym t s =
  Hashtbl.replace t.sym_of_id (Symbol.id s) s;
  node t (K_sym (Symbol.id s))

let node_of_heap t site = node t (K_heap (Site.to_int site))
let node_of_temp t ~func tmp = node t (K_temp (func, Temp.id tmp))
let node_of_ret t func = node t (K_ret func)

let fresh_anon t =
  let id = t.count in
  node t (K_anon id)

let count t = t.count

(* Decode a node id back to a location, if it denotes memory. *)
let location_of_node t id =
  let key = List.nth t.keys (t.count - 1 - id) in
  match key with
  | K_sym sid -> Some (Location.Sym (Hashtbl.find t.sym_of_id sid))
  | K_heap site -> Some (Location.Heap site)
  | K_temp _ | K_ret _ | K_anon _ -> None

(* All (node id, location) pairs. *)
let memory_nodes t =
  let acc = ref [] in
  List.iteri
    (fun i key ->
      let id = t.count - 1 - i in
      match key with
      | K_sym sid -> acc := (id, Location.Sym (Hashtbl.find t.sym_of_id sid)) :: !acc
      | K_heap site -> acc := (id, Location.Heap site) :: !acc
      | K_temp _ | K_ret _ | K_anon _ -> ())
    t.keys;
  !acc
