(* Interprocedural mod/ref summaries: for every function, the set of
   locations it (transitively) may store to and may load from.  Used to
   place chi/mu around call sites.  Only locations visible across a call
   boundary matter: globals, heap objects, and address-taken locals (a
   callee's private local cannot be named by the caller). *)

open Srp_ir

type summary = { mod_set : Location.Set.t; ref_set : Location.Set.t }

type t = (string, summary) Hashtbl.t

let empty_summary = { mod_set = Location.Set.empty; ref_set = Location.Set.empty }

let visible loc =
  match loc with
  | Location.Heap _ -> true
  | Location.Sym s -> Symbol.is_global s || Symbol.addr_taken s

let restrict s =
  { mod_set = Location.Set.filter visible s.mod_set;
    ref_set = Location.Set.filter visible s.ref_set }

let find (t : t) name =
  match Hashtbl.find_opt t name with Some s -> s | None -> empty_summary

(* One local pass over [f]: direct effects plus current callee summaries. *)
let local_summary (mgr : Manager.t) (t : t) (f : Func.t) : summary =
  let fname = Func.name f in
  let mod_set = ref Location.Set.empty in
  let ref_set = ref Location.Set.empty in
  let touch_addr set (addr : Ops.addr) mty =
    match addr.Ops.base with
    | Ops.Sym s -> set := Location.Set.add (Location.Sym s) !set
    | Ops.Reg r ->
      set := Location.Set.union (Manager.points_to mgr ~func:fname ~mty r) !set
  in
  Func.iter_instrs
    (fun _ ins ->
      match ins with
      | Instr.Load { addr; mty; _ }
      | Instr.Check { addr; mty; _ }
      | Instr.Sw_check { addr; mty; _ } ->
        touch_addr ref_set addr mty
      | Instr.Store { addr; mty; _ } -> touch_addr mod_set addr mty
      | Instr.Call { callee; _ } ->
        if not (Program.is_builtin callee) then begin
          let s = find t callee in
          mod_set := Location.Set.union s.mod_set !mod_set;
          ref_set := Location.Set.union s.ref_set !ref_set
        end
      | Instr.Bin _ | Instr.Un _ | Instr.Mov _ | Instr.Alloc _ | Instr.Invala _
        ->
        ())
    f;
  restrict { mod_set = !mod_set; ref_set = !ref_set }

(* Fixpoint over the call graph (handles recursion). *)
let compute (mgr : Manager.t) (prog : Program.t) : t =
  let t : t = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        let fname = Func.name f in
        let old = find t fname in
        let s = local_summary mgr t f in
        if not
             (Location.Set.equal old.mod_set s.mod_set
             && Location.Set.equal old.ref_set s.ref_set)
        then begin
          Hashtbl.replace t fname s;
          changed := true
        end)
      (Program.funcs prog)
  done;
  t

let mod_of t name = (find t name).mod_set
let ref_of t name = (find t name).ref_set
