(* art-like kernel: adaptive resonance neural network flavour (floating
   point).

   Memory-reference character being imitated: the F1 layer scan — per
   neuron, weight and activation values are re-read around bus-value
   updates that go through a pointer selected from a table; one table slot
   aliases the weight storage, so the compiler reloads weights on every
   pass unless it speculates. *)

let source = {|
double weights[16384];
double acts[1024];
double bus[64];
double* bcur[8];

double vigilance;     // hot scalar, read per neuron
double learn_rate;    // hot scalar

int n_neurons;        // input
int n_inputs;         // input
int n_epochs;         // input
double pattern[1024]; // input
double checksum;

void setup() {
  int i;
  for (i = 0; i < 7; i = i + 1) { bcur[i] = &bus[i * 8]; }
  bcur[7] = &weights[3];
  vigilance = 0.35;
  learn_rate = 0.02;
  for (i = 0; i < n_neurons * n_inputs; i = i + 1) {
    weights[i % 16384] = 0.5 + 0.001 * (i % 700);
  }
}

double match_neuron(int j, int epoch) {
  double* cursor = bcur[(j + epoch) % 7];
  double* w = &weights[(j * n_inputs) % 8192];
  double sum = 0.0;
  int i;
  for (i = 0; i < n_inputs; i = i + 1) {
    double p = pattern[i % 1024];
    // the bus write statically may touch the weights
    *cursor = *cursor + *w * p;
    // weight re-reads after the store: registers under speculation
    sum = sum + *w * p * vigilance + p;
    w = w + 1;
  }
  if (sum * vigilance > 1.0) {
    weights[(j * n_inputs) % 8192] = weights[(j * n_inputs) % 8192] + learn_rate;
  }
  return sum * vigilance + learn_rate;
}

int main() {
  setup();
  int e;
  int j;
  for (e = 0; e < n_epochs; e = e + 1) {
    for (j = 0; j < n_neurons; j = j + 1) {
      checksum = checksum + match_neuron(j, e);
    }
  }
  print_float(checksum);
  print_float(bus[8]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "art";
    description = "neural-network F1 scan: weights re-read across bus-cursor stores";
    source;
    train =
      [ ("n_neurons", Input_gen.scalar_int 40);
        ("n_inputs", Input_gen.scalar_int 30);
        ("n_epochs", Input_gen.scalar_int 4);
        ("pattern", Input_gen.floats ~seed:181 ~n:1024 ~lo:0.0 ~hi:1.0) ];
    ref_ =
      [ ("n_neurons", Input_gen.scalar_int 140);
        ("n_inputs", Input_gen.scalar_int 90);
        ("n_epochs", Input_gen.scalar_int 18);
        ("pattern", Input_gen.floats ~seed:281 ~n:1024 ~lo:0.0 ~hi:1.0) ] }
