(* twolf-like kernel: simulated-annealing placement flavour.

   Memory-reference character being imitated: repeated evaluation of wire
   costs over heap cell records with global annealing temperature and
   penalty knobs re-read in the inner loop across penalty-table stores
   through a selected cursor. *)

let source = {|
struct site { int row; int col; int cap; struct site* link; };

struct site* sites[4096];
int penalty[128];
int* pen_ptr[8];

int temperature;   // hot scalar: annealing temperature
int row_penalty;   // hot scalar
int checksum;

int n_sites;       // input
int n_steps;       // input
int layout[8192];  // input
int picks[8192];   // input

void build() {
  int i;
  for (i = 0; i < n_sites; i = i + 1) {
    struct site* s = malloc(32);
    s->row = layout[(2 * i) % 8192] % 32;
    s->col = layout[(2 * i + 1) % 8192] % 256;
    s->cap = 2 + (i % 3);
    s->link = 0;
    sites[i] = s;
  }
  for (i = 1; i < n_sites; i = i + 1) {
    sites[i]->link = sites[picks[i % 8192] % i];
  }
  for (i = 0; i < 7; i = i + 1) { pen_ptr[i] = &penalty[i * 16]; }
  pen_ptr[7] = &temperature;   // the resident that poisons the analysis
}

int step_cost(int s1, int s2, int step) {
  struct site* a = sites[s1];
  struct site* b = sites[s2];
  int* cursor = pen_ptr[step % 7];
  // temperature is read, a penalty store intervenes, temperature re-read
  int t = temperature;
  int d = (a->row - b->row) * (a->row - b->row) + (a->col - b->col);
  *cursor = *cursor + d;
  int accept = d * 16 < temperature + t ? 1 : 0;
  if (accept == 1) {
    int r = a->row;
    a->row = b->row;
    b->row = r;
    checksum = checksum + d;
  }
  // chase the link with field re-reads
  struct site* l = a->link;
  if (l != 0) {
    int rr = l->row;
    *cursor = *cursor + rr;
    checksum = checksum + l->row + row_penalty;
  }
  return d;
}

int main() {
  build();
  temperature = 4096;
  row_penalty = 3;
  int step;
  int acc = 0;
  for (step = 0; step < n_steps; step = step + 1) {
    int s1 = picks[step % 8192] % n_sites;
    int s2 = picks[(step + 31) % 8192] % n_sites;
    if (s1 < 0) { s1 = -s1; }
    if (s2 < 0) { s2 = -s2; }
    acc = acc + step_cost(s1, s2, step);
    if ((step & 255) == 255) { temperature = temperature - (temperature / 64); }
  }
  print_int(checksum + acc);
  print_int(temperature);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "twolf";
    description = "annealing placement: temperature re-read across penalty-cursor stores";
    source;
    train =
      [ ("n_sites", Input_gen.scalar_int 400);
        ("n_steps", Input_gen.scalar_int 10000);
        ("layout", Input_gen.ints ~seed:151 ~n:8192 ~lo:0 ~hi:65535);
        ("picks", Input_gen.ints ~seed:152 ~n:8192 ~lo:0 ~hi:1000000) ];
    ref_ =
      [ ("n_sites", Input_gen.scalar_int 2500);
        ("n_steps", Input_gen.scalar_int 90000);
        ("layout", Input_gen.ints ~seed:251 ~n:8192 ~lo:0 ~hi:65535);
        ("picks", Input_gen.ints ~seed:252 ~n:8192 ~lo:0 ~hi:1000000) ] }
