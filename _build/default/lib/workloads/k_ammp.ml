(* ammp-like kernel: molecular dynamics flavour (floating point).

   Memory-reference character being imitated: atom records with double
   coordinates chased through a neighbour list; coordinates are re-read
   around force-accumulator stores that go through a cursor table whose
   static points-to set includes the atom heap.  Floating-point loads cost
   9 cycles on the modelled machine, so eliminating reloads buys far more
   here than in the integer kernels — the paper's FP benchmarks (ammp,
   art, equake) show exactly this. *)

let source = {|
struct atom { double x; double y; double z; double q; struct atom* near; };

struct atom* atoms[2048];
double forces[384];
double* fcur[8];

int n_atoms;        // input
int n_steps;        // input
double coords[4096]; // input
int neigh[4096];     // input
double checksum;

void build() {
  int i;
  for (i = 0; i < n_atoms; i = i + 1) {
    struct atom* a = malloc(40);
    a->x = coords[(3 * i) % 4096];
    a->y = coords[(3 * i + 1) % 4096];
    a->z = coords[(3 * i + 2) % 4096];
    a->q = 0.1 + coords[i % 4096] * 0.01;
    a->near = 0;
    atoms[i] = a;
  }
  for (i = 0; i < n_atoms; i = i + 1) {
    atoms[i]->near = atoms[neigh[i % 4096] % n_atoms];
  }
  for (i = 0; i < 7; i = i + 1) { fcur[i] = &forces[i * 48]; }
  fcur[7] = &(atoms[0]->x);
}

double pair_force(struct atom* a, int step) {
  struct atom* b = a->near;
  double* cursor = fcur[step % 7];
  // coordinates read, force store intervenes, coordinates re-read
  double dx = a->x - b->x;
  double dy = a->y - b->y;
  double dz = a->z - b->z;
  double r2 = dx * dx + dy * dy + dz * dz + 0.25;
  *cursor = *cursor + r2;
  double e = a->q * b->q * (2.0 - r2 * 0.125);
  double vir = a->x * dx + a->y * dy + a->z * dz;
  double damp = (dx + dy) * (dy + dz) * 0.5 - (dx - dz) * 0.25;
  double sw = damp * damp * 0.01 + (r2 + damp) * (r2 - damp) * 0.003;
  return e + vir * 0.001 + sw * (1.0 + e * 0.125);
}

int main() {
  build();
  int s;
  int i;
  for (s = 0; s < n_steps; s = s + 1) {
    for (i = 0; i < n_atoms; i = i + 1) {
      checksum = checksum + pair_force(atoms[i], s + i);
    }
  }
  print_float(checksum);
  print_float(forces[48]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "ammp";
    description = "molecular dynamics pair forces: double coordinates re-read across force-cursor stores";
    source;
    train =
      [ ("n_atoms", Input_gen.scalar_int 300);
        ("n_steps", Input_gen.scalar_int 6);
        ("coords", Input_gen.floats ~seed:171 ~n:4096 ~lo:(-4.0) ~hi:4.0);
        ("neigh", Input_gen.ints ~seed:172 ~n:4096 ~lo:0 ~hi:1000000) ];
    ref_ =
      [ ("n_atoms", Input_gen.scalar_int 1500);
        ("n_steps", Input_gen.scalar_int 40);
        ("coords", Input_gen.floats ~seed:271 ~n:4096 ~lo:(-4.0) ~hi:4.0);
        ("neigh", Input_gen.ints ~seed:272 ~n:4096 ~lo:0 ~hi:1000000) ] }
