(* Deterministic input generation for the kernels.  Every array is produced
   by the seeded splitmix PRNG, so train and ref inputs are reproducible
   bit-for-bit across runs and machines. *)

open Srp_ir

let ints ~seed ~n ~lo ~hi : Program.global_init =
  let rng = Srp_support.Rng.create seed in
  Program.Init_ints
    (Array.init n (fun _ -> Int64.of_int (lo + Srp_support.Rng.int rng (hi - lo + 1))))

(* 0/1 array where each element is 1 with probability [p]. *)
let flags ~seed ~n ~p : Program.global_init =
  let rng = Srp_support.Rng.create seed in
  Program.Init_ints
    (Array.init n (fun _ -> if Srp_support.Rng.chance rng p then 1L else 0L))

let floats ~seed ~n ~lo ~hi : Program.global_init =
  let rng = Srp_support.Rng.create seed in
  Program.Init_floats
    (Array.init n (fun _ -> lo +. (Srp_support.Rng.float rng *. (hi -. lo))))

let scalar_int v : Program.global_init = Program.Init_ints [| Int64.of_int v |]
