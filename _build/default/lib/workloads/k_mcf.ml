(* mcf-like kernel: network-simplex pricing flavour.

   Memory-reference character being imitated: pointer chasing through
   heap-allocated node and arc structures, with node fields (potential,
   depth) re-read inside the arc scan across stores through a statistics
   cursor.  The cursor is fetched from a pointer table that also holds a
   pointer into the node heap (installed once during build, never selected
   on the hot path), so *any* flow-insensitive points-to analysis must
   assume the cursor may write node fields — while the alias profile shows
   it only ever touches the stats arrays.  This "pointer table with a rare
   resident" is the C idiom (callback/state tables) that defeats the ORC
   baseline in the paper and that ALAT speculation recovers. *)

let source = {|
struct node { int potential; int depth; int flow; struct node* parent; };
struct arc { int cost; int cap; struct arc* next; struct node* tail; struct node* head; };

struct node* nodes[2048];
struct arc* arcs[6144];
int stats[256];
int* slots[16];          // slot 15 points into the node heap; never used hot

int n_nodes;      // input
int n_rounds;     // input
int costs[6144];  // input
int wiring[6144]; // input
int checksum;

void build() {
  int i;
  for (i = 0; i < n_nodes; i = i + 1) {
    struct node* nd = malloc(32);
    nd->potential = costs[i] * 3 + 1;
    nd->depth = i;
    nd->flow = 0;
    nd->parent = 0;
    nodes[i] = nd;
  }
  for (i = 1; i < n_nodes; i = i + 1) {
    nodes[i]->parent = nodes[wiring[i] % i];
  }
  for (i = 0; i < 3 * n_nodes; i = i + 1) {
    struct arc* a = malloc(40);
    a->cost = costs[i % 6144];
    a->cap = 64 + (i % 128);
    a->tail = nodes[i % n_nodes];
    a->head = nodes[wiring[i % 6144] % n_nodes];
    a->next = 0;
    arcs[i] = a;
  }
  for (i = 0; i < 15; i = i + 1) {
    slots[i] = &stats[i * 16];
  }
  // the poison entry: a genuine pointer into the heap class
  slots[15] = &(nodes[0]->flow);
}

int price_round(int r) {
  int reduced = 0;
  int i = 0;
  int m = 3 * n_nodes;
  int* cursor = slots[r % 15];     // dynamically always a stats pointer
  while (i < m) {
    struct arc* a = arcs[i];
    struct node* t = a->tail;
    struct node* h = a->head;
    // potentials are read, a cursor store intervenes (statically aliased
    // with the node heap), and the potentials are re-read
    int rc = a->cost + t->potential - h->potential;
    *cursor = *cursor + rc;
    if (rc < 0) {
      reduced = reduced + t->potential - h->potential;
    } else {
      reduced = reduced + (rc % 7);
    }
    i = i + 1;
  }
  return reduced;
}

int update_tree(int r) {
  int i;
  int depth_sum = 0;
  int* cursor = slots[(r + 3) % 15];
  for (i = 0; i < n_nodes; i = i + 1) {
    struct node* nd = nodes[i];
    struct node* p = nd->parent;
    if (p != 0) {
      // parent->depth is read on both sides of the cursor store
      int d = p->depth;
      *cursor = *cursor + d;
      depth_sum = depth_sum + p->depth + d + nd->potential;
    }
  }
  return depth_sum;
}

int main() {
  build();
  int r;
  for (r = 0; r < n_rounds; r = r + 1) {
    checksum = checksum + price_round(r);
    checksum = checksum + update_tree(r);
  }
  print_int(checksum);
  print_int(stats[16]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "mcf";
    description = "network-simplex pricing: heap pointer chasing across pointer-table cursor stores";
    source;
    train =
      [ ("n_nodes", Input_gen.scalar_int 256);
        ("n_rounds", Input_gen.scalar_int 4);
        ("costs", Input_gen.ints ~seed:111 ~n:6144 ~lo:(-40) ~hi:60);
        ("wiring", Input_gen.ints ~seed:112 ~n:6144 ~lo:0 ~hi:100000) ];
    ref_ =
      [ ("n_nodes", Input_gen.scalar_int 1400);
        ("n_rounds", Input_gen.scalar_int 12);
        ("costs", Input_gen.ints ~seed:211 ~n:6144 ~lo:(-40) ~hi:60);
        ("wiring", Input_gen.ints ~seed:212 ~n:6144 ~lo:0 ~hi:100000) ] }
