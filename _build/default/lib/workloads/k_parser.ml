(* parser-like kernel: dictionary lookup flavour.

   Memory-reference character being imitated: hash-bucket chains of
   heap-allocated word entries walked per query, with entry fields re-read
   across frequency-counter updates that go through a cursor drawn from a
   pointer table (statically it may point into the entry heap — one table
   slot really does — dynamically it stays in the counter arrays).
   Indirect references dominate the reductions here, as Figure 9 reports
   for parser. *)

let source = {|
struct entry { int key; int count; int weight; struct entry* next; };

struct entry* buckets[512];
int freq[512];
int* counters[8];

int n_words;        // input
int n_queries;      // input
int words[8192];    // input
int queries[16384]; // input
int checksum;

void insert(int key) {
  int h = key % 512;
  if (h < 0) { h = -h; }
  struct entry* e = malloc(32);
  e->key = key;
  e->count = 0;
  e->weight = key % 97;
  e->next = buckets[h];
  buckets[h] = e;
}

int lookup(int key, int qi) {
  int h = key % 512;
  if (h < 0) { h = -h; }
  int* cursor = counters[qi % 7];   // never slot 7 (the heap resident)
  struct entry* e = buckets[h];
  int hops = 0;
  while (e != 0) {
    // e->key read, cursor store intervenes, e->key and e->weight re-read
    int k = e->key;
    *cursor = *cursor + 1;
    if (e->key == key) {
      e->count = e->count + 1;
      return e->weight + hops + k;
    }
    hops = hops + e->weight - k % 3;
    e = e->next;
  }
  return hops;
}

// occasional recursive audit over a bucket chain: the deep call stack is
// what exercises the register stack engine; promotion widens each frame
// slightly, so RSE traffic grows by a few tens of percent while staying a
// vanishing fraction of total cycles (Figure 11)
int audit(struct entry* e, int* cursor, int depth) {
  if (e == 0 || depth > 40) { return depth; }
  int k = e->key;
  *cursor = *cursor + k;
  // re-reads across the cursor store: the promoted build keeps them in
  // registers, widening this frame on the deep recursive chain
  int v = e->key * 3 + e->weight;
  *cursor = *cursor + v;
  return k % 5 + audit(e->next, cursor, depth + 1) + e->weight + e->key - v;
}

int main() {
  int i;
  for (i = 0; i < 7; i = i + 1) { counters[i] = &freq[i * 64]; }
  for (i = 0; i < n_words; i = i + 1) { insert(words[i]); }
  // the poison entry: a pointer into the entry heap
  counters[7] = &(buckets[words[0] % 512 < 0 ? 0 : words[0] % 512]->count);
  int q;
  for (q = 0; q < n_queries; q = q + 1) {
    checksum = checksum + lookup(queries[q % 16384] % 4096, q);
    if ((q & 511) == 511) {
      checksum = checksum + audit(buckets[q % 512], counters[q % 7], 0);
    }
  }
  print_int(checksum);
  print_int(freq[64]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "parser";
    description = "dictionary hash chains: entry fields re-read across counter-cursor stores";
    source;
    train =
      [ ("n_words", Input_gen.scalar_int 800);
        ("n_queries", Input_gen.scalar_int 2500);
        ("words", Input_gen.ints ~seed:121 ~n:8192 ~lo:1 ~hi:4096);
        ("queries", Input_gen.ints ~seed:122 ~n:16384 ~lo:1 ~hi:4096) ];
    ref_ =
      [ ("n_words", Input_gen.scalar_int 4000);
        ("n_queries", Input_gen.scalar_int 16000);
        ("words", Input_gen.ints ~seed:221 ~n:8192 ~lo:1 ~hi:4096);
        ("queries", Input_gen.ints ~seed:222 ~n:16384 ~lo:1 ~hi:4096) ] }
