(* bzip2-like kernel: block-sorting flavour.

   Memory-reference character being imitated: repeated suffix comparisons
   over a block with hot global state (depth budget, work factor) that the
   compiler cannot register-allocate because an instrumented budget pointer
   may alias it; mostly direct scalar references, matching bzip2's profile
   in Figure 9. *)

let source = {|
int block[32768];
int ptr[32768];
int scratch[64];

int work_budget;     // hot scalar re-read in the comparison loop
int depth_limit;     // hot scalar
int* budget_ptr;     // statically may point at the scalars
int checksum;

int block_len;       // input
int n_passes;        // input
int data[32768];     // input
int poke[256];       // input: which scratch slot the budget pointer uses

int suffix_cmp(int a, int b) {
  int d = 0;
  while (d < depth_limit) {
    int ca = block[(a + d) % 32768];
    int cb = block[(b + d) % 32768];
    // budget accounting through the aliased pointer
    *budget_ptr = *budget_ptr - 1;
    if (ca != cb) { return ca - cb + work_budget % 3; }
    if (work_budget < 0) { return 0; }
    d = d + 1;
  }
  return 0;
}

int main() {
  int i;
  int p;
  for (i = 0; i < block_len; i = i + 1) {
    block[i] = data[i];
    ptr[i] = i;
  }
  work_budget = 1000000;
  depth_limit = 12;
  budget_ptr = &scratch[0];
  for (p = 0; p < n_passes; p = p + 1) {
    budget_ptr = &scratch[poke[p % 256] % 64];
    int gap = 1;
    while (gap < block_len / 3) { gap = 3 * gap + 1; }
    while (gap > 0) {
      for (i = gap; i < block_len; i = i + 1) {
        int v = ptr[i];
        int j = i;
        while (j >= gap && suffix_cmp(ptr[j - gap], v) > 0) {
          ptr[j] = ptr[j - gap];
          j = j - gap;
          if (work_budget + scratch[0] < -100000000) { j = 0; }
        }
        ptr[j] = v;
      }
      gap = gap / 3;
    }
    checksum = checksum + ptr[p % block_len];
  }
  // make the scalars genuinely address-taken on a cold path
  if (checksum == -987654321) { budget_ptr = &work_budget; *budget_ptr = 1; }
  print_int(checksum);
  print_int(work_budget);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "bzip2";
    description = "shell-sort block sorting: hot scalars re-read across budget-pointer stores";
    source;
    train =
      [ ("block_len", Input_gen.scalar_int 600);
        ("n_passes", Input_gen.scalar_int 2);
        ("data", Input_gen.ints ~seed:141 ~n:32768 ~lo:0 ~hi:255);
        ("poke", Input_gen.ints ~seed:142 ~n:256 ~lo:0 ~hi:63) ];
    ref_ =
      [ ("block_len", Input_gen.scalar_int 2600);
        ("n_passes", Input_gen.scalar_int 4);
        ("data", Input_gen.ints ~seed:241 ~n:32768 ~lo:0 ~hi:255);
        ("poke", Input_gen.ints ~seed:242 ~n:256 ~lo:0 ~hi:63) ] }
