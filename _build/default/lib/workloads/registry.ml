(* All benchmark kernels, integer first then floating point, matching the
   benchmark mix of the paper's Figure 8. *)

let all () : Srp_driver.Workload.t list =
  [ K_gzip.workload; K_vpr.workload; K_mcf.workload; K_parser.workload;
    K_bzip2.workload; K_twolf.workload; K_gap.workload; K_ammp.workload;
    K_art.workload; K_equake.workload ]

let find name =
  match List.find_opt (fun w -> w.Srp_driver.Workload.name = name) (all ()) with
  | Some w -> w
  | None -> Fmt.invalid_arg "unknown workload %s" name

let names () = List.map (fun w -> w.Srp_driver.Workload.name) (all ())
