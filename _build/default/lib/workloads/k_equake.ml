(* equake-like kernel: seismic wave propagation flavour (floating point).

   Memory-reference character being imitated: a sparse matrix-vector
   product over an archetypal CSR structure, with stiffness values and
   displacement entries re-read around excitation updates through a
   node-pointer table. *)

let source = {|
double stiff[24576];
double disp[4096];
double vel[4096];
double exc[64];
double* ecur[8];

int n_rows;        // input
int n_steps;       // input
int colidx[24576]; // input
int rowlen[4096];  // input
double kvals[24576]; // input
double checksum;

void setup() {
  int i;
  for (i = 0; i < 24576; i = i + 1) { stiff[i] = kvals[i]; }
  for (i = 0; i < 7; i = i + 1) { ecur[i] = &exc[i * 8]; }
  ecur[7] = &disp[1];
  for (i = 0; i < n_rows; i = i + 1) { disp[i] = 0.001 * (i % 97); }
}

double smvp_row(int row, int step) {
  double* cursor = ecur[(row + step) % 7];
  int len = 4 + rowlen[row % 4096] % 12;
  int base = (row * 6) % 24000;
  double sum = 0.0;
  int j;
  for (j = 0; j < len; j = j + 1) {
    int col = colidx[(base + j) % 24576] % n_rows;
    if (col < 0) { col = -col; }
    double k = stiff[(base + j) % 24576];
    double d = disp[col];
    // excitation update: statically may alias disp and stiff
    *cursor = *cursor + k * d;
    sum = sum + k * disp[col] + stiff[(base + j) % 24576] * 0.5;
  }
  return sum;
}

int main() {
  setup();
  int s;
  int r;
  for (s = 0; s < n_steps; s = s + 1) {
    for (r = 0; r < n_rows; r = r + 1) {
      double a = smvp_row(r, s);
      vel[r] = vel[r] + a * 0.01;
      checksum = checksum + a;
    }
  }
  print_float(checksum);
  print_float(vel[7]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "equake";
    description = "sparse matvec: stiffness and displacement re-read across excitation-cursor stores";
    source;
    train =
      [ ("n_rows", Input_gen.scalar_int 200);
        ("n_steps", Input_gen.scalar_int 6);
        ("colidx", Input_gen.ints ~seed:191 ~n:24576 ~lo:0 ~hi:1000000);
        ("rowlen", Input_gen.ints ~seed:192 ~n:4096 ~lo:0 ~hi:1000);
        ("kvals", Input_gen.floats ~seed:193 ~n:24576 ~lo:(-1.0) ~hi:1.0) ];
    ref_ =
      [ ("n_rows", Input_gen.scalar_int 1800);
        ("n_steps", Input_gen.scalar_int 24);
        ("colidx", Input_gen.ints ~seed:291 ~n:24576 ~lo:0 ~hi:1000000);
        ("rowlen", Input_gen.ints ~seed:292 ~n:4096 ~lo:0 ~hi:1000);
        ("kvals", Input_gen.floats ~seed:293 ~n:24576 ~lo:(-1.0) ~hi:1.0) ] }
