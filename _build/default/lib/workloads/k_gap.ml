(* gap-like kernel: computational group theory flavour.

   Memory-reference character being imitated: permutation composition over
   heap-allocated permutation objects with a global bag size and result
   cache, where cache-update stores go through a handle table that may
   (statically) point back into the permutation heap. *)

let source = {|
struct perm { int deg; int base; int* map; };

struct perm* bag[256];
int cache[512];
int* handles[8];

int degree;       // input
int n_products;   // input
int seeds[4096];  // input
int checksum;

struct perm* make_perm(int seed) {
  struct perm* p = malloc(24);
  p->deg = degree;
  p->base = seed % 7;
  int* m = malloc(8 * degree);
  int i;
  for (i = 0; i < degree; i = i + 1) {
    m[i] = (i * (1 + 2 * (seed % 8)) + seed) % degree;
  }
  p->map = m;
  return p;
}

int compose(struct perm* a, struct perm* b, int h) {
  int* cursor = handles[h % 7];
  int i;
  int sum = 0;
  int* am = a->map;
  int* bm = b->map;
  int bd = b->deg;
  for (i = 0; i < a->deg; i = i + 1) {
    // a->deg and a->base stay register-resident only if the cursor
    // stores can be speculated away
    int x = bm[i % bd];
    int y = am[x % a->deg];
    *cursor = *cursor + y;
    sum = sum + y * 3 + (y ^ x) + a->base;
  }
  return sum;
}

int main() {
  int i;
  for (i = 0; i < 7; i = i + 1) { handles[i] = &cache[i * 64]; }
  for (i = 0; i < 64; i = i + 1) { bag[i] = make_perm(seeds[i % 4096]); }
  handles[7] = &(bag[0]->deg);
  int k;
  for (k = 0; k < n_products; k = k + 1) {
    struct perm* a = bag[seeds[k % 4096] % 64];
    struct perm* b = bag[seeds[(k + 9) % 4096] % 64];
    if (a != 0 && b != 0) {
      checksum = checksum + compose(a, b, k);
    }
  }
  print_int(checksum);
  print_int(cache[64]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "gap";
    description = "permutation composition: map pointers re-read across cache-cursor stores";
    source;
    train =
      [ ("degree", Input_gen.scalar_int 48);
        ("n_products", Input_gen.scalar_int 600);
        ("seeds", Input_gen.ints ~seed:161 ~n:4096 ~lo:1 ~hi:100000) ];
    ref_ =
      [ ("degree", Input_gen.scalar_int 96);
        ("n_products", Input_gen.scalar_int 4500);
        ("seeds", Input_gen.ints ~seed:261 ~n:4096 ~lo:1 ~hi:100000) ] }
