lib/workloads/k_mcf.ml: Input_gen Srp_driver
