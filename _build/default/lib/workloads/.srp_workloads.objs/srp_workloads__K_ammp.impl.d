lib/workloads/k_ammp.ml: Input_gen Srp_driver
