lib/workloads/input_gen.ml: Array Int64 Program Srp_ir Srp_support
