lib/workloads/k_vpr.ml: Input_gen Srp_driver
