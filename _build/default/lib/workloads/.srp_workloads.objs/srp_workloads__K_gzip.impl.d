lib/workloads/k_gzip.ml: Input_gen Srp_driver
