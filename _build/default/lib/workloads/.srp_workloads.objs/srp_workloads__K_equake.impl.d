lib/workloads/k_equake.ml: Input_gen Srp_driver
