lib/workloads/k_gap.ml: Input_gen Srp_driver
