lib/workloads/registry.ml: Fmt K_ammp K_art K_bzip2 K_equake K_gap K_gzip K_mcf K_parser K_twolf K_vpr List Srp_driver
