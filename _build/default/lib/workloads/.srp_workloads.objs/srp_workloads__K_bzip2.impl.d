lib/workloads/k_bzip2.ml: Input_gen Srp_driver
