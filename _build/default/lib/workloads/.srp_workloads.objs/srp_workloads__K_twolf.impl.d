lib/workloads/k_twolf.ml: Input_gen Srp_driver
