lib/workloads/k_parser.ml: Input_gen Srp_driver
