lib/workloads/k_art.ml: Input_gen Srp_driver
