(* vpr-like kernel: placement cost evaluation flavour.

   Memory-reference character being imitated: a grid of heap-allocated
   cells; candidate swaps evaluate bounding-box cost by re-reading cell
   coordinates around updates of per-net cost accumulators reached through
   a cursor table (one table slot points back into the cell heap, so the
   compiler must assume the accumulator stores clobber coordinates). *)

let source = {|
struct cell { int x; int y; int w; int net; };

struct cell* grid[4096];
int net_cost[128];
int* acc[8];

int n_cells;      // input
int n_moves;      // input
int coords[8192]; // input
int moves[8192];  // input
int checksum;

void build() {
  int i;
  for (i = 0; i < n_cells; i = i + 1) {
    struct cell* c = malloc(32);
    c->x = coords[(2 * i) % 8192] % 64;
    c->y = coords[(2 * i + 1) % 8192] % 64;
    c->w = 1 + (i % 4);
    c->net = i % 128;
    grid[i] = c;
  }
  for (i = 0; i < 7; i = i + 1) { acc[i] = &net_cost[i * 16]; }
  acc[7] = &(grid[0]->x);
}

int swap_cost(int a, int b, int m) {
  struct cell* ca = grid[a];
  struct cell* cb = grid[b];
  int* cursor = acc[m % 7];
  // coordinates read, accumulator store, coordinates re-read
  int dx = ca->x - cb->x;
  int dy = ca->y - cb->y;
  *cursor = *cursor + dx * dx + dy * dy;
  int cost = ca->x * cb->w + cb->x * ca->w + ca->y + cb->y;
  if (cost % 5 == 0) {
    // commit the swap
    int t = ca->x;
    ca->x = cb->x;
    cb->x = t;
  }
  return cost + dx - dy;
}

int main() {
  build();
  int m;
  for (m = 0; m < n_moves; m = m + 1) {
    int a = moves[m % 8192] % n_cells;
    int b = moves[(m + 17) % 8192] % n_cells;
    if (a < 0) { a = -a; }
    if (b < 0) { b = -b; }
    checksum = checksum + swap_cost(a, b, m);
  }
  print_int(checksum);
  print_int(net_cost[16]);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "vpr";
    description = "placement swaps: cell coordinates re-read across accumulator-cursor stores";
    source;
    train =
      [ ("n_cells", Input_gen.scalar_int 512);
        ("n_moves", Input_gen.scalar_int 12000);
        ("coords", Input_gen.ints ~seed:131 ~n:8192 ~lo:0 ~hi:4095);
        ("moves", Input_gen.ints ~seed:132 ~n:8192 ~lo:0 ~hi:1000000) ];
    ref_ =
      [ ("n_cells", Input_gen.scalar_int 3000);
        ("n_moves", Input_gen.scalar_int 120000);
        ("coords", Input_gen.ints ~seed:231 ~n:8192 ~lo:0 ~hi:4095);
        ("moves", Input_gen.ints ~seed:232 ~n:8192 ~lo:0 ~hi:1000000) ] }
