(* gzip-like kernel: LZ77 window compression flavour.

   Memory-reference character being imitated: hash-chain matching over a
   sliding window, with global compression state (match length cut-offs,
   strategy knobs) that the compiler cannot keep in registers because a
   tuning pointer may alias it.  The tuning pointer genuinely does hit the
   hot state occasionally (the paper measures a ~5% mis-speculation ratio
   on gzip, the highest of all benchmarks) — driven here by the [tune_sel]
   input flags. *)

let source = {|
int window[16384];
int head[1024];
int prev[16384];
int scratch[64];

int max_chain;     // hot scalar: loaded every probe
int good_match;    // hot scalar
int nice_match;    // hot scalar
int* tune_ptr;     // may point at the hot scalars or at scratch
int checksum;

int input_len;           // scalar input
int tune_sel[512];       // 1 => this round really retunes a hot scalar
int data[16384];         // input bytes

int hash3(int pos) {
  int h = data[pos] * 31 + data[pos + 1] * 7 + data[pos + 2];
  if (h < 0) { h = -h; }
  return h % 1024;
}

int longest_match(int pos, int cur) {
  int chain = max_chain;        // register candidate
  int best = 2;
  while (cur > 0 && chain > 0) {
    int* cp = &window[cur % 16384];
    int* pp = &window[pos % 16384];
    int len = 0;
    while (len < 24 && pos + len < input_len && *cp == *pp) {
      // tuning feedback between the probe reads: the window values are
      // re-read after this store, and one (never-taken) retuning path
      // points the tuning pointer into the window, so the compiler must
      // assume the store clobbers the probes
      *tune_ptr = *tune_ptr + 1;
      len = len + 1 + (*cp - *pp);
      cp = cp + 1;
      pp = pp + 1;
    }
    if (len > best) {
      best = len;
      *tune_ptr = best;
      if (best >= nice_match) { chain = 0; }
    }
    chain = chain - 1;
    // chained probes reload max_chain-family state each round in real
    // gzip because the tuning pointer may alias it
    if (best < good_match) { chain = chain - (max_chain / 64); }
    cur = prev[cur % 16384];
  }
  return best;
}

int main() {
  int pos = 0;
  int round = 0;
  max_chain = 64;
  good_match = 8;
  nice_match = 16;
  tune_ptr = &scratch[0];
  while (pos + 3 < input_len) {
    window[pos % 16384] = data[pos];
    int h = hash3(pos);
    int cand = head[h];
    head[h] = pos;
    prev[pos % 16384] = cand;
    if (cand > 0 && cand < pos) {
      int m = longest_match(pos, cand);
      checksum = checksum + m;
      if (m > 4) { pos = pos + m; } else { pos = pos + 1; }
    } else {
      pos = pos + 1;
    }
    // periodic retuning: mostly writes scratch, sometimes the real knobs
    if ((pos & 63) == 0) {
      if (tune_sel[round % 512] == 1) { tune_ptr = &max_chain; }
      else { tune_ptr = &scratch[round % 64]; }
      if (tune_sel[round % 512] == 2) { tune_ptr = &window[pos % 16384]; }
      *tune_ptr = 48 + (round % 32);
      round = round + 1;
    }
  }
  print_int(checksum);
  print_int(max_chain);
  return 0;
}
|}

let workload : Srp_driver.Workload.t =
  { name = "gzip";
    description = "LZ77 hash-chain matching with occasionally-aliased tuning state";
    source;
    train =
      [ ("input_len", Input_gen.scalar_int 3000);
        ("data", Input_gen.ints ~seed:101 ~n:16384 ~lo:0 ~hi:15);
        ("tune_sel", Input_gen.flags ~seed:102 ~n:512 ~p:0.0) ];
    ref_ =
      [ ("input_len", Input_gen.scalar_int 14000);
        ("data", Input_gen.ints ~seed:201 ~n:16384 ~lo:0 ~hi:15);
        ("tune_sel", Input_gen.flags ~seed:202 ~n:512 ~p:0.22) ] }
