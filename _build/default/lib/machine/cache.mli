(** Two-level data cache with an Itanium-like latency profile.

    Integer L1D hits cost {!lat_l1} = 2 cycles and floating-point loads
    bypass L1 at {!lat_fp} = 9 cycles — both numbers straight from section
    4 of the paper, and the reason its FP benchmarks gain the most from
    eliminating loads. *)

type t

(** 16 KiB 4-way L1, 256 KiB 8-way L2, 64-byte lines, LRU. *)
val create : unit -> t

val lat_l1 : int  (** integer L1 hit: 2 cycles *)

val lat_fp : int  (** FP load (L1 bypass): 9 cycles *)

val lat_l2 : int  (** integer L1 miss, L2 hit *)

val lat_mem : int  (** L2 miss *)

(** Latency of a load at an address; allocates lines and updates the hit
    and miss counters. *)
val load_latency : t -> Counters.t -> fp:bool -> int64 -> int

(** A store refreshes line state; its own latency is hidden (store
    buffering). *)
val store_touch : t -> int64 -> unit
