lib/machine/rse.mli: Counters
