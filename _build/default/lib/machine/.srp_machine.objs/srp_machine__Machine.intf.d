lib/machine/machine.mli: Counters Srp_target
