lib/machine/rse.ml: Counters List
