lib/machine/cache.ml: Array Counters Float Int64
