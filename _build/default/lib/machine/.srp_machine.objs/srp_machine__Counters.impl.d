lib/machine/counters.ml: Fmt
