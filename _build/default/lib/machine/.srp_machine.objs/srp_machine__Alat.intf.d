lib/machine/alat.mli:
