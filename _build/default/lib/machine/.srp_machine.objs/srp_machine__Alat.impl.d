lib/machine/alat.ml: Array Int64
