lib/machine/cache.mli: Counters
