lib/machine/machine.ml: Alat Array Buffer Cache Counters Fmt Hashtbl Insn Int64 List Option Rse Srp_alias Srp_ir Srp_profile Srp_target Sys
