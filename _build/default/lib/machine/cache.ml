(* Two-level data cache with an Itanium-like latency profile:
   - integer L1D hit: 2 cycles (the number the paper quotes in section 4);
   - floating-point loads bypass L1 and are served from L2 at 9 cycles
     (also straight from section 4: "the latency of a floating point load
     on Itanium is 9 cycles");
   - L2 hit: 13 cycles for integer L1 misses;
   - memory: 150 cycles.
   Write-allocate, LRU within set.  Stores update both levels; store
   latency itself is hidden (store buffers), only the line-fill state
   matters. *)

type level = {
  n_sets : int;
  ways : int;
  line_shift : int;
  tags : int array; (* n_sets * ways; -1 = invalid *)
  lru : int array; (* smaller = older *)
  mutable tick : int;
}

let mk_level ~size_bytes ~ways ~line =
  let line_shift =
    int_of_float (Float.round (Float.log2 (float_of_int line)))
  in
  let n_sets = size_bytes / (line * ways) in
  { n_sets; ways; line_shift; tags = Array.make (n_sets * ways) (-1);
    lru = Array.make (n_sets * ways) 0; tick = 0 }

(* Access a level; true = hit.  Always allocates on miss. *)
let access_level l (addr : int64) : bool =
  let block = Int64.to_int (Int64.shift_right_logical addr l.line_shift) in
  let set = block mod l.n_sets in
  let base = set * l.ways in
  l.tick <- l.tick + 1;
  let hit = ref false in
  for i = base to base + l.ways - 1 do
    if l.tags.(i) = block then begin
      hit := true;
      l.lru.(i) <- l.tick
    end
  done;
  if not !hit then begin
    (* victim: LRU way *)
    let victim = ref base in
    for i = base to base + l.ways - 1 do
      if l.lru.(i) < l.lru.(!victim) then victim := i
    done;
    l.tags.(!victim) <- block;
    l.lru.(!victim) <- l.tick
  end;
  !hit

type t = { l1 : level; l2 : level }

let create () =
  { l1 = mk_level ~size_bytes:16_384 ~ways:4 ~line:64;
    l2 = mk_level ~size_bytes:262_144 ~ways:8 ~line:64 }

let lat_l1 = 2
let lat_fp = 9
let lat_l2 = 13
let lat_mem = 150

(* Latency of a load; updates both levels and the counters. *)
let load_latency t (c : Counters.t) ~(fp : bool) (addr : int64) : int =
  let l1_hit = access_level t.l1 addr in
  if l1_hit && not fp then begin
    c.Counters.l1_hits <- c.Counters.l1_hits + 1;
    lat_l1
  end
  else begin
    if not l1_hit then c.Counters.l1_misses <- c.Counters.l1_misses + 1
    else c.Counters.l1_hits <- c.Counters.l1_hits + 1;
    let l2_hit = access_level t.l2 addr in
    if l2_hit then if fp then lat_fp else lat_l2
    else begin
      c.Counters.l2_misses <- c.Counters.l2_misses + 1;
      lat_mem
    end
  end

(* Stores refresh the line state; their latency is hidden. *)
let store_touch t (addr : int64) : unit =
  ignore (access_level t.l1 addr);
  ignore (access_level t.l2 addr)
