(* pfmon-style hardware counters.  Everything the paper's Figures 8-11
   report is derived from these. *)

type t = {
  mutable cycles : int;
  mutable instrs_retired : int;
  mutable loads_retired : int; (* ld, ld.a, ld.sa, and ld.c reloads *)
  mutable fp_loads_retired : int;
  mutable stores_retired : int;
  mutable checks_retired : int; (* ld.c executed *)
  mutable check_failures : int; (* ld.c that missed and reloaded *)
  mutable alat_inserts : int;
  mutable alat_evictions : int; (* capacity evictions *)
  mutable alat_store_invalidations : int;
  mutable invala_retired : int;
  mutable data_access_cycles : int; (* stall cycles waiting on memory results *)
  mutable rse_cycles : int; (* register stack spill/fill traffic *)
  mutable rse_spilled_regs : int;
  mutable rse_filled_regs : int;
  mutable branch_mispredicts : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable max_stacked_regs : int;
}

let create () =
  { cycles = 0; instrs_retired = 0; loads_retired = 0; fp_loads_retired = 0;
    stores_retired = 0; checks_retired = 0; check_failures = 0;
    alat_inserts = 0; alat_evictions = 0; alat_store_invalidations = 0;
    invala_retired = 0; data_access_cycles = 0; rse_cycles = 0;
    rse_spilled_regs = 0; rse_filled_regs = 0; branch_mispredicts = 0;
    l1_hits = 0; l1_misses = 0; l2_misses = 0; max_stacked_regs = 0 }

let pp ppf c =
  Fmt.pf ppf
    "@[<v>cycles                %d@,instructions retired  %d@,\
     loads retired         %d@,fp loads retired      %d@,\
     stores retired        %d@,checks retired        %d@,\
     check failures        %d@,alat inserts          %d@,\
     alat evictions        %d@,alat store invalid.   %d@,\
     invala retired        %d@,data access cycles    %d@,\
     rse cycles            %d@,branch mispredicts    %d@,\
     L1 hits/misses        %d/%d@,L2 misses             %d@]"
    c.cycles c.instrs_retired c.loads_retired c.fp_loads_retired
    c.stores_retired c.checks_retired c.check_failures c.alat_inserts
    c.alat_evictions c.alat_store_invalidations c.invala_retired
    c.data_access_cycles c.rse_cycles c.branch_mispredicts c.l1_hits
    c.l1_misses c.l2_misses
