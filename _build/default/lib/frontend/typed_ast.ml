(* Type-annotated AST produced by elaboration and consumed by lowering.
   Every expression carries its MiniC type; lvalue/rvalue distinction is
   resolved during lowering. *)

type texpr = { tdesc : tdesc; tty : Ast.ty; tpos : Ast.pos }

and tdesc =
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tvar of string (* resolved unique variable name *)
  | Tbin of Ast.binop * texpr * texpr
  | Tun of Ast.unop * texpr
  | Tderef of texpr
  | Taddr of texpr
  | Tindex of texpr * texpr
  | Tfield of texpr * Struct_env.field
  | Tarrow of texpr * Struct_env.field
  | Tcall of string * texpr list
  | Tcond of texpr * texpr * texpr
  | Tcast_i2f of texpr (* implicit int -> double *)
  | Tcast_f2i of texpr (* implicit double -> int *)

type tstmt =
  | TSdecl of Ast.ty * string * texpr option (* unique name *)
  | TSassign of texpr * texpr (* lvalue, rvalue *)
  | TSexpr of texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSdo of tstmt list * texpr
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSblock of tstmt list

type tfunc = {
  tf_name : string;
  tf_ret : Ast.ty;
  tf_formals : (Ast.ty * string) list;
  tf_body : tstmt list;
}

type tglobal = {
  tg_ty : Ast.ty;
  tg_name : string;
  tg_init : tinit option;
}

and tinit = TIscalar of texpr | TIlist of texpr list

type tprogram = {
  tp_structs : Struct_env.t;
  tp_globals : tglobal list;
  tp_funcs : tfunc list;
}
