(* MiniC abstract syntax.

   MiniC is the C subset the reproduction compiles: 64-bit [int] and
   [double], pointers, fixed-size arrays, structs, address-of, malloc,
   functions, if/while/for, and the usual expression operators.  It is rich
   enough to express every code shape in the paper (Figures 1-4) and the
   SPEC-like kernels, while keeping the front end small. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

type ty =
  | Tint
  | Tdouble
  | Tptr of ty
  | Tarr of ty * int
  | Tstruct of string
  | Tvoid
  | Tany_ptr (* type of malloc(..) and of the null literal in ptr context *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tdouble -> Fmt.string ppf "double"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tarr (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tvoid -> Fmt.string ppf "void"
  | Tany_ptr -> Fmt.string ppf "void*"

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Band | Bor | Bxor | Bshl | Bshr
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Bland | Blor (* short-circuit *)

type unop = Uneg | Unot (* logical ! *) | Ubnot (* bitwise ~ *)

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Eint of int64
  | Efloat of float
  | Eident of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ederef of expr (* *e *)
  | Eaddr of expr (* &lvalue *)
  | Eindex of expr * expr (* e[i] *)
  | Efield of expr * string (* e.f *)
  | Earrow of expr * string (* e->f *)
  | Ecall of string * expr list
  | Econd of expr * expr * expr (* c ? a : b *)

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Sdecl of ty * string * expr option
  | Sassign of expr * expr (* lvalue = rvalue *)
  | Sop_assign of binop * expr * expr (* lvalue op= rvalue *)
  | Sexpr of expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr (* do { .. } while (e); *)
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type func_decl = {
  fname : string;
  fret : ty;
  fformals : (ty * string) list;
  fbody : stmt list;
  fpos : pos;
}

type global_decl = {
  gty : ty;
  gname : string;
  ginit : init option;
  gpos : pos;
}

and init =
  | Iscalar of expr
  | Ilist of expr list (* array initializer *)

type struct_decl = {
  sname : string;
  sfields : (ty * string) list;
  spos : pos;
}

type decl =
  | Dstruct of struct_decl
  | Dglobal of global_decl
  | Dfunc of func_decl

type program = decl list
