(* Elaboration: name resolution (scoped locals get unique names), type
   checking, implicit int<->double conversions, and pointer-arithmetic
   typing.  Produces the [Typed_ast] consumed by [Lower]. *)

exception Type_error = Struct_env.Type_error

let terror = Struct_env.terror

type var_info = { v_uname : string; v_ty : Ast.ty }

type fsig = { fs_ret : Ast.ty; fs_formals : Ast.ty list }

type env = {
  structs : Struct_env.t;
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable scopes : (string, var_info) Hashtbl.t list;
  mutable counter : int;
  mutable ret_ty : Ast.ty;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare_local env pos name ty =
  match env.scopes with
  | [] -> assert false
  | scope :: _ ->
    if Hashtbl.mem scope name then
      terror pos "duplicate variable %s in the same scope" name;
    env.counter <- env.counter + 1;
    let uname =
      if env.counter = 0 then name else Fmt.str "%s.%d" name env.counter
    in
    let info = { v_uname = uname; v_ty = ty } in
    Hashtbl.replace scope name info;
    info

let lookup_var env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some info -> Some info
      | None -> go rest)
  in
  match go env.scopes with
  | Some info -> Some info
  | None -> (
    match Hashtbl.find_opt env.globals name with
    | Some ty -> Some { v_uname = name; v_ty = ty }
    | None -> None)

(* --- type predicates and coercions --- *)

let is_ptr = function Ast.Tptr _ | Ast.Tany_ptr -> true | _ -> false

let is_arith = function Ast.Tint | Ast.Tdouble -> true | _ -> false

let elt_of_ptr pos = function
  | Ast.Tptr t -> t
  | Ast.Tany_ptr -> terror pos "cannot dereference a void* (assign it to a typed pointer first)"
  | t -> terror pos "expected a pointer, got %a" Ast.pp_ty t

(* Insert implicit conversion of [e] to [want] if needed. *)
let coerce pos (e : Typed_ast.texpr) (want : Ast.ty) : Typed_ast.texpr =
  let open Typed_ast in
  match e.tty, want with
  | a, b when a = b -> e
  | Ast.Tint, Ast.Tdouble -> { tdesc = Tcast_i2f e; tty = Ast.Tdouble; tpos = e.tpos }
  | Ast.Tdouble, Ast.Tint -> { tdesc = Tcast_f2i e; tty = Ast.Tint; tpos = e.tpos }
  | Ast.Tany_ptr, Ast.Tptr _ -> { e with tty = want }
  | Ast.Tptr _, Ast.Tany_ptr -> { e with tty = want }
  (* integer literal 0 (or any int) as null pointer *)
  | Ast.Tint, Ast.Tptr _ -> { e with tty = want }
  | Ast.Tarr (elt, _), Ast.Tptr elt' when elt = elt' -> e (* decay handled in lowering *)
  | a, b -> terror pos "type mismatch: cannot use %a where %a is expected" Ast.pp_ty a Ast.pp_ty b

(* --- expressions --- *)

let rec check_expr env (e : Ast.expr) : Typed_ast.texpr =
  let open Typed_ast in
  let pos = e.Ast.pos in
  let mk tdesc tty = { tdesc; tty; tpos = pos } in
  match e.Ast.desc with
  | Ast.Eint v -> mk (Tint_lit v) Ast.Tint
  | Ast.Efloat v -> mk (Tfloat_lit v) Ast.Tdouble
  | Ast.Eident name -> (
    match lookup_var env name with
    | Some { v_uname; v_ty } -> mk (Tvar v_uname) v_ty
    | None -> terror pos "unknown variable %s" name)
  | Ast.Eun (op, a) -> (
    let ta = check_expr env a in
    match op with
    | Ast.Uneg ->
      if not (is_arith ta.tty) then
        terror pos "operand of unary - must be arithmetic";
      mk (Tun (op, ta)) ta.tty
    | Ast.Unot ->
      (* !e is defined on ints and pointers, yields int 0/1 *)
      if not (is_arith ta.tty || is_ptr ta.tty) then
        terror pos "operand of ! must be scalar";
      mk (Tun (op, ta)) Ast.Tint
    | Ast.Ubnot ->
      if ta.tty <> Ast.Tint then terror pos "operand of ~ must be int";
      mk (Tun (op, ta)) Ast.Tint)
  | Ast.Ederef a ->
    let ta = check_expr env a in
    let ta = decay ta in
    mk (Tderef ta) (elt_of_ptr pos ta.tty)
  | Ast.Eaddr a ->
    let ta = check_expr env a in
    check_lvalue pos ta;
    mk (Taddr ta) (Ast.Tptr ta.tty)
  | Ast.Eindex (a, i) ->
    let ta = check_expr env a in
    let ti = coerce pos (check_expr env i) Ast.Tint in
    let elt =
      match ta.tty with
      | Ast.Tarr (elt, _) -> elt
      | Ast.Tptr elt -> elt
      | t -> terror pos "cannot index a %a" Ast.pp_ty t
    in
    mk (Tindex (ta, ti)) elt
  | Ast.Efield (a, fname) -> (
    let ta = check_expr env a in
    match ta.tty with
    | Ast.Tstruct sname ->
      let f = Struct_env.field env.structs pos sname fname in
      mk (Tfield (ta, f)) f.Struct_env.f_ty
    | t -> terror pos "field access on non-struct %a" Ast.pp_ty t)
  | Ast.Earrow (a, fname) -> (
    let ta = decay (check_expr env a) in
    match ta.tty with
    | Ast.Tptr (Ast.Tstruct sname) ->
      let f = Struct_env.field env.structs pos sname fname in
      mk (Tarrow (ta, f)) f.Struct_env.f_ty
    | t -> terror pos "-> on non-struct-pointer %a" Ast.pp_ty t)
  | Ast.Ecall (name, args) -> check_call env pos name args
  | Ast.Econd (c, a, b) ->
    let tc = check_scalar env c in
    let ta = check_expr env a and tb = check_expr env b in
    let ta, tb, ty = unify_arith pos ta tb in
    mk (Tcond (tc, ta, tb)) ty
  | Ast.Ebin (op, a, b) -> check_binop env pos op a b

(* Array-to-pointer decay for value contexts. *)
and decay (e : Typed_ast.texpr) : Typed_ast.texpr =
  match e.Typed_ast.tty with
  | Ast.Tarr (elt, _) -> { e with Typed_ast.tty = Ast.Tptr elt }
  | _ -> e

and check_scalar env e =
  let te = decay (check_expr env e) in
  if not (is_arith te.Typed_ast.tty || is_ptr te.Typed_ast.tty) then
    terror e.Ast.pos "expected a scalar expression";
  te

(* Make both sides the same arithmetic (or pointer) type. *)
and unify_arith pos (a : Typed_ast.texpr) (b : Typed_ast.texpr) =
  let a = decay a and b = decay b in
  match a.Typed_ast.tty, b.Typed_ast.tty with
  | Ast.Tint, Ast.Tint -> a, b, Ast.Tint
  | Ast.Tdouble, Ast.Tdouble -> a, b, Ast.Tdouble
  | Ast.Tint, Ast.Tdouble -> coerce pos a Ast.Tdouble, b, Ast.Tdouble
  | Ast.Tdouble, Ast.Tint -> a, coerce pos b Ast.Tdouble, Ast.Tdouble
  | (Ast.Tptr _ | Ast.Tany_ptr), Ast.Tint -> a, { b with Typed_ast.tty = a.Typed_ast.tty }, a.Typed_ast.tty
  | Ast.Tint, (Ast.Tptr _ | Ast.Tany_ptr) -> { a with Typed_ast.tty = b.Typed_ast.tty }, b, b.Typed_ast.tty
  | (Ast.Tptr _ | Ast.Tany_ptr), (Ast.Tptr _ | Ast.Tany_ptr) -> a, b, a.Typed_ast.tty
  | ta, tb -> terror pos "cannot combine %a and %a" Ast.pp_ty ta Ast.pp_ty tb

and check_binop env pos op a b : Typed_ast.texpr =
  let open Typed_ast in
  let mk tdesc tty = { tdesc; tty; tpos = pos } in
  match op with
  | Ast.Bland | Ast.Blor ->
    let ta = check_scalar env a and tb = check_scalar env b in
    mk (Tbin (op, ta, tb)) Ast.Tint
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
    let ta = check_expr env a and tb = check_expr env b in
    let ta, tb, _ = unify_arith pos ta tb in
    mk (Tbin (op, ta, tb)) Ast.Tint
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Bshl | Ast.Bshr | Ast.Brem ->
    let ta = coerce pos (check_expr env a) Ast.Tint in
    let tb = coerce pos (check_expr env b) Ast.Tint in
    mk (Tbin (op, ta, tb)) Ast.Tint
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv ->
    let ta = decay (check_expr env a) and tb = decay (check_expr env b) in
    (* pointer arithmetic: ptr +/- int *)
    (match ta.tty, tb.tty, op with
    | Ast.Tptr _, Ast.Tint, (Ast.Badd | Ast.Bsub) -> mk (Tbin (op, ta, tb)) ta.tty
    | Ast.Tint, Ast.Tptr _, Ast.Badd -> mk (Tbin (op, tb, ta)) tb.tty
    | _ ->
      let ta, tb, ty = unify_arith pos ta tb in
      if not (is_arith ty) then
        terror pos "arithmetic on non-arithmetic types";
      mk (Tbin (op, ta, tb)) ty)

and check_call env pos name args : Typed_ast.texpr =
  let open Typed_ast in
  let targs = List.map (fun a -> decay (check_expr env a)) args in
  let mk tdesc tty = { tdesc; tty; tpos = pos } in
  match name with
  | "print_int" -> (
    match targs with
    | [ a ] -> mk (Tcall (name, [ coerce pos a Ast.Tint ])) Ast.Tvoid
    | _ -> terror pos "print_int expects 1 argument")
  | "print_float" -> (
    match targs with
    | [ a ] -> mk (Tcall (name, [ coerce pos a Ast.Tdouble ])) Ast.Tvoid
    | _ -> terror pos "print_float expects 1 argument")
  | "malloc" -> (
    match targs with
    | [ a ] -> mk (Tcall (name, [ coerce pos a Ast.Tint ])) Ast.Tany_ptr
    | _ -> terror pos "malloc expects 1 argument")
  | _ -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> terror pos "unknown function %s" name
    | Some { fs_ret; fs_formals } ->
      if List.length fs_formals <> List.length targs then
        terror pos "%s expects %d arguments, got %d" name
          (List.length fs_formals) (List.length targs);
      let targs = List.map2 (fun a ty -> coerce pos a ty) targs fs_formals in
      mk (Tcall (name, targs)) fs_ret)

and check_lvalue pos (e : Typed_ast.texpr) =
  let open Typed_ast in
  match e.tdesc with
  | Tvar _ | Tderef _ | Tindex _ | Tfield _ | Tarrow _ -> ()
  | _ -> terror pos "expression is not an lvalue"

(* --- statements --- *)

let rec check_stmt env (s : Ast.stmt) : Typed_ast.tstmt =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Sdecl (ty, name, init) ->
    (match ty with
    | Ast.Tvoid -> terror pos "cannot declare a void variable"
    | _ -> ());
    let tinit =
      Option.map (fun e -> check_expr env e) init
    in
    let info = declare_local env pos name ty in
    let tinit =
      Option.map
        (fun (te : Typed_ast.texpr) ->
          if is_arith ty || is_ptr ty then coerce pos (decay te) ty
          else terror pos "aggregate initialization is not supported for locals")
        tinit
    in
    Typed_ast.TSdecl (ty, info.v_uname, tinit)
  | Ast.Sassign (lhs, rhs) ->
    let tl = check_expr env lhs in
    check_lvalue pos tl;
    let tr = check_expr env rhs in
    let tr =
      if is_arith tl.Typed_ast.tty || is_ptr tl.Typed_ast.tty then
        coerce pos (decay tr) tl.Typed_ast.tty
      else terror pos "cannot assign aggregates"
    in
    Typed_ast.TSassign (tl, tr)
  | Ast.Sop_assign (op, lhs, rhs) ->
    (* Desugar [lv op= e] to [lv = lv op e]; lowering evaluates the lvalue
       address twice, matching C's once-evaluation only for simple lvalues,
       which is all our kernels use. *)
    let s' = { s with Ast.sdesc = Ast.Sassign (lhs, { Ast.desc = Ast.Ebin (op, lhs, rhs); pos }) } in
    check_stmt env s'
  | Ast.Sexpr e ->
    let te = check_expr env e in
    Typed_ast.TSexpr te
  | Ast.Sif (c, t, f) ->
    let tc = check_scalar env c in
    let tt = check_block env t in
    let tf = check_block env f in
    Typed_ast.TSif (tc, tt, tf)
  | Ast.Swhile (c, body) ->
    let tc = check_scalar env c in
    Typed_ast.TSwhile (tc, check_block env body)
  | Ast.Sdo (body, c) ->
    let tbody = check_block env body in
    let tc = check_scalar env c in
    Typed_ast.TSdo (tbody, tc)
  | Ast.Sfor (init, cond, step, body) ->
    (* Desugar into a while loop inside a fresh scope. *)
    push_scope env;
    let tinit = Option.map (check_stmt env) init in
    let tcond =
      match cond with
      | Some c -> check_scalar env c
      | None -> { Typed_ast.tdesc = Typed_ast.Tint_lit 1L; tty = Ast.Tint; tpos = pos }
    in
    let tbody = check_block env body in
    let tstep = Option.map (check_stmt env) step in
    pop_scope env;
    let loop_body = tbody @ Option.to_list tstep in
    let w = Typed_ast.TSwhile (tcond, loop_body) in
    Typed_ast.TSblock (Option.to_list tinit @ [ w ])
  | Ast.Sreturn e -> (
    match e, env.ret_ty with
    | None, Ast.Tvoid -> Typed_ast.TSreturn None
    | None, t -> terror pos "missing return value (expected %a)" Ast.pp_ty t
    | Some _, Ast.Tvoid -> terror pos "void function returns a value"
    | Some e, t ->
      let te = coerce pos (decay (check_expr env e)) t in
      Typed_ast.TSreturn (Some te))
  | Ast.Sbreak -> Typed_ast.TSbreak
  | Ast.Scontinue -> Typed_ast.TScontinue
  | Ast.Sblock body -> Typed_ast.TSblock (check_block env body)

and check_block env stmts =
  push_scope env;
  let r = List.map (check_stmt env) stmts in
  pop_scope env;
  r

(* --- program --- *)

let check_program (decls : Ast.program) : Typed_ast.tprogram =
  let structs = Struct_env.create () in
  let globals = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  let env = { structs; globals; funcs; scopes = []; counter = 0; ret_ty = Ast.Tvoid } in
  (* pass 1: collect structs, global types, function signatures *)
  List.iter
    (function
      | Ast.Dstruct sd -> Struct_env.add structs sd
      | Ast.Dglobal g ->
        if Hashtbl.mem globals g.Ast.gname then
          terror g.Ast.gpos "duplicate global %s" g.Ast.gname;
        ignore (Struct_env.sizeof structs g.Ast.gpos g.Ast.gty);
        Hashtbl.replace globals g.Ast.gname g.Ast.gty
      | Ast.Dfunc f ->
        if Hashtbl.mem funcs f.Ast.fname || Srp_ir.Program.is_builtin f.Ast.fname then
          terror f.Ast.fpos "duplicate function %s" f.Ast.fname;
        Hashtbl.replace funcs f.Ast.fname
          { fs_ret = f.Ast.fret; fs_formals = List.map fst f.Ast.fformals })
    decls;
  (* pass 2: check bodies and global initializers *)
  let tglobals = ref [] and tfuncs = ref [] in
  List.iter
    (function
      | Ast.Dstruct _ -> ()
      | Ast.Dglobal g ->
        let tinit =
          match g.Ast.ginit with
          | None -> None
          | Some (Ast.Iscalar e) ->
            env.scopes <- [ Hashtbl.create 1 ];
            let te = check_expr env e in
            env.scopes <- [];
            Some (Typed_ast.TIscalar te)
          | Some (Ast.Ilist es) ->
            env.scopes <- [ Hashtbl.create 1 ];
            let tes = List.map (check_expr env) es in
            env.scopes <- [];
            Some (Typed_ast.TIlist tes)
        in
        tglobals := { Typed_ast.tg_ty = g.Ast.gty; tg_name = g.Ast.gname; tg_init = tinit } :: !tglobals
      | Ast.Dfunc f ->
        env.ret_ty <- f.Ast.fret;
        env.scopes <- [];
        push_scope env;
        let tformals =
          List.map
            (fun (ty, name) ->
              let info = declare_local env f.Ast.fpos name ty in
              (ty, info.v_uname))
            f.Ast.fformals
        in
        let tbody = check_block env f.Ast.fbody in
        pop_scope env;
        tfuncs :=
          { Typed_ast.tf_name = f.Ast.fname; tf_ret = f.Ast.fret;
            tf_formals = tformals; tf_body = tbody }
          :: !tfuncs)
    decls;
  { Typed_ast.tp_structs = structs; tp_globals = List.rev !tglobals;
    tp_funcs = List.rev !tfuncs }
