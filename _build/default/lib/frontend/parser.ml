(* Recursive-descent parser for MiniC with precedence-climbing expression
   parsing. *)

exception Parse_error of string * Ast.pos

type state = { mutable toks : Lexer.lexed list }

let error (st : state) msg =
  let pos = match st.toks with { pos; _ } :: _ -> pos | [] -> Ast.no_pos in
  raise (Parse_error (msg, pos))

let peek st = match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF
let peek2 st = match st.toks with _ :: { tok; _ } :: _ -> tok | _ -> Lexer.EOF
let cur_pos st = match st.toks with { pos; _ } :: _ -> pos | [] -> Ast.no_pos

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Fmt.str "expected '%s', found '%s'" (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek st)))

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | t -> error st (Fmt.str "expected identifier, found '%s'" (Lexer.token_to_string t))

(* --- types --- *)

let is_type_start st =
  match peek st with
  | Lexer.KW_INT | Lexer.KW_DOUBLE | Lexer.KW_VOID -> true
  | Lexer.KW_STRUCT -> (
    (* [struct S x] is a declaration; [struct S { ... }] a definition,
       handled at top level. *)
    match peek2 st with Lexer.IDENT _ -> true | _ -> false)
  | _ -> false

let parse_base_type st =
  match peek st with
  | Lexer.KW_INT ->
    advance st;
    Ast.Tint
  | Lexer.KW_DOUBLE ->
    advance st;
    Ast.Tdouble
  | Lexer.KW_VOID ->
    advance st;
    Ast.Tvoid
  | Lexer.KW_STRUCT ->
    advance st;
    let name = expect_ident st in
    Ast.Tstruct name
  | t -> error st (Fmt.str "expected type, found '%s'" (Lexer.token_to_string t))

let parse_stars st base =
  let ty = ref base in
  while peek st = Lexer.STAR do
    advance st;
    ty := Ast.Tptr !ty
  done;
  !ty

(* Trailing array dimensions: [int a[10][4]] builds Tarr (Tarr (int,4),10). *)
let parse_array_suffix st ty =
  let dims = ref [] in
  while peek st = Lexer.LBRACKET do
    advance st;
    (match peek st with
    | Lexer.INT_LIT n ->
      advance st;
      dims := Int64.to_int n :: !dims
    | _ -> error st "array dimension must be an integer literal");
    expect st Lexer.RBRACKET
  done;
  List.fold_left (fun acc n -> Ast.Tarr (acc, n)) ty !dims

(* --- expressions (precedence climbing) --- *)

let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (Ast.Blor, 1)
  | Lexer.AMPAMP -> Some (Ast.Bland, 2)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.EQEQ -> Some (Ast.Beq, 6)
  | Lexer.NEQ -> Some (Ast.Bne, 6)
  | Lexer.LT -> Some (Ast.Blt, 7)
  | Lexer.LE -> Some (Ast.Ble, 7)
  | Lexer.GT -> Some (Ast.Bgt, 7)
  | Lexer.GE -> Some (Ast.Bge, 7)
  | Lexer.SHL -> Some (Ast.Bshl, 8)
  | Lexer.SHR -> Some (Ast.Bshr, 8)
  | Lexer.PLUS -> Some (Ast.Badd, 9)
  | Lexer.MINUS -> Some (Ast.Bsub, 9)
  | Lexer.STAR -> Some (Ast.Bmul, 10)
  | Lexer.SLASH -> Some (Ast.Bdiv, 10)
  | Lexer.PERCENT -> Some (Ast.Brem, 10)
  | _ -> None

let rec parse_expr st = parse_cond st

and parse_cond st =
  let c = parse_binary st 1 in
  if peek st = Lexer.QUESTION then begin
    let pos = cur_pos st in
    advance st;
    let a = parse_expr st in
    expect st Lexer.COLON;
    let b = parse_cond st in
    { Ast.desc = Ast.Econd (c, a, b); pos }
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some (op, prec) when prec >= min_prec ->
      let pos = cur_pos st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := { Ast.desc = Ast.Ebin (op, !lhs, rhs); pos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let pos = cur_pos st in
  match peek st with
  | Lexer.MINUS ->
    advance st;
    { Ast.desc = Ast.Eun (Ast.Uneg, parse_unary st); pos }
  | Lexer.BANG ->
    advance st;
    { Ast.desc = Ast.Eun (Ast.Unot, parse_unary st); pos }
  | Lexer.TILDE ->
    advance st;
    { Ast.desc = Ast.Eun (Ast.Ubnot, parse_unary st); pos }
  | Lexer.STAR ->
    advance st;
    { Ast.desc = Ast.Ederef (parse_unary st); pos }
  | Lexer.AMP ->
    advance st;
    { Ast.desc = Ast.Eaddr (parse_unary st); pos }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let pos = cur_pos st in
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      e := { Ast.desc = Ast.Eindex (!e, idx); pos }
    | Lexer.DOT ->
      advance st;
      let f = expect_ident st in
      e := { Ast.desc = Ast.Efield (!e, f); pos }
    | Lexer.ARROW ->
      advance st;
      let f = expect_ident st in
      e := { Ast.desc = Ast.Earrow (!e, f); pos }
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let pos = cur_pos st in
  match peek st with
  | Lexer.INT_LIT v ->
    advance st;
    { Ast.desc = Ast.Eint v; pos }
  | Lexer.FLOAT_LIT v ->
    advance st;
    { Ast.desc = Ast.Efloat v; pos }
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = ref [] in
      if peek st <> Lexer.RPAREN then begin
        args := [ parse_expr st ];
        while peek st = Lexer.COMMA do
          advance st;
          args := parse_expr st :: !args
        done
      end;
      expect st Lexer.RPAREN;
      { Ast.desc = Ast.Ecall (name, List.rev !args); pos }
    end
    else { Ast.desc = Ast.Eident name; pos }
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | t -> error st (Fmt.str "expected expression, found '%s'" (Lexer.token_to_string t))

(* --- statements --- *)

let rec parse_stmt st : Ast.stmt =
  let spos = cur_pos st in
  match peek st with
  | Lexer.LBRACE ->
    advance st;
    let body = parse_stmts_until_rbrace st in
    { Ast.sdesc = Ast.Sblock body; spos }
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_ = parse_block_or_stmt st in
    let else_ =
      if peek st = Lexer.KW_ELSE then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    { Ast.sdesc = Ast.Sif (cond, then_, else_); spos }
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let body = parse_block_or_stmt st in
    { Ast.sdesc = Ast.Swhile (cond, body); spos }
  | Lexer.KW_DO ->
    advance st;
    let body = parse_block_or_stmt st in
    expect st Lexer.KW_WHILE;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Sdo (body, cond); spos }
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init =
      if peek st = Lexer.SEMI then None else Some (parse_simple_stmt st)
    in
    expect st Lexer.SEMI;
    let cond = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    let step =
      if peek st = Lexer.RPAREN then None else Some (parse_simple_stmt st)
    in
    expect st Lexer.RPAREN;
    let body = parse_block_or_stmt st in
    { Ast.sdesc = Ast.Sfor (init, cond, step, body); spos }
  | Lexer.KW_RETURN ->
    advance st;
    let e = if peek st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Sreturn e; spos }
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Sbreak; spos }
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    { Ast.sdesc = Ast.Scontinue; spos }
  | _ ->
    let s = parse_simple_stmt st in
    expect st Lexer.SEMI;
    s

(* A declaration, assignment or expression statement — no trailing ';'
   (shared between ordinary statements and for-headers). *)
and parse_simple_stmt st : Ast.stmt =
  let spos = cur_pos st in
  if is_type_start st then begin
    let base = parse_base_type st in
    let ty = parse_stars st base in
    let name = expect_ident st in
    let ty = parse_array_suffix st ty in
    let init =
      if peek st = Lexer.EQ then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    { Ast.sdesc = Ast.Sdecl (ty, name, init); spos }
  end
  else begin
    let lhs = parse_expr st in
    match peek st with
    | Lexer.EQ ->
      advance st;
      let rhs = parse_expr st in
      { Ast.sdesc = Ast.Sassign (lhs, rhs); spos }
    | Lexer.PLUSEQ | Lexer.MINUSEQ | Lexer.STAREQ | Lexer.SLASHEQ ->
      let op =
        match peek st with
        | Lexer.PLUSEQ -> Ast.Badd
        | Lexer.MINUSEQ -> Ast.Bsub
        | Lexer.STAREQ -> Ast.Bmul
        | _ -> Ast.Bdiv
      in
      advance st;
      let rhs = parse_expr st in
      { Ast.sdesc = Ast.Sop_assign (op, lhs, rhs); spos }
    | _ -> { Ast.sdesc = Ast.Sexpr lhs; spos }
  end

and parse_block_or_stmt st : Ast.stmt list =
  if peek st = Lexer.LBRACE then begin
    advance st;
    parse_stmts_until_rbrace st
  end
  else [ parse_stmt st ]

and parse_stmts_until_rbrace st =
  let acc = ref [] in
  while peek st <> Lexer.RBRACE do
    if peek st = Lexer.EOF then error st "unexpected end of file in block";
    acc := parse_stmt st :: !acc
  done;
  advance st;
  List.rev !acc

(* --- top level --- *)

let parse_decl st : Ast.decl =
  let pos = cur_pos st in
  if peek st = Lexer.KW_STRUCT && peek2 st <> Lexer.EOF
     && (match st.toks with
        | _ :: _ :: { tok = Lexer.LBRACE; _ } :: _ -> true
        | _ -> false)
  then begin
    (* struct definition *)
    advance st;
    let name = expect_ident st in
    expect st Lexer.LBRACE;
    let fields = ref [] in
    while peek st <> Lexer.RBRACE do
      let base = parse_base_type st in
      let ty = parse_stars st base in
      let fname = expect_ident st in
      let ty = parse_array_suffix st ty in
      expect st Lexer.SEMI;
      fields := (ty, fname) :: !fields
    done;
    advance st;
    expect st Lexer.SEMI;
    Ast.Dstruct { sname = name; sfields = List.rev !fields; spos = pos }
  end
  else begin
    let base = parse_base_type st in
    let ty = parse_stars st base in
    let name = expect_ident st in
    if peek st = Lexer.LPAREN then begin
      (* function *)
      advance st;
      let formals = ref [] in
      if peek st <> Lexer.RPAREN then begin
        let parse_formal () =
          let base = parse_base_type st in
          let ty = parse_stars st base in
          let fname = expect_ident st in
          (ty, fname)
        in
        formals := [ parse_formal () ];
        while peek st = Lexer.COMMA do
          advance st;
          formals := parse_formal () :: !formals
        done
      end;
      expect st Lexer.RPAREN;
      expect st Lexer.LBRACE;
      let body = parse_stmts_until_rbrace st in
      Ast.Dfunc
        { fname = name; fret = ty; fformals = List.rev !formals; fbody = body;
          fpos = pos }
    end
    else begin
      (* global variable *)
      let ty = parse_array_suffix st ty in
      let init =
        if peek st = Lexer.EQ then begin
          advance st;
          if peek st = Lexer.LBRACE then begin
            advance st;
            let elts = ref [] in
            if peek st <> Lexer.RBRACE then begin
              elts := [ parse_expr st ];
              while peek st = Lexer.COMMA do
                advance st;
                elts := parse_expr st :: !elts
              done
            end;
            expect st Lexer.RBRACE;
            Some (Ast.Ilist (List.rev !elts))
          end
          else Some (Ast.Iscalar (parse_expr st))
        end
        else None
      in
      expect st Lexer.SEMI;
      Ast.Dglobal { gty = ty; gname = name; ginit = init; gpos = pos }
    end
  end

let parse_program (src : string) : Ast.program =
  let st = { toks = Lexer.tokenize src } in
  let decls = ref [] in
  while peek st <> Lexer.EOF do
    decls := parse_decl st :: !decls
  done;
  List.rev !decls
