lib/frontend/typed_ast.ml: Ast Struct_env
