lib/frontend/struct_env.ml: Ast Fmt Hashtbl List Srp_ir
