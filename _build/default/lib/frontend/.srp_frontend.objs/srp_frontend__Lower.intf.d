lib/frontend/lower.mli: Srp_ir Typed_ast
