lib/frontend/typecheck.ml: Ast Fmt Hashtbl List Option Srp_ir Struct_env Typed_ast
