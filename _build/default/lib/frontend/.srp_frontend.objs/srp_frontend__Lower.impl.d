lib/frontend/lower.ml: Array Ast Block Fmt Func Hashtbl Instr Int64 Label List Loops Mem_ty Ops Option Parser Program Site Srp_ir Struct_env Symbol Temp Typecheck Typed_ast Verify
