(** Lowering: typed AST -> mid-level IR, plus the front door that chains
    the whole front end.

    The cardinal rule: every user variable stays in memory (explicit
    Load/Store on its symbol).  Lowering never caches a value in a temp
    across statements — register promotion (lib/core) is the pass that
    earns that, so the baseline-vs-speculative comparison starts from the
    same memory-form IR.  Temps are single-assignment expression
    intermediates; value merges (&&, ||, ?:) go through compiler scratch
    locals to keep that discipline. *)

exception Lower_error of string

(** Lower one elaborated program. *)
val lower_program : Typed_ast.tprogram -> Srp_ir.Program.t

(** Parse, typecheck, lower, split critical edges, and verify.  Critical
    edges are split here — before any profiling run — so the block set
    (hence the profile's block counts) is identical between the profiling
    compile and the optimizing compile.

    @raise Lexer.Lex_error on lexical errors
    @raise Parser.Parse_error on syntax errors
    @raise Typecheck.Type_error on type errors
    @raise Srp_ir.Verify.Ill_formed if lowering produced bad IR (a bug) *)
val compile_source : string -> Srp_ir.Program.t
