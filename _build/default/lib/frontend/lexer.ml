(* Hand-written lexer for MiniC.  Menhir/ocamllex are avoided on purpose:
   the token set is small and a hand lexer keeps error positions precise. *)

type token =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT | KW_DOUBLE | KW_VOID | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_DO | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | AMPAMP | PIPEPIPE | BANG
  | EQ | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ
  | EQEQ | NEQ | LT | LE | GT | GE
  | QUESTION | COLON
  | EOF

exception Lex_error of string * Ast.pos

type lexed = { tok : token; pos : Ast.pos }

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "double" -> Some KW_DOUBLE
  | "void" -> Some KW_VOID
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let toks = ref [] in
  let pos i : Ast.pos = { line = !line; col = i - !bol + 1 } in
  let error i msg = raise (Lex_error (msg, pos i)) in
  let emit i tok = toks := { tok; pos = pos i } :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let start = !i in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then error start "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done
    end
    else if is_digit c then begin
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let is_float =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if is_float || (!i < n && src.[!i] = '.') then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        (* optional exponent *)
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        let s = String.sub src start (!i - start) in
        emit start (FLOAT_LIT (float_of_string s))
      end
      else begin
        let s = String.sub src start (!i - start) in
        match Int64.of_string_opt s with
        | Some v -> emit start (INT_LIT v)
        | None -> error start ("integer literal out of range: " ^ s)
      end
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      match keyword_of_string s with
      | Some kw -> emit start kw
      | None -> emit start (IDENT s)
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      let emit2 t =
        emit start t;
        i := !i + 2
      in
      let emit1 t =
        emit start t;
        incr i
      in
      match two with
      | Some "->" -> emit2 ARROW
      | Some "<<" -> emit2 SHL
      | Some ">>" -> emit2 SHR
      | Some "&&" -> emit2 AMPAMP
      | Some "||" -> emit2 PIPEPIPE
      | Some "==" -> emit2 EQEQ
      | Some "!=" -> emit2 NEQ
      | Some "<=" -> emit2 LE
      | Some ">=" -> emit2 GE
      | Some "+=" -> emit2 PLUSEQ
      | Some "-=" -> emit2 MINUSEQ
      | Some "*=" -> emit2 STAREQ
      | Some "/=" -> emit2 SLASHEQ
      | _ -> (
        match c with
        | '(' -> emit1 LPAREN
        | ')' -> emit1 RPAREN
        | '{' -> emit1 LBRACE
        | '}' -> emit1 RBRACE
        | '[' -> emit1 LBRACKET
        | ']' -> emit1 RBRACKET
        | ';' -> emit1 SEMI
        | ',' -> emit1 COMMA
        | '.' -> emit1 DOT
        | '+' -> emit1 PLUS
        | '-' -> emit1 MINUS
        | '*' -> emit1 STAR
        | '/' -> emit1 SLASH
        | '%' -> emit1 PERCENT
        | '&' -> emit1 AMP
        | '|' -> emit1 PIPE
        | '^' -> emit1 CARET
        | '~' -> emit1 TILDE
        | '!' -> emit1 BANG
        | '=' -> emit1 EQ
        | '<' -> emit1 LT
        | '>' -> emit1 GT
        | '?' -> emit1 QUESTION
        | ':' -> emit1 COLON
        | _ -> error start (Fmt.str "unexpected character %C" c))
    end
  done;
  List.rev ({ tok = EOF; pos = pos n } :: !toks)

let token_to_string = function
  | INT_LIT i -> Int64.to_string i
  | FLOAT_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int" | KW_DOUBLE -> "double" | KW_VOID -> "void"
  | KW_STRUCT -> "struct" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_DO -> "do" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | DOT -> "." | ARROW -> "->" | PLUS -> "+" | MINUS -> "-" | STAR -> "*"
  | SLASH -> "/" | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
  | TILDE -> "~" | SHL -> "<<" | SHR -> ">>" | AMPAMP -> "&&"
  | PIPEPIPE -> "||" | BANG -> "!" | EQ -> "=" | PLUSEQ -> "+="
  | MINUSEQ -> "-=" | STAREQ -> "*=" | SLASHEQ -> "/=" | EQEQ -> "=="
  | NEQ -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | QUESTION -> "?" | COLON -> ":" | EOF -> "<eof>"
