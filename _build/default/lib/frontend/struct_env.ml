(* Struct layout: every scalar field (int, double, pointer) occupies one
   8-byte cell; nested structs and in-struct arrays are laid out inline. *)

type field = { f_name : string; f_ty : Ast.ty; f_offset : int }

type layout = { s_name : string; s_fields : field list; s_size : int }

type t = (string, layout) Hashtbl.t

exception Type_error of string * Ast.pos

let terror pos fmt = Fmt.kstr (fun s -> raise (Type_error (s, pos))) fmt

let create () : t = Hashtbl.create 16

let find (env : t) pos name =
  match Hashtbl.find_opt env name with
  | Some l -> l
  | None -> terror pos "unknown struct %s" name

let rec sizeof (env : t) pos (ty : Ast.ty) =
  match ty with
  | Ast.Tint | Ast.Tdouble | Ast.Tptr _ | Ast.Tany_ptr -> 8
  | Ast.Tarr (elt, n) -> n * sizeof env pos elt
  | Ast.Tstruct name -> (find env pos name).s_size
  | Ast.Tvoid -> terror pos "void has no size"

let add (env : t) (decl : Ast.struct_decl) =
  if Hashtbl.mem env decl.Ast.sname then
    terror decl.Ast.spos "duplicate struct %s" decl.Ast.sname;
  let offset = ref 0 in
  let fields =
    List.map
      (fun (ty, name) ->
        let f = { f_name = name; f_ty = ty; f_offset = !offset } in
        offset := !offset + sizeof env decl.Ast.spos ty;
        f)
      decl.Ast.sfields
  in
  (* reject duplicate field names *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.f_name then
        terror decl.Ast.spos "duplicate field %s in struct %s" f.f_name
          decl.Ast.sname;
      Hashtbl.replace seen f.f_name ())
    fields;
  Hashtbl.replace env decl.Ast.sname
    { s_name = decl.Ast.sname; s_fields = fields; s_size = !offset }

let field (env : t) pos struct_name field_name =
  let l = find env pos struct_name in
  match List.find_opt (fun f -> f.f_name = field_name) l.s_fields with
  | Some f -> f
  | None -> terror pos "struct %s has no field %s" struct_name field_name

(* The machine cell type backing a scalar MiniC type. *)
let mty_of_ty pos (ty : Ast.ty) : Srp_ir.Mem_ty.t =
  match ty with
  | Ast.Tint | Ast.Tptr _ | Ast.Tany_ptr -> Srp_ir.Mem_ty.I64
  | Ast.Tdouble -> Srp_ir.Mem_ty.F64
  | Ast.Tarr _ | Ast.Tstruct _ | Ast.Tvoid ->
    terror pos "expected a scalar type, got %a" Ast.pp_ty ty
