(** Workload description: a MiniC source plus train and ref input sets.

    Inputs are injected as global-initializer overrides before each run,
    which keeps both the interpreter and the machine free of any I/O
    model — the MiniC programs read their inputs from global arrays. *)

open Srp_ir

type input = (string * Program.global_init) list

type t = {
  name : string;
  description : string;
  source : string;  (** MiniC source text *)
  train : input;  (** profiling input (the paper's SPEC train set) *)
  ref_ : input;  (** measurement input (the paper's SPEC ref set) *)
}

(** Overwrite the named globals' initializers in place. *)
val apply_input : Program.t -> input -> unit
