lib/driver/pipeline.mli: Program Srp_core Srp_ir Srp_machine Srp_profile Srp_target Workload
