lib/driver/experiments.ml: Fmt List Pipeline Report Srp_core Srp_frontend Srp_machine Srp_profile Srp_support Srp_target Workload
