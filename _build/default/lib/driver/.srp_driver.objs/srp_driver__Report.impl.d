lib/driver/report.ml: Fmt List Srp_core Srp_machine Srp_support
