lib/driver/pipeline.ml: Program Srp_core Srp_frontend Srp_ir Srp_machine Srp_profile Srp_target Workload
