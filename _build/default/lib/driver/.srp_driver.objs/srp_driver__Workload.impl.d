lib/driver/workload.ml: List Program Srp_ir
