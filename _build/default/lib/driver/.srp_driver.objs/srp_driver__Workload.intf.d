lib/driver/workload.mli: Program Srp_ir
