(** Compilation pipelines — the experiment matrix of the paper. *)

open Srp_ir

(** The optimization levels the experiments compare. *)
type level =
  | O0  (** straight lowering, no promotion *)
  | Conservative  (** PRE register promotion, no speculation *)
  | Baseline
      (** the ORC -O3 stand-in: conservative PRE + software run-time
          disambiguation on scalars (paper section 4) *)
  | Alat
      (** the paper's system: ALAT speculation driven by an alias profile
          collected on the train input *)
  | Alat_heuristic  (** ALAT speculation from static heuristics only *)

val level_name : level -> string

(** Collect an alias profile by interpreting the workload on its train
    input. *)
val train_profile : Workload.t -> Srp_profile.Alias_profile.t

val config_of_level :
  level -> Srp_profile.Alias_profile.t option -> Srp_core.Config.t option

type compiled = {
  level : level;
  ir : Program.t;  (** the (possibly promoted) IR *)
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(** Compile a workload at a level; [input] (usually the ref input) is baked
    into the global initializers before promotion and code generation. *)
val compile :
  ?profile:Srp_profile.Alias_profile.t ->
  input:Workload.input ->
  Workload.t ->
  level ->
  compiled

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
}

val run : ?fuel:int -> compiled -> run_result

(** The standard experiment protocol: profile on train (for [Alat]),
    compile at [level], execute on ref. *)
val profile_compile_run : ?fuel:int -> Workload.t -> level -> run_result
