(* Workload description: a MiniC source plus train and ref input sets,
   injected as global-initializer overrides before each run (the MiniC
   programs read their inputs from global arrays, which keeps both the
   interpreter and the machine free of any I/O model). *)

open Srp_ir

type input = (string * Program.global_init) list

type t = {
  name : string;
  description : string;
  source : string;
  train : input;
  ref_ : input;
}

let apply_input (prog : Program.t) (input : input) : unit =
  List.iter (fun (name, init) -> Program.set_global_init prog name init) input
