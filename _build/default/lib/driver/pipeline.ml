(* Compilation pipelines — the experiment matrix of the paper:

   - [O0]: straight lowering, no promotion (for reference only);
   - [Baseline]: the ORC -O3 stand-in: conservative PRE register promotion
     plus software run-time disambiguation on scalars (paper section 4
     says the baseline includes the software approach of [30]);
   - [Alat]: baseline machinery plus ALAT data speculation driven by an
     alias profile collected on the *train* input (the paper's system);
   - [Alat_heuristic]: ALAT speculation from static heuristics only —
     the no-profile ablation;
   - [Conservative]: PRE without any speculation (software checks off),
     isolating the value of the software baseline itself. *)

open Srp_ir
module Alias_profile = Srp_profile.Alias_profile

type level =
  | O0
  | Conservative
  | Baseline
  | Alat
  | Alat_heuristic

let level_name = function
  | O0 -> "O0"
  | Conservative -> "conservative"
  | Baseline -> "baseline"
  | Alat -> "alat"
  | Alat_heuristic -> "alat-heuristic"

(* Collect an alias profile by interpreting the program on the train
   input. *)
let train_profile (w : Workload.t) : Alias_profile.t =
  let prog = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input prog w.Workload.train;
  let interp = Srp_profile.Interp.create prog in
  ignore (Srp_profile.Interp.run interp);
  Srp_profile.Interp.profile interp

let config_of_level (level : level) (profile : Alias_profile.t option) :
    Srp_core.Config.t option =
  match level, profile with
  | O0, _ -> None
  | Conservative, _ -> Some Srp_core.Config.conservative
  | Baseline, _ -> Some Srp_core.Config.baseline
  | Alat, Some p -> Some (Srp_core.Config.alat ~profile:p)
  | Alat, None -> Some Srp_core.Config.alat_heuristic
  | Alat_heuristic, _ -> Some Srp_core.Config.alat_heuristic

type compiled = {
  level : level;
  ir : Program.t;
  target : Srp_target.Insn.program;
  promote : Srp_core.Promote.result option;
}

(* Compile [w] at [level]; the ref input is applied to the globals before
   code generation (static data), the profile comes from the train run. *)
let compile ?profile ~(input : Workload.input) (w : Workload.t) (level : level) :
    compiled =
  let ir = Srp_frontend.Lower.compile_source w.Workload.source in
  Workload.apply_input ir input;
  let promote =
    match config_of_level level profile with
    | None -> None
    | Some config -> Some (Srp_core.Promote.run ~config ir)
  in
  let target = Srp_target.Codegen.gen_program ir in
  { level; ir; target; promote }

type run_result = {
  compiled : compiled;
  exit_code : int64;
  output : string;
  counters : Srp_machine.Counters.t;
}

let run ?fuel (c : compiled) : run_result =
  let exit_code, output, counters = Srp_machine.Machine.run_program ?fuel c.target in
  { compiled = c; exit_code; output; counters }

(* The standard experiment: profile on train, compile at [level], run on
   ref. *)
let profile_compile_run ?fuel (w : Workload.t) (level : level) : run_result =
  let profile =
    match level with
    | Alat -> Some (train_profile w)
    | O0 | Conservative | Baseline | Alat_heuristic -> None
  in
  let c = compile ?profile ~input:w.Workload.ref_ w level in
  run ?fuel c
