(* Interpreter memory: a sparse word-addressed store plus a region map that
   resolves any address back to the abstract [Location.t] it falls in.
   The region map is what makes alias *profiling* possible: every dynamic
   indirect access reports which symbol or heap object it actually touched
   (paper section 3.1). *)

open Srp_ir
module IMap = Map.Make (Int64)

type region = { base : int64; size : int; loc : Srp_alias.Location.t }

type t = {
  cells : (int64, Value.t) Hashtbl.t; (* word address (byte addr / 8) *)
  mutable regions : region IMap.t; (* base -> region *)
  mutable brk : int64; (* next free address *)
}

let create () = { cells = Hashtbl.create 1024; regions = IMap.empty; brk = 0x1000L }

(* Allocate a fresh region; returns its base address. *)
let alloc t ~size ~loc =
  let size = max size 8 in
  let size = (size + 7) / 8 * 8 in
  let base = t.brk in
  t.brk <- Int64.add t.brk (Int64.of_int (size + 8 (* red zone *)));
  t.regions <- IMap.add base { base; size; loc } t.regions;
  base

(* Place a region at a caller-chosen base (stack frames: a real stack
   reuses the same addresses across calls, which matters to the ALAT's
   partial-address behaviour).  The base must be 8-aligned and the span
   free. *)
let alloc_at t ~base ~size ~loc =
  let size = max 8 ((size + 7) / 8 * 8) in
  if Int64.rem base 8L <> 0L then Value.err "alloc_at: unaligned base 0x%Lx" base;
  (match IMap.find_last_opt (fun b -> Int64.compare b base <= 0) t.regions with
  | Some (_, r) when Int64.compare base (Int64.add r.base (Int64.of_int r.size)) < 0 ->
    Value.err "alloc_at: overlap at 0x%Lx" base
  | _ -> ());
  t.regions <- IMap.add base { base; size; loc } t.regions;
  base

(* Remove a region (function frame teardown).  Its cells are erased so a
   later frame reusing addresses starts zeroed. *)
let free t base =
  match IMap.find_opt base t.regions with
  | None -> Value.err "free of unknown region at 0x%Lx" base
  | Some r ->
    for w = 0 to (r.size / 8) - 1 do
      Hashtbl.remove t.cells (Int64.add base (Int64.of_int (w * 8)))
    done;
    t.regions <- IMap.remove base t.regions

let region_of_addr t addr : region option =
  match IMap.find_last_opt (fun b -> Int64.compare b addr <= 0) t.regions with
  | Some (_, r)
    when Int64.compare addr (Int64.add r.base (Int64.of_int r.size)) < 0 ->
    Some r
  | Some _ | None -> None

let location_of_addr t addr =
  Option.map (fun r -> r.loc) (region_of_addr t addr)

let check_addr t addr =
  if Int64.rem addr 8L <> 0L then Value.err "unaligned access at 0x%Lx" addr;
  match region_of_addr t addr with
  | Some r -> r
  | None -> Value.err "wild access at 0x%Lx" addr

let load t addr : Value.t =
  ignore (check_addr t addr);
  match Hashtbl.find_opt t.cells addr with
  | Some v -> v
  | None -> Value.Vint 0L (* zero-initialized memory *)

(* Typed load: an F64 access reinterprets a zero int cell as 0.0 so that
   zero-init behaves type-correctly. *)
let load_typed t addr (mty : Mem_ty.t) : Value.t =
  match load t addr, mty with
  | Value.Vint 0L, Mem_ty.F64 -> Value.Vflt 0.0
  | v, _ -> v

let store t addr v =
  ignore (check_addr t addr);
  Hashtbl.replace t.cells addr v
