(* Runtime values of the IR interpreter.  All memory is zero-initialized
   (calloc semantics), so a load of a never-written cell yields Vint 0L —
   the machine simulator implements the same rule, which keeps differential
   tests exact. *)

type t = Vint of int64 | Vflt of float

exception Interp_error of string

let err fmt = Fmt.kstr (fun s -> raise (Interp_error s)) fmt

let to_int = function Vint i -> i | Vflt f -> err "expected int, got float %g" f
let to_flt = function Vflt f -> f | Vint i -> err "expected float, got int %Ld" i

let truthy = function Vint i -> i <> 0L | Vflt f -> f <> 0.0

let pp ppf = function
  | Vint i -> Fmt.pf ppf "%Ld" i
  | Vflt f -> Fmt.pf ppf "%.17g" f

let equal a b =
  match a, b with
  | Vint x, Vint y -> Int64.equal x y
  | Vflt x, Vflt y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Vint _, Vflt _ | Vflt _, Vint _ -> false

let bool_val b = Vint (if b then 1L else 0L)

let binop (op : Srp_ir.Ops.binop) a b : t =
  let open Srp_ir.Ops in
  match op with
  | Add -> Vint (Int64.add (to_int a) (to_int b))
  | Sub -> Vint (Int64.sub (to_int a) (to_int b))
  | Mul -> Vint (Int64.mul (to_int a) (to_int b))
  | Div ->
    let d = to_int b in
    if d = 0L then err "integer division by zero";
    Vint (Int64.div (to_int a) d)
  | Rem ->
    let d = to_int b in
    if d = 0L then err "integer remainder by zero";
    Vint (Int64.rem (to_int a) d)
  | And -> Vint (Int64.logand (to_int a) (to_int b))
  | Or -> Vint (Int64.logor (to_int a) (to_int b))
  | Xor -> Vint (Int64.logxor (to_int a) (to_int b))
  | Shl -> Vint (Int64.shift_left (to_int a) (Int64.to_int (to_int b) land 63))
  | Shr -> Vint (Int64.shift_right (to_int a) (Int64.to_int (to_int b) land 63))
  | Eq -> bool_val (Int64.equal (to_int a) (to_int b))
  | Ne -> bool_val (not (Int64.equal (to_int a) (to_int b)))
  | Lt -> bool_val (Int64.compare (to_int a) (to_int b) < 0)
  | Le -> bool_val (Int64.compare (to_int a) (to_int b) <= 0)
  | Gt -> bool_val (Int64.compare (to_int a) (to_int b) > 0)
  | Ge -> bool_val (Int64.compare (to_int a) (to_int b) >= 0)
  | FAdd -> Vflt (to_flt a +. to_flt b)
  | FSub -> Vflt (to_flt a -. to_flt b)
  | FMul -> Vflt (to_flt a *. to_flt b)
  | FDiv -> Vflt (to_flt a /. to_flt b)
  | FEq -> bool_val (to_flt a = to_flt b)
  | FNe -> bool_val (to_flt a <> to_flt b)
  | FLt -> bool_val (to_flt a < to_flt b)
  | FLe -> bool_val (to_flt a <= to_flt b)
  | FGt -> bool_val (to_flt a > to_flt b)
  | FGe -> bool_val (to_flt a >= to_flt b)

let unop (op : Srp_ir.Ops.unop) a : t =
  let open Srp_ir.Ops in
  match op with
  | Neg -> Vint (Int64.neg (to_int a))
  | Not -> Vint (Int64.lognot (to_int a))
  | FNeg -> Vflt (-.to_flt a)
  | I2F -> Vflt (Int64.to_float (to_int a))
  | F2I -> Vint (Int64.of_float (to_flt a))
