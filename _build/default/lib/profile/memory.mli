(** Interpreter/simulator memory: a sparse word-addressed store plus a
    region map resolving any address back to the abstract {!Location.t} it
    falls in.

    The region map is what makes alias *profiling* possible: every dynamic
    indirect access reports which symbol or heap object it actually touched
    (paper section 3.1).  All memory reads are zero-initialized (calloc
    semantics), identically in the interpreter and the machine, which keeps
    differential tests exact. *)

type t

val create : unit -> t

(** Allocate a fresh region (bump allocation); returns its 8-aligned base. *)
val alloc : t -> size:int -> loc:Srp_alias.Location.t -> int64

(** Place a region at a caller-chosen base (the machine's descending stack:
    real stacks reuse addresses, which matters to ALAT partial tags).
    @raise Value.Interp_error on misalignment or overlap. *)
val alloc_at : t -> base:int64 -> size:int -> loc:Srp_alias.Location.t -> int64

(** Remove a region and erase its cells (frame teardown). *)
val free : t -> int64 -> unit

(** The abstract location an address falls in, if any. *)
val location_of_addr : t -> int64 -> Srp_alias.Location.t option

(** @raise Value.Interp_error on wild or unaligned accesses. *)
val load : t -> int64 -> Value.t

(** Typed load: a zero cell read at F64 yields 0.0. *)
val load_typed : t -> int64 -> Srp_ir.Mem_ty.t -> Value.t

val store : t -> int64 -> Value.t -> unit
