(** The alias profile: for every memory-op site, the set of abstract
    locations it actually touched at runtime, plus execution counts and
    per-block execution counts.

    This is the feedback the speculative compiler consumes (paper section
    3.1): a chi/mu on location L at site s becomes {e chi_s}/{e mu_s}
    (speculative) when the profile says s never touched L.  Block counts
    drive the control-speculation and invala.e placement heuristics. *)

open Srp_ir
module Location = Srp_alias.Location

type t

val create : unit -> t

(** Record one dynamic access of [site] to a location. *)
val record : t -> Site.t -> Location.t -> unit

(** Count one execution of a basic block. *)
val record_block : t -> func:string -> label_id:int -> unit

val block_count : t -> func:string -> label_id:int -> int

(** Was [site] ever executed under the training input? *)
val executed : t -> Site.t -> bool

(** Dynamic execution count of [site]. *)
val count : t -> Site.t -> int

(** Locations [site] was observed touching (empty if never executed). *)
val targets : t -> Site.t -> Location.Set.t

(** The speculation predicate: per the profile, can the access at [site]
    touch [loc]?  Never-executed sites answer [false] — the aggressive
    choice the paper makes; a mis-speculation check repairs the rare
    disagreements. *)
val may_touch : t -> Site.t -> Location.t -> bool

(** All recorded sites, sorted. *)
val sites : t -> Site.t list

val pp : Format.formatter -> t -> unit

(** {1 Serialization}

    A line-oriented text format so train-input profiles can be saved and
    fed to later compilations (the paper's feedback file).  Symbols are
    referenced by id, so {!load} needs the same program's symbol table —
    ids are deterministic given the source. *)

val save : t -> string

exception Parse_error of string

val load : symbols:(int, Symbol.t) Hashtbl.t -> string -> t
