(* The alias profile: for every memory-op site, the set of abstract
   locations it actually touched at runtime, plus execution counts.

   This is the feedback the speculative compiler consumes (paper section
   3.1): a chi/mu on location L at site s is marked *speculative* when the
   profile says s never touched L.  Serializable to a simple text format so
   train-input profiles can be saved and replayed. *)

open Srp_ir
module Location = Srp_alias.Location

type t = {
  targets : Location.Set.t Site.Tbl.t;
  counts : int Site.Tbl.t;
  block_counts : (string * int, int) Hashtbl.t; (* (func, label id) -> executions *)
}

let create () =
  { targets = Site.Tbl.create 64; counts = Site.Tbl.create 64;
    block_counts = Hashtbl.create 64 }

let record_block t ~func ~label_id =
  let key = (func, label_id) in
  let c = try Hashtbl.find t.block_counts key with Not_found -> 0 in
  Hashtbl.replace t.block_counts key (c + 1)

let block_count t ~func ~label_id =
  try Hashtbl.find t.block_counts (func, label_id) with Not_found -> 0

let record t site loc =
  let cur =
    match Site.Tbl.find_opt t.targets site with
    | Some s -> s
    | None -> Location.Set.empty
  in
  Site.Tbl.replace t.targets site (Location.Set.add loc cur);
  let c = match Site.Tbl.find_opt t.counts site with Some c -> c | None -> 0 in
  Site.Tbl.replace t.counts site (c + 1)

(* Was [site] ever executed at all? *)
let executed t site = Site.Tbl.mem t.counts site

let count t site =
  match Site.Tbl.find_opt t.counts site with Some c -> c | None -> 0

let targets t site =
  match Site.Tbl.find_opt t.targets site with
  | Some s -> s
  | None -> Location.Set.empty

(* The speculation predicate: according to the profile, can the access at
   [site] touch [loc]?  Sites never executed under the training input are
   treated as "never touches anything", the aggressive choice the paper
   makes (such chi become speculative; a mis-speculation check catches the
   rare cases where the ref input disagrees). *)
let may_touch t site loc = Location.Set.mem loc (targets t site)

let sites t = Site.Tbl.fold (fun s _ acc -> s :: acc) t.counts [] |> List.sort Site.compare

let pp ppf t =
  List.iter
    (fun site ->
      Fmt.pf ppf "%a: count=%d targets={%a}@." Site.pp site (count t site)
        (Srp_support.Pp_util.pp_list Location.pp)
        (Location.Set.elements (targets t site)))
    (sites t)

(* --- serialization ---

   A simple line-oriented text format so train-input profiles can be saved
   and fed to later compilations (the paper's feedback file):

     site <id> count <n> targets sym:<symbol-id> heap:<site-id> ...
     block <func> <label-id> <count>

   Symbols are referenced by id; decoding therefore needs the same program
   (ids are deterministic given the source), which the driver guarantees by
   recompiling from the same file. *)

let save (t : t) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun site ->
      Buffer.add_string buf
        (Fmt.str "site %d count %d targets" (Site.to_int site) (count t site));
      Location.Set.iter
        (fun loc ->
          Buffer.add_string buf
            (match loc with
            | Location.Sym s -> Fmt.str " sym:%d" (Symbol.id s)
            | Location.Heap h -> Fmt.str " heap:%d" (Site.to_int h)))
        (targets t site);
      Buffer.add_char buf '\n')
    (sites t);
  Hashtbl.iter
    (fun (func, label_id) c ->
      Buffer.add_string buf (Fmt.str "block %s %d %d\n" func label_id c))
    t.block_counts;
  Buffer.contents buf

exception Parse_error of string

(* [load ~symbols text] rebuilds a profile; [symbols] maps symbol ids back
   to symbols (from the program being compiled). *)
let load ~(symbols : (int, Srp_ir.Symbol.t) Hashtbl.t) (text : string) : t =
  let t = create () in
  let parse_line line =
    match String.split_on_char ' ' (String.trim line) with
    | [] | [ "" ] -> ()
    | "site" :: site :: "count" :: n :: "targets" :: rest ->
      let site = int_of_string site in
      Site.Tbl.replace t.counts site (int_of_string n);
      let locs =
        List.filter_map
          (fun tok ->
            match String.split_on_char ':' tok with
            | [ "sym"; id ] -> (
              match Hashtbl.find_opt symbols (int_of_string id) with
              | Some s -> Some (Location.Sym s)
              | None -> raise (Parse_error ("unknown symbol id " ^ id)))
            | [ "heap"; id ] -> Some (Location.Heap (int_of_string id))
            | _ -> raise (Parse_error ("bad target " ^ tok)))
          rest
      in
      Site.Tbl.replace t.targets site
        (List.fold_left (fun acc l -> Location.Set.add l acc) Location.Set.empty locs)
    | "block" :: func :: label_id :: c :: [] ->
      Hashtbl.replace t.block_counts (func, int_of_string label_id) (int_of_string c)
    | _ -> raise (Parse_error ("bad line: " ^ line))
  in
  List.iter parse_line (String.split_on_char '\n' text);
  t
