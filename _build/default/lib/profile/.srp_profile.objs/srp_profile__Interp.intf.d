lib/profile/interp.mli: Alias_profile Program Srp_ir
