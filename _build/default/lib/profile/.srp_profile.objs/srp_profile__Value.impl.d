lib/profile/value.ml: Fmt Int64 Srp_ir
