lib/profile/alias_profile.ml: Buffer Fmt Hashtbl List Site Srp_alias Srp_ir Srp_support String Symbol
