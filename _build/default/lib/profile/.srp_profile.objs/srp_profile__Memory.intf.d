lib/profile/memory.mli: Srp_alias Srp_ir Value
