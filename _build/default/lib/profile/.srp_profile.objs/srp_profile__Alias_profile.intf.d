lib/profile/alias_profile.mli: Format Hashtbl Site Srp_alias Srp_ir Symbol
