lib/profile/memory.ml: Hashtbl Int64 Map Mem_ty Option Srp_alias Srp_ir Value
