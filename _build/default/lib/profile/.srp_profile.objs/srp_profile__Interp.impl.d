lib/profile/interp.ml: Alias_profile Array Block Buffer Fmt Func Hashtbl Instr Int64 Label List Memory Ops Program Srp_alias Srp_ir Symbol Temp Value
