(** IR interpreter.  Two jobs:

    - reference semantics for differential testing: its printed output must
      match the machine simulator's at every optimization level;
    - alias-profile collection (the paper's instrumentation-based profiling
      of section 3.1): every dynamic memory access resolves to its abstract
      location and is recorded per site, and block executions are counted.

    Pre-promotion IR only: promotion-inserted Check/Invala instructions
    have machine semantics and raise {!Value.Interp_error} here. *)

open Srp_ir

exception Out_of_fuel

type t

(** [create prog] loads globals (optionally overridden by name via
    [overrides] — workload input injection).  [fuel] bounds executed
    steps; [collect_profile] defaults to [true]. *)
val create :
  ?fuel:int ->
  ?collect_profile:bool ->
  ?overrides:(string * Program.global_init) list ->
  Program.t ->
  t

(** Run [main]; returns its exit value. *)
val run : t -> int64

(** Everything the program printed. *)
val output : t -> string

val profile : t -> Alias_profile.t

(** Executed instruction count. *)
val steps : t -> int

(** create + run; returns (exit code, output, profile). *)
val run_program :
  ?fuel:int ->
  ?collect_profile:bool ->
  ?overrides:(string * Program.global_init) list ->
  Program.t ->
  int64 * string * Alias_profile.t
