(* Well-formedness checks on the memory-SSA form:
   - every phi has exactly one argument per CFG predecessor;
   - version numbers are positive and unique per (location, def);
   - every use's version is reached by a def (or is the live-in version 0)
     that dominates it along the dominator-tree walk discipline.
   Used by unit and property tests. *)

open Srp_ir
module Location = Srp_alias.Location

exception Bad_ssa of string

let fail fmt = Fmt.kstr (fun s -> raise (Bad_ssa s)) fmt

let check (t : Ssa_form.t) =
  let cfg = t.Ssa_form.cfg in
  let n = Cfg.num_nodes cfg in
  (* phis: argument count matches predecessor count, no duplicate location *)
  for node = 0 to n - 1 do
    let preds = Cfg.preds cfg node in
    let phis = Ssa_form.phis_of_node t node in
    let seen = ref Location.Set.empty in
    List.iter
      (fun (p : Ssa_form.phi) ->
        if Location.Set.mem p.Ssa_form.phi_loc !seen then
          fail "duplicate phi for %a in node %d"
            Location.pp p.Ssa_form.phi_loc node;
        seen := Location.Set.add p.Ssa_form.phi_loc !seen;
        if List.length p.Ssa_form.phi_args <> List.length preds then
          fail "phi for %a in node %d has %d args, %d preds"
            Location.pp p.Ssa_form.phi_loc node
            (List.length p.Ssa_form.phi_args)
            (List.length preds);
        if p.Ssa_form.phi_result <= 0 then
          fail "phi result version not assigned")
      phis
  done;
  (* def versions unique per location *)
  let seen_defs : (Location.t * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let record loc v what =
    if v <= 0 then fail "%s of %a has version %d" what Location.pp loc v;
    if Hashtbl.mem seen_defs (loc, v) then
      fail "version %a_%d defined twice" Location.pp loc v;
    Hashtbl.replace seen_defs (loc, v) ()
  in
  for node = 0 to n - 1 do
    List.iter
      (fun (p : Ssa_form.phi) -> record p.Ssa_form.phi_loc p.Ssa_form.phi_result "phi")
      (Ssa_form.phis_of_node t node);
    let blk = Cfg.block cfg node in
    List.iteri
      (fun idx _ ->
        let s = Ssa_form.instr_ssa t (Block.label blk, idx) in
        (match s.Ssa_form.def with
        | Some (l, v) -> record l v "store def"
        | None -> ());
        List.iter
          (fun (c : Ssa_form.chi_occ) ->
            record c.Ssa_form.chi_loc c.Ssa_form.chi_result "chi";
            if c.Ssa_form.chi_prev < 0 then fail "chi prev version negative")
          s.Ssa_form.chis)
      blk.Block.instrs
  done;
  (* uses refer to defined versions (or 0 = live-in) *)
  let check_use loc v what =
    if v < 0 then fail "%s version negative" what;
    if v > 0 && not (Hashtbl.mem seen_defs (loc, v)) then
      fail "%s of %a_%d refers to an undefined version" what Location.pp loc v
  in
  for node = 0 to n - 1 do
    List.iter
      (fun (p : Ssa_form.phi) ->
        List.iter
          (fun (_, v) -> check_use p.Ssa_form.phi_loc v "phi arg")
          p.Ssa_form.phi_args)
      (Ssa_form.phis_of_node t node);
    let blk = Cfg.block cfg node in
    List.iteri
      (fun idx _ ->
        let s = Ssa_form.instr_ssa t (Block.label blk, idx) in
        (match s.Ssa_form.use with
        | Some (l, v) -> check_use l v "load use"
        | None -> ());
        List.iter
          (fun (m : Ssa_form.mu_occ) -> check_use m.Ssa_form.mu_loc m.Ssa_form.mu_ver "mu")
          s.Ssa_form.mus)
      blk.Block.instrs
  done
