(* Chi/mu annotation of a function: for every instruction position, the set
   of locations it may define (chi) or use (mu) beyond its explicit
   operands, each with a speculative flag from the [Spec_policy] — the
   speculative SSA form of paper section 3.1, kept as side tables rather
   than rewritten IR.

   - an indirect store adds chi on every location in its points-to set
     (the exactly-matching location, when identifiable, is the store's own
     real definition, not a chi);
   - an indirect load adds mu symmetrically;
   - a call adds chi on the callee's (transitive) mod set and mu on its ref
     set. *)

open Srp_ir
module Location = Srp_alias.Location
module Manager = Srp_alias.Manager
module Modref = Srp_alias.Modref

type eff = { loc : Location.t; spec : bool }

type ann = { chi : eff list; mu : eff list }

let empty = { chi = []; mu = [] }

(* Position of an instruction: (block label, index within block). *)
module Pos = struct
  type t = Label.t * int

  let equal (l1, i1) (l2, i2) = Label.equal l1 l2 && i1 = i2
  let hash (l, i) = (Label.hash l * 8191) + i
end

module Pos_tbl = Hashtbl.Make (Pos)

type t = {
  table : ann Pos_tbl.t;
  func : Func.t;
}

let get t pos = match Pos_tbl.find_opt t.table pos with Some a -> a | None -> empty

(* Compute the annotation tables for [f]. *)
let compute ~(mgr : Manager.t) ~(modref : Modref.t) ~(policy : Spec_policy.t)
    (f : Func.t) : t =
  let fname = Func.name f in
  let table = Pos_tbl.create 64 in
  let points_to mty r = Manager.points_to mgr ~func:fname ~mty r in
  List.iter
    (fun blk ->
      List.iteri
        (fun idx ins ->
          let pos = (Block.label blk, idx) in
          match ins with
          | Instr.Store { addr; mty; site; _ } -> (
            match addr.Ops.base with
            | Ops.Sym _ -> () (* exact definition; no chi *)
            | Ops.Reg r ->
              let pts = points_to mty r in
              let n_targets = Location.Set.cardinal pts in
              let chi =
                Location.Set.fold
                  (fun loc acc ->
                    let spec =
                      not (Spec_policy.store_may_touch policy ~site ~n_targets loc)
                    in
                    { loc; spec } :: acc)
                  pts []
              in
              Pos_tbl.replace table pos { chi; mu = [] })
          | Instr.Load { addr; mty; site; _ } -> (
            match addr.Ops.base with
            | Ops.Sym _ -> ()
            | Ops.Reg r ->
              let pts = points_to mty r in
              let n_targets = Location.Set.cardinal pts in
              let mu =
                Location.Set.fold
                  (fun loc acc ->
                    let spec =
                      not (Spec_policy.store_may_touch policy ~site ~n_targets loc)
                    in
                    { loc; spec } :: acc)
                  pts []
              in
              Pos_tbl.replace table pos { chi = []; mu })
          | Instr.Call { callee; site; _ } ->
            if not (Program.is_builtin callee) then begin
              let mk_effs may_touch set =
                Location.Set.fold
                  (fun loc acc -> { loc; spec = not (may_touch loc) } :: acc)
                  set []
              in
              let touch loc = Spec_policy.call_may_touch policy ~callee ~site loc in
              let chi = mk_effs touch (Modref.mod_of modref callee) in
              let mu = mk_effs touch (Modref.ref_of modref callee) in
              Pos_tbl.replace table pos { chi; mu }
            end
          | Instr.Bin _ | Instr.Un _ | Instr.Mov _ | Instr.Alloc _
          | Instr.Check _ | Instr.Invala _ | Instr.Sw_check _ ->
            ())
        blk.Block.instrs)
    (Func.blocks f);
  { table; func = f }

(* Does this instruction may-define [loc] (via chi)?  Returns
   [`No | `Chi of bool] where the bool is the speculative flag. *)
let chi_on t pos loc =
  let a = get t pos in
  match List.find_opt (fun e -> Location.equal e.loc loc) a.chi with
  | Some e -> `Chi e.spec
  | None -> `No

let pp_ann ppf a =
  let pp_eff kind ppf e =
    Fmt.pf ppf "%s%s(%a)" kind (if e.spec then "_s" else "") Location.pp e.loc
  in
  Fmt.pf ppf "%a %a"
    (Srp_support.Pp_util.pp_list ~sep:" " (pp_eff "chi"))
    a.chi
    (Srp_support.Pp_util.pp_list ~sep:" " (pp_eff "mu"))
    a.mu
