(* Explicit memory-SSA form over abstract locations, in the style of HSSA
   (Chow et al. CC'96) extended with the paper's speculative flags
   (section 3.1): version numbers for every location, phi at merge points,
   chi versions at may-defs, mu uses at may-uses.

   The promotion pass itself works per-expression and does not consume
   this structure; it exists to (a) verify the chi/mu machinery (the SSA
   verifier checks the version discipline), (b) render the paper's
   Figure 5/6 examples, and (c) drive unit tests of the rename logic. *)

open Srp_ir
module Location = Srp_alias.Location

type version = int

type phi = {
  phi_loc : Location.t;
  phi_result : version;
  mutable phi_args : (Label.t * version) list; (* predecessor -> version *)
}

type chi_occ = {
  chi_loc : Location.t;
  chi_result : version;
  chi_prev : version;
  chi_spec : bool;
}

type mu_occ = { mu_loc : Location.t; mu_ver : version; mu_spec : bool }

type instr_ssa = {
  (* version of the location a direct/exact store defines *)
  def : (Location.t * version) option;
  (* version of the location a load reads (direct loads and the
     exactly-identified location of indirect ones) *)
  use : (Location.t * version) option;
  chis : chi_occ list;
  mus : mu_occ list;
}

let no_ssa = { def = None; use = None; chis = []; mus = [] }

type t = {
  func : Func.t;
  cfg : Cfg.t;
  dom : Dominance.t;
  phis : (int, phi list) Hashtbl.t; (* node id -> phis *)
  instrs : instr_ssa Annot.Pos_tbl.t;
  mutable max_version : (Location.t * int) list;
}

(* Location a memory instruction defines exactly (its real def). *)
let exact_def_loc (ins : Instr.instr) : Location.t option =
  match ins with
  | Instr.Store { addr = { Ops.base = Ops.Sym s; _ }; _ } -> Some (Location.Sym s)
  | _ -> None

let exact_use_loc (ins : Instr.instr) : Location.t option =
  match ins with
  | Instr.Load { addr = { Ops.base = Ops.Sym s; _ }; _ } -> Some (Location.Sym s)
  | _ -> None

(* Build the SSA form for one function. *)
let build ~(annot : Annot.t) (f : Func.t) : t =
  let cfg = Cfg.build f in
  let dom = Dominance.compute cfg in
  let n = Cfg.num_nodes cfg in
  (* 1. collect def blocks per location *)
  let def_blocks : (Location.t, int list) Hashtbl.t = Hashtbl.create 16 in
  let add_def loc node =
    let cur = try Hashtbl.find def_blocks loc with Not_found -> [] in
    if not (List.mem node cur) then Hashtbl.replace def_blocks loc (node :: cur)
  in
  for i = 0 to n - 1 do
    let blk = Cfg.block cfg i in
    List.iteri
      (fun idx ins ->
        (match exact_def_loc ins with Some l -> add_def l i | None -> ());
        let a = Annot.get annot (Block.label blk, idx) in
        List.iter (fun (e : Annot.eff) -> add_def e.loc i) a.Annot.chi)
      blk.Block.instrs
  done;
  (* 2. phi insertion at iterated dominance frontiers *)
  let phis : (int, phi list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun loc nodes ->
      let idf = Dominance.iterated_frontier dom nodes in
      List.iter
        (fun node ->
          let cur = try Hashtbl.find phis node with Not_found -> [] in
          Hashtbl.replace phis node
            ({ phi_loc = loc; phi_result = -1; phi_args = [] } :: cur))
        idf)
    def_blocks;
  (* 3. renaming walk over the dominator tree *)
  let instrs = Annot.Pos_tbl.create 64 in
  let counters : (Location.t, int) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (Location.t, int list) Hashtbl.t = Hashtbl.create 16 in
  let cur_ver loc =
    match Hashtbl.find_opt stacks loc with
    | Some (v :: _) -> v
    | Some [] | None -> 0 (* live-in version *)
  in
  let new_ver loc =
    let c = (try Hashtbl.find counters loc with Not_found -> 0) + 1 in
    Hashtbl.replace counters loc c;
    let st = try Hashtbl.find stacks loc with Not_found -> [] in
    Hashtbl.replace stacks loc (c :: st);
    c
  in
  let pop_ver loc =
    match Hashtbl.find_opt stacks loc with
    | Some (_ :: rest) -> Hashtbl.replace stacks loc rest
    | Some [] | None -> assert false
  in
  let rec walk node =
    let pushed = ref [] in
    let push_new loc =
      pushed := loc :: !pushed;
      new_ver loc
    in
    (* phi results *)
    let node_phis = try Hashtbl.find phis node with Not_found -> [] in
    let node_phis =
      List.map (fun p -> { p with phi_result = push_new p.phi_loc }) node_phis
    in
    Hashtbl.replace phis node node_phis;
    (* instructions *)
    let blk = Cfg.block cfg node in
    List.iteri
      (fun idx ins ->
        let pos = (Block.label blk, idx) in
        let a = Annot.get annot pos in
        let mus =
          List.map
            (fun (e : Annot.eff) ->
              { mu_loc = e.loc; mu_ver = cur_ver e.loc; mu_spec = e.spec })
            a.Annot.mu
        in
        let use =
          match exact_use_loc ins with
          | Some l -> Some (l, cur_ver l)
          | None -> None
        in
        let def =
          match exact_def_loc ins with
          | Some l -> Some (l, push_new l)
          | None -> None
        in
        let chis =
          List.map
            (fun (e : Annot.eff) ->
              let prev = cur_ver e.loc in
              { chi_loc = e.loc; chi_result = push_new e.loc; chi_prev = prev;
                chi_spec = e.spec })
            a.Annot.chi
        in
        Annot.Pos_tbl.replace instrs pos { def; use; chis; mus })
      blk.Block.instrs;
    (* fill phi args of successors *)
    List.iter
      (fun succ ->
        let sphis = try Hashtbl.find phis succ with Not_found -> [] in
        List.iter
          (fun p ->
            p.phi_args <- (Block.label blk, cur_ver p.phi_loc) :: p.phi_args)
          sphis)
      (Cfg.succs cfg node);
    (* recurse *)
    List.iter walk (Dominance.children dom node);
    List.iter pop_ver !pushed
  in
  walk 0;
  let max_version = Hashtbl.fold (fun l c acc -> (l, c) :: acc) counters [] in
  { func = f; cfg; dom; phis; instrs; max_version }

let instr_ssa t pos =
  match Annot.Pos_tbl.find_opt t.instrs pos with Some s -> s | None -> no_ssa

let phis_of_node t node =
  match Hashtbl.find_opt t.phis node with Some p -> p | None -> []

(* Pretty-print the function in SSA form, in the visual style of the
   paper's Figure 6. *)
let pp ppf t =
  let pp_ver ppf (loc, v) = Fmt.pf ppf "%a_%d" Location.pp loc v in
  Fmt.pf ppf "func %s (speculative SSA form):@." (Func.name t.func);
  for node = 0 to Cfg.num_nodes t.cfg - 1 do
    let blk = Cfg.block t.cfg node in
    Fmt.pf ppf "%a:@." Label.pp (Block.label blk);
    List.iter
      (fun p ->
        Fmt.pf ppf "  %a_%d <- phi(%a)@." Location.pp p.phi_loc p.phi_result
          (Srp_support.Pp_util.pp_list (fun ppf (l, v) ->
               Fmt.pf ppf "%a:%d" Label.pp l v))
          (List.rev p.phi_args))
      (phis_of_node t node);
    List.iteri
      (fun idx ins ->
        let s = instr_ssa t (Block.label blk, idx) in
        Fmt.pf ppf "  %a" Instr.pp ins;
        (match s.use with Some u -> Fmt.pf ppf "  [use %a]" pp_ver u | None -> ());
        (match s.def with Some d -> Fmt.pf ppf "  [def %a]" pp_ver d | None -> ());
        List.iter
          (fun m ->
            Fmt.pf ppf "  mu%s(%a_%d)" (if m.mu_spec then "_s" else "")
              Location.pp m.mu_loc m.mu_ver)
          s.mus;
        List.iter
          (fun c ->
            Fmt.pf ppf "  %a_%d <- chi%s(%a_%d)" Location.pp c.chi_loc
              c.chi_result (if c.chi_spec then "_s" else "")
              Location.pp c.chi_loc c.chi_prev)
          s.chis;
        Fmt.pf ppf "@.")
      blk.Block.instrs;
    Fmt.pf ppf "  %a@." Instr.pp_terminator blk.Block.term
  done
