lib/ssa/annot.ml: Block Fmt Func Hashtbl Instr Label List Ops Program Spec_policy Srp_alias Srp_ir Srp_support
