lib/ssa/spec_policy.ml: Func Hashtbl Instr List Ops Program Srp_alias Srp_ir Srp_profile
