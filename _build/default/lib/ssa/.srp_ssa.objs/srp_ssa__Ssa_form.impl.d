lib/ssa/ssa_form.ml: Annot Block Cfg Dominance Fmt Func Hashtbl Instr Label List Ops Srp_alias Srp_ir Srp_support
