lib/ssa/spec_policy.mli: Program Site Srp_alias Srp_ir Srp_profile
